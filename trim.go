package pace

import (
	"pace/internal/seq"
	"pace/internal/trim"
)

// TrimOptions configures poly(A)/poly(T) tail trimming.
type TrimOptions struct {
	// MinRun is the minimum homopolymer run that counts as a tail
	// (default 10).
	MinRun int
	// MaxMiss tolerates that many interruptions inside a tail
	// (default 2).
	MaxMiss int
	// MinRemain stops trimming before a read shrinks below this length
	// (default 50).
	MinRemain int
}

// TrimStats summarizes a trimming pass.
type TrimStats struct {
	Reads        int
	Trimmed      int
	CharsRemoved int64
}

// Trim removes poly(A)/poly(T) tails from every EST (both ends, both bases —
// strands are unknown) and returns the trimmed sequences with statistics.
// Untrimmed tails make every tailed EST pair share long A^k substrings,
// flooding the suffix-tree pair generator; run this before Cluster on raw
// (untrimmed) data.
func Trim(ests []string, opt TrimOptions) ([]string, TrimStats, error) {
	o := trim.DefaultOptions()
	if opt.MinRun != 0 {
		o.MinRun = opt.MinRun
	}
	if opt.MaxMiss != 0 {
		o.MaxMiss = opt.MaxMiss
	}
	if opt.MinRemain != 0 {
		o.MinRemain = opt.MinRemain
	}
	if err := o.Validate(); err != nil {
		return nil, TrimStats{}, err
	}
	parsed, err := parseESTs(ests)
	if err != nil {
		return nil, TrimStats{}, err
	}
	trimmed, st := trim.Batch(parsed, o)
	out := make([]string, len(trimmed))
	for i, s := range trimmed {
		out[i] = s.String()
	}
	return out, TrimStats{Reads: st.Reads, Trimmed: st.Trimmed, CharsRemoved: st.CharsRemoved}, nil
}

// LowComplexityFraction reports the fraction of 64-base windows of the
// sequence whose DUST-style score exceeds 2 — a quick screen for reads that
// are mostly repeats or homopolymer.
func LowComplexityFraction(est string) (float64, error) {
	s, err := seq.Parse(est)
	if err != nil {
		return 0, err
	}
	return trim.LowComplexityFraction(s, 64, 2), nil
}
