package main

import (
	"errors"
	"fmt"
	"time"
)

// flagValues collects the command-line knobs that need cross-checking before
// any input is read, so misuse fails fast with a usage error instead of deep
// inside the pipeline.
type flagValues struct {
	in          string
	procs       int
	sim         bool
	window      int
	psi         int
	batch       int
	mergeShards int
	minOverlap  int
	minIdentity float64

	retries      int
	ckptDir      string
	ckptInterval time.Duration
	ckptEvery    int
	slaveTimeout time.Duration
	resume       bool

	session string
	add     bool

	simDeterministic bool
	stamp            string
}

// validateFlags performs the up-front sanity checks. Deeper consistency
// (psi >= w, WORKBUF bounds, …) is still validated by the engine config.
func validateFlags(v flagValues) error {
	if v.in == "" {
		return errors.New("-in is required")
	}
	if v.procs < 1 {
		return fmt.Errorf("-p must be >= 1, got %d", v.procs)
	}
	if v.sim && v.procs < 2 {
		return fmt.Errorf("-sim requires -p >= 2 (the simulated machine needs a master and at least one slave), got -p %d", v.procs)
	}
	if v.window < 1 {
		return fmt.Errorf("-w must be positive, got %d", v.window)
	}
	if v.psi < 1 {
		return fmt.Errorf("-psi must be positive, got %d", v.psi)
	}
	if v.psi < v.window {
		return fmt.Errorf("-psi %d must be >= -w %d (pairs anchor on window-length matches)", v.psi, v.window)
	}
	if v.batch < 1 {
		return fmt.Errorf("-batch must be positive, got %d", v.batch)
	}
	if v.mergeShards < 0 {
		return fmt.Errorf("-merge-shards must be >= 0 (0 = legacy single union-find), got %d", v.mergeShards)
	}
	if v.minOverlap < 1 {
		return fmt.Errorf("-min-overlap must be positive, got %d", v.minOverlap)
	}
	if v.minIdentity <= 0 || v.minIdentity > 1 {
		return fmt.Errorf("-min-identity must be in (0,1], got %g", v.minIdentity)
	}
	if v.retries < 1 {
		return fmt.Errorf("-retries must be >= 1 (attempts per message), got %d", v.retries)
	}
	if v.ckptInterval < 0 {
		return fmt.Errorf("-checkpoint-interval must be >= 0, got %v", v.ckptInterval)
	}
	if v.ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0, got %d", v.ckptEvery)
	}
	if v.slaveTimeout < 0 {
		return fmt.Errorf("-slave-timeout must be >= 0, got %v", v.slaveTimeout)
	}
	if (v.ckptInterval > 0 || v.ckptEvery > 0) && v.ckptDir == "" {
		return errors.New("-checkpoint-interval/-checkpoint-every need -checkpoint-dir")
	}
	if v.resume && v.ckptDir == "" {
		return errors.New("-resume needs -checkpoint-dir")
	}
	if v.add && v.session == "" {
		return errors.New("-add needs -session")
	}
	if v.session != "" && v.resume {
		return errors.New("-session and -resume are mutually exclusive (a session seeds from its own checkpoint)")
	}
	if v.session != "" && v.ckptDir != "" {
		return errors.New("-session and -checkpoint-dir are mutually exclusive (the session directory holds its own checkpoint)")
	}
	if v.simDeterministic && !v.sim {
		return errors.New("-sim-deterministic needs -sim (the real transport cannot replay time)")
	}
	if v.stamp != "" {
		if _, err := time.Parse(time.RFC3339, v.stamp); err != nil {
			return fmt.Errorf("-stamp must be RFC 3339 (e.g. 2002-08-20T00:00:00Z): %v", err)
		}
	}
	return nil
}
