package main

import (
	"testing"
	"time"
)

func TestParseChaos(t *testing.T) {
	plan, err := parseChaos("crash=2:5,delay=0.1:2ms,transient=0.05:10,drop=0.2,dup=0.01,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 {
		t.Errorf("Seed = %d", plan.Seed)
	}
	if plan.CrashRank != 2 || plan.CrashAfter != 5 || plan.CrashTag != 1 {
		t.Errorf("crash: %+v", plan)
	}
	if plan.DelayProb != 0.1 || plan.Delay != 2*time.Millisecond {
		t.Errorf("delay: %+v", plan)
	}
	if plan.TransientProb != 0.05 || plan.TransientMax != 10 {
		t.Errorf("transient: %+v", plan)
	}
	if plan.DropProb != 0.2 || plan.DupProb != 0.01 {
		t.Errorf("drop/dup: %+v", plan)
	}
}

func TestParseChaosExplicitTag(t *testing.T) {
	plan, err := parseChaos("crash=1:3:0")
	if err != nil {
		t.Fatal(err)
	}
	if plan.CrashRank != 1 || plan.CrashAfter != 3 || plan.CrashTag != 0 {
		t.Errorf("crash: %+v", plan)
	}
}

func TestParseChaosRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"crash",            // no value
		"crash=2",          // missing after
		"crash=a:b",        // non-numeric
		"crash=1:2:3:4",    // too many fields
		"drop=1.5",         // probability out of range
		"drop=-0.1",        // negative probability
		"delay=0.1",        // missing duration
		"delay=0.1:xx",     // bad duration
		"transient=0.1:zz", // bad max
		"warp=0.5",         // unknown directive
		"seed=abc",         // bad seed
	} {
		if _, err := parseChaos(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseChaosEmptyPartsIgnored(t *testing.T) {
	plan, err := parseChaos("drop=0.1,, ,")
	if err != nil {
		t.Fatal(err)
	}
	if plan.DropProb != 0.1 {
		t.Errorf("drop: %+v", plan)
	}
}
