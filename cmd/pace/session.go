package main

// Session mode: -session names a directory that persists clustering state
// across command invocations, so new sequencing batches can be ingested
// incrementally instead of re-clustering the whole collection.
//
// The directory holds two files:
//
//	session.fasta — every EST the session has ingested, in ingest order
//	pace.ckpt     — the engine checkpoint of the current partition
//
//	pace -session dir -in first.fasta        # initialize with a first batch
//	pace -session dir -in batch2.fasta -add  # ingest a new batch incrementally
//
// Both forms emit the TSV for every EST the session holds, not just the
// latest batch.

import (
	"fmt"
	"os"
	"path/filepath"

	"pace"
)

// sessionFASTA is the EST store inside a session directory; the partition
// lives next to it in the engine's checkpoint file.
const sessionFASTA = "session.fasta"

// runSession clusters via a persistent session directory. It returns the
// clustering plus the full record/sequence lists it covers (old batches
// first, then recs).
func runSession(dir string, add bool, recs []pace.Record, seqs []string, opt pace.Options) (*pace.Clustering, []pace.Record, []string, error) {
	if !add {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, nil, err
		}
		sess, err := pace.NewSession(opt)
		if err != nil {
			return nil, nil, nil, err
		}
		cl, err := sess.Add(seqs)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := saveSession(dir, sess, recs, seqs); err != nil {
			return nil, nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "pace: session %s initialized with %d ESTs\n", dir, len(seqs))
		return cl, recs, seqs, nil
	}

	f, err := os.Open(filepath.Join(dir, sessionFASTA))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("open session store (did you initialize with -session without -add?): %w", err)
	}
	oldRecs, err := pace.ReadFASTA(f)
	f.Close()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("read session store: %w", err)
	}
	ck, err := pace.LoadCheckpoint(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("load session checkpoint: %w", err)
	}
	if err := ck.Validate(len(oldRecs), opt.Window, opt.MinMatch); err != nil {
		return nil, nil, nil, fmt.Errorf("session checkpoint does not match session store or options: %w", err)
	}
	oldSeqs := pace.Sequences(oldRecs)
	sess, err := pace.ResumeSession(opt, oldSeqs, pace.ResumeLabels(ck))
	if err != nil {
		return nil, nil, nil, err
	}
	cl, err := sess.Add(seqs)
	if err != nil {
		return nil, nil, nil, err
	}
	allRecs := append(oldRecs, recs...)
	allSeqs := append(oldSeqs, seqs...)
	if err := saveSession(dir, sess, allRecs, allSeqs); err != nil {
		return nil, nil, nil, err
	}
	inc := cl.Stats.Incremental
	fmt.Fprintf(os.Stderr, "pace: session %s: %d + %d ESTs, buckets rebuilt=%d reused=%d, fresh pairs=%d, stale pairs suppressed=%d\n",
		dir, len(oldRecs), len(recs), inc.BucketsRebuilt, inc.BucketsReused, inc.FreshPairs, inc.StaleSuppressed)
	return cl, allRecs, allSeqs, nil
}

// saveSession persists the session's EST store (atomic replace, mirroring
// the checkpoint's write discipline) and its partition checkpoint. The
// stored sequences are the clustered ones — post-trim when -trim is on — so
// a later -add resumes over exactly the strings the partition describes.
func saveSession(dir string, sess *pace.Session, recs []pace.Record, seqs []string) error {
	out := make([]pace.Record, len(recs))
	for i, rec := range recs {
		out[i] = pace.Record{ID: rec.ID, Desc: rec.Desc, Seq: seqs[i]}
	}
	tmp, err := os.CreateTemp(dir, sessionFASTA+".tmp*")
	if err != nil {
		return err
	}
	if err := pace.WriteFASTA(tmp, out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, sessionFASTA)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return sess.SaveCheckpoint(dir)
}
