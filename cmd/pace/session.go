package main

// Session mode: -session names a directory that persists clustering state
// across command invocations, so new sequencing batches can be ingested
// incrementally instead of re-clustering the whole collection.
//
// The directory holds two files, managed by internal/serve's state
// machinery (shared with the paced server):
//
//	session.fasta — every EST the session has ingested, in ingest order
//	pace.ckpt     — the engine checkpoint of the current partition
//
//	pace -session dir -in first.fasta        # initialize with a first batch
//	pace -session dir -in batch2.fasta -add  # ingest a new batch incrementally
//
// Both forms emit the TSV for every EST the session holds, not just the
// latest batch. The pair is written in crash-safe order (store first, then
// checkpoint) and cross-checked at resume: a directory whose store and
// checkpoint disagree fails with serve.ErrStateMismatch and a recovery
// hint instead of a confusing downstream error.

import (
	"fmt"
	"os"

	"pace"
	"pace/internal/serve"
)

// runSession clusters via a persistent session directory. It returns the
// clustering plus the full record/sequence lists it covers (old batches
// first, then recs).
func runSession(dir string, add bool, recs []pace.Record, seqs []string, opt pace.Options) (*pace.Clustering, []pace.Record, []string, error) {
	if !add {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, nil, err
		}
		sess, err := pace.NewSession(opt)
		if err != nil {
			return nil, nil, nil, err
		}
		cl, err := sess.Add(seqs)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := saveSession(dir, sess, recs, seqs); err != nil {
			return nil, nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "pace: session %s initialized with %d ESTs\n", dir, len(seqs))
		return cl, recs, seqs, nil
	}

	st, err := serve.LoadState(dir, opt)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil, fmt.Errorf("open session store (did you initialize with -session without -add?): %w", err)
		}
		return nil, nil, nil, err
	}
	oldRecs := st.Recs
	oldSeqs := pace.Sequences(oldRecs)
	sess, err := st.Resume(opt)
	if err != nil {
		return nil, nil, nil, err
	}
	cl, err := sess.Add(seqs)
	if err != nil {
		return nil, nil, nil, err
	}
	allRecs := append(oldRecs, recs...)
	allSeqs := append(oldSeqs, seqs...)
	if err := saveSession(dir, sess, allRecs, allSeqs); err != nil {
		return nil, nil, nil, err
	}
	inc := cl.Stats.Incremental
	fmt.Fprintf(os.Stderr, "pace: session %s: %d + %d ESTs, buckets rebuilt=%d reused=%d, fresh pairs=%d, stale pairs suppressed=%d\n",
		dir, len(oldRecs), len(recs), inc.BucketsRebuilt, inc.BucketsReused, inc.FreshPairs, inc.StaleSuppressed)
	return cl, allRecs, allSeqs, nil
}

// saveSession persists the session's EST store and partition checkpoint in
// crash-safe order (store first — see serve.SaveState). The stored
// sequences are the clustered ones — post-trim when -trim is on — so a
// later -add resumes over exactly the strings the partition describes.
func saveSession(dir string, sess *pace.Session, recs []pace.Record, seqs []string) error {
	out := make([]pace.Record, len(recs))
	for i, rec := range recs {
		out[i] = pace.Record{ID: rec.ID, Desc: rec.Desc, Seq: seqs[i]}
	}
	return serve.SaveState(pace.OSFS(), dir, sess, out)
}
