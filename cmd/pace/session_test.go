package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pace"
	"pace/internal/serve"
)

func normalize(labels []int) []int {
	next := 0
	remap := make(map[int]int, len(labels))
	out := make([]int, len(labels))
	for i, l := range labels {
		m, ok := remap[l]
		if !ok {
			m = next
			remap[l] = next
			next++
		}
		out[i] = m
	}
	return out
}

func TestRunSessionRoundTrip(t *testing.T) {
	b, err := pace.Simulate(pace.SimOptions{NumESTs: 40, NumGenes: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]pace.Record, len(b.ESTs))
	for i := range b.ESTs {
		recs[i] = pace.Record{ID: fmt.Sprintf("est%03d", i), Seq: b.ESTs[i]}
	}
	opt := pace.DefaultOptions()
	dir := filepath.Join(t.TempDir(), "sess")
	cut := 30

	cl1, recs1, seqs1, err := runSession(dir, false, recs[:cut], b.ESTs[:cut], opt)
	if err != nil {
		t.Fatalf("initialize session: %v", err)
	}
	if len(recs1) != cut || len(seqs1) != cut || len(cl1.Labels) != cut {
		t.Fatalf("initial session covers %d/%d/%d, want %d", len(recs1), len(seqs1), len(cl1.Labels), cut)
	}
	if _, err := os.Stat(filepath.Join(dir, serve.FASTAFile)); err != nil {
		t.Fatalf("session store not written: %v", err)
	}

	cl2, recs2, _, err := runSession(dir, true, recs[cut:], b.ESTs[cut:], opt)
	if err != nil {
		t.Fatalf("add batch: %v", err)
	}
	if len(recs2) != len(recs) || len(cl2.Labels) != len(recs) {
		t.Fatalf("resumed session covers %d recs / %d labels, want %d", len(recs2), len(cl2.Labels), len(recs))
	}
	for i, rec := range recs2 {
		if rec.ID != recs[i].ID {
			t.Fatalf("record %d id %q, want %q", i, rec.ID, recs[i].ID)
		}
	}

	scratch, err := pace.Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, want := normalize(cl2.Labels), normalize(scratch.Labels)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("incremental CLI labels differ from from-scratch at EST %d", i)
		}
	}
	if sum := cl1.Stats.PairsGenerated + cl2.Stats.PairsGenerated; sum != scratch.Stats.PairsGenerated {
		t.Errorf("session pair counts %d+%d != from-scratch %d",
			cl1.Stats.PairsGenerated, cl2.Stats.PairsGenerated, scratch.Stats.PairsGenerated)
	}

	// The updated store must cover the union, so a third batch resumes over
	// all 40 ESTs.
	f, err := os.Open(filepath.Join(dir, serve.FASTAFile))
	if err != nil {
		t.Fatal(err)
	}
	stored, err := pace.ReadFASTA(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != len(recs) {
		t.Fatalf("session store holds %d records, want %d", len(stored), len(recs))
	}

	// Mismatched options must be rejected by the checkpoint fingerprint.
	bad := opt
	bad.Window = opt.Window - 2
	bad.MinMatch = opt.MinMatch - 2
	if _, _, _, err := runSession(dir, true, recs[:1], b.ESTs[:1], bad); err == nil {
		t.Error("add with mismatched window/psi: want error")
	}

	// -add against a directory that was never initialized fails cleanly.
	if _, _, _, err := runSession(filepath.Join(t.TempDir(), "nope"), true, recs[:1], b.ESTs[:1], opt); err == nil {
		t.Error("add without initialized session: want error")
	}
}
