package main

import "pace"

// parseChaos turns the -chaos flag into an engine fault-injection plan. The
// spec grammar lives with the plan itself — see pace.ParseFaultPlan — so the
// CLI and the paced server accept identical chaos specs.
func parseChaos(spec string) (*pace.FaultPlan, error) {
	return pace.ParseFaultPlan(spec)
}
