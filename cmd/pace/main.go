// Command pace clusters the ESTs in a FASTA file.
//
// Usage:
//
//	pace -in ests.fasta [-out clusters.tsv] [-p 4] [-sim] [-w 8] [-psi 20]
//
// The output is a TSV with one line per EST: record id, cluster label.
// A run summary (cluster count, pair statistics, phase times, and the
// paper-style phase / per-rank load-balance tables) goes to standard error.
//
// Observability: -metrics-addr serves Prometheus text, expvar and pprof over
// HTTP during the run; -trace writes a Chrome trace-event file with one
// timeline per rank; -report writes a machine-readable BENCH_*.json run
// report.
//
// Incremental clustering: -session dir persists the ESTs and partition in a
// directory; a later run with -session dir -in batch.fasta -add ingests the
// new batch incrementally — rebuilding only the GST buckets it touches and
// generating only pairs the batch can affect — and emits the TSV over every
// EST the session holds.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"pace"
)

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	out := flag.String("out", "", "output TSV file (default stdout)")
	procs := flag.Int("p", 1, "number of ranks (1 = sequential, >=2 = master+slaves)")
	sim := flag.Bool("sim", false, "run on the simulated parallel machine (virtual time)")
	window := flag.Int("w", 8, "suffix bucketing window w")
	psi := flag.Int("psi", 20, "promising pair threshold ψ (min maximal common substring)")
	batch := flag.Int("batch", 60, "pairs per master-slave interaction")
	mergeShards := flag.Int("merge-shards", 0, "merge-delta protocol with K union-find shards on the master (0 = legacy per-pair protocol)")
	minOverlap := flag.Int("min-overlap", 40, "minimum accepted overlap columns")
	minIdentity := flag.Float64("min-identity", 0.90, "minimum accepted overlap identity")
	doTrim := flag.Bool("trim", false, "trim poly(A)/poly(T) tails before clustering")
	consOut := flag.String("consensus", "", "also assemble per-cluster consensus sequences to this FASTA file")
	spliceOut := flag.String("splice", "", "also scan clusters for alternative-splicing events, TSV to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar and pprof on this address (e.g. :9090)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event file here (chrome://tracing, Perfetto)")
	reportPath := flag.String("report", "", "write a run-report JSON here ('auto' derives BENCH_pace_<stamp>.json)")
	chaosSpec := flag.String("chaos", "", "inject faults, e.g. 'crash=2:5,delay=0.1:2ms,seed=7' (see cmd docs)")
	noRecover := flag.Bool("no-recover", false, "fail the whole run when a slave rank dies instead of recovering")
	slaveTimeout := flag.Duration("slave-timeout", 0, "master watchdog: fail if no slave reports within this window (0 = wait forever)")
	retries := flag.Int("retries", 3, "attempts per message for transient transport errors (1 = no retry)")
	ckptDir := flag.String("checkpoint-dir", "", "periodically checkpoint clustering state into this directory")
	ckptInterval := flag.Duration("checkpoint-interval", 0, "wall-clock time between checkpoints (default 30s)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint every N slave reports instead of on a timer")
	resume := flag.Bool("resume", false, "resume from the checkpoint in -checkpoint-dir, skipping completed merges")
	sessionDir := flag.String("session", "", "persistent session directory (session.fasta + pace.ckpt) for incremental clustering")
	addBatch := flag.Bool("add", false, "ingest -in as a new batch into the -session directory, re-clustering incrementally")
	simDet := flag.Bool("sim-deterministic", false, "with -sim: disable the measured-compute bridge so two identical runs report identical virtual times")
	stampStr := flag.String("stamp", "", "fix the report timestamp (RFC 3339) and zero wall_seconds, for byte-reproducible reports")
	flag.Parse()

	if err := validateFlags(flagValues{
		in: *in, procs: *procs, sim: *sim,
		window: *window, psi: *psi, batch: *batch,
		mergeShards: *mergeShards,
		minOverlap:  *minOverlap, minIdentity: *minIdentity,
		retries: *retries, ckptDir: *ckptDir,
		ckptInterval: *ckptInterval, ckptEvery: *ckptEvery,
		slaveTimeout: *slaveTimeout, resume: *resume,
		session: *sessionDir, add: *addBatch,
		simDeterministic: *simDet, stamp: *stampStr,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "pace:", err)
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	recs, err := pace.ReadFASTA(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no records in %s", *in))
	}

	seqs := pace.Sequences(recs)
	if *doTrim {
		trimmed, st, err := pace.Trim(seqs, pace.TrimOptions{})
		if err != nil {
			fatal(err)
		}
		seqs = trimmed
		fmt.Fprintf(os.Stderr, "pace: trimmed %d/%d reads (%d chars)\n",
			st.Trimmed, st.Reads, st.CharsRemoved)
	}

	opt := pace.DefaultOptions()
	opt.Processors = *procs
	opt.Simulated = *sim
	opt.SimDeterministic = *simDet
	if *stampStr != "" {
		opt.Stamp, _ = time.Parse(time.RFC3339, *stampStr) // validated above
	}
	opt.Window = *window
	opt.MinMatch = *psi
	opt.BatchSize = *batch
	opt.MergeShards = *mergeShards
	opt.MinOverlap = *minOverlap
	opt.MinIdentity = *minIdentity
	opt.Recover = !*noRecover
	opt.SlaveTimeout = *slaveTimeout
	if *retries > 1 {
		opt.Retry = pace.RetryConfig{MaxAttempts: *retries, BaseDelay: time.Millisecond}
	}
	if *chaosSpec != "" {
		plan, err := parseChaos(*chaosSpec)
		if err != nil {
			fatal(err)
		}
		opt.Fault = plan
		fmt.Fprintf(os.Stderr, "pace: chaos plan active: %s\n", *chaosSpec)
	}
	opt.CheckpointDir = *ckptDir
	opt.CheckpointInterval = *ckptInterval
	opt.CheckpointEvery = *ckptEvery
	if *resume {
		ck, err := pace.LoadCheckpoint(*ckptDir)
		if err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		if err := ck.Validate(len(seqs), opt.Window, opt.MinMatch); err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		opt.InitialLabels = pace.ResumeLabels(ck)
		fmt.Fprintf(os.Stderr, "pace: resuming from checkpoint seq %d (%d pairs already processed, %d merges done)\n",
			ck.Seq, ck.PairsProcessed, ck.Merges)
	}

	// Attach telemetry sinks. The registry is also created for -report
	// alone, so the report's counter snapshot is populated.
	if *metricsAddr != "" || *reportPath != "" {
		opt.Metrics = pace.NewMetricsRegistry()
		pace.RegisterBuildInfo(opt.Metrics)
	}
	if *metricsAddr != "" {
		srv, err := pace.ServeMetrics(*metricsAddr, opt.Metrics)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pace: serving metrics on http://%s/metrics\n", srv.Addr())
	}
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		opt.Trace = pace.NewTraceWriter(traceFile)
	}

	t0 := time.Now()
	var cl *pace.Clustering
	if *sessionDir != "" {
		cl, recs, seqs, err = runSession(*sessionDir, *addBatch, recs, seqs, opt)
	} else {
		cl, err = pace.Cluster(seqs, opt)
	}
	wall := time.Since(t0)
	if err != nil {
		fatal(err)
	}
	if opt.Trace != nil {
		if err := opt.Trace.Close(); err != nil {
			fatal(fmt.Errorf("trace stream: %w (%d events dropped; %s is incomplete)",
				err, opt.Trace.Dropped(), *tracePath))
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pace: wrote trace to %s (%d events)\n", *tracePath, opt.Trace.Events())
	}

	dst := os.Stdout
	if *out != "" {
		dst, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer dst.Close()
	}
	w := bufio.NewWriter(dst)
	for i, rec := range recs {
		fmt.Fprintf(w, "%s\t%d\n", rec.ID, cl.Labels[i])
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}

	if *consOut != "" {
		cons, err := pace.Consensus(seqs, cl.Labels)
		if err != nil {
			fatal(err)
		}
		var crecs []pace.Record
		for label, c := range cons {
			if c == nil {
				continue
			}
			crecs = append(crecs, pace.Record{
				ID:   fmt.Sprintf("cluster%05d", label),
				Desc: fmt.Sprintf("reads=%d excluded=%d len=%d", c.Used, c.Excluded, len(c.Seq)),
				Seq:  c.Seq,
			})
		}
		cf, err := os.Create(*consOut)
		if err != nil {
			fatal(err)
		}
		if err := pace.WriteFASTA(cf, crecs); err != nil {
			fatal(err)
		}
		if err := cf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pace: wrote %d consensus sequences to %s\n", len(crecs), *consOut)
	}

	if *spliceOut != "" {
		events, err := pace.DetectSplicing(seqs, cl.Labels)
		if err != nil {
			fatal(err)
		}
		sf, err := os.Create(*spliceOut)
		if err != nil {
			fatal(err)
		}
		sw := bufio.NewWriter(sf)
		fmt.Fprintln(sw, "# cluster\test_id\tkind\tconsensus_pos\tgap_len\tflank_matches")
		for _, ev := range events {
			kind := "skipped-in-member"
			if !ev.SkippedInMember {
				kind = "extra-in-member"
			}
			fmt.Fprintf(sw, "%d\t%s\t%s\t%d\t%d\t%d\n",
				ev.Cluster, recs[ev.Member].ID, kind, ev.ConsensusPos, ev.GapLen, ev.FlankMatches)
		}
		if err := sw.Flush(); err != nil {
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pace: wrote %d splice events to %s\n", len(events), *spliceOut)
	}

	st := cl.Stats
	fmt.Fprintf(os.Stderr, "pace: %d ESTs -> %d clusters\n", len(recs), cl.NumClusters)
	fmt.Fprintf(os.Stderr, "pace: pairs generated=%d processed=%d accepted=%d skipped=%d\n",
		st.PairsGenerated, st.PairsProcessed, st.PairsAccepted, st.PairsSkipped)
	if rec := st.Recovery; rec.RanksLost > 0 {
		fmt.Fprintf(os.Stderr, "pace: recovered from %d lost rank(s): %d grant slots reclaimed, %d pairs requeued, %d shards reassigned\n",
			rec.RanksLost, rec.GrantsReclaimed, rec.PairsRequeued, rec.ShardsReassigned)
	}
	if rec := st.Recovery; rec.Checkpoints > 0 {
		fmt.Fprintf(os.Stderr, "pace: wrote %d checkpoint(s) (%d bytes total) to %s\n",
			rec.Checkpoints, rec.CheckpointBytes, *ckptDir)
	}
	if rec := st.Recovery; rec.SeedMerges > 0 {
		fmt.Fprintf(os.Stderr, "pace: resume seeded %d merges from the checkpoint\n", rec.SeedMerges)
	}
	fmt.Fprintf(os.Stderr, "pace: phases partition=%v construct=%v sort=%v align=%v total=%v\n",
		st.Phases.Partition, st.Phases.Construct, st.Phases.Sort, st.Phases.Align, st.Phases.Total)

	rep := pace.BuildReport(cl, opt, "pace", *in, len(recs), wall)
	fmt.Fprint(os.Stderr, rep.FormatPhaseTable())
	if t := rep.FormatRankTable(); t != "" {
		fmt.Fprint(os.Stderr, t)
	}
	if *reportPath != "" {
		path := *reportPath
		if path == "auto" {
			now := opt.Stamp
			if now.IsZero() {
				now = time.Now()
			}
			path = pace.BenchFileName("pace", now)
		}
		if err := rep.WriteJSON(path); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pace: wrote run report to %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pace:", err)
	os.Exit(1)
}
