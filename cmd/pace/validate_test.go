package main

import (
	"strings"
	"testing"
)

func okFlags() flagValues {
	return flagValues{
		in: "ests.fasta", procs: 1, window: 8, psi: 20, batch: 60,
		minOverlap: 40, minIdentity: 0.9, retries: 3,
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(okFlags()); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	simOK := okFlags()
	simOK.sim = true
	simOK.procs = 2
	if err := validateFlags(simOK); err != nil {
		t.Fatalf("valid -sim flags rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*flagValues)
		want string
	}{
		{"missing in", func(v *flagValues) { v.in = "" }, "-in is required"},
		{"zero procs", func(v *flagValues) { v.procs = 0 }, "-p must be"},
		{"sim without ranks", func(v *flagValues) { v.sim = true; v.procs = 1 }, "-sim requires -p >= 2"},
		{"zero window", func(v *flagValues) { v.window = 0 }, "-w must be positive"},
		{"zero psi", func(v *flagValues) { v.psi = 0 }, "-psi must be positive"},
		{"psi below window", func(v *flagValues) { v.psi = 4 }, "must be >= -w"},
		{"zero batch", func(v *flagValues) { v.batch = 0 }, "-batch must be positive"},
		{"zero overlap", func(v *flagValues) { v.minOverlap = 0 }, "-min-overlap must be positive"},
		{"zero identity", func(v *flagValues) { v.minIdentity = 0 }, "-min-identity must be in (0,1]"},
		{"identity above one", func(v *flagValues) { v.minIdentity = 1.5 }, "-min-identity must be in (0,1]"},
		{"zero retries", func(v *flagValues) { v.retries = 0 }, "-retries must be >= 1"},
		{"negative checkpoint interval", func(v *flagValues) { v.ckptInterval = -1 }, "-checkpoint-interval must be >= 0"},
		{"negative checkpoint every", func(v *flagValues) { v.ckptEvery = -1 }, "-checkpoint-every must be >= 0"},
		{"negative slave timeout", func(v *flagValues) { v.slaveTimeout = -1 }, "-slave-timeout must be >= 0"},
		{"cadence without dir", func(v *flagValues) { v.ckptEvery = 5 }, "need -checkpoint-dir"},
		{"resume without dir", func(v *flagValues) { v.resume = true }, "-resume needs -checkpoint-dir"},
		{"add without session", func(v *flagValues) { v.add = true }, "-add needs -session"},
		{"session with resume", func(v *flagValues) {
			v.session = "s"
			v.resume = true
			v.ckptDir = "c"
		}, "-session and -resume"},
		{"session with checkpoint dir", func(v *flagValues) {
			v.session = "s"
			v.ckptDir = "c"
		}, "-session and -checkpoint-dir"},
	}
	for _, tc := range cases {
		v := okFlags()
		tc.mut(&v)
		err := validateFlags(v)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
