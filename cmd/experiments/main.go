// Command experiments regenerates the paper's tables and figures (§4) on
// synthetic benchmarks and a simulated parallel machine, printing the same
// rows/series the paper reports.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|fig6a|fig6b|fig7|fig8|ablations|trim|incremental]
//	            [-scale tiny|small|medium] [-seed 1] [-report out.json]
//
// -exp incremental also writes BENCH_incremental.json: a machine-readable
// comparison of re-clustering a grown collection from scratch against
// ingesting the new batch into a warm session.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pace/internal/experiments"
	"pace/internal/metrics"
	"pace/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, table2, table3, fig6a, fig6b, fig7, fig8, ablations, trim, incremental, shardeduf)")
	scaleName := flag.String("scale", "small", "workload scale (tiny, small, medium)")
	seed := flag.Int64("seed", 1, "benchmark random seed")
	reportPath := flag.String("report", "", "write a run-report JSON here ('auto' derives BENCH_experiments_<stamp>.json)")
	stampStr := flag.String("stamp", "", "fix the report timestamp (RFC 3339) and zero wall_seconds, for byte-reproducible reports")
	flag.Parse()

	var stamp time.Time
	if *stampStr != "" {
		var err error
		stamp, err = time.Parse(time.RFC3339, *stampStr)
		if err != nil {
			fatal(fmt.Errorf("-stamp must be RFC 3339: %v", err))
		}
	}
	repStamp = stamp

	sc, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	run := map[string]func(experiments.Scale, int64) error{
		"table1":      table1,
		"table2":      table2,
		"table3":      table3,
		"fig6a":       fig6a,
		"fig6b":       fig6b,
		"fig7":        fig7,
		"fig8":        fig8,
		"ablations":   ablations,
		"trim":        trimStudy,
		"incremental": incrementalStudy,
		"shardeduf":   shardedUFStudy,
	}
	order := []string{"table1", "table2", "table3", "fig6a", "fig6b", "fig7", "fig8", "ablations", "trim", "incremental", "shardeduf"}

	names := order
	if *exp != "all" {
		if _, ok := run[*exp]; !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		names = []string{*exp}
	}

	// Per-experiment wall times feed the run report's phase table.
	pt := telemetry.NewPhaseTimer(nil)
	t0 := time.Now()
	for _, name := range names {
		pt.Start(name)
		err := run[name](sc, *seed)
		pt.End()
		if err != nil {
			fatal(err)
		}
	}
	wall := time.Since(t0)

	if *reportPath != "" {
		if err := writeReport(*reportPath, *scaleName, *seed, pt, wall, stamp); err != nil {
			fatal(err)
		}
	}
}

// writeReport emits the BENCH_*.json artifact for an experiments run.
func writeReport(path, scale string, seed int64, pt *telemetry.PhaseTimer, wall time.Duration, stamp time.Time) error {
	rep := &telemetry.RunReport{
		Tool: "experiments",
		Params: map[string]string{
			"scale": scale,
			"seed":  fmt.Sprintf("%d", seed),
		},
		Procs:       1,
		WallSeconds: wall.Seconds(),
	}
	for _, t := range pt.Totals() {
		rep.Phases = append(rep.Phases, telemetry.PhaseEntry{Name: t.Name, Seconds: t.Total.Seconds()})
	}
	rep.Phases = append(rep.Phases, telemetry.PhaseEntry{Name: "total", Seconds: wall.Seconds()})
	if stamp.IsZero() {
		rep.Stamp()
	} else {
		rep.StampAt(stamp)
		rep.WallSeconds = 0
	}
	if path == "auto" {
		now := stamp
		if now.IsZero() {
			now = time.Now()
		}
		path = telemetry.BenchFileName("experiments", now)
	}
	if err := rep.WriteJSON(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote run report to %s\n", path)
	return nil
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%8.3fs", d.Seconds())
}

func table1(sc experiments.Scale, seed int64) error {
	header("Table 1 — batch baseline (CAP3/Phrap/TIGR stand-in) vs PaCE: time & pair memory")
	rows, err := experiments.Table1(sc, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%8s  %14s  %16s  %12s  %14s\n", "n", "baseline time", "baseline pairs", "pair MB", "PaCE time")
	for _, r := range rows {
		if r.OutOfMemory {
			fmt.Printf("%8d  %14s  %16s  %12s  %14s\n", r.N, "X", "X (budget hit)",
				fmt.Sprintf(">%.1f", float64(r.BaselineBytes)/1e6), secs(r.PaceTime))
			continue
		}
		fmt.Printf("%8d  %14s  %16d  %12.1f  %14s\n", r.N, secs(r.BaselineTime),
			r.BaselinePairs, float64(r.BaselineBytes)/1e6, secs(r.PaceTime))
	}
	fmt.Println("('X' = baseline exceeded its memory budget, as in the paper's Table 1)")
	return nil
}

func qualityCols(q metrics.Quality) string {
	return fmt.Sprintf("%6.2f %6.2f %6.2f %6.2f", 100*q.OQ, 100*q.OV, 100*q.UN, 100*q.CC)
}

func table2(sc experiments.Scale, seed int64) error {
	header("Table 2 — quality (OQ OV UN CC, %) of PaCE vs batch baseline")
	rows, err := experiments.Table2(sc, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%8s  %29s  %29s\n", "n", "ours: OQ OV UN CC", "baseline: OQ OV UN CC")
	for _, r := range rows {
		base := "X (insufficient memory)"
		if r.BaselineRan {
			base = qualityCols(r.Baseline)
		}
		fmt.Printf("%8d  %29s  %29s\n", r.N, qualityCols(r.Ours), base)
	}
	return nil
}

func table3(sc experiments.Scale, seed int64) error {
	header(fmt.Sprintf("Table 3 — component times (virtual s) for %d ESTs", sc.ComponentN))
	rows, err := experiments.Table3(sc, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%5s  %12s  %12s  %12s  %12s  %12s\n",
		"p", "partitioning", "GST constr.", "sort nodes", "alignment", "total")
	for _, r := range rows {
		fmt.Printf("%5d  %12.3f  %12.3f  %12.3f  %12.3f  %12.3f\n",
			r.P, r.Phases.Partition.Seconds(), r.Phases.Construct.Seconds(),
			r.Phases.Sort.Seconds(), r.Phases.Align.Seconds(), r.Phases.Total.Seconds())
	}
	return nil
}

func fig6a(sc experiments.Scale, seed int64) error {
	header("Figure 6a — run-time (virtual s) vs number of processors")
	pts, err := experiments.Fig6a(sc, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%8s  %5s  %10s\n", "n", "p", "time")
	for _, pt := range pts {
		fmt.Printf("%8d  %5d  %10.3f\n", pt.N, pt.P, pt.Time.Seconds())
	}
	return nil
}

func fig6b(sc experiments.Scale, seed int64) error {
	pts, err := experiments.Fig6b(sc, seed)
	if err != nil {
		return err
	}
	header(fmt.Sprintf("Figure 6b — run-time (virtual s) vs data size at p=%d", pts[0].P))
	fmt.Printf("%8s  %10s\n", "n", "time")
	for _, pt := range pts {
		fmt.Printf("%8d  %10.3f\n", pt.N, pt.Time.Seconds())
	}
	return nil
}

func fig7(sc experiments.Scale, seed int64) error {
	header("Figure 7 — pairs generated / processed / accepted vs data size")
	rows, err := experiments.Fig7(sc, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%8s  %12s  %12s  %12s\n", "n", "generated", "processed", "accepted")
	for _, r := range rows {
		fmt.Printf("%8d  %12d  %12d  %12d\n", r.N, r.Generated, r.Processed, r.Accepted)
	}
	return nil
}

func fig8(sc experiments.Scale, seed int64) error {
	header(fmt.Sprintf("Figure 8 — run-time (virtual s) vs batchsize (%d ESTs)", sc.ComponentN))
	rows, err := experiments.Fig8(sc, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%10s  %10s\n", "batchsize", "time")
	for _, r := range rows {
		fmt.Printf("%10d  %10.3f\n", r.Batch, r.Time.Seconds())
	}
	return nil
}

func ablations(sc experiments.Scale, seed int64) error {
	header(fmt.Sprintf("Ablations — design variants on %d ESTs", sc.ComponentN))
	rows, err := experiments.Ablations(sc.ComponentN, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-38s  %10s  %12s  %29s\n", "variant", "time", "alignments", "OQ OV UN CC (%)")
	for _, r := range rows {
		fmt.Printf("%-38s  %10.3f  %12d  %29s\n",
			r.Variant, r.Time.Seconds(), r.PairsProcessed, qualityCols(r.Quality))
	}
	return nil
}

// incrementalBench is the artifact -exp incremental writes next to stdout.
const incrementalBench = "BENCH_incremental.json"

func incrementalStudy(sc experiments.Scale, seed int64) error {
	header(fmt.Sprintf("Incremental ingest — 90%%+10%% of %d ESTs, from scratch vs session", sc.ComponentN))
	rows, err := experiments.IncrementalStudy(sc.ComponentN, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-26s  %8s  %12s  %12s  %10s  %29s\n",
		"variant", "n", "generated", "processed", "time", "OQ OV UN CC (%)")
	for _, r := range rows {
		q := ""
		if r.N == sc.ComponentN {
			q = qualityCols(r.Quality)
		}
		fmt.Printf("%-26s  %8d  %12d  %12d  %10.3f  %29s\n",
			r.Variant, r.N, r.PairsGenerated, r.PairsProcessed, r.Time.Seconds(), q)
	}
	incr := rows[len(rows)-1]
	fmt.Printf("incremental batch: buckets rebuilt=%d reused=%d, stale pairs suppressed=%d\n",
		incr.BucketsRebuilt, incr.BucketsReused, incr.StaleSuppressed)

	rep := &telemetry.RunReport{
		Tool: "incremental",
		Params: map[string]string{
			"scale": sc.Name,
			"n":     fmt.Sprintf("%d", sc.ComponentN),
			"seed":  fmt.Sprintf("%d", seed),
			"split": "90/10",
		},
		Procs:    1,
		Counters: map[string]float64{},
	}
	for _, r := range rows {
		rep.Phases = append(rep.Phases, telemetry.PhaseEntry{Name: r.Variant, Seconds: r.Time.Seconds()})
	}
	scratch := rows[1]
	rep.WallSeconds = scratch.Time.Seconds() + incr.Time.Seconds()
	rep.Counters["from_scratch_pairs_generated"] = float64(scratch.PairsGenerated)
	rep.Counters["from_scratch_pairs_processed"] = float64(scratch.PairsProcessed)
	rep.Counters["incremental_pairs_generated"] = float64(incr.PairsGenerated)
	rep.Counters["incremental_pairs_processed"] = float64(incr.PairsProcessed)
	rep.Counters["incremental_buckets_rebuilt"] = float64(incr.BucketsRebuilt)
	rep.Counters["incremental_buckets_reused"] = float64(incr.BucketsReused)
	rep.Counters["incremental_stale_suppressed"] = float64(incr.StaleSuppressed)
	if repStamp.IsZero() {
		rep.Stamp()
	} else {
		rep.StampAt(repStamp)
		rep.WallSeconds = 0
	}
	if err := rep.WriteJSON(incrementalBench); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote incremental comparison to %s\n", incrementalBench)
	return nil
}

// shardedUFBench is the artifact -exp shardeduf writes next to stdout.
const shardedUFBench = "BENCH_shardeduf.json"

// shardedUFShards is the master shard count for the study (the K the CI
// equivalence matrix also pins).
const shardedUFShards = 16

func shardedUFStudy(sc experiments.Scale, seed int64) error {
	header(fmt.Sprintf("Sharded union-find — master idle (virtual s) vs p, %d ESTs, K=%d",
		sc.ComponentN, shardedUFShards))
	rows, err := experiments.ShardedUFStudy(sc, seed, shardedUFShards)
	if err != nil {
		return err
	}
	fmt.Printf("%6s  %12s  %12s  %12s  %12s  %11s  %11s  %11s  %7s\n",
		"p", "legacy idle", "sharded idle", "recv wait", "reconcile",
		"master inKB", "(legacy)", "delta edges", "phases")
	for _, r := range rows {
		fmt.Printf("%6d  %12.4f  %12.4f  %12.4f  %12.4f  %11.1f  %11.1f  %11d  %7d\n",
			r.P, r.LegacyIdle.Seconds(), r.ShardIdle.Seconds(),
			r.ShardRecv.Seconds(), r.ShardRecon.Seconds(),
			float64(r.ShardMasterBytes)/1024, float64(r.LegacyMasterBytes)/1024,
			r.DeltaEdges, r.Phases)
	}
	last := rows[len(rows)-1]
	fmt.Printf("p=%d master idle: legacy %.4fs -> sharded %.4fs (%.2f%%); master inflow %.0f KB -> %.0f KB (%.1f%%)\n",
		last.P, last.LegacyIdle.Seconds(), last.ShardIdle.Seconds(),
		100*last.ShardIdle.Seconds()/last.LegacyIdle.Seconds(),
		float64(last.LegacyMasterBytes)/1024, float64(last.ShardMasterBytes)/1024,
		100*float64(last.ShardMasterBytes)/float64(last.LegacyMasterBytes))

	rep := &telemetry.RunReport{
		Tool: "shardeduf",
		Params: map[string]string{
			"scale":  sc.Name,
			"n":      fmt.Sprintf("%d", sc.ComponentN),
			"seed":   fmt.Sprintf("%d", seed),
			"shards": fmt.Sprintf("%d", shardedUFShards),
		},
		Procs:     rows[len(rows)-1].P,
		Simulated: true,
		Counters:  map[string]float64{},
	}
	for _, r := range rows {
		rep.Phases = append(rep.Phases,
			telemetry.PhaseEntry{Name: fmt.Sprintf("p%d_legacy", r.P), Seconds: r.LegacyTotal.Seconds()},
			telemetry.PhaseEntry{Name: fmt.Sprintf("p%d_sharded", r.P), Seconds: r.ShardTotal.Seconds()})
		pfx := fmt.Sprintf("p%d_", r.P)
		rep.Counters[pfx+"legacy_master_idle_ns"] = float64(r.LegacyIdle.Nanoseconds())
		rep.Counters[pfx+"sharded_master_idle_ns"] = float64(r.ShardIdle.Nanoseconds())
		rep.Counters[pfx+"sharded_master_recv_wait_ns"] = float64(r.ShardRecv.Nanoseconds())
		rep.Counters[pfx+"sharded_master_reconcile_wait_ns"] = float64(r.ShardRecon.Nanoseconds())
		rep.Counters[pfx+"legacy_master_bytes_recv"] = float64(r.LegacyMasterBytes)
		rep.Counters[pfx+"sharded_master_bytes_recv"] = float64(r.ShardMasterBytes)
		rep.Counters[pfx+"sharded_delta_edges"] = float64(r.DeltaEdges)
		rep.Counters[pfx+"sharded_reconcile_phases"] = float64(r.Phases)
	}
	if repStamp.IsZero() {
		rep.Stamp()
	} else {
		rep.StampAt(repStamp)
		rep.WallSeconds = 0
	}
	if err := rep.WriteJSON(shardedUFBench); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote sharded union-find comparison to %s\n", shardedUFBench)
	return nil
}

// repStamp mirrors the -stamp flag for study functions that write their own
// report files (the dispatch-table signature has no room to thread it).
var repStamp time.Time

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func trimStudy(sc experiments.Scale, seed int64) error {
	header(fmt.Sprintf("Trim study — poly(A) tails vs trimmed, %d ESTs", sc.ComponentN))
	rows, err := experiments.TrimStudy(sc.ComponentN, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s  %12s  %12s  %10s  %29s\n",
		"variant", "generated", "processed", "time", "OQ OV UN CC (%)")
	for _, r := range rows {
		fmt.Printf("%-24s  %12d  %12d  %10.3f  %29s\n",
			r.Variant, r.PairsGenerated, r.PairsProcessed, r.Time.Seconds(), qualityCols(r.Quality))
	}
	return nil
}
