// Command estsim generates a synthetic EST benchmark with known correct
// clustering — the stand-in for the paper's Arabidopsis data set.
//
// Usage:
//
//	estsim -n 10000 [-genes 500] [-error 0.02] [-seed 1] \
//	       -out ests.fasta [-truth truth.tsv]
//
// The truth file has one "estNNNNNN<TAB>gene" line per EST and is the
// reference input for evalclust.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pace"
)

func main() {
	n := flag.Int("n", 1000, "number of ESTs")
	genes := flag.Int("genes", 0, "number of genes (0 = n/20)")
	errRate := flag.Float64("error", 0.02, "per-base sequencing error rate")
	mean := flag.Int("len", 550, "mean EST length")
	paralogs := flag.Int("paralogs", 0, "gene families with a diverged paralog")
	divergence := flag.Float64("divergence", 0.1, "paralog per-base divergence")
	polyA := flag.Int("polya", 0, "max poly(A) tail length appended to transcripts (0 = none)")
	altsplice := flag.Float64("altsplice", 0, "probability a gene has an exon-skipping isoform")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output FASTA file (required)")
	truth := flag.String("truth", "", "output truth TSV file")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "estsim: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	opt := pace.SimOptions{
		NumESTs:           *n,
		NumGenes:          *genes,
		ErrorRate:         *errRate,
		MeanLength:        *mean,
		ParalogFamilies:   *paralogs,
		ParalogDivergence: *divergence,
		AltSpliceProb:     *altsplice,
		Seed:              *seed,
	}
	if *polyA > 0 {
		opt.PolyATail = [2]int{(*polyA + 1) / 2, *polyA}
	}
	b, err := pace.Simulate(opt)
	if err != nil {
		fatal(err)
	}

	recs := make([]pace.Record, len(b.ESTs))
	for i, e := range b.ESTs {
		recs[i] = pace.Record{
			ID:   fmt.Sprintf("est%06d", i),
			Desc: fmt.Sprintf("gene=%d", b.Truth[i]),
			Seq:  e,
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := pace.WriteFASTA(f, recs); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	if *truth != "" {
		tf, err := os.Create(*truth)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(tf)
		for i, g := range b.Truth {
			fmt.Fprintf(w, "est%06d\t%d\n", i, g)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "estsim: wrote %d ESTs from %d genes to %s\n",
		len(b.ESTs), b.NumGenes, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "estsim:", err)
	os.Exit(1)
}
