// Command evalclust assesses a predicted clustering against a reference
// using the paper's pair-based metrics (OQ, OV, UN, CC — §4.1).
//
// Usage:
//
//	evalclust -pred clusters.tsv -truth truth.tsv
//
// Both inputs are TSV files of "id<TAB>label" lines; ids must coincide
// (order may differ).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"pace"
)

// readLabels parses an id→label TSV.
func readLabels(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	labelIDs := map[string]int{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'id label', got %q", path, line, text)
		}
		if _, dup := out[fields[0]]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate id %q", path, line, fields[0])
		}
		// Labels may be arbitrary strings; densify.
		l, ok := labelIDs[fields[1]]
		if !ok {
			l = len(labelIDs)
			labelIDs[fields[1]] = l
		}
		out[fields[0]] = l
	}
	return out, sc.Err()
}

func main() {
	pred := flag.String("pred", "", "predicted clustering TSV (required)")
	truth := flag.String("truth", "", "reference clustering TSV (required)")
	flag.Parse()
	if *pred == "" || *truth == "" {
		fmt.Fprintln(os.Stderr, "evalclust: -pred and -truth are required")
		flag.Usage()
		os.Exit(2)
	}

	p, err := readLabels(*pred)
	if err != nil {
		fatal(err)
	}
	t, err := readLabels(*truth)
	if err != nil {
		fatal(err)
	}
	if len(p) != len(t) {
		fatal(fmt.Errorf("id sets differ in size: %d vs %d", len(p), len(t)))
	}
	var pv, tv []int
	for id, pl := range p {
		tl, ok := t[id]
		if !ok {
			fatal(fmt.Errorf("id %q missing from truth", id))
		}
		pv = append(pv, pl)
		tv = append(tv, tl)
	}
	q, err := pace.Evaluate(pv, tv)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("n=%d\n", len(pv))
	fmt.Printf("TP=%d FP=%d TN=%d FN=%d\n", q.TP, q.FP, q.TN, q.FN)
	fmt.Printf("OQ=%.2f%% OV=%.2f%% UN=%.2f%% CC=%.2f%%\n",
		100*q.OQ, 100*q.OV, 100*q.UN, 100*q.CC)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalclust:", err)
	os.Exit(1)
}
