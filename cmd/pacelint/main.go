// Command pacelint runs the project's analyzer suite: the mechanical form
// of the pipeline's ownership, determinism and wire-format contracts.
//
// Standalone:
//
//	go run ./cmd/pacelint ./...
//
// As a vet tool (analyzes test variants too, cached by the build system):
//
//	go build -o /tmp/pacelint ./cmd/pacelint
//	go vet -vettool=/tmp/pacelint ./...
//
// See DESIGN.md §10 for the invariant catalog and the //pacelint:allow
// directive syntax.
package main

import (
	"pace/internal/lint"
	"pace/internal/lint/analyzers"
)

func main() {
	lint.Main(analyzers.All())
}
