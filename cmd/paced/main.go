// Command paced is the multi-tenant clustering server: a long-running
// daemon wrapping pace.Session behind an HTTP API, so many independent EST
// collections can be clustered incrementally by many clients at once.
//
// Usage:
//
//	paced -addr :8080 -data /var/lib/paced [-metrics-addr :9090] [engine flags]
//
// API (see internal/serve):
//
//	POST   /v1/sessions                 create a session {"id","tenant"}
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            session info
//	DELETE /v1/sessions/{id}            delete a session and its state
//	POST   /v1/sessions/{id}/batches    ingest a batch (FASTA or JSON)
//	GET    /v1/sessions/{id}/labels     labels as TSV (?format=json)
//	GET    /healthz                     liveness and drain state
//
// Concurrency: each session is serialized (pace.Session is
// single-goroutine), different sessions cluster in parallel, and batch
// ingestion is bounded by an admission queue — -admit requests in service,
// -queue waiting, everything beyond rejected with 429 so clients back off.
//
// Durability: with -data, every session persists a crash-consistent state
// directory after each batch (EST store first, checkpoint second — the
// order whose crash windows are recoverable). On start paced resumes every
// session it finds; a torn directory fails with serve.ErrStateMismatch and
// a recovery hint rather than resuming silently wrong.
//
// Shutdown: SIGTERM/SIGINT drains gracefully — new work is refused (503),
// in-flight batches finish (bounded by -drain-timeout), every session is
// saved, then the listeners close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pace"
	"pace/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	dataDir := flag.String("data", "", "state root directory; each session persists under <data>/<id> (empty = in-memory only)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar and pprof on this address")
	procs := flag.Int("p", 1, "ranks per session run (1 = sequential, >=2 = master+slaves)")
	sim := flag.Bool("sim", false, "run sessions on the simulated parallel machine")
	window := flag.Int("w", 8, "suffix bucketing window w")
	psi := flag.Int("psi", 20, "promising pair threshold ψ")
	batch := flag.Int("batch", 60, "pairs per master-slave interaction")
	maxSessions := flag.Int("max-sessions", 64, "server-wide live session quota")
	maxPerTenant := flag.Int("max-per-tenant", 16, "per-tenant live session quota")
	maxESTs := flag.Int("max-ests", 0, "per-session EST capacity (0 = unlimited)")
	admit := flag.Int("admit", 8, "batch requests serviced concurrently")
	queue := flag.Int("queue", 0, "batch requests allowed to wait for a slot (default 2x -admit)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	flag.Parse()

	opt := pace.DefaultOptions()
	opt.Processors = *procs
	opt.Simulated = *sim
	opt.Window = *window
	opt.MinMatch = *psi
	opt.BatchSize = *batch

	var metrics *pace.MetricsRegistry
	var metricsSrv *pace.MetricsServer
	if *metricsAddr != "" {
		metrics = pace.NewMetricsRegistry()
		opt.Metrics = metrics
		srv, err := pace.ServeMetrics(*metricsAddr, metrics)
		if err != nil {
			fatal(err)
		}
		metricsSrv = srv
		fmt.Fprintf(os.Stderr, "paced: serving metrics on http://%s/metrics\n", srv.Addr())
	}

	mgr, err := serve.NewManager(serve.Config{
		Options:              opt,
		DataDir:              *dataDir,
		MaxSessions:          *maxSessions,
		MaxSessionsPerTenant: *maxPerTenant,
		MaxESTsPerSession:    *maxESTs,
		Admission:            serve.AdmissionConfig{Grants: *admit, Queue: *queue},
		Metrics:              metrics,
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		n, err := mgr.ResumeAll()
		if err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "paced: resumed %d session(s) from %s\n", n, *dataDir)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: serve.NewHandler(mgr)}
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
		close(serveErr)
	}()
	fmt.Fprintf(os.Stderr, "paced: listening on http://%s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	var metricsErr <-chan error
	if metricsSrv != nil {
		metricsErr = metricsSrv.Err()
	}
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "paced: %v: draining (deadline %v)\n", sig, *drainTimeout)
	case err, ok := <-serveErr:
		if ok && err != nil {
			fatal(fmt.Errorf("http server: %w", err))
		}
		return
	case err, ok := <-metricsErr:
		if ok && err != nil {
			fatal(fmt.Errorf("metrics server: %w", err))
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Order: refuse and finish batch work (saving every session), then
	// close the API listener, then the telemetry endpoint.
	if err := mgr.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "paced: drain:", err)
		defer os.Exit(1)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "paced: shutdown:", err)
		defer os.Exit(1)
	}
	if metricsSrv != nil {
		if err := metricsSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "paced: metrics shutdown:", err)
		}
	}
	fmt.Fprintln(os.Stderr, "paced: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paced:", err)
	os.Exit(1)
}
