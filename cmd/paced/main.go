// Command paced is the multi-tenant clustering server: a long-running
// daemon wrapping pace.Session behind an HTTP API, so many independent EST
// collections can be clustered incrementally by many clients at once.
//
// Usage:
//
//	paced -addr :8080 -data /var/lib/paced [-metrics-addr :9090] [engine flags]
//
// API (see internal/serve):
//
//	POST   /v1/sessions                 create a session {"id","tenant"}
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            session info
//	DELETE /v1/sessions/{id}            delete a session and its state
//	POST   /v1/sessions/{id}/batches    ingest a batch (FASTA or JSON)
//	GET    /v1/sessions/{id}/labels     labels as TSV (?format=json)
//	GET    /healthz                     liveness and drain state
//
// Concurrency: each session is serialized (pace.Session is
// single-goroutine), different sessions cluster in parallel, and batch
// ingestion is bounded by an admission queue — -admit requests in service,
// -queue waiting, everything beyond rejected with 429 so clients back off.
//
// Durability: with -data, every session persists a crash-consistent state
// directory after each batch (EST store first, checkpoint second — the
// order whose crash windows are recoverable). On start paced resumes every
// session it finds; a torn directory fails with serve.ErrStateMismatch and
// a recovery hint rather than resuming silently wrong.
//
// Shutdown: SIGTERM/SIGINT drains gracefully — new work is refused (503),
// in-flight batches finish (bounded by -drain-timeout; at the deadline they
// are canceled and rolled back), every session is saved, then the listeners
// close.
//
// Robustness: -read-header-timeout/-read-timeout/-idle-timeout bound slow
// clients, -max-batch-bytes caps ingest bodies (413), and -request-timeout
// bounds one ingest end to end — on expiry the engine run is canceled, the
// session rolls back and the client gets 504, safe to retry. A session
// whose post-batch save fails turns degraded read-only (ingest → 503 with
// Retry-After, reads still served); -degraded-probe retries its save until
// the disk heals. -chaos and -chaos-fs inject deterministic engine and
// filesystem faults for testing.
//
// Observability: structured logs on stderr (-log-format json|text,
// -log-level), one access line plus engine lifecycle lines per request,
// all carrying the request's X-Request-ID (client-supplied or minted).
// -trace streams a Chrome trace: HTTP request spans and per-batch spans on
// the server's process lane, each session's engine timelines on its own.
// -metrics-addr serves Prometheus metrics including per-route latency,
// admission queue wait, per-session batch latency and pace_build_info.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pace"
	"pace/internal/serve"
	"pace/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	dataDir := flag.String("data", "", "state root directory; each session persists under <data>/<id> (empty = in-memory only)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar and pprof on this address")
	tracePath := flag.String("trace", "", "write a Chrome trace (request + engine spans) to this file")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "json", "log encoding on stderr: json or text")
	procs := flag.Int("p", 1, "ranks per session run (1 = sequential, >=2 = master+slaves)")
	sim := flag.Bool("sim", false, "run sessions on the simulated parallel machine")
	window := flag.Int("w", 8, "suffix bucketing window w")
	psi := flag.Int("psi", 20, "promising pair threshold ψ")
	batch := flag.Int("batch", 60, "pairs per master-slave interaction")
	mergeShards := flag.Int("merge-shards", 0, "merge-delta protocol with K union-find shards on the master (0 = legacy per-pair protocol)")
	maxSessions := flag.Int("max-sessions", 64, "server-wide live session quota")
	maxPerTenant := flag.Int("max-per-tenant", 16, "per-tenant live session quota")
	maxESTs := flag.Int("max-ests", 0, "per-session EST capacity (0 = unlimited)")
	admit := flag.Int("admit", 8, "batch requests serviced concurrently")
	queue := flag.Int("queue", 0, "batch requests allowed to wait for a slot (default 2x -admit)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline for batch ingest (queue wait + engine run); expiry cancels the run, rolls the session back and returns 504 (0 = none)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "time allowed to read a request's headers (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", time.Minute, "time allowed to read a whole request, body included")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "how long an idle keep-alive connection is held open")
	maxBatchBytes := flag.Int64("max-batch-bytes", 0, "ingest body cap in bytes; oversized uploads fail with 413 (0 = derive from -max-ests)")
	degradedProbe := flag.Duration("degraded-probe", 15*time.Second, "how often to retry persistence for degraded read-only sessions (0 = never)")
	chaosSpec := flag.String("chaos", "", "engine fault-injection spec (seed=N,crash=RANK:AFTER[:TAG],drop=P,dup=P,delay=P:DUR,transient=P[:MAX]) — testing only")
	chaosFSSpec := flag.String("chaos-fs", "", "filesystem fault-injection spec (seed=N,crash=OP,pwrite=P,ptorn=P,psync=P,prename=P,max=N) — testing only")
	flag.Parse()

	level, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, level, telemetry.NewWallClock())
	if err != nil {
		fatal(err)
	}

	opt := pace.DefaultOptions()
	opt.Processors = *procs
	opt.Simulated = *sim
	opt.Window = *window
	opt.MinMatch = *psi
	opt.BatchSize = *batch
	if *mergeShards < 0 {
		fatal(fmt.Errorf("-merge-shards must be >= 0 (0 = legacy single union-find), got %d", *mergeShards))
	}
	opt.MergeShards = *mergeShards
	if *chaosSpec != "" {
		plan, err := pace.ParseFaultPlan(*chaosSpec)
		if err != nil {
			fatal(err)
		}
		opt.Fault = plan
		logger.Warn("engine chaos plan active", "spec", *chaosSpec)
	}
	fsys := pace.OSFS()
	if *chaosFSSpec != "" {
		plan, err := pace.ParseFSFaultPlan(*chaosFSSpec)
		if err != nil {
			fatal(err)
		}
		fsys = pace.NewFaultyFS(fsys, plan)
		logger.Warn("filesystem chaos plan active", "spec", *chaosFSSpec)
	}

	var metrics *pace.MetricsRegistry
	var metricsSrv *pace.MetricsServer
	if *metricsAddr != "" {
		metrics = pace.NewMetricsRegistry()
		telemetry.RegisterBuildInfo(metrics)
		opt.Metrics = metrics
		srv, err := pace.ServeMetrics(*metricsAddr, metrics)
		if err != nil {
			fatal(err)
		}
		metricsSrv = srv
		logger.Info("metrics serving", "url", fmt.Sprintf("http://%s/metrics", srv.Addr()))
	}

	var trace *telemetry.TraceWriter
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		trace = telemetry.NewTraceWriter(traceFile)
		logger.Info("trace streaming", "file", *tracePath)
	}

	mgr, err := serve.NewManager(serve.Config{
		Options:              opt,
		DataDir:              *dataDir,
		MaxSessions:          *maxSessions,
		MaxSessionsPerTenant: *maxPerTenant,
		MaxESTsPerSession:    *maxESTs,
		MaxBatchBytes:        *maxBatchBytes,
		Admission:            serve.AdmissionConfig{Grants: *admit, Queue: *queue},
		RequestTimeout:       *requestTimeout,
		FS:                   fsys,
		Metrics:              metrics,
		Logger:               logger,
		Trace:                trace,
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		n, err := mgr.ResumeAll()
		if err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		if n > 0 {
			logger.Info("sessions resumed from disk", "count", n, "data", *dataDir)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Header/read/idle timeouts defend the listener against slow or
	// half-open clients; without them one slowloris connection per worker
	// starves real ingest.
	srv := &http.Server{
		Handler:           serve.NewHandler(mgr),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
		close(serveErr)
	}()
	logger.Info("listening", "url", fmt.Sprintf("http://%s", ln.Addr()))

	// Degraded sessions (a persistence failure flipped them read-only)
	// re-arm automatically: the probe retries each one's save and clears
	// the flag when the disk accepts writes again.
	probeStop := make(chan struct{})
	if *degradedProbe > 0 && *dataDir != "" {
		go func() {
			tick := time.NewTicker(*degradedProbe)
			defer tick.Stop()
			for {
				select {
				case <-probeStop:
					return
				case <-tick.C:
					if healed := mgr.ProbeDegraded(); healed > 0 {
						logger.Info("degraded sessions healed", "count", healed)
					}
				}
			}
		}()
	}
	defer close(probeStop)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	var metricsErr <-chan error
	if metricsSrv != nil {
		metricsErr = metricsSrv.Err()
	}
	select {
	case sig := <-sigc:
		logger.Info("signal received; draining", "signal", sig.String(), "deadline", *drainTimeout)
	case err, ok := <-serveErr:
		if ok && err != nil {
			fatal(fmt.Errorf("http server: %w", err))
		}
		return
	case err, ok := <-metricsErr:
		if ok && err != nil {
			fatal(fmt.Errorf("metrics server: %w", err))
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Order: refuse and finish batch work (saving every session), then
	// close the API listener, then the trace stream and the telemetry
	// endpoint.
	if err := mgr.Drain(ctx); err != nil {
		logger.Error("drain failed", "err", err.Error())
		defer os.Exit(1)
	}
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "err", err.Error())
		defer os.Exit(1)
	}
	closeTrace(logger, trace, traceFile)
	if metricsSrv != nil {
		if err := metricsSrv.Shutdown(ctx); err != nil {
			logger.Error("metrics shutdown failed", "err", err.Error())
		}
	}
	logger.Info("drained, bye")
}

// closeTrace finishes the trace stream, surfacing (not swallowing) any
// write error the stream absorbed mid-run and how many events it cost.
func closeTrace(logger *slog.Logger, trace *telemetry.TraceWriter, f *os.File) {
	if trace == nil {
		return
	}
	if err := trace.Close(); err != nil {
		logger.Error("trace stream failed; trace file incomplete",
			"err", err.Error(), "events_dropped", trace.Dropped())
	} else {
		logger.Info("trace closed", "events", trace.Events(), "file", f.Name())
	}
	if err := f.Close(); err != nil {
		logger.Error("trace file close failed", "err", err.Error())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paced:", err)
	os.Exit(1)
}
