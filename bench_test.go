package pace

// One benchmark per table and figure of the paper's evaluation section.
// Each target regenerates its experiment at the Tiny scale so `go test
// -bench=.` completes quickly; cmd/experiments runs the same code at the
// larger scales used for EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"pace/internal/cluster"
	"pace/internal/experiments"
	"pace/internal/mp"
)

func reportRows(b *testing.B, n int) {
	b.ReportMetric(float64(n), "rows")
}

func BenchmarkTable1_BaselineVsPace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(experiments.Tiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, len(rows))
	}
}

func BenchmarkTable2_Quality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.Tiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, len(rows))
	}
}

func BenchmarkTable3_Components(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(experiments.Tiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, len(rows))
	}
}

func BenchmarkFig6a_RuntimeVsProcs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig6a(experiments.Tiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, len(pts))
	}
}

func BenchmarkFig6b_RuntimeVsSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig6b(experiments.Tiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, len(pts))
	}
}

func BenchmarkFig7_PairCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(experiments.Tiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, len(rows))
	}
}

func BenchmarkFig8_BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(experiments.Tiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, len(rows))
	}
}

// --- Ablation benches for the design choices called out in DESIGN.md ---

func BenchmarkAblationSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(experiments.Tiny.ComponentN, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, len(rows))
	}
}

// BenchmarkAblationWindow sweeps the bucket width w: small w concentrates
// suffixes in few buckets (worse balance, deeper re-bucketing), large w
// multiplies bucket bookkeeping.
func BenchmarkAblationWindow(b *testing.B) {
	bench, err := experiments.Dataset(experiments.Tiny.ComponentN, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			cfg := cluster.DefaultConfig(1)
			cfg.Window = w
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Run(bench.ESTs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNetwork sweeps the simulated interconnect latency and
// reports its effect on virtual run-time at a fixed machine size.
func BenchmarkAblationNetwork(b *testing.B) {
	bench, err := experiments.Dataset(experiments.Tiny.ComponentN, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, lat := range []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond} {
		b.Run(lat.String(), func(b *testing.B) {
			var virt time.Duration
			for i := 0; i < b.N; i++ {
				cfg := cluster.DefaultConfig(8)
				cfg.MP = mp.DefaultSimConfig(8)
				cfg.MP.Latency = lat
				res, err := cluster.Run(bench.ESTs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				virt = res.Stats.Phases.Total
			}
			b.ReportMetric(virt.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkPublicAPI measures the end-to-end public entry point.
func BenchmarkPublicAPI(b *testing.B) {
	bench, err := Simulate(SimOptions{NumESTs: 200, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(bench.ESTs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPITelemetry is BenchmarkPublicAPI with every telemetry
// sink attached (metrics registry + trace to io.Discard); the delta against
// BenchmarkPublicAPI bounds the cost of full observability end to end.
func BenchmarkPublicAPITelemetry(b *testing.B) {
	bench, err := Simulate(SimOptions{NumESTs: 200, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Metrics = NewMetricsRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw := NewTraceWriter(io.Discard)
		opt.Trace = tw
		cl, err := Cluster(bench.ESTs, opt)
		if err != nil {
			b.Fatal(err)
		}
		if err := tw.Close(); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			rep := BuildReport(cl, opt, "bench", "simulated", len(bench.ESTs), 0)
			reportRows(b, len(rep.Phases))
		}
	}
}

// BenchmarkAblationTrim measures the poly(A) tail study (why trimming is a
// prerequisite for suffix-tree clustering).
func BenchmarkAblationTrim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TrimStudy(experiments.Tiny.ComponentN, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, len(rows))
	}
}
