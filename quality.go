package pace

import (
	"pace/internal/metrics"
)

// Quality is the paper's §4.1 pair-based clustering assessment (Table 2):
// every unordered EST pair is classified as true/false positive/negative by
// comparing co-membership in the predicted versus the reference clustering.
type Quality struct {
	// OQ (overlap quality) = TP / (TP+FP+FN).
	OQ float64
	// OV (over-prediction) = FP / (TP+FP).
	OV float64
	// UN (under-prediction) = FN / (TP+FN).
	UN float64
	// CC is the correlation coefficient over the four counts.
	CC float64

	TP, FP, TN, FN int64
}

// Evaluate compares a predicted clustering against a reference. Labels are
// arbitrary identifiers; only co-membership matters.
func Evaluate(pred, truth []int) (Quality, error) {
	p := make([]int32, len(pred))
	for i, v := range pred {
		p[i] = int32(v)
	}
	t := make([]int32, len(truth))
	for i, v := range truth {
		t[i] = int32(v)
	}
	q, err := metrics.Compare(p, t)
	if err != nil {
		return Quality{}, err
	}
	return Quality{
		OQ: q.OQ, OV: q.OV, UN: q.UN, CC: q.CC,
		TP: q.TP, FP: q.FP, TN: q.TN, FN: q.FN,
	}, nil
}

// String renders the measures in the paper's percentage format.
func (q Quality) String() string {
	return metrics.FromCounts(metrics.Counts{TP: q.TP, FP: q.FP, TN: q.TN, FN: q.FN}).String()
}
