package pace

import (
	"bytes"
	"strings"
	"testing"
)

func testBenchmark(t testing.TB, n, genes int, seed int64) *Benchmark {
	t.Helper()
	b, err := Simulate(SimOptions{
		NumESTs:       n,
		NumGenes:      genes,
		Seed:          seed,
		MeanLength:    400,
		SDLength:      40,
		MinLength:     200,
		TranscriptLen: [2]int{450, 540},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSimulatePublic(t *testing.T) {
	b := testBenchmark(t, 100, 6, 1)
	if len(b.ESTs) != 100 || len(b.Truth) != 100 || b.NumGenes != 6 {
		t.Fatalf("benchmark shape: %d %d %d", len(b.ESTs), len(b.Truth), b.NumGenes)
	}
	for i, e := range b.ESTs {
		if len(e) == 0 {
			t.Fatalf("EST %d empty", i)
		}
		if strings.Trim(e, "ACGT") != "" {
			t.Fatalf("EST %d has non-ACGT characters", i)
		}
	}
}

func TestSimulateParalogs(t *testing.T) {
	b, err := Simulate(SimOptions{
		NumESTs: 50, NumGenes: 4, Seed: 2,
		ParalogFamilies: 2, ParalogDivergence: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumGenes != 6 {
		t.Fatalf("paralogs not added: %d genes", b.NumGenes)
	}
}

func TestSimulateInvalidTranscriptLen(t *testing.T) {
	if _, err := Simulate(SimOptions{NumESTs: 10, TranscriptLen: [2]int{100, 50}}); err == nil {
		t.Error("invalid range accepted")
	}
}

func TestClusterQuickstartFlow(t *testing.T) {
	b := testBenchmark(t, 120, 8, 3)
	opt := DefaultOptions()
	opt.Window = 6
	opt.MinMatch = 18
	cl, err := Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Labels) != 120 {
		t.Fatalf("labels: %d", len(cl.Labels))
	}
	if cl.NumClusters != len(cl.Clusters) {
		t.Fatalf("clusters slice mismatch: %d vs %d", cl.NumClusters, len(cl.Clusters))
	}
	total := 0
	for l, members := range cl.Clusters {
		for _, m := range members {
			if cl.Labels[m] != l {
				t.Fatalf("member %d not labeled %d", m, l)
			}
		}
		total += len(members)
	}
	if total != 120 {
		t.Fatalf("cluster membership covers %d ESTs", total)
	}
	q, err := Evaluate(cl.Labels, b.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if q.OQ < 0.85 {
		t.Errorf("public-API clustering quality: %v", q)
	}
	if cl.Stats.PairsGenerated == 0 || cl.Stats.Phases.Total == 0 {
		t.Errorf("stats unfilled: %+v", cl.Stats)
	}
}

func TestClusterParallelSimulated(t *testing.T) {
	b := testBenchmark(t, 80, 5, 4)
	opt := DefaultOptions()
	opt.Window = 6
	opt.MinMatch = 18
	opt.Processors = 4
	opt.Simulated = true
	cl, err := Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Evaluate(cl.Labels, b.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if q.OQ < 0.80 {
		t.Errorf("simulated parallel quality: %v", q)
	}
	if cl.Stats.Phases.Construct == 0 {
		t.Error("phase times missing in simulated mode")
	}
}

func TestClusterRejectsBadInput(t *testing.T) {
	opt := DefaultOptions()
	if _, err := Cluster([]string{"ACGT", "ACNT"}, opt); err == nil {
		t.Error("invalid nucleotide accepted")
	}
	if _, err := Cluster([]string{"ACGT", ""}, opt); err == nil {
		t.Error("empty EST accepted")
	}
	opt.Processors = 0
	if _, err := Cluster([]string{"ACGT"}, opt); err == nil {
		t.Error("zero processors accepted")
	}
	opt = DefaultOptions()
	opt.MinMatch = 2 // below Window
	if _, err := Cluster([]string{"ACGTACGT"}, opt); err == nil {
		t.Error("MinMatch < Window accepted")
	}
}

func TestIncrementalReclustering(t *testing.T) {
	b := testBenchmark(t, 100, 6, 5)
	opt := DefaultOptions()
	opt.Window = 6
	opt.MinMatch = 18

	old := 70
	first, err := Cluster(b.ESTs[:old], opt)
	if err != nil {
		t.Fatal(err)
	}

	// Re-cluster the full set from scratch vs incrementally seeded.
	scratch, err := Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.InitialLabels = first.Labels
	inc, err := Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}

	if inc.Stats.PairsProcessed >= scratch.Stats.PairsProcessed {
		t.Errorf("incremental did not save alignments: %d vs %d",
			inc.Stats.PairsProcessed, scratch.Stats.PairsProcessed)
	}
	qs, _ := Evaluate(scratch.Labels, b.Truth)
	qi, _ := Evaluate(inc.Labels, b.Truth)
	if qi.OQ < qs.OQ-0.05 {
		t.Errorf("incremental quality dropped: %v vs %v", qi, qs)
	}
}

func TestEvaluatePublic(t *testing.T) {
	q, err := Evaluate([]int{0, 0, 1}, []int{5, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if q.OQ != 1 || q.CC != 1 || q.TP != 1 {
		t.Errorf("perfect eval: %+v", q)
	}
	if q.String() == "" {
		t.Error("empty String()")
	}
	if _, err := Evaluate([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFASTARoundTripPublic(t *testing.T) {
	recs := []Record{
		{ID: "a", Desc: "first", Seq: "ACGTACGT"},
		{ID: "b", Seq: "GGGTTT"},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("round trip: %+v", got)
	}
	if s := Sequences(got); len(s) != 2 || s[0] != "ACGTACGT" {
		t.Fatalf("Sequences: %v", s)
	}
}

func TestReadFASTAAmbiguous(t *testing.T) {
	got, err := ReadFASTA(strings.NewReader(">x\nACNNGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Seq != "ACAAGT" {
		t.Errorf("ambiguity handling: %q", got[0].Seq)
	}
}

func TestTrimPublic(t *testing.T) {
	body := strings.Repeat("ACGC", 30)
	raw := []string{
		body + strings.Repeat("A", 20),
		strings.Repeat("T", 15) + body,
		body,
	}
	out, st, err := Trim(raw, TrimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads != 3 || st.Trimmed != 2 || st.CharsRemoved != 35 {
		t.Errorf("stats: %+v", st)
	}
	for i, s := range out {
		if s != body {
			t.Errorf("read %d not trimmed to body: len %d", i, len(s))
		}
	}
	if _, _, err := Trim([]string{"ACGN"}, TrimOptions{}); err == nil {
		t.Error("invalid sequence accepted")
	}
	if _, _, err := Trim(raw, TrimOptions{MinRun: 1}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestLowComplexityFractionPublic(t *testing.T) {
	f, err := LowComplexityFraction(strings.Repeat("A", 200))
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Errorf("homopolymer fraction %f", f)
	}
	if _, err := LowComplexityFraction("ACGX"); err == nil {
		t.Error("invalid sequence accepted")
	}
}

func TestConsensusPublic(t *testing.T) {
	b := testBenchmark(t, 60, 3, 8)
	opt := DefaultOptions()
	opt.Window = 6
	opt.MinMatch = 18
	cl, err := Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Consensus(b.ESTs, cl.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != cl.NumClusters {
		t.Fatalf("consensus count %d != clusters %d", len(cons), cl.NumClusters)
	}
	for label, c := range cons {
		if c == nil {
			t.Fatalf("cluster %d has no consensus", label)
		}
		if len(c.Seq) == 0 || len(c.Coverage) != len(c.Seq) {
			t.Fatalf("cluster %d: malformed consensus", label)
		}
		if c.Used+c.Excluded != len(cl.Clusters[label]) {
			t.Fatalf("cluster %d: used %d + excluded %d != members %d",
				label, c.Used, c.Excluded, len(cl.Clusters[label]))
		}
	}
	if _, err := Consensus(b.ESTs, cl.Labels[:5]); err == nil {
		t.Error("label length mismatch accepted")
	}
}

func TestDetectSplicingPublic(t *testing.T) {
	bench, err := Simulate(SimOptions{
		NumESTs:       120,
		NumGenes:      3,
		ErrorRate:     0.01,
		AltSpliceProb: 1,
		Seed:          31,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	cl, err := Cluster(bench.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	events, err := DetectSplicing(bench.ESTs, cl.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no splice events on isoform-rich data")
	}
	for _, ev := range events {
		if ev.GapLen < 50 || ev.FlankMatches < 30 {
			t.Errorf("weak event reported: %+v", ev)
		}
		if ev.Member < 0 || ev.Member >= len(bench.ESTs) {
			t.Errorf("member out of range: %+v", ev)
		}
	}
	if _, err := DetectSplicing(bench.ESTs, cl.Labels[:3]); err == nil {
		t.Error("label length mismatch accepted")
	}
}

func TestPolyATailsHurtUntrimmed(t *testing.T) {
	raw, err := Simulate(SimOptions{
		NumESTs:   80,
		NumGenes:  6,
		PolyATail: [2]int{20, 40},
		Seed:      17,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Window = 6
	opt.MinMatch = 18

	dirty, err := Cluster(raw.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	trimmed, _, err := Trim(raw.ESTs, TrimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Cluster(trimmed, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Untrimmed tails flood the generator with spurious A-run pairs.
	if dirty.Stats.PairsGenerated <= 3*clean.Stats.PairsGenerated/2 {
		t.Errorf("tails did not inflate pair generation: %d vs %d",
			dirty.Stats.PairsGenerated, clean.Stats.PairsGenerated)
	}
}
