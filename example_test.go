package pace_test

import (
	"fmt"
	"strings"

	"pace"
)

// Three ESTs: the first two are overlapping fragments of one "gene" (the
// second in reverse complement — strands are unknown in real data), the
// third is unrelated.
func exampleESTs() []string {
	gene := strings.Repeat("ACGTTGCAGGTACCGATTGACCAGTTCGGA", 10)
	revcomp := func(s string) string {
		m := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C'}
		out := make([]byte, len(s))
		for i := 0; i < len(s); i++ {
			out[len(s)-1-i] = m[s[i]]
		}
		return string(out)
	}
	return []string{
		gene[:180],
		revcomp(gene[120:300]),
		strings.Repeat("GGATCCTTAGCAACTGGACCTTAGCTTAGG", 6),
	}
}

func ExampleCluster() {
	cl, err := pace.Cluster(exampleESTs(), pace.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", cl.NumClusters)
	fmt.Println("same cluster:", cl.Labels[0] == cl.Labels[1])
	fmt.Println("separate:", cl.Labels[0] != cl.Labels[2])
	// Output:
	// clusters: 2
	// same cluster: true
	// separate: true
}

func ExampleEvaluate() {
	pred := []int{0, 0, 1, 1}
	truth := []int{7, 7, 9, 9} // same partition, different label values
	q, err := pace.Evaluate(pred, truth)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output:
	// OQ=100.00% OV=0.00% UN=0.00% CC=100.00%
}

func ExampleTrim() {
	raw := []string{strings.Repeat("ACGC", 20) + strings.Repeat("A", 18)}
	trimmed, stats, err := pace.Trim(raw, pace.TrimOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("removed:", stats.CharsRemoved)
	fmt.Println("length:", len(trimmed[0]))
	// Output:
	// removed: 18
	// length: 80
}
