package pace

import (
	"fmt"

	"pace/internal/simulate"
)

// SimOptions configures synthetic benchmark generation (the stand-in for the
// paper's Arabidopsis data set with known correct clustering).
type SimOptions struct {
	// NumESTs is the number of reads to generate.
	NumESTs int
	// NumGenes is the number of source genes (0 derives NumESTs/20).
	NumGenes int
	// ErrorRate is the per-base sequencing error probability
	// (default 0.02: 80% substitutions, 10% insertions, 10% deletions).
	ErrorRate float64
	// MeanLength / SDLength / MinLength shape read lengths
	// (defaults 550/60/150, the paper's EST length regime).
	MeanLength, SDLength, MinLength int
	// TranscriptLen bounds gene transcript lengths [min,max] via exon
	// structure; zero keeps gene-structure defaults.
	TranscriptLen [2]int
	// ParalogFamilies adds that many diverged gene duplicates at
	// ParalogDivergence per-base divergence.
	ParalogFamilies   int
	ParalogDivergence float64
	// PolyATail, when non-zero, appends a poly(A) tail of a length in the
	// inclusive range to every transcript — reads then carry untrimmed
	// tails, as raw dbEST submissions do.
	PolyATail [2]int
	// AltSpliceProb is the probability a gene carries an exon-skipping
	// isoform whose reads mix into the gene's cluster.
	AltSpliceProb float64
	// Seed makes the benchmark reproducible.
	Seed int64
}

// Benchmark is a generated data set with ground truth.
type Benchmark struct {
	// ESTs are the reads as DNA strings, interleaved across genes.
	ESTs []string
	// Truth is the correct clustering: Truth[i] is EST i's source gene.
	Truth []int
	// NumGenes is the number of genes (including paralogs).
	NumGenes int
}

// Simulate generates a synthetic EST benchmark with known correct
// clustering.
func Simulate(opt SimOptions) (*Benchmark, error) {
	cfg := simulate.DefaultConfig(opt.NumESTs)
	cfg.NumGenes = opt.NumGenes
	cfg.Seed = opt.Seed
	if opt.ErrorRate != 0 {
		cfg.ErrorRate = opt.ErrorRate
	}
	if opt.MeanLength != 0 {
		cfg.MeanESTLen = opt.MeanLength
	}
	if opt.SDLength != 0 {
		cfg.SDESTLen = opt.SDLength
	}
	if opt.MinLength != 0 {
		cfg.MinESTLen = opt.MinLength
	}
	if opt.TranscriptLen != [2]int{} {
		lo, hi := opt.TranscriptLen[0], opt.TranscriptLen[1]
		if lo <= 0 || hi < lo {
			return nil, fmt.Errorf("pace: invalid TranscriptLen %v", opt.TranscriptLen)
		}
		// Approximate the requested transcript range with 3 exons.
		cfg.ExonsPerGene = [2]int{3, 3}
		cfg.ExonLen = [2]int{lo / 3, hi / 3}
		if cfg.ExonLen[0] < 1 {
			cfg.ExonLen[0] = 1
		}
		if cfg.ExonLen[1] < cfg.ExonLen[0] {
			cfg.ExonLen[1] = cfg.ExonLen[0]
		}
	}
	cfg.ParalogFamilies = opt.ParalogFamilies
	cfg.ParalogDivergence = opt.ParalogDivergence
	cfg.PolyATail = opt.PolyATail
	cfg.AltSpliceProb = opt.AltSpliceProb

	b, err := simulate.Generate(cfg)
	if err != nil {
		return nil, err
	}
	out := &Benchmark{
		ESTs:     make([]string, len(b.ESTs)),
		Truth:    make([]int, len(b.Truth)),
		NumGenes: len(b.Genes),
	}
	for i := range b.ESTs {
		out.ESTs[i] = b.ESTs[i].String()
		out.Truth[i] = int(b.Truth[i])
	}
	return out, nil
}
