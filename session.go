package pace

import (
	"context"
	"fmt"

	"pace/internal/cluster"
	"pace/internal/seq"
	"pace/internal/telemetry"
	"pace/internal/vfs"
)

// Incremental batch telemetry published by Session.Add when Options.Metrics
// is set, alongside the engine's pace_incremental_buckets_* gauges and
// pace_incremental_{fresh_pairs,stale_suppressed}_total counters.
const (
	metricBatchesTotal = "pace_incremental_batches_total"
	metricBatchNs      = "pace_incremental_batch_ns"
)

// Session is a persistent clustering instance that ingests EST batches
// incrementally — the paper's closing open problem ("is there a way to
// incrementally adjust the EST clusters when a new batch of ESTs is
// sequenced, instead of clustering all the ESTs from scratch?").
//
// Each Add appends a batch as a new generation of the sequence set and
// re-clusters only what the batch can affect: GST buckets no new suffix
// falls into are skipped (sequentially their cached subtrees are reused
// verbatim), and inside rebuilt buckets pairs whose strings both predate
// the batch are suppressed — their maximal common substring is a property
// of the two strings alone, so they were generated and judged when the
// younger string arrived, and that verdict is carried forward by seeding
// the union-find with the previous partition. The resulting labels are
// identical to clustering all ESTs ingested so far from scratch.
//
// A Session is single-goroutine state: do not call its methods
// concurrently. Add is failure-atomic: if a batch run fails, the appended
// generation is rolled back and the session is exactly as it was before
// the call — Labels, NumESTs and Batches are unchanged, and retrying the
// same Add is equivalent to a first attempt.
type Session struct {
	opt     Options
	set     *seq.SetS
	cache   *cluster.BucketCache
	labels  []int32
	last    *Clustering
	batches int
}

// NewSession validates the options and returns an empty session. The first
// Add clusters its batch from scratch; later Adds are incremental.
func NewSession(opt Options) (*Session, error) {
	cfg, err := opt.toConfig()
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Session{opt: opt}
	if opt.Processors == 1 {
		s.cache = cluster.NewBucketCache()
	}
	return s, nil
}

// ResumeSession rebuilds a session from previously clustered ESTs and their
// saved labels (e.g. SaveCheckpoint + LoadCheckpoint + ResumeLabels) without
// re-clustering them: the next Add is incremental from the start.
func ResumeSession(opt Options, ests []string, labels []int) (*Session, error) {
	s, err := NewSession(opt)
	if err != nil {
		return nil, err
	}
	parsed, err := parseESTs(ests)
	if err != nil {
		return nil, err
	}
	set, err := seq.NewSetS(parsed)
	if err != nil {
		return nil, err
	}
	if len(labels) != set.NumESTs() {
		return nil, fmt.Errorf("pace: %d labels for %d ESTs", len(labels), set.NumESTs())
	}
	s.set = set
	s.labels = make([]int32, len(labels))
	for i, l := range labels {
		s.labels[i] = int32(l)
	}
	if s.cache != nil {
		if err := s.cache.Warm(set, opt.Window); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// runSet is swappable in tests to inject a failure at the latest possible
// point of a batch run — after the set append and cache absorption — so the
// rollback path can be exercised deterministically.
var runSet = cluster.RunSet

// Add ingests a batch of ESTs (DNA strings over ACGT; case-insensitive),
// re-clusters incrementally, and returns the clustering over every EST the
// session has seen. The returned Stats cover this batch's run only; its
// Incremental field reports how much work the batch avoided.
//
// Add is failure-atomic: on any error the session is left exactly as it
// was before the call (the appended generation and any bucket-cache
// absorption are rolled back), so a retried Add behaves like a first
// attempt — the guarantee a server needs to retry failed requests.
func (s *Session) Add(ests []string) (*Clustering, error) {
	return s.AddContext(context.Background(), ests)
}

// AddContext is Add with a context bounding the batch run: the engine polls
// ctx at phase boundaries and inside its dispatch loops, and when ctx is
// done the run aborts with an error wrapping ctx.Err(). Cancellation takes
// the same failure-atomic path as any other run error — the appended
// generation is rolled back and the session is exactly its pre-call self,
// so a canceled Add followed by a retried Add is indistinguishable from a
// single never-canceled Add.
func (s *Session) AddContext(ctx context.Context, ests []string) (*Clustering, error) {
	if len(ests) == 0 {
		return nil, fmt.Errorf("pace: empty batch")
	}
	parsed, err := parseESTs(ests)
	if err != nil {
		return nil, err
	}
	cfg, err := s.opt.toConfig()
	if err != nil {
		return nil, err
	}
	cfg.Ctx = ctx
	prevESTs := 0
	if s.set == nil {
		s.set, err = seq.NewSetS(parsed)
		if err != nil {
			return nil, err
		}
	} else {
		prevESTs = s.set.NumESTs()
		cfg.FreshGen, err = s.set.Append(parsed)
		if err != nil {
			return nil, err
		}
	}
	cfg.Cache = s.cache
	if s.labels != nil {
		// Seed the prior partition: every old×old verdict carries forward.
		cfg.InitialLabels = s.labels
	}
	// Batch latency runs on the telemetry clock: wall time normally, the
	// frozen clock when the session is configured for reproducible reports
	// (Options.Stamp), so deterministic runs emit identical counters.
	clk := telemetry.NewWallClock().Elapsed
	if !s.opt.Stamp.IsZero() {
		clk = telemetry.FixedClock{}.Elapsed
	}
	t0 := clk()
	res, err := runSet(s.set, cfg)
	if err != nil {
		s.rollback(prevESTs)
		return nil, err
	}
	s.labels = res.Labels
	s.last = convertResult(res)
	s.batches++
	if m := s.opt.Metrics; m != nil {
		m.Help(metricBatchesTotal, "EST batches ingested by sessions.")
		m.Help(metricBatchNs, "End-to-end latency of one incremental batch, nanoseconds.")
		m.Counter(metricBatchesTotal).Inc()
		m.Histogram(metricBatchNs, telemetry.ExpBounds(1000, 4, 16)).Observe((clk() - t0).Nanoseconds())
	}
	return s.last, nil
}

// rollback undoes a failed batch: the sequence set is truncated to its
// pre-Add EST count and the bucket cache forgets every suffix (and every
// subtree rebuilt over a suffix) of the discarded generation. Labels, the
// last clustering and the batch counter were never touched — they move
// only after a successful run — so the session is exactly its pre-Add
// self and the next Add re-runs the batch as if the failure never happened.
func (s *Session) rollback(prevESTs int) {
	if prevESTs == 0 {
		// The failed batch was the session's first: back to empty.
		s.set = nil
		if s.cache != nil {
			s.cache.Truncate(0)
		}
		return
	}
	// prevESTs is a prior NumESTs of this set, so it is always in range.
	_ = s.set.Truncate(prevESTs)
	if s.cache != nil {
		s.cache.Truncate(seq.Forward(seq.ESTID(prevESTs)))
	}
}

// Labels returns a copy of the current partition: one dense cluster label
// per EST, in ingest order. Nil before the first Add.
func (s *Session) Labels() []int {
	if s.labels == nil {
		return nil
	}
	out := make([]int, len(s.labels))
	for i, l := range s.labels {
		out[i] = int(l)
	}
	return out
}

// Clustering returns the result of the most recent Add (nil before any).
// Its Labels and Clusters cover every EST the session holds; its Stats
// cover only the latest batch's run.
func (s *Session) Clustering() *Clustering { return s.last }

// NumESTs reports how many ESTs the session holds.
func (s *Session) NumESTs() int {
	if s.set == nil {
		return 0
	}
	return s.set.NumESTs()
}

// Batches reports how many batches have been ingested via Add.
func (s *Session) Batches() int { return s.batches }

// SaveCheckpoint persists the session's current partition to
// dir/pace.ckpt using the engine's checkpoint format (atomic replace,
// CRC-verified). Reload with LoadCheckpoint and re-enter with
// ResumeSession(opt, ests, ResumeLabels(ck)).
func (s *Session) SaveCheckpoint(dir string) error {
	return s.SaveCheckpointFS(vfs.OS{}, dir)
}

// SaveCheckpointFS is SaveCheckpoint writing through an explicit filesystem
// seam, so servers (and chaos tests) can route the snapshot through a
// fault-injecting vfs.FS.
func (s *Session) SaveCheckpointFS(fsys vfs.FS, dir string) error {
	if s.set == nil {
		return fmt.Errorf("pace: session holds no ESTs")
	}
	ck, err := cluster.CheckpointFromLabels(s.set.NumESTs(), s.opt.Window, s.opt.MinMatch, s.labels)
	if err != nil {
		return err
	}
	_, err = cluster.WriteCheckpointFS(fsys, dir, ck)
	return err
}
