// Assembly pipeline: the paper positions EST clustering as the preprocessing
// step for assembly and follow-on analyses. This example runs the whole
// chain on a simulated data set whose genes carry alternatively spliced
// isoforms:
//
//	simulate → trim poly(A) tails → cluster → per-cluster consensus →
//	alternative-splicing detection
package main

import (
	"fmt"
	"log"

	"pace"
)

func main() {
	// Genes with poly(A) tails and exon-skipping isoforms — raw reads as
	// a sequencing center would deposit them.
	bench, err := pace.Simulate(pace.SimOptions{
		NumESTs:       300,
		NumGenes:      10,
		ErrorRate:     0.015,
		PolyATail:     [2]int{15, 40},
		AltSpliceProb: 0.7,
		Seed:          21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Trim tails (see examples in the README for why this matters to
	//    a suffix-tree clusterer).
	trimmed, tstats, err := pace.Trim(bench.ESTs, pace.TrimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trimmed %d/%d reads (%d chars of poly(A)/poly(T))\n",
		tstats.Trimmed, tstats.Reads, tstats.CharsRemoved)

	// 2. Cluster.
	cl, err := pace.Cluster(trimmed, pace.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	q, _ := pace.Evaluate(cl.Labels, bench.Truth)
	fmt.Printf("clustered into %d clusters (%d genes): %s\n",
		cl.NumClusters, bench.NumGenes, q)

	// 3. Consensus per cluster.
	cons, err := pace.Consensus(trimmed, cl.Labels)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for label, c := range cons {
		if c == nil || len(cl.Clusters[label]) < 5 || shown >= 5 {
			continue
		}
		maxCov := 0
		for _, v := range c.Coverage {
			if v > maxCov {
				maxCov = v
			}
		}
		fmt.Printf("cluster %2d: %3d reads -> consensus %4d bp (peak coverage %d, %d excluded)\n",
			label, len(cl.Clusters[label]), len(c.Seq), maxCov, c.Excluded)
		shown++
	}

	// 4. Alternative-splicing scan (the paper's named extension).
	events, err := pace.DetectSplicing(trimmed, cl.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d candidate splice events:\n", len(events))
	for i, ev := range events {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(events)-8)
			break
		}
		kind := "member skips exon"
		if !ev.SkippedInMember {
			kind = "member carries extra exon"
		}
		fmt.Printf("  cluster %2d est %3d: %s at consensus %4d, %3d bp (flank %d)\n",
			ev.Cluster, ev.Member, kind, ev.ConsensusPos, ev.GapLen, ev.FlankMatches)
	}
}
