// Incremental re-clustering — the paper's closing open problem: "Is there a
// way to incrementally adjust the EST clusters when a new batch of ESTs is
// sequenced, instead of clustering all the ESTs from scratch?"
//
// This example demonstrates the pragmatic answer shipped with this library:
// seed the union-find with the previous partition (Options.InitialLabels).
// Pairs inside already-established clusters are skipped rather than
// re-aligned, so only work involving the new batch (plus any old-cluster
// merges the new evidence enables) is spent.
package main

import (
	"fmt"
	"log"

	"pace"
)

func main() {
	bench, err := pace.Simulate(pace.SimOptions{
		NumESTs:  500,
		NumGenes: 25,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	opt := pace.DefaultOptions()
	oldBatch := 400 // ESTs sequenced previously

	first, err := pace.Cluster(bench.ESTs[:oldBatch], opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial batch: %d ESTs -> %d clusters (%d alignments)\n",
		oldBatch, first.NumClusters, first.Stats.PairsProcessed)

	// A new sequencing batch of 100 ESTs arrives. Option A: redo
	// everything.
	scratch, err := pace.Cluster(bench.ESTs, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from scratch:  %d ESTs -> %d clusters (%d alignments)\n",
		len(bench.ESTs), scratch.NumClusters, scratch.Stats.PairsProcessed)

	// Option B: seed with the previous partition.
	opt.InitialLabels = first.Labels
	inc, err := pace.Cluster(bench.ESTs, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental:   %d ESTs -> %d clusters (%d alignments)\n",
		len(bench.ESTs), inc.NumClusters, inc.Stats.PairsProcessed)

	qs, _ := pace.Evaluate(scratch.Labels, bench.Truth)
	qi, _ := pace.Evaluate(inc.Labels, bench.Truth)
	fmt.Printf("\nquality from scratch: %s\n", qs)
	fmt.Printf("quality incremental:  %s\n", qi)
	saved := 100 * float64(scratch.Stats.PairsProcessed-inc.Stats.PairsProcessed) /
		float64(scratch.Stats.PairsProcessed)
	fmt.Printf("alignments saved by incremental update: %.1f%%\n", saved)
}
