// Incremental re-clustering — the paper's closing open problem: "Is there a
// way to incrementally adjust the EST clusters when a new batch of ESTs is
// sequenced, instead of clustering all the ESTs from scratch?"
//
// This example demonstrates the answer shipped with this library: a
// persistent Session. Each Add appends a batch as a new generation, rebuilds
// only the GST buckets the batch's suffixes touch (sequentially, untouched
// subtrees are reused verbatim from the session's bucket cache), suppresses
// pairs whose strings both predate the batch — their maximal common
// substring is a property of the two strings alone, so they were already
// judged — and seeds the union-find with the previous partition. The labels
// are identical to a from-scratch run over everything seen so far.
package main

import (
	"fmt"
	"log"

	"pace"
)

func main() {
	bench, err := pace.Simulate(pace.SimOptions{
		NumESTs:  500,
		NumGenes: 25,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	opt := pace.DefaultOptions()
	oldBatch := 400 // ESTs sequenced previously

	sess, err := pace.NewSession(opt)
	if err != nil {
		log.Fatal(err)
	}
	first, err := sess.Add(bench.ESTs[:oldBatch])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial batch: %d ESTs -> %d clusters (%d pairs generated)\n",
		oldBatch, first.NumClusters, first.Stats.PairsGenerated)

	// A new sequencing batch of 100 ESTs arrives. Option A: redo
	// everything.
	scratch, err := pace.Cluster(bench.ESTs, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from scratch:  %d ESTs -> %d clusters (%d pairs generated)\n",
		len(bench.ESTs), scratch.NumClusters, scratch.Stats.PairsGenerated)

	// Option B: ingest just the new batch into the session.
	inc, err := sess.Add(bench.ESTs[oldBatch:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental:   %d ESTs -> %d clusters (%d pairs generated)\n",
		sess.NumESTs(), inc.NumClusters, inc.Stats.PairsGenerated)
	fmt.Printf("               buckets rebuilt %d, reused %d, stale pairs suppressed %d\n",
		inc.Stats.Incremental.BucketsRebuilt,
		inc.Stats.Incremental.BucketsReused,
		inc.Stats.Incremental.StaleSuppressed)

	qs, _ := pace.Evaluate(scratch.Labels, bench.Truth)
	qi, _ := pace.Evaluate(sess.Labels(), bench.Truth)
	fmt.Printf("\nquality from scratch: %s\n", qs)
	fmt.Printf("quality incremental:  %s\n", qi)
	saved := 100 * float64(scratch.Stats.PairsGenerated-inc.Stats.PairsGenerated) /
		float64(scratch.Stats.PairsGenerated)
	fmt.Printf("pair generations saved by incremental update: %.1f%%\n", saved)
}
