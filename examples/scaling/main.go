// Scaling: reproduce the shape of the paper's Figure 6a on a laptop. The
// engine runs on a simulated message-passing machine (one virtual processor
// per rank, a modeled interconnect, and discrete-event scheduling), so the
// reported times are virtual parallel run-times and the speedup curve is
// meaningful even on a single-core host.
package main

import (
	"fmt"
	"log"

	"pace"
)

func main() {
	bench, err := pace.Simulate(pace.SimOptions{
		NumESTs: 600,
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustering %d ESTs on simulated machines:\n\n", len(bench.ESTs))
	fmt.Println("    p   total(virt)   align(virt)   speedup   clusters")

	var base float64
	for _, p := range []int{2, 4, 8, 16, 32} {
		opt := pace.DefaultOptions()
		opt.Processors = p
		opt.Simulated = true
		cl, err := pace.Cluster(bench.ESTs, opt)
		if err != nil {
			log.Fatal(err)
		}
		total := cl.Stats.Phases.Total.Seconds()
		if base == 0 {
			base = total
		}
		fmt.Printf("  %3d   %10.3fs   %10.3fs   %6.2fx   %8d\n",
			p, total, cl.Stats.Phases.Align.Seconds(), base/total, cl.NumClusters)
	}
	fmt.Println("\n(speedup is relative to the p=2 machine: one master + one slave)")
}
