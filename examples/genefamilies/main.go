// Gene families: the hard case for EST clustering. Paralogous genes —
// diverged duplicates within a genome — produce ESTs that are similar but
// not identical across family members. If the aligner's acceptance
// thresholds are loose, whole families collapse into one cluster
// (over-prediction); if the family is young (low divergence), even a strict
// threshold cannot separate it.
//
// This example sweeps paralog divergence and shows where PaCE's clustering
// transitions from merging families to separating them, reporting the
// paper's OV/UN metrics at each point.
package main

import (
	"fmt"
	"log"

	"pace"
)

func main() {
	fmt.Println("divergence   clusters (true genes)   OQ%     OV%     UN%")
	for _, div := range []float64{0.02, 0.05, 0.10, 0.20} {
		bench, err := pace.Simulate(pace.SimOptions{
			NumESTs:           300,
			NumGenes:          6,
			ParalogFamilies:   6, // every gene gets a paralog → 12 true clusters
			ParalogDivergence: div,
			ErrorRate:         0.015,
			Seed:              7,
		})
		if err != nil {
			log.Fatal(err)
		}

		opt := pace.DefaultOptions()
		cl, err := pace.Cluster(bench.ESTs, opt)
		if err != nil {
			log.Fatal(err)
		}
		q, err := pace.Evaluate(cl.Labels, bench.Truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %4.0f%%          %3d (%2d)         %6.2f  %6.2f  %6.2f\n",
			100*div, cl.NumClusters, bench.NumGenes, 100*q.OQ, 100*q.OV, 100*q.UN)
	}
	fmt.Println()
	fmt.Println("Low divergence: paralogs merge (few clusters, high OV).")
	fmt.Println("High divergence: families separate (clusters ≈ true genes).")
}
