// Quickstart: generate a small synthetic EST collection with known gene
// origins, cluster it with PaCE, and assess the result against the truth.
package main

import (
	"fmt"
	"log"

	"pace"
)

func main() {
	// 1. A benchmark of 400 ESTs sampled from 20 genes, with 2% sequencing
	//    error and unknown strand orientation.
	bench, err := pace.Simulate(pace.SimOptions{
		NumESTs:  400,
		NumGenes: 20,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d ESTs from %d genes (first EST: %d bases)\n",
		len(bench.ESTs), bench.NumGenes, len(bench.ESTs[0]))

	// 2. Cluster with the default (paper-like) parameters.
	cl, err := pace.Cluster(bench.ESTs, pace.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered into %d clusters\n", cl.NumClusters)
	fmt.Printf("pairs: generated=%d processed=%d accepted=%d skipped=%d\n",
		cl.Stats.PairsGenerated, cl.Stats.PairsProcessed,
		cl.Stats.PairsAccepted, cl.Stats.PairsSkipped)

	// 3. Compare against the known correct clustering (paper §4.1).
	q, err := pace.Evaluate(cl.Labels, bench.Truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality: %s\n", q)

	// 4. Peek at the three largest clusters.
	for i, members := range cl.Clusters {
		if i >= 3 {
			break
		}
		limit := len(members)
		if limit > 8 {
			limit = 8
		}
		fmt.Printf("cluster %d (%d ESTs): %v...\n", i, len(members), members[:limit])
	}
}
