module pace

go 1.22
