// Package linttest runs pacelint analyzers against fixture packages and
// checks their diagnostics against // want "regexp" comments, in the style
// of golang.org/x/tools/go/analysis/analysistest (re-implemented here on
// the standard library; the container builds offline).
//
// Fixture layout: internal/lint/testdata is its own module ("fixture") so
// the main build never sees it — the go tool ignores testdata directories —
// and so fixtures can declare their own minimal mp package for the
// Comm-based analyzers. A line expecting one or more diagnostics carries
//
//	code() // want "first regexp" "second regexp"
//
// Every diagnostic must be matched by a want on its line, and every want
// must be matched by a diagnostic; mismatches fail the test with positions.
package linttest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"pace/internal/lint"
)

// Run loads pattern (e.g. "./sendowned/...") relative to dir, applies the
// analyzers, and verifies diagnostics against want comments.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer, pattern string) {
	t.Helper()
	pkgs, err := lint.LoadPackages(dir, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("pattern %s matched no packages under %s", pattern, dir)
	}
	for _, pkg := range pkgs {
		diags, err := lint.AnalyzePackage(pkg, analyzers)
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.PkgPath, err)
		}
		checkWants(t, pkg, diags)
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func checkWants(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg.Fset, c)...)
			}
		}
	}

	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*want {
	t.Helper()
	text := c.Text
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil
	}
	pos := fset.Position(c.Pos())
	rest := text[idx+len("// want "):]
	ms := wantRE.FindAllStringSubmatch(rest, -1)
	if len(ms) == 0 {
		t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
	}
	var ws []*want
	for _, m := range ms {
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
		}
		ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re})
	}
	return ws
}

func matchWant(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.used || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}

// Diagnose is a convenience for tests asserting on raw diagnostics.
func Diagnose(t *testing.T, dir string, analyzers []*lint.Analyzer, pattern string) []lint.Diagnostic {
	t.Helper()
	pkgs, err := lint.LoadPackages(dir, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.AnalyzePackage(pkg, analyzers)
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.PkgPath, err)
		}
		all = append(all, diags...)
	}
	return all
}

// DiagnoseStrict mirrors the standalone driver: per-package strict
// analysis (stale-allow included) plus each analyzer's whole-program
// RunGlobal pass over everything the pattern matched.
func DiagnoseStrict(t *testing.T, dir string, analyzers []*lint.Analyzer, pattern string) []lint.Diagnostic {
	t.Helper()
	pkgs, err := lint.LoadPackages(dir, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.AnalyzePackageStrict(pkg, analyzers)
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.PkgPath, err)
		}
		all = append(all, diags...)
	}
	for _, a := range analyzers {
		if a.RunGlobal != nil {
			all = append(all, a.RunGlobal(pkgs)...)
		}
	}
	return all
}
