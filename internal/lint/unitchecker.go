package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime/debug"
	"strings"
)

// vetConfig mirrors the JSON cmd/go writes to $WORK/.../vet.cfg for each
// package when a -vettool is set: the unitchecker protocol of
// golang.org/x/tools/go/analysis/unitchecker, re-implemented here on the
// standard library. Fields we do not consume are still listed so the file
// decodes strictly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheckerMain analyzes the single package described by cfgPath and
// exits: 0 clean, 2 with findings on stderr (the exit protocol go vet
// expects from an analysis tool).
func unitcheckerMain(cfgPath string, analyzers []*Analyzer, asJSON bool) {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// pacelint carries no cross-package facts, but cmd/go caches the vetx
	// file as the action's output: it must exist even when empty, and for
	// VetxOnly dependency passes it is the only work to do.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	pkg, err := typecheckVetUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diags, err := AnalyzePackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	emit(diags, asJSON)
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading vet config: %w", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
	}
	return &cfg, nil
}

// typecheckVetUnit parses and type-checks the unit the way cmd/go compiled
// it: imports resolve through ImportMap (vendoring, test variants) into the
// per-package export files of PackageFile.
func typecheckVetUnit(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, compilerName(cfg), lookup),
	}
	if v := cfg.GoVersion; v != "" {
		conf.GoVersion = v
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", cfg.ImportPath, err)
	}
	return &Package{PkgPath: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func compilerName(cfg *vetConfig) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

func diagsJSON(diags []Diagnostic) string {
	type jd struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]jd, 0, len(diags))
	for _, d := range diags {
		out = append(out, jd{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
	}
	b, _ := json.MarshalIndent(out, "", "  ")
	return string(b)
}

func version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(devel)"
}

// buildID folds the VCS state into the -V=full line so cmd/go's vet action
// cache invalidates when the tool changes.
func buildID() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, mod string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			mod = s.Value
		}
	}
	if rev == "" {
		return "unknown"
	}
	if mod == "true" {
		rev += "+dirty"
	}
	return strings.TrimSpace(rev)
}
