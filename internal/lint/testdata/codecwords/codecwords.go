// Fixtures for the codecwords analyzer: a fixed-width wire struct, its
// words() array and its *Words constant must agree, and every field must be
// encoded exactly once.
package codecwords

const goodWords = 3

type good struct {
	a, b int64
	c    int64
}

func (r good) words() [goodWords]int64 {
	return [goodWords]int64{r.a, r.b, r.c}
}

const narrowWords = 2

// narrow gained a field that never reaches the wire.
type narrow struct {
	a, b int64
	c    int64
}

func (r narrow) words() [narrowWords]int64 { // want "has 3 fields but words\(\) returns \[2\]int64"
	return [narrowWords]int64{r.a, r.b} // want "field narrow.c never reaches the wire"
}

const dupWords = 3

// dup encodes one field twice and drops another.
type dup struct {
	a, b, c int64
}

func (r dup) words() [dupWords]int64 {
	return [dupWords]int64{r.a, r.a, r.b} // want "field dup.a is encoded 2 times" "field dup.c never reaches the wire"
}

type bare struct {
	a, b int64
}

// The width must be spelled as a named *Words constant, not a literal: the
// constant is the wire-format version knob the codec and tests share.
func (r bare) words() [2]int64 { // want "must be a named \*Words constant"
	return [2]int64{r.a, r.b}
}

const wideLen = 2

type aliased struct {
	a, b int64
}

// Named constant, but not the *Words naming convention.
func (r aliased) words() [wideLen]int64 { // want "must be a named \*Words constant"
	return [wideLen]int64{r.a, r.b}
}

// Not named words: out of scope for the analyzer.
func (r bare) values() []int64 { return []int64{r.a, r.b} }
