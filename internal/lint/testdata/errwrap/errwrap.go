// Fixtures for the errwrap analyzer: errors formatted into fmt.Errorf in
// API-boundary packages must use %w so errors.Is/As survive the chain.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

type rankErr struct{ rank int }

func (e rankErr) Error() string { return "rank failed" }

func flattenV(err error) error {
	return fmt.Errorf("run failed: %v", err) // want "use %w so errors.Is/As still match"
}

func flattenS(err error) error {
	return fmt.Errorf("run failed: %s", err) // want "use %w so errors.Is/As still match"
}

func flattenCustomType(e rankErr) error {
	return fmt.Errorf("slave: %v", e) // want "use %w so errors.Is/As still match"
}

func stringified(err error) error {
	return fmt.Errorf("run failed: %s", err.Error()) // want "flattens the chain"
}

func mixed(id string, cause error) error {
	return fmt.Errorf("%w: session %s: %v", errSentinel, id, cause) // want "use %w so errors.Is/As still match"
}

// Conforming: %w preserves the chain.
func wrapped(err error) error {
	return fmt.Errorf("run failed: %w", err)
}

// Conforming: Go 1.20+ allows multiple %w verbs in one format.
func doubleWrapped(id string, cause error) error {
	return fmt.Errorf("%w: session %s: %w", errSentinel, id, cause)
}

// Conforming: %v and %s on non-error values are fine.
func nonErrorVerbs(rank int, phase string) error {
	return fmt.Errorf("rank %d stalled in %s (after %v retries)", rank, phase, rank)
}

// Conforming via directive: a deliberately terminal message where the
// chain must not leak internal sentinels to clients.
func allowedFlatten(err error) error {
	//pacelint:allow errwrap terminal client-facing message; the chain must not leak sentinels
	return fmt.Errorf("request rejected: %v", err)
}
