// Fixtures for the lockguard analyzer: `// guarded by <mu>` fields must
// be accessed with the mutex held on every path, and fields written under
// a lock elsewhere but read bare need the annotation (or a fix).
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) deferGood() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bad() int {
	return c.n // want "guarded by mu but accessed without holding it"
}

func (c *counter) badBranch(early bool) {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
		c.n++ // want "guarded by mu but accessed without holding it"
		return
	}
	c.mu.Unlock()
}

// Held only on one of the merging paths: must-hold says not held.
// (Named carefully: a *Locked suffix would assert the caller holds it.)
func (c *counter) maybeHeld(fast bool) {
	if fast {
		c.mu.Lock()
	}
	c.n++ // want "guarded by mu but accessed without holding it"
	if fast {
		c.mu.Unlock()
	}
}

// Held on both merging paths: fine.
func (c *counter) mergeHeld(fast bool) {
	if fast {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

// A spawned goroutine starts with no locks, whatever the spawner holds.
func (c *counter) spawn() {
	c.mu.Lock()
	go func() {
		c.n++ // want "guarded by mu but accessed without holding it"
	}()
	c.mu.Unlock()
}

// The *Locked suffix convention: the caller holds the receiver's mutexes.
func (c *counter) bumpLocked() {
	c.n++
}

// lockguard: caller holds c.mu
func (c *counter) bumpAssumed() {
	c.n++
}

// lockguard: acquires c.mu
func (c *counter) enter() {
	c.mu.Lock()
}

// lockguard: releases c.mu
func (c *counter) leave() {
	c.mu.Unlock()
}

// Annotated protocol helpers participate in the must-hold walk.
func (c *counter) protocol() int {
	c.enter()
	c.n++
	c.leave()
	return c.n // want "guarded by mu but accessed without holding it"
}

// Conforming via directive: a deliberately racy sample.
func (c *counter) allowedPeek() int {
	//pacelint:allow lockguard racy metrics sample; staleness is acceptable here
	return c.n
}

// Cross-struct guard, like simRank state guarded by simTransport.mu.
type pool struct {
	mu    sync.Mutex
	slots []*slot
}

type slot struct {
	v int // guarded by pool.mu
}

func (p *pool) fill() {
	p.mu.Lock()
	for _, s := range p.slots {
		s.v = 1
	}
	p.mu.Unlock()
}

func (p *pool) leak() int {
	s := p.slots[0]
	return s.v // want "guarded by pool.mu but accessed without holding it"
}

// Missing-annotation heuristic: v is written under gauge.mu in set but
// read bare in peek, and carries no annotation — that mismatch is itself
// the finding.
type gauge struct {
	mu sync.Mutex
	v  int
}

func (g *gauge) set(x int) {
	g.mu.Lock()
	g.v = x
	g.mu.Unlock()
}

func (g *gauge) peek() int {
	return g.v // want "written under mu elsewhere but accessed bare here"
}

// Constructor exemption: the struct is still private to this function.
func newGauge() *gauge {
	g := &gauge{}
	g.v = 7
	return g
}
