// Fixtures for the tagconst analyzer: tags handed to the mp endpoint must
// be named tag* constants, and tag values must be unique per package.
package tagconst

import "fixture/mp"

const (
	tagWork   = 1
	tagReport = 2
	TagPhase  = 3
	tagDup    = 1 // want "collides with tagWork"
)

// Not a tag constant; its value may coincide with a tag freely.
const bufCap = 1

func conforming(c *mp.Comm) {
	_ = c.Send(1, tagWork, nil)
	_ = c.SendOwned(1, tagReport, nil)
	_, _, _ = c.Recv(0, TagPhase)
	_, _ = c.Probe(0, tagWork)
}

// Conforming: a tag threaded through a tag* parameter — the constant
// obligation falls on the outermost caller.
func threaded(c *mp.Comm, tag int) {
	_, _, _ = c.Recv(0, tag)
}

func violations(c *mp.Comm) {
	_ = c.Send(1, 7, nil) // want "must be a named tag"
	k := 9
	_ = c.Send(1, k, nil)             // want "must be a named tag"
	_ = c.Send(1, tagWork+1, nil)     // want "must be a named tag"
	_, _, _ = c.Recv(0, bufCap)       // want "must be a named tag"
	_, _ = c.Probe(0, int(tagReport)) // want "must be a named tag"
}

func allowed(c *mp.Comm) {
	//pacelint:allow tagconst protocol probe uses a raw tag on purpose here
	_ = c.Send(1, 42, nil)
}
