// Fixtures for the metriccatalog analyzer: every pace_* metric name
// registered in code must be a full name listed in the module's DESIGN.md
// catalog (testdata/DESIGN.md for this fixture module).
package metriccatalog

const counterName = "pace_good_total"

var histName = "pace_hist_ns"

func register() []string {
	return []string{
		counterName,
		histName,
		"pace_rogue_total", // want "not in the catalog"
	}
}

// Conforming: not metric names at all.
const (
	prose     = "pace keeps the catalog honest"
	uppercase = "PACE_NOT_A_METRIC"
)

// Conforming via directive: an experimental metric documented on
// graduation rather than at birth.
func experimental() string {
	//pacelint:allow metriccatalog experimental metric behind a flag; catalogued on graduation
	return "pace_experimental_total"
}
