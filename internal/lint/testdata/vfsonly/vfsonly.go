// Fixtures for the vfsonly analyzer. The test points VfsonlyScope at this
// package; in the real tree the scope is the state-persisting packages
// (internal/serve, internal/cluster).
package vfsonly

import (
	"io/fs"
	"os"
)

// FS is the fixture's stand-in for the vfs seam.
type FS interface {
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
}

func bad(dir string) {
	_ = os.WriteFile(dir+"/f", nil, 0o644) // want "os.WriteFile mutates the filesystem outside the vfs seam"
	_ = os.Rename(dir+"/a", dir+"/b")      // want "os.Rename mutates the filesystem outside the vfs seam"
	_, _ = os.CreateTemp(dir, "t*")        // want "os.CreateTemp mutates the filesystem outside the vfs seam"
	_ = os.MkdirAll(dir+"/d", 0o755)       // want "os.MkdirAll mutates the filesystem outside the vfs seam"
	_ = os.Remove(dir + "/f")              // want "os.Remove mutates the filesystem outside the vfs seam"
	_ = os.RemoveAll(dir + "/d")           // want "os.RemoveAll mutates the filesystem outside the vfs seam"
}

func badSync(f *os.File) {
	_ = f.Sync() // want "Sync fsyncs outside the vfs seam"
}

// Conforming: reads never need the seam — fault plans cover mutation only.
func legalReads(dir string) {
	_, _ = os.ReadFile(dir + "/f")
	_, _ = os.Open(dir + "/f")
	_, _ = os.ReadDir(dir)
	_, _ = os.Stat(dir + "/f")
}

// Conforming: writes routed through the injected seam.
func legalSeam(fsys FS, dir string) {
	_ = fsys.WriteFile(dir+"/f", nil, 0o644)
	_ = fsys.Rename(dir+"/a", dir+"/b")
}

// Conforming: methods named like the forbidden package functions are fine —
// only package os entry points (and *os.File fsyncs) are the seam's leaks.
func legalMethodNames(fsys FS) {
	_ = fsys.WriteFile("f", nil, 0o644)
}

// Conforming: annotated — e.g. removing a dead session's directory is not
// on the durability path a fault plan must cover.
func allowedInline(dir string) {
	_ = os.RemoveAll(dir) //pacelint:allow vfsonly session teardown is not a durability path
}

func allowedAbove(dir string) error {
	//pacelint:allow vfsonly the bootstrap mkdir predates any injected FS
	return os.MkdirAll(dir, 0o755)
}
