// Fixtures for the ctxpoll analyzer: unbounded dispatch loops and
// blocking wait loops must poll the run context.
package ctxpoll

import (
	"context"
	"time"
)

type cfg struct{ ctx context.Context }

// ctxErr mirrors cluster.Config.ctxErr: a same-package helper whose body
// reaches a context poll. Loops calling it are covered by reachability.
func (c cfg) ctxErr() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

func dispatchNoPoll(work chan int) {
	for { // want "unbounded loop never polls the run context"
		select {
		case <-work:
		case <-time.After(time.Millisecond):
		}
	}
}

func dispatchDirectPoll(ctx context.Context, work chan int) {
	for {
		if err := ctx.Err(); err != nil {
			return
		}
		<-work
	}
}

func dispatchHelperPoll(c cfg, work chan int) {
	for {
		if err := c.ctxErr(); err != nil {
			return
		}
		<-work
	}
}

func dispatchDoneCase(ctx context.Context, work chan int) {
	for {
		select {
		case <-work:
		case <-ctx.Done():
			return
		}
	}
}

func waitNoPoll(idle func() bool) {
	for !idle() { // want "blocking wait loop never polls the run context"
		<-time.After(time.Millisecond)
	}
}

func waitSleepNoPoll(idle func() bool) {
	for !idle() { // want "blocking wait loop never polls the run context"
		time.Sleep(time.Millisecond)
	}
}

func waitWithPoll(ctx context.Context, idle func() bool) error {
	for !idle() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// A poll inside a spawned goroutine does not interrupt the loop itself.
func spawnedPollDoesNotCount(ctx context.Context) {
	for { // want "unbounded loop never polls the run context"
		go func() { _ = ctx.Err() }()
		time.Sleep(time.Millisecond)
	}
}

// Conforming: a conditional loop that never blocks is plain iteration,
// not a wait loop — out of scope for the contract.
func countingLoop(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

// Conforming via directive: a bounded drain that runs after the deadline
// already fired is legitimately exempt, with the reason recorded.
func allowedDrain(work chan int) {
	//pacelint:allow ctxpoll bounded drain after the deadline fired; exits when work closes
	for {
		if _, ok := <-work; !ok {
			return
		}
	}
}
