// Package mp is a minimal stand-in for pace/internal/mp: just enough
// surface for the Comm-based analyzers, which match the endpoint by method
// name + receiver type Comm + package name "mp" (not import path) precisely
// so fixtures like this one work.
package mp

import "time"

// Comm mirrors the real endpoint's messaging surface.
type Comm struct{}

func (c *Comm) Send(to, tag int, data []byte) error      { return nil }
func (c *Comm) SendOwned(to, tag int, data []byte) error { return nil }
func (c *Comm) Recv(from, tag int) ([]byte, int, error)  { return nil, 0, nil }
func (c *Comm) RecvTimeout(from, tag int, d time.Duration) ([]byte, int, error) {
	return nil, 0, nil
}
func (c *Comm) Probe(from, tag int) (bool, error) { return false, nil }
