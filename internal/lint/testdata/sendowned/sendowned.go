// Fixtures for the sendowned analyzer: uses and retention of a buffer
// after it was handed to Comm.SendOwned.
package sendowned

import "fixture/mp"

var global []byte

var sink chan []byte

const tagWork = 2

func useAfterSend(c *mp.Comm) {
	buf := make([]byte, 8)
	c.SendOwned(1, tagWork, buf)
	buf[0] = 1 // want "used after being passed to SendOwned"
}

func readAfterSend(c *mp.Comm) byte {
	buf := make([]byte, 8)
	c.SendOwned(1, tagWork, buf)
	return buf[0] // want "used after being passed to SendOwned"
}

func sliceHandoff(c *mp.Comm) {
	buf := make([]byte, 8)
	c.SendOwned(1, tagWork, buf[:4])
	_ = buf[2] // want "used after being passed to SendOwned"
}

func escapeReturn(c *mp.Comm) []byte {
	buf := make([]byte, 8)
	if len(buf) > 4 {
		return buf // want "escapes while the runtime owns it"
	}
	c.SendOwned(1, tagWork, buf)
	return nil
}

func escapeGlobal(c *mp.Comm) {
	buf := make([]byte, 8)
	global = buf // want "stored beyond this function"
	c.SendOwned(1, tagWork, buf)
}

func escapeChannel(c *mp.Comm) {
	buf := make([]byte, 8)
	c.SendOwned(1, tagWork, buf)
	sink <- buf // want "sent on a channel" "used after being passed"
}

func escapeAppend(c *mp.Comm) {
	buf := make([]byte, 8)
	global = append(global, buf...) // want "stored beyond this function"
	c.SendOwned(1, tagWork, buf)
}

// Conforming: reassigning the variable to a fresh buffer ends the
// obligation — the runtime owns the old allocation, we own the new one.
func killThenReuse(c *mp.Comm) {
	buf := make([]byte, 8)
	c.SendOwned(1, tagWork, buf)
	buf = make([]byte, 8)
	buf[0] = 1
	c.SendOwned(1, tagWork, buf)
}

// Conforming: payload built in place; nothing to misuse afterwards.
func freshPayload(c *mp.Comm, encode func() []byte) {
	c.SendOwned(1, tagWork, encode())
}

// Conforming: Send copies, so the scratch buffer is reusable.
func sendCopies(c *mp.Comm) {
	buf := make([]byte, 8)
	c.Send(1, tagWork, buf)
	buf[0] = 1
	c.Send(1, tagWork, buf)
}

// Conforming: annotated — the analyzer is flow-insensitive and cannot see
// every safe pattern; the escape hatch documents why this one is safe.
func allowed(c *mp.Comm) {
	buf := make([]byte, 8)
	c.SendOwned(1, tagWork, buf)
	//pacelint:allow sendowned send is the last touch on this code path in real mode
	buf[0] = 1
}

// --- v2: call-graph-aware handoffs through forwarding helpers ---

// ship forwards its buffer to SendOwned: its third parameter is a sink,
// so calling ship transfers ownership exactly like the direct call.
func ship(c *mp.Comm, to int, buf []byte) error {
	return c.SendOwned(to, tagWork, buf)
}

// shipTwice forwards through ship; the sink fact is transitive.
func shipTwice(c *mp.Comm, to int, buf []byte) error {
	return ship(c, to, buf)
}

func useAfterHelper(c *mp.Comm) {
	buf := make([]byte, 8)
	ship(c, 1, buf)
	buf[0] = 1 // want "used after being passed to ship"
}

func useAfterTransitiveHelper(c *mp.Comm) byte {
	buf := make([]byte, 8)
	shipTwice(c, 1, buf)
	return buf[0] // want "used after being passed to shipTwice"
}

func helperThenEscape(c *mp.Comm) {
	buf := make([]byte, 8)
	global = buf // want "stored beyond this function"
	ship(c, 1, buf)
}

// Conforming: a helper that only reads the buffer is not a handoff.
func inspect(buf []byte) int { return len(buf) }

func useAfterInspect(c *mp.Comm) {
	buf := make([]byte, 8)
	_ = inspect(buf)
	buf[0] = 1
	c.Send(1, tagWork, buf)
}

// Conforming: reassignment between helper handoffs ends the obligation.
func helperThenReuse(c *mp.Comm) {
	buf := make([]byte, 8)
	ship(c, 1, buf)
	buf = make([]byte, 8)
	ship(c, 2, buf)
}
