// Fixtures for the atomichygiene analyzer: a field accessed via sync/atomic
// must not also be accessed non-atomically.
package atomichygiene

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	cold   int64
}

func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.misses, 1)
}

func (s *stats) loadHits() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) racyRead() int64 {
	return s.hits // want "non-atomic access to stats.hits"
}

func (s *stats) racyWrite() {
	s.misses = 0 // want "non-atomic access to stats.misses"
}

// Conforming: cold is never touched atomically, plain access is fine.
func (s *stats) coldAccess() int64 {
	s.cold++
	return s.cold
}

// Conforming: composite-literal keys initialize before the value is shared.
func fresh() *stats {
	return &stats{hits: 0, misses: 0}
}

// Conforming: typed atomics need no analyzer — methods cannot be bypassed.
type typedStats struct {
	hits atomic.Int64
}

func (s *typedStats) hit() { s.hits.Add(1) }

// Conforming: annotated — constructor writes before the struct escapes.
func seeded(n int64) *stats {
	s := new(stats)
	//pacelint:allow atomichygiene construction-time write before the struct is shared
	s.hits = n
	return s
}
