// Fixtures for the strict-mode stale-allow check: a directive must
// suppress something real, and must name a real analyzer. Run with
// WalltimeScope pointed at this package; wants are asserted directly by
// the engine test (this fixture is not run through linttest wants).
package staleallow

import "time"

// Used: suppresses a genuine walltime finding; not stale.
func now() time.Time {
	//pacelint:allow walltime fixture exercises a used directive
	return time.Now()
}

// Stale: nothing on the covered lines violates walltime.
//
//pacelint:allow walltime nothing here reads the clock
func quiet() int { return 1 }

// Unknown analyzer name (typo): flagged regardless of usage.
//
//pacelint:allow walltyme typo in the analyzer name
func typo() int { return 2 }
