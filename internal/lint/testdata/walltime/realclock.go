//pacelint:allow-file walltime this file models a real-transport shim that is wall-clock by design

// Conforming via file-wide allow: every wall-clock read here is suppressed.
package walltime

import "time"

func realNow() time.Time { return time.Now() }

func realSleep(d time.Duration) { time.Sleep(d) }
