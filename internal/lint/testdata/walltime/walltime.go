// Fixtures for the walltime analyzer. The test points WalltimeScope at
// this package; in the real tree the scope is the virtual-time packages
// (internal/mp, internal/cluster, internal/telemetry).
package walltime

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Now()            // want "time.Now reads the wall clock"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func badTicker() {
	tick := time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
	defer tick.Stop()
	select {
	case <-time.After(time.Second): // want "time.After reads the wall clock"
	case <-tick.C:
	}
}

// Conforming: conversions and constructors that do not read the clock.
func legal() (time.Duration, time.Time) {
	d := 5 * time.Millisecond
	return d, time.Unix(0, 0)
}

// Conforming: annotated — e.g. a real-transport backoff that is wall-clock
// by design.
func allowedInline() {
	time.Sleep(time.Millisecond) //pacelint:allow walltime real-mode backoff is wall-clock by design
}

func allowedAbove() time.Time {
	//pacelint:allow walltime measured-compute bridge charges real elapsed time
	return time.Now()
}
