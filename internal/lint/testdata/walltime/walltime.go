// Fixtures for the walltime analyzer. The test points WalltimeScope at
// this package; in the real tree the scope is the virtual-time packages
// (internal/mp, internal/cluster, internal/telemetry).
package walltime

import (
	"io"
	"log/slog"
	"time"
)

func bad() time.Time {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Now()            // want "time.Now reads the wall clock"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func badTicker() {
	tick := time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
	defer tick.Stop()
	select {
	case <-time.After(time.Second): // want "time.After reads the wall clock"
	case <-tick.C:
	}
}

// Conforming: conversions and constructors that do not read the clock.
func legal() (time.Duration, time.Time) {
	d := 5 * time.Millisecond
	return d, time.Unix(0, 0)
}

// Nonconforming logging: stdlib slog handlers stamp every record with
// time.Now at Handle time, and the default logger routes there too.
func badSlogHandlers(w io.Writer) *slog.Logger {
	h := slog.NewJSONHandler(w, nil) // want "slog.NewJSONHandler stamps log records from the wall clock"
	_ = slog.NewTextHandler(w, nil)  // want "slog.NewTextHandler stamps log records from the wall clock"
	return slog.New(h)
}

func badSlogDefault() {
	l := slog.Default() // want "slog.Default stamps log records from the wall clock"
	slog.SetDefault(l)  // want "slog.SetDefault stamps log records from the wall clock"
}

// Conforming: building a logger over an existing handler reads no clock;
// only the stdlib handler constructors (and the process default) do.
func legalSlog(h slog.Handler) *slog.Logger {
	return slog.New(h)
}

// Conforming: annotated — the sanctioned logger factory wraps the stdlib
// handler so records are re-stamped from an injected clock.
func allowedSlog(w io.Writer) slog.Handler {
	//pacelint:allow walltime sanctioned factory re-stamps records from the injected clock
	return slog.NewJSONHandler(w, nil)
}

// Conforming: annotated — e.g. a real-transport backoff that is wall-clock
// by design.
func allowedInline() {
	time.Sleep(time.Millisecond) //pacelint:allow walltime real-mode backoff is wall-clock by design
}

func allowedAbove() time.Time {
	//pacelint:allow walltime measured-compute bridge charges real elapsed time
	return time.Now()
}
