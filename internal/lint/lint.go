// Package lint is a self-contained static-analysis framework in the spirit
// of golang.org/x/tools/go/analysis, built only on the standard library so
// the repo stays dependency-free. It exists to carry pacelint: the suite of
// project-specific analyzers that mechanically enforce the pipeline's
// ownership, determinism and wire-format contracts (see DESIGN.md §10).
//
// The framework has three entry points:
//
//   - Standalone: `pacelint ./...` loads packages itself (via `go list
//     -export`) and analyzes their non-test sources.
//   - Vet tool: `go vet -vettool=$(which pacelint) ./...` — the binary
//     speaks cmd/go's unitchecker protocol (-V=full, -flags, vet.cfg), so
//     vet drives it over every package *including test variants*.
//   - Tests: linttest runs an analyzer over fixture modules with
//     analysistest-style `// want "regexp"` expectations.
//
// Findings are suppressed with scoped directives:
//
//	//pacelint:allow <analyzer> <reason>       (this line and the next)
//	//pacelint:allow-file <analyzer> <reason>  (the whole file)
//
// A directive without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output and in allow directives.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// SkipTests excludes _test.go files from the analysis (used by checks
	// whose contracts only bind production code, e.g. walltime).
	SkipTests bool
	// Run reports findings via pass.Reportf.
	Run func(pass *Pass) error
	// RunGlobal, when non-nil, is a whole-program direction of the check
	// that needs every package in view at once (e.g. "the catalog lists a
	// metric no package registers"). It only runs in standalone mode and
	// in the repo suite test — the vet driver analyzes one package per
	// process, so per-package Run must carry the per-package direction.
	RunGlobal func(pkgs []*Package) []Diagnostic
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allow *allowIndex
	out   *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless an allow directive for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	posn := p.Fset.Position(pos)
	if p.allow != nil && p.allow.allows(p.Analyzer.Name, posn) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Pos:      posn,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SkipFile reports whether the analyzer should ignore the file holding pos.
func (p *Pass) SkipFile(pos token.Pos) bool {
	return p.Analyzer.SkipTests && isTestFile(p.Fset.Position(pos).Filename)
}

func isTestFile(name string) bool { return strings.HasSuffix(name, "_test.go") }

// AnalyzePackage runs the analyzers over one loaded package and returns the
// surviving findings, sorted by position. Malformed pacelint directives are
// reported under the pseudo-analyzer "pacelint".
func AnalyzePackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := analyzePackage(pkg, analyzers)
	return diags, err
}

// AnalyzePackageStrict additionally reports allow directives that
// suppressed nothing as "stale-allow" findings (and directives naming an
// analyzer that does not exist). It is meant for full runs — the
// standalone driver and the repo suite test — where every analyzer and
// every non-test file is in view, so "suppressed nothing" genuinely means
// the directive is dead weight in the exemption ledger.
func AnalyzePackageStrict(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, allow, err := analyzePackage(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags = append(diags, allow.stale(known)...)
	sortDiagnostics(diags)
	return diags, nil
}

func analyzePackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, *allowIndex, error) {
	var diags []Diagnostic
	allow, bad := buildAllowIndex(pkg.Fset, pkg.Files)
	diags = append(diags, bad...)
	for _, a := range analyzers {
		files := pkg.Files
		if a.SkipTests {
			files = nonTestFiles(pkg.Fset, pkg.Files)
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			allow:     allow,
			out:       &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sortDiagnostics(diags)
	return diags, allow, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if !isTestFile(fset.Position(f.Pos()).Filename) {
			out = append(out, f)
		}
	}
	return out
}
