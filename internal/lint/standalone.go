package lint

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// Main is the shared entry point for cmd/pacelint. It dispatches between
// the three invocation styles:
//
//	pacelint ./...                      standalone, loads packages itself
//	go vet -vettool=$(pacelint) ./...   unitchecker protocol (vet.cfg files)
//	pacelint -V=full / -flags           cmd/go tool handshake
func Main(analyzers []*Analyzer) {
	var (
		vFlag     = flag.String("V", "", "print version and exit (cmd/go tool handshake)")
		flagsFlag = flag.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go tool handshake)")
		jsonFlag  = flag.Bool("json", false, "emit diagnostics as JSON")
		listFlag  = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pacelint [packages]\n       go vet -vettool=$(command -v pacelint) [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *vFlag != "":
		// cmd/go requires the first line to be "<name> version <ver>"; the
		// build ID suffix keeps vet's action cache honest across rebuilds.
		fmt.Printf("pacelint version %s buildID=%s\n", version(), buildID())
		os.Exit(0)
	case *flagsFlag:
		// No per-analyzer flags yet: report none so cmd/go forwards none.
		fmt.Println("[]")
		os.Exit(0)
	case *listFlag:
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheckerMain(args[0], analyzers, *jsonFlag)
		return
	}
	standaloneMain(args, analyzers, *jsonFlag)
}

func standaloneMain(patterns []string, analyzers []*Analyzer, asJSON bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Standalone runs see the whole program (non-test sources of every
	// package), so they also run the strict directions: stale-allow
	// directive auditing and the analyzers' RunGlobal checks.
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := AnalyzePackageStrict(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		all = append(all, diags...)
	}
	for _, a := range analyzers {
		if a.RunGlobal != nil {
			all = append(all, a.RunGlobal(pkgs)...)
		}
	}
	emit(all, asJSON)
	if len(all) > 0 {
		os.Exit(2)
	}
}

func emit(diags []Diagnostic, asJSON bool) {
	if asJSON {
		fmt.Println(diagsJSON(diags))
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
}
