package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"pace/internal/lint"
	"pace/internal/lint/dataflow"
)

// LockguardScope is the set of import paths whose mutex discipline is
// checked. Tests point it at fixture packages.
var LockguardScope = []string{"pace/internal/serve", "pace/internal/mp", "pace/internal/telemetry"}

// Lockguard checks mutex discipline in the concurrent packages (serve,
// mp, telemetry) with a flow-aware must-hold walk over each function:
//
//   - A struct field annotated `// guarded by <mu>` (a sibling mutex
//     field, or `Type.mu` for a mutex living in another struct, like the
//     sim transport's lock guarding per-rank state) may only be read or
//     written while that mutex is held on every path to the access.
//   - A field with no annotation that is written with a sibling mutex
//     held somewhere but accessed bare elsewhere is itself a finding: the
//     annotation (or a fix) is required either way.
//
// Helpers that participate in a locking protocol declare it in their doc
// comments so the walk can follow:
//
//	// lockguard: caller holds t.mu   — assumed held at entry
//	// lockguard: acquires t.mu       — held after a call returns
//	// lockguard: releases t.mu       — gone after a call returns
//
// The repo's `*Locked` method-name convention is honored automatically: a
// method whose name ends in "Locked" assumes every mutex field of its
// receiver is held. Accesses in the function that allocates the struct
// (composite literal / new) are exempt — nothing else can see it yet.
var Lockguard = &lint.Analyzer{
	Name:      "lockguard",
	Doc:       "fields annotated `// guarded by <mu>` are only accessed with the mutex held; locked-write/bare-access fields missing the annotation are flagged",
	SkipTests: true,
	Run:       runLockguard,
}

var (
	guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)
	lockAnnRE   = regexp.MustCompile(`lockguard: (caller holds|acquires|releases) ([A-Za-z_][A-Za-z0-9_.]*)`)
)

// fieldGuard is one parsed `// guarded by <mu>` annotation.
type fieldGuard struct {
	raw       string // as written: "mu" or "simTransport.mu"
	sibling   string // sibling mutex field name, "" for the dotted form
	ownerType string // name of the struct declaring the field
}

// typeKey returns the instance-independent key the guard demands.
func (g *fieldGuard) typeKey() string {
	if g.sibling != "" {
		return g.ownerType + "." + g.sibling
	}
	return g.raw
}

// lockRef is one lock named by a function annotation, e.g. "t.mu".
type lockRef struct {
	path    string // as written, rooted at a receiver/param name
	root    string // first component
	typeKey string // resolved "OwnerType.field", may be ""
}

type funcAnn struct {
	holds    []lockRef
	acquires []lockRef
	releases []lockRef
}

func runLockguard(pass *lint.Pass) error {
	if !pathInScope(pass.Pkg.Path(), LockguardScope) {
		return nil
	}
	info := pass.TypesInfo
	g := dataflow.NewGraph(info, pass.Files)

	guards := collectFieldGuards(pass)
	structMus := collectStructMutexes(pass)
	anns := collectFuncAnns(pass, g)
	writes := collectWriteTargets(pass.Files)

	model := dataflow.LockModel{
		Info: info,
		Classify: func(call *ast.CallExpr) ([]string, dataflow.LockEffect) {
			if keys, eff := dataflow.MutexOp(info, call); eff != dataflow.EffectNone {
				return keys, eff
			}
			fn, _ := g.Callee(call).(*types.Func)
			ann := anns[fn]
			if ann == nil {
				return nil, dataflow.EffectNone
			}
			if len(ann.acquires) > 0 {
				return annKeys(g, fn, call, ann.acquires), dataflow.EffectAcquire
			}
			if len(ann.releases) > 0 {
				return annKeys(g, fn, call, ann.releases), dataflow.EffectRelease
			}
			return nil, dataflow.EffectNone
		},
	}

	// heur accumulates the missing-annotation evidence per unguarded field.
	type heurSites struct {
		lockedWrite bool
		bare        []token.Pos
		mu          string // sibling mutex name, for the message
	}
	heur := map[*types.Var]*heurSites{}
	reported := map[token.Pos]bool{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			entry := entryLocks(g, info, fd, anns)
			local := localAllocs(info, fd.Body)
			dataflow.WalkHeld(model, fd.Body, entry, func(n ast.Node, held *dataflow.LockSet) {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return
				}
				selInfo, ok := info.Selections[sel]
				if !ok || selInfo.Kind() != types.FieldVal {
					return
				}
				field, ok := selInfo.Obj().(*types.Var)
				if !ok {
					return
				}
				if base := baseObject(info, sel.X); base != nil && local[base] {
					return // still private to this function
				}
				basePath := dataflow.ExprPath(sel.X)

				if guard, ok := guards[field]; ok {
					held1 := held.Holds(guard.typeKey())
					if !held1 && guard.sibling != "" && basePath != "" {
						held1 = held.Holds(basePath + "." + guard.sibling)
					}
					if !held1 && !reported[sel.Pos()] {
						reported[sel.Pos()] = true
						pass.Reportf(sel.Pos(),
							"field %s is guarded by %s but accessed without holding it", field.Name(), guard.raw)
					}
					return
				}

				// Missing-annotation heuristic: only for this package's own
				// struct fields that have a sibling mutex to be guarded by.
				if field.Pkg() != pass.Pkg {
					return
				}
				owner, mus := ownerMutexes(selInfo.Recv(), structMus)
				if owner == "" || len(mus) == 0 || isSyncType(field.Type()) {
					return
				}
				muHeld := false
				for _, mu := range mus {
					if held.Holds(owner+"."+mu) || (basePath != "" && held.Holds(basePath+"."+mu)) {
						muHeld = true
						break
					}
				}
				h := heur[field]
				if h == nil {
					h = &heurSites{mu: mus[0]}
					heur[field] = h
				}
				if muHeld && writes[sel] {
					h.lockedWrite = true
				}
				if !muHeld {
					h.bare = append(h.bare, sel.Pos())
				}
			})
		}
	}

	for field, h := range heur {
		if !h.lockedWrite {
			continue
		}
		for _, pos := range h.bare {
			if reported[pos] {
				continue
			}
			reported[pos] = true
			pass.Reportf(pos,
				"field %s is written under %s elsewhere but accessed bare here; annotate it `// guarded by %s` (and fix this access) or allow with a reason",
				field.Name(), h.mu, h.mu)
		}
	}
	return nil
}

// collectFieldGuards parses `// guarded by <mu>` field annotations.
func collectFieldGuards(pass *lint.Pass) map[*types.Var]*fieldGuard {
	out := map[*types.Var]*fieldGuard{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				raw := guardAnnotation(field)
				if raw == "" {
					continue
				}
				for _, name := range field.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					g := &fieldGuard{raw: raw, ownerType: ts.Name.Name}
					if !strings.Contains(raw, ".") {
						g.sibling = raw
					}
					out[v] = g
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// collectStructMutexes maps each struct type name declared in the package
// to the names of its sync.Mutex/RWMutex fields.
func collectStructMutexes(pass *lint.Pass) map[string][]string {
	out := map[string][]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isMutexType(v.Type()) {
						out[ts.Name.Name] = append(out[ts.Name.Name], name.Name)
					}
				}
			}
			return true
		})
	}
	return out
}

// collectFuncAnns parses `// lockguard: ...` doc annotations and applies
// the *Locked name convention.
func collectFuncAnns(pass *lint.Pass, g *dataflow.Graph) map[*types.Func]*funcAnn {
	out := map[*types.Func]*funcAnn{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var ann funcAnn
			if fd.Doc != nil {
				for _, m := range lockAnnRE.FindAllStringSubmatch(fd.Doc.Text(), -1) {
					ref := makeLockRef(pass.TypesInfo, fd, m[2])
					switch m[1] {
					case "caller holds":
						ann.holds = append(ann.holds, ref)
					case "acquires":
						ann.acquires = append(ann.acquires, ref)
					case "releases":
						ann.releases = append(ann.releases, ref)
						// Releasing implies the caller held it on entry.
						ann.holds = append(ann.holds, ref)
					}
				}
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Recv != nil {
				for _, ref := range receiverMutexRefs(pass.TypesInfo, fd) {
					ann.holds = append(ann.holds, ref)
				}
			}
			if len(ann.holds)+len(ann.acquires)+len(ann.releases) > 0 {
				out[fn] = &ann
			}
		}
	}
	return out
}

// makeLockRef resolves an annotation path ("t.mu") against the function's
// receiver and parameters to derive the type key.
func makeLockRef(info *types.Info, fd *ast.FuncDecl, path string) lockRef {
	parts := strings.Split(path, ".")
	ref := lockRef{path: path, root: parts[0]}
	rootType := paramType(info, fd, parts[0])
	if rootType == nil || len(parts) < 2 {
		return ref
	}
	t := rootType
	for i := 1; i < len(parts); i++ {
		t = derefNamedStructField(t, parts[i], i == len(parts)-1, &ref)
		if t == nil {
			break
		}
	}
	return ref
}

// derefNamedStructField steps one field down a path; on the last step it
// records OwnerType.field as the type key.
func derefNamedStructField(t types.Type, field string, last bool, ref *lockRef) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			if last {
				ref.typeKey = named.Obj().Name() + "." + field
			}
			return st.Field(i).Type()
		}
	}
	return nil
}

func paramType(info *types.Info, fd *ast.FuncDecl, name string) types.Type {
	lists := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if id.Name == name {
					if obj := info.Defs[id]; obj != nil {
						return obj.Type()
					}
				}
			}
		}
	}
	return nil
}

// receiverMutexRefs returns one lockRef per mutex field of the receiver
// struct, rooted at the receiver name (the *Locked convention).
func receiverMutexRefs(info *types.Info, fd *ast.FuncDecl) []lockRef {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recvName := fd.Recv.List[0].Names[0].Name
	t := info.Defs[fd.Recv.List[0].Names[0]].Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []lockRef
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutexType(f.Type()) {
			out = append(out, lockRef{
				path:    recvName + "." + f.Name(),
				root:    recvName,
				typeKey: named.Obj().Name() + "." + f.Name(),
			})
		}
	}
	return out
}

// entryLocks builds the lock set assumed held when fd starts executing.
func entryLocks(g *dataflow.Graph, info *types.Info, fd *ast.FuncDecl, anns map[*types.Func]*funcAnn) *dataflow.LockSet {
	set := dataflow.NewLockSet()
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return set
	}
	if ann := anns[fn]; ann != nil {
		for _, ref := range ann.holds {
			set.Add(ref.path)
			set.Add(ref.typeKey)
		}
	}
	return set
}

// annKeys renders an annotated call's lock keys at a call site: the type
// key always applies; the instance path is rebased from the callee's
// receiver name onto the caller's receiver expression when possible.
func annKeys(g *dataflow.Graph, fn *types.Func, call *ast.CallExpr, refs []lockRef) []string {
	var keys []string
	recvName := ""
	if d := g.Decl(fn); d != nil && d.Recv != nil && len(d.Recv.List) > 0 && len(d.Recv.List[0].Names) > 0 {
		recvName = d.Recv.List[0].Names[0].Name
	}
	for _, ref := range refs {
		if ref.typeKey != "" {
			keys = append(keys, ref.typeKey)
		}
		if recvName != "" && ref.root == recvName {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if base := dataflow.ExprPath(sel.X); base != "" {
					keys = append(keys, base+strings.TrimPrefix(ref.path, ref.root))
				}
			}
		}
	}
	return keys
}

// ownerMutexes resolves the receiver type of a field selection to its
// struct name and that struct's mutex fields.
func ownerMutexes(recv types.Type, structMus map[string][]string) (string, []string) {
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", nil
	}
	name := named.Obj().Name()
	return name, structMus[name]
}

// localAllocs collects local variables bound to a fresh composite literal
// or new() in this function: accesses through them are pre-publication.
func localAllocs(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok || !isFreshAlloc(info, as.Rhs[i]) {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isFreshAlloc(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// collectWriteTargets marks the selector expressions that are assignment
// or inc/dec targets (possibly through indexing/dereference).
func collectWriteTargets(files []*ast.File) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				out[x] = true
				return
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return
			}
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(n.X)
			}
			return true
		})
	}
	return out
}

// baseObject resolves the root identifier of a selector chain.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return resolveIdent(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isSyncType reports whether the field's type is itself a synchronization
// primitive (sync.*, sync/atomic.*): those have their own disciplines and
// analyzers.
func isSyncType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}
