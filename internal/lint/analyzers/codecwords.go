package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"pace/internal/lint"
)

// CodecWords guards the fixed-width wire structs (cluster.phaseReport and
// any future sibling): a struct T with a method
//
//	func (T) words() [N]E
//
// must keep three quantities in agreement — the number of fields of T, the
// array length N (which must be spelled as a named *Words constant, the
// wire-format version knob), and the composite literal the method returns,
// which must mention every field of T exactly once. This is the drift class
// PR-4's 16→17-word phaseReport bump could have introduced silently: a new
// struct field that never reaches the wire, or a words() array padded with
// stale entries.
var CodecWords = &lint.Analyzer{
	Name: "codecwords",
	Doc:  "fixed-width wire structs must agree with their words() array and *Words constant",
	Run:  runCodecWords,
}

func runCodecWords(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "words" {
				continue
			}
			checkWordsMethod(pass, fd)
		}
	}
	return nil
}

func checkWordsMethod(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Receiver struct type.
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	// Result must be a single fixed-length array.
	if sig.Results().Len() != 1 {
		return
	}
	arr, ok := sig.Results().At(0).Type().Underlying().(*types.Array)
	if !ok {
		return
	}
	n := arr.Len()
	nFields := int64(st.NumFields())

	if nFields != n {
		pass.Reportf(fd.Name.Pos(),
			"%s has %d fields but words() returns [%d]%s: wire width and struct drifted apart",
			named.Obj().Name(), nFields, n, arr.Elem())
	}

	// The array length must be spelled as a named *Words constant so the
	// codec, the constant and the struct version together.
	if lenExpr := wordsLenExpr(fd); lenExpr != nil {
		if !isWordsConst(info, lenExpr) {
			pass.Reportf(lenExpr.Pos(),
				"words() array length must be a named *Words constant (the wire-format width), not %s", exprString(lenExpr))
		}
	}

	// The returned composite literal must cover every field exactly once.
	checkWordsLiteral(pass, fd, named, st)
}

// wordsLenExpr digs the array length expression out of the declared result
// type.
func wordsLenExpr(fd *ast.FuncDecl) ast.Expr {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return nil
	}
	at, ok := fd.Type.Results.List[0].Type.(*ast.ArrayType)
	if !ok {
		return nil
	}
	return at.Len
}

func isWordsConst(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	obj := info.Uses[id]
	_, isConst := obj.(*types.Const)
	return isConst && strings.HasSuffix(obj.Name(), "Words")
}

func checkWordsLiteral(pass *lint.Pass, fd *ast.FuncDecl, named *types.Named, st *types.Struct) {
	fieldSet := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fieldSet[st.Field(i).Name()] = true
	}
	counts := map[string]int{}
	var lit *ast.CompositeLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if cl, ok := ret.Results[0].(*ast.CompositeLit); ok {
			lit = cl
		}
		return true
	})
	if lit == nil {
		return // computed some other way; width check above still applies
	}
	for _, elt := range lit.Elts {
		sel, ok := ast.Unparen(elt).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if fieldSet[sel.Sel.Name] {
			counts[sel.Sel.Name]++
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		name := st.Field(i).Name()
		switch counts[name] {
		case 1:
		case 0:
			pass.Reportf(lit.Pos(),
				"field %s.%s never reaches the wire: words() omits it", named.Obj().Name(), name)
		default:
			pass.Reportf(lit.Pos(),
				"field %s.%s is encoded %d times in words()", named.Obj().Name(), name, counts[name])
		}
	}
}
