package analyzers

import (
	"go/ast"
	"go/types"

	"pace/internal/lint"
	"pace/internal/lint/dataflow"
)

// CtxpollScope is the set of import paths whose loops carry the PR 8
// cancellation contract. Tests point it at fixture packages.
var CtxpollScope = []string{"pace/internal/cluster", "pace/internal/serve"}

// Ctxpoll enforces the cancellation contract of the engine and serving
// packages: a dispatch/protocol loop (`for` with no condition) or a wait
// loop (a conditional `for` that blocks on a select, channel receive or
// sleep) must poll the run's context on its own control path — a
// `ctx.Err()` / `Config.ctxErr()` call or a `<-ctx.Done()` case, possibly
// behind same-package helper calls. Otherwise a canceled run keeps the
// loop (and the rank driving it) alive forever.
//
// The check is reachability over the package call graph: a poll buried in
// a helper the loop calls counts, a poll in a goroutine the loop spawns
// does not. Loops that are legitimately exempt (e.g. a bounded drain that
// runs after the context already fired) carry //pacelint:allow ctxpoll
// with the reason.
var Ctxpoll = &lint.Analyzer{
	Name:      "ctxpoll",
	Doc:       "unbounded and blocking wait loops in the engine/serving packages must poll the run context",
	SkipTests: true,
	Run:       runCtxpoll,
}

func runCtxpoll(pass *lint.Pass) error {
	if !pathInScope(pass.Pkg.Path(), CtxpollScope) {
		return nil
	}
	g := dataflow.NewGraph(pass.TypesInfo, pass.Files)
	reach := g.Reach(func(n ast.Node) bool { return isCtxPoll(pass.TypesInfo, n) })
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if loop.Cond != nil && !isWaitLoop(loop.Body) {
				return true
			}
			if reach.Reaches(loop) {
				return true
			}
			kind := "unbounded loop"
			if loop.Cond != nil {
				kind = "blocking wait loop"
			}
			pass.Reportf(loop.Pos(),
				"%s never polls the run context; poll Config.Ctx (ctxErr) or select on ctx.Done() so cancellation can interrupt it", kind)
			return true
		})
	}
	return nil
}

// isCtxPoll matches the primitive poll shapes: any use of context.Context's
// Err or Done methods (`ctx.Err()`, `<-ctx.Done()`, a Done case in a
// select). Helper chains on top of these are handled by reachability.
func isCtxPoll(info *types.Info, n ast.Node) bool {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// isWaitLoop reports whether a conditional loop's body blocks: a select
// statement, a channel receive (<-ch, including <-time.After) or a
// time.Sleep call, without descending into nested function literals.
func isWaitLoop(body *ast.BlockStmt) bool {
	blocking := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			blocking = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				blocking = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sleep" {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
					blocking = true
				}
			}
		}
		return !blocking
	})
	return blocking
}

// pathInScope reports whether pkgPath matches one of the scope entries
// exactly or as a path suffix (fixture modules have their own prefix).
func pathInScope(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if pkgPath == s {
			return true
		}
	}
	return false
}
