package analyzers

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"

	"pace/internal/lint"
)

// MetricCatalog keeps the telemetry surface and its documentation in
// lockstep, codecwords-style: every `pace_*` metric name registered in
// code must appear (as a full name — wildcard families like
// `pace_reconcile_*` don't count) in the DESIGN.md metric catalog, and —
// in standalone full runs, which see the whole program — every full name
// the catalog lists must be registered by some package. The catalog file
// is the DESIGN.md next to the module's go.mod, so fixture modules bring
// their own.
var MetricCatalog = &lint.Analyzer{
	Name:      "metriccatalog",
	Doc:       "every pace_* metric registered in code is listed in the DESIGN.md catalog, and (standalone) vice versa",
	SkipTests: true,
	Run:       runMetricCatalog,
	RunGlobal: runMetricCatalogGlobal,
}

var metricNameRE = regexp.MustCompile(`^pace_[a-z0-9_]+$`)

// catalogTokenRE extracts candidate names from DESIGN.md. Tokens ending
// in "_" are prefixes from wildcard or brace notation (`pace_recovery_*`,
// `pace_x_{a,b}_total`) — not full names — and are dropped.
var catalogTokenRE = regexp.MustCompile(`pace_[a-z0-9_]+`)

func runMetricCatalog(pass *lint.Pass) error {
	type site struct {
		name string
		pos  token.Pos
	}
	var sites []site
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if name, ok := stringLit(asExpr(n)); ok && metricNameRE.MatchString(name) {
				sites = append(sites, site{name: name, pos: n.Pos()})
			}
			return true
		})
	}
	if len(sites) == 0 {
		return nil
	}
	dir := filepath.Dir(pass.Fset.Position(sites[0].pos).Filename)
	catalog, path, err := loadCatalog(dir)
	if err != nil {
		pass.Reportf(sites[0].pos, "cannot load the metric catalog: %v", err)
		return nil
	}
	for _, s := range sites {
		if !catalog[s.name] {
			pass.Reportf(s.pos,
				"metric %s is not in the catalog (%s §13/§15); document it there (full name, not a wildcard)", s.name, filepath.Base(path))
		}
	}
	return nil
}

// runMetricCatalogGlobal is the reverse direction, possible only with the
// whole program in view: catalog names nothing registers are stale docs.
func runMetricCatalogGlobal(pkgs []*lint.Package) []lint.Diagnostic {
	registered := map[string]bool{}
	var anyFile string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			if anyFile == "" {
				anyFile = name
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := stringLit(asExpr(n)); ok && metricNameRE.MatchString(s) {
					registered[s] = true
				}
				return true
			})
		}
	}
	if anyFile == "" {
		return nil
	}
	_, path, err := loadCatalog(filepath.Dir(anyFile))
	if err != nil {
		return nil // per-package direction already reported this
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var out []lint.Diagnostic
	for i, line := range strings.Split(string(data), "\n") {
		for _, tok := range catalogTokenRE.FindAllString(line, -1) {
			if strings.HasSuffix(tok, "_") || registered[tok] || seriesSuffixOf(tok, registered) {
				continue
			}
			out = append(out, lint.Diagnostic{
				Pos:      token.Position{Filename: path, Line: i + 1, Column: strings.Index(line, tok) + 1},
				Analyzer: "metriccatalog",
				Message:  "catalog lists " + tok + " but no code registers it; delete the row or register the metric",
			})
		}
	}
	return out
}

// seriesSuffixOf accepts derived series names the exporter synthesizes
// from a registered family: histogram _bucket/_sum/_count/_max.
func seriesSuffixOf(tok string, registered map[string]bool) bool {
	for _, suf := range []string{"_bucket", "_sum", "_count", "_max"} {
		if base, ok := strings.CutSuffix(tok, suf); ok && registered[base] {
			return true
		}
	}
	return false
}

var catalogCache sync.Map // dir -> catalogEntry

type catalogEntry struct {
	names map[string]bool
	path  string
	err   error
}

// loadCatalog walks up from dir to the nearest go.mod and parses the
// DESIGN.md beside it into a set of full metric names.
func loadCatalog(dir string) (map[string]bool, string, error) {
	if v, ok := catalogCache.Load(dir); ok {
		e := v.(catalogEntry)
		return e.names, e.path, e.err
	}
	e := loadCatalogUncached(dir)
	catalogCache.Store(dir, e)
	return e.names, e.path, e.err
}

func loadCatalogUncached(start string) catalogEntry {
	dir := start
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return catalogEntry{err: os.ErrNotExist}
		}
		dir = parent
	}
	path := filepath.Join(dir, "DESIGN.md")
	data, err := os.ReadFile(path)
	if err != nil {
		return catalogEntry{path: path, err: err}
	}
	names := map[string]bool{}
	for _, tok := range catalogTokenRE.FindAllString(string(data), -1) {
		if !strings.HasSuffix(tok, "_") {
			names[tok] = true
		}
	}
	return catalogEntry{names: names, path: path}
}

func asExpr(n ast.Node) ast.Expr {
	if e, ok := n.(ast.Expr); ok {
		return e
	}
	return nil
}
