package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"pace/internal/lint"
)

// ErrwrapScope is the set of import paths whose error chains must stay
// errors.Is/As-transparent. Tests point it at fixture packages.
var ErrwrapScope = []string{"pace", "pace/internal/serve", "pace/internal/cluster"}

// Errwrap enforces chain-preserving error wrapping in the packages whose
// errors cross API boundaries (the root package, serve, cluster): an
// error value formatted into fmt.Errorf must use %w — %v, %s or a
// .Error() call flattens it to text, and downstream errors.Is(err,
// context.Canceled) / errors.As(&RankFailedError{}) matching silently
// stops working. Since Go 1.20 fmt.Errorf accepts multiple %w verbs, so
// there is no excuse for flattening a second error in one format.
var Errwrap = &lint.Analyzer{
	Name:      "errwrap",
	Doc:       "errors formatted into fmt.Errorf in API-boundary packages must use %w, not %v/%s/.Error()",
	SkipTests: true,
	Run:       runErrwrap,
}

func runErrwrap(pass *lint.Pass) error {
	if !pathInScope(pass.Pkg.Path(), ErrwrapScope) {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) == 0 {
				return true
			}
			format, ok := stringLit(call.Args[0])
			if !ok {
				return true
			}
			verbs := formatVerbs(format)
			for i, arg := range call.Args[1:] {
				if i >= len(verbs) {
					break
				}
				if verbs[i] != 'w' && isErrorType(info.TypeOf(arg)) {
					pass.Reportf(arg.Pos(),
						"error formatted with %%%c loses the chain; use %%w so errors.Is/As still match through it", verbs[i])
				}
				reportErrorCalls(pass, arg)
			}
			return true
		})
	}
	return nil
}

// reportErrorCalls flags (error).Error() calls feeding an Errorf argument:
// stringifying inside the format drops the chain just like %v does.
func reportErrorCalls(pass *lint.Pass, arg ast.Expr) {
	info := pass.TypesInfo
	ast.Inspect(arg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
			return true
		}
		if isErrorType(info.TypeOf(sel.X)) {
			pass.Reportf(call.Pos(),
				".Error() inside fmt.Errorf flattens the chain; pass the error itself with %%w")
		}
		return true
	})
}

// formatVerbs returns the verb letter consuming each successive argument
// of a printf-style format ('*' width/precision slots consume an int and
// are reported as '*').
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision; '*' consumes an argument of its own.
	spec:
		for i < len(format) {
			switch c := format[i]; {
			case c == '*':
				verbs = append(verbs, '*')
				i++
			case c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9'):
				i++
			default:
				break spec
			}
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue // literal %%
		}
		verbs = append(verbs, rune(format[i]))
	}
	return verbs
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// isPkgFunc matches a call to pkg.Name (e.g. fmt.Errorf) by resolved
// object, not by spelling.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}
