package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"pace/internal/lint"
)

// WalltimeScope lists the import-path suffixes of the virtual-time
// packages: code whose behavior must be identical under the simulated
// machine, checkpoint replay and fault-injected reruns. Inside them a
// wall-clock read is a determinism bug unless explicitly annotated
// (ModeReal transports, the simulator's own measured-compute bridge).
//
// Tests may override the slice to point the analyzer at fixture modules.
var WalltimeScope = []string{
	"pace/internal/mp",
	"pace/internal/cluster",
	"pace/internal/telemetry",
}

// walltimeFuncs are the forbidden package time entry points. Conversions
// and constructors that do not read the clock (time.Duration, time.Unix,
// time.Date) stay legal.
var walltimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// slogWallFuncs are the log/slog entry points that smuggle wall-clock
// reads into virtual-time code: the stdlib handler constructors stamp
// every record with time.Now at Handle time, and the process-default
// logger routes records to such a handler too. telemetry.NewLogger is the
// sanctioned factory — it wraps the handler so each record is re-stamped
// from an injected Clock before encoding.
var slogWallFuncs = map[string]bool{
	"NewJSONHandler": true,
	"NewTextHandler": true,
	"Default":        true,
	"SetDefault":     true,
}

// Walltime forbids wall-clock reads in the virtual-time packages, the
// contract behind the simulator's reproducible timings and the
// checkpoint/fault replay equivalence tests. Production code must take its
// time from Comm.Elapsed, an injected clock, or explicit charges. The same
// contract covers logging: stdlib slog handlers stamp records from the
// wall clock, so loggers must come from telemetry.NewLogger instead.
var Walltime = &lint.Analyzer{
	Name:      "walltime",
	Doc:       "forbids time.Now/Sleep/... and wall-clock slog handlers in virtual-time packages unless annotated",
	SkipTests: true,
	Run:       runWalltime,
}

func runWalltime(pass *lint.Pass) error {
	if !walltimeInScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "time" && walltimeFuncs[fn.Name()]:
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in virtual-time package %s; use Comm.Elapsed / an injected clock, or annotate with //pacelint:allow walltime <reason>",
					fn.Name(), pass.Pkg.Path())
			case fn.Pkg().Path() == "log/slog" && slogWallFuncs[fn.Name()]:
				pass.Reportf(sel.Pos(),
					"slog.%s stamps log records from the wall clock in virtual-time package %s; build loggers with telemetry.NewLogger (injected clock), or annotate with //pacelint:allow walltime <reason>",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

func walltimeInScope(path string) bool {
	for _, s := range WalltimeScope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
