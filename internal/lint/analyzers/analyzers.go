// Package analyzers holds the pacelint checks. Each one mechanizes a
// contract an earlier PR established by convention and guarded only with
// tests:
//
//   - sendowned: the mp copy-on-send / SendOwned buffer-ownership
//     contract, call-graph-aware (forwarding helpers count as handoffs).
//   - walltime: no wall-clock reads in the virtual-time packages.
//   - tagconst: message tags are named tag* constants, unique per package.
//   - codecwords: fixed-width wire structs, their words() arrays and their
//     *Words constants stay in agreement.
//   - atomichygiene: a field accessed atomically is accessed atomically
//     everywhere.
//   - vfsonly: durable writes in the state-persisting packages go through
//     the internal/vfs seam, so fault injection covers them.
//   - ctxpoll: engine dispatch loops and serving wait loops poll the run
//     context (the PR 8 cancellation contract).
//   - lockguard: `// guarded by <mu>` fields are accessed with the mutex
//     held on every path; suspicious unannotated fields are flagged.
//   - errwrap: errors crossing the cluster/serve/root API boundaries wrap
//     with %w so errors.Is/As survive the chain.
//   - metriccatalog: pace_* metric names in code and the DESIGN.md §13/§15
//     catalog stay in lockstep, both directions.
//
// The flow-aware ones (ctxpoll, lockguard, sendowned) are built on
// pace/internal/lint/dataflow. The catalog (contract, rationale,
// allow-directive syntax) lives in DESIGN.md §10 and §16.
package analyzers

import (
	"go/ast"
	"go/types"

	"pace/internal/lint"
)

// All returns the full pacelint suite in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		SendOwned,
		Walltime,
		TagConst,
		CodecWords,
		AtomicHygiene,
		Vfsonly,
		Ctxpoll,
		Lockguard,
		Errwrap,
		MetricCatalog,
	}
}

// commMethod resolves call to a method of the given name on the
// message-passing endpoint type Comm (package mp — matched by package name
// so test fixtures can supply their own mp). It returns false for anything
// else.
func commMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Comm" && obj.Pkg() != nil && obj.Pkg().Name() == "mp"
}

// identObj resolves an expression to the object of its base identifier,
// looking through slice expressions (v, v[1:], v[a:b:c] all alias the same
// backing array).
func identObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
