package analyzers

import (
	"go/ast"
	"go/types"

	"pace/internal/lint"
	"pace/internal/lint/dataflow"
)

// SendOwned enforces the PR-1 ownership contract of Comm.SendOwned: the
// call transfers the buffer to the runtime (and ultimately the receiver),
// so the caller must neither touch the buffer afterwards nor retain an
// alias that outlives the function.
//
// Within each function, for a SendOwned whose payload is a local variable
// (or a slice of one), the analyzer flags:
//
//   - any later use of that variable (read, write, re-slice, append) that
//     is not preceded by a full reassignment, and
//   - any retention that lets the buffer escape: returning it, storing it
//     into a field, map, slice element or package-level variable, or
//     appending it to another slice.
//
// v2 is call-graph-aware: the dataflow layer's value-flows-to-call fact
// marks every same-package function whose parameter ends up (possibly
// through further helpers) as a SendOwned payload, and a call to such a
// helper hands the argument off exactly like a direct SendOwned — so a
// buffer passed to a forwarding helper and then touched again, or passed
// to two helpers in a row, is flagged in the caller.
//
// Payloads built in-place (function call results, literals) are untracked:
// with no name there is nothing to misuse. The analysis is per-function and
// flow-insensitive across branches; genuinely safe patterns it cannot see
// are annotated //pacelint:allow sendowned <reason>.
var SendOwned = &lint.Analyzer{
	Name: "sendowned",
	Doc:  "flags use or retention of a buffer after it was handed to Comm.SendOwned, directly or via a forwarding helper",
	Run:  runSendOwned,
}

func runSendOwned(pass *lint.Pass) error {
	g := dataflow.NewGraph(pass.TypesInfo, pass.Files)
	sinks := g.SinkParams(
		func(call *ast.CallExpr) int {
			if len(call.Args) == 3 && commMethod(pass.TypesInfo, call, "SendOwned") {
				return 2
			}
			return -1
		},
		func(e ast.Expr) types.Object { return identObj(pass.TypesInfo, e) },
	)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkSendOwnedFunc(pass, g, sinks, body)
			}
			return true
		})
	}
	return nil
}

func checkSendOwnedFunc(pass *lint.Pass, g *dataflow.Graph, sinks map[types.Object][]int, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Pass 1: collect handoff points in this function body (nested function
	// literals analyze their own bodies; skip them here): direct SendOwned
	// payloads, plus arguments flowing into a forwarding helper's sink
	// parameter.
	type handoff struct {
		obj  types.Object
		call *ast.CallExpr
		via  string // helper name for indirect handoffs, "" for direct
	}
	var handoffs []handoff
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if len(call.Args) == 3 && commMethod(info, call, "SendOwned") {
			if obj := identObj(info, call.Args[2]); obj != nil && isLocalVar(obj) {
				handoffs = append(handoffs, handoff{obj: obj, call: call})
			}
			return
		}
		callee := g.Callee(call)
		if callee == nil || call.Ellipsis.IsValid() {
			return
		}
		for _, i := range sinks[callee] {
			if i >= len(call.Args) {
				continue
			}
			if obj := identObj(info, call.Args[i]); obj != nil && isLocalVar(obj) {
				handoffs = append(handoffs, handoff{obj: obj, call: call, via: callee.Name()})
			}
		}
	})
	if len(handoffs) == 0 {
		return
	}

	for _, h := range handoffs {
		// kills: positions where the variable is wholly reassigned from an
		// expression not derived from itself — ownership of a *new* buffer.
		var kills []ast.Node
		inspectShallow(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || resolveIdent(info, id) != h.obj {
					continue
				}
				if i < len(as.Rhs) && !usesObj(info, as.Rhs[i], h.obj) {
					kills = append(kills, as)
				}
			}
		})
		killedBefore := func(n ast.Node) bool {
			for _, k := range kills {
				if k.Pos() > h.call.End() && k.End() <= n.Pos() {
					return true
				}
			}
			return false
		}

		// Pass 2a: uses after the handoff.
		target := "SendOwned"
		if h.via != "" {
			target = h.via + " (which forwards it to SendOwned)"
		}
		inspectShallow(body, func(n ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok || resolveIdent(info, id) != h.obj {
				return
			}
			if id.Pos() <= h.call.End() {
				return // the handoff itself, or earlier
			}
			if withinKill(kills, id) || killedBefore(id) {
				return
			}
			pass.Reportf(id.Pos(),
				"%s is used after being passed to %s (ownership transferred to the runtime); use Send, or stop touching the buffer", id.Name, target)
		})

		// Pass 2b: retention anywhere in the function — an alias that
		// outlives the call races with the receiver.
		reportEscapes(pass, body, h.obj, h.call)
	}
}

// withinKill reports whether id is part of a kill assignment's LHS.
func withinKill(kills []ast.Node, id *ast.Ident) bool {
	for _, k := range kills {
		as := k.(*ast.AssignStmt)
		for _, lhs := range as.Lhs {
			if l, ok := lhs.(*ast.Ident); ok && l.Pos() == id.Pos() {
				return true
			}
		}
	}
	return false
}

func reportEscapes(pass *lint.Pass, body *ast.BlockStmt, obj types.Object, call *ast.CallExpr) {
	info := pass.TypesInfo
	inspectShallow(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if identObj(info, res) == obj {
					pass.Reportf(res.Pos(),
						"%s is returned but also passed to SendOwned: the buffer escapes while the runtime owns it", obj.Name())
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				escapes := identObj(info, rhs) == obj && i < len(st.Lhs) && !isLocalIdentExpr(info, st.Lhs[i])
				if !escapes {
					// x = append(dst, v...) style retention.
					if c, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, c) {
						for _, arg := range c.Args[1:] {
							if identObj(info, arg) == obj {
								escapes = true
							}
						}
					}
				}
				if escapes {
					pass.Reportf(rhs.Pos(),
						"%s is stored beyond this function but also passed to SendOwned: the buffer escapes while the runtime owns it", obj.Name())
				}
			}
		case *ast.SendStmt:
			if identObj(info, st.Value) == obj {
				pass.Reportf(st.Value.Pos(),
					"%s is sent on a channel but also passed to SendOwned: the buffer escapes while the runtime owns it", obj.Name())
			}
		}
	})
	_ = call
}

// isLocalIdentExpr reports whether e is a plain identifier naming a
// function-local variable (assignment to it does not leak the value).
func isLocalIdentExpr(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := resolveIdent(info, id)
	return obj != nil && isLocalVar(obj)
}

func isBuiltinAppend(info *types.Info, c *ast.CallExpr) bool {
	id, ok := c.Fun.(*ast.Ident)
	if !ok || len(c.Args) < 2 {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// usesObj reports whether expression e mentions obj anywhere.
func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && resolveIdent(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func resolveIdent(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isLocalVar reports whether obj is a variable declared inside a function
// (parameters included): its scope is narrower than the package scope.
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}

// inspectShallow walks n but does not descend into nested function
// literals: their bodies are separate analysis scopes.
func inspectShallow(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
