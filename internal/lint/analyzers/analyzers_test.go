package analyzers_test

import (
	"path/filepath"
	"strings"
	"testing"

	"pace/internal/lint"
	"pace/internal/lint/analyzers"
	"pace/internal/lint/linttest"
)

func fixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSendOwned(t *testing.T) {
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.SendOwned}, "./sendowned")
}

func TestWalltime(t *testing.T) {
	old := analyzers.WalltimeScope
	analyzers.WalltimeScope = []string{"fixture/walltime"}
	defer func() { analyzers.WalltimeScope = old }()
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.Walltime}, "./walltime")
}

func TestWalltimeOutOfScope(t *testing.T) {
	// With the real scope, the fixture package is not a virtual-time
	// package and must produce no findings.
	diags := linttest.Diagnose(t, fixtureDir(t), []*lint.Analyzer{analyzers.Walltime}, "./walltime")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside WalltimeScope: %s", d)
	}
}

func TestTagConst(t *testing.T) {
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.TagConst}, "./tagconst")
}

func TestCodecWords(t *testing.T) {
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.CodecWords}, "./codecwords")
}

func TestAtomicHygiene(t *testing.T) {
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.AtomicHygiene}, "./atomichygiene")
}

func TestVfsonly(t *testing.T) {
	old := analyzers.VfsonlyScope
	analyzers.VfsonlyScope = []string{"fixture/vfsonly"}
	defer func() { analyzers.VfsonlyScope = old }()
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.Vfsonly}, "./vfsonly")
}

func TestVfsonlyOutOfScope(t *testing.T) {
	// With the real scope, the fixture package is not a state-persisting
	// package and must produce no findings.
	diags := linttest.Diagnose(t, fixtureDir(t), []*lint.Analyzer{analyzers.Vfsonly}, "./vfsonly")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside VfsonlyScope: %s", d)
	}
}

func TestCtxpoll(t *testing.T) {
	old := analyzers.CtxpollScope
	analyzers.CtxpollScope = []string{"fixture/ctxpoll"}
	defer func() { analyzers.CtxpollScope = old }()
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.Ctxpoll}, "./ctxpoll")
}

func TestCtxpollOutOfScope(t *testing.T) {
	// With the real scope, the fixture package carries no cancellation
	// contract and must produce no findings.
	diags := linttest.Diagnose(t, fixtureDir(t), []*lint.Analyzer{analyzers.Ctxpoll}, "./ctxpoll")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside CtxpollScope: %s", d)
	}
}

func TestLockguard(t *testing.T) {
	old := analyzers.LockguardScope
	analyzers.LockguardScope = []string{"fixture/lockguard"}
	defer func() { analyzers.LockguardScope = old }()
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.Lockguard}, "./lockguard")
}

func TestLockguardOutOfScope(t *testing.T) {
	diags := linttest.Diagnose(t, fixtureDir(t), []*lint.Analyzer{analyzers.Lockguard}, "./lockguard")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside LockguardScope: %s", d)
	}
}

func TestErrwrap(t *testing.T) {
	old := analyzers.ErrwrapScope
	analyzers.ErrwrapScope = []string{"fixture/errwrap"}
	defer func() { analyzers.ErrwrapScope = old }()
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.Errwrap}, "./errwrap")
}

func TestErrwrapOutOfScope(t *testing.T) {
	diags := linttest.Diagnose(t, fixtureDir(t), []*lint.Analyzer{analyzers.Errwrap}, "./errwrap")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside ErrwrapScope: %s", d)
	}
}

func TestMetricCatalog(t *testing.T) {
	// No scope to override: the check keys off pace_* literals wherever
	// they appear, against the DESIGN.md of the literal's own module.
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.MetricCatalog}, "./metriccatalog")
}

// TestMetricCatalogGlobal exercises the reverse direction: the fixture
// catalog lists pace_stale_total, which nothing registers.
func TestMetricCatalogGlobal(t *testing.T) {
	pkgs, err := lint.LoadPackages(fixtureDir(t), "./metriccatalog")
	if err != nil {
		t.Fatal(err)
	}
	diags := analyzers.MetricCatalog.RunGlobal(pkgs)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "pace_stale_total") || !strings.Contains(d.Message, "no code registers it") {
		t.Errorf("unexpected message: %s", d.Message)
	}
	if filepath.Base(d.Pos.Filename) != "DESIGN.md" {
		t.Errorf("diagnostic should point into the catalog file, got %s", d.Pos.Filename)
	}
}

// TestStaleAllow exercises the strict-mode exemption-ledger check: unused
// directives and directives naming unknown analyzers are findings.
func TestStaleAllow(t *testing.T) {
	old := analyzers.WalltimeScope
	analyzers.WalltimeScope = []string{"fixture/staleallow"}
	defer func() { analyzers.WalltimeScope = old }()

	pkgs, err := lint.LoadPackages(fixtureDir(t), "./staleallow")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := lint.AnalyzePackageStrict(pkgs[0], []*lint.Analyzer{analyzers.Walltime})
	if err != nil {
		t.Fatal(err)
	}
	var stale, unknown, other int
	for _, d := range diags {
		switch {
		case d.Analyzer == "stale-allow" && strings.Contains(d.Message, "suppresses no findings"):
			stale++
		case d.Analyzer == "stale-allow" && strings.Contains(d.Message, `unknown analyzer "walltyme"`):
			unknown++
		default:
			other++
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if stale != 1 || unknown != 1 {
		t.Errorf("got %d stale + %d unknown diagnostics, want 1 + 1 (all: %v)", stale, unknown, diags)
	}

	// The same package under non-strict analysis is quiet: the used
	// directive suppresses its finding and the ledger is not audited.
	plain, err := lint.AnalyzePackage(pkgs[0], []*lint.Analyzer{analyzers.Walltime})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plain {
		t.Errorf("unexpected non-strict diagnostic: %s", d)
	}
}

// TestSuiteOnRepo runs the full suite over the real tree exactly as the
// standalone CI driver does — strict per-package analysis (stale-allow
// audit included) plus the whole-program RunGlobal passes. The contract
// the CI lint gate enforces: after this PR the repo itself lints clean.
func TestSuiteOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	diags := linttest.DiagnoseStrict(t, root, analyzers.All(), "./...")
	for _, d := range diags {
		t.Errorf("repo is not lint-clean: %s", d)
	}
}
