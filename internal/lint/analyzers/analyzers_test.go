package analyzers_test

import (
	"path/filepath"
	"testing"

	"pace/internal/lint"
	"pace/internal/lint/analyzers"
	"pace/internal/lint/linttest"
)

func fixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSendOwned(t *testing.T) {
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.SendOwned}, "./sendowned")
}

func TestWalltime(t *testing.T) {
	old := analyzers.WalltimeScope
	analyzers.WalltimeScope = []string{"fixture/walltime"}
	defer func() { analyzers.WalltimeScope = old }()
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.Walltime}, "./walltime")
}

func TestWalltimeOutOfScope(t *testing.T) {
	// With the real scope, the fixture package is not a virtual-time
	// package and must produce no findings.
	diags := linttest.Diagnose(t, fixtureDir(t), []*lint.Analyzer{analyzers.Walltime}, "./walltime")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside WalltimeScope: %s", d)
	}
}

func TestTagConst(t *testing.T) {
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.TagConst}, "./tagconst")
}

func TestCodecWords(t *testing.T) {
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.CodecWords}, "./codecwords")
}

func TestAtomicHygiene(t *testing.T) {
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.AtomicHygiene}, "./atomichygiene")
}

func TestVfsonly(t *testing.T) {
	old := analyzers.VfsonlyScope
	analyzers.VfsonlyScope = []string{"fixture/vfsonly"}
	defer func() { analyzers.VfsonlyScope = old }()
	linttest.Run(t, fixtureDir(t), []*lint.Analyzer{analyzers.Vfsonly}, "./vfsonly")
}

func TestVfsonlyOutOfScope(t *testing.T) {
	// With the real scope, the fixture package is not a state-persisting
	// package and must produce no findings.
	diags := linttest.Diagnose(t, fixtureDir(t), []*lint.Analyzer{analyzers.Vfsonly}, "./vfsonly")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside VfsonlyScope: %s", d)
	}
}

// TestSuiteOnRepo runs the full suite over the real tree: the contract the
// CI lint gate enforces — after this PR the repo itself lints clean.
func TestSuiteOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	diags := linttest.Diagnose(t, root, analyzers.All(), "./...")
	for _, d := range diags {
		t.Errorf("repo is not lint-clean: %s", d)
	}
}
