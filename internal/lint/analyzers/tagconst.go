package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"pace/internal/lint"
)

// TagConst enforces the tag registry discipline of the master–slave
// protocol: every tag handed to the mp endpoint (Send, SendOwned, Recv,
// RecvTimeout, Probe) must be a named constant whose name starts with
// "tag"/"Tag" — never a bare literal or an arbitrary expression — and
// within one package no two tag constants may share a value (a collision
// silently cross-wires two message streams; see the collective-tag space in
// internal/mp). A tag that is threaded through a parameter itself named
// tag* is accepted: the constant obligation falls on the outermost caller.
var TagConst = &lint.Analyzer{
	Name:      "tagconst",
	Doc:       "mp message tags must be named tag* constants with package-unique values",
	SkipTests: true,
	Run:       runTagConst,
}

// tagArgIndex maps Comm method name -> index of its tag argument.
var tagArgIndex = map[string]int{
	"Send":        1,
	"SendOwned":   1,
	"Recv":        1,
	"RecvTimeout": 1,
	"Probe":       1,
}

func runTagConst(pass *lint.Pass) error {
	checkTagUniqueness(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for name, idx := range tagArgIndex {
				if !commMethod(pass.TypesInfo, call, name) || len(call.Args) <= idx {
					continue
				}
				arg := call.Args[idx]
				if !isTagExpr(pass.TypesInfo, arg) {
					pass.Reportf(arg.Pos(),
						"tag argument of Comm.%s must be a named tag* constant (or a tag* parameter), not %s",
						name, exprString(arg))
				}
			}
			return true
		})
	}
	return nil
}

// isTagExpr accepts identifiers/selectors resolving to a constant or
// variable/parameter whose name starts with tag or Tag.
func isTagExpr(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	if !strings.HasPrefix(obj.Name(), "tag") && !strings.HasPrefix(obj.Name(), "Tag") {
		return false
	}
	switch obj.(type) {
	case *types.Const, *types.Var:
		return true
	}
	return false
}

// checkTagUniqueness reports package-level tag* constants that collide on a
// value.
func checkTagUniqueness(pass *lint.Pass) {
	type tagDecl struct {
		name string
		pos  token.Pos
	}
	seen := map[int64]tagDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "tag") && !strings.HasPrefix(name.Name, "Tag") {
						continue
					}
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					v, exact := constant.Int64Val(c.Val())
					if !exact {
						continue
					}
					if prev, dup := seen[v]; dup {
						pass.Reportf(name.Pos(),
							"tag constant %s = %d collides with %s declared at %s: tag values must be unique within a package",
							name.Name, v, prev.name, pass.Fset.Position(prev.pos))
						continue
					}
					seen[v] = tagDecl{name: name.Name, pos: name.Pos()}
				}
			}
		}
	}
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.BasicLit:
		return "literal " + x.Value
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	default:
		return "an expression"
	}
}
