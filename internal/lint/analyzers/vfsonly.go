package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"pace/internal/lint"
)

// VfsonlyScope lists the import-path suffixes of the packages whose durable
// writes must flow through the internal/vfs seam: the serving stack's state
// directories and the engine's checkpoint path. A direct os mutation there
// is invisible to fault injection — chaos tests and crash-window sweeps
// cannot reach it, so its failure modes ship untested.
//
// Tests may override the slice to point the analyzer at fixture modules.
var VfsonlyScope = []string{
	"pace/internal/serve",
	"pace/internal/cluster",
}

// vfsonlyFuncs are the forbidden package os entry points: every durable
// mutation the vfs.FS interface covers. Reads (os.Open, os.ReadFile,
// os.ReadDir) stay legal — the seam covers the write path only.
var vfsonlyFuncs = map[string]bool{
	"WriteFile":  true,
	"Rename":     true,
	"CreateTemp": true,
	"Create":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"MkdirAll":   true,
	"Mkdir":      true,
}

// Vfsonly forbids direct filesystem mutation in the packages that persist
// session state: writes must go through an injected vfs.FS so deterministic
// fault plans (ENOSPC, torn writes, fsync failures, crash-at-op-k) exercise
// every durability path the server actually takes.
var Vfsonly = &lint.Analyzer{
	Name:      "vfsonly",
	Doc:       "forbids direct os writes (os.WriteFile/Rename/... and (*os.File).Sync) in state-persisting packages; route them through internal/vfs",
	SkipTests: true,
	Run:       runVfsonly,
}

func runVfsonly(pass *lint.Pass) error {
	if !vfsonlyInScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "os" && fn.Type().(*types.Signature).Recv() == nil && vfsonlyFuncs[fn.Name()]:
				pass.Reportf(sel.Pos(),
					"os.%s mutates the filesystem outside the vfs seam in %s; write through an injected vfs.FS so fault plans cover it, or annotate with //pacelint:allow vfsonly <reason>",
					fn.Name(), pass.Pkg.Path())
			case fn.Name() == "Sync" && osFileMethod(fn):
				pass.Reportf(sel.Pos(),
					"(*os.File).Sync fsyncs outside the vfs seam in %s; use a vfs.File from the injected FS, or annotate with //pacelint:allow vfsonly <reason>",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// osFileMethod reports whether fn is a method on package os's File type.
func osFileMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

func vfsonlyInScope(path string) bool {
	for _, s := range VfsonlyScope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
