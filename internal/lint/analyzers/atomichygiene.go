package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"pace/internal/lint"
)

// AtomicHygiene flags struct fields that are accessed both through
// sync/atomic (atomic.AddInt64(&s.f, 1), atomic.LoadUint32(&s.f), ...) and
// through plain selector reads/writes in the same package. A single
// non-atomic access to an atomically updated counter is a data race the
// race detector only catches when the interleaving happens to fire; the
// analyzer catches it structurally. The cure is either full atomic
// discipline or the typed wrappers (atomic.Int64 et al.) that the telemetry
// and fault-stats code already use.
//
// Plain accesses under an explicit lock are invisible to the analyzer; the
// few legitimate mixed patterns (e.g. a constructor writing before the
// struct is shared) carry //pacelint:allow atomichygiene <reason>.
var AtomicHygiene = &lint.Analyzer{
	Name: "atomichygiene",
	Doc:  "a field accessed via sync/atomic must not also be accessed non-atomically",
	Run:  runAtomicHygiene,
}

func runAtomicHygiene(pass *lint.Pass) error {
	info := pass.TypesInfo

	// Pass 1: fields that appear as &x.f in a sync/atomic call, keyed by the
	// field object. Remember one call site for the report.
	atomicFields := map[*types.Var]ast.Node{}
	// Selector nodes that are part of the atomic call itself (must not be
	// re-reported in pass 2).
	atomicSites := map[*ast.SelectorExpr]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fld := selectedField(info, sel)
				if fld == nil {
					continue
				}
				if _, seen := atomicFields[fld]; !seen {
					atomicFields[fld] = call
				}
				atomicSites[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: plain selector accesses to those fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Composite literal with field keys: Stats{f: 0} is
			// initialization before sharing, not an access.
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if _, isIdent := kv.Key.(*ast.Ident); isIdent {
					ast.Inspect(kv.Value, func(m ast.Node) bool { return inspectPlain(pass, info, atomicFields, atomicSites, m) })
					return false
				}
			}
			return inspectPlain(pass, info, atomicFields, atomicSites, n)
		})
	}
	return nil
}

func inspectPlain(pass *lint.Pass, info *types.Info, atomicFields map[*types.Var]ast.Node, atomicSites map[*ast.SelectorExpr]bool, n ast.Node) bool {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok || atomicSites[sel] {
		return true
	}
	fld := selectedField(info, sel)
	if fld == nil {
		return true
	}
	site, hot := atomicFields[fld]
	if !hot {
		return true
	}
	pos := pass.Fset.Position(site.Pos())
	pass.Reportf(sel.Pos(),
		"non-atomic access to %s.%s, which is accessed atomically at %s:%d; use sync/atomic everywhere or a typed atomic.%s",
		fieldOwnerName(fld), fld.Name(), shortFile(pos.Filename), pos.Line, suggestTyped(fld))
	return true
}

// isAtomicCall reports whether call is a direct call into sync/atomic's
// package-level functions (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Methods of atomic.Int64 et al. are already safe; only the raw
	// package-level functions take &field.
	sig := fn.Type().(*types.Signature)
	return sig.Recv() == nil
}

// selectedField resolves sel to the struct field it selects, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

func fieldOwnerName(fld *types.Var) string {
	if fld.Pkg() == nil {
		return "?"
	}
	// Best effort: find the named type in the package scope that owns the
	// field. Falls back to the package name.
	scope := fld.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return tn.Name()
			}
		}
	}
	return fld.Pkg().Name()
}

func suggestTyped(fld *types.Var) string {
	t := fld.Type().String()
	switch {
	case strings.HasSuffix(t, "int64"):
		return "Int64"
	case strings.HasSuffix(t, "int32"):
		return "Int32"
	case strings.HasSuffix(t, "uint64"):
		return "Uint64"
	case strings.HasSuffix(t, "uint32"):
		return "Uint32"
	default:
		return "Value"
	}
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
