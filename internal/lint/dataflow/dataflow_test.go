package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheck parses and type-checks one import-free source file. Keeping
// the fixtures import-free lets these tests run without export data: the
// dataflow layer itself is exercised with local stand-ins (a local mutex
// type plus a pluggable classifier instead of sync.Mutex).
func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

func lookupFunc(t *testing.T, g *Graph, name string) types.Object {
	t.Helper()
	for fn := range g.decls {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("no declared function %q", name)
	return nil
}

func TestGraphCalleesAndClosures(t *testing.T) {
	const src = `package p

type T struct{}

func (T) m() {}

func a() { b() }
func b() {}

func useClosures() {
	cl := func() { b() }
	cl()
	var t T
	t.m()
	rebound := func() {}
	rebound = func() { b() }
	rebound()
}
`
	_, f, info := typecheck(t, src)
	g := NewGraph(info, []*ast.File{f})

	var calls []*ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	got := map[string]string{}
	for _, c := range calls {
		name := ExprPath(c.Fun)
		obj := g.Callee(c)
		switch {
		case obj == nil:
			got[name] = "nil"
		case g.Body(obj) != nil:
			got[name] = "body"
		default:
			got[name] = "nobody"
		}
	}
	if got["b"] != "body" {
		t.Errorf("call b(): callee = %s, want body", got["b"])
	}
	if got["cl"] != "body" {
		t.Errorf("call cl(): single-assignment closure should resolve with a body, got %s", got["cl"])
	}
	if got["t.m"] != "body" {
		t.Errorf("call t.m(): method should resolve with a body, got %s", got["t.m"])
	}
	// rebound is assigned twice: the target is ambiguous, so it must drop
	// out of the graph rather than resolve to either literal.
	if got["rebound"] != "nil" {
		t.Errorf("call rebound(): reassigned closure must not resolve, got %s", got["rebound"])
	}

	a := lookupFunc(t, g, "a")
	if len(g.Params(a)) != 0 {
		t.Errorf("a has no params, got %v", g.Params(a))
	}
}

func TestReachTransitive(t *testing.T) {
	const src = `package p

func poll() {}

func direct()   { poll() }
func viaOne()   { direct() }
func viaTwo()   { viaOne() }
func never()    {}
func viaNever() { never() }

func spawner() { go func() { poll() }() }
func inline()  { func() { poll() }() }

func loops() {
	for { viaTwo() } // reaches

	for { never() } // does not
}
`
	fset, f, info := typecheck(t, src)
	g := NewGraph(info, []*ast.File{f})
	r := g.Reach(func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := c.Fun.(*ast.Ident)
		return ok && id.Name == "poll"
	})

	wantFn := map[string]bool{
		"direct": true, "viaOne": true, "viaTwo": true,
		"never": false, "viaNever": false,
		// A spawned goroutine polls on its own schedule, not the caller's.
		"spawner": false,
		// An immediately-invoked literal runs inline, so its poll counts.
		"inline": true,
	}
	for name, want := range wantFn {
		if got := r.Fn(lookupFunc(t, g, name)); got != want {
			t.Errorf("Reach.Fn(%s) = %v, want %v", name, got, want)
		}
	}

	var forLoops []*ast.ForStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if l, ok := n.(*ast.ForStmt); ok {
			forLoops = append(forLoops, l)
		}
		return true
	})
	if len(forLoops) != 2 {
		t.Fatalf("want 2 for loops in fixture, got %d", len(forLoops))
	}
	if !r.Reaches(forLoops[0]) {
		t.Errorf("loop at %s should reach poll via viaTwo", fset.Position(forLoops[0].Pos()))
	}
	if r.Reaches(forLoops[1]) {
		t.Errorf("loop at %s must not reach poll", fset.Position(forLoops[1].Pos()))
	}
}

func TestSinkParamsFixpoint(t *testing.T) {
	const src = `package p

func sink(b []byte) {}

func f1(b []byte)    { sink(b) }
func f2(b []byte)    { f1(b) }
func f3(a, b []byte) { f1(b) }
func f4(b []byte)    { sink(b[2:]) }
func safe(b []byte)  { _ = b }

func closures() {
	cl := func(b []byte) { f2(b) }
	cl(nil)
}
`
	_, f, info := typecheck(t, src)
	g := NewGraph(info, []*ast.File{f})
	sinks := g.SinkParams(
		func(c *ast.CallExpr) int {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "sink" {
				return 0
			}
			return -1
		},
		func(e ast.Expr) types.Object {
			for {
				switch x := e.(type) {
				case *ast.Ident:
					return objOf(info, x)
				case *ast.SliceExpr:
					e = x.X
				default:
					return nil
				}
			}
		},
	)

	byName := map[string][]int{}
	for obj, idxs := range sinks {
		byName[obj.Name()] = idxs
	}
	for name, want := range map[string][]int{"f1": {0}, "f2": {0}, "f3": {1}, "f4": {0}, "cl": {0}} {
		got := byName[name]
		if len(got) != len(want) || (len(got) > 0 && got[0] != want[0]) {
			t.Errorf("SinkParams[%s] = %v, want %v", name, got, want)
		}
	}
	if _, ok := byName["safe"]; ok {
		t.Errorf("safe does not forward to the sink, got %v", byName["safe"])
	}
	if _, ok := byName["sink"]; ok {
		t.Errorf("the primitive sink itself has no body-derived sink params here, got %v", byName["sink"])
	}
}

// lockFixture uses a local mutex stand-in and a name-based classifier, so
// the simulation is exercised without importing sync.
const lockFixture = `package p

type mutex struct{}

func (*mutex) Lock()   {}
func (*mutex) Unlock() {}

type T struct {
	mu mutex
	x  int
}

func (t *T) straight() {
	t.mu.Lock()
	_ = t.x // HELD
	t.mu.Unlock()
	_ = t.x // BARE
}

func (t *T) deferred() {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.x // HELD
	if t.x > 0 { // HELD
		return
	}
	_ = t.x // HELD
}

func (t *T) branchy(c bool) {
	t.mu.Lock()
	if c {
		t.mu.Unlock()
		_ = t.x // BARE
		return
	}
	_ = t.x // HELD
	t.mu.Unlock()
	_ = t.x // BARE
}

func (t *T) merge(c bool) {
	if c {
		t.mu.Lock()
	}
	_ = t.x // BARE: only one branch locked
}

func (t *T) loop(n int) {
	t.mu.Lock()
	for i := 0; i < n; i++ {
		_ = t.x // HELD
	}
	_ = t.x // HELD
	for i := 0; i < n; i++ {
		t.mu.Unlock()
		t.mu.Lock()
	}
	_ = t.x // HELD: every loop exit point re-holds the lock
	for i := 0; i < n; i++ {
		if i == 2 {
			t.mu.Unlock()
			break
		}
	}
	_ = t.x // BARE: the break path released the lock
}

func (t *T) spawn() {
	t.mu.Lock()
	go func() {
		_ = t.x // BARE: new goroutine holds nothing
	}()
	_ = t.x // HELD
	t.mu.Unlock()
}
`

func TestWalkHeldLockStates(t *testing.T) {
	fset, f, info := typecheck(t, lockFixture)

	// expected[line] = true if t.mu must be held at the t.x access.
	expected := map[int]bool{}
	for i, line := range strings.Split(lockFixture, "\n") {
		switch {
		case strings.Contains(line, "// HELD"):
			expected[i+1] = true
		case strings.Contains(line, "// BARE"):
			expected[i+1] = false
		}
	}
	if len(expected) == 0 {
		t.Fatal("no HELD/BARE markers in fixture")
	}

	model := LockModel{
		Info: info,
		Classify: func(call *ast.CallExpr) ([]string, LockEffect) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return nil, EffectNone
			}
			keys := []string{ExprPath(sel.X)}
			switch sel.Sel.Name {
			case "Lock":
				return keys, EffectAcquire
			case "Unlock":
				return keys, EffectRelease
			}
			return nil, EffectNone
		},
	}

	got := map[int]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Recv == nil {
			continue
		}
		WalkHeld(model, fd.Body, NewLockSet(), func(n ast.Node, held *LockSet) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "x" {
				return
			}
			line := fset.Position(sel.Pos()).Line
			h := held.Holds("t.mu")
			if prev, seen := got[line]; seen {
				h = h && prev // visited on several paths: must-hold meets
			}
			got[line] = h
		})
	}

	for line, want := range expected {
		gotHeld, seen := got[line]
		if !seen {
			t.Errorf("line %d: access never visited", line)
			continue
		}
		if gotHeld != want {
			t.Errorf("line %d: held = %v, want %v", line, gotHeld, want)
		}
	}
}

func TestMutexOpAndFieldKeys(t *testing.T) {
	// This one needs real sync.Mutex resolution, so it gets its own tiny
	// package with a vendored-in shape: a named struct from this package
	// only. MutexOp demands package path "sync", so a local impostor must
	// be rejected.
	const src = `package p

type Mutex struct{}

func (*Mutex) Lock() {}

type S struct{ mu Mutex }

func f(s *S) { s.mu.Lock() }
`
	_, f, info := typecheck(t, src)
	var call *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	if keys, eff := MutexOp(info, call); eff != EffectNone {
		t.Errorf("local impostor Mutex classified as a lock op: %v %v", keys, eff)
	}

	var sel *ast.SelectorExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectorExpr); ok && s.Sel.Name == "mu" {
			sel = s
		}
		return true
	})
	pathKey, typeKey := FieldKeys(info, sel)
	if pathKey != "s.mu" || typeKey != "S.mu" {
		t.Errorf("FieldKeys = %q, %q; want \"s.mu\", \"S.mu\"", pathKey, typeKey)
	}
}
