package dataflow

import (
	"go/ast"
	"go/types"
	"sort"
)

// SinkParams computes the value-flows-to-call fact: for every function and
// tracked closure in the package, which of its parameters flow — directly
// or through further same-package calls — into the sink argument slot of a
// sink call.
//
// seed identifies the primitive sink: it returns the index of a call's
// sink argument, or -1 if the call is not a sink. base resolves an
// argument expression to the object it aliases (typically looking through
// slicing and parens, since a sub-slice shares the backing array).
//
// The result maps a function object to the sorted indices of its sink
// parameters. Example: with seed matching Comm.SendOwned's payload (index
// 2), a helper `func ship(c *mp.Comm, to int, buf []byte) { c.SendOwned(to,
// tag, buf) }` gets {ship: [2]}, and so does any function that forwards a
// parameter to ship's buf.
func (g *Graph) SinkParams(seed func(*ast.CallExpr) int, base func(ast.Expr) types.Object) map[types.Object][]int {
	bodies := g.Bodies()
	marked := map[types.Object]map[int]bool{}
	paramIdx := map[types.Object]map[types.Object]int{}
	for obj := range bodies {
		idx := map[types.Object]int{}
		for i, p := range g.Params(obj) {
			if p != nil {
				idx[p] = i
			}
		}
		paramIdx[obj] = idx
	}

	mark := func(fn types.Object, i int) bool {
		if marked[fn] == nil {
			marked[fn] = map[int]bool{}
		}
		if marked[fn][i] {
			return false
		}
		marked[fn][i] = true
		return true
	}

	for changed := true; changed; {
		changed = false
		for fn, body := range bodies {
			params := paramIdx[fn]
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Ellipsis.IsValid() {
					return true
				}
				sinkArg := func(i int) {
					if i < 0 || i >= len(call.Args) {
						return
					}
					obj := base(call.Args[i])
					if obj == nil {
						return
					}
					if j, ok := params[obj]; ok && mark(fn, j) {
						changed = true
					}
				}
				if i := seed(call); i >= 0 {
					sinkArg(i)
				} else if callee := g.Callee(call); callee != nil {
					for i := range marked[callee] {
						sinkArg(i)
					}
				}
				return true
			})
		}
	}

	out := make(map[types.Object][]int, len(marked))
	for fn, set := range marked {
		idxs := make([]int, 0, len(set))
		for i := range set {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		out[fn] = idxs
	}
	return out
}
