// Package dataflow is the flow-aware layer beneath the pacelint analyzers:
// a type-directed call graph over one package (declared functions, methods
// and single-assignment local closures), plus the reusable facts the v2
// analyzer suite is built on —
//
//   - loop-contains-call reachability (Reach): does executing this node hit
//     a given "direct" fact, literally or through calls to package
//     functions that do? (ctxpoll)
//   - value-flows-to-call sink parameters (SinkParams): which parameters of
//     which functions end up, possibly through further calls, in a given
//     argument slot of a sink call? (sendowned v2)
//   - lock-held-at-access simulation (WalkHeld, locks.go): a forward
//     must-hold walk over a function body's CFG-lite block ordering.
//     (lockguard)
//
// Everything here is intra-package: calls that resolve to another package,
// to an interface method, or to a dynamic function value are treated as
// opaque. That bias is deliberate — each fact is consumed by a "must reach"
// or "must hold" check, so opaque calls err toward reporting, never toward
// silence.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Graph is a call graph over one type-checked package. Nodes are
// types.Objects: *types.Func for declared functions and methods,
// *types.Var for local variables bound exactly once to a function literal
// (x := func(...){...} with no reassignment).
type Graph struct {
	Info *types.Info

	decls    map[*types.Func]*ast.FuncDecl
	closures map[*types.Var]*ast.FuncLit
}

// NewGraph builds the graph from the package's syntax and type info.
func NewGraph(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{
		Info:     info,
		decls:    map[*types.Func]*ast.FuncDecl{},
		closures: map[*types.Var]*ast.FuncLit{},
	}
	// A closure variable only counts while it has exactly one binding:
	// reassignment (or a second candidate literal) makes the target
	// ambiguous, so the variable drops out of the graph.
	unstable := map[*types.Var]bool{}
	bind := func(id *ast.Ident, rhs ast.Expr, define bool) {
		v, ok := objOf(g.Info, id).(*types.Var)
		if !ok {
			return
		}
		lit, isLit := unparen(rhs).(*ast.FuncLit)
		if define && isLit {
			if _, dup := g.closures[v]; dup {
				unstable[v] = true
			}
			g.closures[v] = lit
			return
		}
		unstable[v] = true
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if fn, ok := info.Defs[n.Name].(*types.Func); ok {
					g.decls[fn] = n
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					bind(id, rhs, n.Tok == token.DEFINE)
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					var rhs ast.Expr
					if i < len(n.Values) {
						rhs = n.Values[i]
					}
					bind(id, rhs, true)
				}
			}
			return true
		})
	}
	for v := range unstable {
		delete(g.closures, v)
	}
	return g
}

// Callee resolves the static target of a call: a *types.Func (declared
// anywhere — same package, imported, or a method), a closure *types.Var
// tracked by this graph, or nil for dynamic calls, conversions and
// builtins.
func (g *Graph) Callee(call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch o := objOf(g.Info, fun).(type) {
		case *types.Func:
			return o
		case *types.Var:
			if _, ok := g.closures[o]; ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := g.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Body returns the body of a graph node (declared function or tracked
// closure), or nil if the object has no body in this package.
func (g *Graph) Body(obj types.Object) *ast.BlockStmt {
	switch o := obj.(type) {
	case *types.Func:
		if d := g.decls[o]; d != nil {
			return d.Body
		}
	case *types.Var:
		if lit := g.closures[o]; lit != nil {
			return lit.Body
		}
	}
	return nil
}

// Decl returns the declaration of a function object in this package.
func (g *Graph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Bodies returns every graph node that has a body: declared functions and
// methods plus tracked closures.
func (g *Graph) Bodies() map[types.Object]*ast.BlockStmt {
	out := make(map[types.Object]*ast.BlockStmt, len(g.decls)+len(g.closures))
	for fn, d := range g.decls {
		if d.Body != nil {
			out[fn] = d.Body
		}
	}
	for v, lit := range g.closures {
		out[v] = lit.Body
	}
	return out
}

// Params returns the parameter objects of a graph node, in declaration
// order, resolved from its syntax.
func (g *Graph) Params(obj types.Object) []types.Object {
	var ft *ast.FuncType
	switch o := obj.(type) {
	case *types.Func:
		if d := g.decls[o]; d != nil {
			ft = d.Type
		}
	case *types.Var:
		if lit := g.closures[o]; lit != nil {
			ft = lit.Type
		}
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			out = append(out, g.Info.Defs[name])
		}
	}
	return out
}

// Reach answers loop-contains-call queries against one direct fact: a node
// predicate such as "this is a context poll". A function reaches the fact
// if its body contains a matching node, or calls (transitively, within the
// package) a function that does.
type Reach struct {
	g      *Graph
	direct func(ast.Node) bool
	funcs  map[types.Object]bool
}

// Reach computes the reaching-function set for the direct fact.
func (g *Graph) Reach(direct func(ast.Node) bool) *Reach {
	r := &Reach{g: g, direct: direct, funcs: map[types.Object]bool{}}
	type summary struct {
		hit   bool
		calls []types.Object
	}
	sums := map[types.Object]summary{}
	for obj, body := range g.Bodies() {
		hit, calls := r.scan(body)
		sums[obj] = summary{hit: hit, calls: calls}
	}
	for changed := true; changed; {
		changed = false
		for obj, s := range sums {
			if r.funcs[obj] {
				continue
			}
			ok := s.hit
			for _, c := range s.calls {
				if r.funcs[c] {
					ok = true
				}
			}
			if ok {
				r.funcs[obj] = true
				changed = true
			}
		}
	}
	return r
}

// Fn reports whether the function object reaches the fact.
func (r *Reach) Fn(obj types.Object) bool { return r.funcs[obj] }

// Reaches reports whether executing root (e.g. a loop statement) reaches
// the fact: a direct match under root, or a call to a reaching function.
func (r *Reach) Reaches(root ast.Node) bool {
	hit, calls := r.scan(root)
	if hit {
		return true
	}
	for _, c := range calls {
		if r.funcs[c] {
			return true
		}
	}
	return false
}

// scan walks root without descending into function literals — their bodies
// run on someone else's schedule — except literals that are invoked on the
// spot (func(){...}()), which execute inline. A `go func(){...}()` literal
// is NOT inline: the spawned goroutine's polls do not interrupt this one.
func (r *Reach) scan(root ast.Node) (hit bool, calls []types.Object) {
	inline := map[*ast.FuncLit]bool{}
	spawned := map[*ast.FuncLit]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
				spawned[lit] = true
			}
		}
		if lit, ok := n.(*ast.FuncLit); ok && n != root && !inline[lit] {
			return false
		}
		if r.direct(n) {
			hit = true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
				if !spawned[lit] {
					inline[lit] = true
				}
			} else if obj := r.g.Callee(call); obj != nil {
				calls = append(calls, obj)
			}
		}
		return true
	})
	return hit, calls
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
