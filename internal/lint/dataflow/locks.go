package dataflow

import (
	"go/ast"
	"go/types"
	"sort"
)

// LockSet is a must-hold set of lock keys. Keys are strings in two forms,
// both usually recorded per acquisition:
//
//   - an instance path like "t.mu" — the rendered selector chain of the
//     lock expression, precise but only comparable within one function;
//   - a type key like "simTransport.mu" — the owning struct type plus
//     field name, which survives renaming across functions and lets a
//     field of one struct be guarded by a mutex living in another.
type LockSet struct{ m map[string]bool }

// NewLockSet returns a set holding the given keys.
func NewLockSet(keys ...string) *LockSet {
	s := &LockSet{m: map[string]bool{}}
	for _, k := range keys {
		s.Add(k)
	}
	return s
}

// Holds reports whether key is in the must-hold set.
func (s *LockSet) Holds(key string) bool { return key != "" && s.m[key] }

// Add inserts a key; empty keys are ignored.
func (s *LockSet) Add(key string) {
	if key != "" {
		s.m[key] = true
	}
}

// Del removes a key.
func (s *LockSet) Del(key string) { delete(s.m, key) }

// Keys returns the sorted held keys (for tests and diagnostics).
func (s *LockSet) Keys() []string {
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s *LockSet) clone() *LockSet {
	c := &LockSet{m: make(map[string]bool, len(s.m))}
	for k := range s.m {
		c.m[k] = true
	}
	return c
}

// intersectAll returns the keys held in every set; must-hold merges meet.
func intersectAll(sets []*LockSet) *LockSet {
	if len(sets) == 0 {
		return NewLockSet()
	}
	out := sets[0].clone()
	for _, s := range sets[1:] {
		for k := range out.m {
			if !s.m[k] {
				delete(out.m, k)
			}
		}
	}
	return out
}

// LockEffect classifies a call's effect on the lock set.
type LockEffect int

const (
	// EffectNone leaves the lock set unchanged.
	EffectNone LockEffect = iota
	// EffectAcquire adds the call's keys to the set.
	EffectAcquire
	// EffectRelease removes the call's keys from the set.
	EffectRelease
)

// LockModel configures the simulation.
type LockModel struct {
	Info *types.Info
	// Classify reports a call's lock keys and effect (EffectNone for calls
	// that do not touch locks). MutexOp handles the direct
	// sync.Mutex/RWMutex cases; analyzers layer annotated helpers on top.
	Classify func(call *ast.CallExpr) ([]string, LockEffect)
}

// WalkHeld runs a forward must-hold simulation over body starting from
// entry, invoking visit on every visited node with the lock set held at
// that point. The walk follows the function's block ordering: branches
// merge by intersection (a key survives only if held on every non-
// terminated path), loops account for the zero-iteration path and break
// exits, a path ending in return/panic stops contributing, `go` literals
// start from an empty set, and a deferred release is ignored (the lock
// stays held until the function returns, which is exactly what the
// deferred unlock means).
//
// The visited set held at a node is a may-be-too-small approximation by
// construction — the simulation never invents a held lock — so "guarded
// access while not held" checks built on it can report false positives on
// exotic flow, but silence genuinely means every path held the lock.
func WalkHeld(model LockModel, body *ast.BlockStmt, entry *LockSet, visit func(n ast.Node, held *LockSet)) {
	s := &lockSim{model: model, visit: visit}
	s.stmt(body, entry.clone())
}

type lockSim struct {
	model LockModel
	visit func(ast.Node, *LockSet)
	loops []*loopFrame
}

type loopFrame struct{ breaks []*LockSet }

func (s *lockSim) stmts(list []ast.Stmt, in *LockSet) (*LockSet, bool) {
	cur := in
	for _, st := range list {
		var term bool
		cur, term = s.stmt(st, cur)
		if term {
			return cur, true
		}
	}
	return cur, false
}

// stmt simulates one statement, returning the lock set after it and
// whether control cannot continue past it (return, panic, break, ...).
func (s *lockSim) stmt(st ast.Stmt, in *LockSet) (*LockSet, bool) {
	switch n := st.(type) {
	case nil:
		return in, false
	case *ast.BlockStmt:
		s.visit(n, in)
		return s.stmts(n.List, in)
	case *ast.ExprStmt:
		out := s.expr(n.X, in)
		return out, s.isPanic(n.X)
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt:
		s.visit(st, in)
		out := in
		for _, e := range stmtExprs(st) {
			out = s.expr(e, out)
		}
		return out, false
	case *ast.ReturnStmt:
		s.visit(n, in)
		out := in
		for _, e := range n.Results {
			out = s.expr(e, out)
		}
		return out, true
	case *ast.BranchStmt:
		// break exits the innermost loop with the current state; continue
		// re-enters it (already accounted for by the loop-entry path), and
		// goto is rare enough to treat as an opaque exit.
		if len(s.loops) > 0 && n.Tok.String() == "break" {
			f := s.loops[len(s.loops)-1]
			f.breaks = append(f.breaks, in.clone())
		}
		return in, true
	case *ast.IfStmt:
		in1, _ := s.stmt(n.Init, in)
		in2 := s.expr(n.Cond, in1)
		thenOut, thenTerm := s.stmt(n.Body, in2.clone())
		elseOut, elseTerm := in2.clone(), false
		if n.Else != nil {
			elseOut, elseTerm = s.stmt(n.Else, in2.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return in2, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return intersectAll([]*LockSet{thenOut, elseOut}), false
		}
	case *ast.ForStmt:
		in1, _ := s.stmt(n.Init, in)
		in2 := s.expr(n.Cond, in1)
		frame := &loopFrame{}
		s.loops = append(s.loops, frame)
		bodyOut, bodyTerm := s.stmt(n.Body, in2.clone())
		if !bodyTerm {
			bodyOut, _ = s.stmt(n.Post, bodyOut)
		}
		s.loops = s.loops[:len(s.loops)-1]
		exits := frame.breaks
		if !bodyTerm {
			exits = append(exits, bodyOut)
		}
		if n.Cond != nil {
			exits = append(exits, in2) // zero iterations
		}
		if len(exits) == 0 {
			return in2, true // `for {}` with no break never falls through
		}
		return intersectAll(exits), false
	case *ast.RangeStmt:
		in1 := s.expr(n.X, in)
		frame := &loopFrame{}
		s.loops = append(s.loops, frame)
		bodyOut, bodyTerm := s.stmt(n.Body, in1.clone())
		s.loops = s.loops[:len(s.loops)-1]
		exits := append(frame.breaks, in1) // zero iterations
		if !bodyTerm {
			exits = append(exits, bodyOut)
		}
		return intersectAll(exits), false
	case *ast.SwitchStmt:
		in1, _ := s.stmt(n.Init, in)
		in2 := s.expr(n.Tag, in1)
		return s.clauses(n.Body, in2, false)
	case *ast.TypeSwitchStmt:
		in1, _ := s.stmt(n.Init, in)
		in2, _ := s.stmt(n.Assign, in1)
		return s.clauses(n.Body, in2, false)
	case *ast.SelectStmt:
		return s.clauses(n.Body, in, true)
	case *ast.GoStmt:
		s.visit(n, in)
		out := in
		for _, a := range n.Call.Args {
			out = s.expr(a, out)
		}
		// The goroutine starts on its own schedule holding nothing.
		if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
			sub := &lockSim{model: s.model, visit: s.visit}
			sub.stmt(lit.Body, NewLockSet())
		}
		return out, false
	case *ast.DeferStmt:
		s.visit(n, in)
		out := in
		for _, a := range n.Call.Args {
			out = s.expr(a, out)
		}
		// A deferred unlock keeps the lock held to the end of the function;
		// the effect is deliberately not applied. A deferred literal runs at
		// return: simulate it with the current set as an approximation.
		if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
			sub := &lockSim{model: s.model, visit: s.visit}
			sub.stmt(lit.Body, out.clone())
		}
		return out, false
	case *ast.LabeledStmt:
		return s.stmt(n.Stmt, in)
	default:
		s.visit(st, in)
		return in, false
	}
}

// clauses merges a switch/select body: the result holds only what every
// non-terminated clause holds; a tag switch without a default keeps the
// fall-past path alive.
func (s *lockSim) clauses(body *ast.BlockStmt, in *LockSet, isSelect bool) (*LockSet, bool) {
	var exits []*LockSet
	hasDefault := false
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			cur := in.clone()
			for _, e := range cl.List {
				cur = s.expr(e, cur)
			}
			list = cl.Body
			if out, term := s.stmts(list, cur); !term {
				exits = append(exits, out)
			}
			continue
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			cur, _ := s.stmt(cl.Comm, in.clone())
			list = cl.Body
			if out, term := s.stmts(list, cur); !term {
				exits = append(exits, out)
			}
			continue
		}
	}
	if !isSelect && !hasDefault {
		exits = append(exits, in)
	}
	if len(exits) == 0 {
		if isSelect && len(body.List) == 0 {
			return in, true // select{} blocks forever
		}
		return in, true
	}
	return intersectAll(exits), false
}

// expr visits every node of e with the incoming set, then applies the
// effects of the calls it contains in source order. Function literals are
// simulated as separate walks from the current set (callbacks usually run
// where they are installed or later under the same discipline; `go`
// literals are handled at the statement level with an empty set).
func (s *lockSim) expr(e ast.Expr, in *LockSet) *LockSet {
	if e == nil {
		return in
	}
	var calls []*ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			sub := &lockSim{model: s.model, visit: s.visit}
			sub.stmt(lit.Body, in.clone())
			return false
		}
		s.visit(n, in)
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	out := in
	for _, call := range calls {
		keys, eff := s.model.Classify(call)
		if eff == EffectNone || len(keys) == 0 {
			continue
		}
		if out == in {
			out = in.clone()
		}
		for _, k := range keys {
			if eff == EffectAcquire {
				out.Add(k)
			} else {
				out.Del(k)
			}
		}
	}
	return out
}

func (s *lockSim) isPanic(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := s.model.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func stmtExprs(st ast.Stmt) []ast.Expr {
	switch n := st.(type) {
	case *ast.AssignStmt:
		out := append([]ast.Expr{}, n.Rhs...)
		return append(out, n.Lhs...)
	case *ast.IncDecStmt:
		return []ast.Expr{n.X}
	case *ast.SendStmt:
		return []ast.Expr{n.Chan, n.Value}
	case *ast.DeclStmt:
		var out []ast.Expr
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
		return out
	}
	return nil
}

// MutexOp classifies a direct sync.Mutex / sync.RWMutex method call:
// Lock/RLock acquire, Unlock/RUnlock release. Both an instance-path key
// ("t.mu") and, when the mutex is a struct field, a type key
// ("simTransport.mu") are returned. Reader and writer locks share a key:
// the guard question here is "was the mutex held", not "in which mode".
func MutexOp(info *types.Info, call *ast.CallExpr) ([]string, LockEffect) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, EffectNone
	}
	var eff LockEffect
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		// TryLock is approximated as an acquire; the false branch that
		// skips the critical section is rare and self-evidently guarded.
		eff = EffectAcquire
	case "Unlock", "RUnlock":
		eff = EffectRelease
	default:
		return nil, EffectNone
	}
	if !isSyncMutex(info.TypeOf(sel.X)) {
		return nil, EffectNone
	}
	var keys []string
	if p := ExprPath(sel.X); p != "" {
		keys = append(keys, p)
	}
	if inner, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
		if _, tk := FieldKeys(info, inner); tk != "" {
			keys = append(keys, tk)
		}
	}
	if len(keys) == 0 {
		return nil, EffectNone
	}
	return keys, eff
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ExprPath renders a pure selector chain rooted at an identifier —
// "t.mu", "m.cfg" — or "" when the expression involves anything else
// (indexing, calls, literals), which makes the instance untrackable.
func ExprPath(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return ExprPath(e.X)
	}
	return ""
}

// FieldKeys returns the two lock keys of a field selector: the instance
// path ("t.mu") and the type key ("simTransport.mu", derived from the
// named type of the receiver expression). Either may be "" when not
// derivable; a non-field selector yields "", "".
func FieldKeys(info *types.Info, sel *ast.SelectorExpr) (pathKey, typeKey string) {
	selInfo, ok := info.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return "", ""
	}
	pathKey = ExprPath(sel)
	t := selInfo.Recv()
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	if named, okn := t.(*types.Named); okn {
		typeKey = named.Obj().Name() + "." + sel.Sel.Name
	}
	return pathKey, typeKey
}
