package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath      string
	Name            string
	Dir             string
	Export          string
	DepOnly         bool
	GoFiles         []string
	CgoFiles        []string
	CompiledGoFiles []string
	Error           *struct{ Err string }
}

// LoadPackages loads the packages matching patterns in dir, type-checked
// against compiler export data. It shells out to `go list -export -deps
// -json`, which compiles (into the build cache) the export data of every
// dependency — the same trick go/packages uses, done here with nothing but
// the standard library.
//
// Only non-test sources are loaded; test variants are analyzed when the
// binary runs under `go vet -vettool`, where cmd/go supplies them.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" {
			pp := p
			targets = append(targets, &pp)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to export-data readers for the gc
// importer.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// NewInfo returns a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func typecheck(p *listPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	srcs := p.CompiledGoFiles
	if len(srcs) == 0 {
		srcs = p.GoFiles
	}
	var files []*ast.File
	for _, name := range srcs {
		if filepath.Ext(name) != ".go" {
			continue // cgo-generated artifacts; none in this repo
		}
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports)),
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{PkgPath: p.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
