package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Allow directives, the escape hatch every analyzer honors:
//
//	//pacelint:allow <analyzer> <reason>
//
// suppresses <analyzer>'s findings on the directive's own line and on the
// line immediately below it (so a directive can sit at the end of the
// offending line or on its own line just above), and
//
//	//pacelint:allow-file <analyzer> <reason>
//
// suppresses them for the whole file. The reason is mandatory: a directive
// without one is reported as a finding of the pseudo-analyzer "pacelint",
// so suppressions stay self-documenting.

const (
	directiveLine = "//pacelint:allow "
	directiveFile = "//pacelint:allow-file "
)

// allowIndex records which (analyzer, file, line) triples are suppressed.
type allowIndex struct {
	// lines maps analyzer -> filename -> suppressed line set.
	lines map[string]map[string]map[int]bool
	// files maps analyzer -> filename set.
	files map[string]map[string]bool
}

func (ix *allowIndex) add(analyzer, file string, line int) {
	if ix.lines[analyzer] == nil {
		ix.lines[analyzer] = map[string]map[int]bool{}
	}
	if ix.lines[analyzer][file] == nil {
		ix.lines[analyzer][file] = map[int]bool{}
	}
	ix.lines[analyzer][file][line] = true
}

func (ix *allowIndex) addFile(analyzer, file string) {
	if ix.files[analyzer] == nil {
		ix.files[analyzer] = map[string]bool{}
	}
	ix.files[analyzer][file] = true
}

func (ix *allowIndex) allows(analyzer string, posn token.Position) bool {
	if ix.files[analyzer][posn.Filename] {
		return true
	}
	return ix.lines[analyzer][posn.Filename][posn.Line]
}

// buildAllowIndex scans every comment in the package for directives. It
// returns the index plus diagnostics for malformed directives (missing
// analyzer name or reason).
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (*allowIndex, []Diagnostic) {
	ix := &allowIndex{
		lines: map[string]map[string]map[int]bool{},
		files: map[string]map[string]bool{},
	}
	var bad []Diagnostic
	malformed := func(pos token.Pos, what string) {
		bad = append(bad, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "pacelint",
			Message:  "malformed directive: " + what,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				var fileWide bool
				var rest string
				switch {
				case strings.HasPrefix(text, directiveFile):
					fileWide, rest = true, text[len(directiveFile):]
				case strings.HasPrefix(text, directiveLine):
					rest = text[len(directiveLine):]
				case strings.HasPrefix(text, "//pacelint:"):
					malformed(c.Pos(), "want //pacelint:allow <analyzer> <reason> or //pacelint:allow-file <analyzer> <reason>")
					continue
				default:
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					malformed(c.Pos(), "missing analyzer name")
					continue
				}
				if len(fields) < 2 {
					malformed(c.Pos(), "missing reason after analyzer name (suppressions must say why)")
					continue
				}
				posn := fset.Position(c.Pos())
				if fileWide {
					ix.addFile(fields[0], posn.Filename)
					continue
				}
				ix.add(fields[0], posn.Filename, posn.Line)
				ix.add(fields[0], posn.Filename, posn.Line+1)
			}
		}
	}
	return ix, bad
}
