package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Allow directives, the escape hatch every analyzer honors:
//
//	//pacelint:allow <analyzer> <reason>
//
// suppresses <analyzer>'s findings on the directive's own line and on the
// line immediately below it (so a directive can sit at the end of the
// offending line or on its own line just above), and
//
//	//pacelint:allow-file <analyzer> <reason>
//
// suppresses them for the whole file. The reason is mandatory: a directive
// without one is reported as a finding of the pseudo-analyzer "pacelint",
// so suppressions stay self-documenting.
//
// The index also keeps the ledger honest in the other direction: each
// directive records whether it actually suppressed anything, and full runs
// (AnalyzePackageStrict) report the ones that did not as "stale-allow" —
// an exemption that outlived the code it excused.

const (
	directiveLine = "//pacelint:allow "
	directiveFile = "//pacelint:allow-file "
)

// directive is one parsed //pacelint:allow[-file] comment.
type directive struct {
	analyzer string
	pos      token.Position
	fileWide bool
	used     bool
}

// allowIndex records which (analyzer, file, line) triples are suppressed,
// pointing back at the directive so suppression marks it as used.
type allowIndex struct {
	// lines maps analyzer -> filename -> line -> directive.
	lines map[string]map[string]map[int]*directive
	// files maps analyzer -> filename -> directive.
	files map[string]map[string]*directive
	dirs  []*directive
}

func (ix *allowIndex) add(d *directive, line int) {
	if ix.lines[d.analyzer] == nil {
		ix.lines[d.analyzer] = map[string]map[int]*directive{}
	}
	if ix.lines[d.analyzer][d.pos.Filename] == nil {
		ix.lines[d.analyzer][d.pos.Filename] = map[int]*directive{}
	}
	ix.lines[d.analyzer][d.pos.Filename][line] = d
}

func (ix *allowIndex) addFile(d *directive) {
	if ix.files[d.analyzer] == nil {
		ix.files[d.analyzer] = map[string]*directive{}
	}
	ix.files[d.analyzer][d.pos.Filename] = d
}

func (ix *allowIndex) allows(analyzer string, posn token.Position) bool {
	if d := ix.files[analyzer][posn.Filename]; d != nil {
		d.used = true
		return true
	}
	if d := ix.lines[analyzer][posn.Filename][posn.Line]; d != nil {
		d.used = true
		return true
	}
	return false
}

// stale reports the directives that suppressed nothing during the run
// (for analyzers that actually ran) and the ones naming analyzers that do
// not exist at all.
func (ix *allowIndex) stale(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	form := func(d *directive) string {
		if d.fileWide {
			return "//pacelint:allow-file"
		}
		return "//pacelint:allow"
	}
	for _, d := range ix.dirs {
		switch {
		case !known[d.analyzer]:
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "stale-allow",
				Message:  fmt.Sprintf("%s names unknown analyzer %q; fix the name or delete the directive", form(d), d.analyzer),
			})
		case !d.used:
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "stale-allow",
				Message:  fmt.Sprintf("%s %s suppresses no findings; the code it excused is gone — delete the directive", form(d), d.analyzer),
			})
		}
	}
	return out
}

// buildAllowIndex scans every comment in the package for directives. It
// returns the index plus diagnostics for malformed directives (missing
// analyzer name or reason).
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (*allowIndex, []Diagnostic) {
	ix := &allowIndex{
		lines: map[string]map[string]map[int]*directive{},
		files: map[string]map[string]*directive{},
	}
	var bad []Diagnostic
	malformed := func(pos token.Pos, what string) {
		bad = append(bad, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "pacelint",
			Message:  "malformed directive: " + what,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				var fileWide bool
				var rest string
				switch {
				case strings.HasPrefix(text, directiveFile):
					fileWide, rest = true, text[len(directiveFile):]
				case strings.HasPrefix(text, directiveLine):
					rest = text[len(directiveLine):]
				case strings.HasPrefix(text, "//pacelint:"):
					malformed(c.Pos(), "want //pacelint:allow <analyzer> <reason> or //pacelint:allow-file <analyzer> <reason>")
					continue
				default:
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					malformed(c.Pos(), "missing analyzer name")
					continue
				}
				if len(fields) < 2 {
					malformed(c.Pos(), "missing reason after analyzer name (suppressions must say why)")
					continue
				}
				d := &directive{
					analyzer: fields[0],
					pos:      fset.Position(c.Pos()),
					fileWide: fileWide,
				}
				ix.dirs = append(ix.dirs, d)
				if fileWide {
					ix.addFile(d)
					continue
				}
				ix.add(d, d.pos.Line)
				ix.add(d, d.pos.Line+1)
			}
		}
	}
	return ix, bad
}
