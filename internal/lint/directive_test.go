package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *allowIndex, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ix, bad := buildAllowIndex(fset, []*ast.File{f})
	return fset, ix, bad
}

func TestDirectiveMissingReason(t *testing.T) {
	_, _, bad := parseOne(t, `package p
//pacelint:allow walltime
func f() {}
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "missing reason") {
		t.Fatalf("want one missing-reason diagnostic, got %v", bad)
	}
}

func TestDirectiveMissingAnalyzer(t *testing.T) {
	_, _, bad := parseOne(t, `package p
//pacelint:allow
func f() {}
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "malformed directive") {
		t.Fatalf("want one malformed diagnostic, got %v", bad)
	}
}

func TestDirectiveUnknownForm(t *testing.T) {
	_, _, bad := parseOne(t, `package p
//pacelint:suppress walltime because reasons
func f() {}
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "malformed directive") {
		t.Fatalf("want one malformed diagnostic, got %v", bad)
	}
}

func TestDirectiveScopes(t *testing.T) {
	_, ix, bad := parseOne(t, `package p
//pacelint:allow walltime real-mode backoff
func f() {}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected diagnostics: %v", bad)
	}
	if !ix.allows("walltime", token.Position{Filename: "d.go", Line: 2}) {
		t.Error("directive line itself not suppressed")
	}
	if !ix.allows("walltime", token.Position{Filename: "d.go", Line: 3}) {
		t.Error("line below directive not suppressed")
	}
	if ix.allows("walltime", token.Position{Filename: "d.go", Line: 4}) {
		t.Error("suppression leaked past the next line")
	}
	if ix.allows("sendowned", token.Position{Filename: "d.go", Line: 3}) {
		t.Error("suppression leaked to another analyzer")
	}
}

func TestDirectiveFileScope(t *testing.T) {
	_, ix, bad := parseOne(t, `package p
//pacelint:allow-file walltime transport shim is wall-clock by design
func f() {}
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected diagnostics: %v", bad)
	}
	if !ix.allows("walltime", token.Position{Filename: "d.go", Line: 99}) {
		t.Error("file-wide directive did not suppress an arbitrary line")
	}
	if ix.allows("walltime", token.Position{Filename: "other.go", Line: 99}) {
		t.Error("file-wide directive leaked to another file")
	}
}
