package lint

import "testing"

func TestLoadSmoke(t *testing.T) {
	pkgs, err := LoadPackages("/root/repo", "./internal/mp", "./internal/cluster")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		t.Logf("%s: %d files, types=%v", p.PkgPath, len(p.Files), p.Types.Name())
	}
	if len(pkgs) != 2 {
		t.Fatalf("want 2 pkgs, got %d", len(pkgs))
	}
}
