package telemetry

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per family, series sorted by
// (family, labels) so the output is deterministic. Histograms render the
// conventional cumulative _bucket/_sum/_count series plus a non-standard
// _max gauge.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.sortedEntries()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	lastFamily := ""
	for _, e := range entries {
		if e.family != lastFamily {
			lastFamily = e.family
			if h, ok := help[e.family]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.family, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.family, promType(e.kind)); err != nil {
				return err
			}
		}
		if err := writeEntry(w, e); err != nil {
			return err
		}
	}
	return nil
}

func promType(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series renders `family{labels,extra} value`.
func series(w io.Writer, family, labels, extra string, value string) error {
	switch {
	case labels == "" && extra == "":
		_, err := fmt.Fprintf(w, "%s %s\n", family, value)
		return err
	case labels == "":
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", family, extra, value)
		return err
	case extra == "":
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", family, labels, value)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s{%s,%s} %s\n", family, labels, extra, value)
		return err
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeEntry(w io.Writer, e *metricEntry) error {
	switch e.kind {
	case kindCounter:
		return series(w, e.family, e.labels, "", strconv.FormatInt(e.c.Value(), 10))
	case kindGauge:
		return series(w, e.family, e.labels, "", strconv.FormatInt(e.g.Value(), 10))
	case kindFloatGauge:
		return series(w, e.family, e.labels, "", formatFloat(e.f.Value()))
	case kindHistogram:
		bounds, counts := e.h.Buckets()
		var cum int64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(bounds)-1 {
				le = strconv.FormatInt(bounds[i], 10)
			}
			if err := series(w, e.family+"_bucket", e.labels, fmt.Sprintf("le=%q", le),
				strconv.FormatInt(cum, 10)); err != nil {
				return err
			}
		}
		if err := series(w, e.family+"_sum", e.labels, "", strconv.FormatInt(e.h.Sum(), 10)); err != nil {
			return err
		}
		if err := series(w, e.family+"_count", e.labels, "", strconv.FormatInt(e.h.Count(), 10)); err != nil {
			return err
		}
		return series(w, e.family+"_max", e.labels, "", strconv.FormatInt(e.h.Max(), 10))
	}
	return nil
}

// expvarReg points expvar's single published "pace" var at the most recently
// served registry (expvar.Publish panics on duplicates, so it runs once per
// process).
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce atomic.Bool
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	if expvarOnce.CompareAndSwap(false, true) {
		expvar.Publish("pace", expvar.Func(func() any {
			reg := expvarReg.Load()
			if reg == nil {
				return nil
			}
			snap := reg.Snapshot()
			keys := make([]string, 0, len(snap))
			for k := range snap {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			ordered := make(map[string]float64, len(snap))
			for _, k := range keys {
				ordered[k] = snap[k]
			}
			return ordered
		}))
	}
}

// Server is a running metrics endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
	err chan error
}

// Serve exposes the registry over HTTP on addr (e.g. "localhost:9090"):
//
//	/metrics        Prometheus text format
//	/debug/vars     expvar JSON (registry snapshot under "pace")
//	/debug/pprof/   the standard pprof handlers
//
// It listens immediately (so the caller learns about bad addresses) and
// serves in the background until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// pprof profile/trace responses stream for their whole sampling window,
	// so there is no write timeout — but header and idle timeouts keep a
	// half-open scrape client from pinning a connection forever.
	s := &Server{srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}, ln: ln, err: make(chan error, 1)}
	go func() {
		// A listener that dies mid-run must not be silent: anything other
		// than the orderly Close/Shutdown sentinel is surfaced on Err.
		err := s.srv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err <- err
		}
		close(s.err)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Err reports serve failures: if the HTTP server stops for any reason other
// than Close/Shutdown (e.g. the listener dies mid-run), the error is sent
// here. The channel is closed when serving ends, so a receive that yields a
// zero error means an orderly stop. Long-running daemons should select on
// it next to their signal handling.
func (s *Server) Err() <-chan error { return s.err }

// Shutdown stops serving gracefully: the listener closes immediately, then
// in-flight requests are allowed to finish until ctx expires (at which
// point they are cut off as in Close). Safe to call multiple times.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		// Deadline hit with requests still in flight: hard-stop them.
		if cerr := s.srv.Close(); cerr != nil {
			return cerr
		}
	}
	return err
}

// Close stops serving immediately, dropping in-flight requests. Prefer
// Shutdown for a graceful drain.
func (s *Server) Close() error { return s.srv.Close() }
