package telemetry

import "time"

// Clock abstracts the time source behind phase timers and report stamps so
// the whole telemetry layer can run off the mp machine's virtual clocks (or
// a fixed stamp) and produce byte-identical BENCH reports across sim-mode
// runs. Production defaults to the wall clock; determinism-sensitive paths
// inject Comm.Elapsed or a FixedClock.
type Clock interface {
	// Now is the absolute time used for stamps and file names.
	Now() time.Time
	// Elapsed is the monotonic reading used for spans.
	Elapsed() time.Duration
}

// WallClock is the production Clock: real time. It is the single sanctioned
// wall-clock read in this package; everything else takes a Clock or an
// elapsed func.
type wallClock struct{ t0 time.Time }

// NewWallClock returns a Clock whose Elapsed counts from construction.
func NewWallClock() Clock {
	//pacelint:allow walltime the one sanctioned wall-clock source telemetry defaults to
	return wallClock{t0: time.Now()}
}

func (c wallClock) Now() time.Time {
	//pacelint:allow walltime the one sanctioned wall-clock source telemetry defaults to
	return time.Now()
}

func (c wallClock) Elapsed() time.Duration {
	//pacelint:allow walltime the one sanctioned wall-clock source telemetry defaults to
	return time.Since(c.t0)
}

// FixedClock is a Clock frozen at a given instant: Elapsed is always zero
// and Now always returns the stamp. Sim-mode deterministic runs use it so
// two identical runs emit byte-identical reports.
type FixedClock struct{ Stamp time.Time }

func (c FixedClock) Now() time.Time         { return c.Stamp }
func (c FixedClock) Elapsed() time.Duration { return 0 }
