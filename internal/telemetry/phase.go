package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// PhaseTotal is one phase's accumulated inclusive time.
type PhaseTotal struct {
	Name  string
	Total time.Duration
}

// PhaseTimer accumulates named, nestable phase spans against an arbitrary
// clock. Nesting is inclusive: time spent in an inner phase also counts
// toward the enclosing phase, matching how the paper reports per-component
// times (each component is the max over ranks of the full span).
//
// The clock is injectable so the same timer works against wall time and the
// mp machine's virtual clocks (pass Comm.Elapsed).
type PhaseTimer struct {
	mu    sync.Mutex
	clock func() time.Duration
	names []string // first-Start order
	total map[string]time.Duration
	stack []phaseFrame
}

type phaseFrame struct {
	name  string
	start time.Duration
}

// NewPhaseTimer builds a timer over the given clock; a nil clock means wall
// time since construction.
func NewPhaseTimer(clock func() time.Duration) *PhaseTimer {
	if clock == nil {
		clock = NewWallClock().Elapsed
	}
	return &PhaseTimer{clock: clock, total: map[string]time.Duration{}}
}

// Start pushes a phase. Phases may nest; the same name may be started
// repeatedly (totals accumulate).
func (t *PhaseTimer) Start(name string) {
	t.mu.Lock()
	if _, ok := t.total[name]; !ok {
		t.names = append(t.names, name)
		t.total[name] = 0
	}
	t.stack = append(t.stack, phaseFrame{name: name, start: t.clock()})
	t.mu.Unlock()
}

// End pops the innermost open phase and returns its name and span duration.
// Ending with no open phase is a programming error.
func (t *PhaseTimer) End() (string, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		panic("telemetry: PhaseTimer.End with no open phase")
	}
	fr := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	d := t.clock() - fr.start
	if d < 0 {
		d = 0
	}
	t.total[fr.name] += d
	return fr.name, d
}

// Time runs f inside the named phase.
func (t *PhaseTimer) Time(name string, f func()) time.Duration {
	t.Start(name)
	f()
	_, d := t.End()
	return d
}

// Depth returns the number of currently open phases.
func (t *PhaseTimer) Depth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.stack)
}

// Total returns the accumulated time of one phase.
func (t *PhaseTimer) Total(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total[name]
}

// Totals returns every phase in first-start order.
func (t *PhaseTimer) Totals() []PhaseTotal {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) != 0 {
		panic(fmt.Sprintf("telemetry: PhaseTimer.Totals with %d open phases", len(t.stack)))
	}
	out := make([]PhaseTotal, 0, len(t.names))
	for _, n := range t.names {
		out = append(out, PhaseTotal{Name: n, Total: t.total[n]})
	}
	return out
}
