package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// RunReport is the machine-readable end-of-run artifact (BENCH_*.json) plus
// the paper-style text tables: the per-phase breakdown of Tables 2–3 (GST
// construction / pair generation / clustering) and the per-rank
// communication / wait / load-balance table behind Figure 4's speedup story.
type RunReport struct {
	// Tool identifies the producing command (pace, experiments, …).
	Tool string `json:"tool"`
	// Timestamp is RFC 3339 UTC at report creation.
	Timestamp string `json:"timestamp,omitempty"`
	// Dataset describes the input (file name, EST count, …).
	Dataset string `json:"dataset,omitempty"`
	// Params records the run's knobs as strings (w, psi, batch, …).
	Params map[string]string `json:"params,omitempty"`

	Procs     int  `json:"procs"`
	Simulated bool `json:"simulated"`

	// WallSeconds is real elapsed time; VirtualSeconds is the modeled
	// parallel run-time (max final rank clock) when Simulated.
	WallSeconds    float64 `json:"wall_seconds"`
	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`

	NumESTs     int `json:"num_ests,omitempty"`
	NumClusters int `json:"num_clusters,omitempty"`

	// Phases is the Table-2/3-style component breakdown.
	Phases []PhaseEntry `json:"phases"`
	// Ranks is the per-rank load-balance table (parallel runs).
	Ranks []RankEntry `json:"ranks,omitempty"`
	// Counters is a flattened metrics-registry snapshot.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// PhaseEntry is one row of the phase table.
type PhaseEntry struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// RankEntry is one row of the per-rank table.
type RankEntry struct {
	Rank int    `json:"rank"`
	Role string `json:"role"`

	PartitionSeconds float64 `json:"partition_seconds"`
	ConstructSeconds float64 `json:"construct_seconds"`
	PairgenSeconds   float64 `json:"pairgen_seconds"`
	AlignSeconds     float64 `json:"align_seconds"`
	TotalSeconds     float64 `json:"total_seconds"`

	MsgsSent  int64 `json:"msgs_sent"`
	BytesSent int64 `json:"bytes_sent"`
	MsgsRecv  int64 `json:"msgs_recv"`
	BytesRecv int64 `json:"bytes_recv"`

	// RecvWaitSeconds is time blocked in receives — idle time for the
	// master, load-imbalance signal for slaves.
	RecvWaitSeconds float64 `json:"recv_wait_seconds"`

	PairsGenerated int64 `json:"pairs_generated"`
	PairsProcessed int64 `json:"pairs_processed"`
	PairsAccepted  int64 `json:"pairs_accepted"`
}

// Seconds converts a duration for report fields.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// Stamp fills Timestamp with the current UTC time.
func (r *RunReport) Stamp() { r.StampAt(NewWallClock().Now()) }

// StampAt fills Timestamp from an injected instant — the deterministic
// variant: sim-mode runs pass a fixed stamp so reports are byte-identical
// across reruns.
func (r *RunReport) StampAt(now time.Time) { r.Timestamp = now.UTC().Format(time.RFC3339) }

// AttachCounters snapshots reg into Counters (nil reg is a no-op). The
// build-info gauge is excluded: its labels (VCS revision, module version)
// name the binary rather than the run, and would break the byte-identical
// contract of deterministic-sim reports across commits.
func (r *RunReport) AttachCounters(reg *Registry) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	for key := range snap {
		if strings.HasPrefix(key, BuildInfoMetric) {
			delete(snap, key)
		}
	}
	r.Counters = snap
}

// WriteJSON writes the report, indented, to path.
func (r *RunReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding run report: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("telemetry: writing run report: %w", err)
	}
	return nil
}

// BenchFileName derives a BENCH_<tool>_<stamp>.json name for auto-named
// reports.
func BenchFileName(tool string, now time.Time) string {
	return fmt.Sprintf("BENCH_%s_%s.json", tool, now.UTC().Format("20060102T150405Z"))
}

func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 0.001:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// FormatPhaseTable renders the phase breakdown with a percentage column,
// in the paper's component-table style.
func (r *RunReport) FormatPhaseTable() string {
	var b strings.Builder
	total := 0.0
	for _, p := range r.Phases {
		if strings.EqualFold(p.Name, "total") {
			total = p.Seconds
		}
	}
	clock := "wall"
	if r.Simulated {
		clock = "virtual"
	}
	fmt.Fprintf(&b, "phase breakdown (%s time, max over ranks)\n", clock)
	fmt.Fprintf(&b, "  %-24s %12s %8s\n", "phase", "time", "% total")
	for _, p := range r.Phases {
		pct := ""
		if total > 0 {
			pct = fmt.Sprintf("%6.1f%%", 100*p.Seconds/total)
		}
		fmt.Fprintf(&b, "  %-24s %12s %8s\n", p.Name, fmtSeconds(p.Seconds), pct)
	}
	return b.String()
}

// FormatRankTable renders the per-rank comm/wait/load table.
func (r *RunReport) FormatRankTable() string {
	if len(r.Ranks) == 0 {
		return ""
	}
	rows := append([]RankEntry(nil), r.Ranks...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Rank < rows[j].Rank })
	var b strings.Builder
	b.WriteString("per-rank load balance\n")
	fmt.Fprintf(&b, "  %4s %-7s %10s %10s %10s %10s %9s %11s %9s %11s %9s %9s %9s\n",
		"rank", "role", "construct", "pairgen", "align", "wait",
		"sent", "sentB", "recv", "recvB", "gen", "proc", "acc")
	for _, e := range rows {
		fmt.Fprintf(&b, "  %4d %-7s %10s %10s %10s %10s %9d %11d %9d %11d %9d %9d %9d\n",
			e.Rank, e.Role,
			fmtSeconds(e.ConstructSeconds), fmtSeconds(e.PairgenSeconds),
			fmtSeconds(e.AlignSeconds), fmtSeconds(e.RecvWaitSeconds),
			e.MsgsSent, e.BytesSent, e.MsgsRecv, e.BytesRecv,
			e.PairsGenerated, e.PairsProcessed, e.PairsAccepted)
	}
	return b.String()
}
