package telemetry

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"pace/internal/testutil"
)

// TestServerErrSurfacesListenerDeath kills the listener out from under a
// running server and asserts the serve-loop error reaches Err instead of
// vanishing — the silent-listener-death bug.
func TestServerErrSurfacesListenerDeath(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ln.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err, ok := <-srv.Err():
		if !ok || err == nil {
			t.Fatal("listener death produced no error on Err")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Err never reported the dead listener")
	}
}

// TestServerErrClosesOnOrderlyShutdown asserts an orderly Shutdown yields a
// closed-without-error Err channel, so daemons can select on it without
// misreading their own drain as a failure.
func TestServerErrClosesOnOrderlyShutdown(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err, ok := <-srv.Err():
		if ok && err != nil {
			t.Fatalf("orderly shutdown surfaced error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Err not closed after Shutdown")
	}
}

// TestServerShutdownServesInFlight asserts requests accepted before
// Shutdown complete during the drain window.
func TestServerShutdownServesInFlight(t *testing.T) {
	testutil.CheckGoroutines(t)
	reg := NewRegistry()
	reg.Counter("pace_test_total").Inc()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics fetch: status %d, %d bytes", resp.StatusCode, len(body))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after request: %v", err)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
