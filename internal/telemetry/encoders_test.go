package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// goldenRegistry builds a deterministic registry covering every metric kind
// and the label paths.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Help("pace_pairs_generated_total", "Canonical promising pairs emitted by the generators.")
	reg.Counter("pace_pairs_generated_total").Add(1234)
	reg.Counter("pace_mp_msgs_sent_total", Rank(0)).Add(17)
	reg.Counter("pace_mp_msgs_sent_total", Rank(1)).Add(23)
	reg.Gauge("pace_workbuf_occupancy").Set(87)
	reg.FloatGauge("pace_suffix_skew").Set(1.5)
	h := reg.Histogram("pace_grant_e", []int64{1, 8, 64})
	for _, v := range []int64{0, 1, 5, 9, 64, 120} {
		h.Observe(v)
	}
	return reg
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "prometheus.golden", buf.Bytes())
}

func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.ProcessName(0, "pace")
	tw.ThreadName(0, 0, "rank 0 (master)")
	tw.ThreadName(0, 1, "rank 1 (slave)")
	tw.Span(0, 1, "partition", "phase", 0, 1500*time.Microsecond)
	tw.Span(0, 1, "construct", "phase", 1500*time.Microsecond, 2*time.Millisecond)
	tw.Counter(0, "workbuf", 2*time.Millisecond, 42)
	tw.Instant(0, 0, "stop", 4*time.Millisecond)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	// The stream must be valid JSON (an array of events)…
	var events []map[string]any
	if err := json.Unmarshal(got, &events); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, got)
	}
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7", len(events))
	}
	// …and line-oriented: every event line parses on its own once the
	// array punctuation is stripped (the JSONL property).
	lines := strings.Split(strings.TrimSpace(string(got)), "\n")
	for _, ln := range lines[1 : len(lines)-1] {
		ln = strings.TrimSuffix(ln, ",")
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %q is not standalone JSON: %v", ln, err)
		}
	}
	checkGolden(t, "trace.golden", got)
}

func TestTraceWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				tw.Span(0, r, "work", "phase", time.Duration(i)*time.Microsecond, time.Microsecond)
			}
		}(r)
	}
	for r := 0; r < 4; r++ {
		<-done
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("concurrent trace output invalid: %v", err)
	}
	if len(events) != 200 {
		t.Errorf("got %d events, want 200", len(events))
	}
	// Emitting after Close must be a silent no-op, not corruption.
	tw.Span(0, 0, "late", "phase", 0, 0)
	if tw.Events() != 200 {
		t.Errorf("event count changed after Close")
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	reg := goldenRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "pace_pairs_generated_total 1234") {
		t.Errorf("/metrics = %d\n%s", code, body)
	}
	code, body = get("/debug/vars")
	if code != 200 || !strings.Contains(body, `"pace"`) {
		t.Errorf("/debug/vars = %d missing pace var", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Errorf("/debug/vars not JSON: %v", err)
	}
	code, _ = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestRunReportJSONAndTables(t *testing.T) {
	rep := &RunReport{
		Tool:           "pace",
		Dataset:        "ests.fasta",
		Params:         map[string]string{"w": "8", "psi": "20"},
		Procs:          4,
		Simulated:      true,
		WallSeconds:    2.5,
		VirtualSeconds: 1.25,
		NumESTs:        120,
		NumClusters:    9,
		Phases: []PhaseEntry{
			{Name: "gst-construction", Seconds: 0.5},
			{Name: "pair-generation", Seconds: 0.25},
			{Name: "clustering", Seconds: 0.5},
			{Name: "total", Seconds: 1.25},
		},
		Ranks: []RankEntry{
			{Rank: 1, Role: "slave", ConstructSeconds: 0.4, AlignSeconds: 0.3,
				TotalSeconds: 1.2, MsgsSent: 10, BytesSent: 1000, MsgsRecv: 11,
				BytesRecv: 900, RecvWaitSeconds: 0.1, PairsGenerated: 50,
				PairsProcessed: 40, PairsAccepted: 12},
			{Rank: 0, Role: "master", TotalSeconds: 1.25, RecvWaitSeconds: 0.9},
		},
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Procs != 4 || len(back.Phases) != 4 || len(back.Ranks) != 2 {
		t.Errorf("round-trip mismatch: %+v", back)
	}

	pt := rep.FormatPhaseTable()
	if !strings.Contains(pt, "gst-construction") || !strings.Contains(pt, "virtual") {
		t.Errorf("phase table missing content:\n%s", pt)
	}
	if !strings.Contains(pt, "40.0%") {
		t.Errorf("phase table missing percentage:\n%s", pt)
	}
	rt := rep.FormatRankTable()
	// Sorted by rank: master row first.
	if !strings.Contains(rt, "master") || !strings.Contains(rt, "slave") {
		t.Errorf("rank table missing roles:\n%s", rt)
	}
	if strings.Index(rt, "master") > strings.Index(rt, "slave") {
		t.Errorf("rank table not sorted by rank:\n%s", rt)
	}

	if got := BenchFileName("pace", time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)); got != "BENCH_pace_20260805T120000Z.json" {
		t.Errorf("BenchFileName = %s", got)
	}
}
