// Package telemetry is the pipeline-wide observability layer: a race-clean,
// allocation-light metrics registry (counters, gauges, bounded histograms,
// phase timers) with three sinks — a Prometheus-text / expvar / pprof HTTP
// endpoint, a Chrome trace-event writer for per-rank timelines, and a
// machine-readable run report that prints the paper's Table-2/3-style phase
// and load-balance breakdowns.
//
// Design (after ddtxn's stats/dlog split): instrumentation points update
// plain atomics and are safe to leave always-on; the sinks are opt-in and
// read the same atomics. Hot paths hold *Counter / *Histogram pointers
// obtained once at setup, so steady-state updates never touch the registry
// map or allocate.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension (e.g. {Key: "rank", Value: "3"}).
type Label struct {
	Key, Value string
}

// Rank is shorthand for the per-rank label used throughout the pipeline.
func Rank(r int) Label { return Label{Key: "rank", Value: fmt.Sprint(r)} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger (high-water marks).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic float64 value (ratios such as load skew).
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Histogram is a bounded histogram over int64 observations: counts per
// bucket (upper-bound inclusive, last bucket unbounded) plus sum, count and
// max. All updates are atomic; Observe never allocates.
type Histogram struct {
	bounds []int64 // strictly increasing upper bounds; bucket i covers (bounds[i-1], bounds[i]]
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram builds a standalone histogram (not registered anywhere) with
// the given strictly increasing upper bounds. An implicit +Inf bucket is
// always appended.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not increasing at %d", i))
		}
	}
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// ExpBounds returns n exponentially growing bounds start, start*factor, ….
func ExpBounds(start int64, factor float64, n int) []int64 {
	out := make([]int64, 0, n)
	v := float64(start)
	last := int64(0)
	for i := 0; i < n; i++ {
		b := int64(v)
		if b <= last {
			b = last + 1
		}
		out = append(out, b)
		last = b
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 before any observation).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean observation (0 before any observation).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Buckets returns (upper bound, count) pairs; the final pair has bound
// math.MaxInt64 standing in for +Inf. Counts are non-cumulative.
func (h *Histogram) Buckets() ([]int64, []int64) {
	bounds := make([]int64, len(h.counts))
	counts := make([]int64, len(h.counts))
	copy(bounds, h.bounds)
	bounds[len(bounds)-1] = int64(^uint64(0) >> 1)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1]).
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		if acc >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.Max()
		}
	}
	return h.Max()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
)

// metricEntry is one registered metric instance (family + label set).
type metricEntry struct {
	family string
	labels string // rendered `k1="v1",k2="v2"`, sorted by key; "" when unlabeled
	kind   metricKind
	c      *Counter
	g      *Gauge
	f      *FloatGauge
	h      *Histogram
}

// Registry holds named metrics. Get-or-create accessors are safe for
// concurrent use; hot paths should call them once and keep the returned
// pointer.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*metricEntry{}, help: map[string]string{}}
}

// Help attaches a Prometheus HELP string to a metric family.
func (r *Registry) Help(family, text string) {
	r.mu.Lock()
	r.help[family] = text
	r.mu.Unlock()
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

func metricKey(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

// get returns the entry for (family, labels), creating it with mk on first
// use. A family must keep one kind; a kind clash panics (programming error).
func (r *Registry) get(family string, kind metricKind, labels []Label, mk func(*metricEntry)) *metricEntry {
	if family == "" {
		panic("telemetry: empty metric family")
	}
	key := metricKey(family, renderLabels(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s re-registered with a different kind", key))
		}
		return e
	}
	e := &metricEntry{family: family, labels: renderLabels(labels), kind: kind}
	mk(e)
	r.entries[key] = e
	return e
}

// Counter returns the counter for the family and labels, creating it on
// first use.
func (r *Registry) Counter(family string, labels ...Label) *Counter {
	return r.get(family, kindCounter, labels, func(e *metricEntry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge for the family and labels.
func (r *Registry) Gauge(family string, labels ...Label) *Gauge {
	return r.get(family, kindGauge, labels, func(e *metricEntry) { e.g = &Gauge{} }).g
}

// FloatGauge returns the float gauge for the family and labels.
func (r *Registry) FloatGauge(family string, labels ...Label) *FloatGauge {
	return r.get(family, kindFloatGauge, labels, func(e *metricEntry) { e.f = &FloatGauge{} }).f
}

// Histogram returns the histogram for the family and labels, creating it
// with the given bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(family string, bounds []int64, labels ...Label) *Histogram {
	return r.get(family, kindHistogram, labels, func(e *metricEntry) { e.h = NewHistogram(bounds) }).h
}

// sortedEntries snapshots the entries ordered by (family, labels) for
// deterministic export.
func (r *Registry) sortedEntries() []*metricEntry {
	r.mu.Lock()
	out := make([]*metricEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// Snapshot flattens every metric to name → value. Histograms contribute
// _count, _sum and _max pseudo-series. Keys carry rendered labels.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.sortedEntries() {
		key := metricKey(e.family, e.labels)
		switch e.kind {
		case kindCounter:
			out[key] = float64(e.c.Value())
		case kindGauge:
			out[key] = float64(e.g.Value())
		case kindFloatGauge:
			out[key] = e.f.Value()
		case kindHistogram:
			out[metricKey(e.family+"_count", e.labels)] = float64(e.h.Count())
			out[metricKey(e.family+"_sum", e.labels)] = float64(e.h.Sum())
			out[metricKey(e.family+"_max", e.labels)] = float64(e.h.Max())
		}
	}
	return out
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Durations are recorded in nanoseconds throughout the registry.

// ObserveDuration records d in a nanosecond histogram.
func ObserveDuration(h *Histogram, d time.Duration) { h.Observe(int64(d)) }
