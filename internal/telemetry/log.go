package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging rides the same determinism contract as the rest of the
// telemetry layer: handlers never read the wall clock themselves. Every
// record's timestamp comes from the injected Clock, so a logger built over a
// FixedClock with a zero stamp emits records with a zero time — which the
// stdlib JSON and text handlers omit entirely — making sim-mode log output
// byte-reproducible across reruns, the same guarantee BENCH reports have.
//
// pacelint's walltime analyzer forbids constructing slog handlers directly
// inside the virtual-time packages; NewLogger is the sanctioned factory.

// Log formats accepted by NewLogger.
const (
	// LogJSON emits one JSON object per line (production, machine-parsed).
	LogJSON = "json"
	// LogText emits the stdlib's key=value text format (interactive use).
	LogText = "text"
)

// clockHandler stamps every record from the injected Clock before
// delegating, replacing the wall-clock time slog recorded at the call site.
type clockHandler struct {
	inner slog.Handler
	clk   Clock
}

func (h clockHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h clockHandler) Handle(ctx context.Context, r slog.Record) error {
	r.Time = h.clk.Now()
	return h.inner.Handle(ctx, r)
}

func (h clockHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return clockHandler{inner: h.inner.WithAttrs(attrs), clk: h.clk}
}

func (h clockHandler) WithGroup(name string) slog.Handler {
	return clockHandler{inner: h.inner.WithGroup(name), clk: h.clk}
}

// NewLogger builds a structured logger writing to w in the given format
// (LogJSON or LogText) at the given level, with record timestamps taken from
// clk rather than the wall clock. A nil clk defaults to the wall clock —
// the production configuration; determinism-sensitive runs inject a
// FixedClock so two identical runs log identical bytes.
func NewLogger(w io.Writer, format string, level slog.Level, clk Clock) (*slog.Logger, error) {
	if clk == nil {
		clk = NewWallClock()
	}
	opts := &slog.HandlerOptions{Level: level}
	var inner slog.Handler
	switch format {
	case LogJSON, "":
		//pacelint:allow walltime the handler's internal stamp is overwritten from the injected Clock
		inner = slog.NewJSONHandler(w, opts)
	case LogText:
		//pacelint:allow walltime the handler's internal stamp is overwritten from the injected Clock
		inner = slog.NewTextHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want %s or %s)", format, LogJSON, LogText)
	}
	return slog.New(clockHandler{inner: inner, clk: clk}), nil
}

// discardHandler drops every record without formatting it. Unlike
// io.Discard-backed handlers it also reports Enabled false, so disabled call
// sites pay only the method dispatch, never attribute evaluation.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NopLogger returns a logger that discards everything. Packages that take an
// optional *slog.Logger default to it so call sites never nil-check.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// ParseLogLevel maps the conventional flag spellings to slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}
