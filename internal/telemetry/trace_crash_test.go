package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// crashTrace emits a deterministic event stream and "crashes" before Close:
// the closing bracket is never written, exactly the file a SIGKILLed server
// leaves behind.
func crashTrace() []byte {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.ProcessName(1, "paced server")
	tw.ThreadName(1, 0, "libA")
	tw.SpanArgs(1, 0, "POST /v1/sessions/{id}/batches", "http", 0, 3*time.Millisecond,
		map[string]any{"request_id": "req-000001"})
	tw.Span(1, 0, "batch 1", "engine", 500*time.Microsecond, 2*time.Millisecond)
	tw.Counter(1, "admission_waiting", time.Millisecond, 2)
	return buf.Bytes()
}

// recoverTraceLines is what every tolerant viewer (Perfetto, chrome://tracing)
// does with a truncated trace: keep each syntactically complete line, drop
// the torn tail. The test mirrors it so the tolerance is pinned by assertion
// rather than by hoping.
func recoverTraceLines(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	for _, ln := range strings.Split(string(raw), "\n") {
		ln = strings.TrimSuffix(strings.TrimSpace(ln), ",")
		if ln == "" || ln == "[" || ln == "]" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			continue // torn tail
		}
		events = append(events, ev)
	}
	return events
}

// TestTraceCrashTruncated pins the crash contract: a never-Closed trace is
// still line-recoverable, every complete event survives, and the recovery
// output is stable (golden file).
func TestTraceCrashTruncated(t *testing.T) {
	raw := crashTrace()
	if bytes.HasSuffix(bytes.TrimSpace(raw), []byte("]")) {
		t.Fatal("crash trace unexpectedly closed")
	}

	// Whole-file crash (clean line boundary): all 5 events recoverable.
	events := recoverTraceLines(t, raw)
	if len(events) != 5 {
		t.Fatalf("recovered %d events from crash trace, want 5", len(events))
	}
	if events[2]["args"].(map[string]any)["request_id"] != "req-000001" {
		t.Errorf("request span lost its request_id: %v", events[2])
	}

	// Torn mid-event: the partial line is dropped, everything before it
	// survives byte-for-byte.
	cut := bytes.LastIndexByte(raw, '{') + 10
	torn := recoverTraceLines(t, raw[:cut])
	if len(torn) != 4 {
		t.Fatalf("recovered %d events from torn trace, want 4", len(torn))
	}

	// The recovered form (re-marshaled one event per line) is the golden
	// artifact: if recovery output drifts, the viewer-tolerance story has
	// changed and the golden forces a look.
	var out bytes.Buffer
	for _, ev := range torn {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	checkGolden(t, "trace_truncated.golden", out.Bytes())
}

// errAfterWriter fails every write after the first n bytes.
type errAfterWriter struct {
	n       int
	written int
}

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.written += len(p)
	return len(p), nil
}

func TestTraceWriterSurfacesWriteErrors(t *testing.T) {
	tw := NewTraceWriter(&errAfterWriter{n: 100})
	for i := 0; i < 10; i++ {
		tw.Span(0, 0, "work", "phase", time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	if tw.Err() == nil {
		t.Fatal("write error not captured by Err")
	}
	if tw.Dropped() == 0 {
		t.Error("events after the failure were not counted as dropped")
	}
	if err := tw.Close(); err == nil {
		t.Error("Close swallowed the write error")
	}
}

// TestTraceWriterConcurrentMixedKinds hammers every emit kind from many
// goroutines under -race: the output must be a valid event stream with
// nothing lost and nothing torn.
func TestTraceWriterConcurrentMixedKinds(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	const ranks, iters = 8, 25
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ts := time.Duration(i) * time.Microsecond
				switch i % 4 {
				case 0:
					tw.Span(0, r, "span", "k", ts, time.Microsecond)
				case 1:
					tw.SpanArgs(1, r, "req", "http", ts, time.Microsecond,
						map[string]any{"request_id": r})
				case 2:
					tw.Instant(0, r, "mark", ts)
				case 3:
					tw.Counter(0, "depth", ts, int64(i))
				}
				_ = tw.Events()
				_ = tw.Err()
				_ = tw.Dropped()
			}
		}(r)
	}
	wg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("concurrent mixed trace invalid: %v", err)
	}
	if len(events) != ranks*iters {
		t.Errorf("got %d events, want %d", len(events), ranks*iters)
	}
	if tw.Dropped() != 0 {
		t.Errorf("healthy run dropped %d events", tw.Dropped())
	}
}
