package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceWriter streams Chrome trace-event-format events, one JSON object per
// line inside a top-level array, so the output is simultaneously JSONL-ish
// (line-oriented, appendable) and a valid trace file loadable in
// chrome://tracing and Perfetto once Close writes the closing bracket.
// (Both viewers also tolerate a missing bracket after a crash.)
//
// Timestamps are caller-supplied durations from an arbitrary origin — wall
// time for real runs, per-rank virtual clocks for simulated runs — encoded
// in the format's microseconds. The conventional mapping in this repo:
// pid 0 = the pace pipeline, tid = mp rank.
type TraceWriter struct {
	mu      sync.Mutex
	w       io.Writer
	n       int
	dropped int
	closed  bool
	err     error
}

// traceEvent is the wire form of one event; field order fixed for
// deterministic golden tests.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTraceWriter starts a trace stream on w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: w}
	_, t.err = io.WriteString(w, "[\n")
	return t
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func (t *TraceWriter) emit(ev traceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.closed {
		// Emits after the first failure (or after Close) are not written;
		// count them so callers can report how much of the trace was lost
		// instead of silently shipping a partial file.
		t.dropped++
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		t.dropped++
		return
	}
	if t.n > 0 {
		if _, t.err = io.WriteString(t.w, ",\n"); t.err != nil {
			return
		}
	}
	if _, t.err = t.w.Write(b); t.err != nil {
		return
	}
	t.n++
}

// Span records a complete ("X") event covering [start, start+dur) on the
// given pid/tid timeline.
func (t *TraceWriter) Span(pid, tid int, name, cat string, start, dur time.Duration) {
	d := usec(dur)
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "X", TS: usec(start), Dur: &d, PID: pid, TID: tid})
}

// SpanArgs is Span with viewer-visible args (e.g. a request id), shown in
// the event's detail pane. The map is marshaled immediately; the caller may
// reuse it.
func (t *TraceWriter) SpanArgs(pid, tid int, name, cat string, start, dur time.Duration, args map[string]any) {
	d := usec(dur)
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "X", TS: usec(start), Dur: &d, PID: pid, TID: tid, Args: args})
}

// Instant records an instant ("i") event at ts.
func (t *TraceWriter) Instant(pid, tid int, name string, ts time.Duration) {
	t.emit(traceEvent{Name: name, Ph: "i", TS: usec(ts), PID: pid, TID: tid,
		Args: map[string]any{"s": "t"}})
}

// Counter records a counter ("C") event: the viewer plots value over time.
func (t *TraceWriter) Counter(pid int, name string, ts time.Duration, value int64) {
	t.emit(traceEvent{Name: name, Ph: "C", TS: usec(ts), PID: pid, TID: 0,
		Args: map[string]any{"value": value}})
}

// ThreadName labels a (pid, tid) timeline in the viewer.
func (t *TraceWriter) ThreadName(pid, tid int, name string) {
	t.emit(traceEvent{Name: "thread_name", Ph: "M", TS: 0, PID: pid, TID: tid,
		Args: map[string]any{"name": name}})
}

// ProcessName labels a pid in the viewer.
func (t *TraceWriter) ProcessName(pid int, name string) {
	t.emit(traceEvent{Name: "process_name", Ph: "M", TS: 0, PID: pid, TID: 0,
		Args: map[string]any{"name": name}})
}

// Events returns the number of events emitted so far.
func (t *TraceWriter) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err returns the first write/encode error, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Dropped returns how many events were discarded because a write/encode
// error had already poisoned the stream (or it was closed). Callers should
// log a non-zero count alongside Close's error instead of dropping it.
func (t *TraceWriter) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Close terminates the JSON array. It does not close the underlying writer.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if t.closed {
		return fmt.Errorf("telemetry: trace writer already closed")
	}
	t.closed = true
	if _, err := io.WriteString(t.w, "\n]\n"); err != nil {
		t.err = err
		return err
	}
	return nil
}
