package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run under -race this is the registry's thread-safety proof,
// and the totals prove no update is lost.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pace_test_ops_total")
	g := reg.Gauge("pace_test_depth")
	h := reg.Histogram("pace_test_latency", []int64{1, 10, 100, 1000})

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(int64(i % 2000))
				// Interleave get-or-create with updates: same pointers
				// must come back.
				if reg.Counter("pace_test_ops_total") != c {
					t.Error("counter identity changed")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker-1 {
		t.Errorf("gauge high-water = %d, want %d", got, workers*perWorker-1)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := h.Max(); got != 1999 {
		t.Errorf("histogram max = %d, want 1999", got)
	}
	_, counts := h.Buckets()
	var sum int64
	for _, n := range counts {
		sum += n
	}
	if sum != h.Count() {
		t.Errorf("bucket sum %d != count %d", sum, h.Count())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	for v := int64(1); v <= 50; v++ {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || len(counts) != 4 {
		t.Fatalf("want 4 buckets, got %d/%d", len(bounds), len(counts))
	}
	want := []int64{10, 10, 20, 10} // (..10] (10..20] (20..40] (40..]
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	if q := h.Quantile(0.5); q != 40 {
		t.Errorf("p50 upper bound = %d, want 40", q)
	}
	if q := h.Quantile(1.0); q != 50 {
		t.Errorf("p100 = %d, want 50 (max)", q)
	}
	if m := h.Mean(); m != 25.5 {
		t.Errorf("mean = %v, want 25.5", m)
	}
}

func TestExpBoundsMonotone(t *testing.T) {
	b := ExpBounds(1, 1.3, 20)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, b)
		}
	}
	// Must be accepted by NewHistogram.
	NewHistogram(b)
}

func TestFloatGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.FloatGauge("pace_test_skew")
	g.Set(1.25)
	if v := g.Value(); v != 1.25 {
		t.Errorf("float gauge = %v, want 1.25", v)
	}
}

// TestPhaseTimerNesting checks inclusive nesting and repeated phases against
// a deterministic injected clock.
func TestPhaseTimerNesting(t *testing.T) {
	now := time.Duration(0)
	pt := NewPhaseTimer(func() time.Duration { return now })

	pt.Start("outer")
	now += 10 * time.Millisecond
	pt.Start("inner")
	if d := pt.Depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
	now += 5 * time.Millisecond
	if name, d := pt.End(); name != "inner" || d != 5*time.Millisecond {
		t.Fatalf("End = (%s, %v), want (inner, 5ms)", name, d)
	}
	now += 3 * time.Millisecond
	if name, d := pt.End(); name != "outer" || d != 18*time.Millisecond {
		t.Fatalf("End = (%s, %v), want (outer, 18ms)", name, d)
	}

	// Re-entering a phase accumulates.
	pt.Start("outer")
	now += 2 * time.Millisecond
	pt.End()

	totals := pt.Totals()
	if len(totals) != 2 {
		t.Fatalf("totals = %v, want 2 phases", totals)
	}
	if totals[0].Name != "outer" || totals[0].Total != 20*time.Millisecond {
		t.Errorf("outer total = %+v, want 20ms", totals[0])
	}
	if totals[1].Name != "inner" || totals[1].Total != 5*time.Millisecond {
		t.Errorf("inner total = %+v, want 5ms", totals[1])
	}
	if pt.Total("outer") != 20*time.Millisecond {
		t.Errorf("Total(outer) = %v", pt.Total("outer"))
	}
}

func TestPhaseTimerConcurrent(t *testing.T) {
	pt := NewPhaseTimer(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pt.Time("shared", func() {})
			}
		}()
	}
	wg.Wait()
	if pt.Total("shared") < 0 {
		t.Error("negative total")
	}
}

func TestSnapshotFlattens(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pace_c", Rank(2)).Add(7)
	reg.Histogram("pace_h", []int64{10}).Observe(4)
	snap := reg.Snapshot()
	if snap[`pace_c{rank="2"}`] != 7 {
		t.Errorf("snapshot counter = %v", snap[`pace_c{rank="2"}`])
	}
	if snap["pace_h_count"] != 1 || snap["pace_h_sum"] != 4 {
		t.Errorf("snapshot histogram = %v", snap)
	}
}
