package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestNewLoggerStampsFromInjectedClock(t *testing.T) {
	stamp := time.Date(2002, 8, 20, 0, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	log, err := NewLogger(&buf, LogJSON, slog.LevelInfo, FixedClock{Stamp: stamp})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("checkpoint written", "seq", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["time"] != stamp.Format(time.RFC3339) {
		t.Errorf("time = %v, want the injected stamp %s", rec["time"], stamp.Format(time.RFC3339))
	}
	if rec["msg"] != "checkpoint written" || rec["seq"] != float64(3) {
		t.Errorf("record = %v", rec)
	}
}

// A zero FixedClock yields zero record times, which the stdlib handlers omit
// entirely — the property that makes deterministic-sim log output
// byte-identical across reruns.
func TestNewLoggerZeroClockIsByteReproducible(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		log, err := NewLogger(&buf, LogJSON, slog.LevelDebug, FixedClock{})
		if err != nil {
			t.Fatal(err)
		}
		log.Info("batch ingest", "session", "libA", "ests", 40)
		log.With("request_id", "r-1").Debug("admitted")
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs logged different bytes:\n%q\n%q", a, b)
	}
	if strings.Contains(a, `"time"`) {
		t.Errorf("zero-clock log line carries a timestamp: %s", a)
	}
}

func TestNewLoggerTextAndErrors(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, LogText, slog.LevelWarn, FixedClock{})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept")
	if out := buf.String(); strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("level filtering broken: %q", out)
	}
	if _, err := NewLogger(&buf, "yaml", slog.LevelInfo, nil); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestNopLoggerDisabled(t *testing.T) {
	log := NopLogger()
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Error("NopLogger reports enabled; attr evaluation would not be skipped")
	}
	log.Error("goes nowhere") // must not panic
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("bad level accepted")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, BuildInfoMetric+"{") {
		t.Fatalf("scrape missing %s:\n%s", BuildInfoMetric, out)
	}
	for _, label := range []string{"goversion=", "revision=", "version=", "modified="} {
		if !strings.Contains(out, label) {
			t.Errorf("scrape missing %s label:\n%s", label, out)
		}
	}
	if !strings.Contains(out, "} 1\n") {
		t.Errorf("%s value is not 1:\n%s", BuildInfoMetric, out)
	}
}
