package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfoMetric is the info-style gauge identifying the running binary on
// every scrape: constant value 1 with the build facts as labels, the
// Prometheus convention for joining version metadata onto other series.
const BuildInfoMetric = "pace_build_info"

// RegisterBuildInfo publishes BuildInfoMetric on the registry: the main
// module version, the Go toolchain, and — when the binary was built inside a
// checkout — the VCS revision and dirty flag from debug.ReadBuildInfo.
// Unknown facts render as "unknown" so the series shape is stable.
func RegisterBuildInfo(r *Registry) {
	version, revision, modified := "unknown", "unknown", "false"
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Version != "" && info.Main.Version != "(devel)" {
			version = info.Main.Version
		}
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
	}
	r.Help(BuildInfoMetric, "Build facts of the running binary; value is always 1.")
	r.Gauge(BuildInfoMetric,
		Label{Key: "version", Value: version},
		Label{Key: "goversion", Value: runtime.Version()},
		Label{Key: "revision", Value: revision},
		Label{Key: "modified", Value: modified},
	).Set(1)
}
