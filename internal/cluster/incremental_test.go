package cluster

import (
	"strings"
	"testing"

	"pace/internal/seq"
	"pace/internal/suffix"
)

// TestRunSetIncrementalEquivalence drives the engine-level incremental
// contract directly: a cached sequential run over a prefix, then a
// fresh-only run after appending a tail generation, must reproduce the
// from-scratch partition and split the pair work exactly — every promising
// pair is generated once, in the run that introduces its younger string.
func TestRunSetIncrementalEquivalence(t *testing.T) {
	b := benchSet(t, 60, 4, 13)
	cfg := DefaultConfig(1)
	cfg.Window, cfg.Psi = 6, 18

	full, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cut := len(b.ESTs) - 2
	set, err := seq.NewSetS(b.ESTs[:cut])
	if err != nil {
		t.Fatal(err)
	}
	cache := NewBucketCache()

	c1 := cfg
	c1.Cache = cache
	r1, err := RunSet(set, c1)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Strings() != 2*cut {
		t.Fatalf("cache scanned %d strings, want %d", cache.Strings(), 2*cut)
	}

	// Snapshot the cached subtrees so reuse is observable: pointers of
	// buckets the tail does not touch must survive the second run.
	treesBefore := make(map[int]*suffix.Tree, len(cache.trees))
	for bkt, tr := range cache.trees {
		treesBefore[bkt] = tr
	}

	gen, err := set.Append(b.ESTs[cut:])
	if err != nil {
		t.Fatal(err)
	}
	c2 := cfg
	c2.Cache = cache
	c2.FreshGen = gen
	c2.InitialLabels = r1.Labels
	r2, err := RunSet(set, c2)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := normalizeLabels(r2.Labels), normalizeLabels(full.Labels); len(got) != len(want) {
		t.Fatalf("label count %d != %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("incremental partition differs from from-scratch at EST %d", i)
			}
		}
	}
	if sum := r1.Stats.PairsGenerated + r2.Stats.PairsGenerated; sum != full.Stats.PairsGenerated {
		t.Errorf("prefix %d + fresh %d pairs != from-scratch %d",
			r1.Stats.PairsGenerated, r2.Stats.PairsGenerated, full.Stats.PairsGenerated)
	}
	inc := r2.Stats.Incremental
	if inc.FreshPairs != r2.Stats.PairsGenerated {
		t.Errorf("FreshPairs %d != PairsGenerated %d", inc.FreshPairs, r2.Stats.PairsGenerated)
	}
	if inc.BucketsRebuilt <= 0 || inc.BucketsReused <= 0 {
		t.Errorf("BucketsRebuilt %d / BucketsReused %d, want both > 0",
			inc.BucketsRebuilt, inc.BucketsReused)
	}

	var reused, replaced int
	for bkt, tr := range treesBefore {
		if cache.trees[bkt] == tr {
			reused++
		} else {
			replaced++
		}
	}
	if reused == 0 {
		t.Error("no cached subtree survived the incremental run; untouched buckets should be reused verbatim")
	}
	if replaced == 0 {
		t.Error("no cached subtree was rebuilt; the tail batch must touch some buckets")
	}
}

// TestRunSetGuards exercises the RunSet/Validate rejections around the
// incremental knobs.
func TestRunSetGuards(t *testing.T) {
	b := benchSet(t, 10, 2, 5)
	set, err := seq.NewSetS(b.ESTs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Window, cfg.Psi = 6, 18

	bad := cfg
	bad.FreshGen = seq.Gen(set.NumGenerations())
	if _, err := RunSet(set, bad); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("FreshGen == NumGenerations: got %v, want out-of-range error", err)
	}

	bad = cfg
	bad.FreshGen = -1
	if err := bad.Validate(); err == nil {
		t.Error("FreshGen < 0: want Validate error")
	}

	cache := NewBucketCache()
	if err := cache.Warm(set, cfg.Window); err != nil {
		t.Fatal(err)
	}
	bad = cfg
	bad.Cache = cache
	if _, err := RunSet(set, bad); err == nil || !strings.Contains(err.Error(), "non-empty cache") {
		t.Errorf("full run over warm cache: got %v, want rejection", err)
	}

	bad = DefaultConfig(4)
	bad.Window, bad.Psi = 6, 18
	bad.Cache = cache
	if err := bad.Validate(); err == nil {
		t.Error("Cache with Procs > 1: want Validate error")
	}
}

// TestBucketCacheConsistency covers the cache's own validation: the window
// is fixed at first use, and the cache must never be ahead of the run's set.
func TestBucketCacheConsistency(t *testing.T) {
	b := benchSet(t, 8, 2, 9)
	big, err := seq.NewSetS(b.ESTs)
	if err != nil {
		t.Fatal(err)
	}
	small, err := seq.NewSetS(b.ESTs[:4])
	if err != nil {
		t.Fatal(err)
	}

	cache := NewBucketCache()
	if err := cache.Warm(big, 6); err != nil {
		t.Fatal(err)
	}
	if err := cache.Warm(big, 8); err == nil || !strings.Contains(err.Error(), "window") {
		t.Errorf("window mismatch: got %v, want error", err)
	}
	if err := cache.Warm(small, 6); err == nil {
		t.Error("cache ahead of set: want error")
	}
	if cache.Buckets() == 0 {
		t.Error("warm cache reports zero buckets")
	}
}

// TestBucketCacheTruncateRollsBackAbsorb proves cache truncation is the
// exact inverse of absorbing a batch: lists shrink back to the prefix run's
// state, subtrees of touched buckets are discarded (they index dead
// suffixes), untouched subtrees survive verbatim, and a re-run of the batch
// after rollback reproduces the from-scratch partition and pair counts —
// the retried-Add-equals-first-attempt contract at the engine level.
func TestBucketCacheTruncateRollsBackAbsorb(t *testing.T) {
	b := benchSet(t, 60, 4, 13)
	cfg := DefaultConfig(1)
	cfg.Window, cfg.Psi = 6, 18

	full, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cut := len(b.ESTs) - 3
	set, err := seq.NewSetS(b.ESTs[:cut])
	if err != nil {
		t.Fatal(err)
	}
	cache := NewBucketCache()
	c1 := cfg
	c1.Cache = cache
	r1, err := RunSet(set, c1)
	if err != nil {
		t.Fatal(err)
	}
	bucketsBefore := cache.Buckets()
	lenBefore := make(map[int]int, len(cache.byBucket))
	for bkt, refs := range cache.byBucket {
		lenBefore[bkt] = len(refs)
	}
	treesBefore := make(map[int]*suffix.Tree, len(cache.trees))
	for bkt, tr := range cache.trees {
		treesBefore[bkt] = tr
	}

	// Absorb the tail batch (as a failed run would have), then roll back.
	gen, err := set.Append(b.ESTs[cut:])
	if err != nil {
		t.Fatal(err)
	}
	c2 := cfg
	c2.Cache = cache
	c2.FreshGen = gen
	c2.InitialLabels = r1.Labels
	if _, err := RunSet(set, c2); err != nil {
		t.Fatal(err)
	}
	cache.Truncate(seq.Forward(seq.ESTID(cut)))
	if err := set.Truncate(cut); err != nil {
		t.Fatal(err)
	}

	if cache.Strings() != 2*cut {
		t.Fatalf("truncated cache scanned %d strings, want %d", cache.Strings(), 2*cut)
	}
	if cache.Buckets() != bucketsBefore {
		t.Errorf("truncated cache holds %d buckets, want %d", cache.Buckets(), bucketsBefore)
	}
	for bkt, refs := range cache.byBucket {
		if len(refs) != lenBefore[bkt] {
			t.Errorf("bucket %d has %d refs after rollback, want %d", bkt, len(refs), lenBefore[bkt])
		}
	}
	for bkt, tr := range cache.trees {
		if treesBefore[bkt] != tr {
			t.Errorf("bucket %d kept a subtree built over rolled-back suffixes", bkt)
		}
	}

	// The retried batch must behave exactly like a first attempt.
	gen2, err := set.Append(b.ESTs[cut:])
	if err != nil {
		t.Fatal(err)
	}
	if gen2 != gen {
		t.Fatalf("retried Append got generation %d, want %d", gen2, gen)
	}
	c3 := cfg
	c3.Cache = cache
	c3.FreshGen = gen2
	c3.InitialLabels = r1.Labels
	r3, err := RunSet(set, c3)
	if err != nil {
		t.Fatal(err)
	}
	got, want := normalizeLabels(r3.Labels), normalizeLabels(full.Labels)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("retried run's partition differs from from-scratch at EST %d", i)
		}
	}
	if sum := r1.Stats.PairsGenerated + r3.Stats.PairsGenerated; sum != full.Stats.PairsGenerated {
		t.Errorf("prefix %d + retried %d pairs != from-scratch %d",
			r1.Stats.PairsGenerated, r3.Stats.PairsGenerated, full.Stats.PairsGenerated)
	}
}

// TestCheckpointFromLabels round-trips a finished partition through the
// session checkpoint constructor.
func TestCheckpointFromLabels(t *testing.T) {
	labels := []int32{0, 0, 1, 2, 1}
	ck, err := CheckpointFromLabels(len(labels), 6, 18, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ck.NumESTs != len(labels) || ck.Window != 6 || ck.Psi != 18 {
		t.Errorf("checkpoint header = {%d %d %d}, want {5 6 18}", ck.NumESTs, ck.Window, ck.Psi)
	}
	// 5 ESTs in 3 clusters: seeding needs exactly 2 unions.
	if ck.Merges != 2 {
		t.Errorf("Merges = %d, want 2", ck.Merges)
	}
	got := normalizeLabels(ck.Labels())
	want := normalizeLabels(labels)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored partition differs at %d: %v vs %v", i, got, want)
		}
	}

	if _, err := CheckpointFromLabels(4, 6, 18, labels); err == nil {
		t.Error("label/EST count mismatch: want error")
	}
}
