package cluster

// Checkpoint/restart: the master periodically snapshots its union-find and
// pair counters; a killed run restarts from the snapshot by seeding
// InitialLabels, skipping pairs inside already-merged clusters instead of
// re-aligning them.

import (
	"os"
	"path/filepath"
	"testing"

	"pace/internal/mp"
	"pace/internal/unionfind"
)

func sampleCheckpoint() *Checkpoint {
	uf := unionfind.New(10)
	uf.Union(0, 1)
	uf.Union(2, 3)
	uf.Union(3, 4)
	return &Checkpoint{
		NumESTs: 10, Window: 6, Psi: 18, Seq: 7,
		PairsProcessed: 100, PairsAccepted: 40, PairsSkipped: 12, Merges: 3,
		UF: uf,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	got, err := decodeCheckpoint(ck.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumESTs != 10 || got.Window != 6 || got.Psi != 18 || got.Seq != 7 {
		t.Errorf("fingerprint: %+v", got)
	}
	if got.PairsProcessed != 100 || got.PairsAccepted != 40 ||
		got.PairsSkipped != 12 || got.Merges != 3 {
		t.Errorf("counters: %+v", got)
	}
	want := ck.Labels()
	gotLabels := got.Labels()
	for i := range want {
		if gotLabels[i] != want[i] {
			t.Fatalf("label %d: %d vs %d", i, gotLabels[i], want[i])
		}
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	good := sampleCheckpoint().encode()
	mutate := func(name string, f func([]byte) []byte) {
		b := append([]byte{}, good...)
		if _, err := decodeCheckpoint(f(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-5] })
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("bad version", func(b []byte) []byte { b[8] = 99; return b })
	mutate("flipped body byte", func(b []byte) []byte { b[30] ^= 0xFF; return b })
	mutate("flipped CRC", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b })
	mutate("trailing garbage", func(b []byte) []byte { return append(b, 0) })
}

func TestCheckpointValidateFingerprint(t *testing.T) {
	ck := sampleCheckpoint()
	if err := ck.Validate(10, 6, 18); err != nil {
		t.Fatal(err)
	}
	if err := ck.Validate(11, 6, 18); err == nil {
		t.Error("wrong EST count accepted")
	}
	if err := ck.Validate(10, 8, 18); err == nil {
		t.Error("wrong window accepted")
	}
	if err := ck.Validate(10, 6, 20); err == nil {
		t.Error("wrong psi accepted")
	}
}

func TestWriteCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	ck := sampleCheckpoint()
	n, err := WriteCheckpoint(dir, ck)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("wrote %d bytes", n)
	}
	if _, err := os.Stat(filepath.Join(dir, CheckpointFile+".tmp")); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	got, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != ck.Seq {
		t.Errorf("Seq = %d, want %d", got.Seq, ck.Seq)
	}
	// A second write replaces the first; the newer snapshot wins.
	ck.Seq = 8
	if _, err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 8 {
		t.Errorf("Seq = %d after overwrite, want 8", got.Seq)
	}
}

// A completed run leaves a final checkpoint; resuming from it must reproduce
// the same partition while skipping the already-done merge work.
func TestResumeFromFinalCheckpoint(t *testing.T) {
	b := benchSet(t, 80, 5, 23)
	dir := t.TempDir()

	cfg := DefaultConfig(1)
	cfg.Window, cfg.Psi = 6, 18
	cfg.Checkpoint = CheckpointConfig{Dir: dir, EveryReports: 2}
	baseline, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Stats.Recovery.Checkpoints == 0 {
		t.Fatal("no checkpoints written")
	}

	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Validate(len(b.ESTs), cfg.Window, cfg.Psi); err != nil {
		t.Fatal(err)
	}

	resumed := DefaultConfig(1)
	resumed.Window, resumed.Psi = 6, 18
	resumed.InitialLabels = ck.Labels()
	res, err := Run(b.ESTs, resumed)
	if err != nil {
		t.Fatal(err)
	}
	want := normalizeLabels(baseline.Labels)
	got := normalizeLabels(res.Labels)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed partition differs at EST %d", i)
		}
	}
	// The final checkpoint holds the complete partition: the resumed run has
	// nothing left to merge, and the seed accounts for all baseline merges.
	st := res.Stats
	if st.Recovery.SeedMerges != baseline.Stats.Merges {
		t.Errorf("SeedMerges = %d, want %d", st.Recovery.SeedMerges, baseline.Stats.Merges)
	}
	if st.Merges != 0 {
		t.Errorf("resumed run merged %d more clusters", st.Merges)
	}
	if st.PairsProcessed >= baseline.Stats.PairsProcessed {
		t.Errorf("resume reprocessed pairs: %d vs baseline %d",
			st.PairsProcessed, baseline.Stats.PairsProcessed)
	}
}

// Kill the master mid-run, then resume from the surviving checkpoint: the
// resumed run completes and matches a failure-free run, processing fewer
// pairs than from scratch.
func TestResumeAfterMasterCrash(t *testing.T) {
	b := benchSet(t, 80, 5, 24)
	dir := t.TempDir()
	const p = 3

	base := DefaultConfig(p)
	base.Window, base.Psi = 6, 18
	base.BatchSize = 8
	base.WorkBufCap = 256
	base.MP = mp.DefaultSimConfig(p)

	baseline, err := Run(b.ESTs, base)
	if err != nil {
		t.Fatal(err)
	}
	want := normalizeLabels(baseline.Labels)

	// Crash the master on its 12th report receive; snapshots every report.
	crashed := base
	crashed.Checkpoint = CheckpointConfig{Dir: dir, EveryReports: 1}
	crashed.MP.Fault = &mp.FaultPlan{Seed: 5, CrashRank: 0, CrashAfter: 12, CrashTag: tagReport}
	if _, err := Run(b.ESTs, crashed); err == nil {
		t.Fatal("master crash must fail the run")
	}
	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("no usable checkpoint after crash: %v", err)
	}
	if err := ck.Validate(len(b.ESTs), base.Window, base.Psi); err != nil {
		t.Fatal(err)
	}
	if ck.PairsProcessed == 0 {
		t.Error("checkpoint captured no progress")
	}

	resumed := base
	resumed.InitialLabels = ck.Labels()
	res, err := Run(b.ESTs, resumed)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeLabels(res.Labels)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed partition differs at EST %d", i)
		}
	}
	if ck.Merges > 0 && res.Stats.Recovery.SeedMerges == 0 {
		t.Error("resume did not seed from checkpoint labels")
	}
	if res.Stats.Merges != baseline.Stats.Merges-res.Stats.Recovery.SeedMerges {
		t.Errorf("merge accounting: resumed %d + seeded %d != baseline %d",
			res.Stats.Merges, res.Stats.Recovery.SeedMerges, baseline.Stats.Merges)
	}
}

// The sequential engine honors the checkpoint cadence too.
func TestSequentialCheckpointing(t *testing.T) {
	b := benchSet(t, 50, 4, 25)
	dir := t.TempDir()
	cfg := DefaultConfig(1)
	cfg.Window, cfg.Psi = 6, 18
	cfg.Checkpoint = CheckpointConfig{Dir: dir, EveryReports: 1}
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Recovery.Checkpoints < 2 {
		t.Errorf("Checkpoints = %d, want >= 2", res.Stats.Recovery.Checkpoints)
	}
	if res.Stats.Recovery.CheckpointBytes == 0 {
		t.Error("CheckpointBytes not recorded")
	}
	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The final (forced) snapshot holds the finished run's counters.
	if ck.Merges != res.Stats.Merges {
		t.Errorf("final checkpoint Merges = %d, run had %d", ck.Merges, res.Stats.Merges)
	}
}
