package cluster

// The determinism contract: the final partition is the set of connected
// components of the accepted-pair graph, and the generators produce a fixed
// pair multiset per bucket tree — neither depends on how buckets are spread
// over slaves or on message arrival order. The same input must therefore
// yield the *identical* partition (up to label renaming) and the identical
// PairsGenerated count whether it is clustered sequentially, on the
// simulated machine, or on the real concurrent machine.

import (
	"fmt"
	"testing"

	"pace/internal/mp"
)

// normalizeLabels renames cluster labels to first-occurrence order so that
// partitions can be compared with ==.
func normalizeLabels(labels []int32) []int32 {
	next := int32(0)
	remap := make(map[int32]int32, len(labels))
	out := make([]int32, len(labels))
	for i, l := range labels {
		m, ok := remap[l]
		if !ok {
			m = next
			remap[l] = m
			next++
		}
		out[i] = m
	}
	return out
}

func TestEquivalenceAcrossModes(t *testing.T) {
	b := benchSet(t, 100, 6, 7)
	base := DefaultConfig(1)
	base.Window, base.Psi = 6, 18

	ref, err := Run(b.ESTs, base)
	if err != nil {
		t.Fatal(err)
	}
	refLabels := normalizeLabels(ref.Labels)

	sim := mp.DefaultSimConfig(4)
	for _, mpCfg := range []mp.Config{
		sim,
		{Procs: 4, Mode: mp.ModeReal},
	} {
		mode := "real"
		if mpCfg.Mode == mp.ModeSim {
			mode = "sim"
		}
		t.Run(fmt.Sprintf("p4_%s", mode), func(t *testing.T) {
			cfg := base
			cfg.MP = mpCfg
			res, err := Run(b.ESTs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := normalizeLabels(res.Labels)
			if len(got) != len(refLabels) {
				t.Fatalf("label count %d vs %d", len(got), len(refLabels))
			}
			diff := 0
			for i := range got {
				if got[i] != refLabels[i] {
					diff++
				}
			}
			if diff != 0 {
				t.Errorf("partition differs from sequential at %d of %d ESTs", diff, len(got))
			}
			if res.NumClusters != ref.NumClusters {
				t.Errorf("clusters = %d, sequential = %d", res.NumClusters, ref.NumClusters)
			}
			if res.Stats.PairsGenerated != ref.Stats.PairsGenerated {
				t.Errorf("PairsGenerated = %d, sequential = %d",
					res.Stats.PairsGenerated, ref.Stats.PairsGenerated)
			}
			// The flow-control invariant must hold on the parallel runs.
			hw := res.Stats.WorkBufHighWater
			if hw <= 0 || hw > cfg.WorkBufCap {
				t.Errorf("WorkBufHighWater %d outside (0, %d]", hw, cfg.WorkBufCap)
			}
		})
	}
}
