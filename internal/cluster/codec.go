package cluster

import (
	"encoding/binary"
	"fmt"

	"pace/internal/pairgen"
	"pace/internal/seq"
	"pace/internal/unionfind"
)

// Wire protocol between master and slaves. Messages are packed with a small
// hand-rolled little-endian codec: the paper's implementation moves flat C
// structs over MPI, and flat buffers keep the simulated byte counts honest.

// Message tags.
const (
	tagReport = 1 // slave → master: results + fresh pairs + status
	tagWork   = 2 // master → slave: work batch + pair request (or stop)
	tagSuffix = 3 // slave → slave: suffix redistribution triples
	tagPhase  = 4 // rank → master: final phase/timing report (point-to-point
	// rather than a collective, so the master can skip dead ranks)
)

// shard identifies a slice of the bucket space: the buckets b with
// owner[b] == part && b ≡ idx (mod of). A slave's initial generator covers
// shard{part: rank-1, idx: 0, of: 1}; when a slave dies its shards are
// subdivided among the k survivors as (part, idx+of·j, of·k), which
// partitions exactly the dead shard's buckets without renumbering owners.
type shard struct {
	part, idx, of int32
}

// Suffix redistribution payload: flat (bucket, string id, position) uint32
// triples, little-endian — what each slave ships to every bucket owner.
//
// All encoders come in append form (appendX) so hot paths can reuse one
// scratch buffer across sends — safe because the mp layer copies on send —
// plus allocate-fresh encodeX wrappers for one-shot use.

func appendU32s(b []byte, vals []uint32) []byte {
	for _, v := range vals {
		b = appendU32(b, v)
	}
	return b
}

func encodeU32s(vals []uint32) []byte {
	return appendU32s(make([]byte, 0, 4*len(vals)), vals)
}

func decodeU32s(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("cluster: u32 buffer length %d not a multiple of 4", len(b))
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out, nil
}

// alignResult is a slave's verdict on one dispatched or self-generated pair.
type alignResult struct {
	estI, estJ seq.ESTID
	accepted   bool
}

// report is the slave → master message: R results and P pairs plus status
// flags (paper §3.3). Under the sharded merge protocol (Config.MergeShards
// >= 1) the per-pair results are replaced by a merge delta: batch counters
// plus the spanning edges the slave's local union-find admitted.
type report struct {
	results []alignResult
	pairs   []pairgen.Pair
	// passive: the slave's generator is exhausted and its PAIRBUF empty.
	passive bool
	// hasNextWork: the slave still holds a NEXTWORK batch whose results
	// will arrive with the following report.
	hasNextWork bool
	// ackWork: the results in this report answer the oldest master-
	// dispatched batch (as opposed to a self-generated bootstrap batch).
	// The master uses the flag to retire that batch from the slave's
	// in-flight FIFO; batches still in the FIFO when a slave dies are
	// requeued to survivors.
	ackWork bool
	// hasDelta: the report carries deltaProcessed/deltaAccepted and the
	// delta blob instead of per-pair results (mutually exclusive with
	// results; the decoder rejects a message carrying both).
	hasDelta bool
	// deltaProcessed / deltaAccepted are the batch's alignment counters —
	// the information the master no longer gets per pair.
	deltaProcessed int64
	deltaAccepted  int64
	// delta is the slave's pending spanning edges (UFD1 blob on the wire).
	delta unionfind.MergeDelta
}

// work is the master → slave message: W pairs to align and the number E of
// fresh pairs to include in the next report. stop ends the slave loop.
// recover carries bucket shards of a dead slave the recipient must rebuild
// and regenerate pairs from.
type work struct {
	pairs   []pairgen.Pair
	e       int32
	stop    bool
	recover []shard
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendPair(b []byte, p pairgen.Pair) []byte {
	b = appendU32(b, uint32(p.S1))
	b = appendU32(b, uint32(p.S2))
	b = appendU32(b, uint32(p.Pos1))
	b = appendU32(b, uint32(p.Pos2))
	return appendU32(b, uint32(p.MatchLen))
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = fmt.Errorf("cluster: truncated message at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) pair() pairgen.Pair {
	return pairgen.Pair{
		S1:       seq.StringID(r.u32()),
		S2:       seq.StringID(r.u32()),
		Pos1:     int32(r.u32()),
		Pos2:     int32(r.u32()),
		MatchLen: int32(r.u32()),
	}
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("cluster: %d trailing bytes at offset %d", len(r.b)-r.off, r.off)
	}
	return nil
}

func encodeReport(rep report) []byte {
	return appendReport(make([]byte, 0, 12+12*len(rep.results)+20*len(rep.pairs)), rep)
}

func appendReport(b []byte, rep report) []byte {
	var flags uint32
	if rep.passive {
		flags |= 1
	}
	if rep.hasNextWork {
		flags |= 2
	}
	if rep.ackWork {
		flags |= 4
	}
	if rep.hasDelta {
		flags |= 8
	}
	b = appendU32(b, flags)
	b = appendU32(b, uint32(len(rep.results)))
	for _, res := range rep.results {
		b = appendU32(b, uint32(res.estI))
		b = appendU32(b, uint32(res.estJ))
		acc := uint32(0)
		if res.accepted {
			acc = 1
		}
		b = appendU32(b, acc)
	}
	b = appendU32(b, uint32(len(rep.pairs)))
	for _, p := range rep.pairs {
		b = appendPair(b, p)
	}
	if rep.hasDelta {
		b = appendU32(b, uint32(rep.deltaProcessed))
		b = appendU32(b, uint32(rep.deltaAccepted))
		blobAt := len(b) + 4 // length prefix precedes the blob
		b = appendU32(b, 0)
		b = rep.delta.AppendBinary(b)
		binary.LittleEndian.PutUint32(b[blobAt-4:], uint32(len(b)-blobAt))
	}
	return b
}

func decodeReport(b []byte) (report, error) {
	r := reader{b: b}
	flags := r.u32()
	if r.err == nil && flags&^15 != 0 {
		return report{}, fmt.Errorf("cluster: unknown report flag bits %#x", flags&^15)
	}
	rep := report{passive: flags&1 != 0, hasNextWork: flags&2 != 0, ackWork: flags&4 != 0, hasDelta: flags&8 != 0}
	nRes := r.u32()
	if r.err == nil && int(nRes) > len(b)/12 {
		return report{}, fmt.Errorf("cluster: result count %d exceeds message size", nRes)
	}
	if r.err == nil && rep.hasDelta && nRes > 0 {
		return report{}, fmt.Errorf("cluster: delta report carries %d per-pair results", nRes)
	}
	for i := uint32(0); i < nRes && r.err == nil; i++ {
		res := alignResult{estI: seq.ESTID(r.u32()), estJ: seq.ESTID(r.u32())}
		acc := r.u32()
		if r.err == nil && acc > 1 {
			return report{}, fmt.Errorf("cluster: result %d has non-boolean accepted value %d at offset %d", i, acc, r.off-4)
		}
		res.accepted = acc == 1
		rep.results = append(rep.results, res)
	}
	nPairs := r.u32()
	if r.err == nil && int(nPairs) > len(b)/20 {
		return report{}, fmt.Errorf("cluster: pair count %d exceeds message size", nPairs)
	}
	for i := uint32(0); i < nPairs && r.err == nil; i++ {
		rep.pairs = append(rep.pairs, r.pair())
	}
	if rep.hasDelta {
		rep.deltaProcessed = int64(r.u32())
		rep.deltaAccepted = int64(r.u32())
		blobLen := int(r.u32())
		if r.err == nil && (blobLen > len(b)-r.off || blobLen < 0) {
			return report{}, fmt.Errorf("cluster: delta blob length %d exceeds message size at offset %d", blobLen, r.off-4)
		}
		if r.err == nil {
			if err := rep.delta.UnmarshalBinary(b[r.off : r.off+blobLen]); err != nil {
				return report{}, fmt.Errorf("cluster: delta blob at offset %d: %w", r.off, err)
			}
			r.off += blobLen
		}
	}
	if err := r.done(); err != nil {
		return report{}, err
	}
	return rep, nil
}

func encodeWork(w work) []byte {
	return appendWork(make([]byte, 0, 12+20*len(w.pairs)), w)
}

func appendWork(b []byte, w work) []byte {
	var flags uint32
	if w.stop {
		flags |= 1
	}
	if len(w.recover) > 0 {
		flags |= 2
	}
	b = appendU32(b, flags)
	b = appendU32(b, uint32(w.e))
	b = appendU32(b, uint32(len(w.pairs)))
	for _, p := range w.pairs {
		b = appendPair(b, p)
	}
	if len(w.recover) > 0 {
		b = appendU32(b, uint32(len(w.recover)))
		for _, sh := range w.recover {
			b = appendU32(b, uint32(sh.part))
			b = appendU32(b, uint32(sh.idx))
			b = appendU32(b, uint32(sh.of))
		}
	}
	return b
}

func decodeWork(b []byte) (work, error) {
	r := reader{b: b}
	flags := r.u32()
	if r.err == nil && flags&^3 != 0 {
		return work{}, fmt.Errorf("cluster: unknown work flag bits %#x", flags&^3)
	}
	w := work{stop: flags&1 != 0, e: int32(r.u32())}
	nPairs := r.u32()
	if r.err == nil && int(nPairs) > len(b)/20 {
		return work{}, fmt.Errorf("cluster: pair count %d exceeds message size", nPairs)
	}
	for i := uint32(0); i < nPairs && r.err == nil; i++ {
		w.pairs = append(w.pairs, r.pair())
	}
	if flags&2 != 0 {
		nSh := r.u32()
		if r.err == nil && nSh == 0 {
			return work{}, fmt.Errorf("cluster: recover flag set but zero shards")
		}
		if r.err == nil && int(nSh) > len(b)/12 {
			return work{}, fmt.Errorf("cluster: shard count %d exceeds message size", nSh)
		}
		for i := uint32(0); i < nSh && r.err == nil; i++ {
			sh := shard{part: int32(r.u32()), idx: int32(r.u32()), of: int32(r.u32())}
			if r.err == nil && (sh.of < 1 || sh.idx < 0 || sh.idx >= sh.of) {
				return work{}, fmt.Errorf("cluster: malformed shard %+v", sh)
			}
			w.recover = append(w.recover, sh)
		}
	}
	if err := r.done(); err != nil {
		return work{}, err
	}
	return w, nil
}

// phaseReport carries a rank's timing/counter contribution to the master at
// shutdown (gathered once, outside the hot path). The comm fields are a
// snapshot of the rank's mp.CommStats taken just before encoding, so the
// final gather itself is not included — uniformly across ranks.
type phaseReport struct {
	partitionNs, constructNs, sortNs, alignNs, totalNs int64
	generated, processed, accepted, stale              int64
	msgsSent, bytesSent, msgsRecv, bytesRecv           int64
	recvWaitNs, collOps, collTimeNs, busyNs            int64
	// deltaEdges is the number of spanning edges the rank shipped in merge
	// deltas (zero on the legacy protocol and on the master).
	deltaEdges int64
}

// phaseReportWords is the fixed number of int64 fields on the wire.
const phaseReportWords = 18

func (p phaseReport) words() [phaseReportWords]int64 {
	return [phaseReportWords]int64{
		p.partitionNs, p.constructNs, p.sortNs, p.alignNs, p.totalNs,
		p.generated, p.processed, p.accepted, p.stale,
		p.msgsSent, p.bytesSent, p.msgsRecv, p.bytesRecv,
		p.recvWaitNs, p.collOps, p.collTimeNs, p.busyNs,
		p.deltaEdges,
	}
}

func encodePhase(p phaseReport) []byte {
	b := make([]byte, 0, 8*phaseReportWords)
	for _, v := range p.words() {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		b = append(b, tmp[:]...)
	}
	return b
}

func decodePhase(b []byte) (phaseReport, error) {
	const want = 8 * phaseReportWords
	if len(b) < want {
		return phaseReport{}, fmt.Errorf("cluster: phase report truncated at offset %d, want %d bytes", len(b), want)
	}
	if len(b) > want {
		return phaseReport{}, fmt.Errorf("cluster: phase report has %d trailing bytes at offset %d", len(b)-want, want)
	}
	v := func(i int) int64 { return int64(binary.LittleEndian.Uint64(b[8*i:])) }
	return phaseReport{
		partitionNs: v(0), constructNs: v(1), sortNs: v(2), alignNs: v(3), totalNs: v(4),
		generated: v(5), processed: v(6), accepted: v(7), stale: v(8),
		msgsSent: v(9), bytesSent: v(10), msgsRecv: v(11), bytesRecv: v(12),
		recvWaitNs: v(13), collOps: v(14), collTimeNs: v(15), busyNs: v(16),
		deltaEdges: v(17),
	}, nil
}
