package cluster

// Slave-failure recovery: a slave killed mid-protocol must not change the
// final partition. The master reclaims the dead rank's grants, requeues its
// in-flight batches, and reassigns its bucket shards to survivors, who
// rebuild and regenerate the pair stream. Because the partition is the set
// of connected components of the accepted-pair graph — invariant to pair
// processing order and to duplicate processing — the recovered run must
// produce labels identical to a failure-free run.

import (
	"fmt"
	"testing"

	"pace/internal/mp"
	"pace/internal/simulate"
)

// recoveryBench is shared across the recovery tests (generation dominates
// their cost).
func recoveryBench(t testing.TB) *simulate.Benchmark {
	t.Helper()
	return benchSet(t, 90, 6, 21)
}

func recoveryConfig(p int, mpCfg mp.Config) Config {
	cfg := DefaultConfig(p)
	cfg.Window, cfg.Psi = 6, 18
	// Small batches force many report round-trips per slave, so late crash
	// schedules (CrashAfter up to ~10) actually fire before the run ends.
	cfg.BatchSize = 8
	cfg.WorkBufCap = 256
	cfg.MP = mpCfg
	return cfg
}

func modeName(c mp.Config) string {
	if c.Mode == mp.ModeSim {
		return "sim"
	}
	return "real"
}

// TestSlaveCrashRecovers kills slave 2 on its N-th report send, for N across
// the protocol's lifetime (before the first report, mid-stream, and late),
// in both machine modes, and checks the partition and the recovery counters.
func TestSlaveCrashRecovers(t *testing.T) {
	b := recoveryBench(t)
	const p = 4

	baseline, err := Run(b.ESTs, recoveryConfig(p, mp.DefaultSimConfig(p)))
	if err != nil {
		t.Fatal(err)
	}
	want := normalizeLabels(baseline.Labels)

	for _, after := range []int{1, 3, 8} {
		for _, mpCfg := range parallelModes(p) {
			t.Run(fmt.Sprintf("after%d_%s", after, modeName(mpCfg)), func(t *testing.T) {
				cfg := recoveryConfig(p, mpCfg)
				cfg.MP.Fault = &mp.FaultPlan{
					Seed:       1,
					CrashRank:  2,
					CrashAfter: after,
					CrashTag:   tagReport,
				}
				res, err := Run(b.ESTs, cfg)
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				got := normalizeLabels(res.Labels)
				diff := 0
				for i := range got {
					if got[i] != want[i] {
						diff++
					}
				}
				if diff != 0 {
					t.Errorf("partition differs from failure-free run at %d of %d ESTs", diff, len(got))
				}
				rec := res.Stats.Recovery
				if rec.RanksLost != 1 {
					t.Errorf("RanksLost = %d, want 1", rec.RanksLost)
				}
				if rec.GrantsReclaimed < 0 || rec.PairsRequeued < 0 {
					t.Errorf("negative recovery counters: %+v", rec)
				}
				// The dead rank must appear in PerRank as a lost row.
				lost := 0
				for _, rs := range res.Stats.PerRank {
					if rs.Role == "lost" {
						lost++
						if rs.Rank != 2 {
							t.Errorf("lost rank = %d, want 2", rs.Rank)
						}
					}
				}
				if lost != 1 {
					t.Errorf("%d lost PerRank rows, want 1", lost)
				}
			})
		}
	}
}

// A death among four slaves subdivides the lost shard three ways — the
// multi-survivor reassignment path, beyond the pairwise case above.
func TestSlaveCrashManySurvivors(t *testing.T) {
	b := recoveryBench(t)
	const p = 5

	baseline, err := Run(b.ESTs, recoveryConfig(p, mp.DefaultSimConfig(p)))
	if err != nil {
		t.Fatal(err)
	}
	want := normalizeLabels(baseline.Labels)

	cfg := recoveryConfig(p, mp.DefaultSimConfig(p))
	cfg.MP.Fault = &mp.FaultPlan{Seed: 2, CrashRank: 3, CrashAfter: 1, CrashTag: tagReport}
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeLabels(res.Labels)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("partition differs from failure-free run at EST %d", i)
		}
	}
}

// Recover=false restores the seed fail-stop behavior: a slave crash fails
// the whole run.
func TestRecoverDisabledFailsStop(t *testing.T) {
	b := recoveryBench(t)
	const p = 3
	cfg := recoveryConfig(p, mp.DefaultSimConfig(p))
	cfg.Recover = false
	cfg.MP.Fault = &mp.FaultPlan{Seed: 3, CrashRank: 2, CrashAfter: 2, CrashTag: tagReport}
	if _, err := Run(b.ESTs, cfg); err == nil {
		t.Fatal("crash with Recover=false must fail the run")
	}
}

// When the only slave dies there is no survivor to reassign to; the run must
// fail with a clear error rather than hang.
func TestAllSlavesDeadFails(t *testing.T) {
	b := benchSet(t, 40, 3, 22)
	cfg := recoveryConfig(2, mp.DefaultSimConfig(2))
	cfg.MP.Fault = &mp.FaultPlan{Seed: 4, CrashRank: 1, CrashAfter: 2, CrashTag: tagReport}
	if _, err := Run(b.ESTs, cfg); err == nil {
		t.Fatal("run with zero surviving slaves must fail")
	}
}
