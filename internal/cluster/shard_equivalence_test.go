package cluster

// Equivalence of the sharded merge protocol (Config.MergeShards >= 1) with
// the legacy single-master path: the final partition is the connected
// components of the accepted-pair graph; acceptance is a property of the two
// sequences alone, and pairs a filter skips are already-connected, so the
// components — and hence the labels — cannot depend on the merge protocol,
// the shard count K, or the engine. The counters legitimately differ
// (deferred merges skip fewer pairs), so only partition-shaped facts are
// compared.
//
// The CI shard-equivalence job runs this matrix per K under -race with
// PACE_MERGE_SHARDS pinning the sharded leg.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"pace/internal/mp"
	"pace/internal/seq"
)

// shardKs returns the shard counts to test: PACE_MERGE_SHARDS pins one
// (the CI matrix), otherwise a local spread.
func shardKs(t *testing.T) []int {
	if v := os.Getenv("PACE_MERGE_SHARDS"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 1 {
			t.Fatalf("PACE_MERGE_SHARDS=%q: want a positive integer", v)
		}
		return []int{k}
	}
	return []int{1, 4, 16}
}

func TestShardEquivalence(t *testing.T) {
	b := benchSet(t, 100, 6, 7)
	base := DefaultConfig(1)
	base.Window, base.Psi = 6, 18

	// Reference: the legacy single-master sequential run.
	ref, err := Run(b.ESTs, base)
	if err != nil {
		t.Fatal(err)
	}
	refLabels := normalizeLabels(ref.Labels)

	check := func(t *testing.T, res *Result, k int, parallel bool) {
		t.Helper()
		got := normalizeLabels(res.Labels)
		if len(got) != len(refLabels) {
			t.Fatalf("label count %d vs %d", len(got), len(refLabels))
		}
		diff := 0
		for i := range got {
			if got[i] != refLabels[i] {
				diff++
			}
		}
		if diff != 0 {
			t.Errorf("partition differs from single-master at %d of %d ESTs", diff, len(got))
		}
		if res.NumClusters != ref.NumClusters {
			t.Errorf("clusters = %d, single-master = %d", res.NumClusters, ref.NumClusters)
		}
		if rs := res.Stats.Reconcile; rs.Shards != k {
			t.Errorf("Reconcile.Shards = %d, want %d", rs.Shards, k)
		} else {
			if rs.Applies == 0 || rs.DeltaEdges == 0 {
				t.Errorf("sharded run recorded no reconcile activity: %+v", rs)
			}
			// Empty deltas apply in zero phases, so Phases bounds only
			// through the per-apply maximum.
			if rs.MaxPhases < 1 || rs.Phases < rs.MaxPhases {
				t.Errorf("phase counters inconsistent: total %d, max %d", rs.Phases, rs.MaxPhases)
			}
			if k == 1 && rs.CrossShard != 0 {
				t.Errorf("K=1 forwarded %d tasks across shards", rs.CrossShard)
			}
		}
		if parallel {
			// The master must see delta traffic, not per-pair verdicts,
			// and report the honest idle breakdown.
			st := res.Stats
			if st.MasterIdle != st.MasterRecvWait+st.MasterReconcileWait {
				t.Errorf("MasterIdle %v != recv %v + reconcile %v",
					st.MasterIdle, st.MasterRecvWait, st.MasterReconcileWait)
			}
			var edges int64
			for _, r := range st.PerRank {
				if r.Role == "slave" {
					edges += r.DeltaEdges
				}
			}
			if edges != st.Reconcile.DeltaEdges {
				t.Errorf("slaves shipped %d delta edges, master applied %d", edges, st.Reconcile.DeltaEdges)
			}
		}
	}

	for _, k := range shardKs(t) {
		t.Run(fmt.Sprintf("K%d", k), func(t *testing.T) {
			seq := base
			seq.MergeShards = k
			res, err := Run(b.ESTs, seq)
			if err != nil {
				t.Fatal(err)
			}
			t.Run("seq", func(t *testing.T) { check(t, res, k, false) })

			for _, mpCfg := range []mp.Config{
				mp.DefaultSimConfig(4),
				{Procs: 4, Mode: mp.ModeReal},
			} {
				mode := "real"
				if mpCfg.Mode == mp.ModeSim {
					mode = "sim"
				}
				t.Run(fmt.Sprintf("p4_%s", mode), func(t *testing.T) {
					cfg := base
					cfg.MergeShards = k
					cfg.MP = mpCfg
					res, err := Run(b.ESTs, cfg)
					if err != nil {
						t.Fatal(err)
					}
					check(t, res, k, true)
					hw := res.Stats.WorkBufHighWater
					if hw <= 0 || hw > cfg.WorkBufCap {
						t.Errorf("WorkBufHighWater %d outside (0, %d]", hw, cfg.WorkBufCap)
					}
				})
			}
		})
	}
}

// TestShardEquivalenceIncremental runs the PR 4 incremental split (cached
// prefix run, then a fresh-only run seeded with the prefix labels) entirely
// in sharded merge mode: the label seeding path (seedClusters) and the
// deferred batch-apply path must compose with cache reuse to reproduce the
// from-scratch legacy partition.
func TestShardEquivalenceIncremental(t *testing.T) {
	b := benchSet(t, 60, 4, 13)
	legacy := DefaultConfig(1)
	legacy.Window, legacy.Psi = 6, 18

	full, err := Run(b.ESTs, legacy)
	if err != nil {
		t.Fatal(err)
	}
	want := normalizeLabels(full.Labels)

	cfg := legacy
	cfg.MergeShards = 4

	cut := len(b.ESTs) - 2
	set, err := seq.NewSetS(b.ESTs[:cut])
	if err != nil {
		t.Fatal(err)
	}
	cache := NewBucketCache()

	c1 := cfg
	c1.Cache = cache
	r1, err := RunSet(set, c1)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := set.Append(b.ESTs[cut:])
	if err != nil {
		t.Fatal(err)
	}
	c2 := cfg
	c2.Cache = cache
	c2.FreshGen = gen
	c2.InitialLabels = r1.Labels
	r2, err := RunSet(set, c2)
	if err != nil {
		t.Fatal(err)
	}

	got := normalizeLabels(r2.Labels)
	if len(got) != len(want) {
		t.Fatalf("label count %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sharded incremental partition differs from from-scratch legacy at EST %d", i)
		}
	}
	if r2.NumClusters != full.NumClusters {
		t.Fatalf("clusters = %d, from-scratch = %d", r2.NumClusters, full.NumClusters)
	}
	if r2.Stats.Reconcile.Shards != 4 {
		t.Errorf("Reconcile.Shards = %d, want 4", r2.Stats.Reconcile.Shards)
	}
}

// TestShardEquivalenceLargeP proves the label contract holds far past the
// paper's p = 64: deterministic-sim runs at p = 256 and p = 1024 with K = 16
// must reproduce the single-master sequential partition exactly.
func TestShardEquivalenceLargeP(t *testing.T) {
	if testing.Short() {
		t.Skip("p=1024 sim run in -short mode")
	}
	b := benchSet(t, 120, 6, 9)
	base := DefaultConfig(1)
	base.Window, base.Psi = 6, 18

	ref, err := Run(b.ESTs, base)
	if err != nil {
		t.Fatal(err)
	}
	refLabels := normalizeLabels(ref.Labels)

	for _, p := range []int{256, 1024} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			cfg := base
			cfg.MergeShards = 16
			cfg.MP = mp.DefaultSimConfig(p)
			cfg.MP.MeasureCompute = false // deterministic virtual clock
			res, err := Run(b.ESTs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := normalizeLabels(res.Labels)
			for i := range got {
				if got[i] != refLabels[i] {
					t.Fatalf("partition differs from single-master at EST %d (p=%d)", i, p)
				}
			}
			if res.NumClusters != ref.NumClusters {
				t.Fatalf("clusters = %d, single-master = %d", res.NumClusters, ref.NumClusters)
			}
		})
	}
}
