package cluster

// Chaos matrix: run the full sim-mode pipeline under injected faults and
// assert cluster-equivalence with a failure-free run. CI runs one scenario
// per job via PACE_CHAOS_SCENARIO; with the variable unset every scenario
// runs (the local default).
//
// Drop/duplication are deliberately absent: the master–slave protocol
// assumes reliable delivery (as MPI does), so those faults are exercised at
// the transport level in internal/mp, not end-to-end.

import (
	"os"
	"testing"
	"time"

	"pace/internal/mp"
)

type chaosScenario struct {
	name  string
	fault mp.FaultPlan
	retry mp.RetryConfig
}

var chaosScenarios = []chaosScenario{
	{
		name:  "crash-early",
		fault: mp.FaultPlan{Seed: 11, CrashRank: 2, CrashAfter: 1, CrashTag: tagReport},
	},
	{
		name:  "crash-mid",
		fault: mp.FaultPlan{Seed: 12, CrashRank: 3, CrashAfter: 3, CrashTag: tagReport},
	},
	{
		name:  "crash-late",
		fault: mp.FaultPlan{Seed: 13, CrashRank: 1, CrashAfter: 8, CrashTag: tagReport},
	},
	{
		name:  "delay",
		fault: mp.FaultPlan{Seed: 14, DelayProb: 0.3, Delay: 2 * time.Millisecond},
	},
	{
		name:  "transient",
		fault: mp.FaultPlan{Seed: 15, TransientProb: 0.1, TransientMax: 25},
		retry: mp.RetryConfig{MaxAttempts: 6, BaseDelay: 10 * time.Microsecond, Seed: 15},
	},
}

func TestChaos(t *testing.T) {
	only := os.Getenv("PACE_CHAOS_SCENARIO")
	b := benchSet(t, 90, 6, 31)
	const p = 4

	base := DefaultConfig(p)
	base.Window, base.Psi = 6, 18
	base.BatchSize = 8
	base.WorkBufCap = 256
	base.MP = mp.DefaultSimConfig(p)

	baseline, err := Run(b.ESTs, base)
	if err != nil {
		t.Fatal(err)
	}
	want := normalizeLabels(baseline.Labels)

	ran := 0
	// Each scenario runs under both merge protocols: a crashed slave loses
	// its local union-find and unshipped delta edges together, so recovery
	// must regenerate and re-filter the lost range consistently — the
	// sharded leg (K = 4) proves that, including deaths mid-reconcile.
	for _, merge := range []struct {
		name   string
		shards int
	}{{"legacy", 0}, {"sharded", 4}} {
		t.Run(merge.name, func(t *testing.T) {
			for _, sc := range chaosScenarios {
				if only != "" && sc.name != only {
					continue
				}
				ran++
				t.Run(sc.name, func(t *testing.T) {
					cfg := base
					cfg.MergeShards = merge.shards
					fault := sc.fault
					cfg.MP.Fault = &fault
					cfg.MP.Retry = sc.retry
					res, err := Run(b.ESTs, cfg)
					if err != nil {
						t.Fatalf("pipeline did not survive %s: %v", sc.name, err)
					}
					got := normalizeLabels(res.Labels)
					diff := 0
					for i := range got {
						if got[i] != want[i] {
							diff++
						}
					}
					if diff != 0 {
						t.Errorf("partition differs from failure-free run at %d of %d ESTs", diff, len(got))
					}
					if sc.fault.CrashRank > 0 && res.Stats.Recovery.RanksLost != 1 {
						t.Errorf("RanksLost = %d, want 1", res.Stats.Recovery.RanksLost)
					}
					if merge.shards > 0 && res.Stats.Reconcile.Shards != merge.shards {
						t.Errorf("Reconcile.Shards = %d, want %d", res.Stats.Reconcile.Shards, merge.shards)
					}
				})
			}
		})
	}
	if ran == 0 {
		t.Fatalf("unknown PACE_CHAOS_SCENARIO %q", only)
	}
}
