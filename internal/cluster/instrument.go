package cluster

import (
	"fmt"
	"time"

	"pace/internal/pairgen"
	"pace/internal/telemetry"
)

// Metric families exported by the clustering engine. Each maps to a measured
// quantity of the paper's evaluation (§4): the pairs-by-MCS-length
// distribution behind Figure 7, the WORKBUF occupancy and grant-E series
// behind the §3.3 flow-control discussion, and the per-rank traffic behind
// the Table 3 load-balance story.
const (
	mPairsGenerated = "pace_pairs_generated_total"
	mPairsProcessed = "pace_pairs_processed_total"
	mPairsAccepted  = "pace_pairs_accepted_total"
	mPairsSkipped   = "pace_pairs_skipped_total"
	mMerges         = "pace_cluster_merges_total"
	mMCSLen         = "pace_pair_mcs_length"
	mBatchNs        = "pace_pairgen_batch_ns"
	mGrantE         = "pace_cluster_grant_e"
	mWorkbuf        = "pace_workbuf_occupancy"
	mWorkbufHW      = "pace_workbuf_high_water"
	mBucketSize     = "pace_suffix_bucket_size"
	mLoadSkew       = "pace_suffix_load_skew"

	mRanksLost        = "pace_recovery_ranks_lost_total"
	mGrantsReclaimed  = "pace_recovery_grants_reclaimed_total"
	mPairsRequeued    = "pace_recovery_pairs_requeued_total"
	mShardsReassigned = "pace_recovery_shards_reassigned_total"
	mSeedMerges       = "pace_resume_seeded_merges"
	mCkptWrites       = "pace_checkpoint_writes_total"
	mCkptBytes        = "pace_checkpoint_bytes"
	mCkptNs           = "pace_checkpoint_write_ns"

	mIncrBucketsRebuilt = "pace_incremental_buckets_rebuilt"
	mIncrBucketsReused  = "pace_incremental_buckets_reused"
	mIncrFreshPairs     = "pace_incremental_fresh_pairs_total"
	mIncrStale          = "pace_incremental_stale_suppressed_total"

	mReconShards     = "pace_reconcile_shards"
	mReconApplies    = "pace_reconcile_applies_total"
	mReconDeltaEdges = "pace_reconcile_delta_edges_total"
	mReconPhases     = "pace_reconcile_phases_total"
	mReconMaxPhases  = "pace_reconcile_max_phases"
	mReconTasks      = "pace_reconcile_tasks_total"
	mReconCross      = "pace_reconcile_cross_shard_total"
	mReconApplyNs    = "pace_reconcile_apply_ns"
	mMasterRecvWait  = "pace_master_recv_wait_ns"
	mMasterReconWait = "pace_master_reconcile_wait_ns"
)

// probes is the engine's live-instrumentation bundle: pointers resolved once
// from the registry so hot paths update atomics only. A nil *probes disables
// everything at the cost of one pointer test per site.
type probes struct {
	reg *telemetry.Registry

	generated *telemetry.Counter
	processed *telemetry.Counter
	accepted  *telemetry.Counter
	skipped   *telemetry.Counter
	merges    *telemetry.Counter

	mcsLen  *telemetry.Histogram
	batchNs *telemetry.Histogram

	grantE    *telemetry.Histogram
	workbuf   *telemetry.Gauge
	workbufHW *telemetry.Gauge

	bucketSize *telemetry.Histogram
	loadSkew   *telemetry.FloatGauge

	ranksLost        *telemetry.Counter
	grantsReclaimed  *telemetry.Counter
	pairsRequeued    *telemetry.Counter
	shardsReassigned *telemetry.Counter
	seedMerges       *telemetry.Gauge
	ckptWrites       *telemetry.Counter
	ckptBytes        *telemetry.Gauge
	ckptNs           *telemetry.Histogram

	incrRebuilt *telemetry.Gauge
	incrReused  *telemetry.Gauge
	incrFresh   *telemetry.Counter
	incrStale   *telemetry.Counter

	reconShards     *telemetry.Gauge
	reconApplies    *telemetry.Counter
	reconDeltaEdges *telemetry.Counter
	reconPhases     *telemetry.Counter
	reconMaxPhases  *telemetry.Gauge
	reconTasks      *telemetry.Counter
	reconCross      *telemetry.Counter
	reconApplyNs    *telemetry.Histogram
	masterRecvWait  *telemetry.Gauge
	masterReconWait *telemetry.Gauge
}

func newProbes(reg *telemetry.Registry) *probes {
	if reg == nil {
		return nil
	}
	reg.Help(mPairsGenerated, "Canonical promising pairs emitted by the generators.")
	reg.Help(mPairsProcessed, "Pair alignments computed.")
	reg.Help(mPairsAccepted, "Alignments passing the merge criteria.")
	reg.Help(mPairsSkipped, "Pairs pruned because their ESTs already shared a cluster.")
	reg.Help(mMerges, "Union operations that joined two clusters.")
	reg.Help(mMCSLen, "Maximal-common-substring length of generated pairs.")
	reg.Help(mBatchNs, "Latency of one pair-generation batch, nanoseconds.")
	reg.Help(mGrantE, "Flow-control grant E per master-slave interaction.")
	reg.Help(mWorkbuf, "Pairs currently buffered in the master's WORKBUF.")
	reg.Help(mWorkbufHW, "High-water mark of WORKBUF occupancy.")
	reg.Help(mBucketSize, "Suffixes per non-empty GST bucket.")
	reg.Help(mLoadSkew, "Redistribution skew: max worker load / mean worker load.")
	reg.Help(mRanksLost, "Slave ranks that died mid-protocol and were recovered from.")
	reg.Help(mGrantsReclaimed, "Outstanding WORKBUF grant slots reclaimed from dead slaves.")
	reg.Help(mPairsRequeued, "Dispatched pairs requeued to survivors after a slave death.")
	reg.Help(mShardsReassigned, "Bucket shards reassigned to survivors for rebuild.")
	reg.Help(mSeedMerges, "Union operations performed while seeding from initial labels.")
	reg.Help(mCkptWrites, "Checkpoint snapshots written.")
	reg.Help(mCkptBytes, "Size of the most recent checkpoint snapshot, bytes.")
	reg.Help(mCkptNs, "Checkpoint write latency, nanoseconds.")
	reg.Help(mIncrBucketsRebuilt, "GST buckets the latest incremental batch touched and rebuilt.")
	reg.Help(mIncrBucketsReused, "Non-empty GST buckets the latest incremental batch left untouched.")
	reg.Help(mIncrFreshPairs, "Promising pairs emitted by fresh-only incremental runs.")
	reg.Help(mIncrStale, "Old-by-old pairs suppressed inside rebuilt buckets (already judged).")
	reg.Help(mReconShards, "Root shards K of the sharded merge structure (0 = legacy single-master).")
	reg.Help(mReconApplies, "Merge-delta applications through the sharded structure.")
	reg.Help(mReconDeltaEdges, "Spanning edges received in merge deltas.")
	reg.Help(mReconPhases, "Reconcile rounds run across all delta applications.")
	reg.Help(mReconMaxPhases, "Deepest reconcile loop of any single delta application.")
	reg.Help(mReconTasks, "Merge tasks processed by the shards (delta edges plus forwards).")
	reg.Help(mReconCross, "Merge tasks forwarded between shards during reconciliation.")
	reg.Help(mReconApplyNs, "Latency of one merge-delta application, nanoseconds.")
	reg.Help(mMasterRecvWait, "Master time blocked in Recv waiting for slave reports, nanoseconds.")
	reg.Help(mMasterReconWait, "Master time applying merge deltas (not serving messages), nanoseconds.")
	return &probes{
		reg:        reg,
		generated:  reg.Counter(mPairsGenerated),
		processed:  reg.Counter(mPairsProcessed),
		accepted:   reg.Counter(mPairsAccepted),
		skipped:    reg.Counter(mPairsSkipped),
		merges:     reg.Counter(mMerges),
		mcsLen:     reg.Histogram(mMCSLen, []int64{12, 16, 20, 24, 28, 32, 40, 48, 64, 96, 128, 192, 256, 384, 512}),
		batchNs:    reg.Histogram(mBatchNs, telemetry.ExpBounds(1000, 4, 12)),
		grantE:     reg.Histogram(mGrantE, []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
		workbuf:    reg.Gauge(mWorkbuf),
		workbufHW:  reg.Gauge(mWorkbufHW),
		bucketSize: reg.Histogram(mBucketSize, telemetry.ExpBounds(1, 2, 20)),
		loadSkew:   reg.FloatGauge(mLoadSkew),

		ranksLost:        reg.Counter(mRanksLost),
		grantsReclaimed:  reg.Counter(mGrantsReclaimed),
		pairsRequeued:    reg.Counter(mPairsRequeued),
		shardsReassigned: reg.Counter(mShardsReassigned),
		seedMerges:       reg.Gauge(mSeedMerges),
		ckptWrites:       reg.Counter(mCkptWrites),
		ckptBytes:        reg.Gauge(mCkptBytes),
		ckptNs:           reg.Histogram(mCkptNs, telemetry.ExpBounds(1000, 4, 12)),

		incrRebuilt: reg.Gauge(mIncrBucketsRebuilt),
		incrReused:  reg.Gauge(mIncrBucketsReused),
		incrFresh:   reg.Counter(mIncrFreshPairs),
		incrStale:   reg.Counter(mIncrStale),

		reconShards:     reg.Gauge(mReconShards),
		reconApplies:    reg.Counter(mReconApplies),
		reconDeltaEdges: reg.Counter(mReconDeltaEdges),
		reconPhases:     reg.Counter(mReconPhases),
		reconMaxPhases:  reg.Gauge(mReconMaxPhases),
		reconTasks:      reg.Counter(mReconTasks),
		reconCross:      reg.Counter(mReconCross),
		reconApplyNs:    reg.Histogram(mReconApplyNs, telemetry.ExpBounds(1000, 4, 12)),
		masterRecvWait:  reg.Gauge(mMasterRecvWait),
		masterReconWait: reg.Gauge(mMasterReconWait),
	}
}

// recordReconcile publishes a run's sharded-merge tallies (set once at run
// end, outside the hot path; no-op for the legacy policy's zero stats).
func (pr *probes) recordReconcile(rs ReconcileStats) {
	if pr == nil || rs.Shards == 0 {
		return
	}
	pr.reconShards.Set(int64(rs.Shards))
	pr.reconApplies.Add(rs.Applies)
	pr.reconDeltaEdges.Add(rs.DeltaEdges)
	pr.reconPhases.Add(rs.Phases)
	pr.reconMaxPhases.SetMax(rs.MaxPhases)
	pr.reconTasks.Add(rs.Tasks)
	pr.reconCross.Add(rs.CrossShard)
}

// recordMasterWait publishes the master's idle breakdown.
func (pr *probes) recordMasterWait(recvWait, reconWait time.Duration) {
	if pr == nil {
		return
	}
	pr.masterRecvWait.Set(int64(recvWait))
	pr.masterReconWait.Set(int64(reconWait))
}

// recordIncremental publishes a batch run's incremental tallies (set once at
// run end, outside the hot path).
func (pr *probes) recordIncremental(inc IncrementalStats) {
	if pr == nil {
		return
	}
	pr.incrRebuilt.Set(inc.BucketsRebuilt)
	pr.incrReused.Set(inc.BucketsReused)
	pr.incrFresh.Add(inc.FreshPairs)
	pr.incrStale.Add(inc.StaleSuppressed)
}

// observer builds the pairgen hooks backed by this probe set, timing
// batches against clk (the engine's time base — virtual on ranks, wall on
// the sequential path; nil falls back to wall time inside pairgen).
func (pr *probes) observer(clk func() time.Duration) pairgen.Observer {
	if pr == nil {
		return pairgen.Observer{}
	}
	return pairgen.Observer{MCSLen: pr.mcsLen, BatchNs: pr.batchNs, Clock: clk, Generated: pr.generated}
}

// observeBuckets records the non-empty bucket sizes and the redistribution
// skew of the global histogram (one-time, on the master).
func (pr *probes) observeBuckets(global []int64, loads []int64) {
	if pr == nil {
		return
	}
	for _, n := range global {
		if n > 0 {
			pr.bucketSize.Observe(n)
		}
	}
	pr.loadSkew.Set(skewOf(loads))
}

// recordComm publishes a rank's final communication stats as per-rank
// gauges (set once at run end, outside the hot path).
func (pr *probes) recordComm(rs RankStats) {
	if pr == nil {
		return
	}
	l := telemetry.Rank(rs.Rank)
	pr.reg.Gauge("pace_mp_msgs_sent", l).Set(rs.MsgsSent)
	pr.reg.Gauge("pace_mp_bytes_sent", l).Set(rs.BytesSent)
	pr.reg.Gauge("pace_mp_msgs_recv", l).Set(rs.MsgsRecv)
	pr.reg.Gauge("pace_mp_bytes_recv", l).Set(rs.BytesRecv)
	pr.reg.Gauge("pace_mp_recv_wait_ns", l).Set(int64(rs.RecvWait))
	pr.reg.Gauge("pace_mp_collective_ops", l).Set(rs.CollectiveOps)
	pr.reg.Gauge("pace_mp_collective_ns", l).Set(int64(rs.CollectiveTime))
}

// skewOf duplicates suffix.Skew's formula over a loads slice already in
// hand; kept here to avoid re-deriving loads at the call site.
func skewOf(loads []int64) float64 {
	var total, maxLoad int64
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total == 0 || len(loads) == 0 {
		return 0
	}
	return float64(maxLoad) / (float64(total) / float64(len(loads)))
}

// traceThreadName labels a rank's trace timeline (nil-safe) on the run's
// trace process lane.
func traceThreadName(tw *telemetry.TraceWriter, pid, rank int, role string) {
	if tw == nil {
		return
	}
	tw.ThreadName(pid, rank, fmt.Sprintf("rank %d (%s)", rank, role))
}
