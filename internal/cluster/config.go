// Package cluster is the PaCE clustering engine (paper §3.3): a master rank
// maintains the EST clusters in a union-find structure and a bounded work
// buffer of promising pairs awaiting alignment; slave ranks build their
// share of the distributed generalized suffix tree, generate promising pairs
// on demand in decreasing order of maximal common substring length, and
// compute anchored banded alignments on the batches the master dispatches.
// Flow control follows the paper: the master asks each slave for
// E = min(α·δ·batchsize, nfree/p) new pairs per interaction, parks slaves on
// a wait queue when no work is available, and slaves hide latency by keeping
// a NEXTWORK batch in hand and by generating pairs while waiting for the
// master's reply.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"pace/internal/align"
	"pace/internal/mp"
	"pace/internal/seq"
	"pace/internal/telemetry"
	"pace/internal/vfs"
)

// Config parameterizes a clustering run.
type Config struct {
	// Window is the bucket-prefix width w for GST construction
	// (paper: 8). Must not exceed Psi.
	Window int
	// Psi is the promising-pair threshold ψ: the minimum maximal-common-
	// substring length for a pair to be generated.
	Psi int
	// BatchSize is the number of pairs dispatched to a slave per
	// interaction (paper: 40–60 optimal).
	BatchSize int
	// WorkBufCap bounds the master's WORKBUF queue.
	WorkBufCap int
	// PairBufCap bounds a slave's PAIRBUF of generated-but-unreported
	// pairs; 0 derives 4×BatchSize.
	PairBufCap int
	// GenChunk is how many pairs a slave generates per probe of the
	// master's reply while overlapping generation with waiting.
	GenChunk int
	// AlphaMax caps the flow-control redundancy factor α. α estimates how
	// many reported pairs are needed per pair that survives same-cluster
	// filtering; when an entire incoming batch is redundant the ratio is
	// undefined and, uncapped, a raw batch length would inflate the grant
	// E unboundedly. 0 derives the default of 4.
	AlphaMax float64

	// Scoring and Criteria govern pairwise alignment and acceptance;
	// Band is the banded-extension half-width.
	Scoring  align.Scoring
	Criteria align.Criteria
	Band     int

	// SkipSameCluster enables the paper's pruning: a pair whose ESTs
	// already share a cluster is neither queued nor aligned. Disabling it
	// is an ablation knob.
	SkipSameCluster bool

	// MergeShards selects the merge protocol. 0 (the default) is the
	// paper's single-master path: slaves report a verdict per processed
	// pair and the master serializes every accepted pair through one
	// union-find. K >= 1 switches to sharded delta reconciliation: slaves
	// filter accepted pairs through a local union-find and report only the
	// spanning edges, and the master applies them through a K-way
	// root-sharded union-find reconciled in bounded phases (see merge.go
	// and DESIGN.md §15). The final labels are identical across all values;
	// only wire traffic, counters, and the master's time breakdown change.
	MergeShards int

	// MP configures the message-passing machine (rank count, real vs
	// simulated execution, network model). MP.Procs == 1 selects the
	// sequential in-process engine.
	MP mp.Config

	// Ctx, when non-nil, bounds the run: the engine polls it at phase
	// boundaries, once per batch in the sequential loop, and once per
	// slave report in the master's protocol loop, and aborts with an error
	// wrapping Ctx.Err() when it is done. Polling (rather than selecting
	// on Done) keeps the engine free of extra goroutines and lets tests
	// trip cancellation at a deterministic poll count. nil means the run
	// cannot be canceled (the pre-server behavior).
	Ctx context.Context

	// InitialLabels optionally seeds the cluster structure with a prior
	// partition over a prefix of the ESTs (incremental re-clustering,
	// the paper's future-work item): ESTs sharing a non-negative label
	// start merged, so pairs inside old clusters are skipped rather than
	// re-aligned. Entries < 0 are unconstrained.
	InitialLabels []int32

	// FreshGen, when > 0, restricts the run to the pairs a new batch can
	// affect: only strings of generation >= FreshGen (see seq.SetS.Append)
	// count as fresh, buckets no fresh suffix falls into are skipped
	// entirely, and old×old pairs inside rebuilt buckets are suppressed.
	// A pair's maximal common substring is a property of the two strings
	// alone, so every suppressed pair was generated — and judged — by the
	// run that introduced the younger of its strings; with InitialLabels
	// seeding that run's partition, the final clusters equal a from-scratch
	// run over the whole set. 0 (the default) clusters everything.
	FreshGen seq.Gen

	// Cache, when non-nil, carries per-bucket GST state across the
	// sequential runs of a session: suffix lists grow in place as batches
	// arrive and untouched subtrees are reused verbatim, so batch k+1 pays
	// only for the strings and buckets it touches. Sequential engine only
	// (MP.Procs == 1); the parallel engine re-collects per run.
	Cache *BucketCache

	// Recover enables slave-failure recovery: when a slave rank dies
	// mid-protocol the master reclaims its outstanding grants, requeues its
	// in-flight batches, and reassigns its bucket shards to the surviving
	// slaves, which rebuild the partitions locally and regenerate the
	// remaining pairs. The final clusters are equivalent to a failure-free
	// run because re-aligned pairs merge idempotently. Disabled, any rank
	// failure aborts the run (the seed behavior).
	Recover bool
	// SlaveTimeout bounds how long the master waits for the next slave
	// report; on expiry the run aborts with a descriptive error instead of
	// hanging on a silently-wedged (rather than crashed) slave. 0 disables
	// the watchdog.
	SlaveTimeout time.Duration
	// Checkpoint configures periodic snapshots of the master's clustering
	// state; see CheckpointConfig. A zero value disables checkpointing.
	Checkpoint CheckpointConfig

	// Metrics, when non-nil, receives live instrumentation from every
	// pipeline layer: pair counters, the MCS-length and grant-E
	// distributions, WORKBUF occupancy, bucket sizes, redistribution skew,
	// and per-rank traffic. nil (the default) disables the probes at the
	// cost of one pointer test per site.
	Metrics *telemetry.Registry
	// Trace, when non-nil, receives Chrome trace events: one timeline per
	// rank (pid TracePID, tid = rank) with phase spans and a WORKBUF
	// occupancy counter series. Virtual timestamps under the simulated
	// transport.
	Trace *telemetry.TraceWriter
	// TracePID is the trace process lane the run's events are emitted on.
	// A single run keeps the default 0; a server hosting many concurrent
	// sessions gives each its own lane so their per-rank timelines do not
	// interleave in the viewer.
	TracePID int
	// TraceProcess names the TracePID lane in the viewer; "" means
	// "pace pipeline".
	TraceProcess string
	// Log, when non-nil, receives structured lifecycle events: checkpoint
	// writes, slave-failure recovery, resume seeding. nil discards them.
	// The handler must stamp records from an injected telemetry.Clock
	// (telemetry.NewLogger), never the wall clock — the walltime analyzer
	// enforces this package's determinism contract.
	Log *slog.Logger
}

// logger returns the configured logger or a disabled one, so call sites
// never nil-check and disabled logging costs one dispatch per event.
func (c Config) logger() *slog.Logger {
	if c.Log != nil {
		return c.Log
	}
	return telemetry.NopLogger()
}

// ctx returns the run's context, defaulting to the background context.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// ctxErr polls the run's context; a non-nil return means the run must
// abort now. The error wraps Ctx.Err(), so callers can errors.Is against
// context.Canceled / context.DeadlineExceeded.
func (c Config) ctxErr() error {
	if err := c.ctx().Err(); err != nil {
		return fmt.Errorf("cluster: run canceled: %w", err)
	}
	return nil
}

// traceProcess returns the viewer name of the run's trace lane.
func (c Config) traceProcess() string {
	if c.TraceProcess != "" {
		return c.TraceProcess
	}
	return "pace pipeline"
}

// DefaultConfig mirrors the paper's operating point on p ranks.
func DefaultConfig(p int) Config {
	return Config{
		Window:          8,
		Psi:             20,
		BatchSize:       60,
		WorkBufCap:      1 << 14,
		GenChunk:        32,
		Scoring:         align.DefaultScoring(),
		Criteria:        align.DefaultCriteria(),
		Band:            12,
		SkipSameCluster: true,
		Recover:         true,
		MP:              mp.Config{Procs: p, Mode: mp.ModeReal},
	}
}

// CheckpointConfig governs checkpoint/restart.
type CheckpointConfig struct {
	// Dir is where snapshots land (one file, CheckpointFile, replaced
	// atomically). Empty disables checkpointing.
	Dir string
	// Interval is the minimum wall-clock time between snapshots; 0 derives
	// 30s. Ignored when EveryReports is set.
	Interval time.Duration
	// EveryReports snapshots every N master interactions instead of on a
	// timer — a deterministic cadence for tests. 0 selects time-based.
	EveryReports int
	// FS is the filesystem seam snapshots are written through; nil means
	// the real filesystem. Servers thread their (possibly fault-injecting)
	// vfs.FS here so the periodic checkpoint shares the session's chaos
	// plan.
	FS vfs.FS
}

func (c CheckpointConfig) fs() vfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return vfs.OS{}
}

func (c CheckpointConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 30 * time.Second
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Window < 1 || c.Window > 12 {
		return fmt.Errorf("cluster: Window %d out of [1,12]", c.Window)
	}
	if c.Psi < c.Window {
		return fmt.Errorf("cluster: Psi %d < Window %d would lose pairs with short anchors", c.Psi, c.Window)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("cluster: BatchSize must be >= 1")
	}
	if c.WorkBufCap < c.BatchSize {
		return fmt.Errorf("cluster: WorkBufCap %d < BatchSize %d", c.WorkBufCap, c.BatchSize)
	}
	if c.WorkBufCap < c.MP.Procs {
		// The per-slave bootstrap grant is ~WorkBufCap/p; below p ranks the
		// never-starve floor of one pair per slave could breach the bound.
		return fmt.Errorf("cluster: WorkBufCap %d < Procs %d breaks the WORKBUF bound", c.WorkBufCap, c.MP.Procs)
	}
	if c.GenChunk < 1 {
		return fmt.Errorf("cluster: GenChunk must be >= 1")
	}
	if c.AlphaMax < 0 {
		return fmt.Errorf("cluster: AlphaMax must be >= 0 (0 selects the default)")
	}
	if c.SlaveTimeout < 0 {
		return fmt.Errorf("cluster: SlaveTimeout must be >= 0")
	}
	if c.MergeShards < 0 {
		return fmt.Errorf("cluster: MergeShards must be >= 0 (0 selects the single-master merge path)")
	}
	if c.Checkpoint.Interval < 0 || c.Checkpoint.EveryReports < 0 {
		return fmt.Errorf("cluster: checkpoint cadence must be >= 0")
	}
	if c.Band < 1 {
		return fmt.Errorf("cluster: Band must be >= 1")
	}
	if c.FreshGen < 0 {
		return fmt.Errorf("cluster: FreshGen must be >= 0")
	}
	if c.Cache != nil && c.MP.Procs != 1 {
		return fmt.Errorf("cluster: Cache requires the sequential engine (MP.Procs == 1)")
	}
	if err := c.Scoring.Validate(); err != nil {
		return err
	}
	if c.MP.Procs < 1 {
		return fmt.Errorf("cluster: MP.Procs must be >= 1")
	}
	return nil
}

// pairBufCap resolves the PAIRBUF capacity.
func (c Config) pairBufCap() int {
	if c.PairBufCap > 0 {
		return c.PairBufCap
	}
	return 4 * c.BatchSize
}

// alphaMax resolves the α cap.
func (c Config) alphaMax() float64 {
	if c.AlphaMax > 0 {
		return c.AlphaMax
	}
	return 4
}

// bootstrapGrant is the size of the unsolicited pair batch a slave ships
// with its very first report. It is the implicit initial grant E charged
// against the WORKBUF: capping it at WorkBufCap/p keeps the sum over the
// p-1 slaves under WorkBufCap before the master has said a single word.
func bootstrapGrant(cfg Config, p int) int {
	g := cfg.WorkBufCap / p
	if g > cfg.BatchSize {
		g = cfg.BatchSize
	}
	if g < 1 {
		g = 1
	}
	return g
}

// PhaseTimes is the per-component breakdown of the paper's Table 3. Each
// entry is the maximum over ranks of the time that rank spent in the phase.
type PhaseTimes struct {
	Partition time.Duration // bucketing histogram + assignment + collection
	Construct time.Duration // GST subtree construction
	Sort      time.Duration // ordering nodes by decreasing string-depth
	Align     time.Duration // pairwise alignment compute
	Total     time.Duration // end-to-end (max final rank clock)
}

// Stats aggregates a run's counters (the series of Figure 7 among them).
type Stats struct {
	// PairsGenerated counts canonical promising pairs produced by the
	// generators.
	PairsGenerated int64
	// PairsProcessed counts alignments actually computed.
	PairsProcessed int64
	// PairsAccepted counts alignments passing the merge criteria.
	PairsAccepted int64
	// PairsSkipped counts pairs pruned because their ESTs already shared
	// a cluster (at enqueue or dispatch time).
	PairsSkipped int64
	// Merges counts union operations that actually joined two clusters.
	Merges int64
	// MasterBusy is the time the master spent processing messages, on the
	// master rank's clock — virtual time under simulation, wall time on the
	// real transport (the paper reports it stays under 2% of the total).
	MasterBusy time.Duration
	// WorkBufHighWater is the maximum number of pairs the master's WORKBUF
	// ever held. The flow-control invariant asserts it never exceeds
	// Config.WorkBufCap: the grant formula E = min(α·δ·batchsize, nfree/p)
	// charges every outstanding grant (including the slaves' bootstrap
	// batches) against the free space before issuing a new one.
	WorkBufHighWater int
	// MasterIdle is the time the master spent NOT serving slave protocol
	// messages: MasterRecvWait + MasterReconcileWait. It used to alias the
	// recv-wait alone, which silently folded merge-application time into
	// "busy"; the split keeps the paper's not-a-bottleneck evidence honest
	// when the merge path changes.
	MasterIdle time.Duration
	// MasterRecvWait is the time the master's dispatch loop spent blocked
	// in Recv waiting for slave reports. Prologue collective waits (bucket
	// count exchange, startup barriers) are excluded: they are identical
	// under every merge protocol and would drown the dispatch-loop signal
	// at large p.
	MasterRecvWait time.Duration
	// MasterReconcileWait is the time the master spent applying merge
	// deltas through the sharded structure (Config.MergeShards >= 1).
	// Always zero on the legacy single-master path, whose per-result
	// unions are counted in MasterBusy as before.
	MasterReconcileWait time.Duration
	// Phases is the per-phase breakdown.
	Phases PhaseTimes
	// PerRank is the per-rank load/communication breakdown behind the
	// paper's Table 3, gathered from every rank at shutdown and sorted by
	// rank. Sequential runs get a single "seq" row so report code need not
	// special-case Procs == 1. Ranks that died mid-run appear with role
	// "lost" and zeroed counters.
	PerRank []RankStats
	// Recovery tallies fault-recovery and checkpoint activity.
	Recovery RecoveryStats
	// Incremental tallies batch-ingest activity; zero unless Config.FreshGen
	// or Config.Cache was set.
	Incremental IncrementalStats
	// Reconcile tallies the sharded merge path; zero unless
	// Config.MergeShards >= 1.
	Reconcile ReconcileStats
}

// ReconcileStats counts what the sharded merge path (Config.MergeShards >= 1)
// did during a run: how many deltas were applied, how much reconciliation
// traffic crossed shard boundaries, and how deep the phase loop went.
type ReconcileStats struct {
	// Shards is the configured shard count K.
	Shards int
	// Applies is the number of delta applications (one per delta-carrying
	// report on the master; one per batch in the sequential engine).
	Applies int64
	// DeltaEdges is the total number of spanning edges received in deltas —
	// the entire merge traffic under the delta protocol (compare
	// PairsProcessed, the legacy protocol's per-verdict traffic).
	DeltaEdges int64
	// Phases is the total number of reconcile rounds across all applies.
	Phases int64
	// MaxPhases is the deepest reconcile loop of any single apply — the
	// observed bound on the phase count.
	MaxPhases int64
	// Tasks is the total number of merge tasks processed (edges plus
	// cross-shard forwards).
	Tasks int64
	// CrossShard is the number of tasks forwarded between shards.
	CrossShard int64
	// PhaseTasks is the per-round task count summed over applies:
	// PhaseTasks[i] tasks were processed in round i+1 of their apply. The
	// sharp decay from PhaseTasks[0] is the fixpoint argument made visible.
	PhaseTasks []int64
}

// IncrementalStats counts what the incremental machinery saved and did
// during one batch run (Config.FreshGen > 0 or Config.Cache != nil).
type IncrementalStats struct {
	// BucketsRebuilt is the number of GST buckets the batch touched — the
	// ones whose subtrees were (re)built this run.
	BucketsRebuilt int64
	// BucketsReused is the number of non-empty buckets no fresh suffix fell
	// into: their subtrees (and every pair inside them) carried over from
	// earlier generations untouched.
	BucketsReused int64
	// FreshPairs is the number of promising pairs the restricted generators
	// emitted — the work actually attributable to the batch. Equals
	// Stats.PairsGenerated on an incremental run.
	FreshPairs int64
	// StaleSuppressed counts old×old pairs individually skipped inside
	// rebuilt buckets (wholesale group skips are not enumerable and not
	// counted).
	StaleSuppressed int64
}

// RecoveryStats counts what the fault-tolerance machinery did during a run.
type RecoveryStats struct {
	// RanksLost is the number of slave ranks that died mid-protocol and
	// were recovered from.
	RanksLost int64
	// GrantsReclaimed counts outstanding WORKBUF grant slots returned by
	// dead slaves.
	GrantsReclaimed int64
	// PairsRequeued counts dispatched-but-unacknowledged pairs requeued to
	// surviving slaves.
	PairsRequeued int64
	// ShardsReassigned counts bucket shards handed to survivors for rebuild
	// and pair regeneration.
	ShardsReassigned int64
	// SeedMerges is the number of union operations performed while seeding
	// the cluster structure from InitialLabels (e.g. a resumed checkpoint);
	// a resumed run's Merges should equal a failure-free run's Merges minus
	// this.
	SeedMerges int64
	// Checkpoints / CheckpointBytes / CheckpointTime tally snapshot writes.
	Checkpoints     int64
	CheckpointBytes int64
	CheckpointTime  time.Duration
}

// RankStats is one rank's row of the load-balance table: where its time went
// and how much it communicated. Comm counters snapshot the rank's
// mp.CommStats just before the final gather.
type RankStats struct {
	Rank int
	// Role is "master", "slave", or "seq".
	Role string

	Partition time.Duration
	Construct time.Duration
	Sort      time.Duration
	Align     time.Duration
	Total     time.Duration

	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
	// RecvWait is time blocked in Recv (virtual under the simulator).
	RecvWait time.Duration
	// CollectiveOps / CollectiveTime tally collective calls and their
	// latency (composites count constituents; see mp.CollectiveStats).
	CollectiveOps  int64
	CollectiveTime time.Duration

	PairsGenerated int64
	PairsProcessed int64
	PairsAccepted  int64
	// Busy is meaningful on the master only: time spent processing
	// messages rather than waiting.
	Busy time.Duration
	// DeltaEdges is the number of merge-delta spanning edges the rank
	// shipped (sharded merge protocol; zero otherwise).
	DeltaEdges int64
}

// Result is the outcome of a clustering run.
type Result struct {
	// Labels assigns each EST a dense cluster label.
	Labels []int32
	// NumClusters is the number of distinct clusters.
	NumClusters int
	// Stats carries counters and timings.
	Stats Stats
}
