package cluster

import (
	"time"

	"pace/internal/align"
	"pace/internal/mp"
	"pace/internal/pairgen"
	"pace/internal/seq"
	"pace/internal/suffix"
)

// The slave ranks (paper §3.1, §3.3): each builds the GST subtrees of its
// bucket share, generates promising pairs on demand in decreasing order of
// maximal common substring length, and aligns the batches the master
// dispatches — overlapping generation with the wait for the master's reply.
// Under the sharded merge protocol a slave additionally filters its accepted
// pairs through a local union-find (merge.go's deltaLog) and ships spanning
// edges instead of per-pair verdicts.

// exchangeSuffixes is the redistribution step of §3.1: each slave scans its
// own share of the strings, groups every suffix by its bucket's owner, and
// ships the (bucket, string, position) triples to that owner. Each slave
// ends up holding exactly the suffixes of its buckets while having scanned
// only 1/(p-1) of the input.
func exchangeSuffixes(set *seq.SetS, cfg Config, c *mp.Comm, owner []int32) (map[int][]suffix.SuffixRef, error) {
	slaves := c.Size() - 1
	me := c.Rank() - 1
	lo, hi := shareRange(me, slaves, set.NumStrings())
	perDest := make([][]uint32, slaves)
	for id := lo; id < hi; id++ {
		suffix.BucketEach(set.Str(id), cfg.Window, func(b int, pos int32) {
			o := owner[b]
			if o >= 0 {
				perDest[o] = append(perDest[o], uint32(b), uint32(id), uint32(pos))
			}
		})
	}
	byBucket := make(map[int][]suffix.SuffixRef)
	absorb := func(flat []uint32) {
		for i := 0; i+2 < len(flat); i += 3 {
			b := int(flat[i])
			byBucket[b] = append(byBucket[b], suffix.SuffixRef{
				SID: seq.StringID(flat[i+1]),
				Pos: int32(flat[i+2]),
			})
		}
	}
	var wire []byte // reused across destinations; mp copies on send
	for s := 0; s < slaves; s++ {
		if s == me {
			continue
		}
		wire = appendU32s(wire[:0], perDest[s])
		if err := c.Send(s+1, tagSuffix, wire); err != nil {
			return nil, err
		}
	}
	// Absorb in fixed source order so bucket contents are deterministic.
	for s := 0; s < slaves; s++ {
		if s == me {
			absorb(perDest[s])
			continue
		}
		m, err := c.Recv(s+1, tagSuffix)
		if err != nil {
			return nil, err
		}
		flat, err := decodeU32s(m.Data)
		if err != nil {
			return nil, err
		}
		absorb(flat)
	}
	return byBucket, nil
}

func runSlave(set *seq.SetS, cfg Config, c *mp.Comm) error {
	pr := newProbes(cfg.Metrics)
	tw := cfg.Trace
	traceThreadName(tw, cfg.TracePID, c.Rank(), "slave")
	if err := cfg.ctxErr(); err != nil {
		return err
	}
	tStart := c.Elapsed()
	owner, _, err := prologue(set, cfg, c)
	if err != nil {
		return err
	}
	byBucket, err := exchangeSuffixes(set, cfg, c, owner)
	if err != nil {
		return err
	}
	tPart := c.Elapsed() - tStart
	if tw != nil {
		tw.Span(cfg.TracePID, c.Rank(), "partition", "gst", tStart, tPart)
	}

	t1 := c.Elapsed()
	var forest []*suffix.Tree
	if len(byBucket) > 0 {
		forest, err = suffix.BuildForest(set, byBucket, cfg.Window)
		if err != nil {
			return err
		}
	}
	tConstruct := c.Elapsed() - t1
	if tw != nil {
		tw.Span(cfg.TracePID, c.Rank(), "construct", "gst", t1, tConstruct)
	}

	t2 := c.Elapsed()
	gen0, err := pairgen.NewFresh(set, forest, cfg.Psi, cfg.FreshGen)
	if err != nil {
		return err
	}
	gen0.Observe(pr.observer(c.Elapsed))
	// The chain starts with this slave's own partition; recovery appends
	// rebuilt dead-slave shards to it.
	chain := &genChain{gens: []*pairgen.Generator{gen0}}
	tSort := c.Elapsed() - t2
	if tw != nil {
		tw.Span(cfg.TracePID, c.Rank(), "sort", "pairgen", t2, tSort)
	}

	ext, err := align.NewExtender(cfg.Scoring, cfg.Band)
	if err != nil {
		return err
	}

	var alignTime time.Duration
	var processed, accepted int64
	alignBatch := func(pairs []pairgen.Pair) ([]alignResult, error) {
		tA := c.Elapsed()
		out, err := alignPairs(set, ext, cfg, pairs)
		dA := c.Elapsed() - tA
		alignTime += dA
		processed += int64(len(pairs))
		var acc int64
		for _, r := range out {
			if r.accepted {
				acc++
			}
		}
		accepted += acc
		if pr != nil {
			pr.processed.Add(int64(len(pairs)))
			pr.accepted.Add(acc)
		}
		if tw != nil && len(pairs) > 0 {
			tw.Span(cfg.TracePID, c.Rank(), "align", "cluster", tA, dA)
		}
		return out, err
	}

	// Under the delta protocol, verdicts fold into the local merge log and
	// reports ship only the spanning edges; makeReport centralizes the
	// per-protocol report assembly.
	var dl *deltaLog
	if cfg.MergeShards > 0 {
		dl = newDeltaLog(set.NumESTs())
	}
	var deltaShipped int64
	makeReport := func(results []alignResult, rep report) report {
		if dl == nil {
			rep.results = results
			return rep
		}
		rep.hasDelta = true
		rep.deltaProcessed = int64(len(results))
		rep.deltaAccepted = dl.absorb(results)
		rep.delta.Edges = dl.take()
		deltaShipped += int64(len(rep.delta.Edges))
		return rep
	}

	// Reports are encoded into one reusable buffer; safe under the mp
	// copy-on-send ownership contract.
	var wire []byte
	sendReport := func(rep report) error {
		wire = appendReport(wire[:0], rep)
		return c.Send(0, tagReport, wire)
	}

	// Bootstrap: three initial batches — align the first, report its
	// results together with the third, keep the second as NEXTWORK. The
	// unsolicited pairs are capped at the implicit bootstrap grant the
	// master charged against the WORKBUF for this slave.
	b1 := chain.Next(nil, cfg.BatchSize)
	b2 := chain.Next(nil, cfg.BatchSize)
	pairbuf := chain.Next(nil, bootstrapGrant(cfg, c.Size()))
	results, err := alignBatch(b1)
	if err != nil {
		return err
	}
	next := b2
	first := makeReport(results, report{
		pairs:       pairbuf,
		passive:     !chain.Remaining(),
		hasNextWork: len(next) > 0,
	})
	pairbuf = nil
	if err := sendReport(first); err != nil {
		return err
	}

	bufCap := cfg.pairBufCap()
	nextFromMaster := false
	for {
		// Phase-boundary cancellation poll; the master polls too, so this
		// only shortens how long a slave keeps aligning after the abort.
		if err := cfg.ctxErr(); err != nil {
			return err
		}
		// ackThis: the batch about to be aligned came from the master, so
		// the report carrying its results retires it from the master's
		// in-flight FIFO (bootstrap batches are self-generated and must
		// not acknowledge anything).
		ackThis := nextFromMaster
		results, err = alignBatch(next)
		if err != nil {
			return err
		}
		next = nil
		nextFromMaster = false

		// Overlap waiting with pair generation (paper: the slave is
		// never idle while the master prepares its reply).
		for {
			if err := cfg.ctxErr(); err != nil {
				return err
			}
			ok, err := c.Probe(0, tagWork)
			if err != nil {
				return err
			}
			if ok {
				break
			}
			if !chain.Remaining() || len(pairbuf) >= bufCap {
				break
			}
			chunk := min(cfg.GenChunk, bufCap-len(pairbuf))
			pairbuf = chain.Next(pairbuf, chunk)
		}
		m, err := c.Recv(0, tagWork)
		if err != nil {
			return err
		}
		w, err := decodeWork(m.Data)
		if err != nil {
			return err
		}
		if w.stop {
			break
		}

		// Rebuild any dead slave's shards assigned to us: every rank
		// holds the full string set, so a survivor can rescan it, keep
		// exactly the shard's buckets, and chain a fresh generator over
		// them. Regenerated pairs may duplicate work the dead slave
		// already reported; the master's same-cluster filter and the
		// idempotence of merges absorb that.
		for _, sh := range w.recover {
			tR := c.Elapsed()
			g, err := rebuildShard(set, cfg, owner, sh)
			if err != nil {
				return err
			}
			g.Observe(pr.observer(c.Elapsed))
			chain.add(g)
			dR := c.Elapsed() - tR
			tConstruct += dR
			if tw != nil {
				tw.Span(cfg.TracePID, c.Rank(), "rebuild", "recovery", tR, dR)
			}
		}

		// Top PAIRBUF up to the requested E.
		for len(pairbuf) < int(w.e) && chain.Remaining() {
			pairbuf = chain.Next(pairbuf, int(w.e)-len(pairbuf))
		}
		p := min(int(w.e), len(pairbuf))
		outPairs := pairbuf[:p:p]
		pairbuf = pairbuf[p:]
		next = w.pairs
		nextFromMaster = len(w.pairs) > 0

		rep := makeReport(results, report{
			pairs:       outPairs,
			passive:     !chain.Remaining() && len(pairbuf) == 0,
			hasNextWork: len(next) > 0,
			ackWork:     ackThis,
		})
		if err := sendReport(rep); err != nil {
			return err
		}
	}

	total := c.Elapsed() - tStart
	mine := phaseReport{
		partitionNs: int64(tPart),
		constructNs: int64(tConstruct),
		sortNs:      int64(tSort),
		alignNs:     int64(alignTime),
		totalNs:     int64(total),
		generated:   chain.Generated(),
		processed:   processed,
		accepted:    accepted,
		stale:       chain.Stale(),
		deltaEdges:  deltaShipped,
	}
	fillComm(&mine, c.Stats())
	// Point-to-point phase report: a collective here would wedge the
	// survivors whenever a peer died mid-run.
	return c.Send(0, tagPhase, encodePhase(mine))
}

// genChain concatenates pair generators: the slave's own partition plus any
// dead-slave shards it rebuilt during recovery.
type genChain struct {
	gens []*pairgen.Generator
}

func (g *genChain) add(gen *pairgen.Generator) { g.gens = append(g.gens, gen) }

// Next appends up to max more pairs to dst, draining the generators in
// order.
func (g *genChain) Next(dst []pairgen.Pair, max int) []pairgen.Pair {
	want := len(dst) + max
	for _, gen := range g.gens {
		if len(dst) >= want {
			break
		}
		dst = gen.Next(dst, want-len(dst))
	}
	return dst
}

// Remaining reports whether any chained generator can still produce pairs.
func (g *genChain) Remaining() bool {
	for _, gen := range g.gens {
		if gen.Remaining() {
			return true
		}
	}
	return false
}

// Generated sums the pairs produced across the chain.
func (g *genChain) Generated() int64 {
	var n int64
	for _, gen := range g.gens {
		n += gen.Stats().Generated
	}
	return n
}

// Stale sums the old×old pairs the chain's generators suppressed in
// fresh-only mode.
func (g *genChain) Stale() int64 {
	var n int64
	for _, gen := range g.gens {
		n += gen.Stats().DiscardedStale
	}
	return n
}

// rebuildShard reconstructs a dead slave's bucket shard on a survivor. The
// rescan visits every string (ascending id, ascending position — the same
// order exchangeSuffixes produces), so the rebuilt buckets and therefore the
// regenerated pair stream are identical to what the dead slave held.
func rebuildShard(set *seq.SetS, cfg Config, owner []int32, sh shard) (*pairgen.Generator, error) {
	byBucket := make(map[int][]suffix.SuffixRef)
	n := seq.StringID(set.NumStrings())
	for id := seq.StringID(0); id < n; id++ {
		suffix.BucketEach(set.Str(id), cfg.Window, func(b int, pos int32) {
			if owner[b] == sh.part && int32(b)%sh.of == sh.idx {
				byBucket[b] = append(byBucket[b], suffix.SuffixRef{SID: id, Pos: pos})
			}
		})
	}
	var forest []*suffix.Tree
	if len(byBucket) > 0 {
		var err error
		forest, err = suffix.BuildForest(set, byBucket, cfg.Window)
		if err != nil {
			return nil, err
		}
	}
	// Fresh-only mode must survive recovery: a rebuilt shard regenerates the
	// dead slave's restricted pair stream, not the full one.
	return pairgen.NewFresh(set, forest, cfg.Psi, cfg.FreshGen)
}
