package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"pace/internal/unionfind"
	"pace/internal/vfs"
)

// Checkpoint is a versioned snapshot of the master's clustering state: the
// union-find forest plus the pair high-water counters. A killed run restarts
// from it by seeding the new run's initial labels with the checkpointed
// partition — pairs inside already-merged clusters are then skipped instead
// of re-aligned, so completed work is not repeated.
//
// On-disk format (version 1, little-endian):
//
//	magic "PACECKPT" | u32 version
//	| u32 numESTs | u32 window | u32 psi     (run fingerprint)
//	| u64 seq                                (monotonic write counter)
//	| i64 processed | i64 accepted | i64 skipped | i64 merges
//	| u32 ufLen | union-find blob
//	| u32 CRC-32 (IEEE) of everything before it
type Checkpoint struct {
	// NumESTs, Window, Psi fingerprint the run the snapshot belongs to;
	// Validate rejects a resume against different inputs or parameters.
	NumESTs int
	Window  int
	Psi     int
	// Seq increments on every write, so observers can tell snapshots apart.
	Seq uint64
	// Pair counters as of the snapshot (high-water marks, monotonic).
	PairsProcessed int64
	PairsAccepted  int64
	PairsSkipped   int64
	Merges         int64
	// UF is the cluster structure.
	UF *unionfind.UF
}

const (
	checkpointMagic   = "PACECKPT"
	checkpointVersion = 1
	// CheckpointFile is the snapshot's name inside the checkpoint directory.
	CheckpointFile = "pace.ckpt"
)

// Labels returns the checkpointed partition as dense cluster labels, ready
// for Config.InitialLabels.
func (ck *Checkpoint) Labels() []int32 { return ck.UF.Labels() }

// Validate checks the checkpoint belongs to a run over the same inputs and
// clustering parameters.
func (ck *Checkpoint) Validate(numESTs, window, psi int) error {
	if ck.NumESTs != numESTs {
		return fmt.Errorf("cluster: checkpoint is for %d ESTs, run has %d", ck.NumESTs, numESTs)
	}
	if ck.Window != window || ck.Psi != psi {
		return fmt.Errorf("cluster: checkpoint parameters (w=%d, psi=%d) differ from run (w=%d, psi=%d)",
			ck.Window, ck.Psi, window, psi)
	}
	return nil
}

func appendU64le(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func (ck *Checkpoint) encode() []byte {
	b := append([]byte{}, checkpointMagic...)
	b = binary.LittleEndian.AppendUint32(b, checkpointVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(ck.NumESTs))
	b = binary.LittleEndian.AppendUint32(b, uint32(ck.Window))
	b = binary.LittleEndian.AppendUint32(b, uint32(ck.Psi))
	b = appendU64le(b, ck.Seq)
	b = appendU64le(b, uint64(ck.PairsProcessed))
	b = appendU64le(b, uint64(ck.PairsAccepted))
	b = appendU64le(b, uint64(ck.PairsSkipped))
	b = appendU64le(b, uint64(ck.Merges))
	uf := ck.UF.AppendBinary(nil)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(uf)))
	b = append(b, uf...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func decodeCheckpoint(b []byte) (*Checkpoint, error) {
	const header = 8 + 4 + 3*4 + 5*8 + 4 // everything before the UF blob
	if len(b) < header+4 {
		return nil, fmt.Errorf("cluster: checkpoint truncated at %d bytes", len(b))
	}
	if string(b[:8]) != checkpointMagic {
		return nil, fmt.Errorf("cluster: bad checkpoint magic %q", b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != checkpointVersion {
		return nil, fmt.Errorf("cluster: checkpoint version %d, this build reads %d", v, checkpointVersion)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("cluster: checkpoint CRC mismatch (got %#x, want %#x)", got, want)
	}
	ck := &Checkpoint{
		NumESTs:        int(binary.LittleEndian.Uint32(b[12:])),
		Window:         int(binary.LittleEndian.Uint32(b[16:])),
		Psi:            int(binary.LittleEndian.Uint32(b[20:])),
		Seq:            binary.LittleEndian.Uint64(b[24:]),
		PairsProcessed: int64(binary.LittleEndian.Uint64(b[32:])),
		PairsAccepted:  int64(binary.LittleEndian.Uint64(b[40:])),
		PairsSkipped:   int64(binary.LittleEndian.Uint64(b[48:])),
		Merges:         int64(binary.LittleEndian.Uint64(b[56:])),
	}
	ufLen := int(binary.LittleEndian.Uint32(b[64:]))
	if header+ufLen+4 != len(b) {
		return nil, fmt.Errorf("cluster: checkpoint UF blob length %d inconsistent with %d-byte file", ufLen, len(b))
	}
	ck.UF = unionfind.New(0)
	if err := ck.UF.UnmarshalBinary(b[header : header+ufLen]); err != nil {
		return nil, fmt.Errorf("cluster: checkpoint union-find: %w", err)
	}
	return ck, nil
}

// WriteCheckpoint atomically persists the snapshot to dir/CheckpointFile
// (write to a temp file, then rename): a crash mid-write leaves the previous
// snapshot intact. Returns the number of bytes written.
func WriteCheckpoint(dir string, ck *Checkpoint) (int, error) {
	return WriteCheckpointFS(vfs.OS{}, dir, ck)
}

// WriteCheckpointFS is WriteCheckpoint on an explicit filesystem seam, so
// servers and crash-window sweeps can route the snapshot through a
// fault-injecting vfs.FS.
func WriteCheckpointFS(fsys vfs.FS, dir string, ck *Checkpoint) (int, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("cluster: checkpoint dir: %w", err)
	}
	data := ck.encode()
	tmp := filepath.Join(dir, CheckpointFile+".tmp")
	if err := fsys.WriteFile(tmp, data, 0o644); err != nil {
		return 0, fmt.Errorf("cluster: checkpoint write: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, CheckpointFile)); err != nil {
		return 0, fmt.Errorf("cluster: checkpoint rename: %w", err)
	}
	return len(data), nil
}

// LoadCheckpoint reads and verifies dir/CheckpointFile.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if err != nil {
		return nil, fmt.Errorf("cluster: checkpoint read: %w", err)
	}
	return decodeCheckpoint(data)
}

// checkpointer drives periodic snapshots from the engine's hot loop. nil
// (no Dir configured) disables everything.
type checkpointer struct {
	cfg     CheckpointConfig
	numESTs int
	window  int
	psi     int
	st      *Stats
	pr      *probes
	log     *slog.Logger

	// clock is the engine's time base: the sequential wall clock or the
	// rank's virtual Comm.Elapsed, so snapshot cadence replays identically
	// in simulation.
	clock func() time.Duration

	seq     uint64
	last    time.Duration
	reports int
}

func newCheckpointer(cfg Config, numESTs int, st *Stats, pr *probes, clock func() time.Duration) *checkpointer {
	if cfg.Checkpoint.Dir == "" {
		return nil
	}
	return &checkpointer{
		cfg: cfg.Checkpoint, numESTs: numESTs, window: cfg.Window, psi: cfg.Psi,
		st: st, pr: pr, log: cfg.logger(), clock: clock, last: clock(),
	}
}

// maybe writes a snapshot when the cadence (EveryReports if set, else
// Interval) says so, or unconditionally with force (the final snapshot).
// The structure is frozen through the snapshotter seam so both merge
// policies (plain and root-sharded) feed the same UFv1-based codec.
func (ck *checkpointer) maybe(uf snapshotter, processed, accepted, skipped, merges int64, force bool) error {
	if ck == nil {
		return nil
	}
	ck.reports++
	if !force {
		if ck.cfg.EveryReports > 0 {
			if ck.reports < ck.cfg.EveryReports {
				return nil
			}
		} else if ck.clock()-ck.last < ck.cfg.interval() {
			return nil
		}
	}
	ck.reports = 0
	ck.last = ck.clock()
	ck.seq++
	t0 := ck.clock()
	n, err := WriteCheckpointFS(ck.cfg.fs(), ck.cfg.Dir, &Checkpoint{
		NumESTs: ck.numESTs, Window: ck.window, Psi: ck.psi, Seq: ck.seq,
		PairsProcessed: processed, PairsAccepted: accepted,
		PairsSkipped: skipped, Merges: merges, UF: uf.Snapshot(),
	})
	if err != nil {
		return err
	}
	d := ck.clock() - t0
	ck.st.Recovery.Checkpoints++
	ck.st.Recovery.CheckpointBytes += int64(n)
	ck.st.Recovery.CheckpointTime += d
	if ck.pr != nil {
		ck.pr.ckptWrites.Inc()
		ck.pr.ckptBytes.Set(int64(n))
		ck.pr.ckptNs.Observe(int64(d))
	}
	ck.log.Info("checkpoint written",
		"dir", ck.cfg.Dir, "seq", ck.seq, "bytes", n,
		"pairs_processed", processed, "merges", merges, "forced", force)
	return nil
}
