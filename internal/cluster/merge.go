package cluster

import (
	"fmt"

	"pace/internal/unionfind"
)

// Merge policy: how accepted pairs become cluster merges.
//
// The engine supports two protocols, selected by Config.MergeShards:
//
//   - Legacy single-master (MergeShards == 0): slaves report a verdict for
//     every processed pair and the master serializes each accepted pair
//     through one union-find — the paper's §3.2 structure, kept bit-exact as
//     the baseline.
//   - Sharded delta reconciliation (MergeShards >= 1): each slave filters
//     accepted pairs through a local union-find and reports only the
//     spanning edges (a MergeDelta) plus batch counters; the master owns a
//     root-sharded union-find whose K shards apply same-shard merges
//     concurrently and reconcile cross-shard merges in bounded phases.
//
// Both policies sit behind the merger seam below so the master, the
// sequential engine, and the checkpointer never branch on the mode.

// merger is the master-side (and sequential-engine) cluster structure.
type merger interface {
	// Same reports whether two ESTs already share a cluster (the
	// SkipSameCluster filter).
	Same(i, j int32) bool
	// Union merges two ESTs directly — the seeding path (InitialLabels)
	// and the legacy per-result path.
	Union(i, j int32) bool
	// apply merges a delta's edges through the policy's bulk path and
	// returns the number of links that joined two clusters.
	apply(edges []unionfind.MergeEdge) int64
	// Labels / Count expose the partition.
	Labels() []int32
	Count() int
	// Snapshot freezes the partition as a plain UF for the UFv1-based
	// checkpoint codec.
	Snapshot() *unionfind.UF
	// reconcile returns the accumulated reconciliation tallies (zero value
	// for the legacy policy).
	reconcile() ReconcileStats
}

// snapshotter is the slice of merger the checkpointer needs.
type snapshotter interface {
	Snapshot() *unionfind.UF
}

// newMerger builds the configured merge policy over n ESTs.
func newMerger(cfg Config, n int) merger {
	if cfg.MergeShards == 0 {
		return legacyMerger{unionfind.New(n)}
	}
	s := unionfind.NewSharded(n, cfg.MergeShards)
	s.Parallel = true
	return &shardedMerger{s: s, st: ReconcileStats{Shards: s.Shards()}}
}

// legacyMerger is the single-master policy: a plain rank-based union-find.
type legacyMerger struct {
	uf *unionfind.UF
}

func (m legacyMerger) Same(i, j int32) bool      { return m.uf.Same(i, j) }
func (m legacyMerger) Union(i, j int32) bool     { return m.uf.Union(i, j) }
func (m legacyMerger) Labels() []int32           { return m.uf.Labels() }
func (m legacyMerger) Count() int                { return m.uf.Count() }
func (m legacyMerger) Snapshot() *unionfind.UF   { return m.uf.Snapshot() }
func (m legacyMerger) reconcile() ReconcileStats { return ReconcileStats{} }
func (m legacyMerger) apply(edges []unionfind.MergeEdge) int64 {
	var links int64
	for _, e := range edges {
		if m.uf.Union(e.A, e.B) {
			links++
		}
	}
	return links
}

// shardedMerger is the phase-reconciled policy: deltas go through the
// root-sharded structure's bulk Apply, and every apply's round breakdown is
// accumulated into the run's ReconcileStats.
type shardedMerger struct {
	s  *unionfind.Sharded
	st ReconcileStats
	// acc sums the per-apply round tallies across the run.
	acc unionfind.ApplyStats
}

func (m *shardedMerger) Same(i, j int32) bool    { return m.s.Same(i, j) }
func (m *shardedMerger) Union(i, j int32) bool   { return m.s.Union(i, j) }
func (m *shardedMerger) Labels() []int32         { return m.s.Labels() }
func (m *shardedMerger) Count() int              { return m.s.Count() }
func (m *shardedMerger) Snapshot() *unionfind.UF { return m.s.Snapshot() }

func (m *shardedMerger) apply(edges []unionfind.MergeEdge) int64 {
	st := m.s.Apply(unionfind.MergeDelta{Edges: edges})
	m.st.Applies++
	m.st.DeltaEdges += int64(len(edges))
	if st.Phases > m.st.MaxPhases {
		m.st.MaxPhases = st.Phases
	}
	m.acc.Add(st)
	return st.Links
}

func (m *shardedMerger) reconcile() ReconcileStats {
	out := m.st
	out.Phases = m.acc.Phases
	out.Tasks = m.acc.Tasks
	out.CrossShard = m.acc.CrossShard
	out.PhaseTasks = append([]int64(nil), m.acc.RoundTasks...)
	return out
}

// deltaLog is the slave-side half of the sharded policy: a local union-find
// that filters the slave's accepted pairs down to spanning edges. Edges
// accumulate in pending until a report ships them; a slave that dies loses
// its local structure and its unshipped edges together, so recovery's
// regenerate-and-refilter path re-derives exactly the lost connectivity.
type deltaLog struct {
	local   *unionfind.UF
	pending []unionfind.MergeEdge
}

func newDeltaLog(n int) *deltaLog {
	return &deltaLog{local: unionfind.New(n)}
}

// absorb filters one batch of verdicts into the pending edge log and returns
// the batch's accepted count.
func (d *deltaLog) absorb(results []alignResult) int64 {
	var accepted int64
	for _, r := range results {
		if !r.accepted {
			continue
		}
		accepted++
		i, j := int32(r.estI), int32(r.estJ)
		if d.local.Union(i, j) {
			d.pending = append(d.pending, unionfind.MergeEdge{A: i, B: j})
		}
	}
	return accepted
}

// take hands over the pending edges and resets the log's buffer.
func (d *deltaLog) take() []unionfind.MergeEdge {
	out := d.pending
	d.pending = nil
	return out
}

// seedClusters merges ESTs that share a non-negative initial label. Labels
// may cover only a prefix of the ESTs (old batch before newly arrived ones).
// It returns the number of union operations performed, so a resumed run can
// report how much work the seed (e.g. a checkpoint) already covered.
func seedClusters(m merger, labels []int32, n int) (int64, error) {
	if len(labels) > n {
		return 0, fmt.Errorf("cluster: %d initial labels for %d ESTs", len(labels), n)
	}
	first := make(map[int32]int32)
	var merges int64
	for i, l := range labels {
		if l < 0 {
			continue
		}
		if f, ok := first[l]; ok {
			if m.Union(f, int32(i)) {
				merges++
			}
		} else {
			first[l] = int32(i)
		}
	}
	return merges, nil
}
