package cluster

// Tests for the paper's §3.3 flow-control formula E = min(α·δ·batchsize,
// nfree/p) and for the WORKBUF bound it is supposed to guarantee. The seed
// engine had three deviations that these tests lock in:
//
//   - an all-redundant batch (reported > 0, added == 0) fell back to the raw
//     batch length as α's numerator, inflating E without bound;
//   - nfree was divided by the slave count instead of the paper's p;
//   - the never-starve floor e = 1 was applied even with zero free space.

import (
	"fmt"
	"testing"

	"pace/internal/mp"
)

func grantCfg() Config {
	cfg := DefaultConfig(4)
	cfg.BatchSize = 60
	return cfg
}

// An entirely redundant incoming batch must fall back to the α cap, not to
// the raw batch length: with the seed behavior a slave reporting 5000
// redundant pairs would be granted E ≈ 5000·δ·batchsize.
func TestGrantEAllRedundantBatchClamped(t *testing.T) {
	cfg := grantCfg()
	const hugeFree = 1 << 20
	e := grantE(cfg, 5000, 0, 3, 3, 4, hugeFree)
	want := int(cfg.alphaMax() * 1 * float64(cfg.BatchSize)) // α=cap, δ=1
	if e != want {
		t.Errorf("all-redundant grant = %d, want α_max·δ·batchsize = %d", e, want)
	}
	// And it must not scale with how many redundant pairs were reported.
	if e2 := grantE(cfg, 50000, 0, 3, 3, 4, hugeFree); e2 != e {
		t.Errorf("grant scales with redundant batch size: %d vs %d", e2, e)
	}
}

// A merely high ratio (not division by zero) is clamped the same way.
func TestGrantEAlphaRatioClamped(t *testing.T) {
	cfg := grantCfg()
	const hugeFree = 1 << 20
	// 900 reported, 3 useful → α would be 300; must clamp to 4.
	e := grantE(cfg, 900, 3, 3, 3, 4, hugeFree)
	want := int(cfg.alphaMax() * 1 * float64(cfg.BatchSize))
	if e != want {
		t.Errorf("high-ratio grant = %d, want clamped %d", e, want)
	}
}

// AlphaMax is configurable; 0 derives the default of 4.
func TestGrantEAlphaMaxConfigurable(t *testing.T) {
	cfg := grantCfg()
	if got := cfg.alphaMax(); got != 4 {
		t.Fatalf("default alphaMax = %v, want 4", got)
	}
	cfg.AlphaMax = 2
	const hugeFree = 1 << 20
	e := grantE(cfg, 5000, 0, 3, 3, 4, hugeFree)
	if want := int(2 * float64(cfg.BatchSize)); e != want {
		t.Errorf("AlphaMax=2 grant = %d, want %d", e, want)
	}
}

// The free-space bound divides by p (paper §3.3), not by the slave count.
func TestGrantEFreeSpaceDividedByP(t *testing.T) {
	cfg := grantCfg()
	const p, slaves = 8, 7
	e := grantE(cfg, 60, 60, slaves, slaves, p, 80)
	if want := 80 / p; e != want {
		t.Errorf("free-space-bounded grant = %d, want nfree/p = %d", e, want)
	}
}

// With no free space the grant must be zero — the seed's unconditional
// e = 1 floor could overrun a full WORKBUF by one pair per slave.
func TestGrantEZeroWhenNoFreeSpace(t *testing.T) {
	cfg := grantCfg()
	for _, nfree := range []int{0, -5} {
		if e := grantE(cfg, 60, 60, 3, 3, 4, nfree); e != 0 {
			t.Errorf("nfree=%d: grant = %d, want 0", nfree, e)
		}
	}
}

// The never-starve floor still applies when there is free space but the
// division rounds to zero.
func TestGrantEFloorWithinFreeSpace(t *testing.T) {
	cfg := grantCfg()
	// nfree/p = 3/8 = 0, but 3 slots are genuinely free.
	if e := grantE(cfg, 60, 60, 7, 7, 8, 3); e != 1 {
		t.Errorf("grant = %d, want floor of 1 within free space", e)
	}
}

// δ spreads the finished slaves' generation load over the active ones.
func TestGrantEDeltaScalesWithInactive(t *testing.T) {
	cfg := grantCfg()
	const hugeFree = 1 << 20
	allActive := grantE(cfg, 60, 60, 6, 6, 7, hugeFree)
	oneActive := grantE(cfg, 60, 60, 1, 6, 7, hugeFree)
	if oneActive != 6*allActive {
		t.Errorf("δ scaling: 1-active grant %d, want 6× all-active grant %d", oneActive, allActive)
	}
}

// The master must keep WORKBUF within WorkBufCap at every step of a real
// run; WorkBufHighWater records the maximum it ever held. A deliberately
// tiny buffer makes any accounting leak overflow immediately.
func TestWorkBufHighWaterBounded(t *testing.T) {
	b := benchSet(t, 90, 6, 5)
	for _, mpCfg := range parallelModes(4) {
		mode := "real"
		if mpCfg.Mode == mp.ModeSim {
			mode = "sim"
		}
		t.Run(fmt.Sprintf("p4_%s", mode), func(t *testing.T) {
			cfg := DefaultConfig(4)
			cfg.Window, cfg.Psi = 6, 18
			cfg.BatchSize = 8
			cfg.WorkBufCap = 16
			cfg.MP = mpCfg
			res, err := Run(b.ESTs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hw := res.Stats.WorkBufHighWater
			if hw <= 0 {
				t.Errorf("high-water mark not recorded: %d", hw)
			}
			if hw > cfg.WorkBufCap {
				t.Errorf("WORKBUF overflowed: high water %d > cap %d", hw, cfg.WorkBufCap)
			}
		})
	}
}
