package cluster

import (
	"fmt"
	"testing"
	"time"

	"pace/internal/metrics"
	"pace/internal/mp"
	"pace/internal/simulate"
)

// benchSet generates a small benchmark with ground truth.
func benchSet(t testing.TB, n, genes int, seed int64) *simulate.Benchmark {
	t.Helper()
	cfg := simulate.DefaultConfig(n)
	cfg.NumGenes = genes
	cfg.Seed = seed
	// Keep transcripts short relative to reads so same-gene reads overlap
	// strongly: single-linkage clustering can then recover whole genes and
	// quality assertions are meaningful.
	cfg.MeanESTLen = 400
	cfg.SDESTLen = 40
	cfg.MinESTLen = 200
	cfg.ExonLen = [2]int{150, 180}
	cfg.ExonsPerGene = [2]int{3, 3}
	b, err := simulate.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.Window = 13 },
		func(c *Config) { c.Psi = c.Window - 1 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.WorkBufCap = c.BatchSize - 1 },
		func(c *Config) { c.GenChunk = 0 },
		func(c *Config) { c.Band = 0 },
		func(c *Config) { c.Scoring.Match = 0 },
		func(c *Config) { c.MP.Procs = 0 },
		func(c *Config) { c.AlphaMax = -1 },
		func(c *Config) { c.MP.Procs = c.WorkBufCap + 1 },
	}
	for i, mod := range bad {
		c := DefaultConfig(4)
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSequentialClustersBenchmark(t *testing.T) {
	b := benchSet(t, 120, 8, 1)
	cfg := DefaultConfig(1)
	cfg.Window = 6
	cfg.Psi = 18
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 120 {
		t.Fatalf("labels length %d", len(res.Labels))
	}
	q, err := metrics.Compare(res.Labels, b.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if q.OQ < 0.80 {
		t.Errorf("sequential clustering quality too low: %v (clusters=%d want≈%d)",
			q, res.NumClusters, 8)
	}
	st := res.Stats
	if st.PairsGenerated == 0 || st.PairsProcessed == 0 || st.PairsAccepted == 0 {
		t.Errorf("counters empty: %+v", st)
	}
	if st.PairsProcessed > st.PairsGenerated {
		t.Errorf("processed %d > generated %d", st.PairsProcessed, st.PairsGenerated)
	}
	if st.PairsAccepted > st.PairsProcessed {
		t.Errorf("accepted %d > processed %d", st.PairsAccepted, st.PairsProcessed)
	}
}

func TestSkipSameClusterReducesWork(t *testing.T) {
	b := benchSet(t, 100, 4, 2)
	on := DefaultConfig(1)
	on.Window, on.Psi = 6, 18
	off := on
	off.SkipSameCluster = false

	resOn, err := Run(b.ESTs, on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Run(b.ESTs, off)
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Stats.PairsProcessed >= resOff.Stats.PairsProcessed {
		t.Errorf("skip heuristic did not reduce alignments: %d vs %d",
			resOn.Stats.PairsProcessed, resOff.Stats.PairsProcessed)
	}
	// Quality must not suffer: both should find essentially the same
	// partition.
	qOn, _ := metrics.Compare(resOn.Labels, b.Truth)
	qOff, _ := metrics.Compare(resOff.Labels, b.Truth)
	if qOn.OQ < qOff.OQ-0.02 {
		t.Errorf("skipping hurt quality: %v vs %v", qOn, qOff)
	}
}

func parallelModes(p int) []mp.Config {
	sim := mp.DefaultSimConfig(p)
	return []mp.Config{
		{Procs: p, Mode: mp.ModeReal},
		sim,
	}
}

func TestParallelMatchesSequentialPartition(t *testing.T) {
	b := benchSet(t, 90, 6, 3)
	base := DefaultConfig(1)
	base.Window, base.Psi = 6, 18
	seqRes, err := Run(b.ESTs, base)
	if err != nil {
		t.Fatal(err)
	}
	qSeq, _ := metrics.Compare(seqRes.Labels, b.Truth)

	for _, p := range []int{2, 3, 5} {
		for _, mpCfg := range parallelModes(p) {
			mode := "real"
			if mpCfg.Mode == mp.ModeSim {
				mode = "sim"
			}
			t.Run(fmt.Sprintf("p%d_%s", p, mode), func(t *testing.T) {
				cfg := base
				cfg.MP = mpCfg
				res, err := Run(b.ESTs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Labels) != len(b.ESTs) {
					t.Fatalf("labels length %d", len(res.Labels))
				}
				q, _ := metrics.Compare(res.Labels, b.Truth)
				// Master-slave scheduling changes alignment order, so
				// partitions can differ slightly; quality must hold.
				if q.OQ < qSeq.OQ-0.05 {
					t.Errorf("parallel quality dropped: %v vs sequential %v", q, qSeq)
				}
				st := res.Stats
				if st.PairsGenerated == 0 || st.PairsProcessed == 0 {
					t.Errorf("counters empty: %+v", st)
				}
				if st.Phases.Total == 0 {
					t.Error("no total time recorded")
				}
			})
		}
	}
}

func TestParallelPhaseTimesPopulated(t *testing.T) {
	b := benchSet(t, 80, 5, 4)
	cfg := DefaultConfig(3)
	cfg.Window, cfg.Psi = 6, 18
	cfg.MP = mp.DefaultSimConfig(3)
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Stats.Phases
	if ph.Construct <= 0 || ph.Align <= 0 || ph.Total <= 0 {
		t.Errorf("phases not measured: %+v", ph)
	}
	if ph.Construct > ph.Total || ph.Align > ph.Total {
		t.Errorf("phase exceeds total: %+v", ph)
	}
}

// The decreasing-order on-demand engine must not materialize all pairs: the
// master's counters can't exceed generation, and skipping must be visible on
// deep data sets.
func TestParallelCounters(t *testing.T) {
	b := benchSet(t, 100, 3, 5) // very deep coverage → many redundant pairs
	cfg := DefaultConfig(4)
	cfg.Window, cfg.Psi = 6, 18
	cfg.MP = mp.DefaultSimConfig(4)
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.PairsProcessed > st.PairsGenerated {
		t.Errorf("processed %d > generated %d", st.PairsProcessed, st.PairsGenerated)
	}
	if st.PairsSkipped == 0 {
		t.Error("deep data set should produce cluster-skips")
	}
	if st.PairsAccepted < st.Merges {
		t.Errorf("merges %d exceed accepted %d", st.Merges, st.PairsAccepted)
	}
}

func TestParallelManySlavesFewBuckets(t *testing.T) {
	// More slaves than occupied buckets: some slaves are born passive.
	b := benchSet(t, 30, 2, 6)
	cfg := DefaultConfig(8)
	cfg.Window, cfg.Psi = 4, 16
	cfg.MP = mp.DefaultSimConfig(8)
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := metrics.Compare(res.Labels, b.Truth)
	if q.OQ < 0.5 {
		t.Errorf("quality collapsed with idle slaves: %v", q)
	}
}

func TestTinyWorkBuf(t *testing.T) {
	// A small WORKBUF exercises the nfree clamping and wait-queue paths.
	b := benchSet(t, 60, 4, 7)
	cfg := DefaultConfig(3)
	cfg.Window, cfg.Psi = 6, 18
	cfg.WorkBufCap = cfg.BatchSize
	cfg.MP = mp.DefaultSimConfig(3)
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters <= 0 || res.NumClusters > 60 {
		t.Errorf("clusters: %d", res.NumClusters)
	}
}

func TestSmallBatchSize(t *testing.T) {
	b := benchSet(t, 50, 4, 8)
	cfg := DefaultConfig(3)
	cfg.Window, cfg.Psi = 6, 18
	cfg.BatchSize = 2
	cfg.WorkBufCap = 64
	cfg.MP = mp.DefaultSimConfig(3)
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := metrics.Compare(res.Labels, b.Truth)
	if q.OQ < 0.6 {
		t.Errorf("tiny batches broke clustering: %v", q)
	}
}

func TestSingleESTAndTwo(t *testing.T) {
	b := benchSet(t, 2, 1, 9)
	cfg := DefaultConfig(1)
	cfg.Window, cfg.Psi = 6, 18
	res, err := Run(b.ESTs[:1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 || len(res.Labels) != 1 {
		t.Errorf("single EST: %+v", res)
	}
	res, err = Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 2 {
		t.Errorf("two ESTs: %+v", res)
	}
}

func TestErrorFreeDataPerfectQuality(t *testing.T) {
	scfg := simulate.DefaultConfig(60)
	scfg.NumGenes = 4
	scfg.ErrorRate = 0
	scfg.Seed = 10
	scfg.MeanESTLen = 400
	scfg.SDESTLen = 30
	scfg.MinESTLen = 200
	scfg.ExonLen = [2]int{150, 180}
	scfg.ExonsPerGene = [2]int{3, 3}
	b, err := simulate.Generate(scfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Window, cfg.Psi = 6, 18
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := metrics.Compare(res.Labels, b.Truth)
	if q.OV != 0 {
		t.Errorf("error-free data must not over-predict: %v", q)
	}
	if q.OQ < 0.95 {
		t.Errorf("error-free quality: %v", q)
	}
}

// The simulated machine must show decreasing run-time with more processors
// on a fixed workload (Figure 6a's qualitative shape).
func TestSimScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test is slow")
	}
	b := benchSet(t, 200, 12, 11)
	timeFor := func(p int) time.Duration {
		cfg := DefaultConfig(p)
		cfg.Window, cfg.Psi = 6, 18
		cfg.MP = mp.DefaultSimConfig(p)
		res, err := Run(b.ESTs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Phases.Total
	}
	t3, t9 := timeFor(3), timeFor(9)
	if float64(t9) > 0.8*float64(t3) {
		t.Errorf("no speedup: p=3 %v, p=9 %v", t3, t9)
	}
}

func BenchmarkSequential200(b *testing.B) {
	bm := benchSet(b, 200, 12, 1)
	cfg := DefaultConfig(1)
	cfg.Window, cfg.Psi = 6, 18
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(bm.ESTs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The paper reports the master stays well under 2% busy even at p=128; our
// master must likewise be a small fraction of the virtual run-time.
func TestMasterNotBottleneck(t *testing.T) {
	b := benchSet(t, 150, 8, 12)
	cfg := DefaultConfig(8)
	cfg.Window, cfg.Psi = 6, 18
	cfg.MP = mp.DefaultSimConfig(8)
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	busy := res.Stats.MasterBusy.Seconds()
	total := res.Stats.Phases.Total.Seconds()
	if total <= 0 {
		t.Fatal("no total time")
	}
	if frac := busy / total; frac > 0.10 {
		t.Errorf("master busy fraction %.1f%% too high", 100*frac)
	}
}

// Incremental seeding at the engine level (paper's open problem).
func TestInitialLabelsSeeding(t *testing.T) {
	b := benchSet(t, 80, 5, 13)
	cfg := DefaultConfig(1)
	cfg.Window, cfg.Psi = 6, 18
	first, err := Run(b.ESTs[:60], cfg)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeded := cfg
	seeded.InitialLabels = first.Labels
	inc, err := Run(b.ESTs, seeded)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats.PairsProcessed >= scratch.Stats.PairsProcessed {
		t.Errorf("seeding saved nothing: %d vs %d",
			inc.Stats.PairsProcessed, scratch.Stats.PairsProcessed)
	}
	// Too many labels must be rejected.
	bad := cfg
	bad.InitialLabels = make([]int32, len(b.ESTs)+1)
	if _, err := Run(b.ESTs, bad); err == nil {
		t.Error("oversized InitialLabels accepted")
	}
}

// Parallel engine must also honor InitialLabels.
func TestInitialLabelsParallel(t *testing.T) {
	b := benchSet(t, 60, 4, 14)
	cfg := DefaultConfig(3)
	cfg.Window, cfg.Psi = 6, 18
	cfg.MP = mp.DefaultSimConfig(3)
	labels := make([]int32, len(b.ESTs))
	copy(labels, b.Truth) // seed with the truth: nothing left to merge
	cfg.InitialLabels = labels
	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := metrics.Compare(res.Labels, b.Truth)
	if q.UN != 0 {
		t.Errorf("truth-seeded run must have no under-prediction: %v", q)
	}
}
