package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pace/internal/seq"
	"pace/internal/suffix"
	"pace/internal/unionfind"
)

// Incremental batch ingest: the session layer appends a batch of ESTs to a
// SetS (a new generation), seeds the union-find with the previous partition
// (Config.InitialLabels), and re-runs the pipeline with Config.FreshGen set.
// Only the buckets the batch's suffixes fall into are (re)built, and inside
// them only pairs involving a fresh string are generated; a pair's maximal
// common substring depends on the two strings alone, so every suppressed
// old×old pair was already produced and judged by an earlier run, and the
// final partition is identical to a from-scratch run over the union.

// BucketCache carries per-bucket GST state across the sequential runs of a
// session. Suffix lists grow in place as generations arrive — strings are
// scanned exactly once, in ascending id order, so each bucket's list is
// byte-for-byte what a from-scratch collection would produce and rebuilt
// subtrees are identical to scratch-built ones. Subtrees of buckets a batch
// does not touch are reused verbatim.
//
// The cache is single-goroutine state owned by its session; it is not safe
// for concurrent runs.
type BucketCache struct {
	w        int
	scanned  seq.StringID
	byBucket map[int][]suffix.SuffixRef
	trees    map[int]*suffix.Tree
}

// NewBucketCache returns an empty cache, ready to be carried across a
// session's runs via Config.Cache.
func NewBucketCache() *BucketCache {
	return &BucketCache{
		byBucket: make(map[int][]suffix.SuffixRef),
		trees:    make(map[int]*suffix.Tree),
	}
}

// Strings reports how many strings the cache has scanned.
func (bc *BucketCache) Strings() int { return int(bc.scanned) }

// Buckets reports how many non-empty buckets the cache holds.
func (bc *BucketCache) Buckets() int { return len(bc.byBucket) }

// absorb scans strings [bc.scanned, hi) into the per-bucket suffix lists and
// returns, in ascending order, the ids of buckets that received suffixes.
func (bc *BucketCache) absorb(set *seq.SetS, w int, hi seq.StringID) ([]int, error) {
	if bc.w == 0 {
		bc.w = w
	}
	if bc.w != w {
		return nil, fmt.Errorf("cluster: bucket cache was built with window %d, run uses %d", bc.w, w)
	}
	if hi < bc.scanned {
		return nil, fmt.Errorf("cluster: bucket cache covers %d strings but the run has only %d", bc.scanned, hi)
	}
	touched := make(map[int]bool)
	for id := bc.scanned; id < hi; id++ {
		suffix.BucketEach(set.Str(id), w, func(b int, pos int32) {
			bc.byBucket[b] = append(bc.byBucket[b], suffix.SuffixRef{SID: id, Pos: pos})
			touched[b] = true
		})
	}
	bc.scanned = hi
	ids := make([]int, 0, len(touched))
	for b := range touched {
		ids = append(ids, b)
	}
	sort.Ints(ids)
	return ids, nil
}

// Truncate rolls the cache back so it covers only strings with id < hi —
// the inverse of absorb for a failed batch run. Suffix lists are appended
// in ascending string-id order, so every ref of a dropped string sits at
// the tail of its bucket's list; those tails are trimmed, buckets left
// empty are deleted, and the cached subtree of every trimmed bucket is
// discarded (it was built over suffixes that no longer exist — the next
// batch run rebuilds it from the restored list). Subtrees of untouched
// buckets stay valid verbatim. A no-op when hi >= the scanned high mark.
func (bc *BucketCache) Truncate(hi seq.StringID) {
	if hi >= bc.scanned {
		return
	}
	for b, refs := range bc.byBucket {
		cut := sort.Search(len(refs), func(i int) bool { return refs[i].SID >= hi })
		if cut == len(refs) {
			continue
		}
		delete(bc.trees, b)
		if cut == 0 {
			delete(bc.byBucket, b)
			continue
		}
		bc.byBucket[b] = refs[:cut:cut]
	}
	bc.scanned = hi
}

// Warm scans every string of set into the cache without building any
// subtrees — the state a resumed session needs so that its next batch
// rebuilds only the buckets the batch touches. Subtrees are built lazily:
// a bucket that never sees a fresh suffix never needs one.
func (bc *BucketCache) Warm(set *seq.SetS, w int) error {
	_, err := bc.absorb(set, w, seq.StringID(set.NumStrings()))
	return err
}

// histogram derives the global bucket histogram from the cached lists.
func (bc *BucketCache) histogram(w int) []int64 {
	hist := make([]int64, suffix.NumBuckets(w))
	for b, refs := range bc.byBucket {
		hist[b] = int64(len(refs))
	}
	return hist
}

// forestBuild is the outcome of the sequential partition+construct phases.
type forestBuild struct {
	forest    []*suffix.Tree
	hist      []int64
	partition time.Duration
	construct time.Duration
}

// buildSequentialForest runs the partition and construction phases for the
// sequential engine, honoring the incremental knobs:
//
//   - no Cache, FreshGen == 0: the one-shot path — collect everything, build
//     every non-empty bucket.
//   - no Cache, FreshGen > 0: rescan, but assign only the buckets the fresh
//     generations touch (AssignFresh); untouched buckets are skipped.
//   - Cache: scan only the strings the cache has not seen, rebuild exactly
//     the touched buckets, and leave the rest of the cached forest alone.
//     The forest handed to the generator is the touched subset — untouched
//     subtrees cannot contain a fresh pair.
//
// Incremental bucket counts land in st.Incremental.
func buildSequentialForest(set *seq.SetS, cfg Config, st *Stats, clk func() time.Duration) (*forestBuild, error) {
	fb := &forestBuild{}
	n2 := seq.StringID(set.NumStrings())
	t0 := clk()

	if bc := cfg.Cache; bc != nil {
		touched, err := bc.absorb(set, cfg.Window, n2)
		if err != nil {
			return nil, err
		}
		fb.hist = bc.histogram(cfg.Window)
		fb.partition = clk() - t0
		t1 := clk()
		for _, b := range touched {
			tr, err := suffix.Build(set, b, bc.byBucket[b], cfg.Window)
			if errors.Is(err, suffix.ErrEmptyBucket) {
				continue
			}
			if err != nil {
				return nil, err
			}
			bc.trees[b] = tr
			fb.forest = append(fb.forest, tr)
		}
		fb.construct = clk() - t1
		st.Incremental.BucketsRebuilt = int64(len(fb.forest))
		st.Incremental.BucketsReused = nonEmptyBuckets(fb.hist) - int64(len(fb.forest))
		return fb, nil
	}

	hist := suffix.Histogram(set, cfg.Window, 0, n2)
	var owner []int32
	if cfg.FreshGen > 0 {
		freshHist := suffix.HistogramFrom(set, cfg.Window, cfg.FreshGen, 0, n2)
		owner = suffix.AssignFresh(hist, freshHist, 1)
	} else {
		owner = suffix.Assign(hist, 1)
	}
	byBucket := suffix.CollectOwned(set, cfg.Window, owner, 0, 0, n2)
	fb.hist = hist
	fb.partition = clk() - t0

	t1 := clk()
	forest, err := suffix.BuildForest(set, byBucket, cfg.Window)
	if err != nil {
		return nil, err
	}
	fb.forest = forest
	fb.construct = clk() - t1
	if cfg.FreshGen > 0 {
		st.Incremental.BucketsRebuilt = int64(len(forest))
		st.Incremental.BucketsReused = nonEmptyBuckets(hist) - int64(len(forest))
	}
	return fb, nil
}

func nonEmptyBuckets(hist []int64) int64 {
	var n int64
	for _, h := range hist {
		if h > 0 {
			n++
		}
	}
	return n
}

// CheckpointFromLabels builds a checkpoint snapshot from a finished
// partition — what a session persists between batch runs, reusing the
// PACECKPT machinery (atomic write, CRC, run fingerprint).
func CheckpointFromLabels(numESTs, window, psi int, labels []int32) (*Checkpoint, error) {
	if len(labels) != numESTs {
		return nil, fmt.Errorf("cluster: %d labels for %d ESTs", len(labels), numESTs)
	}
	uf := unionfind.New(numESTs)
	merges, err := seedClusters(legacyMerger{uf}, labels, numESTs)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		NumESTs: numESTs, Window: window, Psi: psi,
		Merges: merges, UF: uf,
	}, nil
}

// RunSet clusters a prebuilt SetS. It is Run for callers that manage the
// sequence set themselves — a session appending generations between runs —
// and the entry point that understands Config.FreshGen / Config.Cache.
func RunSet(set *seq.SetS, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if int(cfg.FreshGen) >= set.NumGenerations() {
		return nil, fmt.Errorf("cluster: FreshGen %d out of range for %d generations", cfg.FreshGen, set.NumGenerations())
	}
	if cfg.Cache != nil && cfg.FreshGen == 0 && cfg.Cache.scanned > 0 {
		// A full run over a warm cache would hand the generator only the
		// touched buckets and silently drop every pair in the rest.
		return nil, fmt.Errorf("cluster: full run (FreshGen == 0) over a non-empty cache; set FreshGen to the batch generation")
	}
	if cfg.MP.Procs == 1 {
		return runSequential(set, cfg)
	}
	return runParallel(set, cfg)
}
