package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"pace/internal/mp"
	"pace/internal/telemetry"
)

// TestParallelTelemetry runs the simulated machine with every sink attached
// and checks the per-rank table, the registry, and the trace output.
func TestParallelTelemetry(t *testing.T) {
	b := benchSet(t, 60, 6, 3)
	var buf bytes.Buffer
	cfg := DefaultConfig(4)
	cfg.MP = mp.DefaultSimConfig(4)
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Trace = telemetry.NewTraceWriter(&buf)

	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	st := res.Stats

	if len(st.PerRank) != 4 {
		t.Fatalf("PerRank has %d rows, want 4", len(st.PerRank))
	}
	var genSum, procSum, accSum int64
	for i, rs := range st.PerRank {
		if rs.Rank != i {
			t.Errorf("PerRank[%d].Rank = %d (want sorted by rank)", i, rs.Rank)
		}
		wantRole := "slave"
		if i == 0 {
			wantRole = "master"
		}
		if rs.Role != wantRole {
			t.Errorf("rank %d role = %q, want %q", i, rs.Role, wantRole)
		}
		if rs.Total <= 0 {
			t.Errorf("rank %d Total = %v, want > 0", i, rs.Total)
		}
		if rs.MsgsSent == 0 || rs.MsgsRecv == 0 {
			t.Errorf("rank %d comm counters empty: %+v", i, rs)
		}
		if rs.CollectiveOps == 0 {
			t.Errorf("rank %d CollectiveOps = 0 (prologue allreduce + final gather)", i)
		}
		genSum += rs.PairsGenerated
		procSum += rs.PairsProcessed
		accSum += rs.PairsAccepted
	}
	if genSum != st.PairsGenerated || procSum != st.PairsProcessed || accSum != st.PairsAccepted {
		t.Errorf("per-rank sums gen=%d proc=%d acc=%d != totals gen=%d proc=%d acc=%d",
			genSum, procSum, accSum, st.PairsGenerated, st.PairsProcessed, st.PairsAccepted)
	}
	if st.PerRank[0].Busy != st.MasterBusy {
		t.Errorf("master row Busy = %v, want MasterBusy %v", st.PerRank[0].Busy, st.MasterBusy)
	}
	if st.MasterIdle <= 0 {
		t.Errorf("MasterIdle = %v, want > 0", st.MasterIdle)
	}

	snap := cfg.Metrics.Snapshot()
	if got := snap[mPairsGenerated]; int64(got) != st.PairsGenerated {
		t.Errorf("registry %s = %v, want %d", mPairsGenerated, got, st.PairsGenerated)
	}
	if got := snap[mWorkbufHW]; int(got) != st.WorkBufHighWater {
		t.Errorf("registry %s = %v, want %d", mWorkbufHW, got, st.WorkBufHighWater)
	}
	if snap[mBucketSize+"_count"] <= 0 {
		t.Error("bucket-size histogram is empty")
	}
	if snap[mLoadSkew] < 1 {
		t.Errorf("load skew = %v, want >= 1", snap[mLoadSkew])
	}
	if snap[`pace_mp_msgs_sent{rank="1"}`] == 0 {
		t.Error("per-rank comm gauge missing")
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	phases := map[string]bool{}
	tids := map[float64]bool{}
	for _, e := range events {
		if e["ph"] == "X" {
			phases[e["name"].(string)] = true
		}
		tids[e["tid"].(float64)] = true
	}
	for _, want := range []string{"partition", "construct", "sort", "align"} {
		if !phases[want] {
			t.Errorf("trace has no %q span", want)
		}
	}
	if len(tids) != 4 {
		t.Errorf("trace covers %d timelines, want 4", len(tids))
	}
}

// TestSequentialTelemetry checks the sequential engine's synthetic rank row
// and probe wiring.
func TestSequentialTelemetry(t *testing.T) {
	b := benchSet(t, 40, 4, 5)
	var buf bytes.Buffer
	cfg := DefaultConfig(1)
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Trace = telemetry.NewTraceWriter(&buf)

	res, err := Run(b.ESTs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if len(st.PerRank) != 1 || st.PerRank[0].Role != "seq" {
		t.Fatalf("sequential PerRank = %+v, want one seq row", st.PerRank)
	}
	if st.PerRank[0].PairsProcessed != st.PairsProcessed {
		t.Errorf("seq row processed = %d, want %d", st.PerRank[0].PairsProcessed, st.PairsProcessed)
	}
	snap := cfg.Metrics.Snapshot()
	if got := snap[mPairsProcessed]; int64(got) != st.PairsProcessed {
		t.Errorf("registry %s = %v, want %d", mPairsProcessed, got, st.PairsProcessed)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Error("sequential trace is empty")
	}
}
