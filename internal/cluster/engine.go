package cluster

// The engine is split along its roles:
//
//	engine.go  — entry points, the sequential engine, and the phases every
//	             rank shares (prologue, suffix redistribution ranges)
//	master.go  — the master rank: dispatch, flow control, failure recovery
//	slave.go   — the slave rank: GST share, pair generation, alignment loop
//	merge.go   — the merge policy seam: how accepted pairs become merges
//	codec.go   — the wire protocol

import (
	"fmt"
	"time"

	"pace/internal/align"
	"pace/internal/mp"
	"pace/internal/pairgen"
	"pace/internal/seq"
	"pace/internal/suffix"
	"pace/internal/unionfind"
)

// Run clusters the given ESTs and returns the resulting partition with run
// statistics. With MP.Procs == 1 the whole pipeline runs sequentially in
// process; otherwise rank 0 acts as the master and ranks 1..p-1 as slaves on
// the configured message-passing machine.
func Run(ests []seq.Sequence, cfg Config) (*Result, error) {
	set, err := seq.NewSetS(ests)
	if err != nil {
		return nil, err
	}
	return RunSet(set, cfg)
}

// alignPairs runs the anchored banded extension on each pair and returns the
// per-pair verdicts.
func alignPairs(set *seq.SetS, ext *align.Extender, cfg Config, pairs []pairgen.Pair) ([]alignResult, error) {
	out := make([]alignResult, 0, len(pairs))
	for _, p := range pairs {
		res, err := ext.Extend(set.Str(p.S1), set.Str(p.S2), p.Pos1, p.Pos2, p.MatchLen)
		if err != nil {
			return nil, fmt.Errorf("cluster: aligning pair %+v: %w", p, err)
		}
		i, j := p.ESTs()
		out = append(out, alignResult{
			estI:     i,
			estJ:     j,
			accepted: res.Accept(cfg.Scoring, cfg.Criteria),
		})
	}
	return out, nil
}

// wallElapsed returns a monotonic clock counting from now. It is the
// sequential engine's time base: that path runs outside the mp machine, so
// real time is — by definition — its only clock.
func wallElapsed() func() time.Duration {
	//pacelint:allow walltime the sequential engine has no virtual clock; wall time is its time base
	t0 := time.Now()
	return func() time.Duration {
		//pacelint:allow walltime the sequential engine has no virtual clock; wall time is its time base
		return time.Since(t0)
	}
}

// runSequential is the single-process engine: generate batches in decreasing
// order, skip same-cluster pairs, align, merge. Under the sharded merge
// policy (MergeShards >= 1) accepted pairs accumulate as a per-batch delta
// applied at the batch boundary — the same deferred-merge semantics the
// parallel delta protocol has, so the sequential engine is a valid
// equivalence reference for it.
func runSequential(set *seq.SetS, cfg Config) (*Result, error) {
	pr := newProbes(cfg.Metrics)
	tw := cfg.Trace
	if tw != nil {
		tw.ProcessName(cfg.TracePID, cfg.traceProcess())
		traceThreadName(tw, cfg.TracePID, 0, "seq")
	}
	res := &Result{}
	st := &res.Stats

	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	clk := wallElapsed()
	t0 := clk()
	fb, err := buildSequentialForest(set, cfg, st, clk)
	if err != nil {
		return nil, err
	}
	st.Phases.Partition = fb.partition
	st.Phases.Construct = fb.construct
	pr.observeBuckets(fb.hist, suffix.Loads(fb.hist, suffix.Assign(fb.hist, 1), 1))
	if tw != nil {
		tw.Span(cfg.TracePID, 0, "partition", "gst", 0, st.Phases.Partition)
		tw.Span(cfg.TracePID, 0, "construct", "gst", st.Phases.Partition, st.Phases.Construct)
	}

	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	t2 := clk()
	gen, err := pairgen.NewFresh(set, fb.forest, cfg.Psi, cfg.FreshGen)
	if err != nil {
		return nil, err
	}
	gen.Observe(pr.observer(clk))
	st.Phases.Sort = clk() - t2
	if tw != nil {
		tw.Span(cfg.TracePID, 0, "sort", "pairgen", t2-t0, st.Phases.Sort)
	}

	ext, err := align.NewExtender(cfg.Scoring, cfg.Band)
	if err != nil {
		return nil, err
	}
	m := newMerger(cfg, set.NumESTs())
	seedMerges, err := seedClusters(m, cfg.InitialLabels, set.NumESTs())
	if err != nil {
		return nil, err
	}
	st.Recovery.SeedMerges = seedMerges
	if pr != nil {
		pr.seedMerges.Set(seedMerges)
	}
	if seedMerges > 0 {
		cfg.logger().Info("seeded prior partition", "merges", seedMerges)
	}
	ck := newCheckpointer(cfg, set.NumESTs(), st, pr, clk)
	buf := make([]pairgen.Pair, 0, cfg.BatchSize)
	var batchEdges []unionfind.MergeEdge
	for {
		if err := cfg.ctxErr(); err != nil {
			return nil, err
		}
		buf = gen.Next(buf[:0], cfg.BatchSize)
		if len(buf) == 0 {
			break
		}
		tBatch := clk() - t0
		var batchAlign time.Duration
		for _, p := range buf {
			i, j := p.ESTs()
			if cfg.SkipSameCluster && m.Same(int32(i), int32(j)) {
				st.PairsSkipped++
				if pr != nil {
					pr.skipped.Inc()
				}
				continue
			}
			tA := clk()
			r, err := ext.Extend(set.Str(p.S1), set.Str(p.S2), p.Pos1, p.Pos2, p.MatchLen)
			batchAlign += clk() - tA
			if err != nil {
				return nil, err
			}
			st.PairsProcessed++
			if pr != nil {
				pr.processed.Inc()
			}
			if r.Accept(cfg.Scoring, cfg.Criteria) {
				st.PairsAccepted++
				if pr != nil {
					pr.accepted.Inc()
				}
				if cfg.MergeShards > 0 {
					batchEdges = append(batchEdges, unionfind.MergeEdge{A: int32(i), B: int32(j)})
				} else if m.Union(int32(i), int32(j)) {
					st.Merges++
					if pr != nil {
						pr.merges.Inc()
					}
				}
			}
		}
		if len(batchEdges) > 0 {
			tR := clk()
			links := m.apply(batchEdges)
			dR := clk() - tR
			st.MasterReconcileWait += dR
			st.Merges += links
			if pr != nil {
				pr.merges.Add(links)
				pr.reconApplyNs.Observe(int64(dR))
			}
			batchEdges = batchEdges[:0]
		}
		st.Phases.Align += batchAlign
		if tw != nil && batchAlign > 0 {
			tw.Span(cfg.TracePID, 0, "align", "cluster", tBatch, batchAlign)
		}
		if err := ck.maybe(m, st.PairsProcessed, st.PairsAccepted, st.PairsSkipped, st.Merges, false); err != nil {
			return nil, err
		}
	}
	if err := ck.maybe(m, st.PairsProcessed, st.PairsAccepted, st.PairsSkipped, st.Merges, true); err != nil {
		return nil, err
	}
	st.PairsGenerated = gen.Stats().Generated
	if cfg.FreshGen > 0 {
		st.Incremental.FreshPairs = gen.Stats().Generated
		st.Incremental.StaleSuppressed = gen.Stats().DiscardedStale
	}
	if cfg.FreshGen > 0 || cfg.Cache != nil {
		pr.recordIncremental(st.Incremental)
	}
	st.Reconcile = m.reconcile()
	pr.recordReconcile(st.Reconcile)
	st.Phases.Total = clk() - t0
	st.PerRank = []RankStats{{
		Rank: 0, Role: "seq",
		Partition: st.Phases.Partition, Construct: st.Phases.Construct,
		Sort: st.Phases.Sort, Align: st.Phases.Align, Total: st.Phases.Total,
		PairsGenerated: st.PairsGenerated, PairsProcessed: st.PairsProcessed,
		PairsAccepted: st.PairsAccepted,
	}}
	res.Labels = m.Labels()
	res.NumClusters = m.Count()
	return res, nil
}

// runParallel launches the master–slave machine. Under cfg.Recover a
// successful master is authoritative: slave ranks that died mid-run were
// recovered from, so their errors do not fail the run.
func runParallel(set *seq.SetS, cfg Config) (*Result, error) {
	var result *Result
	errs, err := mp.RunRanks(cfg.MP, func(c *mp.Comm) error {
		if c.Rank() == 0 {
			r, err := runMaster(set, cfg, c)
			result = r
			return err
		}
		return runSlave(set, cfg, c)
	})
	if err != nil {
		return nil, err
	}
	if errs[0] != nil || !cfg.Recover {
		if first := mp.FirstError(errs); first != nil {
			return nil, first
		}
	}
	return result, nil
}

// shareRange splits the 2n strings over the p-1 slaves for histogram
// computation; slave index si in [0, slaves).
func shareRange(si, slaves, total int) (seq.StringID, seq.StringID) {
	lo := si * total / slaves
	hi := (si + 1) * total / slaves
	return seq.StringID(lo), seq.StringID(hi)
}

// prologue is the partitioning phase run by every rank: per-share histogram,
// global summation (O(log p) allreduce), and the deterministic bucket-to-
// slave assignment. It also returns the global histogram so the master can
// publish the bucket-size distribution and redistribution skew.
func prologue(set *seq.SetS, cfg Config, c *mp.Comm) ([]int32, []int64, error) {
	slaves := c.Size() - 1
	var hist, freshHist []int64
	if c.Rank() == 0 {
		hist = make([]int64, suffix.NumBuckets(cfg.Window))
	} else {
		lo, hi := shareRange(c.Rank()-1, slaves, set.NumStrings())
		hist = suffix.Histogram(set, cfg.Window, lo, hi)
	}
	global, err := c.AllreduceSumInt64(hist)
	if err != nil {
		return nil, nil, err
	}
	if cfg.FreshGen == 0 {
		return suffix.Assign(global, slaves), global, nil
	}
	// Incremental run: a second allreduce sums the fresh-suffix histogram,
	// and only touched buckets get an owner — every pair involving a fresh
	// string lands in a bucket some fresh suffix falls into, so untouched
	// buckets are neither shipped nor rebuilt.
	if c.Rank() == 0 {
		freshHist = make([]int64, suffix.NumBuckets(cfg.Window))
	} else {
		lo, hi := shareRange(c.Rank()-1, slaves, set.NumStrings())
		freshHist = suffix.HistogramFrom(set, cfg.Window, cfg.FreshGen, lo, hi)
	}
	globalFresh, err := c.AllreduceSumInt64(freshHist)
	if err != nil {
		return nil, nil, err
	}
	return suffix.AssignFresh(global, globalFresh, slaves), global, nil
}

// fillComm snapshots a rank's communication counters into its phase report,
// taken just before the final gather so every rank's cut-off is uniform.
func fillComm(p *phaseReport, s mp.CommStats) {
	p.msgsSent, p.bytesSent = s.MsgsSent, s.BytesSent
	p.msgsRecv, p.bytesRecv = s.MsgsRecv, s.BytesRecv
	p.recvWaitNs = int64(s.RecvWait)
	p.collOps = s.Collectives.Ops()
	p.collTimeNs = int64(s.Collectives.Time)
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
