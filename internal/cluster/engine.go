package cluster

import (
	"errors"
	"fmt"
	"time"

	"pace/internal/align"
	"pace/internal/mp"
	"pace/internal/pairgen"
	"pace/internal/seq"
	"pace/internal/suffix"
	"pace/internal/unionfind"
)

// Run clusters the given ESTs and returns the resulting partition with run
// statistics. With MP.Procs == 1 the whole pipeline runs sequentially in
// process; otherwise rank 0 acts as the master and ranks 1..p-1 as slaves on
// the configured message-passing machine.
func Run(ests []seq.Sequence, cfg Config) (*Result, error) {
	set, err := seq.NewSetS(ests)
	if err != nil {
		return nil, err
	}
	return RunSet(set, cfg)
}

// seedClusters merges ESTs that share a non-negative initial label. Labels
// may cover only a prefix of the ESTs (old batch before newly arrived ones).
// It returns the number of union operations performed, so a resumed run can
// report how much work the seed (e.g. a checkpoint) already covered.
func seedClusters(uf *unionfind.UF, labels []int32) (int64, error) {
	if len(labels) > uf.Len() {
		return 0, fmt.Errorf("cluster: %d initial labels for %d ESTs", len(labels), uf.Len())
	}
	first := make(map[int32]int32)
	var merges int64
	for i, l := range labels {
		if l < 0 {
			continue
		}
		if f, ok := first[l]; ok {
			if uf.Union(f, int32(i)) {
				merges++
			}
		} else {
			first[l] = int32(i)
		}
	}
	return merges, nil
}

// alignPairs runs the anchored banded extension on each pair and returns the
// per-pair verdicts.
func alignPairs(set *seq.SetS, ext *align.Extender, cfg Config, pairs []pairgen.Pair) ([]alignResult, error) {
	out := make([]alignResult, 0, len(pairs))
	for _, p := range pairs {
		res, err := ext.Extend(set.Str(p.S1), set.Str(p.S2), p.Pos1, p.Pos2, p.MatchLen)
		if err != nil {
			return nil, fmt.Errorf("cluster: aligning pair %+v: %w", p, err)
		}
		i, j := p.ESTs()
		out = append(out, alignResult{
			estI:     i,
			estJ:     j,
			accepted: res.Accept(cfg.Scoring, cfg.Criteria),
		})
	}
	return out, nil
}

// wallElapsed returns a monotonic clock counting from now. It is the
// sequential engine's time base: that path runs outside the mp machine, so
// real time is — by definition — its only clock.
func wallElapsed() func() time.Duration {
	//pacelint:allow walltime the sequential engine has no virtual clock; wall time is its time base
	t0 := time.Now()
	return func() time.Duration {
		//pacelint:allow walltime the sequential engine has no virtual clock; wall time is its time base
		return time.Since(t0)
	}
}

// runSequential is the single-process engine: generate batches in decreasing
// order, skip same-cluster pairs, align, merge.
func runSequential(set *seq.SetS, cfg Config) (*Result, error) {
	pr := newProbes(cfg.Metrics)
	tw := cfg.Trace
	if tw != nil {
		tw.ProcessName(cfg.TracePID, cfg.traceProcess())
		traceThreadName(tw, cfg.TracePID, 0, "seq")
	}
	res := &Result{}
	st := &res.Stats

	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	clk := wallElapsed()
	t0 := clk()
	fb, err := buildSequentialForest(set, cfg, st, clk)
	if err != nil {
		return nil, err
	}
	st.Phases.Partition = fb.partition
	st.Phases.Construct = fb.construct
	pr.observeBuckets(fb.hist, suffix.Loads(fb.hist, suffix.Assign(fb.hist, 1), 1))
	if tw != nil {
		tw.Span(cfg.TracePID, 0, "partition", "gst", 0, st.Phases.Partition)
		tw.Span(cfg.TracePID, 0, "construct", "gst", st.Phases.Partition, st.Phases.Construct)
	}

	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	t2 := clk()
	gen, err := pairgen.NewFresh(set, fb.forest, cfg.Psi, cfg.FreshGen)
	if err != nil {
		return nil, err
	}
	gen.Observe(pr.observer(clk))
	st.Phases.Sort = clk() - t2
	if tw != nil {
		tw.Span(cfg.TracePID, 0, "sort", "pairgen", t2-t0, st.Phases.Sort)
	}

	ext, err := align.NewExtender(cfg.Scoring, cfg.Band)
	if err != nil {
		return nil, err
	}
	uf := unionfind.New(set.NumESTs())
	seedMerges, err := seedClusters(uf, cfg.InitialLabels)
	if err != nil {
		return nil, err
	}
	st.Recovery.SeedMerges = seedMerges
	if pr != nil {
		pr.seedMerges.Set(seedMerges)
	}
	if seedMerges > 0 {
		cfg.logger().Info("seeded prior partition", "merges", seedMerges)
	}
	ck := newCheckpointer(cfg, set.NumESTs(), st, pr, clk)
	buf := make([]pairgen.Pair, 0, cfg.BatchSize)
	for {
		if err := cfg.ctxErr(); err != nil {
			return nil, err
		}
		buf = gen.Next(buf[:0], cfg.BatchSize)
		if len(buf) == 0 {
			break
		}
		tBatch := clk() - t0
		var batchAlign time.Duration
		for _, p := range buf {
			i, j := p.ESTs()
			if cfg.SkipSameCluster && uf.Same(int32(i), int32(j)) {
				st.PairsSkipped++
				if pr != nil {
					pr.skipped.Inc()
				}
				continue
			}
			tA := clk()
			r, err := ext.Extend(set.Str(p.S1), set.Str(p.S2), p.Pos1, p.Pos2, p.MatchLen)
			batchAlign += clk() - tA
			if err != nil {
				return nil, err
			}
			st.PairsProcessed++
			if pr != nil {
				pr.processed.Inc()
			}
			if r.Accept(cfg.Scoring, cfg.Criteria) {
				st.PairsAccepted++
				if pr != nil {
					pr.accepted.Inc()
				}
				if uf.Union(int32(i), int32(j)) {
					st.Merges++
					if pr != nil {
						pr.merges.Inc()
					}
				}
			}
		}
		st.Phases.Align += batchAlign
		if tw != nil && batchAlign > 0 {
			tw.Span(cfg.TracePID, 0, "align", "cluster", tBatch, batchAlign)
		}
		if err := ck.maybe(uf, st.PairsProcessed, st.PairsAccepted, st.PairsSkipped, st.Merges, false); err != nil {
			return nil, err
		}
	}
	if err := ck.maybe(uf, st.PairsProcessed, st.PairsAccepted, st.PairsSkipped, st.Merges, true); err != nil {
		return nil, err
	}
	st.PairsGenerated = gen.Stats().Generated
	if cfg.FreshGen > 0 {
		st.Incremental.FreshPairs = gen.Stats().Generated
		st.Incremental.StaleSuppressed = gen.Stats().DiscardedStale
	}
	if cfg.FreshGen > 0 || cfg.Cache != nil {
		pr.recordIncremental(st.Incremental)
	}
	st.Phases.Total = clk() - t0
	st.PerRank = []RankStats{{
		Rank: 0, Role: "seq",
		Partition: st.Phases.Partition, Construct: st.Phases.Construct,
		Sort: st.Phases.Sort, Align: st.Phases.Align, Total: st.Phases.Total,
		PairsGenerated: st.PairsGenerated, PairsProcessed: st.PairsProcessed,
		PairsAccepted: st.PairsAccepted,
	}}
	res.Labels = uf.Labels()
	res.NumClusters = uf.Count()
	return res, nil
}

// runParallel launches the master–slave machine. Under cfg.Recover a
// successful master is authoritative: slave ranks that died mid-run were
// recovered from, so their errors do not fail the run.
func runParallel(set *seq.SetS, cfg Config) (*Result, error) {
	var result *Result
	errs, err := mp.RunRanks(cfg.MP, func(c *mp.Comm) error {
		if c.Rank() == 0 {
			r, err := runMaster(set, cfg, c)
			result = r
			return err
		}
		return runSlave(set, cfg, c)
	})
	if err != nil {
		return nil, err
	}
	if errs[0] != nil || !cfg.Recover {
		if first := mp.FirstError(errs); first != nil {
			return nil, first
		}
	}
	return result, nil
}

// shareRange splits the 2n strings over the p-1 slaves for histogram
// computation; slave index si in [0, slaves).
func shareRange(si, slaves, total int) (seq.StringID, seq.StringID) {
	lo := si * total / slaves
	hi := (si + 1) * total / slaves
	return seq.StringID(lo), seq.StringID(hi)
}

// prologue is the partitioning phase run by every rank: per-share histogram,
// global summation (O(log p) allreduce), and the deterministic bucket-to-
// slave assignment. It also returns the global histogram so the master can
// publish the bucket-size distribution and redistribution skew.
func prologue(set *seq.SetS, cfg Config, c *mp.Comm) ([]int32, []int64, error) {
	slaves := c.Size() - 1
	var hist, freshHist []int64
	if c.Rank() == 0 {
		hist = make([]int64, suffix.NumBuckets(cfg.Window))
	} else {
		lo, hi := shareRange(c.Rank()-1, slaves, set.NumStrings())
		hist = suffix.Histogram(set, cfg.Window, lo, hi)
	}
	global, err := c.AllreduceSumInt64(hist)
	if err != nil {
		return nil, nil, err
	}
	if cfg.FreshGen == 0 {
		return suffix.Assign(global, slaves), global, nil
	}
	// Incremental run: a second allreduce sums the fresh-suffix histogram,
	// and only touched buckets get an owner — every pair involving a fresh
	// string lands in a bucket some fresh suffix falls into, so untouched
	// buckets are neither shipped nor rebuilt.
	if c.Rank() == 0 {
		freshHist = make([]int64, suffix.NumBuckets(cfg.Window))
	} else {
		lo, hi := shareRange(c.Rank()-1, slaves, set.NumStrings())
		freshHist = suffix.HistogramFrom(set, cfg.Window, cfg.FreshGen, lo, hi)
	}
	globalFresh, err := c.AllreduceSumInt64(freshHist)
	if err != nil {
		return nil, nil, err
	}
	return suffix.AssignFresh(global, globalFresh, slaves), global, nil
}

// fillComm snapshots a rank's communication counters into its phase report,
// taken just before the final gather so every rank's cut-off is uniform.
func fillComm(p *phaseReport, s mp.CommStats) {
	p.msgsSent, p.bytesSent = s.MsgsSent, s.BytesSent
	p.msgsRecv, p.bytesRecv = s.MsgsRecv, s.BytesRecv
	p.recvWaitNs = int64(s.RecvWait)
	p.collOps = s.Collectives.Ops()
	p.collTimeNs = int64(s.Collectives.Time)
}

// masterState tracks one slave's protocol position.
type masterState struct {
	generatorDone bool // last report said passive
	hasNextWork   bool // slave holds a batch whose results are pending
	idle          bool // parked with nothing to do; candidate for stop
	granted       int  // outstanding grant E: pairs the slave may still report
	dead          bool // rank failed; excluded from the protocol
	owes          int  // reports the slave will still send
	// inflight is the FIFO of dispatched batches not yet acknowledged by a
	// report's ackWork flag; when the slave dies they are requeued to the
	// survivors.
	inflight [][]pairgen.Pair
	// shards are the generator partitions this slave covers: its initial
	// one (part = rank-1, 1 of 1) plus any dead-slave shards it took over.
	// When the slave dies they are subdivided among the survivors.
	shards []shard
}

// grantE computes the paper's flow-control grant E = min(α·δ·batchsize,
// nfree/p) for one slave interaction.
//
//   - α (clamped to cfg.alphaMax()) is the redundancy factor: reported pairs
//     per pair that survived same-cluster filtering. When the whole batch
//     was redundant the ratio is undefined; the cap is used directly rather
//     than the seed's unbounded raw batch length.
//   - δ = slaves/active spreads the generation load of finished slaves over
//     the rest.
//   - nfree must already account for every outstanding grant, so that the
//     sum of buffered pairs and pairs-in-flight can never exceed
//     WorkBufCap. The never-starve floor of 1 is likewise granted only
//     against genuinely free space.
func grantE(cfg Config, reported, added, active, slaves, p, nfree int) int {
	if nfree < 0 {
		nfree = 0
	}
	alpha := 1.0
	if added > 0 {
		alpha = float64(reported) / float64(added)
	} else if reported > 0 {
		alpha = cfg.alphaMax()
	}
	if alpha > cfg.alphaMax() {
		alpha = cfg.alphaMax()
	}
	delta := float64(slaves) / float64(max(1, active))
	e := min(int(alpha*delta*float64(cfg.BatchSize)), nfree/p)
	if e < 1 && nfree > 0 {
		// Never starve an active generator entirely, or it could park
		// with pairs still unreported — but only within free space.
		e = 1
	}
	return e
}

func runMaster(set *seq.SetS, cfg Config, c *mp.Comm) (*Result, error) {
	pr := newProbes(cfg.Metrics)
	tw := cfg.Trace
	if tw != nil {
		tw.ProcessName(cfg.TracePID, cfg.traceProcess())
		traceThreadName(tw, cfg.TracePID, 0, "master")
	}
	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	tStart := c.Elapsed()
	owner, global, err := prologue(set, cfg, c)
	if err != nil {
		return nil, err
	}
	tPart := c.Elapsed() - tStart
	pr.observeBuckets(global, suffix.Loads(global, owner, c.Size()-1))
	if tw != nil {
		tw.Span(cfg.TracePID, 0, "partition", "gst", tStart, tPart)
	}

	res := &Result{}
	st := &res.Stats
	if cfg.FreshGen > 0 {
		var rebuilt int64
		for b, h := range global {
			if h > 0 && owner[b] >= 0 {
				rebuilt++
			}
		}
		st.Incremental.BucketsRebuilt = rebuilt
		st.Incremental.BucketsReused = nonEmptyBuckets(global) - rebuilt
	}
	uf := unionfind.New(set.NumESTs())
	seedMerges, err := seedClusters(uf, cfg.InitialLabels)
	if err != nil {
		return nil, err
	}
	st.Recovery.SeedMerges = seedMerges
	if pr != nil {
		pr.seedMerges.Set(seedMerges)
	}
	if seedMerges > 0 {
		cfg.logger().Info("seeded prior partition", "merges", seedMerges)
	}
	ck := newCheckpointer(cfg, set.NumESTs(), st, pr, c.Elapsed)

	slaves := c.Size() - 1
	p := c.Size()
	states := make([]masterState, c.Size())
	// Every slave's unsolicited first report carries up to bootstrapGrant
	// pairs; charge those grants up front so the WORKBUF bound holds from
	// the first message on.
	grantedTotal := 0
	for r := 1; r <= slaves; r++ {
		states[r].granted = bootstrapGrant(cfg, p)
		grantedTotal += states[r].granted
		states[r].owes = 1 // the unsolicited first report
		states[r].shards = []shard{{part: int32(r - 1), idx: 0, of: 1}}
	}

	var workbuf []pairgen.Pair
	head := 0
	// requeued holds pairs reclaimed from dead slaves' in-flight batches.
	// They drain ahead of WORKBUF and are deliberately not counted against
	// its occupancy: they already passed admission control once, and the
	// WorkBufHighWater ≤ WorkBufCap invariant is about admission.
	var requeued []pairgen.Pair
	// pendingShards are dead slaves' generator shards awaiting a survivor.
	var pendingShards []shard
	buffered := func() int { return len(workbuf) - head }
	compact := func() {
		if head > 0 && head >= len(workbuf)/2 {
			workbuf = append(workbuf[:0], workbuf[head:]...)
			head = 0
		}
	}

	// popBatch extracts up to BatchSize pairs whose ESTs are still in
	// different clusters (clusters may have merged since enqueue),
	// requeued recovery pairs first.
	popBatch := func() []pairgen.Pair {
		var out []pairgen.Pair
		keep := func(p pairgen.Pair) bool {
			i, j := p.ESTs()
			if cfg.SkipSameCluster && uf.Same(int32(i), int32(j)) {
				st.PairsSkipped++
				if pr != nil {
					pr.skipped.Inc()
				}
				return false
			}
			return true
		}
		for len(requeued) > 0 && len(out) < cfg.BatchSize {
			p := requeued[0]
			requeued = requeued[1:]
			if keep(p) {
				out = append(out, p)
			}
		}
		for head < len(workbuf) && len(out) < cfg.BatchSize {
			p := workbuf[head]
			head++
			if keep(p) {
				out = append(out, p)
			}
		}
		compact()
		return out
	}

	activeSlaves := func() int {
		a := 0
		for r := 1; r <= slaves; r++ {
			if !states[r].dead && !states[r].generatorDone {
				a++
			}
		}
		return a
	}

	// Wire messages are encoded into one reusable scratch buffer: the mp
	// ownership contract (copy-on-send) makes the reuse safe, so the
	// master's steady state allocates nothing per interaction.
	var wire []byte
	sendWork := func(to int, w work) error {
		wire = appendWork(wire[:0], w)
		return c.Send(to, tagWork, wire)
	}
	// dispatch sends a non-stop work message and records the protocol
	// consequences: one more report owed, and a non-empty batch joins the
	// slave's in-flight FIFO until a report acknowledges it.
	dispatch := func(to int, w work) error {
		if err := sendWork(to, w); err != nil {
			return err
		}
		if len(w.pairs) > 0 {
			states[to].inflight = append(states[to].inflight, w.pairs)
		}
		states[to].owes++
		states[to].idle = false
		return nil
	}

	grantFor := func(reported, added int) int {
		nfree := cfg.WorkBufCap - buffered() - grantedTotal
		return grantE(cfg, reported, added, activeSlaves(), slaves, p, nfree)
	}

	// done: no work buffered anywhere, no shard awaiting a survivor, and
	// every living slave is parked with no report outstanding.
	done := func() bool {
		if buffered() > 0 || len(requeued) > 0 || len(pendingShards) > 0 {
			return false
		}
		for r := 1; r <= slaves; r++ {
			if states[r].dead {
				continue
			}
			if states[r].owes > 0 || !states[r].idle {
				return false
			}
		}
		return true
	}

	// Surplus work re-activates parked slaves.
	reactivate := func() error {
		for r := 1; r <= slaves && buffered()+len(requeued) > 0; r++ {
			if states[r].dead || !states[r].idle {
				continue
			}
			batch := popBatch()
			if len(batch) == 0 {
				break
			}
			if err := dispatch(r, work{pairs: batch}); err != nil {
				return err
			}
		}
		return nil
	}

	// handleDeath recovers from slave s failing mid-protocol: reclaim its
	// outstanding grant, requeue its unacknowledged batches, and subdivide
	// its generator shards among the survivors, who rebuild them locally
	// and regenerate the remaining pairs. Regenerated pairs overlap work
	// the dead slave already reported; the same-cluster filter and the
	// idempotence of union-find merges absorb the duplicates, so the final
	// clusters match a failure-free run.
	handleDeath := func(s int) error {
		states[s].dead = true
		states[s].idle = false
		states[s].owes = 0
		reclaimed := int64(states[s].granted)
		grantedTotal -= states[s].granted
		states[s].granted = 0
		var requeuedNow int64
		for _, b := range states[s].inflight {
			requeued = append(requeued, b...)
			requeuedNow += int64(len(b))
		}
		states[s].inflight = nil
		st.Recovery.RanksLost++
		st.Recovery.GrantsReclaimed += reclaimed
		st.Recovery.PairsRequeued += requeuedNow

		var surv []int
		for r := 1; r <= slaves; r++ {
			if !states[r].dead {
				surv = append(surv, r)
			}
		}
		if len(surv) == 0 {
			return fmt.Errorf("cluster: all %d slaves failed; cannot recover", slaves)
		}
		var reassigned int64
		// A passive slave had generated and shipped every pair of its
		// shards before dying — nothing left to regenerate.
		if !states[s].generatorDone {
			k := int32(len(surv))
			for _, sh := range states[s].shards {
				for j := int32(0); j < k; j++ {
					pendingShards = append(pendingShards, shard{part: sh.part, idx: sh.idx + sh.of*j, of: sh.of * k})
				}
				reassigned += int64(k)
			}
			st.Recovery.ShardsReassigned += reassigned
		}
		states[s].shards = nil
		if pr != nil {
			pr.ranksLost.Inc()
			pr.grantsReclaimed.Add(reclaimed)
			pr.pairsRequeued.Add(requeuedNow)
			pr.shardsReassigned.Add(reassigned)
		}
		cfg.logger().Warn("slave rank lost; recovering",
			"rank", s, "survivors", len(surv), "grants_reclaimed", reclaimed,
			"pairs_requeued", requeuedNow, "shards_reassigned", reassigned)
		// Hand shards to parked survivors right away; busy ones collect
		// theirs attached to the reply to their next report.
		for _, r := range surv {
			if len(pendingShards) == 0 {
				break
			}
			if !states[r].idle || states[r].owes > 0 {
				continue
			}
			sh := pendingShards[0]
			pendingShards = pendingShards[1:]
			states[r].shards = append(states[r].shards, sh)
			states[r].generatorDone = false
			e := grantFor(0, 0)
			if err := dispatch(r, work{e: int32(e), recover: []shard{sh}}); err != nil {
				return err
			}
			states[r].granted = e
			grantedTotal += e
		}
		return reactivate()
	}

	// cumProcessed/cumAccepted mirror the slaves' counters from the
	// results stream for checkpointing; the authoritative per-rank totals
	// still arrive with the final phase reports.
	var cumProcessed, cumAccepted int64
	for {
		// Cancellation poll, once per slave interaction. The master is the
		// protocol's hub: returning the error here fails rank 0, which the
		// fail-stop transport propagates to every slave blocked on it, so
		// the whole parallel run unwinds without a stray goroutine left
		// holding the session's string set.
		if err := cfg.ctxErr(); err != nil {
			return nil, err
		}
		var m mp.Msg
		if cfg.SlaveTimeout > 0 {
			m, err = c.RecvTimeout(mp.AnySource, tagReport, cfg.SlaveTimeout)
			if errors.Is(err, mp.ErrTimeout) {
				return nil, fmt.Errorf("cluster: no slave report within SlaveTimeout %v; a slave is wedged", cfg.SlaveTimeout)
			}
		} else {
			m, err = c.Recv(mp.AnySource, tagReport)
		}
		if err != nil {
			var rf *mp.RankFailedError
			if !cfg.Recover || !errors.As(err, &rf) || rf.Rank < 1 || rf.Rank > slaves || states[rf.Rank].dead {
				return nil, err
			}
			busy := c.Elapsed()
			if err := handleDeath(rf.Rank); err != nil {
				return nil, err
			}
			st.MasterBusy += c.Elapsed() - busy
			if done() {
				break
			}
			continue
		}
		busy := c.Elapsed()
		s := m.From
		states[s].owes--
		rep, err := decodeReport(m.Data)
		if err != nil {
			return nil, err
		}
		states[s].generatorDone = rep.passive
		states[s].hasNextWork = rep.hasNextWork
		if rep.ackWork && len(states[s].inflight) > 0 {
			states[s].inflight = states[s].inflight[1:]
		}
		// The grant this report answers is consumed, whether or not the
		// slave used all of it.
		grant := states[s].granted
		grantedTotal -= grant
		states[s].granted = 0
		if len(rep.pairs) > grant {
			// Defensive: a slave exceeding its grant would silently break
			// the WORKBUF bound.
			return nil, fmt.Errorf("cluster: slave %d reported %d pairs, exceeding its grant of %d", s, len(rep.pairs), grant)
		}

		for _, r := range rep.results {
			if r.accepted {
				cumAccepted++
				if uf.Union(int32(r.estI), int32(r.estJ)) {
					st.Merges++
					if pr != nil {
						pr.merges.Inc()
					}
				}
			}
		}
		cumProcessed += int64(len(rep.results))
		added := 0
		for _, pair := range rep.pairs {
			i, j := pair.ESTs()
			if cfg.SkipSameCluster && uf.Same(int32(i), int32(j)) {
				st.PairsSkipped++
				if pr != nil {
					pr.skipped.Inc()
				}
				continue
			}
			workbuf = append(workbuf, pair)
			added++
		}
		if b := buffered(); b > st.WorkBufHighWater {
			st.WorkBufHighWater = b
		}
		if pr != nil {
			b := int64(buffered())
			pr.workbuf.Set(b)
			pr.workbufHW.SetMax(b)
		}
		if tw != nil {
			tw.Counter(cfg.TracePID, "workbuf", c.Elapsed(), int64(buffered()))
		}
		if err := ck.maybe(uf, cumProcessed, cumAccepted, st.PairsSkipped, st.Merges, false); err != nil {
			return nil, err
		}

		// Reply: W pairs from WORKBUF plus the next pair request E, and a
		// pending recovery shard if one is waiting for a taker.
		batch := popBatch()
		var rec []shard
		if len(pendingShards) > 0 {
			rec = pendingShards[:1:1]
			pendingShards = pendingShards[1:]
			states[s].shards = append(states[s].shards, rec[0])
			states[s].generatorDone = false
		}
		e := 0
		if !states[s].generatorDone {
			e = grantFor(len(rep.pairs), added)
			if pr != nil && e > 0 {
				pr.grantE.Observe(int64(e))
			}
		}

		switch {
		case len(batch) > 0 || e > 0 || len(rec) > 0:
			if err := dispatch(s, work{pairs: batch, e: int32(e), recover: rec}); err != nil {
				return nil, err
			}
			states[s].granted = e
			grantedTotal += e
		case rep.hasNextWork || !states[s].generatorDone:
			// The slave either holds a batch whose results we still need,
			// or is an active generator that got no grant because every
			// free WORKBUF slot is pledged to peers. Reply empty in both
			// cases: the slave reports back (keep-alive), and by then
			// peer reports will have released grant space. Parking an
			// active generator here would strand its unreported pairs.
			if err := dispatch(s, work{}); err != nil {
				return nil, err
			}
		default:
			// Park the slave on the wait queue.
			states[s].idle = true
		}

		if err := reactivate(); err != nil {
			return nil, err
		}
		st.MasterBusy += c.Elapsed() - busy
		if done() {
			break
		}
	}

	// Final snapshot: a resumed run starts from the completed partition.
	if err := ck.maybe(uf, cumProcessed, cumAccepted, st.PairsSkipped, st.Merges, true); err != nil {
		return nil, err
	}

	for r := 1; r <= slaves; r++ {
		if states[r].dead {
			continue
		}
		if err := sendWork(r, work{stop: true}); err != nil {
			return nil, err
		}
	}

	// Collect per-rank phase reports and reduce to the Table 3 rows. The
	// collection is point-to-point (tagPhase) rather than a gather so dead
	// ranks can be skipped; they appear as zeroed "lost" rows.
	total := c.Elapsed() - tStart
	cs := c.Stats()
	st.MasterIdle = cs.RecvWait
	mine := phaseReport{partitionNs: int64(tPart), totalNs: int64(total), busyNs: int64(st.MasterBusy)}
	fillComm(&mine, cs)
	st.PerRank = make([]RankStats, 0, c.Size())
	addRow := func(r int, role string, ph phaseReport) {
		st.Phases.Partition = maxDur(st.Phases.Partition, time.Duration(ph.partitionNs))
		st.Phases.Construct = maxDur(st.Phases.Construct, time.Duration(ph.constructNs))
		st.Phases.Sort = maxDur(st.Phases.Sort, time.Duration(ph.sortNs))
		st.Phases.Align = maxDur(st.Phases.Align, time.Duration(ph.alignNs))
		st.Phases.Total = maxDur(st.Phases.Total, time.Duration(ph.totalNs))
		st.PairsGenerated += ph.generated
		st.PairsProcessed += ph.processed
		st.PairsAccepted += ph.accepted
		st.Incremental.StaleSuppressed += ph.stale
		st.PerRank = append(st.PerRank, RankStats{
			Rank: r, Role: role,
			Partition: time.Duration(ph.partitionNs),
			Construct: time.Duration(ph.constructNs),
			Sort:      time.Duration(ph.sortNs),
			Align:     time.Duration(ph.alignNs),
			Total:     time.Duration(ph.totalNs),
			MsgsSent:  ph.msgsSent, BytesSent: ph.bytesSent,
			MsgsRecv: ph.msgsRecv, BytesRecv: ph.bytesRecv,
			RecvWait:       time.Duration(ph.recvWaitNs),
			CollectiveOps:  ph.collOps,
			CollectiveTime: time.Duration(ph.collTimeNs),
			PairsGenerated: ph.generated,
			PairsProcessed: ph.processed,
			PairsAccepted:  ph.accepted,
			Busy:           time.Duration(ph.busyNs),
		})
	}
	addRow(0, "master", mine)
	for r := 1; r <= slaves; r++ {
		if states[r].dead {
			st.PerRank = append(st.PerRank, RankStats{Rank: r, Role: "lost"})
			continue
		}
		pm, err := c.Recv(r, tagPhase)
		if err != nil {
			var rf *mp.RankFailedError
			if cfg.Recover && errors.As(err, &rf) {
				// Died after its protocol work was complete; only its
				// stats are lost.
				st.PerRank = append(st.PerRank, RankStats{Rank: r, Role: "lost"})
				continue
			}
			return nil, err
		}
		ph, err := decodePhase(pm.Data)
		if err != nil {
			return nil, err
		}
		addRow(r, "slave", ph)
	}
	for _, rs := range st.PerRank {
		pr.recordComm(rs)
	}
	if cfg.FreshGen > 0 {
		st.Incremental.FreshPairs = st.PairsGenerated
		pr.recordIncremental(st.Incremental)
	}

	res.Labels = uf.Labels()
	res.NumClusters = uf.Count()
	return res, nil
}

// exchangeSuffixes is the redistribution step of §3.1: each slave scans its
// own share of the strings, groups every suffix by its bucket's owner, and
// ships the (bucket, string, position) triples to that owner. Each slave
// ends up holding exactly the suffixes of its buckets while having scanned
// only 1/(p-1) of the input.
func exchangeSuffixes(set *seq.SetS, cfg Config, c *mp.Comm, owner []int32) (map[int][]suffix.SuffixRef, error) {
	slaves := c.Size() - 1
	me := c.Rank() - 1
	lo, hi := shareRange(me, slaves, set.NumStrings())
	perDest := make([][]uint32, slaves)
	for id := lo; id < hi; id++ {
		suffix.BucketEach(set.Str(id), cfg.Window, func(b int, pos int32) {
			o := owner[b]
			if o >= 0 {
				perDest[o] = append(perDest[o], uint32(b), uint32(id), uint32(pos))
			}
		})
	}
	byBucket := make(map[int][]suffix.SuffixRef)
	absorb := func(flat []uint32) {
		for i := 0; i+2 < len(flat); i += 3 {
			b := int(flat[i])
			byBucket[b] = append(byBucket[b], suffix.SuffixRef{
				SID: seq.StringID(flat[i+1]),
				Pos: int32(flat[i+2]),
			})
		}
	}
	var wire []byte // reused across destinations; mp copies on send
	for s := 0; s < slaves; s++ {
		if s == me {
			continue
		}
		wire = appendU32s(wire[:0], perDest[s])
		if err := c.Send(s+1, tagSuffix, wire); err != nil {
			return nil, err
		}
	}
	// Absorb in fixed source order so bucket contents are deterministic.
	for s := 0; s < slaves; s++ {
		if s == me {
			absorb(perDest[s])
			continue
		}
		m, err := c.Recv(s+1, tagSuffix)
		if err != nil {
			return nil, err
		}
		flat, err := decodeU32s(m.Data)
		if err != nil {
			return nil, err
		}
		absorb(flat)
	}
	return byBucket, nil
}

func runSlave(set *seq.SetS, cfg Config, c *mp.Comm) error {
	pr := newProbes(cfg.Metrics)
	tw := cfg.Trace
	traceThreadName(tw, cfg.TracePID, c.Rank(), "slave")
	if err := cfg.ctxErr(); err != nil {
		return err
	}
	tStart := c.Elapsed()
	owner, _, err := prologue(set, cfg, c)
	if err != nil {
		return err
	}
	byBucket, err := exchangeSuffixes(set, cfg, c, owner)
	if err != nil {
		return err
	}
	tPart := c.Elapsed() - tStart
	if tw != nil {
		tw.Span(cfg.TracePID, c.Rank(), "partition", "gst", tStart, tPart)
	}

	t1 := c.Elapsed()
	var forest []*suffix.Tree
	if len(byBucket) > 0 {
		forest, err = suffix.BuildForest(set, byBucket, cfg.Window)
		if err != nil {
			return err
		}
	}
	tConstruct := c.Elapsed() - t1
	if tw != nil {
		tw.Span(cfg.TracePID, c.Rank(), "construct", "gst", t1, tConstruct)
	}

	t2 := c.Elapsed()
	gen0, err := pairgen.NewFresh(set, forest, cfg.Psi, cfg.FreshGen)
	if err != nil {
		return err
	}
	gen0.Observe(pr.observer(c.Elapsed))
	// The chain starts with this slave's own partition; recovery appends
	// rebuilt dead-slave shards to it.
	chain := &genChain{gens: []*pairgen.Generator{gen0}}
	tSort := c.Elapsed() - t2
	if tw != nil {
		tw.Span(cfg.TracePID, c.Rank(), "sort", "pairgen", t2, tSort)
	}

	ext, err := align.NewExtender(cfg.Scoring, cfg.Band)
	if err != nil {
		return err
	}

	var alignTime time.Duration
	var processed, accepted int64
	alignBatch := func(pairs []pairgen.Pair) ([]alignResult, error) {
		tA := c.Elapsed()
		out, err := alignPairs(set, ext, cfg, pairs)
		dA := c.Elapsed() - tA
		alignTime += dA
		processed += int64(len(pairs))
		var acc int64
		for _, r := range out {
			if r.accepted {
				acc++
			}
		}
		accepted += acc
		if pr != nil {
			pr.processed.Add(int64(len(pairs)))
			pr.accepted.Add(acc)
		}
		if tw != nil && len(pairs) > 0 {
			tw.Span(cfg.TracePID, c.Rank(), "align", "cluster", tA, dA)
		}
		return out, err
	}

	// Reports are encoded into one reusable buffer; safe under the mp
	// copy-on-send ownership contract.
	var wire []byte
	sendReport := func(rep report) error {
		wire = appendReport(wire[:0], rep)
		return c.Send(0, tagReport, wire)
	}

	// Bootstrap: three initial batches — align the first, report its
	// results together with the third, keep the second as NEXTWORK. The
	// unsolicited pairs are capped at the implicit bootstrap grant the
	// master charged against the WORKBUF for this slave.
	b1 := chain.Next(nil, cfg.BatchSize)
	b2 := chain.Next(nil, cfg.BatchSize)
	pairbuf := chain.Next(nil, bootstrapGrant(cfg, c.Size()))
	results, err := alignBatch(b1)
	if err != nil {
		return err
	}
	next := b2
	first := report{
		results:     results,
		pairs:       pairbuf,
		passive:     !chain.Remaining(),
		hasNextWork: len(next) > 0,
	}
	pairbuf = nil
	if err := sendReport(first); err != nil {
		return err
	}

	bufCap := cfg.pairBufCap()
	nextFromMaster := false
	for {
		// Phase-boundary cancellation poll; the master polls too, so this
		// only shortens how long a slave keeps aligning after the abort.
		if err := cfg.ctxErr(); err != nil {
			return err
		}
		// ackThis: the batch about to be aligned came from the master, so
		// the report carrying its results retires it from the master's
		// in-flight FIFO (bootstrap batches are self-generated and must
		// not acknowledge anything).
		ackThis := nextFromMaster
		results, err = alignBatch(next)
		if err != nil {
			return err
		}
		next = nil
		nextFromMaster = false

		// Overlap waiting with pair generation (paper: the slave is
		// never idle while the master prepares its reply).
		for {
			ok, err := c.Probe(0, tagWork)
			if err != nil {
				return err
			}
			if ok {
				break
			}
			if !chain.Remaining() || len(pairbuf) >= bufCap {
				break
			}
			chunk := min(cfg.GenChunk, bufCap-len(pairbuf))
			pairbuf = chain.Next(pairbuf, chunk)
		}
		m, err := c.Recv(0, tagWork)
		if err != nil {
			return err
		}
		w, err := decodeWork(m.Data)
		if err != nil {
			return err
		}
		if w.stop {
			break
		}

		// Rebuild any dead slave's shards assigned to us: every rank
		// holds the full string set, so a survivor can rescan it, keep
		// exactly the shard's buckets, and chain a fresh generator over
		// them. Regenerated pairs may duplicate work the dead slave
		// already reported; the master's same-cluster filter and the
		// idempotence of merges absorb that.
		for _, sh := range w.recover {
			tR := c.Elapsed()
			g, err := rebuildShard(set, cfg, owner, sh)
			if err != nil {
				return err
			}
			g.Observe(pr.observer(c.Elapsed))
			chain.add(g)
			dR := c.Elapsed() - tR
			tConstruct += dR
			if tw != nil {
				tw.Span(cfg.TracePID, c.Rank(), "rebuild", "recovery", tR, dR)
			}
		}

		// Top PAIRBUF up to the requested E.
		for len(pairbuf) < int(w.e) && chain.Remaining() {
			pairbuf = chain.Next(pairbuf, int(w.e)-len(pairbuf))
		}
		p := min(int(w.e), len(pairbuf))
		outPairs := pairbuf[:p:p]
		pairbuf = pairbuf[p:]
		next = w.pairs
		nextFromMaster = len(w.pairs) > 0

		rep := report{
			results:     results,
			pairs:       outPairs,
			passive:     !chain.Remaining() && len(pairbuf) == 0,
			hasNextWork: len(next) > 0,
			ackWork:     ackThis,
		}
		if err := sendReport(rep); err != nil {
			return err
		}
	}

	total := c.Elapsed() - tStart
	mine := phaseReport{
		partitionNs: int64(tPart),
		constructNs: int64(tConstruct),
		sortNs:      int64(tSort),
		alignNs:     int64(alignTime),
		totalNs:     int64(total),
		generated:   chain.Generated(),
		processed:   processed,
		accepted:    accepted,
		stale:       chain.Stale(),
	}
	fillComm(&mine, c.Stats())
	// Point-to-point phase report: a collective here would wedge the
	// survivors whenever a peer died mid-run.
	return c.Send(0, tagPhase, encodePhase(mine))
}

// genChain concatenates pair generators: the slave's own partition plus any
// dead-slave shards it rebuilt during recovery.
type genChain struct {
	gens []*pairgen.Generator
}

func (g *genChain) add(gen *pairgen.Generator) { g.gens = append(g.gens, gen) }

// Next appends up to max more pairs to dst, draining the generators in
// order.
func (g *genChain) Next(dst []pairgen.Pair, max int) []pairgen.Pair {
	want := len(dst) + max
	for _, gen := range g.gens {
		if len(dst) >= want {
			break
		}
		dst = gen.Next(dst, want-len(dst))
	}
	return dst
}

// Remaining reports whether any chained generator can still produce pairs.
func (g *genChain) Remaining() bool {
	for _, gen := range g.gens {
		if gen.Remaining() {
			return true
		}
	}
	return false
}

// Generated sums the pairs produced across the chain.
func (g *genChain) Generated() int64 {
	var n int64
	for _, gen := range g.gens {
		n += gen.Stats().Generated
	}
	return n
}

// Stale sums the old×old pairs the chain's generators suppressed in
// fresh-only mode.
func (g *genChain) Stale() int64 {
	var n int64
	for _, gen := range g.gens {
		n += gen.Stats().DiscardedStale
	}
	return n
}

// rebuildShard reconstructs a dead slave's bucket shard on a survivor. The
// rescan visits every string (ascending id, ascending position — the same
// order exchangeSuffixes produces), so the rebuilt buckets and therefore the
// regenerated pair stream are identical to what the dead slave held.
func rebuildShard(set *seq.SetS, cfg Config, owner []int32, sh shard) (*pairgen.Generator, error) {
	byBucket := make(map[int][]suffix.SuffixRef)
	n := seq.StringID(set.NumStrings())
	for id := seq.StringID(0); id < n; id++ {
		suffix.BucketEach(set.Str(id), cfg.Window, func(b int, pos int32) {
			if owner[b] == sh.part && int32(b)%sh.of == sh.idx {
				byBucket[b] = append(byBucket[b], suffix.SuffixRef{SID: id, Pos: pos})
			}
		})
	}
	var forest []*suffix.Tree
	if len(byBucket) > 0 {
		var err error
		forest, err = suffix.BuildForest(set, byBucket, cfg.Window)
		if err != nil {
			return nil, err
		}
	}
	// Fresh-only mode must survive recovery: a rebuilt shard regenerates the
	// dead slave's restricted pair stream, not the full one.
	return pairgen.NewFresh(set, forest, cfg.Psi, cfg.FreshGen)
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
