package cluster

import (
	"testing"
	"testing/quick"

	"pace/internal/pairgen"
	"pace/internal/seq"
	"pace/internal/unionfind"
)

func TestReportRoundTrip(t *testing.T) {
	rep := report{
		results: []alignResult{
			{estI: 1, estJ: 9, accepted: true},
			{estI: 3, estJ: 4, accepted: false},
		},
		pairs: []pairgen.Pair{
			{S1: seq.Forward(0), S2: seq.Reverse(7), Pos1: 12, Pos2: 0, MatchLen: 31},
		},
		passive:     true,
		hasNextWork: false,
	}
	got, err := decodeReport(encodeReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	if got.passive != rep.passive || got.hasNextWork != rep.hasNextWork {
		t.Errorf("flags: %+v", got)
	}
	if len(got.results) != 2 || got.results[0] != rep.results[0] || got.results[1] != rep.results[1] {
		t.Errorf("results: %+v", got.results)
	}
	if len(got.pairs) != 1 || got.pairs[0] != rep.pairs[0] {
		t.Errorf("pairs: %+v", got.pairs)
	}
}

func TestReportRoundTripEmpty(t *testing.T) {
	got, err := decodeReport(encodeReport(report{hasNextWork: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.results) != 0 || len(got.pairs) != 0 || !got.hasNextWork || got.passive {
		t.Errorf("empty report: %+v", got)
	}
}

func TestWorkRoundTrip(t *testing.T) {
	w := work{
		pairs: []pairgen.Pair{
			{S1: seq.Forward(2), S2: seq.Forward(5), Pos1: 1, Pos2: 2, MatchLen: 25},
			{S1: seq.Forward(0), S2: seq.Reverse(1), Pos1: 0, Pos2: 9, MatchLen: 20},
		},
		e: 44,
	}
	got, err := decodeWork(encodeWork(w))
	if err != nil {
		t.Fatal(err)
	}
	if got.e != 44 || got.stop || len(got.pairs) != 2 {
		t.Fatalf("work: %+v", got)
	}
	for i := range w.pairs {
		if got.pairs[i] != w.pairs[i] {
			t.Errorf("pair %d: %+v", i, got.pairs[i])
		}
	}
	stop, err := decodeWork(encodeWork(work{stop: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !stop.stop {
		t.Error("stop flag lost")
	}
}

func TestReportAckWorkRoundTrip(t *testing.T) {
	got, err := decodeReport(encodeReport(report{ackWork: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !got.ackWork || got.passive || got.hasNextWork {
		t.Errorf("ackWork report: %+v", got)
	}
	got, err = decodeReport(encodeReport(report{passive: true}))
	if err != nil {
		t.Fatal(err)
	}
	if got.ackWork {
		t.Error("ackWork fabricated")
	}
}

func TestWorkRecoverShardsRoundTrip(t *testing.T) {
	w := work{
		e: 7,
		recover: []shard{
			{part: 0, idx: 0, of: 1},
			{part: 3, idx: 2, of: 6},
		},
	}
	got, err := decodeWork(encodeWork(w))
	if err != nil {
		t.Fatal(err)
	}
	if got.e != 7 || len(got.recover) != 2 {
		t.Fatalf("work: %+v", got)
	}
	for i := range w.recover {
		if got.recover[i] != w.recover[i] {
			t.Errorf("shard %d: %+v", i, got.recover[i])
		}
	}
	// Shards and pairs coexist on the wire.
	w.pairs = []pairgen.Pair{{S1: seq.Forward(2), S2: seq.Forward(5), MatchLen: 25}}
	got, err = decodeWork(encodeWork(w))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.pairs) != 1 || len(got.recover) != 2 {
		t.Errorf("mixed work: %+v", got)
	}
	// No shards → no flag, no trailing bytes.
	got, err = decodeWork(encodeWork(work{e: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if got.recover != nil {
		t.Errorf("shards fabricated: %+v", got)
	}
}

func TestDecodeRejectsMalformedShard(t *testing.T) {
	for _, bad := range []shard{
		{part: 1, idx: 0, of: 0},  // of < 1
		{part: 1, idx: 3, of: 3},  // idx >= of
		{part: 1, idx: -1, of: 2}, // idx < 0
	} {
		b := appendU32(nil, 2) // flags: recover present
		b = appendU32(b, 0)    // e
		b = appendU32(b, 0)    // no pairs
		b = appendU32(b, 1)    // one shard
		b = appendU32(b, uint32(bad.part))
		b = appendU32(b, uint32(bad.idx))
		b = appendU32(b, uint32(bad.of))
		if _, err := decodeWork(b); err == nil {
			t.Errorf("malformed shard %+v accepted", bad)
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	b := encodeReport(report{results: []alignResult{{estI: 1, estJ: 2}}})
	if _, err := decodeReport(b[:len(b)-2]); err == nil {
		t.Error("truncated report accepted")
	}
	wb := encodeWork(work{pairs: []pairgen.Pair{{MatchLen: 3}}})
	if _, err := decodeWork(wb[:5]); err == nil {
		t.Error("truncated work accepted")
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b := append(encodeWork(work{e: 1}), 0xFF)
	if _, err := decodeWork(b); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestDecodeRejectsAbsurdCounts(t *testing.T) {
	// A corrupt count field must not cause a huge allocation.
	b := encodeReport(report{})
	b[4] = 0xFF
	b[5] = 0xFF
	b[6] = 0xFF
	b[7] = 0x7F
	if _, err := decodeReport(b); err == nil {
		t.Error("absurd result count accepted")
	}
}

func TestPhaseRoundTrip(t *testing.T) {
	p := phaseReport{
		partitionNs: 1, constructNs: 2, sortNs: 3, alignNs: 4, totalNs: 5,
		generated: 6, processed: 7, accepted: 8,
	}
	got, err := decodePhase(encodePhase(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("phase: %+v", got)
	}
	if _, err := decodePhase(make([]byte, 10)); err == nil {
		t.Error("short phase report accepted")
	}
}

// Property: any report round-trips exactly (testing/quick drives the field
// values; sizes are folded into small ranges to keep messages bounded).
func TestReportRoundTripQuick(t *testing.T) {
	f := func(resRaw []uint32, pairRaw []uint32, passive, hasNext bool) bool {
		rep := report{passive: passive, hasNextWork: hasNext}
		for i := 0; i+1 < len(resRaw) && i < 40; i += 2 {
			rep.results = append(rep.results, alignResult{
				estI:     seq.ESTID(resRaw[i] % (1 << 30)),
				estJ:     seq.ESTID(resRaw[i+1] % (1 << 30)),
				accepted: resRaw[i]%2 == 0,
			})
		}
		for i := 0; i+4 < len(pairRaw) && i < 50; i += 5 {
			rep.pairs = append(rep.pairs, pairgen.Pair{
				S1:       seq.StringID(pairRaw[i] % (1 << 30)),
				S2:       seq.StringID(pairRaw[i+1] % (1 << 30)),
				Pos1:     int32(pairRaw[i+2] % (1 << 20)),
				Pos2:     int32(pairRaw[i+3] % (1 << 20)),
				MatchLen: int32(pairRaw[i+4] % (1 << 12)),
			})
		}
		got, err := decodeReport(encodeReport(rep))
		if err != nil {
			return false
		}
		if got.passive != rep.passive || got.hasNextWork != rep.hasNextWork ||
			len(got.results) != len(rep.results) || len(got.pairs) != len(rep.pairs) {
			return false
		}
		for i := range rep.results {
			if got.results[i] != rep.results[i] {
				return false
			}
		}
		for i := range rep.pairs {
			if got.pairs[i] != rep.pairs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics and never fabricates a
// huge allocation; it either errors or returns a bounded report.
func TestDecodeArbitraryBytesSafe(t *testing.T) {
	f := func(data []byte) bool {
		rep, err := decodeReport(data)
		if err == nil && (len(rep.results) > len(data) || len(rep.pairs) > len(data)) {
			return false
		}
		w, err := decodeWork(data)
		if err == nil && len(w.pairs) > len(data) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The append-form encoders are meant to share one scratch buffer across
// messages (the hot-path pattern in the engine). Re-encoding into the same
// buffer must produce exactly the same bytes as a fresh encode, for every
// message kind, regardless of what the buffer held before.
func TestAppendEncodersReuseBuffer(t *testing.T) {
	rep := report{
		results: []alignResult{{estI: 2, estJ: 7, accepted: true}},
		pairs:   []pairgen.Pair{{S1: seq.Forward(1), S2: seq.Reverse(3), Pos1: 4, Pos2: 5, MatchLen: 22}},
		passive: true,
	}
	w := work{pairs: rep.pairs, e: 17}
	u := []uint32{9, 8, 7, 6}

	var scratch []byte
	check := func(kind string, fresh []byte) {
		scratch = scratch[:0]
		switch kind {
		case "report":
			scratch = appendReport(scratch, rep)
		case "work":
			scratch = appendWork(scratch, w)
		case "u32s":
			scratch = appendU32s(scratch, u)
		}
		if string(scratch) != string(fresh) {
			t.Errorf("%s: reused-buffer encode differs from fresh encode", kind)
		}
	}
	// Interleave the kinds so each reuse starts from a differently-sized,
	// differently-filled buffer.
	for i := 0; i < 3; i++ {
		check("report", encodeReport(rep))
		check("work", encodeWork(w))
		check("u32s", encodeU32s(u))
	}

	// And the reused bytes still decode to the original messages.
	scratch = appendReport(scratch[:0], rep)
	gotRep, err := decodeReport(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !gotRep.passive || len(gotRep.results) != 1 || gotRep.results[0] != rep.results[0] {
		t.Errorf("report corrupted by reuse: %+v", gotRep)
	}
	scratch = appendWork(scratch[:0], w)
	gotW, err := decodeWork(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if gotW.e != 17 || len(gotW.pairs) != 1 || gotW.pairs[0] != w.pairs[0] {
		t.Errorf("work corrupted by reuse: %+v", gotW)
	}
}

// Delta reports (flag bit 8) replace per-pair results with the processed and
// accepted counts plus a length-prefixed UFD1 merge-delta blob.
func TestReportDeltaRoundTrip(t *testing.T) {
	rep := report{
		pairs: []pairgen.Pair{
			{S1: seq.Forward(0), S2: seq.Reverse(7), Pos1: 12, Pos2: 0, MatchLen: 31},
		},
		hasNextWork:    true,
		hasDelta:       true,
		deltaProcessed: 42,
		deltaAccepted:  5,
		delta: unionfind.MergeDelta{Edges: []unionfind.MergeEdge{
			{A: 9, B: 1}, {A: 4, B: 3},
		}},
	}
	got, err := decodeReport(encodeReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	if !got.hasDelta || got.deltaProcessed != 42 || got.deltaAccepted != 5 {
		t.Errorf("delta header: %+v", got)
	}
	if len(got.delta.Edges) != 2 || got.delta.Edges[0] != rep.delta.Edges[0] || got.delta.Edges[1] != rep.delta.Edges[1] {
		t.Errorf("delta edges: %+v", got.delta.Edges)
	}
	if len(got.results) != 0 || len(got.pairs) != 1 || got.pairs[0] != rep.pairs[0] {
		t.Errorf("non-delta sections: %+v", got)
	}

	// An empty delta (all accepted pairs locally redundant) still carries
	// honest counts.
	empty := report{hasDelta: true, deltaProcessed: 7}
	got, err = decodeReport(encodeReport(empty))
	if err != nil {
		t.Fatal(err)
	}
	if !got.hasDelta || got.deltaProcessed != 7 || got.deltaAccepted != 0 || len(got.delta.Edges) != 0 {
		t.Errorf("empty delta: %+v", got)
	}
}

// A report cannot carry both per-pair results and a merge delta: the two
// protocols are mutually exclusive and the decoder must reject the mix (a
// corrupted or confused sender) rather than double-count merges.
func TestDecodeRejectsMixedDeltaResults(t *testing.T) {
	rep := report{
		results:  []alignResult{{estI: 1, estJ: 2, accepted: true}},
		hasDelta: true,
	}
	if _, err := decodeReport(encodeReport(rep)); err == nil {
		t.Fatal("decoder accepted a report with both results and a delta")
	}
}

// Truncating anywhere inside the delta section must fail loudly, and the
// reuse contract extends to delta reports.
func TestReportDeltaTruncatedAndReuse(t *testing.T) {
	rep := report{
		hasDelta:       true,
		deltaProcessed: 3,
		deltaAccepted:  2,
		delta: unionfind.MergeDelta{Edges: []unionfind.MergeEdge{
			{A: 5, B: 0}, {A: 8, B: 5},
		}},
	}
	full := encodeReport(rep)
	for cut := len(full) - 1; cut > len(full)-30 && cut >= 0; cut-- {
		if _, err := decodeReport(full[:cut]); err == nil {
			t.Fatalf("decoder accepted delta report truncated to %d of %d bytes", cut, len(full))
		}
	}

	scratch := append([]byte("garbage-prefix"), 0xEE)[:0]
	scratch = appendReport(scratch, rep)
	if string(scratch) != string(full) {
		t.Error("reused-buffer delta encode differs from fresh encode")
	}
}
