package cluster

import (
	"errors"
	"fmt"
	"time"

	"pace/internal/mp"
	"pace/internal/pairgen"
	"pace/internal/seq"
	"pace/internal/suffix"
)

// The master rank (paper §3.3): it owns the cluster structure and the
// bounded WORKBUF of promising pairs, dispatches alignment batches to the
// slaves under the E = min(α·δ·batchsize, nfree/p) flow-control grant, and
// recovers from slave deaths by requeueing their in-flight work and
// subdividing their generator shards. How accepted pairs become merges is
// delegated to the merger seam (merge.go): per-result unions on the legacy
// protocol, phase-reconciled delta applies on the sharded one.

// masterState tracks one slave's protocol position.
type masterState struct {
	generatorDone bool // last report said passive
	hasNextWork   bool // slave holds a batch whose results are pending
	idle          bool // parked with nothing to do; candidate for stop
	granted       int  // outstanding grant E: pairs the slave may still report
	dead          bool // rank failed; excluded from the protocol
	owes          int  // reports the slave will still send
	// inflight is the FIFO of dispatched batches not yet acknowledged by a
	// report's ackWork flag; when the slave dies they are requeued to the
	// survivors.
	inflight [][]pairgen.Pair
	// shards are the generator partitions this slave covers: its initial
	// one (part = rank-1, 1 of 1) plus any dead-slave shards it took over.
	// When the slave dies they are subdivided among the survivors.
	shards []shard
}

// grantE computes the paper's flow-control grant E = min(α·δ·batchsize,
// nfree/p) for one slave interaction.
//
//   - α (clamped to cfg.alphaMax()) is the redundancy factor: reported pairs
//     per pair that survived same-cluster filtering. When the whole batch
//     was redundant the ratio is undefined; the cap is used directly rather
//     than the seed's unbounded raw batch length.
//   - δ = slaves/active spreads the generation load of finished slaves over
//     the rest.
//   - nfree must already account for every outstanding grant, so that the
//     sum of buffered pairs and pairs-in-flight can never exceed
//     WorkBufCap. The never-starve floor of 1 is likewise granted only
//     against genuinely free space.
func grantE(cfg Config, reported, added, active, slaves, p, nfree int) int {
	if nfree < 0 {
		nfree = 0
	}
	alpha := 1.0
	if added > 0 {
		alpha = float64(reported) / float64(added)
	} else if reported > 0 {
		alpha = cfg.alphaMax()
	}
	if alpha > cfg.alphaMax() {
		alpha = cfg.alphaMax()
	}
	delta := float64(slaves) / float64(max(1, active))
	e := min(int(alpha*delta*float64(cfg.BatchSize)), nfree/p)
	if e < 1 && nfree > 0 {
		// Never starve an active generator entirely, or it could park
		// with pairs still unreported — but only within free space.
		e = 1
	}
	return e
}

func runMaster(set *seq.SetS, cfg Config, c *mp.Comm) (*Result, error) {
	pr := newProbes(cfg.Metrics)
	tw := cfg.Trace
	if tw != nil {
		tw.ProcessName(cfg.TracePID, cfg.traceProcess())
		traceThreadName(tw, cfg.TracePID, 0, "master")
	}
	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	tStart := c.Elapsed()
	owner, global, err := prologue(set, cfg, c)
	if err != nil {
		return nil, err
	}
	tPart := c.Elapsed() - tStart
	pr.observeBuckets(global, suffix.Loads(global, owner, c.Size()-1))
	if tw != nil {
		tw.Span(cfg.TracePID, 0, "partition", "gst", tStart, tPart)
	}

	res := &Result{}
	st := &res.Stats
	if cfg.FreshGen > 0 {
		var rebuilt int64
		for b, h := range global {
			if h > 0 && owner[b] >= 0 {
				rebuilt++
			}
		}
		st.Incremental.BucketsRebuilt = rebuilt
		st.Incremental.BucketsReused = nonEmptyBuckets(global) - rebuilt
	}
	m := newMerger(cfg, set.NumESTs())
	seedMerges, err := seedClusters(m, cfg.InitialLabels, set.NumESTs())
	if err != nil {
		return nil, err
	}
	st.Recovery.SeedMerges = seedMerges
	if pr != nil {
		pr.seedMerges.Set(seedMerges)
	}
	if seedMerges > 0 {
		cfg.logger().Info("seeded prior partition", "merges", seedMerges)
	}
	ck := newCheckpointer(cfg, set.NumESTs(), st, pr, c.Elapsed)

	slaves := c.Size() - 1
	p := c.Size()
	states := make([]masterState, c.Size())
	// Every slave's unsolicited first report carries up to bootstrapGrant
	// pairs; charge those grants up front so the WORKBUF bound holds from
	// the first message on.
	grantedTotal := 0
	for r := 1; r <= slaves; r++ {
		states[r].granted = bootstrapGrant(cfg, p)
		grantedTotal += states[r].granted
		states[r].owes = 1 // the unsolicited first report
		states[r].shards = []shard{{part: int32(r - 1), idx: 0, of: 1}}
	}

	var workbuf []pairgen.Pair
	head := 0
	// requeued holds pairs reclaimed from dead slaves' in-flight batches.
	// They drain ahead of WORKBUF and are deliberately not counted against
	// its occupancy: they already passed admission control once, and the
	// WorkBufHighWater ≤ WorkBufCap invariant is about admission.
	var requeued []pairgen.Pair
	// pendingShards are dead slaves' generator shards awaiting a survivor.
	var pendingShards []shard
	buffered := func() int { return len(workbuf) - head }
	compact := func() {
		if head > 0 && head >= len(workbuf)/2 {
			workbuf = append(workbuf[:0], workbuf[head:]...)
			head = 0
		}
	}

	// popBatch extracts up to BatchSize pairs whose ESTs are still in
	// different clusters (clusters may have merged since enqueue),
	// requeued recovery pairs first.
	popBatch := func() []pairgen.Pair {
		var out []pairgen.Pair
		keep := func(p pairgen.Pair) bool {
			i, j := p.ESTs()
			if cfg.SkipSameCluster && m.Same(int32(i), int32(j)) {
				st.PairsSkipped++
				if pr != nil {
					pr.skipped.Inc()
				}
				return false
			}
			return true
		}
		for len(requeued) > 0 && len(out) < cfg.BatchSize {
			p := requeued[0]
			requeued = requeued[1:]
			if keep(p) {
				out = append(out, p)
			}
		}
		for head < len(workbuf) && len(out) < cfg.BatchSize {
			p := workbuf[head]
			head++
			if keep(p) {
				out = append(out, p)
			}
		}
		compact()
		return out
	}

	activeSlaves := func() int {
		a := 0
		for r := 1; r <= slaves; r++ {
			if !states[r].dead && !states[r].generatorDone {
				a++
			}
		}
		return a
	}

	// Wire messages are encoded into one reusable scratch buffer: the mp
	// ownership contract (copy-on-send) makes the reuse safe, so the
	// master's steady state allocates nothing per interaction.
	var wire []byte
	sendWork := func(to int, w work) error {
		wire = appendWork(wire[:0], w)
		return c.Send(to, tagWork, wire)
	}
	// dispatch sends a non-stop work message and records the protocol
	// consequences: one more report owed, and a non-empty batch joins the
	// slave's in-flight FIFO until a report acknowledges it.
	dispatch := func(to int, w work) error {
		if err := sendWork(to, w); err != nil {
			return err
		}
		if len(w.pairs) > 0 {
			states[to].inflight = append(states[to].inflight, w.pairs)
		}
		states[to].owes++
		states[to].idle = false
		return nil
	}

	grantFor := func(reported, added int) int {
		nfree := cfg.WorkBufCap - buffered() - grantedTotal
		return grantE(cfg, reported, added, activeSlaves(), slaves, p, nfree)
	}

	// done: no work buffered anywhere, no shard awaiting a survivor, and
	// every living slave is parked with no report outstanding.
	done := func() bool {
		if buffered() > 0 || len(requeued) > 0 || len(pendingShards) > 0 {
			return false
		}
		for r := 1; r <= slaves; r++ {
			if states[r].dead {
				continue
			}
			if states[r].owes > 0 || !states[r].idle {
				return false
			}
		}
		return true
	}

	// Surplus work re-activates parked slaves.
	reactivate := func() error {
		for r := 1; r <= slaves && buffered()+len(requeued) > 0; r++ {
			if states[r].dead || !states[r].idle {
				continue
			}
			batch := popBatch()
			if len(batch) == 0 {
				break
			}
			if err := dispatch(r, work{pairs: batch}); err != nil {
				return err
			}
		}
		return nil
	}

	// handleDeath recovers from slave s failing mid-protocol: reclaim its
	// outstanding grant, requeue its unacknowledged batches, and subdivide
	// its generator shards among the survivors, who rebuild them locally
	// and regenerate the remaining pairs. Regenerated pairs overlap work
	// the dead slave already reported; the same-cluster filter and the
	// idempotence of union-find merges absorb the duplicates — under the
	// delta protocol the dead slave's local filter and unshipped edges are
	// lost together, so the survivors' refiltered deltas re-derive exactly
	// the missing connectivity — and the final clusters match a
	// failure-free run.
	handleDeath := func(s int) error {
		states[s].dead = true
		states[s].idle = false
		states[s].owes = 0
		reclaimed := int64(states[s].granted)
		grantedTotal -= states[s].granted
		states[s].granted = 0
		var requeuedNow int64
		for _, b := range states[s].inflight {
			requeued = append(requeued, b...)
			requeuedNow += int64(len(b))
		}
		states[s].inflight = nil
		st.Recovery.RanksLost++
		st.Recovery.GrantsReclaimed += reclaimed
		st.Recovery.PairsRequeued += requeuedNow

		var surv []int
		for r := 1; r <= slaves; r++ {
			if !states[r].dead {
				surv = append(surv, r)
			}
		}
		if len(surv) == 0 {
			return fmt.Errorf("cluster: all %d slaves failed; cannot recover", slaves)
		}
		var reassigned int64
		// A passive slave had generated and shipped every pair of its
		// shards before dying — nothing left to regenerate.
		if !states[s].generatorDone {
			k := int32(len(surv))
			for _, sh := range states[s].shards {
				for j := int32(0); j < k; j++ {
					pendingShards = append(pendingShards, shard{part: sh.part, idx: sh.idx + sh.of*j, of: sh.of * k})
				}
				reassigned += int64(k)
			}
			st.Recovery.ShardsReassigned += reassigned
		}
		states[s].shards = nil
		if pr != nil {
			pr.ranksLost.Inc()
			pr.grantsReclaimed.Add(reclaimed)
			pr.pairsRequeued.Add(requeuedNow)
			pr.shardsReassigned.Add(reassigned)
		}
		cfg.logger().Warn("slave rank lost; recovering",
			"rank", s, "survivors", len(surv), "grants_reclaimed", reclaimed,
			"pairs_requeued", requeuedNow, "shards_reassigned", reassigned)
		// Hand shards to parked survivors right away; busy ones collect
		// theirs attached to the reply to their next report.
		for _, r := range surv {
			if len(pendingShards) == 0 {
				break
			}
			if !states[r].idle || states[r].owes > 0 {
				continue
			}
			sh := pendingShards[0]
			pendingShards = pendingShards[1:]
			states[r].shards = append(states[r].shards, sh)
			states[r].generatorDone = false
			e := grantFor(0, 0)
			if err := dispatch(r, work{e: int32(e), recover: []shard{sh}}); err != nil {
				return err
			}
			states[r].granted = e
			grantedTotal += e
		}
		return reactivate()
	}

	// Master idle is measured over the dispatch loop only: recv wait
	// accumulated up to here is the prologue's collective synchronization
	// (bucket-count exchange, barriers), the same for every merge protocol
	// and not a master-bottleneck signal. Snapshotting the baseline makes
	// MasterRecvWait exactly "time the dispatch loop spent blocked on
	// slave reports".
	rw0 := c.Stats().RecvWait

	// cumProcessed/cumAccepted mirror the slaves' counters from the
	// results stream (or the delta reports' batch counters) for
	// checkpointing; the authoritative per-rank totals still arrive with
	// the final phase reports.
	var cumProcessed, cumAccepted int64
	for {
		// Cancellation poll, once per slave interaction. The master is the
		// protocol's hub: returning the error here fails rank 0, which the
		// fail-stop transport propagates to every slave blocked on it, so
		// the whole parallel run unwinds without a stray goroutine left
		// holding the session's string set.
		if err := cfg.ctxErr(); err != nil {
			return nil, err
		}
		var msg mp.Msg
		if cfg.SlaveTimeout > 0 {
			msg, err = c.RecvTimeout(mp.AnySource, tagReport, cfg.SlaveTimeout)
			if errors.Is(err, mp.ErrTimeout) {
				return nil, fmt.Errorf("cluster: no slave report within SlaveTimeout %v; a slave is wedged", cfg.SlaveTimeout)
			}
		} else {
			msg, err = c.Recv(mp.AnySource, tagReport)
		}
		if err != nil {
			var rf *mp.RankFailedError
			if !cfg.Recover || !errors.As(err, &rf) || rf.Rank < 1 || rf.Rank > slaves || states[rf.Rank].dead {
				return nil, err
			}
			busy := c.Elapsed()
			if err := handleDeath(rf.Rank); err != nil {
				return nil, err
			}
			st.MasterBusy += c.Elapsed() - busy
			if done() {
				break
			}
			continue
		}
		busy := c.Elapsed()
		s := msg.From
		states[s].owes--
		rep, err := decodeReport(msg.Data)
		if err != nil {
			return nil, err
		}
		if rep.hasDelta != (cfg.MergeShards > 0) {
			return nil, fmt.Errorf("cluster: slave %d report protocol (delta=%v) does not match MergeShards=%d", s, rep.hasDelta, cfg.MergeShards)
		}
		states[s].generatorDone = rep.passive
		states[s].hasNextWork = rep.hasNextWork
		if rep.ackWork && len(states[s].inflight) > 0 {
			states[s].inflight = states[s].inflight[1:]
		}
		// The grant this report answers is consumed, whether or not the
		// slave used all of it.
		grant := states[s].granted
		grantedTotal -= grant
		states[s].granted = 0
		if len(rep.pairs) > grant {
			// Defensive: a slave exceeding its grant would silently break
			// the WORKBUF bound.
			return nil, fmt.Errorf("cluster: slave %d reported %d pairs, exceeding its grant of %d", s, len(rep.pairs), grant)
		}

		// Merge application, by protocol. The reconcile time of a delta
		// apply is carved out of MasterBusy into MasterReconcileWait: it is
		// time the master is not serving protocol messages, which is the
		// quantity the master-bottleneck argument is about.
		var recon time.Duration
		if rep.hasDelta {
			cumProcessed += rep.deltaProcessed
			cumAccepted += rep.deltaAccepted
			tR := c.Elapsed()
			links := m.apply(rep.delta.Edges)
			recon = c.Elapsed() - tR
			st.MasterReconcileWait += recon
			st.Merges += links
			if pr != nil {
				pr.merges.Add(links)
				pr.reconApplyNs.Observe(int64(recon))
			}
		} else {
			for _, r := range rep.results {
				if r.accepted {
					cumAccepted++
					if m.Union(int32(r.estI), int32(r.estJ)) {
						st.Merges++
						if pr != nil {
							pr.merges.Inc()
						}
					}
				}
			}
			cumProcessed += int64(len(rep.results))
		}
		added := 0
		for _, pair := range rep.pairs {
			i, j := pair.ESTs()
			if cfg.SkipSameCluster && m.Same(int32(i), int32(j)) {
				st.PairsSkipped++
				if pr != nil {
					pr.skipped.Inc()
				}
				continue
			}
			workbuf = append(workbuf, pair)
			added++
		}
		if b := buffered(); b > st.WorkBufHighWater {
			st.WorkBufHighWater = b
		}
		if pr != nil {
			b := int64(buffered())
			pr.workbuf.Set(b)
			pr.workbufHW.SetMax(b)
		}
		if tw != nil {
			tw.Counter(cfg.TracePID, "workbuf", c.Elapsed(), int64(buffered()))
		}
		if err := ck.maybe(m, cumProcessed, cumAccepted, st.PairsSkipped, st.Merges, false); err != nil {
			return nil, err
		}

		// Reply: W pairs from WORKBUF plus the next pair request E, and a
		// pending recovery shard if one is waiting for a taker.
		batch := popBatch()
		var rec []shard
		if len(pendingShards) > 0 {
			rec = pendingShards[:1:1]
			pendingShards = pendingShards[1:]
			states[s].shards = append(states[s].shards, rec[0])
			states[s].generatorDone = false
		}
		e := 0
		if !states[s].generatorDone {
			e = grantFor(len(rep.pairs), added)
			if pr != nil && e > 0 {
				pr.grantE.Observe(int64(e))
			}
		}

		switch {
		case len(batch) > 0 || e > 0 || len(rec) > 0:
			if err := dispatch(s, work{pairs: batch, e: int32(e), recover: rec}); err != nil {
				return nil, err
			}
			states[s].granted = e
			grantedTotal += e
		case rep.hasNextWork || !states[s].generatorDone:
			// The slave either holds a batch whose results we still need,
			// or is an active generator that got no grant because every
			// free WORKBUF slot is pledged to peers. Reply empty in both
			// cases: the slave reports back (keep-alive), and by then
			// peer reports will have released grant space. Parking an
			// active generator here would strand its unreported pairs.
			if err := dispatch(s, work{}); err != nil {
				return nil, err
			}
		default:
			// Park the slave on the wait queue.
			states[s].idle = true
		}

		if err := reactivate(); err != nil {
			return nil, err
		}
		st.MasterBusy += c.Elapsed() - busy - recon
		if done() {
			break
		}
	}

	// Final snapshot: a resumed run starts from the completed partition.
	if err := ck.maybe(m, cumProcessed, cumAccepted, st.PairsSkipped, st.Merges, true); err != nil {
		return nil, err
	}

	for r := 1; r <= slaves; r++ {
		if states[r].dead {
			continue
		}
		if err := sendWork(r, work{stop: true}); err != nil {
			return nil, err
		}
	}

	// Collect per-rank phase reports and reduce to the Table 3 rows. The
	// collection is point-to-point (tagPhase) rather than a gather so dead
	// ranks can be skipped; they appear as zeroed "lost" rows.
	total := c.Elapsed() - tStart
	cs := c.Stats()
	st.MasterRecvWait = cs.RecvWait - rw0
	st.MasterIdle = st.MasterRecvWait + st.MasterReconcileWait
	st.Reconcile = m.reconcile()
	pr.recordReconcile(st.Reconcile)
	pr.recordMasterWait(st.MasterRecvWait, st.MasterReconcileWait)
	mine := phaseReport{partitionNs: int64(tPart), totalNs: int64(total), busyNs: int64(st.MasterBusy)}
	fillComm(&mine, cs)
	st.PerRank = make([]RankStats, 0, c.Size())
	addRow := func(r int, role string, ph phaseReport) {
		st.Phases.Partition = maxDur(st.Phases.Partition, time.Duration(ph.partitionNs))
		st.Phases.Construct = maxDur(st.Phases.Construct, time.Duration(ph.constructNs))
		st.Phases.Sort = maxDur(st.Phases.Sort, time.Duration(ph.sortNs))
		st.Phases.Align = maxDur(st.Phases.Align, time.Duration(ph.alignNs))
		st.Phases.Total = maxDur(st.Phases.Total, time.Duration(ph.totalNs))
		st.PairsGenerated += ph.generated
		st.PairsProcessed += ph.processed
		st.PairsAccepted += ph.accepted
		st.Incremental.StaleSuppressed += ph.stale
		st.PerRank = append(st.PerRank, RankStats{
			Rank: r, Role: role,
			Partition: time.Duration(ph.partitionNs),
			Construct: time.Duration(ph.constructNs),
			Sort:      time.Duration(ph.sortNs),
			Align:     time.Duration(ph.alignNs),
			Total:     time.Duration(ph.totalNs),
			MsgsSent:  ph.msgsSent, BytesSent: ph.bytesSent,
			MsgsRecv: ph.msgsRecv, BytesRecv: ph.bytesRecv,
			RecvWait:       time.Duration(ph.recvWaitNs),
			CollectiveOps:  ph.collOps,
			CollectiveTime: time.Duration(ph.collTimeNs),
			PairsGenerated: ph.generated,
			PairsProcessed: ph.processed,
			PairsAccepted:  ph.accepted,
			Busy:           time.Duration(ph.busyNs),
			DeltaEdges:     ph.deltaEdges,
		})
	}
	addRow(0, "master", mine)
	for r := 1; r <= slaves; r++ {
		if states[r].dead {
			st.PerRank = append(st.PerRank, RankStats{Rank: r, Role: "lost"})
			continue
		}
		pm, err := c.Recv(r, tagPhase)
		if err != nil {
			var rf *mp.RankFailedError
			if cfg.Recover && errors.As(err, &rf) {
				// Died after its protocol work was complete; only its
				// stats are lost.
				st.PerRank = append(st.PerRank, RankStats{Rank: r, Role: "lost"})
				continue
			}
			return nil, err
		}
		ph, err := decodePhase(pm.Data)
		if err != nil {
			return nil, err
		}
		addRow(r, "slave", ph)
	}
	for _, rs := range st.PerRank {
		pr.recordComm(rs)
	}
	if cfg.FreshGen > 0 {
		st.Incremental.FreshPairs = st.PairsGenerated
		pr.recordIncremental(st.Incremental)
	}

	res.Labels = m.Labels()
	res.NumClusters = m.Count()
	return res, nil
}
