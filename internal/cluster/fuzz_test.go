package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"pace/internal/pairgen"
	"pace/internal/unionfind"
)

// Fuzz targets for the wire decoders. The invariant under test is the same
// for all of them: arbitrary input never panics, and whenever a decode
// succeeds, re-encoding the result reproduces the input byte-for-byte (the
// codecs have exactly one encoding per value, so accept ⇒ round-trip).

func fuzzSeedReports() []report {
	return []report{
		{},
		{passive: true},
		{hasNextWork: true, ackWork: true},
		{
			results: []alignResult{
				{estI: 1, estJ: 2, accepted: true},
				{estI: 7, estJ: 3},
			},
			pairs: []pairgen.Pair{
				{S1: 1, S2: 2, Pos1: 10, Pos2: 20, MatchLen: 30},
			},
			ackWork: true,
		},
		{hasDelta: true, deltaProcessed: 9},
		{
			hasDelta:       true,
			deltaProcessed: 12,
			deltaAccepted:  2,
			delta: unionfind.MergeDelta{Edges: []unionfind.MergeEdge{
				{A: 6, B: 1}, {A: 3, B: 2},
			}},
			pairs:   []pairgen.Pair{{S1: 2, S2: 5, Pos1: 0, Pos2: 4, MatchLen: 21}},
			ackWork: true,
		},
	}
}

func FuzzDecodeReport(f *testing.F) {
	for _, rep := range fuzzSeedReports() {
		f.Add(encodeReport(rep))
	}
	// Truncated and trailing mutants of a valid message.
	enc := encodeReport(fuzzSeedReports()[3])
	f.Add(enc[:len(enc)-1])
	f.Add(append(append([]byte{}, enc...), 0xAA))
	f.Fuzz(func(t *testing.T, b []byte) {
		rep, err := decodeReport(b)
		if err != nil {
			return
		}
		if got := encodeReport(rep); !bytes.Equal(got, b) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", b, got)
		}
	})
}

func FuzzDecodeWork(f *testing.F) {
	seeds := []work{
		{},
		{stop: true},
		{e: 5, pairs: []pairgen.Pair{{S1: 3, S2: 4, Pos1: 1, Pos2: 2, MatchLen: 9}}},
		{e: 1, recover: []shard{{part: 0, idx: 1, of: 2}}},
	}
	for _, w := range seeds {
		f.Add(encodeWork(w))
	}
	enc := encodeWork(seeds[2])
	f.Add(enc[:7])
	f.Add(append(append([]byte{}, enc...), 0, 0))
	f.Fuzz(func(t *testing.T, b []byte) {
		w, err := decodeWork(b)
		if err != nil {
			return
		}
		if got := encodeWork(w); !bytes.Equal(got, b) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", b, got)
		}
	})
}

func FuzzDecodePhase(f *testing.F) {
	p := phaseReport{
		partitionNs: 1, constructNs: 2, sortNs: 3, alignNs: 4, totalNs: 5,
		generated: 6, processed: 7, accepted: 8, stale: 9,
		msgsSent: 10, bytesSent: 11, msgsRecv: 12, bytesRecv: 13,
		recvWaitNs: 14, collOps: 15, collTimeNs: 16, busyNs: -1,
	}
	enc := encodePhase(p)
	f.Add(enc)
	f.Add(enc[:len(enc)-8])                          // truncated: one word short
	f.Add(append(append([]byte{}, enc...), 1, 2, 3)) // trailing bytes
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := decodePhase(b)
		if err != nil {
			if len(b) == 8*phaseReportWords {
				t.Fatalf("rejected a correctly sized phase report: %v", err)
			}
			return
		}
		if len(b) != 8*phaseReportWords {
			t.Fatalf("accepted %d bytes, want exactly %d", len(b), 8*phaseReportWords)
		}
		if !bytes.Equal(encodePhase(got), b) {
			t.Fatalf("round-trip mismatch")
		}
	})
}

func FuzzDecodeU32s(f *testing.F) {
	f.Add(encodeU32s(nil))
	f.Add(encodeU32s([]uint32{1, 2, 3}))
	f.Add([]byte{1, 2, 3}) // not a multiple of 4
	f.Fuzz(func(t *testing.T, b []byte) {
		vals, err := decodeU32s(b)
		if err != nil {
			if len(b)%4 == 0 {
				t.Fatalf("rejected aligned buffer: %v", err)
			}
			return
		}
		if !bytes.Equal(encodeU32s(vals), b) {
			t.Fatalf("round-trip mismatch")
		}
	})
}

func fuzzCheckpoint() *Checkpoint {
	uf := unionfind.New(6)
	uf.Union(0, 1)
	uf.Union(2, 3)
	return &Checkpoint{
		NumESTs: 6, Window: 8, Psi: 12, Seq: 3,
		PairsProcessed: 40, PairsAccepted: 12, PairsSkipped: 5, Merges: 2,
		UF: uf,
	}
}

func FuzzDecodeCheckpoint(f *testing.F) {
	enc := fuzzCheckpoint().encode()
	f.Add(enc)
	f.Add(enc[:len(enc)-5])                       // truncated
	f.Add(append(append([]byte{}, enc...), 0xFF)) // trailing byte breaks the CRC
	f.Add(append([]byte("NOTCKPT!"), enc[8:]...)) // bad magic
	f.Fuzz(func(t *testing.T, b []byte) {
		ck, err := decodeCheckpoint(b)
		if err != nil {
			return
		}
		if got := ck.encode(); !bytes.Equal(got, b) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", b, got)
		}
	})
}

// TestFuzzSeedsDecode pins the seed corpus itself: every valid seed decodes
// to the value it was encoded from, and every mutant seed is rejected with
// an offset-bearing error. This runs in plain `go test` even when the fuzz
// engine is never invoked.
func TestFuzzSeedsDecode(t *testing.T) {
	for i, rep := range fuzzSeedReports() {
		got, err := decodeReport(encodeReport(rep))
		if err != nil {
			t.Fatalf("seed report %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, rep) {
			t.Fatalf("seed report %d: round-trip mismatch: %+v vs %+v", i, got, rep)
		}
	}
	enc := encodeReport(fuzzSeedReports()[3])
	if _, err := decodeReport(append(append([]byte{}, enc...), 0xAA)); err == nil {
		t.Fatal("trailing byte accepted by decodeReport")
	}
	if _, err := decodePhase(make([]byte, 8*phaseReportWords+1)); err == nil {
		t.Fatal("trailing byte accepted by decodePhase")
	}
	if _, err := decodePhase(make([]byte, 8)); err == nil {
		t.Fatal("truncated phase report accepted")
	}
	p := phaseReport{busyNs: 42, totalNs: 7}
	rt, err := decodePhase(encodePhase(p))
	if err != nil || rt != p {
		t.Fatalf("phase round-trip: %+v, %v", rt, err)
	}
}
