// Package metrics implements the pair-based clustering quality measures from
// the paper's §4.1 (after Gelfand/Mironov/Pevzner): every unordered pair of
// ESTs is classified as TP/FP/TN/FN by comparing whether the pair is
// co-clustered in the prediction versus the ground truth, and the summary
// measures OQ (overlap quality), OV (over-prediction), UN (under-prediction)
// and CC (correlation coefficient) are derived from the counts.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Counts are the raw pair-classification tallies.
type Counts struct {
	TP int64 // paired in both prediction and truth
	FP int64 // paired in prediction only
	TN int64 // paired in neither
	FN int64 // paired in truth only
}

// Quality is the paper's derived metric set, each in [0,1]
// (CC in [-1,1]). The paper reports them as percentages.
type Quality struct {
	Counts
	// OQ = TP / (TP + FP + FN): proportion of true pairs over all pairs
	// appearing in either clustering.
	OQ float64
	// OV = FP / (TP + FP): proportion of over-predicted pairs.
	OV float64
	// UN = FN / (TP + FN): proportion of unpredicted pairs.
	UN float64
	// CC is the Matthews correlation coefficient over the four counts.
	CC float64
}

// pairCount returns k*(k-1)/2.
func pairCount(k int64) int64 { return k * (k - 1) / 2 }

// sameLabelPairs returns, for a labeling, the number of co-labeled unordered
// pairs, computed from cluster sizes.
func sameLabelPairs(labels []int32) int64 {
	sizes := map[int32]int64{}
	for _, l := range labels {
		sizes[l]++
	}
	var total int64
	for _, s := range sizes {
		total += pairCount(s)
	}
	return total
}

// intersectionPairs counts unordered pairs co-clustered in both labelings:
// the sum of C(k,2) over the joint contingency cells. Runs in O(n log n).
func intersectionPairs(pred, truth []int32) int64 {
	type key struct{ p, t int32 }
	cells := map[key]int64{}
	for i := range pred {
		cells[key{pred[i], truth[i]}]++
	}
	var total int64
	for _, k := range cells {
		total += pairCount(k)
	}
	return total
}

// Compare classifies all C(n,2) pairs given predicted and true cluster
// labels. Labels are arbitrary identifiers; only co-membership matters.
func Compare(pred, truth []int32) (Quality, error) {
	if len(pred) != len(truth) {
		return Quality{}, fmt.Errorf("metrics: length mismatch %d vs %d", len(pred), len(truth))
	}
	n := int64(len(pred))
	all := pairCount(n)
	predPairs := sameLabelPairs(pred)
	truthPairs := sameLabelPairs(truth)
	tp := intersectionPairs(pred, truth)

	c := Counts{
		TP: tp,
		FP: predPairs - tp,
		FN: truthPairs - tp,
	}
	c.TN = all - c.TP - c.FP - c.FN
	return FromCounts(c), nil
}

// FromCounts derives the quality measures from raw counts. Ratios with zero
// denominators are reported as their ideal values (no evidence of error).
func FromCounts(c Counts) Quality {
	q := Quality{Counts: c}
	if d := c.TP + c.FP + c.FN; d > 0 {
		q.OQ = float64(c.TP) / float64(d)
	} else {
		q.OQ = 1
	}
	if d := c.TP + c.FP; d > 0 {
		q.OV = float64(c.FP) / float64(d)
	}
	if d := c.TP + c.FN; d > 0 {
		q.UN = float64(c.FN) / float64(d)
	}
	q.CC = matthews(c)
	return q
}

// matthews computes the correlation coefficient in floating point; the count
// products overflow int64 at realistic EST scales.
func matthews(c Counts) float64 {
	tp, fp, tn, fn := float64(c.TP), float64(c.FP), float64(c.TN), float64(c.FN)
	den := math.Sqrt((tp + fp) * (tn + fn) * (tp + fn) * (tn + fp))
	if den == 0 {
		// Degenerate margins: a single-class situation. If there are no
		// errors at all, correlation is perfect by convention.
		if c.FP == 0 && c.FN == 0 {
			return 1
		}
		return 0
	}
	return (tp*tn - fp*fn) / den
}

// String renders the quality measures in the paper's percentage format.
func (q Quality) String() string {
	return fmt.Sprintf("OQ=%.2f%% OV=%.2f%% UN=%.2f%% CC=%.2f%%",
		100*q.OQ, 100*q.OV, 100*q.UN, 100*q.CC)
}

// ClusterSizeHistogram returns the sorted (descending) cluster sizes of a
// labeling — useful for eyeballing fragmentation.
func ClusterSizeHistogram(labels []int32) []int {
	sizes := map[int32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// NumClusters returns the number of distinct labels.
func NumClusters(labels []int32) int {
	set := map[int32]struct{}{}
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return len(set)
}
