package metrics

import (
	"fmt"
	"sort"
)

// RandIndex returns (TP+TN)/(all pairs): the fraction of pair decisions the
// two clusterings agree on.
func (q Quality) RandIndex() float64 {
	total := q.TP + q.FP + q.TN + q.FN
	if total == 0 {
		return 1
	}
	return float64(q.TP+q.TN) / float64(total)
}

// AdjustedRand computes the Hubert–Arabie adjusted Rand index directly from
// the pair counts: agreement corrected for chance, 1 for identical
// partitions, ~0 for independent ones.
func (q Quality) AdjustedRand() float64 {
	// In pair terms: sumPred = TP+FP, sumTruth = TP+FN, n2 = all pairs.
	a := float64(q.TP)
	sumPred := float64(q.TP + q.FP)
	sumTruth := float64(q.TP + q.FN)
	n2 := float64(q.TP + q.FP + q.TN + q.FN)
	if n2 == 0 {
		return 1
	}
	expected := sumPred * sumTruth / n2
	maxIdx := (sumPred + sumTruth) / 2
	if maxIdx == expected {
		// Degenerate margins (e.g. all singletons on both sides).
		if a == expected {
			return 1
		}
		return 0
	}
	return (a - expected) / (maxIdx - expected)
}

// Purity returns the weighted average, over predicted clusters, of the
// fraction of members belonging to the cluster's dominant true class.
func Purity(pred, truth []int32) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 1, nil
	}
	type key struct{ p, t int32 }
	cells := map[key]int{}
	for i := range pred {
		cells[key{pred[i], truth[i]}]++
	}
	dominant := map[int32]int{}
	for k, c := range cells {
		if c > dominant[k.p] {
			dominant[k.p] = c
		}
	}
	correct := 0
	for _, c := range dominant {
		correct += c
	}
	return float64(correct) / float64(len(pred)), nil
}

// Summary captures the headline numbers of one clustering for reporting.
type Summary struct {
	N           int
	NumClusters int
	Largest     int
	Singletons  int
	MeanSize    float64
	MedianSize  int
}

// Summarize computes cluster-size structure for a labeling.
func Summarize(labels []int32) Summary {
	s := Summary{N: len(labels)}
	if len(labels) == 0 {
		return s
	}
	hist := ClusterSizeHistogram(labels)
	s.NumClusters = len(hist)
	s.Largest = hist[0]
	for _, sz := range hist {
		if sz == 1 {
			s.Singletons++
		}
	}
	s.MeanSize = float64(len(labels)) / float64(len(hist))
	sorted := append([]int(nil), hist...)
	sort.Ints(sorted)
	s.MedianSize = sorted[len(sorted)/2]
	return s
}

// String renders a Summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d clusters=%d largest=%d singletons=%d mean=%.1f median=%d",
		s.N, s.NumClusters, s.Largest, s.Singletons, s.MeanSize, s.MedianSize)
}
