package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestRandIndex(t *testing.T) {
	q, _ := Compare([]int32{0, 0, 1, 1}, []int32{0, 0, 1, 1})
	if q.RandIndex() != 1 {
		t.Errorf("identical partitions: %f", q.RandIndex())
	}
	q = FromCounts(Counts{TP: 1, TN: 1, FP: 1, FN: 1})
	if q.RandIndex() != 0.5 {
		t.Errorf("half agreement: %f", q.RandIndex())
	}
	if FromCounts(Counts{}).RandIndex() != 1 {
		t.Error("empty counts")
	}
}

func TestAdjustedRandIdentical(t *testing.T) {
	q, _ := Compare([]int32{0, 0, 1, 1, 2}, []int32{5, 5, 7, 7, 9})
	if math.Abs(q.AdjustedRand()-1) > 1e-12 {
		t.Errorf("identical partitions ARI: %f", q.AdjustedRand())
	}
}

func TestAdjustedRandSingletonsVsSingletons(t *testing.T) {
	pred := []int32{0, 1, 2, 3}
	q, _ := Compare(pred, pred)
	if q.AdjustedRand() != 1 {
		t.Errorf("all-singleton self-comparison ARI: %f", q.AdjustedRand())
	}
}

func TestAdjustedRandIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	pred := make([]int32, n)
	truth := make([]int32, n)
	for i := range pred {
		pred[i] = int32(rng.Intn(10))
		truth[i] = int32(rng.Intn(10))
	}
	q, _ := Compare(pred, truth)
	if ari := q.AdjustedRand(); math.Abs(ari) > 0.02 {
		t.Errorf("independent partitions ARI should be ≈0, got %f", ari)
	}
}

func TestAdjustedRandBelowRand(t *testing.T) {
	// ARI penalizes chance agreement: for a partly-wrong clustering it
	// must sit below the raw Rand index.
	pred := []int32{0, 0, 0, 1, 1, 1, 2, 2}
	truth := []int32{0, 0, 1, 1, 2, 2, 2, 0}
	q, _ := Compare(pred, truth)
	if q.AdjustedRand() >= q.RandIndex() {
		t.Errorf("ARI %f >= RI %f", q.AdjustedRand(), q.RandIndex())
	}
}

func TestPurity(t *testing.T) {
	pred := []int32{0, 0, 0, 1, 1}
	truth := []int32{7, 7, 8, 9, 9}
	p, err := Purity(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0: dominant truth 7 (2 of 3); cluster 1: dominant 9 (2 of 2).
	if math.Abs(p-0.8) > 1e-12 {
		t.Errorf("purity %f want 0.8", p)
	}
	if _, err := Purity([]int32{0}, []int32{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if p, _ := Purity(nil, nil); p != 1 {
		t.Error("empty purity")
	}
}

func TestPurityPerfect(t *testing.T) {
	pred := []int32{0, 0, 1, 1}
	truth := []int32{3, 3, 4, 4}
	if p, _ := Purity(pred, truth); p != 1 {
		t.Errorf("perfect purity: %f", p)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int32{0, 0, 0, 1, 1, 2, 3, 4})
	if s.N != 8 || s.NumClusters != 5 || s.Largest != 3 || s.Singletons != 3 {
		t.Errorf("summary: %+v", s)
	}
	if math.Abs(s.MeanSize-1.6) > 1e-12 {
		t.Errorf("mean: %f", s.MeanSize)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.NumClusters != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
}
