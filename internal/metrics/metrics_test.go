package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareLengthMismatch(t *testing.T) {
	if _, err := Compare([]int32{0}, []int32{0, 1}); err == nil {
		t.Error("want error")
	}
}

func TestComparePerfect(t *testing.T) {
	truth := []int32{0, 0, 1, 1, 2}
	q, err := Compare(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if q.OQ != 1 || q.OV != 0 || q.UN != 0 || q.CC != 1 {
		t.Errorf("perfect clustering: %+v", q)
	}
	if q.TP != 2 || q.FP != 0 || q.FN != 0 || q.TN != 8 {
		t.Errorf("counts: %+v", q.Counts)
	}
}

func TestCompareRelabeledPerfect(t *testing.T) {
	// Different label values, same partition.
	pred := []int32{7, 7, 3, 3, 9}
	truth := []int32{0, 0, 1, 1, 2}
	q, err := Compare(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if q.OQ != 1 || q.CC != 1 {
		t.Errorf("relabeled perfect: %+v", q)
	}
}

func TestCompareAllSingletonsVsOneCluster(t *testing.T) {
	n := 5
	pred := make([]int32, n)
	truth := make([]int32, n)
	for i := range pred {
		pred[i] = int32(i) // all singletons
	}
	q, err := Compare(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if q.TP != 0 || q.FP != 0 || q.FN != 10 || q.TN != 0 {
		t.Errorf("counts: %+v", q.Counts)
	}
	if q.UN != 1 || q.OQ != 0 {
		t.Errorf("quality: %+v", q)
	}
}

func TestCompareKnownMixed(t *testing.T) {
	// truth: {0,1},{2,3}; pred: {0,1,2},{3}
	truth := []int32{0, 0, 1, 1}
	pred := []int32{5, 5, 5, 6}
	q, err := Compare(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	// pred pairs: (0,1),(0,2),(1,2) ; truth pairs: (0,1),(2,3)
	// TP = {(0,1)} = 1; FP = 2; FN = 1; TN = C(4,2)-4 = 2.
	if q.TP != 1 || q.FP != 2 || q.FN != 1 || q.TN != 2 {
		t.Errorf("counts: %+v", q.Counts)
	}
	if math.Abs(q.OQ-0.25) > 1e-12 {
		t.Errorf("OQ %f", q.OQ)
	}
	if math.Abs(q.OV-2.0/3.0) > 1e-12 {
		t.Errorf("OV %f", q.OV)
	}
	if math.Abs(q.UN-0.5) > 1e-12 {
		t.Errorf("UN %f", q.UN)
	}
	wantCC := (1.0*2 - 2.0*1) / math.Sqrt(3*3*2*4)
	if math.Abs(q.CC-wantCC) > 1e-12 {
		t.Errorf("CC %f want %f", q.CC, wantCC)
	}
}

// Property: counts always partition C(n,2), and all measures stay in range.
func TestCompareInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		n := len(raw)
		pred := make([]int32, n)
		truth := make([]int32, n)
		for i, b := range raw {
			pred[i] = int32(b % 7)
			truth[i] = int32((b / 7) % 5)
		}
		q, err := Compare(pred, truth)
		if err != nil {
			return false
		}
		total := int64(n) * int64(n-1) / 2
		if q.TP+q.FP+q.TN+q.FN != total {
			return false
		}
		if q.TP < 0 || q.FP < 0 || q.TN < 0 || q.FN < 0 {
			return false
		}
		return q.OQ >= 0 && q.OQ <= 1 && q.OV >= 0 && q.OV <= 1 &&
			q.UN >= 0 && q.UN <= 1 && q.CC >= -1 && q.CC <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Brute-force oracle comparison on random labelings.
func TestCompareAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(60)
		pred := make([]int32, n)
		truth := make([]int32, n)
		for i := range pred {
			pred[i] = int32(rng.Intn(6))
			truth[i] = int32(rng.Intn(6))
		}
		var want Counts
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				p := pred[i] == pred[j]
				tt := truth[i] == truth[j]
				switch {
				case p && tt:
					want.TP++
				case p && !tt:
					want.FP++
				case !p && tt:
					want.FN++
				default:
					want.TN++
				}
			}
		}
		q, err := Compare(pred, truth)
		if err != nil {
			t.Fatal(err)
		}
		if q.Counts != want {
			t.Fatalf("trial %d: %+v want %+v", trial, q.Counts, want)
		}
	}
}

func TestFromCountsZeroDenominators(t *testing.T) {
	q := FromCounts(Counts{TN: 10})
	if q.OQ != 1 || q.OV != 0 || q.UN != 0 || q.CC != 1 {
		t.Errorf("all-negative perfection: %+v", q)
	}
	q = FromCounts(Counts{FP: 5})
	if q.CC != 0 {
		t.Errorf("degenerate-margin CC should be 0: %+v", q)
	}
}

func TestMatthewsLargeCountsNoOverflow(t *testing.T) {
	// Counts at real EST scale (n≈100k ⇒ TN≈5e9) must not overflow.
	c := Counts{TP: 2_000_000, FP: 10_000, FN: 150_000, TN: 4_999_000_000}
	q := FromCounts(c)
	if math.IsNaN(q.CC) || math.IsInf(q.CC, 0) || q.CC <= 0.5 {
		t.Errorf("CC at scale: %f", q.CC)
	}
}

func TestClusterSizeHistogram(t *testing.T) {
	h := ClusterSizeHistogram([]int32{1, 1, 1, 2, 2, 9})
	if len(h) != 3 || h[0] != 3 || h[1] != 2 || h[2] != 1 {
		t.Errorf("histogram: %v", h)
	}
}

func TestNumClusters(t *testing.T) {
	if NumClusters([]int32{3, 3, 1, 0, 1}) != 3 {
		t.Error("NumClusters wrong")
	}
	if NumClusters(nil) != 0 {
		t.Error("empty labels")
	}
}

func TestString(t *testing.T) {
	q := FromCounts(Counts{TP: 1, FP: 1, FN: 0, TN: 0})
	s := q.String()
	if s == "" || s[:2] != "OQ" {
		t.Errorf("format: %q", s)
	}
}

func BenchmarkCompare100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100000
	pred := make([]int32, n)
	truth := make([]int32, n)
	for i := range pred {
		pred[i] = int32(rng.Intn(5000))
		truth[i] = int32(rng.Intn(5000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(pred, truth); err != nil {
			b.Fatal(err)
		}
	}
}
