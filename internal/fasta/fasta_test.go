package fasta

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"pace/internal/seq"
)

func TestReadSimple(t *testing.T) {
	in := ">e1 first EST\nACGT\nACGT\n>e2\nGGTT\n"
	recs, err := ReadAll(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ID != "e1" || recs[0].Desc != "first EST" {
		t.Errorf("header parse: %q %q", recs[0].ID, recs[0].Desc)
	}
	if recs[0].Seq.String() != "ACGTACGT" {
		t.Errorf("seq concat: %q", recs[0].Seq.String())
	}
	if recs[1].ID != "e2" || recs[1].Desc != "" {
		t.Errorf("second header: %q %q", recs[1].ID, recs[1].Desc)
	}
}

func TestReadCRLFAndBlankLines(t *testing.T) {
	in := ">a\r\nAC\r\n\r\nGT\r\n\r\n>b\r\nTT\r\n"
	recs, err := ReadAll(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq.String() != "ACGT" || recs[1].Seq.String() != "TT" {
		t.Fatalf("CRLF parse wrong: %+v", recs)
	}
}

func TestReadComments(t *testing.T) {
	in := "; a comment\n>a\nAC\n; mid comment\nGT\n"
	recs, err := ReadAll(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq.String() != "ACGT" {
		t.Fatalf("comment parse wrong: %+v", recs)
	}
}

func TestReadRejectsGarbagePrefix(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("ACGT\n>a\nAC\n"), Options{}); err == nil {
		t.Error("want error for sequence before header")
	}
}

func TestReadRejectsAmbiguousByDefault(t *testing.T) {
	if _, err := ReadAll(strings.NewReader(">a\nACNT\n"), Options{}); err == nil {
		t.Error("want error for N")
	}
}

func TestReadAllowAmbiguous(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(">a\nACNT\n"), Options{AllowAmbiguous: true, Filler: seq.A})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Seq.String() != "ACAT" {
		t.Errorf("got %q", recs[0].Seq.String())
	}
}

func TestReadEmptySequence(t *testing.T) {
	if _, err := ReadAll(strings.NewReader(">a\n>b\nAC\n"), Options{}); err == nil {
		t.Error("want error for empty record")
	}
	recs, err := ReadAll(strings.NewReader(">a\n>b\nAC\n"), Options{SkipEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "b" {
		t.Fatalf("SkipEmpty wrong: %+v", recs)
	}
}

func TestReadEmptyInput(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""), Options{})
	if err != nil || len(recs) != 0 {
		t.Errorf("empty input: %v %v", recs, err)
	}
}

func TestReadEmptyID(t *testing.T) {
	if _, err := ReadAll(strings.NewReader(">\nAC\n"), Options{}); err == nil {
		t.Error("want error for empty id")
	}
}

func TestNextEOF(t *testing.T) {
	r := NewReader(strings.NewReader(">a\nAC\n"), Options{})
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	// Repeated calls keep returning EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF again, got %v", err)
	}
}

func TestWriteWrap(t *testing.T) {
	s, _ := seq.Parse("ACGTACGTAC")
	var buf bytes.Buffer
	err := WriteAll(&buf, []*Record{{ID: "x", Desc: "d", Seq: s}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := ">x d\nACGT\nACGT\nAC\n"
	if buf.String() != want {
		t.Errorf("got %q want %q", buf.String(), want)
	}
}

func TestWriteRejectsEmptyID(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf, 0).Write(&Record{ID: ""}); err == nil {
		t.Error("want error for empty id")
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var recs []*Record
	for i := 0; i < 25; i++ {
		n := 1 + rng.Intn(300)
		s := make(seq.Sequence, n)
		for j := range s {
			s[j] = seq.Code(rng.Intn(4))
		}
		recs = append(recs, &Record{ID: "est" + string(rune('A'+i)), Seq: s})
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs, 60); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("count %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || !got[i].Seq.Equal(recs[i].Seq) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestSequences(t *testing.T) {
	s1, _ := seq.Parse("AC")
	s2, _ := seq.Parse("GT")
	got := Sequences([]*Record{{ID: "a", Seq: s1}, {ID: "b", Seq: s2}})
	if len(got) != 2 || !got[0].Equal(s1) || !got[1].Equal(s2) {
		t.Error("Sequences extraction wrong")
	}
}

func BenchmarkRead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString(">est\n")
		for j := 0; j < 10; j++ {
			line := make([]byte, 60)
			for k := range line {
				line[k] = "ACGT"[rng.Intn(4)]
			}
			sb.Write(line)
			sb.WriteByte('\n')
		}
	}
	data := sb.String()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(strings.NewReader(data), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
