// Package fasta reads and writes FASTA-formatted DNA sequence files, the
// interchange format used by EST repositories such as dbEST. The reader is
// streaming (suitable for multi-million-record files), tolerates Windows line
// endings and blank lines, and can either reject or repair non-ACGT
// characters.
package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"pace/internal/seq"
)

// Record is one FASTA entry.
type Record struct {
	// ID is the first whitespace-delimited token after '>'.
	ID string
	// Desc is the remainder of the header line, if any.
	Desc string
	// Seq is the parsed sequence.
	Seq seq.Sequence
}

// Options controls parsing behaviour.
type Options struct {
	// AllowAmbiguous replaces non-ACGT sequence characters with Filler
	// instead of failing. dbEST records routinely contain N runs.
	AllowAmbiguous bool
	// Filler is the replacement code used when AllowAmbiguous is set.
	Filler seq.Code
	// SkipEmpty drops records with empty sequences instead of failing.
	SkipEmpty bool
}

// Reader streams records from a FASTA file.
type Reader struct {
	s       *bufio.Scanner
	opts    Options
	line    int
	pending string // header line read ahead, "" if none
	done    bool
}

// NewReader wraps r. The options value may be the zero value for strict
// parsing.
func NewReader(r io.Reader, opts Options) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{s: s, opts: opts}
}

func trimLine(b []byte) string {
	return string(bytes.TrimRight(b, "\r"))
}

// Next returns the next record, or io.EOF when the input is exhausted.
func (r *Reader) Next() (*Record, error) {
	header := r.pending
	r.pending = ""
	for header == "" {
		if r.done {
			return nil, io.EOF
		}
		if !r.s.Scan() {
			r.done = true
			if err := r.s.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		r.line++
		line := trimLine(r.s.Bytes())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		if !strings.HasPrefix(line, ">") {
			return nil, fmt.Errorf("fasta: line %d: expected header, got %q", r.line, line)
		}
		header = line
	}

	rec := &Record{}
	fields := strings.SplitN(strings.TrimSpace(header[1:]), " ", 2)
	rec.ID = fields[0]
	if len(fields) == 2 {
		rec.Desc = strings.TrimSpace(fields[1])
	}
	if rec.ID == "" {
		return nil, fmt.Errorf("fasta: line %d: empty record id", r.line)
	}

	var raw strings.Builder
	for {
		if !r.s.Scan() {
			r.done = true
			if err := r.s.Err(); err != nil {
				return nil, err
			}
			break
		}
		r.line++
		line := trimLine(r.s.Bytes())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, ">") {
			r.pending = line
			break
		}
		raw.WriteString(strings.TrimSpace(line))
	}

	var err error
	if r.opts.AllowAmbiguous {
		rec.Seq, _ = seq.ParseLossy(raw.String(), r.opts.Filler)
	} else {
		rec.Seq, err = seq.Parse(raw.String())
		if err != nil {
			return nil, fmt.Errorf("fasta: record %q: %w", rec.ID, err)
		}
	}
	if len(rec.Seq) == 0 && !r.opts.SkipEmpty {
		return nil, fmt.Errorf("fasta: record %q has empty sequence", rec.ID)
	}
	if len(rec.Seq) == 0 {
		return r.Next()
	}
	return rec, nil
}

// ReadAll consumes the reader and returns every record.
func (r *Reader) ReadAll() ([]*Record, error) {
	var out []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// ReadAll parses all records from r with the given options.
func ReadAll(r io.Reader, opts Options) ([]*Record, error) {
	return NewReader(r, opts).ReadAll()
}

// Sequences extracts just the sequences from records, in order.
func Sequences(recs []*Record) []seq.Sequence {
	out := make([]seq.Sequence, len(recs))
	for i, r := range recs {
		out[i] = r.Seq
	}
	return out
}

// Writer emits FASTA records with fixed line wrapping.
type Writer struct {
	w    *bufio.Writer
	wrap int
}

// NewWriter creates a Writer wrapping lines at wrap characters
// (60 if wrap <= 0).
func NewWriter(w io.Writer, wrap int) *Writer {
	if wrap <= 0 {
		wrap = 60
	}
	return &Writer{w: bufio.NewWriter(w), wrap: wrap}
}

// Write emits one record.
func (w *Writer) Write(rec *Record) error {
	if rec.ID == "" {
		return fmt.Errorf("fasta: cannot write record with empty id")
	}
	if _, err := w.w.WriteString(">" + rec.ID); err != nil {
		return err
	}
	if rec.Desc != "" {
		if _, err := w.w.WriteString(" " + rec.Desc); err != nil {
			return err
		}
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	s := rec.Seq.String()
	for i := 0; i < len(s); i += w.wrap {
		end := i + w.wrap
		if end > len(s) {
			end = len(s)
		}
		if _, err := w.w.WriteString(s[i:end]); err != nil {
			return err
		}
		if err := w.w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll writes all records and flushes.
func WriteAll(w io.Writer, recs []*Record, wrap int) error {
	fw := NewWriter(w, wrap)
	for _, r := range recs {
		if err := fw.Write(r); err != nil {
			return err
		}
	}
	return fw.Flush()
}
