// Package trim implements EST preprocessing: poly(A)/poly(T) tail trimming
// and low-complexity (DUST-style) assessment.
//
// mRNAs carry 3' poly(A) tails, and oligo-dT-primed cDNA fragments inherit
// them; after strand flips the tails surface as leading poly(T) or trailing
// poly(A) runs on reads. Untrimmed tails are poison for a suffix-tree
// clusterer: every tailed EST shares long A^k maximal common substrings with
// every other tailed EST, so the A-bucket subtree balloons and the pair
// generator emits a quadratic flood of spurious promising pairs that the
// aligner must reject one by one. Production EST pipelines therefore trim
// tails first; this package provides that step for ours.
package trim

import (
	"fmt"

	"pace/internal/seq"
)

// Options controls tail trimming.
type Options struct {
	// MinRun is the minimum homopolymer run length that counts as a tail.
	MinRun int
	// MaxMiss is the number of interrupting non-run characters tolerated
	// inside a tail (sequencing errors inside poly(A) stretches).
	MaxMiss int
	// MinRemain guards against trimming a read away entirely: trimming
	// stops once the remaining sequence would fall below this length.
	MinRemain int
}

// DefaultOptions matches common EST pipeline settings.
func DefaultOptions() Options {
	return Options{MinRun: 10, MaxMiss: 2, MinRemain: 50}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.MinRun < 2 {
		return fmt.Errorf("trim: MinRun must be >= 2, got %d", o.MinRun)
	}
	if o.MaxMiss < 0 {
		return fmt.Errorf("trim: MaxMiss must be >= 0")
	}
	if o.MinRemain < 0 {
		return fmt.Errorf("trim: MinRemain must be >= 0")
	}
	return nil
}

// trailingRun returns how many characters to cut from the end of s to remove
// a homopolymer tail of character c, tolerating maxMiss interruptions.
// The cut never splits an interruption: it always ends on a run character.
func trailingRun(s seq.Sequence, c seq.Code, minRun, maxMiss int) int {
	run, miss, cut := 0, 0, 0
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == c {
			run++
			if run >= minRun {
				cut = len(s) - i
			}
		} else {
			miss++
			if miss > maxMiss {
				break
			}
		}
	}
	return cut
}

// leadingRun mirrors trailingRun at the front of s.
func leadingRun(s seq.Sequence, c seq.Code, minRun, maxMiss int) int {
	run, miss, cut := 0, 0, 0
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			run++
			if run >= minRun {
				cut = i + 1
			}
		} else {
			miss++
			if miss > maxMiss {
				break
			}
		}
	}
	return cut
}

// Tails trims poly(A)/poly(T) tails from both ends of s and returns the
// trimmed subsequence (sharing storage with s) plus how many characters were
// removed at each end. Both A and T runs are handled at both ends because
// the strand of a deposited EST is unknown.
func Tails(s seq.Sequence, o Options) (trimmed seq.Sequence, cutFront, cutBack int) {
	if err := o.Validate(); err != nil {
		// Invalid options are a programming error; trimming nothing is
		// the safe degradation for library misuse at runtime.
		return s, 0, 0
	}
	out := s
	for _, c := range []seq.Code{seq.A, seq.T} {
		if cut := trailingRun(out, c, o.MinRun, o.MaxMiss); cut > 0 {
			if len(out)-cut < o.MinRemain {
				cut = len(out) - o.MinRemain
			}
			if cut > 0 {
				out = out[:len(out)-cut]
				cutBack += cut
			}
		}
		if cut := leadingRun(out, c, o.MinRun, o.MaxMiss); cut > 0 {
			if len(out)-cut < o.MinRemain {
				cut = len(out) - o.MinRemain
			}
			if cut > 0 {
				out = out[cut:]
				cutFront += cut
			}
		}
	}
	return out, cutFront, cutBack
}

// Stats summarizes a batch trimming pass.
type Stats struct {
	// Reads is the number of sequences processed.
	Reads int
	// Trimmed is how many had at least one character removed.
	Trimmed int
	// CharsRemoved is the total characters cut.
	CharsRemoved int64
}

// Batch trims every sequence and returns the trimmed set plus statistics.
// Sequences share storage with their inputs.
func Batch(ests []seq.Sequence, o Options) ([]seq.Sequence, Stats) {
	out := make([]seq.Sequence, len(ests))
	var st Stats
	st.Reads = len(ests)
	for i, e := range ests {
		t, f, b := Tails(e, o)
		out[i] = t
		if f+b > 0 {
			st.Trimmed++
			st.CharsRemoved += int64(f + b)
		}
	}
	return out, st
}

// DustScore computes a DUST-style low-complexity score for s: the triplet-
// repetitiveness sum S = Σ c_t(c_t−1)/2 normalized by (w−3) where c_t are
// trinucleotide counts. Perfectly diverse sequence scores near 0.5;
// homopolymers score ~(w−3)/2 before normalization (≈ large).
func DustScore(s seq.Sequence) float64 {
	if len(s) < 4 {
		return 0
	}
	counts := make(map[uint16]int, len(s))
	for i := 0; i+3 <= len(s); i++ {
		t := uint16(s[i])<<4 | uint16(s[i+1])<<2 | uint16(s[i+2])
		counts[t]++
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c*(c-1)) / 2
	}
	return sum / float64(len(s)-3)
}

// LowComplexityFraction slides a window over s and returns the fraction of
// windows whose DustScore exceeds the threshold. Typical parameters:
// window 64, threshold 2.
func LowComplexityFraction(s seq.Sequence, window int, threshold float64) float64 {
	if window < 8 {
		window = 8
	}
	if len(s) < window {
		if DustScore(s) > threshold {
			return 1
		}
		return 0
	}
	hits, total := 0, 0
	for i := 0; i+window <= len(s); i += window / 2 {
		total++
		if DustScore(s[i:i+window]) > threshold {
			hits++
		}
	}
	return float64(hits) / float64(total)
}
