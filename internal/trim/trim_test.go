package trim

import (
	"math/rand"
	"strings"
	"testing"

	"pace/internal/seq"
)

func mustSeq(t testing.TB, s string) seq.Sequence {
	t.Helper()
	out, err := seq.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Options{MinRun: 1}).Validate(); err == nil {
		t.Error("MinRun 1 accepted")
	}
	if err := (Options{MinRun: 5, MaxMiss: -1}).Validate(); err == nil {
		t.Error("negative MaxMiss accepted")
	}
	if err := (Options{MinRun: 5, MinRemain: -1}).Validate(); err == nil {
		t.Error("negative MinRemain accepted")
	}
}

func TestTrailingPolyA(t *testing.T) {
	body := strings.Repeat("ACGT", 20)
	s := mustSeq(t, body+strings.Repeat("A", 15))
	got, f, b := Tails(s, Options{MinRun: 10, MaxMiss: 0, MinRemain: 20})
	if f != 0 || b != 15 {
		t.Fatalf("cuts: front=%d back=%d", f, b)
	}
	if got.String() != body {
		t.Errorf("trimmed: %q", got.String())
	}
}

func TestLeadingPolyT(t *testing.T) {
	body := strings.Repeat("GACC", 20)
	s := mustSeq(t, strings.Repeat("T", 12)+body)
	got, f, b := Tails(s, DefaultOptions())
	if f != 12 || b != 0 {
		t.Fatalf("cuts: front=%d back=%d", f, b)
	}
	if got.String() != body {
		t.Errorf("trimmed: %q", got.String())
	}
}

func TestTailWithInterruptions(t *testing.T) {
	body := strings.Repeat("GCGC", 20)
	// Tail: AAAAA C AAAAAA — one miss inside.
	s := mustSeq(t, body+"AAAAACAAAAAA")
	got, _, b := Tails(s, Options{MinRun: 10, MaxMiss: 2, MinRemain: 20})
	if b != 12 {
		t.Fatalf("back cut %d want 12 (%q)", b, got.String())
	}
}

func TestShortRunNotTrimmed(t *testing.T) {
	s := mustSeq(t, strings.Repeat("ACGT", 20)+"AAAA")
	got, f, b := Tails(s, DefaultOptions())
	if f != 0 || b != 0 || len(got) != len(s) {
		t.Errorf("short run trimmed: f=%d b=%d", f, b)
	}
}

func TestCutNeverSplitsInterruption(t *testing.T) {
	// The cut must end on a run character: the G below survives.
	body := strings.Repeat("CGTC", 15)
	s := mustSeq(t, body+"G"+strings.Repeat("A", 11))
	got, _, b := Tails(s, Options{MinRun: 10, MaxMiss: 2, MinRemain: 10})
	if b != 11 {
		t.Fatalf("cut %d want 11", b)
	}
	if got[len(got)-1] != seq.G {
		t.Errorf("trailing char %v, G should survive", got[len(got)-1])
	}
}

func TestMinRemainGuard(t *testing.T) {
	s := mustSeq(t, strings.Repeat("A", 100))
	got, _, _ := Tails(s, Options{MinRun: 10, MaxMiss: 0, MinRemain: 30})
	if len(got) != 30 {
		t.Errorf("remaining %d want 30", len(got))
	}
}

func TestBothEnds(t *testing.T) {
	// Body free of A/T near its ends so miss-tolerant trimming cannot
	// legitimately eat into it.
	body := strings.Repeat("GCGC", 25)
	s := mustSeq(t, strings.Repeat("T", 14)+body+strings.Repeat("A", 14))
	got, f, b := Tails(s, DefaultOptions())
	if f != 14 || b != 14 {
		t.Fatalf("cuts: %d %d", f, b)
	}
	if got.String() != body {
		t.Errorf("body mangled")
	}
}

func TestInvalidOptionsTrimNothing(t *testing.T) {
	s := mustSeq(t, strings.Repeat("A", 50))
	got, f, b := Tails(s, Options{MinRun: 0})
	if f != 0 || b != 0 || len(got) != 50 {
		t.Error("invalid options must be a no-op")
	}
}

func TestBatch(t *testing.T) {
	body := strings.Repeat("ACGC", 20)
	ests := []seq.Sequence{
		mustSeq(t, body+strings.Repeat("A", 12)),
		mustSeq(t, body),
	}
	out, st := Batch(ests, DefaultOptions())
	if st.Reads != 2 || st.Trimmed != 1 || st.CharsRemoved != 12 {
		t.Errorf("stats: %+v", st)
	}
	if len(out[0]) != len(body) || len(out[1]) != len(body) {
		t.Errorf("lengths: %d %d", len(out[0]), len(out[1]))
	}
}

func TestDustScoreOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	random := make(seq.Sequence, 64)
	for i := range random {
		random[i] = seq.Code(rng.Intn(4))
	}
	homo := mustSeq(t, strings.Repeat("A", 64))
	dinuc := mustSeq(t, strings.Repeat("AT", 32))
	if DustScore(homo) <= DustScore(dinuc) {
		t.Error("homopolymer must out-score dinucleotide repeat")
	}
	if DustScore(dinuc) <= DustScore(random) {
		t.Error("repeat must out-score random")
	}
	if DustScore(mustSeq(t, "ACG")) != 0 {
		t.Error("too-short input must score 0")
	}
}

func TestLowComplexityFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	random := make(seq.Sequence, 256)
	for i := range random {
		random[i] = seq.Code(rng.Intn(4))
	}
	if f := LowComplexityFraction(random, 64, 2); f != 0 {
		t.Errorf("random fraction %f", f)
	}
	homo := mustSeq(t, strings.Repeat("A", 256))
	if f := LowComplexityFraction(homo, 64, 2); f != 1 {
		t.Errorf("homopolymer fraction %f", f)
	}
	short := mustSeq(t, strings.Repeat("A", 20))
	if f := LowComplexityFraction(short, 64, 2); f != 1 {
		t.Errorf("short homopolymer fraction %f", f)
	}
}
