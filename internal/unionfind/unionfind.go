// Package unionfind implements the disjoint-set (union-find) structure from
// Tarjan's analysis, used by the master processor to maintain the EST
// clusters (the paper's CLUSTERS buffer). Find and Union run in amortized
// inverse-Ackermann time via path compression and union by rank.
package unionfind

// UF is a disjoint-set forest over the integers [0, n).
type UF struct {
	parent []int32
	rank   []uint8
	count  int // number of disjoint sets
}

// New creates n singleton sets.
func New(n int) *UF {
	u := &UF{
		parent: make([]int32, n),
		rank:   make([]uint8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Count returns the current number of disjoint sets.
func (u *UF) Count() int { return u.count }

// Find returns the representative of x's set, compressing the path.
func (u *UF) Find(x int32) int32 {
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int32) bool { return u.Find(x) == u.Find(y) }

// Union merges the sets of x and y and reports whether a merge happened
// (false when they were already in the same set).
func (u *UF) Union(x, y int32) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	switch {
	case u.rank[rx] < u.rank[ry]:
		u.parent[rx] = ry
	case u.rank[rx] > u.rank[ry]:
		u.parent[ry] = rx
	default:
		u.parent[ry] = rx
		u.rank[rx]++
	}
	u.count--
	return true
}

// Clusters materializes the current partition as a map from representative to
// members. Member order within a cluster is ascending.
func (u *UF) Clusters() map[int32][]int32 {
	out := make(map[int32][]int32)
	for i := range u.parent {
		r := u.Find(int32(i))
		out[r] = append(out[r], int32(i))
	}
	return out
}

// Labels returns, for each element, a dense cluster label in [0, Count()).
// Labels are assigned in order of first appearance, so the output is
// deterministic for a given structure state.
func (u *UF) Labels() []int32 {
	labels := make([]int32, len(u.parent))
	next := int32(0)
	seen := make(map[int32]int32, u.count)
	for i := range u.parent {
		r := u.Find(int32(i))
		l, ok := seen[r]
		if !ok {
			l = next
			seen[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}
