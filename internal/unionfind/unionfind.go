// Package unionfind implements the disjoint-set (union-find) structure from
// Tarjan's analysis, used by the master processor to maintain the EST
// clusters (the paper's CLUSTERS buffer). Find and Union run in amortized
// inverse-Ackermann time via path compression and union by rank.
package unionfind

// UF is a disjoint-set forest over the integers [0, n).
type UF struct {
	parent []int32
	rank   []uint8
	count  int // number of disjoint sets
}

// New creates n singleton sets.
func New(n int) *UF {
	u := &UF{
		parent: make([]int32, n),
		rank:   make([]uint8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Count returns the current number of disjoint sets.
func (u *UF) Count() int { return u.count }

// Find returns the representative of x's set. It compresses by iterative
// path halving — every visited node is re-pointed at its grandparent — which
// keeps the amortized inverse-Ackermann bound of two-pass compression in a
// single allocation-free loop (no recursion, no visited stack), so the hot
// Same/Union filters stay allocation-free even under the race detector.
func (u *UF) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int32) bool { return u.Find(x) == u.Find(y) }

// Union merges the sets of x and y and reports whether a merge happened
// (false when they were already in the same set).
func (u *UF) Union(x, y int32) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	switch {
	case u.rank[rx] < u.rank[ry]:
		u.parent[rx] = ry
	case u.rank[rx] > u.rank[ry]:
		u.parent[ry] = rx
	default:
		u.parent[ry] = rx
		u.rank[rx]++
	}
	u.count--
	return true
}

// Snapshot returns the forest itself: UF is already the serializable shape,
// so the checkpoint seam (which snapshots any merge structure as a *UF to
// feed the UFv1 codec) costs nothing for the plain flavor. Callers serialize
// synchronously and must not hold the result across further mutation.
func (u *UF) Snapshot() *UF { return u }

// Clusters materializes the current partition as a map from representative to
// members. Member order within a cluster is ascending.
func (u *UF) Clusters() map[int32][]int32 {
	out := make(map[int32][]int32)
	for i := range u.parent {
		r := u.Find(int32(i))
		out[r] = append(out[r], int32(i))
	}
	return out
}

// Labels returns, for each element, a dense cluster label in [0, Count()).
// Labels are assigned in order of first appearance, so the output is
// deterministic for a given structure state.
func (u *UF) Labels() []int32 { return u.LabelsInto(nil) }

// LabelsInto is Labels writing into dst (reused when its capacity suffices),
// so per-phase label snapshots in hot loops stop allocating. It allocates
// nothing when cap(dst) >= Len(): the dense relabeling runs in place over
// dst using a sign-encoding pass instead of a root→label map.
func (u *UF) LabelsInto(dst []int32) []int32 {
	return labelsInto(dst, len(u.parent), u.Find)
}

// labelsInto materializes first-appearance-order dense labels for any
// union-find flavor given its Find. Pass 1 stores each element's root id in
// dst; pass 2 walks ascending and, at the first member of each set, stamps a
// new label (encoded negative) over the root's own slot so later members
// find it without a map; pass 3 flips the encoding.
func labelsInto(dst []int32, n int, find func(int32) int32) []int32 {
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = find(int32(i))
	}
	next := int32(0)
	for i := 0; i < n; i++ {
		r := dst[i]
		if r < 0 {
			continue // i is a root already relabeled via an earlier member
		}
		if enc := dst[r]; enc < 0 {
			dst[i] = enc
		} else {
			e := -next - 1
			next++
			dst[r] = e
			dst[i] = e
		}
	}
	for i := 0; i < n; i++ {
		dst[i] = -dst[i] - 1
	}
	return dst
}
