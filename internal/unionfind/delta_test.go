package unionfind

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// deltaSeeds is the pinned corpus shared by FuzzMergeDelta and its plain
// go-test mirror, so CI without -fuzz still exercises every seed.
func deltaSeeds() [][]byte {
	empty := MergeDelta{}
	one := MergeDelta{Edges: []MergeEdge{{0, 1}}}
	many := MergeDelta{Edges: []MergeEdge{{4, 2}, {7, 100}, {100, 4}, {3, 2}}}
	var seeds [][]byte
	for _, d := range []*MergeDelta{&empty, &one, &many} {
		enc, _ := d.MarshalBinary()
		seeds = append(seeds, enc)
	}
	enc, _ := many.MarshalBinary()
	seeds = append(seeds,
		enc[:len(enc)-3],                       // truncated mid-edge
		append(append([]byte{}, enc...), 0xAB), // trailing byte
		[]byte("UFD2????"),                     // wrong magic version
		[]byte{'U', 'F', 'D', '1', 1, 0, 0, 0, 5, 0, 0, 0, 5, 0, 0, 0},    // self-edge
		[]byte{'U', 'F', 'D', '1', 1, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0x80}, // high-bit id
	)
	return seeds
}

// checkDelta runs the fuzz invariants on one input: no panic, failures wrap
// ErrCorrupt, accepted inputs round-trip byte-exact.
func checkDelta(t *testing.T, b []byte) {
	t.Helper()
	var d MergeDelta
	if err := d.UnmarshalBinary(b); err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
		}
		return
	}
	got, _ := d.MarshalBinary()
	if !bytes.Equal(got, b) {
		t.Fatalf("round-trip mismatch:\n in  %x\n out %x", b, got)
	}
}

// FuzzMergeDelta drives UnmarshalBinary with arbitrary bytes under the PR 5
// codec-fuzzer contract: accept ⇒ byte-exact round-trip; reject ⇒ wrapped
// ErrCorrupt (trailing bytes included, with the offending offset).
func FuzzMergeDelta(f *testing.F) {
	for _, s := range deltaSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) { checkDelta(t, b) })
}

// TestMergeDeltaSeeds is the pinned-seed plain-test mirror of FuzzMergeDelta
// plus randomized valid encodings, so the invariants run on every `go test`.
func TestMergeDeltaSeeds(t *testing.T) {
	for i, s := range deltaSeeds() {
		t.Logf("seed %d (%d bytes)", i, len(s))
		checkDelta(t, s)
	}
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(64)
		d := MergeDelta{Edges: make([]MergeEdge, 0, n)}
		for e := 0; e < n; e++ {
			a, b := int32(rng.Intn(500)), int32(rng.Intn(500))
			if a != b {
				d.Edges = append(d.Edges, MergeEdge{A: a, B: b})
			}
		}
		enc, _ := d.MarshalBinary()
		checkDelta(t, enc)
		var back MergeDelta
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatal(err)
		}
		if len(back.Edges) != len(d.Edges) {
			t.Fatalf("edge count %d, want %d", len(back.Edges), len(d.Edges))
		}
	}
}

// TestMergeDeltaStrictLength pins the truncated/trailing offsets, matching
// the UFv1 strict-length test.
func TestMergeDeltaStrictLength(t *testing.T) {
	d := MergeDelta{Edges: []MergeEdge{{1, 2}, {3, 4}}}
	enc, _ := d.MarshalBinary()

	var dst MergeDelta
	err := dst.UnmarshalBinary(append(append([]byte{}, enc...), 0xEE))
	if err == nil {
		t.Fatal("trailing byte accepted")
	}
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes ErrCorrupt, got %v", err)
	}
	// 8 + 8*2 = 24: the first trailing byte sits at offset 24.
	if !strings.Contains(err.Error(), "offset 24") {
		t.Fatalf("error does not name the offending offset: %v", err)
	}

	err = dst.UnmarshalBinary(enc[:len(enc)-2])
	if err == nil {
		t.Fatal("truncated input accepted")
	}
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncated ErrCorrupt, got %v", err)
	}

	// A rejecting decode leaves the destination untouched.
	if dst.Edges != nil {
		t.Fatal("failed decode mutated destination")
	}
}
