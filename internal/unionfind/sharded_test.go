package unionfind

import (
	"fmt"
	"math/rand"
	"testing"
)

// applyEdges runs one Apply over the whole edge list and returns the stats.
func applyEdges(s *Sharded, edges []MergeEdge) ApplyStats {
	return s.Apply(MergeDelta{Edges: edges})
}

// TestShardedMatchesUF is the core equivalence property: for random edge
// sets, every shard count, batch split, and execution mode must produce the
// same partition (labels) and set count as the plain single-master UF.
func TestShardedMatchesUF(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(200)
		nEdges := rng.Intn(3 * n)
		edges := make([]MergeEdge, 0, nEdges)
		for e := 0; e < nEdges; e++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			if a == b {
				continue
			}
			edges = append(edges, MergeEdge{A: a, B: b})
		}
		ref := New(n)
		for _, e := range edges {
			ref.Union(e.A, e.B)
		}
		want := ref.Labels()
		for _, k := range []int{1, 2, 4, 7, 16, 64} {
			for _, par := range []bool{false, true} {
				s := NewSharded(n, k)
				s.Parallel = par
				// Split the edge list into a few batches to exercise
				// Apply over non-virgin state.
				batches := 1 + rng.Intn(3)
				per := (len(edges) + batches - 1) / max(batches, 1)
				for off := 0; off < len(edges); off += per {
					end := min(off+per, len(edges))
					applyEdges(s, edges[off:end])
				}
				if s.Count() != ref.Count() {
					t.Fatalf("trial %d k=%d par=%v: count %d, want %d", trial, k, par, s.Count(), ref.Count())
				}
				got := s.Labels()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d k=%d par=%v: label[%d] = %d, want %d", trial, k, par, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardedDeterministicStats: the phase-reconciled rounds are a pure
// function of the input, so parallel and sequential execution must agree on
// every statistic, not just the partition.
func TestShardedDeterministicStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 4096
	edges := make([]MergeEdge, 0, 3*n)
	for e := 0; e < 3*n; e++ {
		a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
		if a != b {
			edges = append(edges, MergeEdge{A: a, B: b})
		}
	}
	for _, k := range []int{4, 16} {
		seq := NewSharded(n, k)
		par := NewSharded(n, k)
		par.Parallel = true
		ss := applyEdges(seq, edges)
		ps := applyEdges(par, edges)
		if fmt.Sprint(ss) != fmt.Sprint(ps) {
			t.Fatalf("k=%d: stats diverge\nseq %+v\npar %+v", k, ss, ps)
		}
		for i := range seq.parent {
			if seq.parent[i] != par.parent[i] {
				t.Fatalf("k=%d: parent[%d] %d vs %d", k, i, seq.parent[i], par.parent[i])
			}
		}
	}
}

// TestShardedSingleShard: K=1 degenerates to single-master behavior — every
// task resolves in round zero with no cross-shard traffic.
func TestShardedSingleShard(t *testing.T) {
	s := NewSharded(16, 1)
	st := applyEdges(s, []MergeEdge{{0, 5}, {5, 9}, {2, 3}, {0, 9}})
	if st.Phases != 1 || st.CrossShard != 0 {
		t.Fatalf("K=1 must finish in one phase with no forwards: %+v", st)
	}
	if st.Links != 3 {
		t.Fatalf("links = %d, want 3", st.Links)
	}
	if s.Count() != 16-3 {
		t.Fatalf("count = %d", s.Count())
	}
}

// TestShardedUnionByMin pins the representative convention: the root of any
// set is its minimum element, regardless of union order or shard count.
func TestShardedUnionByMin(t *testing.T) {
	s := NewSharded(10, 4)
	applyEdges(s, []MergeEdge{{9, 7}, {7, 3}, {8, 9}})
	for _, x := range []int32{3, 7, 8, 9} {
		if r := s.Find(x); r != 3 {
			t.Fatalf("Find(%d) = %d, want min element 3", x, r)
		}
	}
	if !s.Union(3, 1) {
		t.Fatal("seeding Union must merge")
	}
	if r := s.Find(9); r != 1 {
		t.Fatalf("after Union(3,1): Find(9) = %d, want 1", r)
	}
}

// TestShardedSnapshotUFv1: snapshots serialize through the UFv1 codec and
// decode into a UF with the identical partition, so PACECKPT checkpoints
// written by a sharded run resume anywhere.
func TestShardedSnapshotUFv1(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 300
	s := NewSharded(n, 8)
	edges := make([]MergeEdge, 0, n)
	for e := 0; e < n; e++ {
		a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
		if a != b {
			edges = append(edges, MergeEdge{A: a, B: b})
		}
	}
	applyEdges(s, edges)

	enc, err := s.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// AppendBinary on the Sharded itself is the same bytes (before any Find
	// below compresses paths).
	if direct := s.AppendBinary(nil); string(direct) != string(enc) {
		t.Fatal("Sharded.AppendBinary differs from Snapshot().MarshalBinary")
	}
	var back UF
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatalf("UFv1 decode of sharded snapshot: %v", err)
	}
	if back.Count() != s.Count() {
		t.Fatalf("count %d vs %d", back.Count(), s.Count())
	}
	want, got := s.Labels(), back.Labels()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("label[%d] %d vs %d", i, want[i], got[i])
		}
	}
}

// TestLabelsIntoReuse: LabelsInto writes into the provided buffer without
// allocating when capacity suffices, for both flavors.
func TestLabelsIntoReuse(t *testing.T) {
	u := New(128)
	s := NewSharded(128, 4)
	for i := int32(0); i < 127; i += 3 {
		u.Union(i, i+1)
	}
	applyEdges(s, []MergeEdge{{0, 1}, {3, 4}, {6, 7}})
	for name, fn := range map[string]func([]int32) []int32{
		"uf":      u.LabelsInto,
		"sharded": s.LabelsInto,
	} {
		buf := make([]int32, 0, 128)
		out := fn(buf)
		if &out[0] != &buf[:1][0] {
			t.Errorf("%s: LabelsInto did not reuse the buffer", name)
		}
		if allocs := testing.AllocsPerRun(20, func() { buf = fn(buf) }); allocs != 0 {
			t.Errorf("%s: LabelsInto allocated %v times with sufficient capacity", name, allocs)
		}
	}
}

// TestFindAllocFree pins the satellite: Find is allocation-free (iterative,
// no recursion or visited stack), including on long chains.
func TestFindAllocFree(t *testing.T) {
	u := New(1 << 12)
	for i := int32(1); i < 1<<12; i++ {
		u.Union(i-1, i)
	}
	if allocs := testing.AllocsPerRun(100, func() { u.Find(1<<12 - 1) }); allocs != 0 {
		t.Fatalf("Find allocated %v times", allocs)
	}
}

// BenchmarkMergePhase measures Apply over a fixed random delta for several
// shard counts, sequential and parallel — the merge-phase half of the
// BENCH_shardeduf perf trajectory.
func BenchmarkMergePhase(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	const n = 1 << 17
	edges := make([]MergeEdge, 0, n)
	for e := 0; e < n; e++ {
		a, bb := int32(rng.Intn(n)), int32(rng.Intn(n))
		if a != bb {
			edges = append(edges, MergeEdge{A: a, B: bb})
		}
	}
	for _, k := range []int{1, 4, 16} {
		for _, par := range []bool{false, true} {
			if k == 1 && par {
				continue
			}
			mode := "seq"
			if par {
				mode = "par"
			}
			b.Run(fmt.Sprintf("k=%d/%s", k, mode), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := NewSharded(n, k)
					s.Parallel = par
					applyEdges(s, edges)
				}
			})
		}
	}
}
