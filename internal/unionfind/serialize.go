package unionfind

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary layout (version 1, little-endian):
//
//	magic "UFv1" | u32 n | u32 count | n × i32 parent | n × u8 rank
//
// The format exists for the master's checkpoint file: it must round-trip the
// exact forest (including interior parent pointers and ranks) so a resumed
// run continues merging into the same structure.

var ufMagic = [4]byte{'U', 'F', 'v', '1'}

// ErrCorrupt is wrapped by every decode failure.
var ErrCorrupt = errors.New("unionfind: corrupt serialized data")

// AppendBinary appends the serialized forest to dst and returns it.
func (u *UF) AppendBinary(dst []byte) []byte {
	n := len(u.parent)
	dst = append(dst, ufMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(u.count))
	for _, p := range u.parent {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p))
	}
	dst = append(dst, u.rank...)
	return dst
}

// MarshalBinary serializes the forest.
func (u *UF) MarshalBinary() ([]byte, error) {
	return u.AppendBinary(make([]byte, 0, 12+5*len(u.parent))), nil
}

// UnmarshalBinary replaces u's state with the serialized forest. Corrupted or
// truncated input returns an error wrapping ErrCorrupt and leaves u
// untouched; it never panics.
func (u *UF) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("%w: %d bytes, want >= 12", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != ufMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	count := int(binary.LittleEndian.Uint32(data[8:12]))
	if want := 12 + 5*n; len(data) != want {
		if len(data) < want {
			return fmt.Errorf("%w: truncated at offset %d for n=%d, want %d bytes", ErrCorrupt, len(data), n, want)
		}
		return fmt.Errorf("%w: %d trailing bytes at offset %d for n=%d", ErrCorrupt, len(data)-want, want, n)
	}
	if count < 0 || count > n {
		return fmt.Errorf("%w: count %d out of [0,%d]", ErrCorrupt, count, n)
	}
	parent := make([]int32, n)
	roots := 0
	for i := range parent {
		p := int32(binary.LittleEndian.Uint32(data[12+4*i:]))
		if p < 0 || int(p) >= n {
			return fmt.Errorf("%w: parent[%d] = %d out of [0,%d)", ErrCorrupt, i, p, n)
		}
		if int(p) == i {
			roots++
		}
		parent[i] = p
	}
	if roots != count {
		return fmt.Errorf("%w: %d roots but count %d", ErrCorrupt, roots, count)
	}
	rank := make([]uint8, n)
	copy(rank, data[12+4*n:])
	u.parent, u.rank, u.count = parent, rank, count
	return nil
}
