package unionfind

import "sync"

// Sharded is a union-find over [0, n) whose merge path is partitioned into K
// root shards reconciled in bounded phases, after Doppel's phase
// reconciliation: contended shared state is split into per-shard views that
// are updated without cross-shard communication, and cross-shard merges are
// exchanged between phases rather than serialized through one owner.
//
// Ownership and the phase discipline:
//
//   - Element x is owned by shard x % K. During a reconcile round, shard s
//     reads and writes parent entries of its own elements ONLY — never a
//     peer's. A root chase that reaches a foreign element stops and forwards
//     the task to that element's owner for the next round.
//   - Links follow union-by-min: a root is only ever pointed at a smaller
//     element id, so parent[x] <= x always holds, chains strictly decrease,
//     and concurrent same-round links can never form a cycle.
//   - Because a round performs no cross-shard memory access at all, its
//     outcome is a pure function of the state at the round barrier: the
//     structure, the per-round task counts, and the final partition are
//     identical whether shards run on goroutines or sequentially.
//
// Rounds are bounded: every forwarded task either strictly descends a
// parent chain (chains strictly decrease under union-by-min) or swaps to
// compare against a strictly smaller root, so each task terminates after at
// most O(longest chain) hops and the reconcile loop reaches a fixpoint
// (empty inboxes) in finitely many rounds — a handful in practice.
//
// Single-threaded methods (Find, Same, Union, Labels, serialization) may
// touch the whole array and must not run concurrently with Apply.
type Sharded struct {
	parent []int32
	count  int
	k      int

	// Parallel selects goroutine-per-shard execution inside Apply for
	// deltas of at least parallelMin tasks. Results are identical either
	// way (see the phase discipline above); the switch only trades
	// goroutine overhead against concurrency.
	Parallel bool

	inbox  [][]task   // per-shard pending tasks for the current round
	outbox [][][]task // [src][dst] tasks produced during a round
	stats  ApplyStats // scratch for the in-flight Apply
	wg     sync.WaitGroup
}

// task asks that the sets containing a and b be merged. It always sits in
// the inbox of a's owner.
type task struct{ a, b int32 }

// parallelMin is the task count below which Apply runs shards sequentially
// even when Parallel is set: spawning K goroutines for a handful of edges
// costs more than the loop.
const parallelMin = 256

// ApplyStats describes one Apply call (or, summed, a run's reconciliation).
type ApplyStats struct {
	// Phases is the number of reconcile rounds until fixpoint.
	Phases int64
	// Tasks is the number of merge tasks processed across all rounds
	// (the delta's edges plus every cross-shard forward).
	Tasks int64
	// CrossShard is the number of tasks forwarded between shards — the
	// reconciliation traffic a single-master structure never has.
	CrossShard int64
	// Links is the number of unions that actually joined two sets.
	Links int64
	// RoundTasks is the per-round task count, RoundTasks[0] being the
	// initial delta distribution.
	RoundTasks []int64
}

// NewSharded creates n singleton sets partitioned into k root shards.
// k < 1 is treated as 1; one shard degenerates to a single-master structure
// (every task resolves locally in round zero).
func NewSharded(n, k int) *Sharded {
	if k < 1 {
		k = 1
	}
	s := &Sharded{
		parent: make([]int32, n),
		count:  n,
		k:      k,
		inbox:  make([][]task, k),
		outbox: make([][][]task, k),
	}
	for i := range s.parent {
		s.parent[i] = int32(i)
	}
	for src := range s.outbox {
		s.outbox[src] = make([][]task, k)
	}
	return s
}

// Len returns the number of elements.
func (s *Sharded) Len() int { return len(s.parent) }

// Count returns the current number of disjoint sets.
func (s *Sharded) Count() int { return s.count }

// Shards returns the shard count K.
func (s *Sharded) Shards() int { return s.k }

// shardOf is the root-partition function: element x belongs to shard x % K.
func (s *Sharded) shardOf(x int32) int { return int(x) % s.k }

// Find returns the representative of x's set — under union-by-min, the
// minimum element id of the set. Single-threaded: path halving may touch any
// shard's entries, so it must not race an Apply.
func (s *Sharded) Find(x int32) int32 {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

// Same reports whether x and y are in the same set. Single-threaded.
func (s *Sharded) Same(x, y int32) bool { return s.Find(x) == s.Find(y) }

// Union merges the sets of x and y and reports whether a merge happened.
// Single-threaded — the seeding path (resumed checkpoints, initial labels),
// not the reconciled merge path.
func (s *Sharded) Union(x, y int32) bool {
	rx, ry := s.Find(x), s.Find(y)
	if rx == ry {
		return false
	}
	if rx > ry {
		rx, ry = ry, rx
	}
	s.parent[ry] = rx
	s.count--
	return true
}

// Labels returns first-appearance-order dense cluster labels.
func (s *Sharded) Labels() []int32 { return s.LabelsInto(nil) }

// LabelsInto is Labels writing into dst (reused when capacity suffices).
func (s *Sharded) LabelsInto(dst []int32) []int32 {
	return labelsInto(dst, len(s.parent), s.Find)
}

// Snapshot copies the structure into a plain UF with zeroed ranks, in the
// exact shape the UFv1 checkpoint codec serializes — a checkpoint written
// from a sharded run resumes through the same PACECKPT/UFv1 path as a
// single-master one. Ranks carry no information under union-by-min; a resume
// only reads the partition.
func (s *Sharded) Snapshot() *UF {
	u := &UF{
		parent: make([]int32, len(s.parent)),
		rank:   make([]uint8, len(s.parent)),
		count:  s.count,
	}
	copy(u.parent, s.parent)
	return u
}

// AppendBinary appends the UFv1 serialization of the current structure.
func (s *Sharded) AppendBinary(dst []byte) []byte {
	return s.Snapshot().AppendBinary(dst)
}

// Apply merges every edge of the delta through the phase-reconciled shard
// machinery and returns the round/traffic breakdown. The final partition is
// the connected components of the applied edges over the prior state,
// independent of shard count, execution order, and Parallel.
func (s *Sharded) Apply(delta MergeDelta) ApplyStats {
	s.stats = ApplyStats{}
	if len(delta.Edges) == 0 {
		return s.stats
	}
	// Round 0 distribution: task (a,b) goes to a's owner.
	for _, e := range delta.Edges {
		if e.A == e.B {
			continue
		}
		s.inbox[s.shardOf(e.A)] = append(s.inbox[s.shardOf(e.A)], task{e.A, e.B})
	}
	for {
		pending := int64(0)
		for _, in := range s.inbox {
			pending += int64(len(in))
		}
		if pending == 0 {
			break
		}
		s.stats.Phases++
		s.stats.Tasks += pending
		s.stats.RoundTasks = append(s.stats.RoundTasks, pending)
		s.round()
		// Barrier: swap outboxes into inboxes in (src, dst) order so the
		// next round's task order is deterministic.
		for dst := 0; dst < s.k; dst++ {
			s.inbox[dst] = s.inbox[dst][:0]
			for src := 0; src < s.k; src++ {
				s.inbox[dst] = append(s.inbox[dst], s.outbox[src][dst]...)
				s.outbox[src][dst] = s.outbox[src][dst][:0]
			}
		}
	}
	return s.stats
}

// round drains every shard's inbox, writing forwards to the outboxes. Shards
// run concurrently when Parallel is set and the round is large enough; the
// per-shard work touches only shard-owned parent entries either way.
func (s *Sharded) round() {
	if s.Parallel && s.k > 1 && s.stats.RoundTasks[len(s.stats.RoundTasks)-1] >= parallelMin {
		links := make([]int64, s.k)
		forwards := make([]int64, s.k)
		s.wg.Add(s.k)
		for sh := 0; sh < s.k; sh++ {
			go func(sh int) {
				defer s.wg.Done()
				links[sh], forwards[sh] = s.drain(sh)
			}(sh)
		}
		s.wg.Wait()
		for sh := 0; sh < s.k; sh++ {
			s.stats.Links += links[sh]
			s.stats.CrossShard += forwards[sh]
			s.count -= int(links[sh])
		}
		return
	}
	for sh := 0; sh < s.k; sh++ {
		links, forwards := s.drain(sh)
		s.stats.Links += links
		s.stats.CrossShard += forwards
		s.count -= int(links)
	}
}

// drain processes shard sh's inbox for one round. It reads and writes only
// parent entries owned by sh; every cross-shard need becomes an outbox task.
func (s *Sharded) drain(sh int) (links, forwards int64) {
	forward := func(t task) {
		s.outbox[sh][s.shardOf(t.a)] = append(s.outbox[sh][s.shardOf(t.a)], t)
		forwards++
	}
	for _, t := range s.inbox[sh] {
		ra, ok := s.resolve(sh, t.a)
		if !ok {
			// The chain left the region: the owner of the exit node
			// continues the chase next round.
			forward(task{ra, t.b})
			continue
		}
		b := t.b
		if s.shardOf(b) == sh {
			rb, ok := s.resolve(sh, b)
			if !ok {
				forward(task{rb, ra})
				continue
			}
			if ra == rb {
				continue
			}
			if ra > rb {
				ra, rb = rb, ra
			}
			s.parent[rb] = ra // rb: owned local root; ra < rb
			links++
			continue
		}
		switch {
		case b == ra:
			// Can't happen across shards, but harmless to absorb.
		case b < ra:
			// ra is an owned root and b is smaller, so b cannot be in
			// ra's set (its root would be ra <= b): link down without
			// touching b's shard at all.
			s.parent[ra] = b
			links++
		default:
			// b > ra: the link must write b's side; hand (b, ra) to b's
			// owner, which either descends b's chain or links b's root
			// against the strictly smaller ra.
			forward(task{b, ra})
		}
	}
	return links, forwards
}

// resolve chases x's chain within shard sh's owned region. It returns
// (root, true) when x resolves to an owned root, or (exit, false) with the
// first foreign element on the chain. Visited owned nodes are compressed to
// the stopping point — owned writes only.
func (s *Sharded) resolve(sh int, x int32) (int32, bool) {
	r := x
	var stop int32
	root := false
	for {
		p := s.parent[r]
		if p == r {
			stop, root = r, true
			break
		}
		if s.shardOf(p) != sh {
			stop, root = p, false
			break
		}
		r = p
	}
	// Compression pass: every node from x to the stop is owned by sh.
	for s.parent[x] != stop && x != stop {
		s.parent[x], x = stop, s.parent[x]
	}
	return stop, root
}

// Add accumulates the other stats into s (for per-run totals).
func (a *ApplyStats) Add(o ApplyStats) {
	a.Tasks += o.Tasks
	a.CrossShard += o.CrossShard
	a.Links += o.Links
	a.Phases += o.Phases
	for i, n := range o.RoundTasks {
		if i < len(a.RoundTasks) {
			a.RoundTasks[i] += n
		} else {
			a.RoundTasks = append(a.RoundTasks, n)
		}
	}
}
