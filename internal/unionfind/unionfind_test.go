package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	u := New(5)
	if u.Count() != 5 || u.Len() != 5 {
		t.Fatalf("counts: %d %d", u.Count(), u.Len())
	}
	for i := int32(0); i < 5; i++ {
		if u.Find(i) != i {
			t.Errorf("Find(%d) = %d", i, u.Find(i))
		}
	}
}

func TestUnionBasics(t *testing.T) {
	u := New(4)
	if !u.Union(0, 1) {
		t.Error("first union must merge")
	}
	if u.Union(1, 0) {
		t.Error("repeat union must not merge")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Error("Same wrong")
	}
	if u.Count() != 3 {
		t.Errorf("count = %d, want 3", u.Count())
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Count() != 1 {
		t.Errorf("count = %d, want 1", u.Count())
	}
	if !u.Same(1, 2) {
		t.Error("transitivity broken")
	}
}

func TestClusters(t *testing.T) {
	u := New(5)
	u.Union(0, 2)
	u.Union(3, 4)
	cl := u.Clusters()
	if len(cl) != 3 {
		t.Fatalf("got %d clusters", len(cl))
	}
	total := 0
	for _, members := range cl {
		total += len(members)
		for i := 1; i < len(members); i++ {
			if members[i] <= members[i-1] {
				t.Error("members not ascending")
			}
		}
	}
	if total != 5 {
		t.Errorf("members total %d", total)
	}
}

func TestLabelsDense(t *testing.T) {
	u := New(6)
	u.Union(1, 2)
	u.Union(4, 5)
	l := u.Labels()
	if len(l) != 6 {
		t.Fatal("length")
	}
	if l[1] != l[2] || l[4] != l[5] {
		t.Error("merged elements must share labels")
	}
	if l[0] == l[1] || l[3] == l[4] || l[0] == l[3] {
		t.Error("separate elements must differ")
	}
	// Dense: max label == count-1.
	max := int32(0)
	for _, v := range l {
		if v > max {
			max = v
		}
	}
	if int(max) != u.Count()-1 {
		t.Errorf("labels not dense: max %d count %d", max, u.Count())
	}
}

// Property: union-find partition matches a brute-force connectivity oracle.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		u := New(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			adj[i][i] = true
		}
		for e := 0; e < n; e++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			u.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		// Transitive closure.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if !adj[i][k] {
					continue
				}
				for j := 0; j < n; j++ {
					if adj[k][j] {
						adj[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Same(int32(i), int32(j)) != adj[i][j] {
					t.Fatalf("trial %d: Same(%d,%d) mismatch", trial, i, j)
				}
			}
		}
	}
}

// Property: count always equals the number of distinct representatives.
func TestCountInvariant(t *testing.T) {
	f := func(pairs []uint16) bool {
		u := New(64)
		for _, p := range pairs {
			u.Union(int32(p%64), int32((p>>8)%64))
		}
		reps := map[int32]bool{}
		for i := int32(0); i < 64; i++ {
			reps[u.Find(i)] = true
		}
		return len(reps) == u.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 100000
	ops := make([][2]int32, n)
	for i := range ops {
		ops[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := New(n)
		for _, op := range ops {
			u.Union(op[0], op[1])
		}
	}
}
