package unionfind

import (
	"errors"
	"math/rand"
	"testing"
)

// buildRandom unions random pairs so the forest has nontrivial interior
// structure (ranks > 0, uncompressed paths).
func buildRandom(n int, seed int64) *UF {
	u := New(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n/2; i++ {
		u.Union(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return u
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500} {
		u := buildRandom(n, int64(n)+1)
		data, err := u.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got := New(0)
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Len() != u.Len() || got.Count() != u.Count() {
			t.Fatalf("n=%d: len/count mismatch: (%d,%d) vs (%d,%d)",
				n, got.Len(), got.Count(), u.Len(), u.Count())
		}
		for i := 0; i < n; i++ {
			if got.Find(int32(i)) != u.Find(int32(i)) {
				t.Fatalf("n=%d: element %d changed set", n, i)
			}
		}
		// The restored forest must keep merging correctly.
		if n >= 2 {
			want := u.Union(0, int32(n-1))
			if got.Union(0, int32(n-1)) != want || got.Count() != u.Count() {
				t.Fatalf("n=%d: post-restore union diverged", n)
			}
		}
	}
}

func TestSerializeAppendBinary(t *testing.T) {
	u := buildRandom(20, 3)
	prefix := []byte("hdr")
	data := u.AppendBinary(append([]byte{}, prefix...))
	if string(data[:3]) != "hdr" {
		t.Fatal("AppendBinary clobbered prefix")
	}
	got := New(0)
	if err := got.UnmarshalBinary(data[3:]); err != nil {
		t.Fatal(err)
	}
}

// Corrupted or truncated input must return an error wrapping ErrCorrupt —
// never panic — and must leave the receiver untouched.
func TestSerializeCorruptInput(t *testing.T) {
	u := buildRandom(50, 9)
	good, _ := u.MarshalBinary()

	mutate := func(name string, f func([]byte) []byte) {
		data := f(append([]byte{}, good...))
		got := buildRandom(10, 1)
		wantCount := got.Count()
		err := got.UnmarshalBinary(data)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
		if got.Len() != 10 || got.Count() != wantCount {
			t.Errorf("%s: failed decode mutated the receiver", name)
		}
	}

	mutate("empty", func(b []byte) []byte { return nil })
	mutate("short-header", func(b []byte) []byte { return b[:7] })
	mutate("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("truncated-body", func(b []byte) []byte { return b[:len(b)-5] })
	mutate("trailing-garbage", func(b []byte) []byte { return append(b, 0xFF) })
	mutate("parent-out-of-range", func(b []byte) []byte {
		b[12], b[13], b[14], b[15] = 0xFF, 0xFF, 0xFF, 0x7F
		return b
	})
	mutate("count-mismatch", func(b []byte) []byte { b[8]++; return b })
	// Huge declared n with a short body must fail the length check, not
	// attempt a giant allocation after reading garbage.
	mutate("absurd-n", func(b []byte) []byte {
		b[4], b[5], b[6], b[7] = 0xFF, 0xFF, 0xFF, 0x7F
		return b[:40]
	})
}
