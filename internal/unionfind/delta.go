package unionfind

import (
	"encoding/binary"
	"fmt"
)

// MergeDelta is a slave's local merge log for one report interval: the
// spanning edges of the pairs it accepted, pre-filtered through its local
// union-find so redundant pairs (already connected locally) never hit the
// wire. Applying a delta to any structure that has already absorbed a
// superset of the slave's earlier edges is idempotent — re-delivered edges
// resolve to already-connected roots — which is what lets recovery replay a
// dead slave's work without double-counting merges.
//
// Binary layout (version 1, little-endian):
//
//	magic "UFD1" | u32 nEdges | nEdges × (u32 a, u32 b)
//
// Edge node ids are int32 EST indices; the high bit is reserved (ids are
// non-negative), and self-edges are rejected on decode — a well-formed
// producer never emits either.
var deltaMagic = [4]byte{'U', 'F', 'D', '1'}

// MergeEdge is one accepted pair that joined two previously-disjoint local
// sets on the producing slave.
type MergeEdge struct {
	A, B int32
}

// MergeDelta is an ordered batch of merge edges.
type MergeDelta struct {
	Edges []MergeEdge
}

// AppendBinary appends the serialized delta to dst and returns it.
func (d *MergeDelta) AppendBinary(dst []byte) []byte {
	dst = append(dst, deltaMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.Edges)))
	for _, e := range d.Edges {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.A))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.B))
	}
	return dst
}

// MarshalBinary serializes the delta.
func (d *MergeDelta) MarshalBinary() ([]byte, error) {
	return d.AppendBinary(make([]byte, 0, 8+8*len(d.Edges))), nil
}

// UnmarshalBinary replaces d's edges with the serialized delta. Corrupted or
// truncated input — including trailing bytes past the declared edge count —
// returns an error wrapping ErrCorrupt with the failing offset and leaves d
// untouched; it never panics.
func (d *MergeDelta) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: %d bytes, want >= 8", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != deltaMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	if want := 8 + 8*n; len(data) != want {
		if len(data) < want {
			return fmt.Errorf("%w: truncated at offset %d for %d edges, want %d bytes", ErrCorrupt, len(data), n, want)
		}
		return fmt.Errorf("%w: %d trailing bytes at offset %d for %d edges", ErrCorrupt, len(data)-want, want, n)
	}
	// An empty delta decodes to nil, so decode(encode(d)) is DeepEqual to d
	// for the zero value too.
	var edges []MergeEdge
	if n > 0 {
		edges = make([]MergeEdge, n)
	}
	for i := range edges {
		off := 8 + 8*i
		a := int32(binary.LittleEndian.Uint32(data[off:]))
		b := int32(binary.LittleEndian.Uint32(data[off+4:]))
		if a < 0 || b < 0 {
			return fmt.Errorf("%w: negative edge id at offset %d", ErrCorrupt, off)
		}
		if a == b {
			return fmt.Errorf("%w: self-edge %d at offset %d", ErrCorrupt, a, off)
		}
		edges[i] = MergeEdge{A: a, B: b}
	}
	d.Edges = edges
	return nil
}
