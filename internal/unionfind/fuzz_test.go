package unionfind

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzUFv1 drives UnmarshalBinary with arbitrary bytes. Invariants: no
// panic, every failure wraps ErrCorrupt, and every accepted input
// round-trips byte-for-byte through MarshalBinary (the format has a single
// canonical encoding per forest).
func FuzzUFv1(f *testing.F) {
	small := New(4)
	small.Union(0, 1)
	merged := New(8)
	merged.Union(0, 1)
	merged.Union(1, 2)
	merged.Union(5, 6)
	for _, u := range []*UF{New(0), New(1), small, merged} {
		enc, _ := u.MarshalBinary()
		f.Add(enc)
	}
	enc, _ := merged.MarshalBinary()
	f.Add(enc[:len(enc)-3])                       // truncated mid-rank
	f.Add(append(append([]byte{}, enc...), 0, 1)) // trailing bytes
	f.Add([]byte("UFv2????????"))                 // wrong magic version
	f.Fuzz(func(t *testing.T, b []byte) {
		var u UF
		if err := u.UnmarshalBinary(b); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		got, _ := u.MarshalBinary()
		if !bytes.Equal(got, b) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", b, got)
		}
	})
}

// TestUFv1StrictLength pins the truncated/trailing split: both directions
// are rejected, and the error names the offending offset.
func TestUFv1StrictLength(t *testing.T) {
	u := New(3)
	u.Union(0, 2)
	enc, _ := u.MarshalBinary()

	var dst UF
	err := dst.UnmarshalBinary(append(append([]byte{}, enc...), 0xEE))
	if err == nil {
		t.Fatal("trailing byte accepted")
	}
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes ErrCorrupt, got %v", err)
	}
	// 12 + 5*3 = 27: the first trailing byte sits at offset 27.
	if !strings.Contains(err.Error(), "offset 27") {
		t.Fatalf("error does not name the offending offset: %v", err)
	}

	err = dst.UnmarshalBinary(enc[:len(enc)-2])
	if err == nil {
		t.Fatal("truncated input accepted")
	}
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncated ErrCorrupt, got %v", err)
	}
}
