package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeSequence performs a fixed durable-write sequence (temp + write +
// fsync + rename + dir sync + WriteFile + rename) against fsys, the same
// shape serve.SaveState uses. It returns the first error.
func writeSequence(fsys FS, dir string) error {
	f, err := fsys.CreateTemp(dir, "data-*.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("hello crash windows")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(f.Name(), filepath.Join(dir, "data")); err != nil {
		return err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return err
	}
	tmp := filepath.Join(dir, "meta.tmp")
	if err := fsys.WriteFile(tmp, []byte(`{"ok":true}`), 0o644); err != nil {
		return err
	}
	return fsys.Rename(tmp, filepath.Join(dir, "meta"))
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	if err := writeSequence(OS{}, dir); err != nil {
		t.Fatalf("writeSequence: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "data"))
	if err != nil || string(got) != "hello crash windows" {
		t.Fatalf("data = %q, %v", got, err)
	}
}

func TestFaultyZeroPlanIsPassthrough(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, Plan{})
	if err := writeSequence(f, dir); err != nil {
		t.Fatalf("writeSequence: %v", err)
	}
	if f.Ops() == 0 {
		t.Fatal("op counter did not advance")
	}
	if st := f.Stats(); st.Injected != 0 || st.Crashed {
		t.Fatalf("zero plan injected faults: %+v", st)
	}
}

// TestCrashEveryOp verifies the sticky-crash contract: for each op index
// k in the sequence, the run fails with ErrCrashed at or after op k, and
// no operation past the crash succeeds.
func TestCrashEveryOp(t *testing.T) {
	n := func() int {
		f := NewFaulty(OS{}, Plan{})
		if err := writeSequence(f, t.TempDir()); err != nil {
			t.Fatalf("counting pass failed: %v", err)
		}
		return f.Ops()
	}()
	if n < 6 {
		t.Fatalf("sequence too short to sweep: %d ops", n)
	}
	for k := 1; k <= n; k++ {
		f := NewFaulty(OS{}, Plan{CrashOp: k})
		err := writeSequence(f, t.TempDir())
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash at op %d: err = %v, want ErrCrashed", k, err)
		}
		if got := f.Stats(); !got.Crashed {
			t.Fatalf("crash at op %d: stats = %+v", k, got)
		}
		if f.Ops() < k {
			t.Fatalf("crash at op %d: only %d ops attempted", k, f.Ops())
		}
	}
}

// TestCrashWriteIsTorn checks that a crash landing on WriteFile leaves a
// half-written file behind rather than nothing.
func TestCrashWriteIsTorn(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, Plan{CrashOp: 1})
	data := []byte("0123456789")
	err := f.WriteFile(filepath.Join(dir, "torn"), data, 0o644)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "torn"))
	if err != nil {
		t.Fatalf("torn file missing: %v", err)
	}
	if len(got) != len(data)/2 {
		t.Fatalf("torn file has %d bytes, want %d", len(got), len(data)/2)
	}
}

func TestDeterministicInjection(t *testing.T) {
	plan := Plan{Seed: 42, PWriteErr: 0.3, PSyncErr: 0.3, PRenameErr: 0.3}
	// Record, per sequence, whether a fault fired and at which op index;
	// paths differ between runs so error strings are not comparable.
	run := func() (trace []int) {
		f := NewFaulty(OS{}, plan)
		for i := 0; i < 20; i++ {
			if err := writeSequence(f, t.TempDir()); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("unexpected error class: %v", err)
				}
				trace = append(trace, f.Ops())
			} else {
				trace = append(trace, 0)
			}
		}
		return trace
	}
	a, b := run(), run()
	inject := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at iteration %d: op %d vs op %d", i, a[i], b[i])
		}
		if a[i] != 0 {
			inject++
		}
	}
	if inject == 0 {
		t.Fatal("plan with p=0.3 injected nothing in 20 sequences")
	}
}

func TestInjectedWrapsENOSPC(t *testing.T) {
	f := NewFaulty(OS{}, Plan{PWriteErr: 1})
	err := f.WriteFile(filepath.Join(t.TempDir(), "x"), []byte("x"), 0o644)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ErrInjected wrapping ENOSPC", err)
	}
}

func TestMaxFaultsCap(t *testing.T) {
	f := NewFaulty(OS{}, Plan{PWriteErr: 1, MaxFaults: 2})
	dir := t.TempDir()
	fails := 0
	for i := 0; i < 10; i++ {
		if err := f.WriteFile(filepath.Join(dir, "x"), []byte("x"), 0o644); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("injected %d faults, want 2 (capped)", fails)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7, crash=3, pwrite=0.1, ptorn=0.2, psync=0.3, prename=0.4, max=5")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	want := Plan{Seed: 7, CrashOp: 3, PWriteErr: 0.1, PTorn: 0.2, PSyncErr: 0.3, PRenameErr: 0.4, MaxFaults: 5}
	if p != want {
		t.Fatalf("plan = %+v, want %+v", p, want)
	}
	if p, err := ParsePlan(""); err != nil || p.enabled() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	for _, bad := range []string{"x", "seed", "seed=x", "crash=-1", "pwrite=2", "zzz=1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted", bad)
		}
	}
}
