// Package vfs is the filesystem seam under every durable write the serving
// stack performs: the session EST store, session metadata, and the PACECKPT
// checkpoint all go through an FS value instead of calling package os
// directly (the pacelint vfsonly analyzer enforces this for the state
// machinery). Production code uses OS, a thin passthrough; tests and chaos
// runs substitute a Faulty FS whose seeded, op-count-indexed fault plan
// injects the failures real disks produce — ENOSPC, failed fsyncs, torn
// short writes, rename failures — and whose CrashOp mode aborts a write
// sequence at an exact operation index, turning "every crash window is
// recoverable" from an argument into a swept assertion.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable-file subset the durable write paths need: write,
// fsync, close. Name reports the path the file was created under so callers
// can rename it into place.
type File interface {
	io.Writer
	// Name returns the file's path.
	Name() string
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
}

// FS is the mutating-filesystem interface the durable write paths run on.
// Read-side calls (Open, ReadFile, Stat) stay on package os: faults on the
// write path are what tear state; reads either succeed or fail loudly.
type FS interface {
	// CreateTemp creates a new temporary file in dir (pattern as in
	// os.CreateTemp), open for writing.
	CreateTemp(dir, pattern string) (File, error)
	// WriteFile writes data to name in one logical operation, creating or
	// truncating it (no fsync — pair with a rename or use for droppable
	// files only).
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir best-effort fsyncs a directory, making renames inside it
	// durable. Implementations may ignore failures from filesystems that
	// reject directory fsync, but must still count the operation.
	SyncDir(dir string) error
}

// OS is the production FS: a direct passthrough to package os.
type OS struct{}

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

// WriteFile implements FS.
func (OS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir implements FS. Failure is ignored past the open: some filesystems
// reject directory fsync, and the renames inside are already atomic with
// respect to crashes.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	_ = d.Sync()
	return d.Close()
}
