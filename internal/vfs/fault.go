package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// ErrCrashed is the sticky error a Faulty FS returns once its CrashOp
// index is reached: the process is modeled as dead, so every later
// operation fails too. Crash-window sweeps key on it to distinguish "the
// injected crash" from an unexpected failure.
var ErrCrashed = errors.New("vfs: simulated crash")

// ErrInjected wraps every probabilistic fault a Faulty FS injects, so
// callers (and tests) can tell planned chaos from real disk trouble.
var ErrInjected = errors.New("vfs: injected fault")

// Plan is a deterministic filesystem fault plan. Faults are decided by a
// PRNG seeded with Seed and indexed by the FS-wide operation count, so the
// same plan over the same write sequence injects the same faults — the
// filesystem analogue of mp.FaultPlan.
//
// CrashOp is the crash-window control: when > 0, operation number CrashOp
// (1-indexed across all mutating ops) and every operation after it fail
// with ErrCrashed. If the crash lands on a Write, a prefix of the data is
// written first so the sweep exercises torn-file windows, not just
// missing-file ones.
type Plan struct {
	Seed int64 // PRNG seed for the probabilistic faults

	CrashOp int // 1-indexed op at which the "process" dies; 0 = disabled

	PWriteErr  float64 // P(write fails with ENOSPC, nothing written)
	PTorn      float64 // P(write is torn: prefix lands, then ENOSPC)
	PSyncErr   float64 // P(fsync fails with EIO)
	PRenameErr float64 // P(rename fails with EIO)

	MaxFaults int // cap on probabilistic faults injected; 0 = unlimited
}

// ParsePlan parses a -chaos-fs spec of comma-separated key=value pairs:
//
//	seed=N, crash=OP, pwrite=P, ptorn=P, psync=P, prename=P, max=N
//
// Probabilities are in [0,1]. An empty spec returns a zero plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return p, fmt.Errorf("vfs: bad plan term %q (want key=value)", part)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return p, fmt.Errorf("vfs: bad seed %q: %w", val, err)
			}
			p.Seed = n
		case "crash":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return p, fmt.Errorf("vfs: bad crash op %q", val)
			}
			p.CrashOp = n
		case "max":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return p, fmt.Errorf("vfs: bad max %q", val)
			}
			p.MaxFaults = n
		case "pwrite", "ptorn", "psync", "prename":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("vfs: bad probability %q=%q (want [0,1])", key, val)
			}
			switch key {
			case "pwrite":
				p.PWriteErr = f
			case "ptorn":
				p.PTorn = f
			case "psync":
				p.PSyncErr = f
			case "prename":
				p.PRenameErr = f
			}
		default:
			return p, fmt.Errorf("vfs: unknown plan key %q", key)
		}
	}
	return p, nil
}

// enabled reports whether the plan can inject anything at all.
func (p Plan) enabled() bool {
	return p.CrashOp > 0 || p.PWriteErr > 0 || p.PTorn > 0 || p.PSyncErr > 0 || p.PRenameErr > 0
}

// Stats counts what a Faulty FS actually did, for logs and assertions.
type Stats struct {
	Ops      int  // mutating operations attempted
	Injected int  // probabilistic faults injected
	Crashed  bool // the CrashOp threshold was reached
}

// Faulty wraps an FS with a Plan. All mutating operations share one
// op counter; the zero-value plan makes Faulty a pure passthrough.
type Faulty struct {
	under FS
	plan  Plan

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// NewFaulty wraps under with plan. The wrapped FS is safe for concurrent
// use if under is.
func NewFaulty(under FS, plan Plan) *Faulty {
	return &Faulty{under: under, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Stats returns a snapshot of the fault counters.
func (f *Faulty) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Ops returns the number of mutating operations attempted so far. A
// counting pass (zero plan) over a write sequence yields the op-index
// space a crash sweep iterates over.
func (f *Faulty) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats.Ops
}

// step advances the op counter and decides this operation's fate:
// crashed=true means the sticky crash has tripped; inject=true means the
// probabilistic fault drawn with probability p fires.
func (f *Faulty) step(p float64) (crashed, inject bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Ops++
	if f.plan.CrashOp > 0 && f.stats.Ops >= f.plan.CrashOp {
		f.stats.Crashed = true
		return true, false
	}
	if p > 0 && (f.plan.MaxFaults == 0 || f.stats.Injected < f.plan.MaxFaults) && f.rng.Float64() < p {
		f.stats.Injected++
		return false, true
	}
	return false, false
}

// tornFrac returns the fraction of a torn write that lands, in [0,1).
func (f *Faulty) tornFrac() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

func injected(op string, errno error) error {
	return fmt.Errorf("%w: %s: %w", ErrInjected, op, errno)
}

// CreateTemp implements FS. A crash here fails the creation outright.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if crashed, _ := f.step(0); crashed {
		return nil, fmt.Errorf("%w: create %s", ErrCrashed, pattern)
	}
	file, err := f.under.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: file, fs: f}, nil
}

// WriteFile implements FS. A crash or torn fault writes a prefix of data
// first, so the on-disk state is the torn file a real crash mid-write
// leaves behind.
func (f *Faulty) WriteFile(name string, data []byte, perm fs.FileMode) error {
	crashed, inject := f.step(f.plan.PWriteErr + f.plan.PTorn)
	if crashed {
		_ = f.under.WriteFile(name, data[:len(data)/2], perm)
		return fmt.Errorf("%w: write %s", ErrCrashed, name)
	}
	if inject {
		// Split the combined draw between torn and clean-fail.
		if f.plan.PTorn > 0 && f.tornFrac() < f.plan.PTorn/(f.plan.PWriteErr+f.plan.PTorn) {
			n := int(float64(len(data)) * f.tornFrac())
			_ = f.under.WriteFile(name, data[:n], perm)
			return injected("torn write "+name, syscall.ENOSPC)
		}
		return injected("write "+name, syscall.ENOSPC)
	}
	return f.under.WriteFile(name, data, perm)
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	crashed, inject := f.step(f.plan.PRenameErr)
	if crashed {
		return fmt.Errorf("%w: rename %s", ErrCrashed, newpath)
	}
	if inject {
		return injected("rename "+newpath, syscall.EIO)
	}
	return f.under.Rename(oldpath, newpath)
}

// Remove implements FS. Remove is cleanup, not durability: it counts an op
// (so crash indices cover it) but never draws a probabilistic fault.
func (f *Faulty) Remove(name string) error {
	if crashed, _ := f.step(0); crashed {
		return fmt.Errorf("%w: remove %s", ErrCrashed, name)
	}
	return f.under.Remove(name)
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if crashed, _ := f.step(0); crashed {
		return fmt.Errorf("%w: mkdir %s", ErrCrashed, path)
	}
	return f.under.MkdirAll(path, perm)
}

// SyncDir implements FS.
func (f *Faulty) SyncDir(dir string) error {
	crashed, inject := f.step(f.plan.PSyncErr)
	if crashed {
		return fmt.Errorf("%w: syncdir %s", ErrCrashed, dir)
	}
	if inject {
		return injected("syncdir "+dir, syscall.EIO)
	}
	return f.under.SyncDir(dir)
}

// faultyFile threads the plan through a temp file's Write and Sync.
type faultyFile struct {
	File
	fs *Faulty
}

func (t *faultyFile) Write(p []byte) (int, error) {
	crashed, inject := t.fs.step(t.fs.plan.PWriteErr + t.fs.plan.PTorn)
	if crashed {
		n, _ := t.File.Write(p[:len(p)/2])
		return n, fmt.Errorf("%w: write %s", ErrCrashed, t.Name())
	}
	if inject {
		// Split the combined draw between clean-fail and torn.
		if t.fs.plan.PTorn > 0 && t.fs.tornFrac() < t.fs.plan.PTorn/(t.fs.plan.PWriteErr+t.fs.plan.PTorn) {
			n, _ := t.File.Write(p[:len(p)/2])
			return n, injected("torn write "+t.Name(), syscall.ENOSPC)
		}
		return 0, injected("write "+t.Name(), syscall.ENOSPC)
	}
	return t.File.Write(p)
}

func (t *faultyFile) Sync() error {
	crashed, inject := t.fs.step(t.fs.plan.PSyncErr)
	if crashed {
		return fmt.Errorf("%w: fsync %s", ErrCrashed, t.Name())
	}
	if inject {
		return injected("fsync "+t.Name(), syscall.EIO)
	}
	return t.File.Sync()
}
