// Package experiments regenerates every table and figure of the paper's
// evaluation section (§4) on synthetic benchmarks, at configurable scale.
// Each experiment returns typed rows; cmd/experiments renders them as text
// tables and the module's top-level benchmarks wrap them as testing.B
// targets.
//
// Host-scale note: the paper ran 10,051–81,414 Arabidopsis ESTs on an IBM SP
// with up to 128 processors; this harness runs scaled-down EST counts on a
// simulated message-passing machine (see internal/mp), so the comparisons
// are of *shape* — who wins, by what factor, where the curves bend — not of
// absolute seconds.
package experiments

import (
	"fmt"
	"time"

	"pace/internal/baseline"
	"pace/internal/cluster"
	"pace/internal/metrics"
	"pace/internal/mp"
	"pace/internal/seq"
	"pace/internal/simulate"
	"pace/internal/trim"
)

// Scale groups the data-set sizes used across experiments. The ratios track
// the paper's 10,051 : 30,000 : 60,018 : 81,414.
type Scale struct {
	Name string
	// QualitySizes are the four Table 1/2 data-set sizes.
	QualitySizes []int
	// Fig6Sizes are the Figure 6a curve sizes (paper: 10k/20k/40k/81,414).
	Fig6Sizes []int
	// ComponentN is the Table 3 / Figure 8 size (paper: 20,000).
	ComponentN int
	// Procs are the simulated machine sizes (paper: 8..128).
	Procs []int
	// BatchSizes sweeps Figure 8 (paper: up to 80, optimum 40–60).
	BatchSizes []int
	// BaselineBudgetPairs models Table 1's 512 MB memory ceiling for the
	// batch baseline, in materialized pairs.
	BaselineBudgetPairs int64
}

// Tiny is for unit tests and smoke runs (seconds).
var Tiny = Scale{
	Name:                "tiny",
	QualitySizes:        []int{120, 240, 480, 640},
	Fig6Sizes:           []int{120, 240, 480, 640},
	ComponentN:          240,
	Procs:               []int{2, 4, 8},
	BatchSizes:          []int{1, 4, 16, 60, 240},
	BaselineBudgetPairs: 200_000,
}

// Small is the default cmd/experiments scale (a few minutes total).
var Small = Scale{
	Name:                "small",
	QualitySizes:        []int{500, 1500, 3000, 4070},
	Fig6Sizes:           []int{500, 1000, 2000, 4070},
	ComponentN:          1000,
	Procs:               []int{8, 16, 32, 64, 128},
	BatchSizes:          []int{1, 2, 5, 10, 20, 40, 60, 120, 240},
	BaselineBudgetPairs: 600_000,
}

// Medium approaches the paper's ratios more closely (tens of minutes).
var Medium = Scale{
	Name:                "medium",
	QualitySizes:        []int{1005, 3000, 6001, 8141},
	Fig6Sizes:           []int{1000, 2000, 4000, 8141},
	ComponentN:          2000,
	Procs:               []int{8, 16, 32, 64, 128},
	BatchSizes:          []int{1, 2, 5, 10, 20, 40, 60, 120, 240},
	BaselineBudgetPairs: 2_500_000,
}

// ScaleByName resolves a scale flag value.
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "tiny":
		return Tiny, true
	case "small":
		return Small, true
	case "medium":
		return Medium, true
	}
	return Scale{}, false
}

// Dataset generates the standard benchmark for size n: ~20x depth, paper-like
// read lengths, 2% error, unknown strands.
func Dataset(n int, seed int64) (*simulate.Benchmark, error) {
	cfg := simulate.DefaultConfig(n)
	cfg.Seed = seed
	return simulate.Generate(cfg)
}

// engineConfig is the standard PaCE configuration for the harness.
func engineConfig(p int) cluster.Config {
	cfg := cluster.DefaultConfig(p)
	if p > 1 {
		cfg.MP = mp.DefaultSimConfig(p)
	}
	return cfg
}

// baselineOptions mirrors engineConfig for the comparators.
func baselineOptions(budget int64) baseline.Options {
	return baseline.Options{
		Window:            8,
		Psi:               20,
		Band:              12,
		MemoryBudgetPairs: budget,
	}
}

// ---------------------------------------------------------------- Table 1

// Table1Row compares the batch baseline (CAP3/Phrap/TIGR stand-in) with
// PaCE at one data-set size. Baseline 'X' entries (insufficient memory)
// surface as OutOfMemory.
type Table1Row struct {
	N             int
	BaselineTime  time.Duration
	BaselinePairs int64 // materialized pairs (peak)
	BaselineBytes int64 // = 20 * pairs, the Table 1 memory axis
	OutOfMemory   bool
	PaceTime      time.Duration
	PacePeakPairs int64 // PaCE's bounded in-flight pair window
}

// Table1 runs the run-time/memory comparison at each size.
func Table1(sc Scale, seed int64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, n := range sc.QualitySizes {
		b, err := Dataset(n, seed)
		if err != nil {
			return nil, err
		}
		row := Table1Row{N: n}

		base, err := baseline.AllPairs(b.ESTs, baselineOptions(sc.BaselineBudgetPairs))
		if err != nil {
			return nil, err
		}
		row.BaselineTime = base.Elapsed
		row.BaselinePairs = base.PairsMaterialized
		row.BaselineBytes = base.PairBytes
		row.OutOfMemory = base.OutOfMemory

		cfg := engineConfig(1)
		start := time.Now()
		res, err := cluster.Run(b.ESTs, cfg)
		if err != nil {
			return nil, err
		}
		row.PaceTime = time.Since(start)
		row.PacePeakPairs = int64(cfg.WorkBufCap + 4*cfg.BatchSize)
		_ = res
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------- Table 2

// Table2Row holds quality metrics for our engine and the baseline at one
// size. BaselineRan is false where the baseline exceeded its memory budget
// (the paper's CAP3 'X' at 81,414).
type Table2Row struct {
	N           int
	Ours        metrics.Quality
	Baseline    metrics.Quality
	BaselineRan bool
}

// Table2 runs the quality assessment at each size.
func Table2(sc Scale, seed int64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, n := range sc.QualitySizes {
		b, err := Dataset(n, seed)
		if err != nil {
			return nil, err
		}
		row := Table2Row{N: n}

		res, err := cluster.Run(b.ESTs, engineConfig(1))
		if err != nil {
			return nil, err
		}
		row.Ours, err = metrics.Compare(res.Labels, b.Truth)
		if err != nil {
			return nil, err
		}

		base, err := baseline.AllPairs(b.ESTs, baselineOptions(sc.BaselineBudgetPairs))
		if err != nil {
			return nil, err
		}
		if !base.OutOfMemory {
			row.BaselineRan = true
			row.Baseline, err = metrics.Compare(base.Labels, b.Truth)
			if err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------- Table 3

// Table3Row is the per-component virtual-time breakdown at one machine size.
type Table3Row struct {
	P      int
	Phases cluster.PhaseTimes
}

// Table3 sweeps processor counts on the simulated machine at fixed n.
func Table3(sc Scale, seed int64) ([]Table3Row, error) {
	b, err := Dataset(sc.ComponentN, seed)
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, p := range sc.Procs {
		res, err := cluster.Run(b.ESTs, engineConfig(p))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{P: p, Phases: res.Stats.Phases})
	}
	return rows, nil
}

// ---------------------------------------------------------------- Figure 6

// Fig6Point is one (n, p) → virtual run-time sample.
type Fig6Point struct {
	N, P int
	Time time.Duration
}

// Fig6a measures run-time vs processors for each curve size.
func Fig6a(sc Scale, seed int64) ([]Fig6Point, error) {
	var pts []Fig6Point
	for _, n := range sc.Fig6Sizes {
		b, err := Dataset(n, seed)
		if err != nil {
			return nil, err
		}
		for _, p := range sc.Procs {
			res, err := cluster.Run(b.ESTs, engineConfig(p))
			if err != nil {
				return nil, err
			}
			pts = append(pts, Fig6Point{N: n, P: p, Time: res.Stats.Phases.Total})
		}
	}
	return pts, nil
}

// Fig6b measures run-time vs data size at the paper's p=64 point (the
// largest machine size in the scale's sweep, 64 when present).
func Fig6b(sc Scale, seed int64) ([]Fig6Point, error) {
	p := sc.Procs[len(sc.Procs)-1]
	for _, q := range sc.Procs {
		if q == 64 {
			p = 64
		}
	}
	var pts []Fig6Point
	for _, n := range sc.Fig6Sizes {
		b, err := Dataset(n, seed)
		if err != nil {
			return nil, err
		}
		res, err := cluster.Run(b.ESTs, engineConfig(p))
		if err != nil {
			return nil, err
		}
		pts = append(pts, Fig6Point{N: n, P: p, Time: res.Stats.Phases.Total})
	}
	return pts, nil
}

// ---------------------------------------------------------------- Figure 7

// Fig7Row counts pairs generated / processed / accepted at one size.
type Fig7Row struct {
	N         int
	Generated int64
	Processed int64
	Accepted  int64
}

// Fig7 runs the sequential engine at each size and reports its counters.
func Fig7(sc Scale, seed int64) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, n := range sc.QualitySizes {
		b, err := Dataset(n, seed)
		if err != nil {
			return nil, err
		}
		res, err := cluster.Run(b.ESTs, engineConfig(1))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{
			N:         n,
			Generated: res.Stats.PairsGenerated,
			Processed: res.Stats.PairsProcessed,
			Accepted:  res.Stats.PairsAccepted,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------- Figure 8

// Fig8Row is run-time at one batchsize (fixed n and p).
type Fig8Row struct {
	Batch int
	Time  time.Duration
}

// Fig8 sweeps batchsize at fixed n on a fixed simulated machine (paper:
// 20,000 ESTs, p=32).
func Fig8(sc Scale, seed int64) ([]Fig8Row, error) {
	b, err := Dataset(sc.ComponentN, seed)
	if err != nil {
		return nil, err
	}
	p := 32
	found := false
	for _, q := range sc.Procs {
		if q == 32 {
			found = true
		}
	}
	if !found {
		p = sc.Procs[len(sc.Procs)/2]
	}
	var rows []Fig8Row
	for _, batch := range sc.BatchSizes {
		cfg := engineConfig(p)
		cfg.BatchSize = batch
		if cfg.WorkBufCap < batch {
			cfg.WorkBufCap = 4 * batch
		}
		res, err := cluster.Run(b.ESTs, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{Batch: batch, Time: res.Stats.Phases.Total})
	}
	return rows, nil
}

// ---------------------------------------------------------------- Ablations

// AblationRow compares design variants on one data set.
type AblationRow struct {
	Variant        string
	Time           time.Duration
	PairsProcessed int64
	Quality        metrics.Quality
}

// Ablations quantifies the design choices DESIGN.md calls out: pair order,
// cluster-aware skipping, and anchored banded versus full alignment.
func Ablations(n int, seed int64) ([]AblationRow, error) {
	b, err := Dataset(n, seed)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	add := func(name string, t time.Duration, processed int64, labels []int32) error {
		q, err := metrics.Compare(labels, b.Truth)
		if err != nil {
			return err
		}
		rows = append(rows, AblationRow{Variant: name, Time: t, PairsProcessed: processed, Quality: q})
		return nil
	}

	cfg := engineConfig(1)
	start := time.Now()
	res, err := cluster.Run(b.ESTs, cfg)
	if err != nil {
		return nil, err
	}
	if err := add("pace (greedy order, skip, banded)", time.Since(start), res.Stats.PairsProcessed, res.Labels); err != nil {
		return nil, err
	}

	noskip := cfg
	noskip.SkipSameCluster = false
	start = time.Now()
	res, err = cluster.Run(b.ESTs, noskip)
	if err != nil {
		return nil, err
	}
	if err := add("no cluster-aware skipping", time.Since(start), res.Stats.PairsProcessed, res.Labels); err != nil {
		return nil, err
	}

	arb, err := baseline.ArbitraryOrder(b.ESTs, baseline.Options{Window: 8, Psi: 20, Band: 12, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := add("arbitrary pair order", arb.Elapsed, arb.PairsProcessed, arb.Labels); err != nil {
		return nil, err
	}

	full, err := baseline.AllPairs(b.ESTs, baseline.Options{Window: 8, Psi: 20, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := add("full-DP alignment, batch pairs", full.Elapsed, full.PairsProcessed, full.Labels); err != nil {
		return nil, err
	}
	return rows, nil
}

// ------------------------------------------------------------- Trim study

// TrimRow contrasts clustering raw tailed reads against trimmed reads.
type TrimRow struct {
	Variant        string
	PairsGenerated int64
	PairsProcessed int64
	Time           time.Duration
	Quality        metrics.Quality
}

// TrimStudy quantifies why EST pipelines trim poly(A) tails before
// suffix-tree clustering: tails give every tailed read pair a long common
// A-run, flooding the pair generator with spurious work.
func TrimStudy(n int, seed int64) ([]TrimRow, error) {
	cfg := simulate.DefaultConfig(n)
	cfg.Seed = seed
	cfg.PolyATail = [2]int{15, 40}
	b, err := simulate.Generate(cfg)
	if err != nil {
		return nil, err
	}

	run := func(name string, ests []seq.Sequence) (TrimRow, error) {
		start := time.Now()
		res, err := cluster.Run(ests, engineConfig(1))
		if err != nil {
			return TrimRow{}, err
		}
		q, err := metrics.Compare(res.Labels, b.Truth)
		if err != nil {
			return TrimRow{}, err
		}
		return TrimRow{
			Variant:        name,
			PairsGenerated: res.Stats.PairsGenerated,
			PairsProcessed: res.Stats.PairsProcessed,
			Time:           time.Since(start),
			Quality:        q,
		}, nil
	}

	raw, err := run("raw (poly(A) tails)", b.ESTs)
	if err != nil {
		return nil, err
	}
	trimmed, _ := trim.Batch(b.ESTs, trim.DefaultOptions())
	clean, err := run("trimmed", trimmed)
	if err != nil {
		return nil, err
	}
	return []TrimRow{raw, clean}, nil
}

// ------------------------------------------------- Incremental ingest study

// IncrementalRow is one variant of the batch-ingest comparison: the initial
// collection, a from-scratch re-cluster of the union, and the incremental
// ingest of the same batch into a warm session.
type IncrementalRow struct {
	Variant         string
	N               int
	PairsGenerated  int64
	PairsProcessed  int64
	Time            time.Duration
	BucketsRebuilt  int64
	BucketsReused   int64
	StaleSuppressed int64
	Quality         metrics.Quality
}

// IncrementalStudy measures the paper's closing open problem — the cost of
// adjusting clusters when a new batch of ESTs is sequenced — on a 90/10
// split: cluster 90% of the data set as the established collection, then
// ingest the remaining 10% both from scratch and incrementally. The two
// union variants must produce the same partition; the interesting axes are
// pair work and wall time.
func IncrementalStudy(n int, seed int64) ([]IncrementalRow, error) {
	b, err := Dataset(n, seed)
	if err != nil {
		return nil, err
	}
	cut := n * 9 / 10
	cfg := engineConfig(1)

	set, err := seq.NewSetS(b.ESTs[:cut])
	if err != nil {
		return nil, err
	}
	cache := cluster.NewBucketCache()
	c1 := cfg
	c1.Cache = cache
	start := time.Now()
	r1, err := cluster.RunSet(set, c1)
	if err != nil {
		return nil, err
	}
	initial := IncrementalRow{
		Variant:        "initial (90%)",
		N:              cut,
		PairsGenerated: r1.Stats.PairsGenerated,
		PairsProcessed: r1.Stats.PairsProcessed,
		Time:           time.Since(start),
	}

	start = time.Now()
	full, err := cluster.Run(b.ESTs, cfg)
	if err != nil {
		return nil, err
	}
	scratch := IncrementalRow{
		Variant:        "union from scratch",
		N:              n,
		PairsGenerated: full.Stats.PairsGenerated,
		PairsProcessed: full.Stats.PairsProcessed,
		Time:           time.Since(start),
	}
	if scratch.Quality, err = metrics.Compare(full.Labels, b.Truth); err != nil {
		return nil, err
	}

	gen, err := set.Append(b.ESTs[cut:])
	if err != nil {
		return nil, err
	}
	c2 := cfg
	c2.Cache = cache
	c2.FreshGen = gen
	c2.InitialLabels = r1.Labels
	start = time.Now()
	r2, err := cluster.RunSet(set, c2)
	if err != nil {
		return nil, err
	}
	incr := IncrementalRow{
		Variant:         "union incremental (+10%)",
		N:               n,
		PairsGenerated:  r2.Stats.PairsGenerated,
		PairsProcessed:  r2.Stats.PairsProcessed,
		Time:            time.Since(start),
		BucketsRebuilt:  r2.Stats.Incremental.BucketsRebuilt,
		BucketsReused:   r2.Stats.Incremental.BucketsReused,
		StaleSuppressed: r2.Stats.Incremental.StaleSuppressed,
	}
	if incr.Quality, err = metrics.Compare(r2.Labels, b.Truth); err != nil {
		return nil, err
	}
	return []IncrementalRow{initial, scratch, incr}, nil
}

// ------------------------------------------------------- Sharded union-find

// ShardedUFRow compares the legacy per-pair merge protocol against the
// merge-delta protocol with a sharded master union-find at one simulated
// machine size. Durations are virtual (deterministic sim), so the comparison
// is of the communication model only: delta reports are smaller than
// per-pair result reports, which lowers the master's receive wait as p grows.
type ShardedUFRow struct {
	P int

	// Legacy protocol (MergeShards = 0).
	LegacyIdle  time.Duration
	LegacyTotal time.Duration

	// Sharded protocol.
	ShardIdle  time.Duration
	ShardRecv  time.Duration
	ShardRecon time.Duration
	ShardTotal time.Duration

	// Master inflow (rank 0 BytesRecv): the protocols exchange the same
	// number of messages, so the byte delta is the per-pair results the
	// delta protocol never ships.
	LegacyMasterBytes int64
	ShardMasterBytes  int64

	// Reconciliation volume on the sharded leg.
	DeltaEdges int64
	Phases     int64
}

// ShardedUFProcs is the machine-size sweep for ShardedUFStudy — deliberately
// reaching past the paper's 128 processors to where the single master's
// report traffic dominates.
var ShardedUFProcs = []int{16, 64, 256, 1024}

// ShardedUFStudy runs the master-idle comparison at each machine size in
// ShardedUFProcs with shards union-find shards on the master. Runs are
// deterministic (the measured-compute bridge is off), so two invocations
// with the same inputs produce identical rows.
func ShardedUFStudy(sc Scale, seed int64, shards int) ([]ShardedUFRow, error) {
	b, err := Dataset(sc.ComponentN, seed)
	if err != nil {
		return nil, err
	}
	config := func(p, k int) cluster.Config {
		cfg := cluster.DefaultConfig(p)
		// A narrower bucketing window keeps the prologue's per-rank
		// bucket-count exchange small across a 1024-rank sweep.
		cfg.Window, cfg.Psi = 6, 18
		cfg.MergeShards = k
		cfg.MP = mp.DefaultSimConfig(p)
		cfg.MP.MeasureCompute = false
		// Model a bandwidth-bound interconnect (1 µs/byte vs the default
		// 10 ns/byte): the protocols exchange the same number of
		// messages, so the study's signal is communication volume —
		// per-pair result reports vs spanning-edge deltas — and at the
		// default bandwidth the 50 µs per-message latency hides the byte
		// difference entirely. Under incast at large p the master's
		// inflow is bandwidth-limited, which is the regime the paper's
		// master-bottleneck concern describes.
		cfg.MP.ByteTime = time.Microsecond
		return cfg
	}
	masterBytes := func(st cluster.Stats) int64 {
		for _, r := range st.PerRank {
			if r.Role == "master" {
				return r.BytesRecv
			}
		}
		return 0
	}
	var rows []ShardedUFRow
	for _, p := range ShardedUFProcs {
		legacy, err := cluster.Run(b.ESTs, config(p, 0))
		if err != nil {
			return nil, err
		}
		sharded, err := cluster.Run(b.ESTs, config(p, shards))
		if err != nil {
			return nil, err
		}
		for i := range legacy.Labels {
			if legacy.Labels[i] != sharded.Labels[i] {
				return nil, fmt.Errorf("shardeduf: partition differs between protocols at p=%d, EST %d", p, i)
			}
		}
		rows = append(rows, ShardedUFRow{
			P:                 p,
			LegacyIdle:        legacy.Stats.MasterIdle,
			LegacyTotal:       legacy.Stats.Phases.Total,
			ShardIdle:         sharded.Stats.MasterIdle,
			ShardRecv:         sharded.Stats.MasterRecvWait,
			ShardRecon:        sharded.Stats.MasterReconcileWait,
			ShardTotal:        sharded.Stats.Phases.Total,
			LegacyMasterBytes: masterBytes(legacy.Stats),
			ShardMasterBytes:  masterBytes(sharded.Stats),
			DeltaEdges:        sharded.Stats.Reconcile.DeltaEdges,
			Phases:            sharded.Stats.Reconcile.Phases,
		})
	}
	return rows, nil
}
