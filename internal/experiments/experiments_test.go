package experiments

import (
	"testing"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium"} {
		sc, ok := ScaleByName(name)
		if !ok || sc.Name != name {
			t.Errorf("scale %q not resolvable", name)
		}
	}
	if _, ok := ScaleByName("galactic"); ok {
		t.Error("unknown scale resolved")
	}
}

func TestDataset(t *testing.T) {
	b, err := Dataset(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ESTs) != 100 {
		t.Fatalf("dataset size %d", len(b.ESTs))
	}
}

// Table 1's claim: the batch baseline materializes a pair list that grows
// much faster than linearly with n, while PaCE's in-flight window stays
// constant.
func TestTable1Shape(t *testing.T) {
	sc := Tiny
	sc.QualitySizes = []int{120, 480}
	rows, err := Table1(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	growth := float64(rows[1].BaselinePairs) / float64(rows[0].BaselinePairs)
	if growth < 3.5 {
		t.Errorf("baseline pair list grew only %.1fx for 4x data", growth)
	}
	if rows[0].PacePeakPairs != rows[1].PacePeakPairs {
		t.Errorf("PaCE pair window should not grow with n: %d vs %d",
			rows[0].PacePeakPairs, rows[1].PacePeakPairs)
	}
	if rows[1].BaselinePairs*20 != rows[1].BaselineBytes {
		t.Error("byte accounting")
	}
}

func TestTable1MemoryCeiling(t *testing.T) {
	sc := Tiny
	sc.QualitySizes = []int{480}
	sc.BaselineBudgetPairs = 1000
	rows, err := Table1(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].OutOfMemory {
		t.Error("tiny budget must reproduce the 'X' entry")
	}
}

// Table 2's claim: our quality is within a few points of the batch
// baseline's, and under-prediction exceeds over-prediction for both.
func TestTable2Shape(t *testing.T) {
	sc := Tiny
	sc.QualitySizes = []int{240}
	rows, err := Table2(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if !r.BaselineRan {
		t.Fatal("baseline should fit at tiny scale")
	}
	if r.Ours.OQ < r.Baseline.OQ-0.05 {
		t.Errorf("ours %v far below baseline %v", r.Ours, r.Baseline)
	}
	if r.Ours.OQ < 0.5 {
		t.Errorf("implausibly low quality: %v", r.Ours)
	}
}

// Table 3 / Fig 6a's claim: each component's virtual time decreases as
// processors are added.
func TestTable3Shape(t *testing.T) {
	sc := Tiny
	sc.Procs = []int{2, 8}
	rows, err := Table3(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, big := rows[0].Phases, rows[1].Phases
	if big.Total >= small.Total {
		t.Errorf("no total speedup: p=2 %v, p=8 %v", small.Total, big.Total)
	}
	if big.Construct >= small.Construct {
		t.Errorf("no construction speedup: %v vs %v", small.Construct, big.Construct)
	}
}

func TestFig6bShape(t *testing.T) {
	sc := Tiny
	sc.Fig6Sizes = []int{120, 480}
	pts, err := Fig6b(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Time <= pts[0].Time {
		t.Errorf("run-time must grow with n: %v then %v", pts[0].Time, pts[1].Time)
	}
}

// Figure 7's claim: generated >> processed >= accepted, with the
// generated/processed gap widening as n grows (deeper redundancy).
func TestFig7Shape(t *testing.T) {
	sc := Tiny
	sc.QualitySizes = []int{120, 480}
	rows, err := Fig7(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Generated <= r.Processed || r.Processed < r.Accepted {
			t.Errorf("ordering violated at n=%d: %+v", r.N, r)
		}
	}
	gap0 := float64(rows[0].Generated) / float64(rows[0].Processed)
	gap1 := float64(rows[1].Generated) / float64(rows[1].Processed)
	if gap1 <= gap0 {
		t.Errorf("generated/processed gap should widen: %.1f then %.1f", gap0, gap1)
	}
}

func TestFig8Runs(t *testing.T) {
	sc := Tiny
	sc.BatchSizes = []int{4, 60}
	rows, err := Fig8(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Time <= 0 || rows[1].Time <= 0 {
		t.Fatalf("fig8 rows: %+v", rows)
	}
}

func TestAblationsShape(t *testing.T) {
	rows, err := Ablations(Tiny.ComponentN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("variants: %d", len(rows))
	}
	pace, noskip := rows[0], rows[1]
	if pace.PairsProcessed >= noskip.PairsProcessed {
		t.Errorf("skipping saved nothing: %d vs %d", pace.PairsProcessed, noskip.PairsProcessed)
	}
	for _, r := range rows {
		if r.Quality.OQ < 0.5 {
			t.Errorf("variant %q quality collapsed: %v", r.Variant, r.Quality)
		}
	}
}

func TestTrimStudyShape(t *testing.T) {
	rows, err := TrimStudy(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	raw, trimmed := rows[0], rows[1]
	if raw.PairsGenerated <= trimmed.PairsGenerated {
		t.Errorf("tails should inflate pair generation: %d vs %d",
			raw.PairsGenerated, trimmed.PairsGenerated)
	}
	if trimmed.Quality.OQ < 0.5 {
		t.Errorf("trimmed quality collapsed: %v", trimmed.Quality)
	}
}

func TestIncrementalStudyShape(t *testing.T) {
	rows, err := IncrementalStudy(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	initial, scratch, incr := rows[0], rows[1], rows[2]
	if incr.PairsGenerated >= scratch.PairsGenerated {
		t.Errorf("incremental ingest should generate fewer pairs: %d vs %d",
			incr.PairsGenerated, scratch.PairsGenerated)
	}
	// Pair generation partitions exactly across the initial and incremental
	// runs: every pair is produced once, when its younger string arrives.
	if initial.PairsGenerated+incr.PairsGenerated != scratch.PairsGenerated {
		t.Errorf("initial %d + incremental %d != from-scratch %d",
			initial.PairsGenerated, incr.PairsGenerated, scratch.PairsGenerated)
	}
	if incr.Quality != scratch.Quality {
		t.Errorf("incremental quality %v differs from from-scratch %v", incr.Quality, scratch.Quality)
	}
	if incr.BucketsRebuilt <= 0 {
		t.Errorf("BucketsRebuilt = %d, want > 0", incr.BucketsRebuilt)
	}
}
