package pairgen

import (
	"math/rand"
	"testing"

	"pace/internal/seq"
	"pace/internal/suffix"
	"pace/internal/telemetry"
)

// benchWorkload builds a deterministic random EST set and its forest once;
// the benchmarks re-create only the generator, whose Next loop is the hot
// path under measurement.
func benchWorkload(b *testing.B) (*seq.SetS, []*suffix.Tree) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	ests := randomESTs(rng, 300, 150, 300)
	set, err := seq.NewSetS(ests)
	if err != nil {
		b.Fatal(err)
	}
	return set, buildForest(b, set, 8)
}

// drainAll pulls every pair in BatchSize-like chunks through Next.
func drainAll(b *testing.B, set *seq.SetS, forest []*suffix.Tree, obs Observer) int {
	b.Helper()
	gen, err := New(set, forest, 12)
	if err != nil {
		b.Fatal(err)
	}
	gen.Observe(obs)
	buf := make([]Pair, 0, 60)
	n := 0
	for {
		buf = gen.Next(buf[:0], 60)
		if len(buf) == 0 {
			return n
		}
		n += len(buf)
	}
}

// BenchmarkNext is the disabled-sink configuration: the Observer hooks are
// present in the code but every probe pointer is nil, so the per-pair cost
// is a pointer test. This is the default production path; compare against
// BenchmarkNextInstrumented to see the cost of attaching live probes.
func BenchmarkNext(b *testing.B) {
	set, forest := benchWorkload(b)
	b.ResetTimer()
	pairs := 0
	for i := 0; i < b.N; i++ {
		pairs = drainAll(b, set, forest, Observer{})
	}
	b.ReportMetric(float64(pairs), "pairs")
}

// BenchmarkNextInstrumented attaches live registry probes (histograms +
// counter, all atomic) to the same workload.
func BenchmarkNextInstrumented(b *testing.B) {
	set, forest := benchWorkload(b)
	reg := telemetry.NewRegistry()
	obs := Observer{
		MCSLen:    reg.Histogram("pace_pair_mcs_length", telemetry.ExpBounds(12, 2, 8)),
		BatchNs:   reg.Histogram("pace_pairgen_batch_ns", telemetry.ExpBounds(1000, 4, 12)),
		Generated: reg.Counter("pace_pairs_generated_total"),
	}
	b.ResetTimer()
	pairs := 0
	for i := 0; i < b.N; i++ {
		pairs = drainAll(b, set, forest, obs)
	}
	b.ReportMetric(float64(pairs), "pairs")
}
