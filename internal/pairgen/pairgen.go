// Package pairgen implements the paper's §3.2: on-demand generation of
// promising pairs from a forest of local GST subtrees, in decreasing order of
// maximal common substring length.
//
// Every node of string-depth >= ψ is processed in decreasing string-depth
// order. Each node carries five lsets — the strings owning a suffix in the
// node's subtree, partitioned by the suffix's left-extension character
// (A, C, G, T, or λ) — implemented as linked lists with O(1) concatenation so
// total lset storage stays linear in the input (paper's O(N) bound). At an
// internal node, duplicate string occurrences across children are removed
// with a global mark array, cartesian products across (child, character)
// groups emit the pairs whose maximal common substring is the node's path
// label (Lemma 1), and the surviving entries are concatenated into the
// node's own lsets.
//
// The generator is resumable: it remembers its position inside a node's
// cartesian products, so callers pull pairs in batches without ever
// materializing a node's full pair set (the on-demand property that keeps
// the paper's memory footprint linear).
package pairgen

import (
	"fmt"
	"time"

	"pace/internal/seq"
	"pace/internal/suffix"
	"pace/internal/telemetry"
)

// Pair is one promising pair in canonical orientation: S1 is the forward
// string of the lower-numbered EST; S2 belongs to a strictly higher-numbered
// EST in either orientation. The strings share the exact anchor match
// S1[Pos1:Pos1+MatchLen] == S2[Pos2:Pos2+MatchLen], a maximal common
// substring of the two strings.
type Pair struct {
	S1, S2     seq.StringID
	Pos1, Pos2 int32
	MatchLen   int32
}

// ESTs returns the pair's EST ids (i < j).
func (p Pair) ESTs() (seq.ESTID, seq.ESTID) { return p.S1.EST(), p.S2.EST() }

// Stats counts generator activity.
type Stats struct {
	// NodesProcessed is the number of tree nodes of depth >= ψ processed.
	NodesProcessed int64
	// Generated counts canonical pairs emitted.
	Generated int64
	// DiscardedOrientation counts pairs dropped by the canonical-
	// orientation rule (the equivalent reverse-complemented duplicate is
	// emitted elsewhere).
	DiscardedOrientation int64
	// DiscardedSelf counts pairs of a string with its own EST's other
	// orientation (or itself), which carry no clustering information.
	DiscardedSelf int64
	// DiscardedStale counts pairs suppressed by the fresh-only mode because
	// both strings predate the current batch: their maximal common substring
	// is a property of the two strings alone, so the pair was already
	// generated — and judged — in the generation that introduced the younger
	// of the two.
	DiscardedStale int64
	// Entries is the total number of lset entries allocated — the
	// generator's O(N) working set.
	Entries int64
}

// list is a singly linked lset; head/tail index a tree-local entry pool.
type list struct{ head, tail int32 }

var emptyList = list{head: -1, tail: -1}

// entry is one lset element.
type entry struct {
	sid  seq.StringID
	pos  int32
	next int32
}

// treeState is the per-tree lset storage.
type treeState struct {
	tree *suffix.Tree
	// lsetIdx maps a node index to its row in lsets, or -1 for nodes of
	// depth < ψ (which never own lsets).
	lsetIdx []int32
	lsets   [][seq.NumLeftChars]list
	pool    []entry
}

// nodeRef addresses one node in the forest.
type nodeRef struct {
	tree int32
	node int32
}

// group is a snapshot of one (child, left-character) lset taken while
// processing an internal node; pairs are cartesian products across
// compatible groups.
type group struct {
	child int32
	char  seq.Code
	// items indexes into the generator's itemsBuf scratch.
	lo, hi int32
	// fresh reports whether any item belongs to the current batch; a pair of
	// all-stale groups cannot produce a fresh pair and is skipped wholesale.
	fresh bool
}

type item struct {
	sid seq.StringID
	pos int32
}

// Generator produces promising pairs on demand.
type Generator struct {
	set   *seq.SetS
	psi   int32
	trees []*treeState
	// freshID is the fresh-only threshold: pairs whose strings both have an
	// id below it are suppressed (0 emits everything). Generations are
	// monotone in string id, so freshness is a single comparison.
	freshID seq.StringID

	order  []nodeRef
	cursor int

	mark  []int32
	token int32

	// Iteration state over the current internal node's groups.
	groups   []group
	itemsBuf []item
	curDepth int32
	gi, gj   int
	ii, jj   int32
	active   bool

	stats Stats
	obs   Observer
}

// Observer carries optional live telemetry hooks; the zero value disables
// them. Each field is checked with a nil test in the hot loop, so a
// generator without an observer pays (nearly) nothing, and an attached
// observer pays only atomic updates — cheap enough to leave on even with no
// sink draining the metrics (see BenchmarkNextInstrumented).
type Observer struct {
	// MCSLen observes the maximal-common-substring length of every
	// canonical pair emitted — the paper's pairs-by-length distribution.
	MCSLen *telemetry.Histogram
	// BatchNs observes the latency of each Next call, in nanoseconds.
	BatchNs *telemetry.Histogram
	// Clock supplies the elapsed time base for BatchNs; nil means wall
	// time. Deterministic sim runs inject the engine's clock so latency
	// observations replay identically.
	Clock func() time.Duration
	// Generated counts canonical pairs emitted.
	Generated *telemetry.Counter
}

// Observe installs (or replaces) the generator's telemetry hooks.
func (g *Generator) Observe(o Observer) { g.obs = o }

// New builds a generator over the given forest. psi is the promising-pair
// threshold ψ: only nodes of string-depth >= psi generate pairs. The bucket
// window w used to build the forest must satisfy w <= psi, otherwise pairs
// whose maximal common substring is shorter than w would be silently lost;
// the caller is responsible for that invariant (it is validated by the
// clustering layer).
func New(set *seq.SetS, forest []*suffix.Tree, psi int) (*Generator, error) {
	return NewFresh(set, forest, psi, 0)
}

// NewFresh builds a generator restricted to pairs involving the current
// batch: only pairs where at least one string has generation >= fresh are
// emitted (the paper's Lemmas 1–4 guarantee an old×old pair's maximal common
// substring — and hence the pair itself — was already produced by the run
// that introduced the younger string). fresh == 0 emits every pair, exactly
// like New. Lsets are still built over all suffixes in the forest, so the
// emitted fresh pairs are identical to what a full run would produce for
// them, dedup included.
func NewFresh(set *seq.SetS, forest []*suffix.Tree, psi int, fresh seq.Gen) (*Generator, error) {
	if psi < 1 {
		return nil, fmt.Errorf("pairgen: psi must be >= 1, got %d", psi)
	}
	g := &Generator{
		set:  set,
		psi:  int32(psi),
		mark: make([]int32, set.NumStrings()),
	}
	if fresh > 0 {
		g.freshID = set.GenStartString(fresh)
	}
	for _, t := range forest {
		ts := &treeState{tree: t, lsetIdx: make([]int32, t.Len())}
		deep := int32(0)
		for i, n := range t.Nodes {
			if n.Depth >= g.psi {
				ts.lsetIdx[i] = deep
				deep++
			} else {
				ts.lsetIdx[i] = -1
			}
		}
		ts.lsets = make([][seq.NumLeftChars]list, deep)
		for i := range ts.lsets {
			for c := range ts.lsets[i] {
				ts.lsets[i][c] = emptyList
			}
		}
		g.trees = append(g.trees, ts)
	}
	g.buildOrder()
	return g, nil
}

// buildOrder sorts the deep nodes of the forest by decreasing string-depth,
// breaking ties by descending node index so that children (which follow
// their parent in preorder and are at least as deep) are always processed
// before their parent. The sort is the O(sorting) term of the paper's
// Lemma 4; a two-pass counting sort keeps it linear.
func (g *Generator) buildOrder() {
	maxDepth := int32(0)
	total := 0
	for _, ts := range g.trees {
		for _, n := range ts.tree.Nodes {
			if n.Depth >= g.psi {
				total++
				if n.Depth > maxDepth {
					maxDepth = n.Depth
				}
			}
		}
	}
	if total == 0 {
		return
	}
	counts := make([]int32, maxDepth+2)
	for _, ts := range g.trees {
		for _, n := range ts.tree.Nodes {
			if n.Depth >= g.psi {
				counts[n.Depth]++
			}
		}
	}
	// Prefix-sum from the deepest down so larger depths come first.
	start := make([]int32, maxDepth+2)
	acc := int32(0)
	for d := maxDepth; d >= g.psi; d-- {
		start[d] = acc
		acc += counts[d]
	}
	g.order = make([]nodeRef, total)
	// Walk node indices in reverse so, within a depth class, higher
	// indices are placed first (children before parents).
	for ti := len(g.trees) - 1; ti >= 0; ti-- {
		nodes := g.trees[ti].tree.Nodes
		for i := len(nodes) - 1; i >= 0; i-- {
			d := nodes[i].Depth
			if d >= g.psi {
				g.order[start[d]] = nodeRef{tree: int32(ti), node: int32(i)}
				start[d]++
			}
		}
	}
}

// Stats returns a copy of the activity counters.
func (g *Generator) Stats() Stats { return g.stats }

// Remaining reports whether more pairs may still be produced (conservative:
// true until the final node is exhausted).
func (g *Generator) Remaining() bool {
	return g.active || g.cursor < len(g.order)
}

// Next appends up to max pairs to dst and returns the extended slice.
// A return with no appended pairs means the generator is exhausted.
func (g *Generator) Next(dst []Pair, max int) []Pair {
	if g.obs.BatchNs != nil {
		clk := g.obs.Clock
		if clk == nil {
			clk = telemetry.NewWallClock().Elapsed
		}
		start := clk()
		defer func() { g.obs.BatchNs.Observe((clk() - start).Nanoseconds()) }()
	}
	want := len(dst) + max
	for len(dst) < want {
		if !g.active {
			if g.cursor >= len(g.order) {
				return dst
			}
			ref := g.order[g.cursor]
			g.cursor++
			g.processNode(ref)
			continue
		}
		dst = g.emit(dst, want)
	}
	return dst
}

// processNode initializes a leaf's lsets or prepares an internal node's
// dedup/snapshot/union and arms pair iteration.
func (g *Generator) processNode(ref nodeRef) {
	ts := g.trees[ref.tree]
	t := ts.tree
	g.stats.NodesProcessed++
	if t.IsLeaf(ref.node) {
		n := t.Nodes[ref.node]
		c := g.set.LeftChar(n.SID, n.Pos)
		e := int32(len(ts.pool))
		ts.pool = append(ts.pool, entry{sid: n.SID, pos: n.Pos, next: -1})
		g.stats.Entries++
		ts.lsets[ts.lsetIdx[ref.node]][c] = list{head: e, tail: e}
		return
	}

	// Dedup every child lset with a fresh token, snapshotting survivors.
	g.token++
	g.groups = g.groups[:0]
	g.itemsBuf = g.itemsBuf[:0]
	childOrd := int32(0)
	for c := t.FirstChild(ref.node); c != -1; c = t.NextSibling(c, ref.node) {
		li := ts.lsetIdx[c]
		for ch := seq.Code(0); ch < seq.NumLeftChars; ch++ {
			l := &ts.lsets[li][ch]
			prev := int32(-1)
			cur := l.head
			lo := int32(len(g.itemsBuf))
			fresh := false
			for cur != -1 {
				e := &ts.pool[cur]
				if g.mark[e.sid] == g.token {
					// Duplicate occurrence: unlink.
					if prev == -1 {
						l.head = e.next
					} else {
						ts.pool[prev].next = e.next
					}
					if e.next == -1 {
						l.tail = prev
					}
					cur = e.next
					continue
				}
				g.mark[e.sid] = g.token
				g.itemsBuf = append(g.itemsBuf, item{sid: e.sid, pos: e.pos})
				fresh = fresh || e.sid >= g.freshID
				prev = cur
				cur = e.next
			}
			if hi := int32(len(g.itemsBuf)); hi > lo {
				g.groups = append(g.groups, group{child: childOrd, char: ch, lo: lo, hi: hi, fresh: fresh})
			}
		}
		childOrd++
	}

	// Union surviving child lsets into this node (O(|Σ|²) concatenations).
	vi := ts.lsetIdx[ref.node]
	for c := t.FirstChild(ref.node); c != -1; c = t.NextSibling(c, ref.node) {
		li := ts.lsetIdx[c]
		for ch := seq.Code(0); ch < seq.NumLeftChars; ch++ {
			src := ts.lsets[li][ch]
			ts.lsets[li][ch] = emptyList
			if src.head == -1 {
				continue
			}
			dst := &ts.lsets[vi][ch]
			if dst.head == -1 {
				*dst = src
			} else {
				ts.pool[dst.tail].next = src.head
				dst.tail = src.tail
			}
		}
	}

	g.curDepth = t.Nodes[ref.node].Depth
	g.gi, g.gj, g.ii, g.jj = 0, 1, 0, 0
	g.active = len(g.groups) >= 2
}

// compatible reports whether two groups may produce pairs: different
// children, and left characters that differ or are both λ (Algorithm 1's
// ProcessInternalNode condition).
func compatible(a, b group) bool {
	if a.child == b.child {
		return false
	}
	return a.char != b.char || (a.char == seq.Lambda && b.char == seq.Lambda)
}

// emit appends pairs from the current node until dst reaches want length or
// the node is exhausted.
func (g *Generator) emit(dst []Pair, want int) []Pair {
	for len(dst) < want {
		// Advance to the next compatible group pair if needed. Two all-stale
		// groups cannot produce a fresh pair, so their whole cartesian
		// product is skipped in O(1).
		for g.gi < len(g.groups) {
			if g.gj >= len(g.groups) {
				g.gi++
				g.gj = g.gi + 1
				continue
			}
			if !compatible(g.groups[g.gi], g.groups[g.gj]) ||
				!(g.groups[g.gi].fresh || g.groups[g.gj].fresh) {
				g.gj++
				continue
			}
			break
		}
		if g.gi >= len(g.groups) {
			g.active = false
			return dst
		}
		ga, gb := g.groups[g.gi], g.groups[g.gj]
		a := g.itemsBuf[ga.lo+g.ii]
		b := g.itemsBuf[gb.lo+g.jj]

		// Advance the inner cursors for next time.
		g.jj++
		if gb.lo+g.jj >= gb.hi {
			g.jj = 0
			g.ii++
			if ga.lo+g.ii >= ga.hi {
				g.ii = 0
				g.gj++
			}
		}

		if a.sid < g.freshID && b.sid < g.freshID {
			// Old×old inside a mixed group pair: already judged in an
			// earlier generation.
			g.stats.DiscardedStale++
			continue
		}

		if p, ok := g.canonical(a, b); ok {
			dst = append(dst, p)
			g.stats.Generated++
			if g.obs.MCSLen != nil {
				g.obs.MCSLen.Observe(int64(p.MatchLen))
			}
			if g.obs.Generated != nil {
				g.obs.Generated.Inc()
			}
		}
	}
	return dst
}

// canonical applies the paper's duplicate-avoidance rule: a pair is reported
// only when the string of the lower-numbered EST appears in forward
// orientation (its reverse-complemented twin is generated — and discarded —
// elsewhere). Pairs within a single EST are meaningless and dropped.
func (g *Generator) canonical(a, b item) (Pair, bool) {
	ea, eb := a.sid.EST(), b.sid.EST()
	if ea == eb {
		g.stats.DiscardedSelf++
		return Pair{}, false
	}
	if eb < ea {
		a, b = b, a
	}
	if a.sid.IsReverse() {
		g.stats.DiscardedOrientation++
		return Pair{}, false
	}
	return Pair{
		S1: a.sid, S2: b.sid,
		Pos1: a.pos, Pos2: b.pos,
		MatchLen: g.curDepth,
	}, true
}
