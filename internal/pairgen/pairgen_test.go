package pairgen

import (
	"math/rand"
	"testing"

	"pace/internal/seq"
	"pace/internal/suffix"
)

// buildForest builds the complete forest (single worker) for a set.
func buildForest(t testing.TB, set *seq.SetS, w int) []*suffix.Tree {
	t.Helper()
	hi := seq.StringID(set.NumStrings())
	owner := suffix.Assign(suffix.Histogram(set, w, 0, hi), 1)
	m := suffix.CollectOwned(set, w, owner, 0, 0, hi)
	forest, err := suffix.BuildForest(set, m, w)
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

func mustSet(t testing.TB, strs ...string) *seq.SetS {
	t.Helper()
	ests := make([]seq.Sequence, len(strs))
	for i, s := range strs {
		var err error
		ests[i], err = seq.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
	}
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func randomESTs(rng *rand.Rand, n, minLen, maxLen int) []seq.Sequence {
	out := make([]seq.Sequence, n)
	for i := range out {
		l := minLen + rng.Intn(maxLen-minLen+1)
		s := make(seq.Sequence, l)
		for j := range s {
			s[j] = seq.Code(rng.Intn(4))
		}
		out[i] = s
	}
	return out
}

// lcsLen computes the longest common substring length by DP — the
// brute-force oracle for promising pairs.
func lcsLen(a, b seq.Sequence) int32 {
	prev := make([]int32, len(b)+1)
	cur := make([]int32, len(b)+1)
	var best int32
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// drain pulls every pair with the given batch size.
func min32(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func drain(g *Generator, batch int) []Pair {
	var all []Pair
	for {
		n := len(all)
		all = g.Next(all, batch)
		if len(all) == n {
			return all
		}
	}
}

func TestNewValidation(t *testing.T) {
	set := mustSet(t, "ACGTACGT")
	if _, err := New(set, nil, 0); err == nil {
		t.Error("psi=0 must fail")
	}
}

func TestEmptyForest(t *testing.T) {
	set := mustSet(t, "ACGTACGT")
	g, err := New(set, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pairs := drain(g, 10); len(pairs) != 0 {
		t.Errorf("empty forest produced %d pairs", len(pairs))
	}
	if g.Remaining() {
		t.Error("exhausted generator claims more")
	}
}

func TestSimpleOverlapPair(t *testing.T) {
	// Two ESTs sharing a 12-char block; psi=8 must pair them.
	set := mustSet(t,
		"AACCGGTTACGTACGTAAAA",
		"CCCCACGTACGTACGTGGGG")
	w := 4
	g, err := New(set, buildForest(t, set, w), 8)
	if err != nil {
		t.Fatal(err)
	}
	pairs := drain(g, 4)
	if len(pairs) == 0 {
		t.Fatal("no pairs generated")
	}
	seen := map[[2]seq.StringID]bool{}
	for _, p := range pairs {
		seen[[2]seq.StringID{p.S1, p.S2}] = true
		if e1, e2 := p.ESTs(); e1 != 0 || e2 != 1 {
			t.Errorf("unexpected EST pair %d,%d", e1, e2)
		}
	}
	if !seen[[2]seq.StringID{seq.Forward(0), seq.Forward(1)}] {
		t.Errorf("forward/forward pair missing: %v", seen)
	}
}

func TestReverseComplementPairDetected(t *testing.T) {
	// EST 1 overlaps the reverse complement of EST 0.
	rng := rand.New(rand.NewSource(3))
	e0 := randomESTs(rng, 1, 60, 60)[0]
	e1 := e0[10:50].ReverseComplement()
	ests := []seq.Sequence{e0, e1}
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(set, buildForest(t, set, 6), 20)
	if err != nil {
		t.Fatal(err)
	}
	pairs := drain(g, 16)
	found := false
	for _, p := range pairs {
		if p.S1 == seq.Forward(0) && p.S2 == seq.Reverse(1) {
			found = true
		}
		if p.S1.IsReverse() {
			t.Errorf("canonical pair with reversed S1: %+v", p)
		}
	}
	if !found {
		t.Errorf("rc overlap not detected: %+v", pairs)
	}
}

// Anchors reported by the generator must be genuine maximal common
// substrings (Lemma 1).
func TestAnchorsAreMaximalCommonSubstrings(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ests := randomESTs(rng, 8, 40, 90)
	// Plant overlaps so pairs exist.
	ests[1] = append(ests[0][20:].Clone(), ests[1][:30]...)
	ests[3] = ests[2][5:min32(60, len(ests[2]))].ReverseComplement()
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	psi := int32(12)
	g, err := New(set, buildForest(t, set, 6), int(psi))
	if err != nil {
		t.Fatal(err)
	}
	pairs := drain(g, 7)
	if len(pairs) == 0 {
		t.Fatal("expected pairs")
	}
	for _, p := range pairs {
		s1, s2 := set.Str(p.S1), set.Str(p.S2)
		if p.MatchLen < psi {
			t.Fatalf("pair below threshold: %+v", p)
		}
		if !s1[p.Pos1 : p.Pos1+p.MatchLen].Equal(s2[p.Pos2 : p.Pos2+p.MatchLen]) {
			t.Fatalf("anchor is not a common substring: %+v", p)
		}
		leftMax := p.Pos1 == 0 || p.Pos2 == 0 || s1[p.Pos1-1] != s2[p.Pos2-1]
		r1, r2 := p.Pos1+p.MatchLen, p.Pos2+p.MatchLen
		rightMax := int(r1) == len(s1) || int(r2) == len(s2) || s1[r1] != s2[r2]
		if !leftMax || !rightMax {
			t.Fatalf("anchor not maximal (left=%v right=%v): %+v", leftMax, rightMax, p)
		}
	}
}

// Completeness & soundness (Lemmas 1+3): the set of distinct canonical
// string pairs generated equals the brute-force set of pairs with longest
// common substring >= psi.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(5)
		ests := randomESTs(rng, n, 30, 70)
		// Plant structure: overlaps, containments, rc overlaps.
		if n >= 2 {
			ests[1] = append(ests[0][10:].Clone(), ests[1][:20]...)
		}
		if n >= 4 {
			ests[3] = ests[2][5:min32(40, len(ests[2]))].ReverseComplement()
		}
		set, err := seq.NewSetS(ests)
		if err != nil {
			t.Fatal(err)
		}
		psi := 14
		g, err := New(set, buildForest(t, set, 6), psi)
		if err != nil {
			t.Fatal(err)
		}
		got := map[[2]seq.StringID]bool{}
		for _, p := range drain(g, 13) {
			got[[2]seq.StringID{p.S1, p.S2}] = true
		}
		want := map[[2]seq.StringID]bool{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ff := lcsLen(set.Str(seq.Forward(seq.ESTID(i))), set.Str(seq.Forward(seq.ESTID(j))))
				if ff >= int32(psi) {
					want[[2]seq.StringID{seq.Forward(seq.ESTID(i)), seq.Forward(seq.ESTID(j))}] = true
				}
				fr := lcsLen(set.Str(seq.Forward(seq.ESTID(i))), set.Str(seq.Reverse(seq.ESTID(j))))
				if fr >= int32(psi) {
					want[[2]seq.StringID{seq.Forward(seq.ESTID(i)), seq.Reverse(seq.ESTID(j))}] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d distinct pairs want %d\n got: %v\nwant: %v",
				trial, len(got), len(want), got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing pair %v", trial, k)
			}
		}
	}
}

// Pairs must come out in non-increasing order of maximal common substring
// length (the greedy processing order).
func TestDecreasingMatchLen(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ests := randomESTs(rng, 12, 50, 100)
	for i := 1; i < 6; i++ {
		cut := 10 + rng.Intn(20)
		ests[i] = append(ests[0][cut:].Clone(), ests[i][:cut]...)
	}
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(set, buildForest(t, set, 6), 10)
	if err != nil {
		t.Fatal(err)
	}
	pairs := drain(g, 3)
	if len(pairs) < 2 {
		t.Skip("not enough pairs to check ordering")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].MatchLen > pairs[i-1].MatchLen {
			t.Fatalf("order violated at %d: %d after %d", i, pairs[i].MatchLen, pairs[i-1].MatchLen)
		}
	}
}

// The same (pair, anchor) tuple must never be emitted twice, and a pair is
// emitted at most once per distinct maximal common substring (Corollary 2).
func TestNoDuplicateEmissions(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ests := randomESTs(rng, 10, 40, 80)
	ests[1] = append(ests[0][15:].Clone(), ests[1][:25]...)
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(set, buildForest(t, set, 5), 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Pair]bool{}
	for _, p := range drain(g, 9) {
		if seen[p] {
			t.Fatalf("duplicate emission: %+v", p)
		}
		seen[p] = true
	}
}

// Batch size must not change the emitted sequence.
func TestBatchingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ests := randomESTs(rng, 10, 50, 90)
	ests[2] = append(ests[5][10:].Clone(), ests[2][:30]...)
	ests[7] = ests[4][5:min32(50, len(ests[4]))].ReverseComplement()
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	forest := buildForest(t, set, 6)
	g1, _ := New(set, forest, 12)
	g2, _ := New(set, forest, 12)
	a := drain(g1, 1)
	b := drain(g2, 1000)
	if len(a) != len(b) {
		t.Fatalf("batching changed count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("batching changed order at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSelfPairsDiscarded(t *testing.T) {
	// A palindromic-ish EST overlaps its own reverse complement; such
	// pairs must be discarded, not emitted.
	set := mustSet(t, "ACGTACGTACGTACGTACGT", "GGGGGGGGCCCCCCCCGGGG")
	g, err := New(set, buildForest(t, set, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range drain(g, 8) {
		e1, e2 := p.ESTs()
		if e1 == e2 {
			t.Fatalf("self pair emitted: %+v", p)
		}
	}
	if g.Stats().DiscardedSelf == 0 {
		t.Error("expected self-pair discards for a self-overlapping EST")
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ests := randomESTs(rng, 6, 40, 60)
	ests[1] = ests[0][5:min32(45, len(ests[0]))].Clone()
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(set, buildForest(t, set, 5), 10)
	if err != nil {
		t.Fatal(err)
	}
	pairs := drain(g, 50)
	st := g.Stats()
	if st.Generated != int64(len(pairs)) {
		t.Errorf("Generated %d != emitted %d", st.Generated, len(pairs))
	}
	if st.NodesProcessed == 0 || st.Entries == 0 {
		t.Errorf("stats not counting: %+v", st)
	}
	// Each canonical emission has a mirrored discard elsewhere
	// (orientation rule), so discards should be of similar magnitude.
	if st.DiscardedOrientation == 0 && st.Generated > 0 {
		t.Error("expected orientation discards")
	}
}

// lset storage must stay linear: entries == number of deep leaves.
func TestEntriesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ests := randomESTs(rng, 10, 50, 80)
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	w := 5
	psi := 5 // every suffix-bearing node is deep
	forest := buildForest(t, set, w)
	g, err := New(set, forest, psi)
	if err != nil {
		t.Fatal(err)
	}
	drain(g, 1000)
	var leaves int64
	for _, tr := range forest {
		leaves += int64(tr.NumLeaves())
	}
	if g.Stats().Entries != leaves {
		t.Errorf("entries %d != deep leaves %d", g.Stats().Entries, leaves)
	}
}

func BenchmarkGenerate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := randomESTs(rng, 1, 2000, 2000)[0]
	ests := make([]seq.Sequence, 60)
	for i := range ests {
		start := rng.Intn(1400)
		ests[i] = base[start : start+500].Clone()
	}
	set, err := seq.NewSetS(ests)
	if err != nil {
		b.Fatal(err)
	}
	forest := buildForest(b, set, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := New(set, forest, 20)
		if err != nil {
			b.Fatal(err)
		}
		drain(g, 64)
	}
}

// Fresh-only mode over the union forest must emit exactly the full run's
// pairs that involve at least one fresh string — same tuples, same order —
// while suppressing every old×old pair (Lemmas 1–4: an old pair's maximal
// common substring was already produced by the run that introduced it).
func TestFreshModeEmitsExactlyFreshPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 6; trial++ {
		old := randomESTs(rng, 5+rng.Intn(4), 40, 80)
		// Plant overlaps inside the old batch so stale pairs exist.
		old[1] = append(old[0][10:].Clone(), old[1][:20]...)
		old[3] = old[2][5:min32(40, len(old[2]))].ReverseComplement()
		fresh := randomESTs(rng, 2+rng.Intn(3), 40, 80)
		// Plant overlaps across the generation boundary.
		fresh[0] = append(old[0][15:].Clone(), fresh[0][:20]...)
		fresh[1] = old[1][5:min32(40, len(old[1]))].ReverseComplement()

		set, err := seq.NewSetS(old)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := set.Append(fresh)
		if err != nil {
			t.Fatal(err)
		}
		forest := buildForest(t, set, 6)
		full, err := New(set, forest, 12)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := NewFresh(set, forest, 12, gen)
		if err != nil {
			t.Fatal(err)
		}
		allPairs := drain(full, 17)
		freshPairs := drain(inc, 17)

		freshID := set.GenStartString(gen)
		var want []Pair
		for _, p := range allPairs {
			if p.S1 >= freshID || p.S2 >= freshID {
				want = append(want, p)
			}
		}
		if len(freshPairs) != len(want) {
			t.Fatalf("trial %d: fresh mode emitted %d pairs, want %d", trial, len(freshPairs), len(want))
		}
		for i := range want {
			if freshPairs[i] != want[i] {
				t.Fatalf("trial %d: pair %d: got %+v want %+v", trial, i, freshPairs[i], want[i])
			}
			if freshPairs[i].S1 < freshID && freshPairs[i].S2 < freshID {
				t.Fatalf("trial %d: stale pair leaked: %+v", trial, freshPairs[i])
			}
		}
		if len(allPairs) > len(freshPairs) {
			// Stale pairs exist; the generator must have strictly less work
			// recorded as Generated, accounted between the group-level skip
			// and the per-pair stale counter.
			if inc.Stats().Generated >= full.Stats().Generated {
				t.Fatalf("trial %d: fresh mode did not reduce Generated: %d vs %d",
					trial, inc.Stats().Generated, full.Stats().Generated)
			}
		}
	}
}

// fresh == 0 must behave exactly like New (zero-overhead full mode).
func TestFreshZeroEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ests := randomESTs(rng, 8, 40, 80)
	ests[1] = append(ests[0][10:].Clone(), ests[1][:20]...)
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	forest := buildForest(t, set, 6)
	g1, _ := New(set, forest, 12)
	g2, _ := NewFresh(set, forest, 12, 0)
	a, b := drain(g1, 8), drain(g2, 8)
	if len(a) != len(b) {
		t.Fatalf("count mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if g2.Stats().DiscardedStale != 0 {
		t.Errorf("full mode discarded %d pairs as stale", g2.Stats().DiscardedStale)
	}
}

// The stale counter must account per-pair suppression inside mixed group
// pairs (group-level skips are not counted — they never materialize pairs).
func TestDiscardedStaleCounted(t *testing.T) {
	// The fresh string shares left-extension character ('A') and the two
	// characters after the core with old string 0, so both land in the same
	// (child, char) group at the core's node — a mixed group. Pairing that
	// group against old string 1's group materializes the stale pair (0,1),
	// which must be counted, and the fresh pair (fresh,1), which must emit.
	core := "ACGTTGCAACGTTGCA"
	set := mustSet(t,
		"AAAA"+core+"TTTT",
		"CCCC"+core+"GGGG")
	fresh := []seq.Sequence{mustParseSeq(t, "AAAA"+core+"TTAA")}
	gen, err := set.Append(fresh)
	if err != nil {
		t.Fatal(err)
	}
	forest := buildForest(t, set, 4)
	inc, err := NewFresh(set, forest, 8, gen)
	if err != nil {
		t.Fatal(err)
	}
	pairs := drain(inc, 16)
	freshID := set.GenStartString(gen)
	for _, p := range pairs {
		if p.S1 < freshID && p.S2 < freshID {
			t.Fatalf("stale pair emitted: %+v", p)
		}
	}
	st := inc.Stats()
	if st.DiscardedStale == 0 {
		t.Error("expected DiscardedStale > 0 for mixed groups over a shared core")
	}
}

func mustParseSeq(t testing.TB, s string) seq.Sequence {
	t.Helper()
	q, err := seq.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
