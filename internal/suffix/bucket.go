// Package suffix implements the paper's §3.1: construction of a distributed
// Generalized Suffix Tree (GST) over the 2n strings of a SetS.
//
// Suffixes are partitioned into |Σ|^w buckets by their first w characters;
// each bucket's suffixes form an independent subtree of the conceptual GST
// (the top portion of the GST, with string-depth < w, is never materialized).
// Buckets are assigned to workers by a load-balancing heuristic, and each
// subtree is built by recursive character-wise bucketing, then stored in a
// space-efficient depth-first-search array in which every node carries only
// its string-depth, a pointer to the rightmost leaf of its subtree, and a
// representative suffix (leaves: the suffix itself).
package suffix

import (
	"errors"
	"fmt"
	"sort"

	"pace/internal/seq"
)

// MaxWindow bounds the bucket-prefix width: 4^12 = 16M buckets is already far
// beyond what load balancing needs.
const MaxWindow = 12

// ErrEmptyBucket is returned (wrapped) by Build for a bucket with no
// suffixes. Callers performing incremental rebuilds match it with errors.Is
// and skip the bucket.
var ErrEmptyBucket = errors.New("suffix: empty bucket")

// SuffixRef identifies one suffix: string id and start position.
type SuffixRef struct {
	SID seq.StringID
	Pos int32
}

// NumBuckets returns 4^w.
func NumBuckets(w int) int { return 1 << (2 * w) }

// ValidateWindow checks the bucket width.
func ValidateWindow(w int) error {
	if w < 1 || w > MaxWindow {
		return fmt.Errorf("suffix: window %d out of [1,%d]", w, MaxWindow)
	}
	return nil
}

// BucketEach calls fn(bucket, pos) for every suffix of s that is at least w
// characters long, where bucket encodes the suffix's first w characters in
// base 4 (most significant character first). It uses a rolling encoding, so
// the scan is O(len(s)).
func BucketEach(s seq.Sequence, w int, fn func(bucket int, pos int32)) {
	if len(s) < w {
		return
	}
	mask := NumBuckets(w) - 1
	id := 0
	for i := 0; i < len(s); i++ {
		id = (id<<2 | int(s[i])) & mask
		if i >= w-1 {
			fn(id, int32(i-w+1))
		}
	}
}

// Histogram counts, for the strings ids in [lo,hi), how many suffixes fall in
// each bucket. It is the per-processor contribution that the parallel layer
// sums with an allreduce.
func Histogram(set *seq.SetS, w int, lo, hi seq.StringID) []int64 {
	hist := make([]int64, NumBuckets(w))
	for id := lo; id < hi; id++ {
		BucketEach(set.Str(id), w, func(b int, _ int32) { hist[b]++ })
	}
	return hist
}

// HistogramFrom is Histogram restricted to suffixes of strings with
// generation >= from: the per-batch contribution an incremental run uses to
// find the buckets a new batch touches. Generations are monotone in string
// id, so the restriction is a clamp of the scan range.
func HistogramFrom(set *seq.SetS, w int, from seq.Gen, lo, hi seq.StringID) []int64 {
	if s := set.GenStartString(from); s > lo {
		lo = s
	}
	if lo > hi {
		lo = hi
	}
	return Histogram(set, w, lo, hi)
}

// Assign maps each non-empty bucket to one of p workers such that worker
// loads (total suffixes) are near-balanced: buckets are taken in decreasing
// size order and each goes to the currently least-loaded worker (LPT).
// Empty buckets map to -1.
func Assign(hist []int64, p int) []int32 {
	if p < 1 {
		p = 1
	}
	type bkt struct {
		id   int
		size int64
	}
	var nonEmpty []bkt
	for id, size := range hist {
		if size > 0 {
			nonEmpty = append(nonEmpty, bkt{id, size})
		}
	}
	sort.Slice(nonEmpty, func(i, j int) bool {
		if nonEmpty[i].size != nonEmpty[j].size {
			return nonEmpty[i].size > nonEmpty[j].size
		}
		return nonEmpty[i].id < nonEmpty[j].id
	})
	owner := make([]int32, len(hist))
	for i := range owner {
		owner[i] = -1
	}
	loads := make([]int64, p)
	for _, b := range nonEmpty {
		best := 0
		for w := 1; w < p; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		owner[b.id] = int32(best)
		loads[best] += b.size
	}
	return owner
}

// AssignFresh is Assign restricted to the buckets a new batch touches:
// buckets with no fresh suffix map to -1 even when non-empty, so untouched
// subtrees are neither collected nor rebuilt (their pairs were all judged in
// earlier generations). Touched buckets are balanced by their total (old +
// fresh) size, which is what the rebuild costs.
func AssignFresh(hist, freshHist []int64, p int) []int32 {
	masked := make([]int64, len(hist))
	for b, f := range freshHist {
		if f > 0 {
			masked[b] = hist[b]
		}
	}
	return Assign(masked, p)
}

// Loads returns the per-worker suffix totals implied by an assignment.
func Loads(hist []int64, owner []int32, p int) []int64 {
	loads := make([]int64, p)
	for b, o := range owner {
		if o >= 0 {
			loads[o] += hist[b]
		}
	}
	return loads
}

// Skew is the redistribution load-balance figure of merit: the maximum
// worker load divided by the mean load. 1.0 is perfect balance; the paper's
// LPT heuristic keeps it near 1 for realistic bucket histograms. Zero total
// load returns 0.
func Skew(loads []int64) float64 {
	var total, maxLoad int64
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total == 0 || len(loads) == 0 {
		return 0
	}
	mean := float64(total) / float64(len(loads))
	return float64(maxLoad) / mean
}

// CollectOwned scans the strings in [lo,hi) and gathers the suffixes whose
// bucket is owned by worker me, grouped by bucket id. In the parallel engine
// this grouping is what each rank sends to bucket owners; sequentially it is
// called once per worker with the full string range.
func CollectOwned(set *seq.SetS, w int, owner []int32, me int32, lo, hi seq.StringID) map[int][]SuffixRef {
	out := make(map[int][]SuffixRef)
	for id := lo; id < hi; id++ {
		BucketEach(set.Str(id), w, func(b int, pos int32) {
			if owner[b] == me {
				out[b] = append(out[b], SuffixRef{SID: id, Pos: pos})
			}
		})
	}
	return out
}

// CollectOwnedFrom is CollectOwned restricted to suffixes of strings with
// generation >= from — the incremental path that gathers only a new batch's
// suffixes, to be merged into cached per-bucket lists whose older entries are
// already in place.
func CollectOwnedFrom(set *seq.SetS, w int, owner []int32, me int32, lo, hi seq.StringID, from seq.Gen) map[int][]SuffixRef {
	if s := set.GenStartString(from); s > lo {
		lo = s
	}
	if lo > hi {
		lo = hi
	}
	return CollectOwned(set, w, owner, me, lo, hi)
}

// SortedBucketIDs returns the map's bucket ids in ascending order, for
// deterministic iteration.
func SortedBucketIDs(m map[int][]SuffixRef) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
