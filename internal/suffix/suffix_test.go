package suffix

import (
	"errors"
	"math/rand"
	"testing"

	"pace/internal/seq"
)

// mustSeq parses one sequence or fails the test.
func mustSeq(t testing.TB, s string) seq.Sequence {
	t.Helper()
	p, err := seq.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustSet(t testing.TB, strs ...string) *seq.SetS {
	t.Helper()
	ests := make([]seq.Sequence, len(strs))
	for i, s := range strs {
		var err error
		ests[i], err = seq.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
	}
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func randomSet(t testing.TB, rng *rand.Rand, n, minLen, maxLen int) *seq.SetS {
	t.Helper()
	ests := make([]seq.Sequence, n)
	for i := range ests {
		l := minLen + rng.Intn(maxLen-minLen+1)
		s := make(seq.Sequence, l)
		for j := range s {
			s[j] = seq.Code(rng.Intn(4))
		}
		ests[i] = s
	}
	set, err := seq.NewSetS(ests)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestValidateWindow(t *testing.T) {
	if err := ValidateWindow(0); err == nil {
		t.Error("w=0 must fail")
	}
	if err := ValidateWindow(MaxWindow + 1); err == nil {
		t.Error("too-wide window must fail")
	}
	if err := ValidateWindow(8); err != nil {
		t.Error(err)
	}
}

func TestBucketEachEnumeratesAllLongSuffixes(t *testing.T) {
	s, _ := seq.Parse("ACGTA")
	var got []int32
	var buckets []int
	BucketEach(s, 2, func(b int, pos int32) {
		got = append(got, pos)
		buckets = append(buckets, b)
	})
	if len(got) != 4 {
		t.Fatalf("want 4 suffixes, got %v", got)
	}
	// Bucket of suffix at pos 0 is "AC" = 0*4+1 = 1.
	if buckets[0] != 1 {
		t.Errorf("bucket(AC) = %d", buckets[0])
	}
	// "TA" = 3*4+0 = 12.
	if buckets[3] != 12 {
		t.Errorf("bucket(TA) = %d", buckets[3])
	}
}

func TestBucketEachShortString(t *testing.T) {
	s, _ := seq.Parse("AC")
	called := false
	BucketEach(s, 3, func(int, int32) { called = true })
	if called {
		t.Error("string shorter than w must produce no suffixes")
	}
}

func TestBucketEachMatchesDirectEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		l := 1 + rng.Intn(40)
		s := make(seq.Sequence, l)
		for i := range s {
			s[i] = seq.Code(rng.Intn(4))
		}
		w := 1 + rng.Intn(6)
		want := map[int32]int{}
		for p := 0; p+w <= l; p++ {
			id := 0
			for k := 0; k < w; k++ {
				id = id<<2 | int(s[p+k])
			}
			want[int32(p)] = id
		}
		got := map[int32]int{}
		BucketEach(s, w, func(b int, pos int32) { got[pos] = b })
		if len(got) != len(want) {
			t.Fatalf("trial %d: count %d want %d", trial, len(got), len(want))
		}
		for p, b := range want {
			if got[p] != b {
				t.Fatalf("trial %d pos %d: %d want %d", trial, p, got[p], b)
			}
		}
	}
}

func TestHistogramTotal(t *testing.T) {
	set := mustSet(t, "ACGTACGT", "GGGTTT")
	w := 3
	hist := Histogram(set, w, 0, seq.StringID(set.NumStrings()))
	var total int64
	for _, c := range hist {
		total += c
	}
	// Each string of length L contributes L-w+1 suffixes; both
	// orientations counted.
	want := int64(2*(8-3+1) + 2*(6-3+1))
	if total != want {
		t.Errorf("histogram total %d want %d", total, want)
	}
}

func TestAssignBalance(t *testing.T) {
	hist := []int64{100, 90, 50, 40, 10, 5, 0, 0}
	owner := Assign(hist, 3)
	if owner[6] != -1 || owner[7] != -1 {
		t.Error("empty buckets must be unassigned")
	}
	loads := Loads(hist, owner, 3)
	var min, max int64 = loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// LPT on this instance yields {100, 95, 100}.
	if max-min > 10 {
		t.Errorf("imbalance too high: %v", loads)
	}
}

func TestAssignSingleWorker(t *testing.T) {
	hist := []int64{3, 0, 7}
	owner := Assign(hist, 1)
	if owner[0] != 0 || owner[2] != 0 || owner[1] != -1 {
		t.Errorf("owner: %v", owner)
	}
}

func TestCollectOwnedCoversEverySuffixExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	set := randomSet(t, rng, 10, 20, 60)
	w := 4
	hist := Histogram(set, w, 0, seq.StringID(set.NumStrings()))
	p := 3
	owner := Assign(hist, p)
	seen := map[SuffixRef]int{}
	var total int
	for me := int32(0); me < int32(p); me++ {
		m := CollectOwned(set, w, owner, me, 0, seq.StringID(set.NumStrings()))
		for b, refs := range m {
			if owner[b] != me {
				t.Fatalf("bucket %d collected by non-owner %d", b, me)
			}
			for _, r := range refs {
				seen[r]++
				total++
			}
		}
	}
	var want int
	for id := 0; id < set.NumStrings(); id++ {
		if l := len(set.Str(seq.StringID(id))); l >= w {
			want += l - w + 1
		}
	}
	if total != want {
		t.Fatalf("collected %d suffixes, want %d", total, want)
	}
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("suffix %v collected %d times", r, c)
		}
	}
}

func buildAll(t testing.TB, set *seq.SetS, w int) []*Tree {
	t.Helper()
	m := CollectOwned(set, w, Assign(Histogram(set, w, 0, seq.StringID(set.NumStrings())), 1), 0,
		0, seq.StringID(set.NumStrings()))
	forest, err := BuildForest(set, m, w)
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

func TestBuildSingleSuffixBucket(t *testing.T) {
	set := mustSet(t, "ACG")
	tr, err := Build(set, 0, []SuffixRef{{SID: 0, Pos: 0}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || !tr.IsLeaf(0) {
		t.Fatalf("singleton bucket tree: %+v", tr.Nodes)
	}
	if tr.Nodes[0].Depth != 3 {
		t.Errorf("leaf depth %d want 3", tr.Nodes[0].Depth)
	}
}

func TestBuildRejectsEmptyAndShort(t *testing.T) {
	set := mustSet(t, "ACG")
	if _, err := Build(set, 0, nil, 2); err == nil {
		t.Error("empty bucket must fail")
	}
	if _, err := Build(set, 0, []SuffixRef{{SID: 0, Pos: 2}}, 2); err == nil {
		t.Error("too-short suffix must fail")
	}
}

func TestBuildIdenticalSuffixes(t *testing.T) {
	// Two identical ESTs: every suffix appears twice; identical suffixes
	// must split at an internal node with terminator leaves.
	set := mustSet(t, "ACGT", "ACGT")
	forest := buildAll(t, set, 2)
	leaves := 0
	for _, tr := range forest {
		if err := tr.Verify(set); err != nil {
			t.Fatalf("bucket %d: %v", tr.Bucket, err)
		}
		leaves += tr.NumLeaves()
	}
	// 4 strings (two ESTs + two rc) of length 4, w=2 → 3 suffixes each.
	if leaves != 12 {
		t.Errorf("leaves %d want 12", leaves)
	}
}

func TestForestLeafCountsMatchSuffixCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	set := randomSet(t, rng, 12, 30, 80)
	w := 3
	forest := buildAll(t, set, w)
	leaves := 0
	for _, tr := range forest {
		if err := tr.Verify(set); err != nil {
			t.Fatalf("bucket %d: %v", tr.Bucket, err)
		}
		leaves += tr.NumLeaves()
	}
	want := 0
	for id := 0; id < set.NumStrings(); id++ {
		want += len(set.Str(seq.StringID(id))) - w + 1
	}
	if leaves != want {
		t.Errorf("forest leaves %d want %d", leaves, want)
	}
}

func TestTreeNavigation(t *testing.T) {
	// Strings chosen so bucket "AC" holds suffixes ACA, ACC (from two
	// strings) giving one internal node with two leaf children.
	set := mustSet(t, "ACAG", "ACCG")
	w := 2
	m := CollectOwned(set, w, Assign(Histogram(set, w, 0, 4), 1), 0, 0, 4)
	acBucket := 0<<2 | 1 // "AC"
	refs := m[acBucket]
	if len(refs) != 2 {
		t.Fatalf("AC bucket should hold 2 suffixes, got %v", refs)
	}
	tr, err := Build(set, acBucket, refs, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(set); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || tr.IsLeaf(0) {
		t.Fatalf("shape: %+v", tr.Nodes)
	}
	if tr.Nodes[0].Depth != 2 {
		t.Errorf("root depth %d want 2 (label AC)", tr.Nodes[0].Depth)
	}
	kids := tr.Children(0, nil)
	if len(kids) != 2 || kids[0] != 1 || kids[1] != 2 {
		t.Errorf("children: %v", kids)
	}
	if tr.PathLabel(set, 0).String() != "AC" {
		t.Errorf("root label %q", tr.PathLabel(set, 0).String())
	}
}

// Every suffix must appear as exactly one leaf across the forest, and each
// leaf's path label must equal its suffix.
func TestForestLeavesAreExactlyTheSuffixes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	set := randomSet(t, rng, 8, 25, 60)
	w := 4
	forest := buildAll(t, set, w)
	seen := map[SuffixRef]bool{}
	for _, tr := range forest {
		for i := range tr.Nodes {
			if !tr.IsLeaf(int32(i)) {
				continue
			}
			n := tr.Nodes[i]
			r := SuffixRef{SID: n.SID, Pos: n.Pos}
			if seen[r] {
				t.Fatalf("suffix %v appears twice", r)
			}
			seen[r] = true
			if !tr.PathLabel(set, int32(i)).Equal(set.Suffix(n.SID, n.Pos)) {
				t.Fatalf("leaf label != suffix for %v", r)
			}
		}
	}
	for id := 0; id < set.NumStrings(); id++ {
		l := len(set.Str(seq.StringID(id)))
		for p := 0; p+w <= l; p++ {
			if !seen[SuffixRef{SID: seq.StringID(id), Pos: int32(p)}] {
				t.Fatalf("suffix (%d,%d) missing from forest", id, p)
			}
		}
	}
}

// Internal nodes must be branching: no child may carry the subtree's whole
// leaf set (checked by Verify's >=2-children rule across random inputs).
func TestVerifyRandomForests(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		set := randomSet(t, rng, 3+rng.Intn(10), 15, 50)
		w := 2 + rng.Intn(4)
		for _, tr := range buildAll(t, set, w) {
			if err := tr.Verify(set); err != nil {
				t.Fatalf("trial %d bucket %d: %v", trial, tr.Bucket, err)
			}
		}
	}
}

func TestNumBuckets(t *testing.T) {
	if NumBuckets(1) != 4 || NumBuckets(8) != 65536 {
		t.Error("NumBuckets wrong")
	}
}

func BenchmarkBuildForest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	set := randomSet(b, rng, 200, 400, 700)
	w := 8
	owner := Assign(Histogram(set, w, 0, seq.StringID(set.NumStrings())), 1)
	m := CollectOwned(set, w, owner, 0, 0, seq.StringID(set.NumStrings()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildForest(set, m, w); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBuildEmptyBucketSentinel(t *testing.T) {
	set := mustSet(t, "ACG")
	_, err := Build(set, 7, nil, 2)
	if !errors.Is(err, ErrEmptyBucket) {
		t.Fatalf("Build(empty) = %v, want ErrEmptyBucket", err)
	}
}

func TestBuildForestSkipsEmptyBuckets(t *testing.T) {
	set := mustSet(t, "ACGT")
	m := map[int][]SuffixRef{
		0: nil, // legitimately emptied by an incremental rebuild
		1: {{SID: 0, Pos: 0}},
		9: {},
	}
	forest, err := BuildForest(set, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 1 || forest[0].Bucket != 1 {
		t.Fatalf("forest = %v, want exactly bucket 1", forest)
	}
}

func TestNumLeavesCached(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	set := randomSet(t, rng, 8, 20, 60)
	for _, tr := range buildAll(t, set, 3) {
		if tr.leaves == 0 {
			t.Fatalf("bucket %d: leaf count not cached at build", tr.Bucket)
		}
		if got, want := tr.NumLeaves(), tr.countLeaves(); got != want {
			t.Fatalf("bucket %d: cached NumLeaves %d != scan %d", tr.Bucket, got, want)
		}
	}
	// A hand-assembled tree (no cache) still answers by scanning.
	hand := &Tree{Nodes: []Node{{Depth: 3, RML: 0, SID: 0, Pos: 0}}}
	if hand.NumLeaves() != 1 {
		t.Errorf("hand-made tree NumLeaves = %d, want 1", hand.NumLeaves())
	}
}

func TestHistogramFromCountsOnlyFreshSuffixes(t *testing.T) {
	set := mustSet(t, "ACGTAC", "GGTTAA")
	gen, err := set.Append([]seq.Sequence{mustSeq(t, "ACACAC")})
	if err != nil {
		t.Fatal(err)
	}
	w := 2
	n2 := seq.StringID(set.NumStrings())
	all := Histogram(set, w, 0, n2)
	old := Histogram(set, w, 0, set.GenStartString(gen))
	fresh := HistogramFrom(set, w, gen, 0, n2)
	for b := range all {
		if old[b]+fresh[b] != all[b] {
			t.Fatalf("bucket %d: old %d + fresh %d != all %d", b, old[b], fresh[b], all[b])
		}
	}
}

func TestAssignFreshSkipsUntouchedBuckets(t *testing.T) {
	hist := []int64{10, 5, 0, 7}
	fresh := []int64{0, 2, 0, 1}
	owner := AssignFresh(hist, fresh, 2)
	if owner[0] != -1 {
		t.Errorf("untouched non-empty bucket 0 assigned to %d", owner[0])
	}
	if owner[2] != -1 {
		t.Errorf("empty bucket 2 assigned to %d", owner[2])
	}
	if owner[1] < 0 || owner[3] < 0 {
		t.Errorf("touched buckets unassigned: %v", owner)
	}
}

func TestCollectOwnedFromGathersOnlyFreshSuffixes(t *testing.T) {
	set := mustSet(t, "ACGTACGT", "TTGGCCAA")
	gen, err := set.Append([]seq.Sequence{mustSeq(t, "CAGTCAGT")})
	if err != nil {
		t.Fatal(err)
	}
	w := 2
	n2 := seq.StringID(set.NumStrings())
	owner := Assign(Histogram(set, w, 0, n2), 1)
	freshOnly := CollectOwnedFrom(set, w, owner, 0, 0, n2, gen)
	firstFresh := set.GenStartString(gen)
	total := 0
	for b, refs := range freshOnly {
		for _, r := range refs {
			if r.SID < firstFresh {
				t.Fatalf("bucket %d: collected stale suffix (%d,%d)", b, r.SID, r.Pos)
			}
			total++
		}
	}
	// Two fresh strings (forward + rc) of length 8, w=2 → 7 suffixes each.
	if total != 14 {
		t.Errorf("collected %d fresh suffixes, want 14", total)
	}
}
