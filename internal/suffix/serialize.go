package suffix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pace/internal/seq"
)

// Serialization of bucket subtrees. The format is a fixed little-endian
// layout (magic, version, bucket id, node count, then 16 bytes per node),
// letting a long-lived service checkpoint its constructed forest and reload
// it instead of rebuilding — GST construction is the second-largest
// component in the paper's Table 3.

const (
	magic   = 0x47535431 // "GST1"
	version = 1
)

// WriteTree serializes one tree.
func WriteTree(w io.Writer, t *Tree) error {
	bw := bufio.NewWriter(w)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.Bucket))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(t.Nodes)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, n := range t.Nodes {
		binary.LittleEndian.PutUint32(rec[0:], uint32(n.Depth))
		binary.LittleEndian.PutUint32(rec[4:], uint32(n.RML))
		binary.LittleEndian.PutUint32(rec[8:], uint32(n.SID))
		binary.LittleEndian.PutUint32(rec[12:], uint32(n.Pos))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTree deserializes one tree. It reads exactly the tree's bytes, so
// multiple trees can be streamed back to back; wrap r in a bufio.Reader for
// throughput (ReadForest does).
func ReadTree(r io.Reader) (*Tree, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("suffix: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("suffix: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("suffix: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[12:])
	if count == 0 || count > 1<<40 {
		return nil, fmt.Errorf("suffix: implausible node count %d", count)
	}
	t := &Tree{
		Bucket: int(binary.LittleEndian.Uint32(hdr[8:])),
		Nodes:  make([]Node, count),
	}
	var rec [16]byte
	for i := range t.Nodes {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("suffix: reading node %d: %w", i, err)
		}
		t.Nodes[i] = Node{
			Depth: int32(binary.LittleEndian.Uint32(rec[0:])),
			RML:   int32(binary.LittleEndian.Uint32(rec[4:])),
			SID:   seq.StringID(binary.LittleEndian.Uint32(rec[8:])),
			Pos:   int32(binary.LittleEndian.Uint32(rec[12:])),
		}
		if t.Nodes[i].RML < int32(i) || t.Nodes[i].RML >= int32(count) {
			return nil, fmt.Errorf("suffix: node %d has invalid RML %d", i, t.Nodes[i].RML)
		}
	}
	t.leaves = t.countLeaves() // cache once so NumLeaves stays O(1)
	return t, nil
}

// WriteForest serializes a forest: a count followed by each tree.
func WriteForest(w io.Writer, forest []*Tree) error {
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(forest)))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	for _, t := range forest {
		if err := WriteTree(w, t); err != nil {
			return err
		}
	}
	return nil
}

// ReadForest deserializes a forest written by WriteForest.
func ReadForest(rd io.Reader) ([]*Tree, error) {
	r := bufio.NewReader(rd)
	var cnt [8]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("suffix: reading forest count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n > 1<<32 {
		return nil, fmt.Errorf("suffix: implausible forest size %d", n)
	}
	forest := make([]*Tree, 0, n)
	for i := uint64(0); i < n; i++ {
		t, err := ReadTree(r)
		if err != nil {
			return nil, fmt.Errorf("suffix: tree %d: %w", i, err)
		}
		forest = append(forest, t)
	}
	return forest, nil
}

// TreeStats summarizes a forest's structure for diagnostics and capacity
// planning (node counts drive the engine's 16-byte-per-node memory bound).
type TreeStats struct {
	Trees         int
	Nodes         int64
	Leaves        int64
	InternalNodes int64
	MaxDepth      int32
	// Bytes is the DFS-array storage: 16 bytes per node.
	Bytes int64
}

// Stats aggregates structural statistics over a forest.
func Stats(forest []*Tree) TreeStats {
	var st TreeStats
	st.Trees = len(forest)
	for _, t := range forest {
		st.Nodes += int64(len(t.Nodes))
		for i, n := range t.Nodes {
			if t.IsLeaf(int32(i)) {
				st.Leaves++
			} else {
				st.InternalNodes++
			}
			if n.Depth > st.MaxDepth {
				st.MaxDepth = n.Depth
			}
		}
	}
	st.Bytes = 16 * st.Nodes
	return st
}
