package suffix

import (
	"fmt"

	"pace/internal/seq"
)

// Node is one GST node in the DFS-array representation (paper §3.1).
// Sixteen bytes per node: space linear in the input with a small constant.
type Node struct {
	// Depth is the node's string-depth (length of its path label).
	Depth int32
	// RML is the index of the rightmost leaf in the node's subtree.
	// A node is a leaf iff RML points to itself. The first child of an
	// internal node is the next array entry; the next sibling of a node
	// is the entry after its rightmost leaf (none if it shares RML with
	// its parent).
	RML int32
	// SID/Pos name a representative suffix in the node's subtree: the
	// node's path label is Str(SID)[Pos : Pos+Depth]. For a leaf this is
	// the leaf's own suffix.
	SID seq.StringID
	Pos int32
}

// Tree is one bucket's subtree of the conceptual GST, in preorder.
type Tree struct {
	// Bucket is the bucket id this subtree was built from.
	Bucket int
	// Nodes are the tree nodes in depth-first (preorder) order; Nodes[0]
	// is the subtree root.
	Nodes []Node
	// leaves caches the leaf count; Build and ReadTree fill it so NumLeaves
	// need not rescan the node array on every stats or serialization call.
	leaves int
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.Nodes) }

// IsLeaf reports whether node i is a leaf.
func (t *Tree) IsLeaf(i int32) bool { return t.Nodes[i].RML == i }

// FirstChild returns the first child of internal node i.
func (t *Tree) FirstChild(i int32) int32 { return i + 1 }

// NextSibling returns the next sibling of node i under parent p, or -1.
func (t *Tree) NextSibling(i, p int32) int32 {
	if t.Nodes[i].RML == t.Nodes[p].RML {
		return -1
	}
	return t.Nodes[i].RML + 1
}

// Children appends the child indices of node i to buf and returns it.
func (t *Tree) Children(i int32, buf []int32) []int32 {
	if t.IsLeaf(i) {
		return buf
	}
	for c := t.FirstChild(i); c != -1; c = t.NextSibling(c, i) {
		buf = append(buf, c)
	}
	return buf
}

// PathLabel reconstructs the path label of node i from its representative
// suffix.
func (t *Tree) PathLabel(set *seq.SetS, i int32) seq.Sequence {
	n := t.Nodes[i]
	return set.Str(n.SID)[n.Pos : n.Pos+n.Depth]
}

// NumLeaves returns the number of leaves (i.e. suffixes) in the tree. Trees
// from Build or ReadTree answer from a count cached at construction; a tree
// assembled by hand falls back to a scan.
func (t *Tree) NumLeaves() int {
	if t.leaves > 0 || len(t.Nodes) == 0 {
		return t.leaves
	}
	return t.countLeaves()
}

func (t *Tree) countLeaves() int {
	c := 0
	for i := range t.Nodes {
		if t.IsLeaf(int32(i)) {
			c++
		}
	}
	return c
}

// builder constructs one bucket subtree.
type builder struct {
	set   *seq.SetS
	nodes []Node
}

// suffixLen returns the length of the suffix ref.
func (b *builder) suffixLen(r SuffixRef) int32 {
	return int32(len(b.set.Str(r.SID))) - r.Pos
}

// charAt returns the suffix's character at string-depth d; the caller
// guarantees d < suffixLen.
func (b *builder) charAt(r SuffixRef, d int32) seq.Code {
	return b.set.Str(r.SID)[r.Pos+d]
}

// Build constructs the subtree for a bucket's suffixes, which all share
// their first w characters. Construction is the paper's simple
// character-at-a-time recursive bucketing: O(sum of suffix lengths) for the
// bucket, i.e. O(N·l/p) per worker overall — efficient in practice because
// the average EST length l is independent of n.
// Building an empty bucket returns ErrEmptyBucket (wrapped with the bucket
// id); incremental rebuilds legitimately produce such buckets when every
// cached suffix of a bucket belongs to strings that no longer map to it, and
// callers are expected to skip them explicitly rather than fail.
func Build(set *seq.SetS, bucket int, suffixes []SuffixRef, w int) (*Tree, error) {
	if len(suffixes) == 0 {
		return nil, fmt.Errorf("suffix: bucket %d: %w", bucket, ErrEmptyBucket)
	}
	b := &builder{set: set, nodes: make([]Node, 0, 2*len(suffixes))}
	for _, r := range suffixes {
		if b.suffixLen(r) < int32(w) {
			return nil, fmt.Errorf("suffix: suffix (%d,%d) shorter than window %d", r.SID, r.Pos, w)
		}
	}
	b.build(suffixes, int32(w))
	return &Tree{Bucket: bucket, Nodes: b.nodes, leaves: len(suffixes)}, nil
}

// emitLeaf appends a leaf for suffix r (depth = full suffix length).
func (b *builder) emitLeaf(r SuffixRef) {
	i := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Depth: b.suffixLen(r), RML: i, SID: r.SID, Pos: r.Pos})
}

// build adds the subtree for a group of suffixes sharing their first `depth`
// characters. Conceptually every suffix ends with a unique terminator, so
// identical suffixes from different strings split at an internal node whose
// leaf children they become.
func (b *builder) build(group []SuffixRef, depth int32) {
	if len(group) == 1 {
		b.emitLeaf(group[0])
		return
	}
	// Path compression: extend the shared prefix while no suffix ends and
	// all continue with the same character.
	for {
		if b.suffixLen(group[0]) == depth {
			break
		}
		c := b.charAt(group[0], depth)
		same := true
		for _, r := range group[1:] {
			if b.suffixLen(r) == depth || b.charAt(r, depth) != c {
				same = false
				break
			}
		}
		if !same {
			break
		}
		depth++
	}
	// Internal node at this depth; partition the group into suffixes that
	// end here (terminator children) and per-character subgroups.
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Depth: depth, SID: group[0].SID, Pos: group[0].Pos})

	var classes [seq.AlphabetSize][]SuffixRef
	for _, r := range group {
		if b.suffixLen(r) == depth {
			b.emitLeaf(r) // terminator edge: leaf at the same string-depth
			continue
		}
		c := b.charAt(r, depth)
		classes[c] = append(classes[c], r)
	}
	for c := 0; c < seq.AlphabetSize; c++ {
		if len(classes[c]) > 0 {
			b.build(classes[c], depth+1)
		}
	}
	b.nodes[self].RML = int32(len(b.nodes)) - 1
}

// BuildForest builds the subtree of every bucket in the map, in ascending
// bucket order. Buckets whose suffix list is empty are skipped: incremental
// rebuilds can leave such entries behind, and they carry no subtree.
func BuildForest(set *seq.SetS, byBucket map[int][]SuffixRef, w int) ([]*Tree, error) {
	ids := SortedBucketIDs(byBucket)
	forest := make([]*Tree, 0, len(ids))
	for _, id := range ids {
		if len(byBucket[id]) == 0 {
			continue
		}
		t, err := Build(set, id, byBucket[id], w)
		if err != nil {
			return nil, err
		}
		forest = append(forest, t)
	}
	return forest, nil
}

// Verify checks the structural invariants of a tree against the sequence
// set; it is O(total suffix length) and intended for tests and debugging.
func (t *Tree) Verify(set *seq.SetS) error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("suffix: empty tree")
	}
	var walk func(i int32) (next int32, err error)
	walk = func(i int32) (int32, error) {
		n := t.Nodes[i]
		if n.RML < i || int(n.RML) >= len(t.Nodes) {
			return 0, fmt.Errorf("node %d: RML %d out of range", i, n.RML)
		}
		if int(n.Pos+n.Depth) > len(set.Str(n.SID)) {
			return 0, fmt.Errorf("node %d: representative overruns string", i)
		}
		if t.IsLeaf(i) {
			if n.Depth != int32(len(set.Str(n.SID)))-n.Pos {
				return 0, fmt.Errorf("leaf %d: depth %d is not its suffix length", i, n.Depth)
			}
			return i + 1, nil
		}
		label := t.PathLabel(set, i)
		nChildren := 0
		for c := t.FirstChild(i); c != -1; c = t.NextSibling(c, i) {
			nChildren++
			cn := t.Nodes[c]
			if cn.Depth < n.Depth {
				return 0, fmt.Errorf("child %d shallower than parent %d", c, i)
			}
			if cn.Depth == n.Depth && !t.IsLeaf(c) {
				return 0, fmt.Errorf("internal child %d at same depth as parent %d", c, i)
			}
			childPrefix := set.Str(cn.SID)[cn.Pos : cn.Pos+n.Depth]
			if !childPrefix.Equal(label) {
				return 0, fmt.Errorf("child %d does not extend parent %d's label", c, i)
			}
			if _, err := walk(c); err != nil {
				return 0, err
			}
		}
		if nChildren < 2 {
			return 0, fmt.Errorf("internal node %d has %d children", i, nChildren)
		}
		return n.RML + 1, nil
	}
	next, err := walk(0)
	if err != nil {
		return err
	}
	if int(next) != len(t.Nodes) {
		return fmt.Errorf("walk covered %d of %d nodes", next, len(t.Nodes))
	}
	return nil
}
