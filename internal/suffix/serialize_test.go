package suffix

import (
	"bytes"
	"math/rand"
	"testing"

	"pace/internal/seq"
)

func buildTestForest(t testing.TB, seed int64) ([]*Tree, *seq.SetS) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	set := randomSet(t, rng, 10, 30, 70)
	w := 4
	hi := seq.StringID(set.NumStrings())
	owner := Assign(Histogram(set, w, 0, hi), 1)
	m := CollectOwned(set, w, owner, 0, 0, hi)
	forest, err := BuildForest(set, m, w)
	if err != nil {
		t.Fatal(err)
	}
	return forest, set
}

func TestTreeRoundTrip(t *testing.T) {
	forest, set := buildTestForest(t, 1)
	for _, tr := range forest[:3] {
		var buf bytes.Buffer
		if err := WriteTree(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTree(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Bucket != tr.Bucket || len(got.Nodes) != len(tr.Nodes) {
			t.Fatalf("shape: %d/%d vs %d/%d", got.Bucket, len(got.Nodes), tr.Bucket, len(tr.Nodes))
		}
		for i := range tr.Nodes {
			if got.Nodes[i] != tr.Nodes[i] {
				t.Fatalf("node %d differs", i)
			}
		}
		if err := got.Verify(set); err != nil {
			t.Fatal(err)
		}
	}
}

func TestForestRoundTrip(t *testing.T) {
	forest, set := buildTestForest(t, 2)
	var buf bytes.Buffer
	if err := WriteForest(&buf, forest); err != nil {
		t.Fatal(err)
	}
	got, err := ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(forest) {
		t.Fatalf("forest size %d want %d", len(got), len(forest))
	}
	for k := range forest {
		if got[k].Bucket != forest[k].Bucket || len(got[k].Nodes) != len(forest[k].Nodes) {
			t.Fatalf("tree %d shape differs", k)
		}
		if err := got[k].Verify(set); err != nil {
			t.Fatalf("tree %d: %v", k, err)
		}
	}
}

func TestReadTreeRejectsCorruption(t *testing.T) {
	forest, _ := buildTestForest(t, 3)
	var buf bytes.Buffer
	if err := WriteTree(&buf, forest[0]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF // magic
	if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}

	bad = append([]byte(nil), data...)
	bad[4] = 99 // version
	if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}

	if _, err := ReadTree(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Error("truncated stream accepted")
	}

	// Corrupt an RML to an out-of-range value.
	bad = append([]byte(nil), data...)
	bad[20+4] = 0xFF
	bad[20+5] = 0xFF
	bad[20+6] = 0xFF
	bad[20+7] = 0x7F
	if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
		t.Error("invalid RML accepted")
	}
}

func TestStats(t *testing.T) {
	forest, set := buildTestForest(t, 4)
	st := Stats(forest)
	if st.Trees != len(forest) {
		t.Errorf("trees %d", st.Trees)
	}
	if st.Nodes != st.Leaves+st.InternalNodes {
		t.Errorf("node split: %d != %d + %d", st.Nodes, st.Leaves, st.InternalNodes)
	}
	// Leaves == total suffixes of length >= w.
	var want int64
	for id := 0; id < set.NumStrings(); id++ {
		if l := len(set.Str(seq.StringID(id))); l >= 4 {
			want += int64(l - 4 + 1)
		}
	}
	if st.Leaves != want {
		t.Errorf("leaves %d want %d", st.Leaves, want)
	}
	if st.Bytes != 16*st.Nodes {
		t.Errorf("bytes accounting")
	}
	if st.MaxDepth < 30 {
		t.Errorf("max depth %d implausible for strings up to 70", st.MaxDepth)
	}
}
