package mp

// Tests for the deterministic fault-injection transport and the transient-
// error retry layer.

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestFaultCrashDeterministic: the crash fires on the scheduled tagged op,
// the crashed rank's later ops stay dead, and two runs with the same plan
// behave identically.
func TestFaultCrashDeterministic(t *testing.T) {
	for _, mode := range []Mode{ModeReal, ModeSim} {
		name := "real"
		if mode == ModeSim {
			name = "sim"
		}
		t.Run(name, func(t *testing.T) {
			runOnce := func() (int, error) {
				cfg := simTestConfig(2)
				cfg.Mode = mode
				cfg.Fault = &FaultPlan{Seed: 42, CrashRank: 1, CrashAfter: 3, CrashTag: 7}
				delivered := 0
				err := runWithWatchdog(t, 10*time.Second, cfg, func(c *Comm) error {
					if c.Rank() == 1 {
						for i := 0; i < 10; i++ {
							if err := c.Send(0, 7, []byte{byte(i)}); err != nil {
								return err
							}
						}
						return nil
					}
					for {
						m, err := c.Recv(1, 7)
						if err != nil {
							return expectPeerFailure(err)
						}
						if int(m.Data[0]) != delivered {
							return fmt.Errorf("out-of-order delivery %d at %d", m.Data[0], delivered)
						}
						delivered++
					}
				})
				return delivered, err
			}
			d1, err1 := runOnce()
			d2, err2 := runOnce()
			if !errors.Is(err1, ErrInjectedCrash) {
				t.Fatalf("want ErrInjectedCrash root cause, got %v", err1)
			}
			if d1 != 2 {
				t.Errorf("crash after 3rd tagged send should deliver 2 messages, got %d", d1)
			}
			if d1 != d2 || !errors.Is(err2, ErrInjectedCrash) {
				t.Errorf("non-deterministic: run1 (%d, %v) vs run2 (%d, %v)", d1, err1, d2, err2)
			}
		})
	}
}

// TestFaultDropDupAccounting: with a fixed seed the drop/dup tallies are
// reproducible and the delivered count is exactly sent - drops + dups.
func TestFaultDropDupAccounting(t *testing.T) {
	const n = 200
	runOnce := func(t *testing.T, mode Mode) (int64, int64, int) {
		var stats FaultStats
		cfg := simTestConfig(2)
		cfg.Mode = mode
		cfg.Fault = &FaultPlan{Seed: 7, DropProb: 0.2, DupProb: 0.1, Stats: &stats}
		received := 0
		err := runWithWatchdog(t, 20*time.Second, cfg, func(c *Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < n; i++ {
					if err := c.Send(1, 5, []byte{1}); err != nil {
						return err
					}
				}
				return nil
			}
			for {
				_, err := c.RecvTimeout(0, 5, time.Second)
				if errors.Is(err, ErrTimeout) {
					return nil
				}
				if err != nil {
					return err
				}
				received++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Drops.Load(), stats.Dups.Load(), received
	}
	for _, mode := range []Mode{ModeReal, ModeSim} {
		name := "real"
		if mode == ModeSim {
			name = "sim"
		}
		t.Run(name, func(t *testing.T) {
			drops, dups, received := runOnce(t, mode)
			if drops == 0 || dups == 0 {
				t.Fatalf("expected some injections: drops=%d dups=%d", drops, dups)
			}
			if want := n - int(drops) + int(dups); received != want {
				t.Errorf("received %d, want sent - drops + dups = %d", received, want)
			}
			drops2, dups2, received2 := runOnce(t, mode)
			if drops != drops2 || dups != dups2 || received != received2 {
				t.Errorf("non-deterministic injection: (%d,%d,%d) vs (%d,%d,%d)",
					drops, dups, received, drops2, dups2, received2)
			}
		})
	}
}

// TestFaultDelayChargesVirtualTime: a delayed send pushes the receiver's
// virtual delivery time out by the injected delay.
func TestFaultDelayChargesVirtualTime(t *testing.T) {
	var stats FaultStats
	cfg := simTestConfig(2)
	cfg.Fault = &FaultPlan{Seed: 1, DelayProb: 1, Delay: 10 * time.Millisecond, Stats: &stats}
	err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, []byte("slow"))
		}
		if _, err := c.Recv(0, 3); err != nil {
			return err
		}
		if got := c.Elapsed(); got < 10*time.Millisecond {
			return fmt.Errorf("delivery at %v, want >= injected delay", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delays.Load() != 1 {
		t.Errorf("Delays = %d, want 1", stats.Delays.Load())
	}
}

// TestRetryRecoversTransients: bounded transient errors are absorbed by the
// backoff loop and the payload still arrives intact.
func TestRetryRecoversTransients(t *testing.T) {
	for _, mode := range []Mode{ModeReal, ModeSim} {
		name := "real"
		if mode == ModeSim {
			name = "sim"
		}
		t.Run(name, func(t *testing.T) {
			var stats FaultStats
			cfg := simTestConfig(2)
			cfg.Mode = mode
			cfg.Fault = &FaultPlan{Seed: 3, TransientProb: 1, TransientMax: 2, Stats: &stats}
			cfg.Retry = RetryConfig{MaxAttempts: 5, BaseDelay: 10 * time.Microsecond, Seed: 9}
			err := runWithWatchdog(t, 10*time.Second, cfg, func(c *Comm) error {
				if c.Rank() == 0 {
					if err := c.Send(1, 4, []byte("survives")); err != nil {
						return err
					}
				} else {
					m, err := c.Recv(0, 4)
					if err != nil {
						return err
					}
					if string(m.Data) != "survives" {
						return fmt.Errorf("payload corrupted: %q", m.Data)
					}
				}
				if c.Retries() == 0 {
					return errors.New("expected transient retries to be recorded")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Transients.Load() != 4 {
				t.Errorf("Transients = %d, want 2 per rank", stats.Transients.Load())
			}
		})
	}
}

// TestRetryExhaustedFailsStop: when transients outlast the attempt budget
// the error surfaces (fail-stop), wrapping ErrTransient.
func TestRetryExhaustedFailsStop(t *testing.T) {
	cfg := simTestConfig(2)
	cfg.Mode = ModeReal
	cfg.Fault = &FaultPlan{Seed: 3, TransientProb: 1} // unlimited transients
	cfg.Retry = RetryConfig{MaxAttempts: 3, BaseDelay: 10 * time.Microsecond}
	err := runWithWatchdog(t, 10*time.Second, cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 4, nil) // exhausts the budget, surfaces ErrTransient
		}
		_, err := c.Recv(0, 4)
		return err
	})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient after exhausted retries, got %v", err)
	}
}

// TestNoRetryFailsFast: with retries disarmed the first transient error is
// final.
func TestNoRetryFailsFast(t *testing.T) {
	cfg := simTestConfig(1)
	cfg.Mode = ModeReal
	cfg.Fault = &FaultPlan{Seed: 3, TransientProb: 1}
	err := Run(cfg, func(c *Comm) error {
		err := c.Send(0, 1, nil)
		if !errors.Is(err, ErrTransient) {
			return fmt.Errorf("want immediate ErrTransient, got %v", err)
		}
		if c.Retries() != 0 {
			return errors.New("no retries should have happened")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultPlanValidation: malformed plans are rejected before any rank runs.
func TestFaultPlanValidation(t *testing.T) {
	cfg := Config{Procs: 1, Mode: ModeReal, Fault: &FaultPlan{DropProb: 1.5}}
	if err := Run(cfg, func(*Comm) error { return nil }); err == nil {
		t.Error("DropProb > 1 must fail validation")
	}
	cfg.Fault = &FaultPlan{CrashAfter: -1}
	if err := Run(cfg, func(*Comm) error { return nil }); err == nil {
		t.Error("negative CrashAfter must fail validation")
	}
}
