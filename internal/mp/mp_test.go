package mp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/testutil"
)

// simTestConfig: deterministic simulation (no measured compute).
func simTestConfig(p int) Config {
	return Config{
		Procs:        p,
		Mode:         ModeSim,
		Latency:      100 * time.Microsecond,
		ByteTime:     10 * time.Nanosecond,
		SendOverhead: time.Microsecond,
	}
}

func bothModes(t *testing.T, p int, name string, body func(c *Comm) error) {
	t.Helper()
	for _, cfg := range []Config{{Procs: p, Mode: ModeReal}, simTestConfig(p)} {
		mode := "real"
		if cfg.Mode == ModeSim {
			mode = "sim"
		}
		t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
			testutil.CheckGoroutines(t)
			if err := Run(cfg, body); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(Config{Procs: 0}, func(*Comm) error { return nil }); err == nil {
		t.Error("zero procs must fail")
	}
	if err := Run(Config{Procs: 1, Mode: Mode(9)}, func(*Comm) error { return nil }); err == nil {
		t.Error("bad mode must fail")
	}
}

func TestPingPong(t *testing.T) {
	bothModes(t, 2, "pingpong", func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("ping")); err != nil {
				return err
			}
			m, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			if string(m.Data) != "pong" || m.From != 1 {
				return fmt.Errorf("bad reply %+v", m)
			}
		} else {
			m, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(m.Data) != "ping" {
				return fmt.Errorf("bad ping %+v", m)
			}
			return c.Send(0, 8, []byte("pong"))
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	bothModes(t, 2, "tags", func(c *Comm) error {
		if c.Rank() == 0 {
			// Send tag 2 first, then tag 1; receiver asks tag 1 first.
			if err := c.Send(1, 2, []byte("second")); err != nil {
				return err
			}
			return c.Send(1, 1, []byte("first"))
		}
		m1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		m2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if string(m1.Data) != "first" || string(m2.Data) != "second" {
			return fmt.Errorf("tag matching broken: %q %q", m1.Data, m2.Data)
		}
		return nil
	})
}

func TestAnySource(t *testing.T) {
	const p = 5
	bothModes(t, p, "anysource", func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < p-1; i++ {
				m, err := c.Recv(AnySource, 3)
				if err != nil {
					return err
				}
				if seen[m.From] {
					return fmt.Errorf("duplicate sender %d", m.From)
				}
				seen[m.From] = true
			}
			return nil
		}
		return c.Send(0, 3, []byte{byte(c.Rank())})
	})
}

func TestFIFOPerSource(t *testing.T) {
	bothModes(t, 2, "fifo", func(c *Comm) error {
		const k = 20
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				// Vary message size so a naive earliest-delivery
				// policy would reorder; FIFO must hold anyway.
				data := make([]byte, 1+(k-i)*100)
				data[0] = byte(i)
				if err := c.Send(1, 5, data); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			m, err := c.Recv(0, 5)
			if err != nil {
				return err
			}
			if int(m.Data[0]) != i {
				return fmt.Errorf("overtaking: got %d want %d", m.Data[0], i)
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 13} {
		for root := 0; root < p; root += 3 {
			p, root := p, root
			bothModes(t, p, fmt.Sprintf("bcast_p%d_r%d", p, root), func(c *Comm) error {
				var data []byte
				if c.Rank() == root {
					data = []byte{42, 43}
				}
				got, err := c.Bcast(root, data)
				if err != nil {
					return err
				}
				if len(got) != 2 || got[0] != 42 || got[1] != 43 {
					return fmt.Errorf("rank %d got %v", c.Rank(), got)
				}
				return nil
			})
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 9} {
		p := p
		bothModes(t, p, fmt.Sprintf("allreduce_p%d", p), func(c *Comm) error {
			vals := []int64{int64(c.Rank() + 1), int64(10 * c.Rank()), 1}
			got, err := c.AllreduceSumInt64(vals)
			if err != nil {
				return err
			}
			wantA := int64(p * (p + 1) / 2)
			wantB := int64(10 * p * (p - 1) / 2)
			if got[0] != wantA || got[1] != wantB || got[2] != int64(p) {
				return fmt.Errorf("rank %d: got %v want [%d %d %d]", c.Rank(), got, wantA, wantB, p)
			}
			return nil
		})
	}
}

func TestBarrier(t *testing.T) {
	const p = 6
	var phase int64
	// All ranks bump the counter, hit the barrier, then verify everyone
	// bumped before anyone proceeded.
	bothModes(t, p, "barrier", func(c *Comm) error {
		atomic.AddInt64(&phase, 1)
		if err := c.Barrier(); err != nil {
			return err
		}
		// Nobody bumps after its barrier, so the count must be a full
		// multiple of p for every rank that got through.
		if v := atomic.LoadInt64(&phase); v%p != 0 {
			return fmt.Errorf("barrier leaked: phase=%d", v)
		}
		// Back-to-back barriers must not interfere with each other.
		return c.Barrier()
	})
}

func TestGatherBytes(t *testing.T) {
	const p = 5
	bothModes(t, p, "gather", func(c *Comm) error {
		// Two back-to-back gathers must not interleave.
		for round := 0; round < 2; round++ {
			payload := []byte{byte(c.Rank()), byte(round)}
			out, err := c.GatherBytes(2, payload)
			if err != nil {
				return err
			}
			if c.Rank() != 2 {
				continue
			}
			for r := 0; r < p; r++ {
				if int(out[r][0]) != r || int(out[r][1]) != round {
					return fmt.Errorf("round %d rank %d: %v", round, r, out[r])
				}
			}
		}
		return nil
	})
}

func TestProbe(t *testing.T) {
	bothModes(t, 2, "probe", func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 9, []byte("x"))
		}
		// Poll until the message is visible, then receive it.
		for {
			ok, err := c.Probe(0, 9)
			if err != nil {
				return err
			}
			if ok {
				break
			}
		}
		_, err := c.Recv(0, 9)
		return err
	})
}

func TestInvalidPeers(t *testing.T) {
	err := Run(Config{Procs: 1, Mode: ModeReal}, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("send to bad rank must fail")
		}
		if _, err := c.Recv(9, 0); err == nil {
			return errors.New("recv from bad rank must fail")
		}
		if _, err := c.Probe(-2, 0); err == nil {
			return errors.New("probe of bad rank must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagates(t *testing.T) {
	err := Run(simTestConfig(2), func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Rank 0 would block forever; the panic must surface instead of
		// hanging (rank 0 then deadlocks, which is also an error).
		_, err := c.Recv(1, 1)
		return err
	})
	if err == nil {
		t.Fatal("want error from panicking rank")
	}
}

func TestSimDeadlockDetected(t *testing.T) {
	err := Run(simTestConfig(2), func(c *Comm) error {
		_, err := c.Recv((c.Rank()+1)%2, 1) // both wait, nobody sends
		return err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestSimVirtualTimeAdvances(t *testing.T) {
	cfg := simTestConfig(2)
	times, err := RunTimed(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			c.ChargeCompute(3 * time.Millisecond)
			return c.Send(1, 1, make([]byte, 1000))
		}
		m, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		_ = m
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver completes at sender compute (3ms) + latency (100µs) +
	// 1000 bytes * 10ns (10µs).
	want := 3*time.Millisecond + 100*time.Microsecond + 10*time.Microsecond
	if times[1] != want {
		t.Errorf("receiver clock %v want %v", times[1], want)
	}
	if times[0] != 3*time.Millisecond+cfg.SendOverhead {
		t.Errorf("sender clock %v", times[0])
	}
}

func TestSimProbeExactness(t *testing.T) {
	// Receiver probes at a virtual time before the message could have
	// been delivered: probe must say no; after charging past the delivery
	// time it must say yes.
	err := Run(simTestConfig(2), func(c *Comm) error {
		if c.Rank() == 0 {
			c.ChargeCompute(time.Millisecond)
			return c.Send(1, 1, nil)
		}
		ok, err := c.Probe(0, 1)
		if err != nil {
			return err
		}
		if ok {
			return errors.New("probe at t≈0 must not see a message sent at t=1ms")
		}
		c.ChargeCompute(2 * time.Millisecond)
		ok, err = c.Probe(0, 1)
		if err != nil {
			return err
		}
		if !ok {
			return errors.New("probe at t≈2ms must see the message")
		}
		_, err = c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimRecvWaitsForVirtualDelivery(t *testing.T) {
	times, err := RunTimed(simTestConfig(2), func(c *Comm) error {
		if c.Rank() == 0 {
			c.ChargeCompute(5 * time.Millisecond)
			return c.Send(1, 1, nil)
		}
		_, err := c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if times[1] < 5*time.Millisecond {
		t.Errorf("receiver finished at %v, before the send happened", times[1])
	}
}

func TestSimMeasuredCompute(t *testing.T) {
	cfg := simTestConfig(1)
	cfg.MeasureCompute = true
	times, err := RunTimed(cfg, func(c *Comm) error {
		deadline := time.Now().Add(20 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if times[0] < 15*time.Millisecond {
		t.Errorf("measured compute %v, expected ≈20ms", times[0])
	}
}

func TestSimComputeScale(t *testing.T) {
	cfg := simTestConfig(1)
	cfg.MeasureCompute = true
	cfg.ComputeScale = 3
	times, err := RunTimed(cfg, func(c *Comm) error {
		deadline := time.Now().Add(10 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if times[0] < 25*time.Millisecond {
		t.Errorf("scaled compute %v, expected ≈30ms", times[0])
	}
}

// A compute-bound workload split over p simulated ranks must show near-linear
// virtual speedup — the property the Figure 6a reproduction rests on.
func TestSimSpeedupShape(t *testing.T) {
	runtimeFor := func(p int) time.Duration {
		cfg := simTestConfig(p)
		times, err := RunTimed(cfg, func(c *Comm) error {
			c.ChargeCompute(time.Duration(1000/p) * time.Millisecond)
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return MaxTime(times)
	}
	t1, t4, t16 := runtimeFor(1), runtimeFor(4), runtimeFor(16)
	if ratio := float64(t1) / float64(t4); ratio < 3.5 || ratio > 4.5 {
		t.Errorf("speedup at p=4: %.2f", ratio)
	}
	if ratio := float64(t1) / float64(t16); ratio < 12 || ratio > 18 {
		t.Errorf("speedup at p=16: %.2f", ratio)
	}
}

func TestEncodeDecodeInt64s(t *testing.T) {
	vals := []int64{0, -1, 1 << 40, -(1 << 50), 7}
	got, err := DecodeInt64s(EncodeInt64s(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatal("length")
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("at %d: %d != %d", i, got[i], vals[i])
		}
	}
	if _, err := DecodeInt64s(make([]byte, 9)); err == nil {
		t.Error("ragged buffer must fail")
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime([]time.Duration{3, 9, 2}) != 9 {
		t.Error("MaxTime wrong")
	}
	if MaxTime(nil) != 0 {
		t.Error("empty MaxTime")
	}
}

func BenchmarkSimPingPong(b *testing.B) {
	cfg := simTestConfig(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := Run(cfg, func(c *Comm) error {
			for k := 0; k < 100; k++ {
				if c.Rank() == 0 {
					if err := c.Send(1, 1, nil); err != nil {
						return err
					}
					if _, err := c.Recv(1, 2); err != nil {
						return err
					}
				} else {
					if _, err := c.Recv(0, 1); err != nil {
						return err
					}
					if err := c.Send(0, 2, nil); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
