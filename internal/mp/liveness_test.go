package mp

// Tests for the message-ownership contract (copy-on-send, SendOwned) and
// the liveness features (bounded receives, rank-failure broadcast). The
// buffer-reuse stress test is the contract's lock-in: under the race
// detector it fails against a transport that enqueues the caller's slice
// by reference.

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// runWithWatchdog fails the test if Run does not return within limit —
// the seed behavior for a dead peer was to hang forever.
func runWithWatchdog(t *testing.T, limit time.Duration, cfg Config, body func(c *Comm) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- Run(cfg, body) }()
	select {
	case err := <-done:
		return err
	case <-time.After(limit):
		t.Fatalf("mp.Run still blocked after %v", limit)
		return nil
	}
}

// TestSendBufferReuseStress reuses one encode buffer across every Send while
// receivers concurrently read the delivered payloads. Run under -race this
// locks in copy-on-send: the seed transport aliased sender and receiver and
// raced the moment the buffer was rewritten.
func TestSendBufferReuseStress(t *testing.T) {
	const p = 4
	const rounds = 200
	bothModes(t, p, "reuse", func(c *Comm) error {
		buf := make([]byte, 64)
		next := (c.Rank() + 1) % p
		prev := (c.Rank() - 1 + p) % p
		for i := 0; i < rounds; i++ {
			for k := range buf {
				buf[k] = byte(i + c.Rank())
			}
			if err := c.Send(next, 11, buf); err != nil {
				return err
			}
			// Immediately clobber the buffer: with copy-on-send the
			// receiver must still observe the original contents.
			for k := range buf {
				buf[k] = 0xEE
			}
			m, err := c.Recv(prev, 11)
			if err != nil {
				return err
			}
			want := byte(i + prev)
			for k, v := range m.Data {
				if v != want {
					return fmt.Errorf("round %d byte %d: got %#x want %#x (aliased send buffer)", i, k, v, want)
				}
			}
		}
		return nil
	})
}

func TestSendOwnedDelivers(t *testing.T) {
	bothModes(t, 2, "owned", func(c *Comm) error {
		if c.Rank() == 0 {
			payload := []byte{1, 2, 3}
			return c.SendOwned(1, 4, payload) // ownership transferred; not touched again
		}
		m, err := c.Recv(0, 4)
		if err != nil {
			return err
		}
		if len(m.Data) != 3 || m.Data[0] != 1 || m.Data[2] != 3 {
			return fmt.Errorf("bad payload %v", m.Data)
		}
		return nil
	})
}

func TestSendOwnedInvalidRank(t *testing.T) {
	err := Run(Config{Procs: 1, Mode: ModeReal}, func(c *Comm) error {
		if err := c.SendOwned(3, 0, nil); err == nil {
			return errors.New("SendOwned to bad rank must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutExpiresReal(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, Config{Procs: 1, Mode: ModeReal}, func(c *Comm) error {
		start := time.Now()
		_, err := c.RecvTimeout(0, 1, 30*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("want ErrTimeout, got %v", err)
		}
		if time.Since(start) < 30*time.Millisecond {
			return errors.New("timed out too early")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutDeliversReal(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, Config{Procs: 2, Mode: ModeReal}, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(10 * time.Millisecond)
			return c.Send(1, 2, []byte("late but in time"))
		}
		m, err := c.RecvTimeout(0, 2, 5*time.Second)
		if err != nil {
			return err
		}
		if string(m.Data) != "late but in time" {
			return fmt.Errorf("bad payload %q", m.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// In ModeSim the timeout is virtual: the receiver's clock must land exactly
// on entry-clock + timeout, and a message whose virtual delivery would be
// later than the deadline must not be delivered by the bounded receive.
func TestRecvTimeoutSimVirtual(t *testing.T) {
	cfg := simTestConfig(2)
	times, err := RunTimed(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			c.ChargeCompute(50 * time.Millisecond)
			return c.Send(1, 3, nil)
		}
		_, err := c.RecvTimeout(0, 3, 10*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("want virtual ErrTimeout, got %v", err)
		}
		if got := c.Elapsed(); got != 10*time.Millisecond {
			return fmt.Errorf("clock after timeout = %v, want 10ms", got)
		}
		// The unbounded retry must still get the message at its real
		// virtual delivery time.
		if _, err := c.Recv(0, 3); err != nil {
			return err
		}
		if got := c.Elapsed(); got < 50*time.Millisecond {
			return fmt.Errorf("delivered before virtual send time: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if times[1] < 50*time.Millisecond {
		t.Errorf("receiver clock %v", times[1])
	}
}

// A message deliverable before the deadline is preferred over timing out.
func TestRecvTimeoutSimDeliversEarlierMessage(t *testing.T) {
	err := Run(simTestConfig(2), func(c *Comm) error {
		if c.Rank() == 0 {
			c.ChargeCompute(time.Millisecond)
			return c.Send(1, 3, []byte("x"))
		}
		m, err := c.RecvTimeout(0, 3, time.Hour)
		if err != nil {
			return err
		}
		if string(m.Data) != "x" {
			return fmt.Errorf("bad payload %q", m.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Config.RecvTimeout bounds plain Recv machine-wide.
func TestConfigRecvTimeout(t *testing.T) {
	for _, mode := range []Mode{ModeReal, ModeSim} {
		cfg := simTestConfig(1)
		cfg.Mode = mode
		cfg.RecvTimeout = 20 * time.Millisecond
		err := runWithWatchdog(t, 10*time.Second, cfg, func(c *Comm) error {
			_, err := c.Recv(0, 1)
			if !errors.Is(err, ErrTimeout) {
				return fmt.Errorf("want ErrTimeout from default-bounded Recv, got %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

// The core liveness fix: a rank erroring out must wake every peer blocked in
// an unbounded Recv. On the seed runtime this hung forever in ModeReal.
func TestRankFailureUnblocksRecv(t *testing.T) {
	bodyErr := errors.New("slave exploded")
	for _, mode := range []Mode{ModeReal, ModeSim} {
		cfg := simTestConfig(3)
		cfg.Mode = mode
		err := runWithWatchdog(t, 10*time.Second, cfg, func(c *Comm) error {
			if c.Rank() == 2 {
				return bodyErr
			}
			_, err := c.Recv(2, 7) // would block forever without the broadcast
			return err
		})
		if err == nil {
			t.Fatalf("mode %d: want error", mode)
		}
		// Run must surface the root cause, not the survivors' derived
		// ErrRankFailed errors.
		if !errors.Is(err, bodyErr) {
			t.Errorf("mode %d: got %v, want root cause %v", mode, err, bodyErr)
		}
	}
}

// A panic is broadcast the same way, in both modes.
func TestRankPanicUnblocksRecvReal(t *testing.T) {
	err := runWithWatchdog(t, 10*time.Second, Config{Procs: 2, Mode: ModeReal}, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		_, err := c.Recv(1, 1)
		return err
	})
	if err == nil {
		t.Fatal("want error from panicking rank")
	}
}

// Messages already delivered are still receivable after a peer failure;
// only a receive that would block is aborted.
func TestRankFailureAfterDeliveryReal(t *testing.T) {
	failErr := errors.New("post-send failure")
	err := runWithWatchdog(t, 10*time.Second, Config{Procs: 2, Mode: ModeReal}, func(c *Comm) error {
		if c.Rank() == 1 {
			if err := c.Send(0, 5, []byte("parting gift")); err != nil {
				return err
			}
			return failErr
		}
		// Wait until the failure is certainly recorded, then receive the
		// message that was delivered before it.
		for {
			if _, err := c.Probe(1, 99); err != nil {
				break // probing the dead rank reports its failure
			}
			time.Sleep(time.Millisecond)
		}
		m, err := c.Recv(1, 5)
		if err != nil {
			return fmt.Errorf("delivered message lost after failure: %w", err)
		}
		if string(m.Data) != "parting gift" {
			return fmt.Errorf("bad payload %q", m.Data)
		}
		return nil
	})
	if !errors.Is(err, failErr) {
		t.Fatalf("got %v, want %v", err, failErr)
	}
}
