// Package mp is a message-passing runtime — the substrate standing in for
// the MPI / IBM SP environment the paper's software ran on. It provides
// ranks, tagged point-to-point messaging with any-source receives and
// probing, and O(log p) tree collectives (the paper's "parallel summation
// algorithm in O(log p) communication steps").
//
// Two execution modes share one API:
//
//   - ModeReal: every rank is a goroutine and messages move through in-memory
//     mailboxes; elapsed time is wall-clock. This exercises genuine
//     concurrency on multicore hosts.
//
//   - ModeSim: a conservative discrete-event simulation of a distributed-
//     memory machine. Ranks execute one at a time under a global scheduler
//     that always advances the rank with the minimum virtual clock;
//     communication costs follow a latency + bytes/bandwidth model, and
//     compute sections are charged by measuring their actual execution time
//     (optionally scaled). This reproduces parallel run-time *shape*
//     (speedups, component breakdowns) faithfully even on a single-core
//     host, which is how the paper's 8–128-processor curves are regenerated
//     here.
//
// Message ownership: Send copies the payload before it is enqueued, so a
// caller keeps full ownership of its buffer and may reuse it immediately;
// the receiver owns Msg.Data exclusively. SendOwned is the explicit
// zero-copy opt-in that transfers buffer ownership to the runtime.
//
// Liveness: a rank whose body errors or panics is recorded as failed, so a
// peer whose receive depends on it (a receive from that specific rank, or an
// any-source receive with no other traffic) returns a *RankFailedError
// (wrapping ErrRankFailed) instead of hanging. Failure is per rank: traffic
// among survivors is unaffected, and messages a dead rank sent before dying
// remain receivable. RecvTimeout (or Config.RecvTimeout) bounds individual
// receives with ErrTimeout, in virtual time under ModeSim.
//
// Fault tolerance extras: Config.Retry arms exponential backoff with jitter
// for transient errors, and Config.Fault injects a deterministic fault
// schedule (crashes, drops, duplicates, delays, transients) for chaos
// testing — see FaultPlan.
package mp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// AnySource matches messages from any rank (the paper's master receives
// result/pair messages from whichever slave finishes first).
const AnySource = -1

// Mode selects the execution model.
type Mode int

const (
	// ModeReal runs ranks concurrently with wall-clock timing.
	ModeReal Mode = iota
	// ModeSim runs a discrete-event simulation with virtual time.
	ModeSim
)

// Config parameterizes a run.
type Config struct {
	// Procs is the number of ranks p.
	Procs int
	// Mode selects real or simulated execution.
	Mode Mode

	// RecvTimeout, when positive, bounds every plain Recv (and therefore
	// every collective) on the machine: a receive that would block longer
	// returns ErrTimeout instead of hanging. In ModeSim the bound is in
	// virtual time. Per-call bounds are available via Comm.RecvTimeout.
	RecvTimeout time.Duration

	// Latency is the per-message delivery latency (ModeSim).
	Latency time.Duration
	// ByteTime is the per-byte transfer time, i.e. 1/bandwidth (ModeSim).
	ByteTime time.Duration
	// SendOverhead is the CPU cost charged to a sender per message
	// (ModeSim).
	SendOverhead time.Duration
	// ComputeScale multiplies measured compute time (ModeSim); 0 means 1.
	ComputeScale float64
	// MeasureCompute charges wall-clock compute time between communication
	// calls to the virtual clock (ModeSim). Disable for deterministic
	// tests that charge time explicitly via ChargeCompute.
	MeasureCompute bool

	// Retry arms bounded retries with exponential backoff + jitter for
	// transient Send/Recv errors (errors wrapping ErrTransient). The zero
	// value disables retrying: transient errors fail-stop immediately.
	Retry RetryConfig

	// Fault, when non-nil, wraps the transport in the deterministic
	// fault-injection layer (rank crash after N ops, message
	// drop/duplication/delay, transient errors). Used by chaos tests and
	// the pace -chaos flag; nil in production runs.
	Fault *FaultPlan
}

// DefaultSimConfig models a modest cluster interconnect: 50µs latency,
// ~100 MB/s effective bandwidth.
func DefaultSimConfig(p int) Config {
	return Config{
		Procs:          p,
		Mode:           ModeSim,
		Latency:        50 * time.Microsecond,
		ByteTime:       10 * time.Nanosecond,
		SendOverhead:   5 * time.Microsecond,
		ComputeScale:   1,
		MeasureCompute: true,
	}
}

// Msg is one delivered message. Data is owned exclusively by the receiver:
// the runtime never aliases it with a sender's buffer (see Comm.Send).
type Msg struct {
	From, To int
	Tag      int
	Data     []byte
}

// ErrDeadlock is returned from communication calls when the simulated
// machine has no runnable rank and no deliverable message.
var ErrDeadlock = errors.New("mp: deadlock: all ranks blocked")

// ErrTimeout is returned from a bounded receive that expired before a
// matching message arrived.
var ErrTimeout = errors.New("mp: receive timed out")

// ErrRankFailed is returned from blocking communication calls on the
// surviving ranks after some rank's body returned an error or panicked:
// failures are propagated per rank so no peer hangs waiting for a dead one.
// The concrete error is a *RankFailedError identifying which rank died.
var ErrRankFailed = errors.New("mp: peer rank failed")

// ErrTransient marks a retryable communication fault (injected by the fault
// plan or, in principle, raised by a lossy transport). Comm retries it with
// exponential backoff when Config.Retry is armed; exhausted retries surface
// the error to the caller (fail-stop).
var ErrTransient = errors.New("mp: transient communication error")

// ErrInjectedCrash is the sticky error every operation of a rank returns
// after the fault plan crashed it. The rank's body is expected to propagate
// it, turning the injected crash into an ordinary rank failure.
var ErrInjectedCrash = errors.New("mp: injected rank crash")

// RankFailedError reports the death of a specific peer. It wraps
// ErrRankFailed, so errors.Is(err, ErrRankFailed) still matches; callers that
// need the identity of the dead rank (the cluster master's recovery path)
// extract it with errors.As.
type RankFailedError struct {
	// Rank is the rank that failed.
	Rank int
	// Cause is the failed rank's own error.
	Cause error
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mp: rank %d failed: %v", e.Rank, e.Cause)
}

// Unwrap makes the error match ErrRankFailed.
func (e *RankFailedError) Unwrap() error { return ErrRankFailed }

// RetryConfig arms bounded retries with exponential backoff and jitter for
// transient Send/Recv errors (errors wrapping ErrTransient). Zero value
// disables retries.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per operation; <= 1 disables
	// retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. 0 derives 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. 0 derives 100ms.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic per rank (rank index is mixed in).
	Seed int64
}

func (r RetryConfig) baseDelay() time.Duration {
	if r.BaseDelay > 0 {
		return r.BaseDelay
	}
	return time.Millisecond
}

func (r RetryConfig) maxDelay() time.Duration {
	if r.MaxDelay > 0 {
		return r.MaxDelay
	}
	return 100 * time.Millisecond
}

// transport is the mode-specific engine under a Comm.
type transport interface {
	begin(rank int) error
	send(from, to, tag int, data []byte) error
	recv(rank, from, tag int, timeout time.Duration) (Msg, error)
	probe(rank, from, tag int) (bool, error)
	elapsed(rank int) time.Duration
	charge(rank int, d time.Duration)
	fail(rank int, err error)
	finish(rank int)
	stats(rank int) CommStats
}

// CommStats counts a rank's point-to-point traffic (collectives included,
// since they are built from point-to-point sends) plus receive-wait time and
// collective-operation tallies.
type CommStats struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64

	// RecvWait is the total time this rank spent blocked inside receives —
	// virtual time under ModeSim, wall time under ModeReal. For the paper's
	// master it is idle time; for slaves it measures load imbalance.
	RecvWait time.Duration

	// Collectives tallies the collective operations this rank entered.
	// Counts are recorded at the Comm layer — the same code path for both
	// transports — so sim and real runs of the same program report
	// identical tallies by construction (the per-message byte counts above
	// already agree because collectives decompose into the same
	// deterministic point-to-point sends in both modes).
	Collectives CollectiveStats
}

// CollectiveStats counts collective-operation entries and their total
// latency. Composite collectives tally their constituents too: an
// AllreduceSumInt64 bumps Allreduces, Reduces and Bcasts.
type CollectiveStats struct {
	Bcasts     int64
	Reduces    int64
	Allreduces int64
	Barriers   int64
	Gathers    int64
	Scatters   int64
	Allgathers int64
	// Time is the summed latency across all collective calls (virtual
	// under ModeSim). Nested constituents double-count here by design:
	// Time answers "how long was this rank inside collective code".
	Time time.Duration
}

// Ops returns the total number of collective entries (constituents of
// composite collectives included).
func (c CollectiveStats) Ops() int64 {
	return c.Bcasts + c.Reduces + c.Allreduces + c.Barriers + c.Gathers + c.Scatters + c.Allgathers
}

// add records one message.
func (s *CommStats) addSent(n int) {
	s.MsgsSent++
	s.BytesSent += int64(n)
}

func (s *CommStats) addRecv(n int) {
	s.MsgsRecv++
	s.BytesRecv += int64(n)
}

// Comm is a rank's endpoint, analogous to an MPI communicator + rank.
type Comm struct {
	rank       int
	size       int
	tr         transport
	defTimeout time.Duration
	mode       Mode

	// retry / rng implement bounded exponential backoff for transient
	// errors; retries counts performed retries. A Comm is owned by its
	// rank's goroutine, so plain fields suffice.
	retry   RetryConfig
	rng     *rand.Rand
	retries int64

	// coll accumulates collective tallies (Stats is called by the owning
	// goroutine too).
	coll CollectiveStats
}

// Retries returns how many transient-error retries this rank performed.
func (c *Comm) Retries() int64 { return c.retries }

// backoff sleeps before retry attempt number `attempt` (1-based): an
// exponentially growing delay, capped, with half-range jitter. Under ModeSim
// the delay is charged to the rank's virtual clock instead of sleeping.
func (c *Comm) backoff(attempt int) {
	d := c.retry.baseDelay() << (attempt - 1)
	if maxD := c.retry.maxDelay(); d > maxD || d <= 0 {
		d = maxD
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.retry.Seed + int64(c.rank)*0x9E3779B9))
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	if c.mode == ModeSim {
		c.tr.charge(c.rank, d)
		return
	}
	//pacelint:allow walltime ModeReal backoff sleeps for real; the sim branch above charges virtual time
	time.Sleep(d)
}

// withRetry runs op, retrying errors that wrap ErrTransient with backoff up
// to Retry.MaxAttempts total tries. Non-transient errors and exhausted
// retries are returned as-is (fail-stop).
func (c *Comm) withRetry(op func() error) error {
	err := op()
	if err == nil || c.retry.MaxAttempts <= 1 {
		return err
	}
	for attempt := 1; attempt < c.retry.MaxAttempts && errors.Is(err, ErrTransient); attempt++ {
		c.backoff(attempt)
		c.retries++
		err = op()
	}
	return err
}

// collTimer marks the start of a collective; the returned func records one
// entry of the given kind plus the elapsed latency on this rank's clock.
func (c *Comm) collTimer() func(n *int64) {
	start := c.tr.elapsed(c.rank)
	return func(n *int64) {
		*n++
		c.coll.Time += c.tr.elapsed(c.rank) - start
	}
}

// Rank returns this endpoint's rank in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Send delivers data to rank `to` with the given tag. It is buffered
// ("eager" in MPI terms): it never blocks on the receiver.
//
// Ownership contract: Send copies data before it is enqueued, so the caller
// keeps full ownership of its buffer and may overwrite or reuse it the
// moment Send returns — even in ModeReal where the receiver runs
// concurrently. The receiver in turn owns Msg.Data exclusively. Callers
// that build a throwaway buffer per message can use SendOwned to skip the
// copy.
func (c *Comm) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("mp: send to invalid rank %d", to)
	}
	var cp []byte
	if len(data) > 0 {
		cp = make([]byte, len(data))
		copy(cp, data)
	}
	return c.withRetry(func() error { return c.tr.send(c.rank, to, tag, cp) })
}

// SendOwned is the zero-copy opt-in: it enqueues data without copying and
// transfers ownership of the buffer to the runtime (and ultimately to the
// receiver). The caller must not read or write data after the call.
func (c *Comm) SendOwned(to, tag int, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("mp: send to invalid rank %d", to)
	}
	// Ownership is only transferred on success: a transient failure leaves
	// the buffer with the runtime-retry loop, never with a receiver.
	return c.withRetry(func() error { return c.tr.send(c.rank, to, tag, data) })
}

// Recv blocks until a message with the given tag arrives from rank `from`
// (or from anyone if from == AnySource). Tags match exactly. If the machine
// was configured with Config.RecvTimeout > 0, that bound applies.
func (c *Comm) Recv(from, tag int) (Msg, error) {
	return c.RecvTimeout(from, tag, c.defTimeout)
}

// RecvTimeout is Recv with an explicit per-call bound: when timeout > 0 and
// no matching message arrives in time (virtual time in ModeSim), it returns
// an error wrapping ErrTimeout. timeout <= 0 blocks indefinitely.
func (c *Comm) RecvTimeout(from, tag int, timeout time.Duration) (Msg, error) {
	if from != AnySource && (from < 0 || from >= c.size) {
		return Msg{}, fmt.Errorf("mp: recv from invalid rank %d", from)
	}
	var m Msg
	err := c.withRetry(func() error {
		var e error
		m, e = c.tr.recv(c.rank, from, tag, timeout)
		return e
	})
	return m, err
}

// Probe reports whether a matching message is already available; it never
// blocks. In ModeSim the answer is exact with respect to virtual time.
func (c *Comm) Probe(from, tag int) (bool, error) {
	if from != AnySource && (from < 0 || from >= c.size) {
		return false, fmt.Errorf("mp: probe of invalid rank %d", from)
	}
	return c.tr.probe(c.rank, from, tag)
}

// Elapsed returns this rank's clock: wall time in ModeReal, virtual time in
// ModeSim.
func (c *Comm) Elapsed() time.Duration { return c.tr.elapsed(c.rank) }

// ChargeCompute adds d of artificial compute time to this rank's virtual
// clock (no-op in ModeReal). It exists for deterministic simulation tests
// and for modeling work not actually executed.
func (c *Comm) ChargeCompute(d time.Duration) { c.tr.charge(c.rank, d) }

// Stats returns this rank's traffic counters, receive-wait time and
// collective tallies so far.
func (c *Comm) Stats() CommStats {
	s := c.tr.stats(c.rank)
	s.Collectives = c.coll
	return s
}

// Collective tags live in their own space so they can never match
// application receives.
const (
	tagBcast   = 1 << 28
	tagReduce  = 1<<28 + 1
	tagBarrier = 1<<28 + 2
	tagGather  = 1<<28 + 3
	tagScatter = 1<<28 + 4
)

// Bcast distributes root's buffer to all ranks along a binomial tree and
// returns each rank's copy.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	defer c.collTimer()(&c.coll.Bcasts)
	if c.size == 1 {
		return data, nil
	}
	vrank := (c.rank - root + c.size) % c.size
	mask := 1
	for mask < c.size {
		if vrank&mask != 0 {
			src := (c.rank - mask + c.size) % c.size
			m, err := c.Recv(src, tagBcast)
			if err != nil {
				return nil, err
			}
			data = m.Data
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < c.size {
			dst := (c.rank + mask) % c.size
			// Send (not SendOwned): data is also returned to this
			// rank's caller, so it must not be handed off.
			if err := c.Send(dst, tagBcast, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// ReduceSumInt64 sums each position of vals across ranks along a binomial
// tree; the total lands on root (other ranks get nil).
func (c *Comm) ReduceSumInt64(root int, vals []int64) ([]int64, error) {
	defer c.collTimer()(&c.coll.Reduces)
	acc := make([]int64, len(vals))
	copy(acc, vals)
	vrank := (c.rank - root + c.size) % c.size
	for mask := 1; mask < c.size; mask <<= 1 {
		if vrank&mask == 0 {
			srcV := vrank | mask
			if srcV < c.size {
				src := (srcV + root) % c.size
				m, err := c.Recv(src, tagReduce)
				if err != nil {
					return nil, err
				}
				part, err := DecodeInt64s(m.Data)
				if err != nil {
					return nil, err
				}
				if len(part) != len(acc) {
					return nil, fmt.Errorf("mp: reduce length mismatch %d vs %d", len(part), len(acc))
				}
				for i := range acc {
					acc[i] += part[i]
				}
			}
		} else {
			dst := ((vrank ^ mask) + root) % c.size
			// The encoded vector is freshly allocated and never touched
			// again, so hand it off without the Send copy.
			if err := c.SendOwned(dst, tagReduce, EncodeInt64s(acc)); err != nil {
				return nil, err
			}
			return nil, nil
		}
	}
	return acc, nil
}

// AllreduceSumInt64 is ReduceSumInt64 to rank 0 followed by a Bcast —
// 2·O(log p) communication steps.
func (c *Comm) AllreduceSumInt64(vals []int64) ([]int64, error) {
	defer c.collTimer()(&c.coll.Allreduces)
	acc, err := c.ReduceSumInt64(0, vals)
	if err != nil {
		return nil, err
	}
	var buf []byte
	if c.rank == 0 {
		buf = EncodeInt64s(acc)
	}
	buf, err = c.Bcast(0, buf)
	if err != nil {
		return nil, err
	}
	return DecodeInt64s(buf)
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	defer c.collTimer()(&c.coll.Barriers)
	// Dissemination barrier: ceil(log2 p) rounds.
	for mask := 1; mask < c.size; mask <<= 1 {
		dst := (c.rank + mask) % c.size
		src := (c.rank - mask + c.size) % c.size
		if err := c.Send(dst, tagBarrier, nil); err != nil {
			return err
		}
		if _, err := c.Recv(src, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// GatherBytes collects each rank's buffer at root; the result at root is
// indexed by rank (nil elsewhere).
func (c *Comm) GatherBytes(root int, data []byte) ([][]byte, error) {
	defer c.collTimer()(&c.coll.Gathers)
	if c.rank != root {
		return nil, c.Send(root, tagGather, data)
	}
	out := make([][]byte, c.size)
	out[root] = data
	// Receive from each specific source: per-source FIFO matching keeps
	// back-to-back gathers from interleaving (an any-source receive could
	// pick up a fast rank's *next* gather contribution).
	for src := 0; src < c.size; src++ {
		if src == root {
			continue
		}
		m, err := c.Recv(src, tagGather)
		if err != nil {
			return nil, err
		}
		out[src] = m.Data
	}
	return out, nil
}

// ScatterBytes distributes parts[i] from root to rank i (parts is read at
// root only; every rank returns its own slice).
func (c *Comm) ScatterBytes(root int, parts [][]byte) ([]byte, error) {
	defer c.collTimer()(&c.coll.Scatters)
	if c.rank == root {
		if len(parts) != c.size {
			return nil, fmt.Errorf("mp: scatter needs %d parts, got %d", c.size, len(parts))
		}
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tagScatter, parts[r]); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	m, err := c.Recv(root, tagScatter)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// AllgatherBytes collects every rank's buffer at every rank (gather to rank
// 0, then broadcast of the concatenation with a length header).
func (c *Comm) AllgatherBytes(data []byte) ([][]byte, error) {
	defer c.collTimer()(&c.coll.Allgathers)
	parts, err := c.GatherBytes(0, data)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		lens := make([]int64, c.size)
		for i, p := range parts {
			lens[i] = int64(len(p))
		}
		packed = EncodeInt64s(lens)
		for _, p := range parts {
			packed = append(packed, p...)
		}
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	if len(packed) < 8*c.size {
		return nil, fmt.Errorf("mp: allgather header truncated")
	}
	lens, err := DecodeInt64s(packed[:8*c.size])
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.size)
	off := 8 * c.size
	for i, l := range lens {
		if off+int(l) > len(packed) {
			return nil, fmt.Errorf("mp: allgather payload truncated at rank %d", i)
		}
		out[i] = packed[off : off+int(l)]
		off += int(l)
	}
	return out, nil
}

// EncodeInt64s packs a vector little-endian.
func EncodeInt64s(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// DecodeInt64s unpacks a vector packed by EncodeInt64s.
func DecodeInt64s(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mp: int64 buffer length %d not a multiple of 8", len(b))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// Run executes body on every rank under the configured mode and returns the
// first error any rank produced. It blocks until all ranks finish.
//
// Liveness: when a rank's body returns an error or panics, the failure is
// broadcast through the transport so that every peer blocked in a receive
// is woken with an error wrapping ErrRankFailed instead of hanging forever.
// Run reports the root-cause error (the failing rank's own error) in
// preference to the derived ErrRankFailed errors of the survivors.
func Run(cfg Config, body func(c *Comm) error) error {
	errs, err := RunRanks(cfg, body)
	if err != nil {
		return err
	}
	return FirstError(errs)
}

// RunRanks is Run exposing the full per-rank error vector instead of the
// aggregated root cause. Fault-tolerant callers (the cluster engine's
// slave-failure recovery) need the distinction between "the master failed"
// and "the master completed while some slaves died": Run cannot express it.
// The returned error is non-nil only for configuration problems, in which
// case no rank ran.
func RunRanks(cfg Config, body func(c *Comm) error) ([]error, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("mp: Procs must be >= 1, got %d", cfg.Procs)
	}
	var tr transport
	switch cfg.Mode {
	case ModeReal:
		tr = newRealTransport(cfg.Procs)
	case ModeSim:
		tr = newSimTransport(cfg)
	default:
		return nil, fmt.Errorf("mp: unknown mode %d", cfg.Mode)
	}
	if cfg.Fault != nil {
		if err := cfg.Fault.Validate(); err != nil {
			return nil, err
		}
		tr = newFaultTransport(tr, cfg)
	}

	errs := make([]error, cfg.Procs)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Procs; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{
				rank: rank, size: cfg.Procs, tr: tr,
				defTimeout: cfg.RecvTimeout,
				mode:       cfg.Mode,
				retry:      cfg.Retry,
			}
			var err error
			defer func() {
				if rec := recover(); rec != nil {
					err = fmt.Errorf("mp: rank %d panicked: %v", rank, rec)
				}
				errs[rank] = err
				if err != nil {
					tr.fail(rank, err)
				}
				tr.finish(rank)
			}()
			if err = tr.begin(rank); err != nil {
				return
			}
			err = body(c)
		}(r)
	}
	wg.Wait()
	return errs, nil
}

// FirstError aggregates a per-rank error vector the way Run reports it: the
// first root-cause error (one not derived from a peer's failure) wins;
// otherwise the first derived ErrRankFailed error; nil when all ranks
// succeeded.
func FirstError(errs []error) error {
	var derived error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrRankFailed) {
			return err
		}
		if derived == nil {
			derived = err
		}
	}
	return derived
}

// RunTimed is Run plus the final per-rank clocks (virtual in ModeSim),
// whose maximum is the modeled parallel run-time.
func RunTimed(cfg Config, body func(c *Comm) error) ([]time.Duration, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("mp: Procs must be >= 1, got %d", cfg.Procs)
	}
	times := make([]time.Duration, cfg.Procs)
	err := Run(cfg, func(c *Comm) error {
		defer func() { times[c.Rank()] = c.Elapsed() }()
		return body(c)
	})
	return times, err
}

// MaxTime returns the maximum of a set of per-rank clocks.
func MaxTime(ts []time.Duration) time.Duration {
	var m time.Duration
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}
