package mp

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// trafficProgram exercises every collective plus deterministic point-to-point
// traffic, and snapshots each rank's CommStats at the end.
func trafficProgram(stats []CommStats, mu *sync.Mutex) func(c *Comm) error {
	return func(c *Comm) error {
		r, p := c.Rank(), c.Size()

		// Point-to-point ring with rank-dependent payload sizes.
		payload := make([]byte, 16+8*r)
		if err := c.Send((r+1)%p, 7, payload); err != nil {
			return err
		}
		if _, err := c.Recv((r-1+p)%p, 7); err != nil {
			return err
		}

		// One of each collective.
		if _, err := c.Bcast(0, []byte("broadcast-payload")); err != nil {
			return err
		}
		if _, err := c.ReduceSumInt64(0, []int64{int64(r), 1, 2}); err != nil {
			return err
		}
		if _, err := c.AllreduceSumInt64([]int64{int64(r)}); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if _, err := c.GatherBytes(0, payload[:8+r]); err != nil {
			return err
		}
		var parts [][]byte
		if r == 0 {
			parts = make([][]byte, p)
			for i := range parts {
				parts[i] = make([]byte, 4*(i+1))
			}
		}
		if _, err := c.ScatterBytes(0, parts); err != nil {
			return err
		}
		if _, err := c.AllgatherBytes([]byte(fmt.Sprintf("rank-%02d", r))); err != nil {
			return err
		}

		mu.Lock()
		stats[r] = c.Stats()
		mu.Unlock()
		return nil
	}
}

func runTraffic(t *testing.T, cfg Config) []CommStats {
	t.Helper()
	stats := make([]CommStats, cfg.Procs)
	var mu sync.Mutex
	if err := Run(cfg, trafficProgram(stats, &mu)); err != nil {
		t.Fatalf("mode %v: %v", cfg.Mode, err)
	}
	return stats
}

// TestCommStatsSimRealEquivalence asserts that the same program reports
// identical per-rank message/byte counts and collective tallies under the
// simulated and the real transport — the counters are a property of the
// program, not of the execution mode. (Times are mode-specific and excluded.)
func TestCommStatsSimRealEquivalence(t *testing.T) {
	const p = 5
	real := runTraffic(t, Config{Procs: p, Mode: ModeReal})
	simCfg := DefaultSimConfig(p)
	simCfg.MeasureCompute = false
	sim := runTraffic(t, simCfg)

	for r := 0; r < p; r++ {
		re, si := real[r], sim[r]
		if re.MsgsSent != si.MsgsSent || re.BytesSent != si.BytesSent {
			t.Errorf("rank %d sent: real %d msgs/%d B, sim %d msgs/%d B",
				r, re.MsgsSent, re.BytesSent, si.MsgsSent, si.BytesSent)
		}
		if re.MsgsRecv != si.MsgsRecv || re.BytesRecv != si.BytesRecv {
			t.Errorf("rank %d recv: real %d msgs/%d B, sim %d msgs/%d B",
				r, re.MsgsRecv, re.BytesRecv, si.MsgsRecv, si.BytesRecv)
		}
		rc, sc := re.Collectives, si.Collectives
		rc.Time, sc.Time = 0, 0
		if rc != sc {
			t.Errorf("rank %d collectives: real %+v, sim %+v", r, rc, sc)
		}
	}

	// The tallies must also be exactly what the program performed.
	// Bcasts: 1 explicit + 1 inside Allreduce + 1 inside Allgather.
	// Reduces: 1 explicit + 1 inside Allreduce. Gathers: 1 explicit + 1
	// inside Allgather.
	want := CollectiveStats{Bcasts: 3, Reduces: 2, Allreduces: 1, Barriers: 1,
		Gathers: 2, Scatters: 1, Allgathers: 1}
	for r := 0; r < p; r++ {
		got := sim[r].Collectives
		got.Time = 0
		if got != want {
			t.Errorf("rank %d tallies = %+v, want %+v (composites count constituents)", r, got, want)
		}
	}
}

// TestRecvWaitRecorded checks both transports attribute blocked-receive time.
func TestRecvWaitRecorded(t *testing.T) {
	for _, mode := range []Mode{ModeReal, ModeSim} {
		cfg := Config{Procs: 2, Mode: mode}
		if mode == ModeSim {
			cfg = DefaultSimConfig(2)
			cfg.MeasureCompute = false
		}
		waits := make([]time.Duration, 2)
		err := Run(cfg, func(c *Comm) error {
			if c.Rank() == 1 {
				if mode == ModeSim {
					c.ChargeCompute(10 * time.Millisecond)
				} else {
					time.Sleep(10 * time.Millisecond)
				}
				return c.Send(0, 1, []byte("late"))
			}
			if _, err := c.Recv(1, 1); err != nil {
				return err
			}
			waits[0] = c.Stats().RecvWait
			return nil
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if waits[0] < 5*time.Millisecond {
			t.Errorf("mode %v: receiver RecvWait = %v, want >= 5ms", mode, waits[0])
		}
	}
}

// TestCollectiveTimeAdvances checks collective latency lands in
// Collectives.Time under the simulated clock.
func TestCollectiveTimeAdvances(t *testing.T) {
	cfg := DefaultSimConfig(4)
	cfg.MeasureCompute = false
	var mu sync.Mutex
	times := make([]time.Duration, 4)
	err := Run(cfg, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		times[c.Rank()] = c.Stats().Collectives.Time
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, d := range times {
		if d <= 0 {
			t.Errorf("rank %d collective time = %v, want > 0", r, d)
		}
	}
}
