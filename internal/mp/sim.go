package mp

import (
	"fmt"
	"sync"
	"time"
)

// simTransport is a conservative discrete-event simulation of a
// distributed-memory message-passing machine.
//
// Exactly one rank executes at any moment. Ranks park in an "arena" at every
// communication call; the scheduler always releases the parked rank whose
// operation has the minimum virtual timestamp (receives become eligible only
// once a matching message exists, with timestamp max(rank clock, message
// delivery time)). Because the releasing rule is min-clock-first, a Probe at
// virtual time T is exact: no rank with a smaller clock remains that could
// still produce a message delivered at or before T.
//
// Compute sections between communication calls run for real and their wall
// time (scaled by ComputeScale) is charged to the rank's virtual clock —
// meaningful even on a single-core host precisely because only one rank ever
// runs at a time.
type simTransport struct {
	cfg Config
	mu  sync.Mutex

	ranks   []*simRank
	running int   // rank currently computing, or -1; guarded by mu
	dead    error // guarded by mu
}

// wakeAll releases every parked rank (machine-wide death).
//
// lockguard: caller holds t.mu
func (t *simTransport) wakeAll() {
	for _, rk := range t.ranks {
		rk.cond.Signal()
	}
}

const (
	phaseComputing = iota
	phaseArena
	phaseDone
)

type simMsg struct {
	Msg
	deliver time.Duration
}

type simRank struct {
	id        int
	cond      *sync.Cond // signaled when this rank is chosen (or the machine dies)
	clock     time.Duration
	phase     int
	resumedAt time.Time

	// Arena operation descriptor.
	isRecv   bool
	waitFrom int
	waitTag  int
	chosen   bool
	// hasDeadline marks a bounded receive; deadline is the virtual time at
	// which it expires (clock at entry + timeout).
	hasDeadline bool
	deadline    time.Duration

	// failed is this rank's own error once its body failed; failedAt is the
	// virtual time of death, so peers observe the failure no earlier than
	// it happened (causality is preserved in virtual time). notified[d]
	// records that this rank's any-source receives already reported dead
	// rank d once.
	failed   error
	failedAt time.Duration
	notified []bool

	// Scheduling-key cache. A parked rank's keyOf value can only change
	// when the rank re-parks with a new descriptor, a message lands in its
	// mailbox, or some rank fails (all of which clear keyValid) — its own
	// clock is frozen while parked. Without the cache, schedule() rescans
	// every mailbox on every communication call, which is O(p·mailbox) per
	// op and dominates sim runs beyond a few hundred ranks.
	keyValid  bool
	cachedKey time.Duration
	cachedOK  bool

	mailbox []simMsg
	traffic CommStats
}

func newSimTransport(cfg Config) *simTransport {
	if cfg.ComputeScale == 0 {
		cfg.ComputeScale = 1
	}
	t := &simTransport{cfg: cfg, running: -1}
	t.ranks = make([]*simRank, cfg.Procs)
	for i := range t.ranks {
		t.ranks[i] = &simRank{id: i, phase: phaseArena, notified: make([]bool, cfg.Procs)}
		// Per-rank wakeups: a shared Cond would broadcast every release to
		// all p parked goroutines (a thundering herd that dominates large-p
		// runs); signaling only the chosen rank wakes exactly one.
		t.ranks[i].cond = sync.NewCond(&t.mu)
	}
	return t
}

// stopClock charges the elapsed compute time of a currently-computing rank.
//
// lockguard: caller holds t.mu
func (t *simTransport) stopClock(rk *simRank) {
	if rk.phase == phaseComputing && t.cfg.MeasureCompute {
		//pacelint:allow walltime MeasureCompute bridges real compute time into the virtual clock
		d := time.Since(rk.resumedAt)
		rk.clock += time.Duration(float64(d) * t.cfg.ComputeScale)
	}
}

// firstMatch returns the first matching message in arrival order (per-source
// FIFO, the MPI non-overtaking guarantee).
func firstMatch(rk *simRank) (int, *simMsg) {
	for i := range rk.mailbox {
		m := &rk.mailbox[i]
		if m.Tag == rk.waitTag && (rk.waitFrom == AnySource || m.From == rk.waitFrom) {
			return i, m
		}
	}
	return -1, nil
}

// failureCandidate returns the dead rank a blocked receive on rk should
// report, with the virtual time of the notification (no earlier than the
// death, no earlier than the receiver's own clock). A specific dead source
// is sticky; for AnySource each dead peer is reported once (earliest death
// first), turning sticky when every peer is dead.
//
// lockguard: caller holds t.mu
func (t *simTransport) failureCandidate(rk *simRank) (int, time.Duration, bool) {
	if !rk.isRecv {
		return 0, 0, false
	}
	best := -1
	var bestAt time.Duration
	if rk.waitFrom != AnySource {
		src := t.ranks[rk.waitFrom]
		if rk.waitFrom == rk.id || src.failed == nil {
			return 0, 0, false
		}
		best, bestAt = rk.waitFrom, src.failedAt
	} else {
		firstDead, alive := -1, 0
		for d, src := range t.ranks {
			if d == rk.id {
				continue
			}
			if src.failed == nil {
				alive++
				continue
			}
			if firstDead == -1 {
				firstDead = d
			}
			if rk.notified[d] {
				continue
			}
			if best == -1 || src.failedAt < bestAt {
				best, bestAt = d, src.failedAt
			}
		}
		if best == -1 && alive == 0 && firstDead != -1 {
			// Every peer is dead and all were already reported: nothing
			// can ever arrive, so the error becomes sticky.
			best, bestAt = firstDead, t.ranks[firstDead].failedAt
		}
		if best == -1 {
			return 0, 0, false
		}
	}
	if rk.clock > bestAt {
		bestAt = rk.clock
	}
	return best, bestAt, true
}

// keyOf computes a parked rank's scheduling timestamp. A bounded receive is
// always eligible: at the earlier of its message-availability time and its
// virtual deadline (at which it will report a timeout). A matching message
// takes precedence over a peer-failure notification; a receive with neither
// becomes eligible at the failure-notification time.
//
// lockguard: caller holds t.mu
func (t *simTransport) keyOf(rk *simRank) (time.Duration, bool) {
	if !rk.isRecv {
		return rk.clock, true
	}
	if _, m := firstMatch(rk); m != nil {
		key := rk.clock
		if m.deliver > key {
			key = m.deliver
		}
		if rk.hasDeadline && rk.deadline < key {
			key = rk.deadline
		}
		return key, true
	}
	if _, fkey, ok := t.failureCandidate(rk); ok {
		if rk.hasDeadline && rk.deadline < fkey {
			fkey = rk.deadline
		}
		return fkey, true
	}
	if rk.hasDeadline {
		return rk.deadline, true
	}
	return 0, false
}

// schedule releases the eligible parked rank with the minimum timestamp.
// A no-op while some rank is computing.
//
// lockguard: caller holds t.mu
func (t *simTransport) schedule() {
	if t.running != -1 || t.dead != nil {
		return
	}
	best := -1
	var bestKey time.Duration
	arena := 0
	for i, rk := range t.ranks {
		if rk.phase != phaseArena {
			continue
		}
		arena++
		if rk.chosen {
			return // someone is already released and about to run
		}
		if !rk.keyValid {
			rk.cachedKey, rk.cachedOK = t.keyOf(rk)
			rk.keyValid = true
		}
		key, ok := rk.cachedKey, rk.cachedOK
		if !ok {
			continue
		}
		if best == -1 || key < bestKey {
			best, bestKey = i, key
		}
	}
	if best == -1 {
		if arena > 0 {
			t.dead = ErrDeadlock
			t.wakeAll()
		}
		return
	}
	t.ranks[best].chosen = true
	t.ranks[best].cond.Signal()
}

// enter parks rank r in the arena with the given operation descriptor and
// blocks until the scheduler releases it. On a nil return the caller holds
// mu and may execute its operation (an error return leaves mu released).
// timeout > 0 arms a virtual-time deadline on a receive.
//
// lockguard: acquires t.mu
func (t *simTransport) enter(r int, isRecv bool, from, tag int, timeout time.Duration) error {
	t.mu.Lock()
	if dead := t.dead; dead != nil {
		t.mu.Unlock()
		return dead
	}
	rk := t.ranks[r]
	t.stopClock(rk)
	rk.phase = phaseArena
	rk.isRecv = isRecv
	rk.waitFrom, rk.waitTag = from, tag
	rk.hasDeadline = isRecv && timeout > 0
	if rk.hasDeadline {
		rk.deadline = rk.clock + timeout
	}
	rk.chosen = false
	rk.keyValid = false
	if t.running == r {
		t.running = -1
	}
	t.schedule()
	for !rk.chosen && t.dead == nil {
		rk.cond.Wait()
	}
	if dead := t.dead; dead != nil {
		t.mu.Unlock()
		return dead
	}
	return nil
}

// leave resumes compute for rank r after its operation.
//
// lockguard: releases t.mu
func (t *simTransport) leave(r int) {
	rk := t.ranks[r]
	rk.phase = phaseComputing
	rk.chosen = false
	t.running = r
	//pacelint:allow walltime MeasureCompute bridges real compute time into the virtual clock
	rk.resumedAt = time.Now()
	t.mu.Unlock()
}

// begin gates the start of a rank's body so that ranks execute one at a
// time from virtual time zero.
func (t *simTransport) begin(r int) error {
	t.mu.Lock()
	rk := t.ranks[r]
	rk.isRecv = false
	rk.hasDeadline = false
	rk.chosen = false
	rk.keyValid = false
	rk.phase = phaseArena
	t.schedule()
	for !rk.chosen && t.dead == nil {
		rk.cond.Wait()
	}
	if dead := t.dead; dead != nil {
		t.mu.Unlock()
		return dead
	}
	t.leave(r)
	return nil
}

func (t *simTransport) send(from, to, tag int, data []byte) error {
	if err := t.enter(from, false, 0, 0, 0); err != nil {
		return err
	}
	rk := t.ranks[from]
	deliver := rk.clock + t.cfg.Latency + time.Duration(len(data))*t.cfg.ByteTime
	t.ranks[to].mailbox = append(t.ranks[to].mailbox, simMsg{
		Msg:     Msg{From: from, To: to, Tag: tag, Data: data},
		deliver: deliver,
	})
	t.ranks[to].keyValid = false
	rk.clock += t.cfg.SendOverhead
	rk.traffic.addSent(len(data))
	t.leave(from)
	return nil
}

func (t *simTransport) recv(rank, from, tag int, timeout time.Duration) (Msg, error) {
	if err := t.enter(rank, true, from, tag, timeout); err != nil {
		return Msg{}, err
	}
	rk := t.ranks[rank]
	i, m := firstMatch(rk)
	if m != nil {
		key := rk.clock
		if m.deliver > key {
			key = m.deliver
		}
		if !rk.hasDeadline || key <= rk.deadline {
			msg := m.Msg
			// The virtual-clock advance to the delivery time is the time
			// this rank spent blocked waiting for the message.
			rk.traffic.RecvWait += key - rk.clock
			rk.clock = key
			rk.hasDeadline = false
			rk.mailbox = append(rk.mailbox[:i], rk.mailbox[i+1:]...)
			rk.traffic.addRecv(len(msg.Data))
			t.leave(rank)
			return msg, nil
		}
	}
	// No deliverable message: a peer-failure notification is next in line
	// (bounded receives prefer an earlier deadline below).
	if d, fkey, ok := t.failureCandidate(rk); ok && (!rk.hasDeadline || fkey <= rk.deadline) {
		if rk.waitFrom == AnySource {
			rk.notified[d] = true
		}
		if fkey > rk.clock {
			rk.traffic.RecvWait += fkey - rk.clock
			rk.clock = fkey
		}
		rk.hasDeadline = false
		cause := t.ranks[d].failed
		t.leave(rank)
		return Msg{}, &RankFailedError{Rank: d, Cause: cause}
	}
	if !rk.hasDeadline {
		// Cannot happen: eligibility implies a match or a failure, and all
		// other ranks are parked between scheduling and wake-up.
		t.mu.Unlock()
		panic("mp: released receiver has no matching message")
	}
	// Virtual deadline reached before any message could be delivered.
	if rk.deadline > rk.clock {
		rk.traffic.RecvWait += rk.deadline - rk.clock
		rk.clock = rk.deadline
	}
	rk.hasDeadline = false
	t.leave(rank)
	return Msg{}, fmt.Errorf("mp: rank %d recv(from %d, tag %d) after %v: %w",
		rank, from, tag, timeout, ErrTimeout)
}

func (t *simTransport) probe(rank, from, tag int) (bool, error) {
	if err := t.enter(rank, false, 0, 0, 0); err != nil {
		return false, err
	}
	rk := t.ranks[rank]
	saveFrom, saveTag := rk.waitFrom, rk.waitTag
	rk.waitFrom, rk.waitTag = from, tag
	_, m := firstMatch(rk)
	rk.waitFrom, rk.waitTag = saveFrom, saveTag
	ok := m != nil && m.deliver <= rk.clock
	// Charge a minimum cost so that probe loops always advance virtual
	// time (otherwise a polling rank would stay at the minimum clock and
	// starve the rest of the machine).
	cost := t.cfg.SendOverhead
	if cost <= 0 {
		cost = 100 * time.Nanosecond
	}
	rk.clock += cost
	// Mirror the real transport: probing a specific dead source with no
	// message left reports its failure; any-source probes stay silent.
	var failErr error
	if m == nil && from != AnySource && from != rank {
		if src := t.ranks[from]; src.failed != nil && src.failedAt <= rk.clock {
			failErr = &RankFailedError{Rank: from, Cause: src.failed}
		}
	}
	t.leave(rank)
	if failErr != nil {
		return false, failErr
	}
	return ok, nil
}

func (t *simTransport) elapsed(rank int) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	rk := t.ranks[rank]
	d := rk.clock
	if rk.phase == phaseComputing && t.cfg.MeasureCompute {
		//pacelint:allow walltime MeasureCompute bridges real compute time into the virtual clock
		d += time.Duration(float64(time.Since(rk.resumedAt)) * t.cfg.ComputeScale)
	}
	return d
}

func (t *simTransport) charge(rank int, d time.Duration) {
	t.mu.Lock()
	t.ranks[rank].clock += d
	t.mu.Unlock()
}

func (t *simTransport) stats(rank int) CommStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ranks[rank].traffic
}

// fail records one rank's death at its current virtual time. Peers observe
// it through failureCandidate — per rank, not machine-wide — once the
// scheduler runs again (the dying rank's finish() follows immediately and
// reschedules).
func (t *simTransport) fail(rank int, err error) {
	t.mu.Lock()
	rk := t.ranks[rank]
	if rk.failed == nil {
		rk.failed = err
		at := rk.clock
		if rk.phase == phaseComputing && t.cfg.MeasureCompute {
			//pacelint:allow walltime MeasureCompute bridges real compute time into the virtual clock
			at += time.Duration(float64(time.Since(rk.resumedAt)) * t.cfg.ComputeScale)
		}
		rk.failedAt = at
		// Failure notifications feed every parked receiver's key.
		for _, peer := range t.ranks {
			peer.keyValid = false
		}
	}
	t.mu.Unlock()
}

func (t *simTransport) finish(rank int) {
	t.mu.Lock()
	rk := t.ranks[rank]
	t.stopClock(rk)
	rk.phase = phaseDone
	if t.running == rank {
		t.running = -1
	}
	t.schedule()
	t.mu.Unlock()
}
