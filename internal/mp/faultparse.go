package mp

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParsePlan turns a -chaos flag spec into a fault-injection plan, shared by
// every binary that arms engine chaos. The spec is a comma-separated list
// of directives:
//
//	seed=N                 RNG seed for the probabilistic faults (default 1)
//	crash=RANK:AFTER[:TAG] kill rank RANK on its AFTER-th operation carrying
//	                       message tag TAG (default 1, the slave report tag;
//	                       0 matches every tag)
//	drop=P                 drop each message with probability P
//	dup=P                  deliver each message twice with probability P
//	delay=P:DUR            stall a send for DUR with probability P
//	transient=P[:MAX]      fail sends/receives with a retryable transient
//	                       error with probability P, at most MAX per rank
//
// Example: 'crash=2:5,delay=0.1:2ms,seed=7'
func ParsePlan(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("chaos directive %q is not key=value", part)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos seed: %v", err)
			}
			plan.Seed = n
		case "crash":
			fields := strings.Split(val, ":")
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("chaos crash wants RANK:AFTER[:TAG], got %q", val)
			}
			rank, err1 := strconv.Atoi(fields[0])
			after, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("chaos crash %q: rank and after must be integers", val)
			}
			tag := 1 // the slave-report tag: crashes land inside the protocol loop
			if len(fields) == 3 {
				tag, err1 = strconv.Atoi(fields[2])
				if err1 != nil {
					return nil, fmt.Errorf("chaos crash tag: %v", err1)
				}
			}
			plan.CrashRank, plan.CrashAfter, plan.CrashTag = rank, after, tag
		case "drop":
			p, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("chaos drop: %v", err)
			}
			plan.DropProb = p
		case "dup":
			p, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("chaos dup: %v", err)
			}
			plan.DupProb = p
		case "delay":
			pStr, dStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("chaos delay wants P:DURATION, got %q", val)
			}
			p, err := parseProb(pStr)
			if err != nil {
				return nil, fmt.Errorf("chaos delay: %v", err)
			}
			d, err := time.ParseDuration(dStr)
			if err != nil {
				return nil, fmt.Errorf("chaos delay: %v", err)
			}
			plan.DelayProb, plan.Delay = p, d
		case "transient":
			pStr, maxStr, hasMax := strings.Cut(val, ":")
			p, err := parseProb(pStr)
			if err != nil {
				return nil, fmt.Errorf("chaos transient: %v", err)
			}
			plan.TransientProb = p
			if hasMax {
				m, err := strconv.Atoi(maxStr)
				if err != nil {
					return nil, fmt.Errorf("chaos transient max: %v", err)
				}
				plan.TransientMax = m
			}
		default:
			return nil, fmt.Errorf("unknown chaos directive %q", key)
		}
	}
	return plan, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}
