package mp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPlan is a deterministic fault-injection schedule. It wraps the real
// or simulated transport (Config.Fault) and perturbs operations according to
// per-rank seeded RNGs, so a given (plan, program) pair always injects the
// same faults in the same places on a rank's operation sequence — the
// property that makes chaos tests reproducible.
//
// Crash semantics are fail-stop: once a rank's matching-operation count
// reaches CrashAfter, that operation and every later one on the rank return
// ErrInjectedCrash. The rank's body is expected to propagate the error, at
// which point the runtime records the rank as failed and peers observe an
// ordinary *RankFailedError.
type FaultPlan struct {
	// Seed derives the per-rank RNG streams (rank index is mixed in).
	Seed int64

	// CrashRank / CrashAfter / CrashTag schedule a sticky crash: rank
	// CrashRank fails on its CrashAfter-th send or receive whose tag
	// matches CrashTag (CrashTag <= 0 matches every tag). CrashAfter == 0
	// disables crashing. Counting only tagged operations lets a test place
	// the crash at a protocol position ("after the 3rd report") instead of
	// a raw op index.
	CrashRank  int
	CrashAfter int
	CrashTag   int

	// DropProb silently discards a send (the message vanishes in the
	// network). DupProb delivers a send twice. DelayProb stalls the sender
	// for Delay before the send (virtual time under ModeSim).
	// TransientProb makes a send or receive fail with ErrTransient —
	// retryable via Config.Retry. All probabilities are in [0, 1].
	DropProb      float64
	DupProb       float64
	DelayProb     float64
	TransientProb float64

	// Delay is the injected latency for delayed sends; 0 derives 1ms.
	Delay time.Duration

	// TransientMax caps injected transient errors per rank, so a bounded
	// retry budget always wins eventually. 0 means unlimited.
	TransientMax int

	// Stats, when non-nil, is filled with injection tallies.
	Stats *FaultStats
}

// Validate checks the plan.
func (p *FaultPlan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"DropProb", p.DropProb}, {"DupProb", p.DupProb},
		{"DelayProb", p.DelayProb}, {"TransientProb", p.TransientProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("mp: fault plan %s %v out of [0,1]", pr.name, pr.v)
		}
	}
	if p.CrashAfter < 0 {
		return fmt.Errorf("mp: fault plan CrashAfter must be >= 0")
	}
	if p.Delay < 0 {
		return fmt.Errorf("mp: fault plan Delay must be >= 0")
	}
	return nil
}

func (p *FaultPlan) delay() time.Duration {
	if p.Delay > 0 {
		return p.Delay
	}
	return time.Millisecond
}

// FaultStats tallies injected faults. Fields are atomics because ranks hit
// the injection layer concurrently under ModeReal.
type FaultStats struct {
	Crashes    atomic.Int64
	Drops      atomic.Int64
	Dups       atomic.Int64
	Delays     atomic.Int64
	Transients atomic.Int64
}

// faultTransport decorates a transport with the plan. Per-rank state (RNG,
// op counters) means each rank's fault sequence depends only on its own
// operation order, which is deterministic for a deterministic program even
// under ModeReal's arbitrary interleavings.
type faultTransport struct {
	inner transport
	plan  *FaultPlan
	mode  Mode

	mu         sync.Mutex
	rngs       []*rand.Rand
	crashOps   []int
	crashed    []bool
	transients []int
}

func newFaultTransport(inner transport, cfg Config) *faultTransport {
	t := &faultTransport{
		inner: inner, plan: cfg.Fault, mode: cfg.Mode,
		rngs:       make([]*rand.Rand, cfg.Procs),
		crashOps:   make([]int, cfg.Procs),
		crashed:    make([]bool, cfg.Procs),
		transients: make([]int, cfg.Procs),
	}
	for r := range t.rngs {
		t.rngs[r] = rand.New(rand.NewSource(cfg.Fault.Seed + int64(r)*0x9E3779B9))
	}
	return t
}

// crashCheck counts a matching operation against the crash schedule and
// returns the sticky ErrInjectedCrash once the rank is dead.
func (t *faultTransport) crashCheck(rank, tag int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.crashed[rank] {
		return fmt.Errorf("mp: rank %d is crashed: %w", rank, ErrInjectedCrash)
	}
	p := t.plan
	if p.CrashAfter <= 0 || rank != p.CrashRank {
		return nil
	}
	if p.CrashTag > 0 && tag != p.CrashTag {
		return nil
	}
	t.crashOps[rank]++
	if t.crashOps[rank] < p.CrashAfter {
		return nil
	}
	t.crashed[rank] = true
	if p.Stats != nil {
		p.Stats.Crashes.Add(1)
	}
	return fmt.Errorf("mp: rank %d crashed at tagged op %d: %w", rank, t.crashOps[rank], ErrInjectedCrash)
}

// roll draws from rank's RNG under the lock; every op consumes exactly the
// draws its fault classes need, keeping per-rank streams reproducible.
func (t *faultTransport) roll(rank int, prob float64) bool {
	if prob <= 0 {
		return false
	}
	return t.rngs[rank].Float64() < prob
}

// transientCheck decides a transient error for rank's op (caller holds no
// lock).
func (t *faultTransport) transientCheck(rank int, op string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.roll(rank, t.plan.TransientProb) {
		return nil
	}
	if t.plan.TransientMax > 0 && t.transients[rank] >= t.plan.TransientMax {
		return nil
	}
	t.transients[rank]++
	if t.plan.Stats != nil {
		t.plan.Stats.Transients.Add(1)
	}
	return fmt.Errorf("mp: rank %d injected %s fault: %w", rank, op, ErrTransient)
}

func (t *faultTransport) send(from, to, tag int, data []byte) error {
	if err := t.crashCheck(from, tag); err != nil {
		return err
	}
	if err := t.transientCheck(from, "send"); err != nil {
		return err
	}
	t.mu.Lock()
	drop := t.roll(from, t.plan.DropProb)
	delay := t.roll(from, t.plan.DelayProb)
	dup := t.roll(from, t.plan.DupProb)
	t.mu.Unlock()
	if drop {
		if t.plan.Stats != nil {
			t.plan.Stats.Drops.Add(1)
		}
		return nil
	}
	if delay {
		if t.plan.Stats != nil {
			t.plan.Stats.Delays.Add(1)
		}
		if t.mode == ModeSim {
			t.inner.charge(from, t.plan.delay())
		} else {
			//pacelint:allow walltime ModeReal delay injection stalls the goroutine for real
			time.Sleep(t.plan.delay())
		}
	}
	if dup {
		if t.plan.Stats != nil {
			t.plan.Stats.Dups.Add(1)
		}
		// The receiver owns delivered payloads exclusively, so the
		// duplicate must carry its own copy.
		var cp []byte
		if len(data) > 0 {
			cp = make([]byte, len(data))
			copy(cp, data)
		}
		if err := t.inner.send(from, to, tag, cp); err != nil {
			return err
		}
	}
	return t.inner.send(from, to, tag, data)
}

func (t *faultTransport) recv(rank, from, tag int, timeout time.Duration) (Msg, error) {
	if err := t.crashCheck(rank, tag); err != nil {
		return Msg{}, err
	}
	if err := t.transientCheck(rank, "recv"); err != nil {
		return Msg{}, err
	}
	return t.inner.recv(rank, from, tag, timeout)
}

// probe does not count against the crash schedule (probes are polled in
// loops, which would make CrashAfter meaningless), but a crashed rank stays
// crashed for probes too.
func (t *faultTransport) probe(rank, from, tag int) (bool, error) {
	t.mu.Lock()
	dead := t.crashed[rank]
	t.mu.Unlock()
	if dead {
		return false, fmt.Errorf("mp: rank %d is crashed: %w", rank, ErrInjectedCrash)
	}
	return t.inner.probe(rank, from, tag)
}

func (t *faultTransport) begin(rank int) error             { return t.inner.begin(rank) }
func (t *faultTransport) elapsed(rank int) time.Duration   { return t.inner.elapsed(rank) }
func (t *faultTransport) charge(rank int, d time.Duration) { t.inner.charge(rank, d) }
func (t *faultTransport) fail(rank int, err error)         { t.inner.fail(rank, err) }
func (t *faultTransport) finish(rank int)                  { t.inner.finish(rank) }
func (t *faultTransport) stats(rank int) CommStats         { return t.inner.stats(rank) }
