package mp

// Satellite audit for ISSUE 3: every collective must unblock with an error
// wrapping ErrRankFailed when a participating rank dies mid-collective,
// in both modes. The mechanism is cascade unblocking: the rank directly
// blocked on the dead peer errors out, its own failure is recorded, and the
// next rank in the tree observes that, until no one is left hanging.

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// runCollectiveFailure runs body on 4 ranks with deadRank dying immediately,
// in both modes, and asserts the run terminates with the root cause.
func runCollectiveFailure(t *testing.T, deadRank int, body func(c *Comm) error) {
	t.Helper()
	bodyErr := errors.New("injected body failure")
	for _, mode := range []Mode{ModeReal, ModeSim} {
		name := "real"
		if mode == ModeSim {
			name = "sim"
		}
		t.Run(name, func(t *testing.T) {
			cfg := simTestConfig(4)
			cfg.Mode = mode
			err := runWithWatchdog(t, 10*time.Second, cfg, func(c *Comm) error {
				if c.Rank() == deadRank {
					return bodyErr
				}
				return body(c)
			})
			if !errors.Is(err, bodyErr) {
				t.Fatalf("want root cause %v, got %v", bodyErr, err)
			}
		})
	}
}

// expectPeerFailure checks a survivor's collective error wraps ErrRankFailed
// and propagates it: the survivor must itself be recorded as failed so the
// cascade reaches ranks blocked on *it* (Run prefers the dead rank's root
// cause over these derived errors).
func expectPeerFailure(err error) error {
	if err == nil {
		return errors.New("collective succeeded despite dead rank")
	}
	if !errors.Is(err, ErrRankFailed) {
		return fmt.Errorf("collective error does not wrap ErrRankFailed: %w", err)
	}
	return err
}

func TestBcastUnblocksOnRankFailure(t *testing.T) {
	// Kill the root: every other rank waits (directly or transitively) on it.
	runCollectiveFailure(t, 0, func(c *Comm) error {
		_, err := c.Bcast(0, []byte("payload"))
		return expectPeerFailure(err)
	})
}

func TestBarrierUnblocksOnRankFailure(t *testing.T) {
	runCollectiveFailure(t, 2, func(c *Comm) error {
		return expectPeerFailure(c.Barrier())
	})
}

func TestGatherBytesUnblocksOnRankFailure(t *testing.T) {
	// Kill a contributor: the root blocks on its per-source receive.
	runCollectiveFailure(t, 2, func(c *Comm) error {
		_, err := c.GatherBytes(0, []byte{byte(c.Rank())})
		if c.Rank() != 0 && err == nil {
			// Non-root contributors only send; they may complete.
			return nil
		}
		return expectPeerFailure(err)
	})
}

func TestScatterBytesUnblocksOnRankFailure(t *testing.T) {
	// Kill the root: every receiver blocks on it.
	runCollectiveFailure(t, 0, func(c *Comm) error {
		_, err := c.ScatterBytes(0, [][]byte{{0}, {1}, {2}, {3}})
		return expectPeerFailure(err)
	})
}

func TestAllgatherBytesUnblocksOnRankFailure(t *testing.T) {
	runCollectiveFailure(t, 1, func(c *Comm) error {
		_, err := c.AllgatherBytes([]byte{byte(c.Rank())})
		return expectPeerFailure(err)
	})
}

// A point-to-point receive from a specific dead rank reports the failure
// with the rank's identity attached (the recovery path's key requirement).
func TestRankFailedErrorCarriesRank(t *testing.T) {
	bodyErr := errors.New("slave exploded")
	for _, mode := range []Mode{ModeReal, ModeSim} {
		cfg := simTestConfig(3)
		cfg.Mode = mode
		err := runWithWatchdog(t, 10*time.Second, cfg, func(c *Comm) error {
			if c.Rank() == 2 {
				return bodyErr
			}
			_, err := c.Recv(2, 7)
			var rf *RankFailedError
			if !errors.As(err, &rf) {
				return errors.New("want *RankFailedError")
			}
			if rf.Rank != 2 {
				return errors.New("wrong dead rank identified")
			}
			return nil
		})
		if !errors.Is(err, bodyErr) {
			t.Fatalf("mode %d: got %v, want %v", mode, err, bodyErr)
		}
	}
}

// An any-source receive reports each dead peer exactly once, while traffic
// from survivors keeps flowing — the master's protocol depends on both.
func TestAnySourceNotifiesOncePerDeadRank(t *testing.T) {
	bodyErr := errors.New("one slave down")
	for _, mode := range []Mode{ModeReal, ModeSim} {
		cfg := simTestConfig(3)
		cfg.Mode = mode
		err := runWithWatchdog(t, 10*time.Second, cfg, func(c *Comm) error {
			switch c.Rank() {
			case 1:
				return bodyErr
			case 2:
				// Survivor: wait for the master's ping, then answer.
				if _, err := c.Recv(0, 1); err != nil {
					return err
				}
				return c.Send(0, 2, []byte("alive"))
			}
			// Master: the first blocked any-source receive reports rank 1
			// exactly once; afterwards survivor traffic still flows.
			var rf *RankFailedError
			_, err := c.Recv(AnySource, 2)
			if !errors.As(err, &rf) || rf.Rank != 1 {
				return errors.New("first recv should report dead rank 1")
			}
			if err := c.Send(2, 1, nil); err != nil {
				return err
			}
			m, err := c.Recv(AnySource, 2)
			if err != nil {
				return err // must NOT re-report rank 1
			}
			if string(m.Data) != "alive" || m.From != 2 {
				return errors.New("survivor message corrupted")
			}
			return nil
		})
		if !errors.Is(err, bodyErr) {
			t.Fatalf("mode %d: got %v, want %v", mode, err, bodyErr)
		}
	}
}
