package mp

import (
	"sync"
	"time"
)

// realTransport runs ranks truly concurrently: one mailbox per rank guarded
// by a mutex/cond pair. Matching is FIFO in arrival order, which preserves
// the MPI non-overtaking guarantee per (source, tag).
type realTransport struct {
	start time.Time
	boxes []*realBox

	statsMu sync.Mutex
	traffic []CommStats
}

type realBox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []Msg
}

func newRealTransport(p int) *realTransport {
	t := &realTransport{start: time.Now(), boxes: make([]*realBox, p), traffic: make([]CommStats, p)}
	for i := range t.boxes {
		b := &realBox{}
		b.cond = sync.NewCond(&b.mu)
		t.boxes[i] = b
	}
	return t
}

func (t *realTransport) begin(int) error { return nil }

func matches(m Msg, from, tag int) bool {
	return m.Tag == tag && (from == AnySource || m.From == from)
}

func (t *realTransport) send(from, to, tag int, data []byte) error {
	b := t.boxes[to]
	b.mu.Lock()
	b.msgs = append(b.msgs, Msg{From: from, To: to, Tag: tag, Data: data})
	b.mu.Unlock()
	b.cond.Broadcast()
	t.statsMu.Lock()
	t.traffic[from].addSent(len(data))
	t.statsMu.Unlock()
	return nil
}

func (t *realTransport) recv(rank, from, tag int) (Msg, error) {
	b := t.boxes[rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if matches(m, from, tag) {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				t.statsMu.Lock()
				t.traffic[rank].addRecv(len(m.Data))
				t.statsMu.Unlock()
				return m, nil
			}
		}
		b.cond.Wait()
	}
}

func (t *realTransport) probe(rank, from, tag int) (bool, error) {
	b := t.boxes[rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.msgs {
		if matches(m, from, tag) {
			return true, nil
		}
	}
	return false, nil
}

func (t *realTransport) elapsed(int) time.Duration { return time.Since(t.start) }

func (t *realTransport) charge(int, time.Duration) {}

func (t *realTransport) finish(int) {}

func (t *realTransport) stats(rank int) CommStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.traffic[rank]
}
