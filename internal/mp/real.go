//pacelint:allow-file walltime the real transport runs ranks on actual goroutines and is wall-clock by design

package mp

import (
	"fmt"
	"sync"
	"time"
)

// realTransport runs ranks truly concurrently: one mailbox per rank guarded
// by a mutex/cond pair. Matching is FIFO in arrival order, which preserves
// the MPI non-overtaking guarantee per (source, tag).
//
// Payload ownership is handled one layer up: Comm.Send clones the caller's
// buffer before it reaches send(), so a mailbox never aliases live sender
// memory and Msg.Data handed out by recv() is exclusively the receiver's.
//
// Failure is tracked per rank: recv/probe against a specific dead source
// return a *RankFailedError; an any-source receive that would block reports
// each dead peer exactly once per receiver, so a master can learn "slave s
// died" without being cut off from the survivors.
type realTransport struct {
	start time.Time
	boxes []*realBox

	statsMu sync.Mutex
	traffic []CommStats

	failMu sync.Mutex
	// failed[r] is rank r's own error once its body failed; notified[r][d]
	// records that receiver r was already told about dead rank d via an
	// any-source receive.
	failed   []error
	notified [][]bool
}

type realBox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []Msg
}

func newRealTransport(p int) *realTransport {
	t := &realTransport{
		start: time.Now(), boxes: make([]*realBox, p),
		traffic: make([]CommStats, p),
		failed:  make([]error, p), notified: make([][]bool, p),
	}
	for i := range t.boxes {
		b := &realBox{}
		b.cond = sync.NewCond(&b.mu)
		t.boxes[i] = b
		t.notified[i] = make([]bool, p)
	}
	return t
}

func (t *realTransport) begin(int) error { return nil }

func matches(m Msg, from, tag int) bool {
	return m.Tag == tag && (from == AnySource || m.From == from)
}

func (t *realTransport) send(from, to, tag int, data []byte) error {
	b := t.boxes[to]
	b.mu.Lock()
	b.msgs = append(b.msgs, Msg{From: from, To: to, Tag: tag, Data: data})
	b.mu.Unlock()
	b.cond.Broadcast()
	t.statsMu.Lock()
	t.traffic[from].addSent(len(data))
	t.statsMu.Unlock()
	return nil
}

// pendingFailure returns the failure a blocked receive on `rank` waiting for
// `from` should surface, or nil. For a specific source it is sticky: every
// receive from a dead rank errors. For AnySource each dead peer is reported
// once per receiver; when every peer is dead the error becomes sticky too
// (nothing can ever arrive).
func (t *realTransport) pendingFailure(rank, from int) error {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	if from != AnySource {
		if cause := t.failed[from]; cause != nil && from != rank {
			return &RankFailedError{Rank: from, Cause: cause}
		}
		return nil
	}
	firstDead := -1
	alive := 0
	for d := range t.failed {
		if d == rank {
			continue
		}
		if t.failed[d] == nil {
			alive++
			continue
		}
		if firstDead == -1 {
			firstDead = d
		}
		if !t.notified[rank][d] {
			t.notified[rank][d] = true
			return &RankFailedError{Rank: d, Cause: t.failed[d]}
		}
	}
	if alive == 0 && firstDead != -1 {
		return &RankFailedError{Rank: firstDead, Cause: t.failed[firstDead]}
	}
	return nil
}

// fail records a rank failure and wakes every blocked receiver. The error is
// stored before the mailbox locks are touched so there is no lock-order
// cycle with recv (which holds a box lock while reading it).
func (t *realTransport) fail(rank int, err error) {
	t.failMu.Lock()
	if t.failed[rank] == nil {
		t.failed[rank] = err
	}
	t.failMu.Unlock()
	for _, b := range t.boxes {
		// Empty critical section: guarantees any receiver between its
		// predicate check and cond.Wait is parked before the broadcast.
		b.mu.Lock()
		b.mu.Unlock() //nolint:staticcheck // see above
		b.cond.Broadcast()
	}
}

func (t *realTransport) recv(rank, from, tag int, timeout time.Duration) (Msg, error) {
	b := t.boxes[rank]
	// The full call duration counts as receive wait: an immediately
	// matched message contributes nanoseconds, a blocked receive its
	// blocked time.
	start := time.Now()
	defer func() {
		t.statsMu.Lock()
		t.traffic[rank].RecvWait += time.Since(start)
		t.statsMu.Unlock()
	}()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// sync.Cond has no timed wait; a timer broadcast stands in. The
		// lock/unlock pair prevents a missed wakeup for a receiver that
		// checked the deadline but has not parked yet.
		timer := time.AfterFunc(timeout, func() {
			b.mu.Lock()
			b.mu.Unlock() //nolint:staticcheck // pairing broadcast with parked waiters
			b.cond.Broadcast()
		})
		defer timer.Stop()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if matches(m, from, tag) {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				t.statsMu.Lock()
				t.traffic[rank].addRecv(len(m.Data))
				t.statsMu.Unlock()
				return m, nil
			}
		}
		// A delivered message is preferred over failure/timeout reporting;
		// only a receive that would block surfaces them.
		if err := t.pendingFailure(rank, from); err != nil {
			return Msg{}, err
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return Msg{}, fmt.Errorf("mp: rank %d recv(from %d, tag %d) after %v: %w",
				rank, from, tag, timeout, ErrTimeout)
		}
		b.cond.Wait()
	}
}

func (t *realTransport) probe(rank, from, tag int) (bool, error) {
	b := t.boxes[rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.msgs {
		if matches(m, from, tag) {
			return true, nil
		}
	}
	// A probe of a specific dead source reports its failure; an any-source
	// probe stays non-destructive (it must not consume the once-per-rank
	// failure notifications owed to receives).
	if from != AnySource {
		t.failMu.Lock()
		cause := t.failed[from]
		t.failMu.Unlock()
		if cause != nil && from != rank {
			return false, &RankFailedError{Rank: from, Cause: cause}
		}
	}
	return false, nil
}

func (t *realTransport) elapsed(int) time.Duration { return time.Since(t.start) }

func (t *realTransport) charge(int, time.Duration) {}

func (t *realTransport) finish(int) {}

func (t *realTransport) stats(rank int) CommStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.traffic[rank]
}
