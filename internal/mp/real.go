package mp

import (
	"fmt"
	"sync"
	"time"
)

// realTransport runs ranks truly concurrently: one mailbox per rank guarded
// by a mutex/cond pair. Matching is FIFO in arrival order, which preserves
// the MPI non-overtaking guarantee per (source, tag).
//
// Payload ownership is handled one layer up: Comm.Send clones the caller's
// buffer before it reaches send(), so a mailbox never aliases live sender
// memory and Msg.Data handed out by recv() is exclusively the receiver's.
type realTransport struct {
	start time.Time
	boxes []*realBox

	statsMu sync.Mutex
	traffic []CommStats

	failMu  sync.Mutex
	failErr error
}

type realBox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []Msg
}

func newRealTransport(p int) *realTransport {
	t := &realTransport{start: time.Now(), boxes: make([]*realBox, p), traffic: make([]CommStats, p)}
	for i := range t.boxes {
		b := &realBox{}
		b.cond = sync.NewCond(&b.mu)
		t.boxes[i] = b
	}
	return t
}

func (t *realTransport) begin(int) error { return nil }

func matches(m Msg, from, tag int) bool {
	return m.Tag == tag && (from == AnySource || m.From == from)
}

func (t *realTransport) send(from, to, tag int, data []byte) error {
	b := t.boxes[to]
	b.mu.Lock()
	b.msgs = append(b.msgs, Msg{From: from, To: to, Tag: tag, Data: data})
	b.mu.Unlock()
	b.cond.Broadcast()
	t.statsMu.Lock()
	t.traffic[from].addSent(len(data))
	t.statsMu.Unlock()
	return nil
}

// failure returns the broadcast failure error, if any.
func (t *realTransport) failure() error {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	return t.failErr
}

// fail records the first rank failure and wakes every blocked receiver.
// The error is stored before the mailbox locks are touched so there is no
// lock-order cycle with recv (which holds a box lock while reading it).
func (t *realTransport) fail(rank int, err error) {
	t.failMu.Lock()
	if t.failErr == nil {
		t.failErr = fmt.Errorf("mp: rank %d failed (%v): %w", rank, err, ErrRankFailed)
	}
	t.failMu.Unlock()
	for _, b := range t.boxes {
		// Empty critical section: guarantees any receiver between its
		// predicate check and cond.Wait is parked before the broadcast.
		b.mu.Lock()
		b.mu.Unlock() //nolint:staticcheck // see above
		b.cond.Broadcast()
	}
}

func (t *realTransport) recv(rank, from, tag int, timeout time.Duration) (Msg, error) {
	b := t.boxes[rank]
	// The full call duration counts as receive wait: an immediately
	// matched message contributes nanoseconds, a blocked receive its
	// blocked time.
	start := time.Now()
	defer func() {
		t.statsMu.Lock()
		t.traffic[rank].RecvWait += time.Since(start)
		t.statsMu.Unlock()
	}()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// sync.Cond has no timed wait; a timer broadcast stands in. The
		// lock/unlock pair prevents a missed wakeup for a receiver that
		// checked the deadline but has not parked yet.
		timer := time.AfterFunc(timeout, func() {
			b.mu.Lock()
			b.mu.Unlock() //nolint:staticcheck // pairing broadcast with parked waiters
			b.cond.Broadcast()
		})
		defer timer.Stop()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if matches(m, from, tag) {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				t.statsMu.Lock()
				t.traffic[rank].addRecv(len(m.Data))
				t.statsMu.Unlock()
				return m, nil
			}
		}
		// A delivered message is preferred over failure/timeout reporting;
		// only a receive that would block surfaces them.
		if err := t.failure(); err != nil {
			return Msg{}, fmt.Errorf("mp: rank %d recv aborted: %w", rank, err)
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return Msg{}, fmt.Errorf("mp: rank %d recv(from %d, tag %d) after %v: %w",
				rank, from, tag, timeout, ErrTimeout)
		}
		b.cond.Wait()
	}
}

func (t *realTransport) probe(rank, from, tag int) (bool, error) {
	b := t.boxes[rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.msgs {
		if matches(m, from, tag) {
			return true, nil
		}
	}
	if err := t.failure(); err != nil {
		return false, fmt.Errorf("mp: rank %d probe aborted: %w", rank, err)
	}
	return false, nil
}

func (t *realTransport) elapsed(int) time.Duration { return time.Since(t.start) }

func (t *realTransport) charge(int, time.Duration) {}

func (t *realTransport) finish(int) {}

func (t *realTransport) stats(rank int) CommStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.traffic[rank]
}
