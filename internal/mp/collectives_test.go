package mp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestScatterBytes(t *testing.T) {
	const p = 5
	for root := 0; root < p; root += 2 {
		root := root
		bothModes(t, p, fmt.Sprintf("scatter_r%d", root), func(c *Comm) error {
			var parts [][]byte
			if c.Rank() == root {
				parts = make([][]byte, p)
				for i := range parts {
					parts[i] = []byte{byte(i), byte(i * 2)}
				}
			}
			got, err := c.ScatterBytes(root, parts)
			if err != nil {
				return err
			}
			want := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("rank %d got %v want %v", c.Rank(), got, want)
			}
			return nil
		})
	}
}

func TestScatterValidatesParts(t *testing.T) {
	err := Run(Config{Procs: 1, Mode: ModeReal}, func(c *Comm) error {
		if _, err := c.ScatterBytes(0, [][]byte{{1}, {2}}); err == nil {
			return fmt.Errorf("wrong part count accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherBytes(t *testing.T) {
	const p = 6
	bothModes(t, p, "allgather", func(c *Comm) error {
		// Ragged contributions, including an empty one.
		data := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank())
		out, err := c.AllgatherBytes(data)
		if err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			want := bytes.Repeat([]byte{byte(r)}, r)
			if !bytes.Equal(out[r], want) {
				return fmt.Errorf("rank %d sees %v for rank %d", c.Rank(), out[r], r)
			}
		}
		return nil
	})
}

func TestCommStatsCounting(t *testing.T) {
	bothModes(t, 2, "stats", func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, make([]byte, 100)); err != nil {
				return err
			}
			if err := c.Send(1, 1, make([]byte, 50)); err != nil {
				return err
			}
			st := c.Stats()
			if st.MsgsSent != 2 || st.BytesSent != 150 {
				return fmt.Errorf("sender stats: %+v", st)
			}
			return nil
		}
		for i := 0; i < 2; i++ {
			if _, err := c.Recv(0, 1); err != nil {
				return err
			}
		}
		st := c.Stats()
		if st.MsgsRecv != 2 || st.BytesRecv != 150 {
			return fmt.Errorf("receiver stats: %+v", st)
		}
		return nil
	})
}

// Cross-mode equivalence: a randomized deterministic message pattern must
// deliver identical data in real and simulated modes.
func TestCrossModeEquivalence(t *testing.T) {
	const p = 4
	const rounds = 30
	type key struct{ round, from, to int }

	runPattern := func(cfg Config) (map[key]byte, error) {
		got := make([]map[key]byte, p)
		for i := range got {
			got[i] = map[key]byte{}
		}
		err := Run(cfg, func(c *Comm) error {
			rng := rand.New(rand.NewSource(99)) // same schedule on all ranks
			for round := 0; round < rounds; round++ {
				from := rng.Intn(p)
				to := rng.Intn(p - 1)
				if to >= from {
					to++
				}
				payload := byte(round*7 + from)
				if c.Rank() == from {
					if err := c.Send(to, 5, []byte{payload}); err != nil {
						return err
					}
				}
				if c.Rank() == to {
					m, err := c.Recv(from, 5)
					if err != nil {
						return err
					}
					got[c.Rank()][key{round, from, to}] = m.Data[0]
				}
			}
			return nil
		})
		merged := map[key]byte{}
		for _, m := range got {
			for k, v := range m {
				merged[k] = v
			}
		}
		return merged, err
	}

	real, err := runPattern(Config{Procs: p, Mode: ModeReal})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := runPattern(simTestConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(real) != len(sim) || len(real) != rounds {
		t.Fatalf("delivery counts: real=%d sim=%d want %d", len(real), len(sim), rounds)
	}
	for k, v := range real {
		if sim[k] != v {
			t.Fatalf("payload mismatch at %+v: real=%d sim=%d", k, v, sim[k])
		}
	}
}

// In simulated mode, bigger messages must take longer to deliver.
func TestSimBandwidthModel(t *testing.T) {
	recvTime := func(size int) time.Duration {
		cfg := simTestConfig(2)
		times, err := RunTimed(cfg, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 1, make([]byte, size))
			}
			_, err := c.Recv(0, 1)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return times[1]
	}
	small, big := recvTime(10), recvTime(1_000_000)
	if big <= small {
		t.Errorf("bandwidth model inactive: %v vs %v", small, big)
	}
	want := 100*time.Microsecond + 10*time.Millisecond // latency + 1MB * 10ns
	if big != want {
		t.Errorf("1MB delivery %v want %v", big, want)
	}
}

// In simulated mode a dissemination barrier needs ceil(log2 p) rounds, so no
// rank can leave before round-count × latency of virtual time has passed.
func TestSimBarrierLatencyModel(t *testing.T) {
	const p = 8
	cfg := simTestConfig(p) // latency 100µs
	times, err := RunTimed(cfg, func(c *Comm) error {
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for m := 1; m < p; m <<= 1 {
		rounds++
	}
	minTime := time.Duration(rounds) * cfg.Latency
	for r, tm := range times {
		if tm < minTime {
			t.Errorf("rank %d finished at %v, below the %d-round latency floor %v",
				r, tm, rounds, minTime)
		}
	}
}

// Allreduce must cost at least the reduce+bcast tree depth in latency.
func TestSimAllreduceLatencyModel(t *testing.T) {
	const p = 16
	cfg := simTestConfig(p)
	times, err := RunTimed(cfg, func(c *Comm) error {
		_, err := c.AllreduceSumInt64([]int64{1})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 participates in 4 reduce rounds and starts the bcast: its
	// clock alone must exceed 4 latencies; the last bcast leaf more.
	if MaxTime(times) < 5*cfg.Latency {
		t.Errorf("allreduce completed in %v, implausibly fast for p=16", MaxTime(times))
	}
}
