package altsplice

import (
	"pace/internal/align"
	"pace/internal/seq"
)

// splicedOverlapAlign computes a free-end-gap alignment of a and b with two
// extra "jump" states modeling spliced-out segments: J consumes a run of a
// (the consensus) and K a run of b (the member) for a flat JumpOpen penalty
// regardless of length — the standard intron trick of spliced aligners.
// Affine gaps would charge a skipped exon per base and the optimal alignment
// would smear it into mismatch soup instead; the jump states make long
// biological gaps affordable while JumpOpen keeps them away from ordinary
// indels.
//
// Jump runs surface in the returned Cigar as OpDelete (J) / OpInsert (K)
// runs, so downstream gap scanning is aligner-agnostic.
func splicedOverlapAlign(a, b seq.Sequence, sc align.Scoring, jumpOpen int32) align.OverlapTrace {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return align.OverlapTrace{}
	}
	const (
		lM = iota
		lX
		lY
		lJ
		lK
		lFree
	)
	negInf := int32(-1 << 29)
	w := m + 1
	idx := func(i, j int) int { return i*w + j }
	size := (n + 1) * w
	score := make([][5]int32, size)
	from := make([][5]uint8, size)
	for k := range score {
		for l := 0; l < 5; l++ {
			score[k][l] = negInf
		}
	}
	// Free starts on the top and left boundaries (M layer).
	for j := 0; j <= m; j++ {
		score[idx(0, j)][lM] = 0
		from[idx(0, j)][lM] = lFree
	}
	for i := 0; i <= n; i++ {
		score[idx(i, 0)][lM] = 0
		from[idx(i, 0)][lM] = lFree
	}

	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cur := idx(i, j)
			diag := idx(i-1, j-1)
			up := idx(i-1, j)
			left := idx(i, j-1)

			// M: substitution from any layer.
			var sub int32
			if a[i-1] == b[j-1] {
				sub = sc.Match
			} else {
				sub = sc.Mismatch
			}
			best, bf := score[diag][lM], uint8(lM)
			for _, l := range [4]uint8{lX, lY, lJ, lK} {
				if score[diag][l] > best {
					best, bf = score[diag][l], l
				}
			}
			if best > negInf {
				score[cur][lM] = best + sub
				from[cur][lM] = bf
			}

			// X: short gap consuming a.
			open, of := score[up][lM], uint8(lM)
			if score[up][lY] > open {
				open, of = score[up][lY], lY
			}
			open += sc.GapOpen + sc.GapExtend
			ext := score[up][lX] + sc.GapExtend
			if open >= ext {
				score[cur][lX], from[cur][lX] = open, of
			} else {
				score[cur][lX], from[cur][lX] = ext, lX
			}

			// Y: short gap consuming b.
			open, of = score[left][lM], uint8(lM)
			if score[left][lX] > open {
				open, of = score[left][lX], lX
			}
			open += sc.GapOpen + sc.GapExtend
			ext = score[left][lY] + sc.GapExtend
			if open >= ext {
				score[cur][lY], from[cur][lY] = open, of
			} else {
				score[cur][lY], from[cur][lY] = ext, lY
			}

			// J: jump over a (consume a[i-1] for free after JumpOpen).
			open = score[up][lM] + jumpOpen
			ext = score[up][lJ]
			if open >= ext {
				score[cur][lJ], from[cur][lJ] = open, lM
			} else {
				score[cur][lJ], from[cur][lJ] = ext, lJ
			}

			// K: jump over b.
			open = score[left][lM] + jumpOpen
			ext = score[left][lK]
			if open >= ext {
				score[cur][lK], from[cur][lK] = open, lM
			} else {
				score[cur][lK], from[cur][lK] = ext, lK
			}
		}
	}

	// Best end on the bottom/right boundary, M layer only (an alignment
	// must not end mid-jump; trailing skipped material is just a free end
	// gap).
	bestScore, bi, bj := negInf, 0, 0
	consider := func(i, j int) {
		if s := score[idx(i, j)][lM]; s > bestScore {
			bestScore, bi, bj = s, i, j
		}
	}
	for j := 0; j <= m; j++ {
		consider(n, j)
	}
	for i := 0; i <= n; i++ {
		consider(i, m)
	}

	// Traceback.
	var cig align.Cigar
	i, j, layer := bi, bj, uint8(lM)
	push := func(op align.Op) {
		if len(cig) > 0 && cig[len(cig)-1].Op == op {
			cig[len(cig)-1].Len++
			return
		}
		cig = append(cig, align.CigarElem{Op: op, Len: 1})
	}
	for {
		f := from[idx(i, j)][layer]
		switch layer {
		case lM:
			if f == lFree {
				goto done
			}
			if a[i-1] == b[j-1] {
				push(align.OpMatch)
			} else {
				push(align.OpMismatch)
			}
			i--
			j--
		case lX, lJ:
			push(align.OpDelete)
			i--
		case lY, lK:
			push(align.OpInsert)
			j--
		}
		layer = f
	}
done:
	for l, r := 0, len(cig)-1; l < r; l, r = l+1, r-1 {
		cig[l], cig[r] = cig[r], cig[l]
	}

	out := align.OverlapTrace{
		AStart: int32(i), AEnd: int32(bi),
		BStart: int32(j), BEnd: int32(bj),
		Cigar: cig,
	}
	// Stats from the script under the base scoring (jump runs appear as
	// ordinary deletions/insertions there; Score is therefore the edit-
	// script score, not the jump-model score — callers use counts, not
	// Score).
	out.Stats = cig.Stats(sc)
	out.Stats.Score = bestScore
	return out
}
