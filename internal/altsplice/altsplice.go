// Package altsplice detects candidate alternative-splicing events inside an
// EST cluster — the "additional processing like detection of alternative
// splicing" the paper names as the extension of its clustering results.
//
// The signal is structural: an EST sampled from an exon-skipping isoform
// aligns to its cluster's consensus with a long internal gap (the skipped
// exon) flanked by well-matching sequence on both sides. Detect aligns every
// member against the consensus in its best orientation and reports internal
// gap runs that clear the length and flank-quality thresholds.
package altsplice

import (
	"fmt"

	"pace/internal/align"
	"pace/internal/seq"
)

// Kind distinguishes which side of the alignment misses the segment.
type Kind uint8

const (
	// SkippedInMember: the member lacks a segment the consensus has
	// (a deletion run) — the member came from the exon-skipping isoform.
	SkippedInMember Kind = iota
	// ExtraInMember: the member carries a segment the consensus lacks
	// (an insertion run) — the consensus was assembled from the skipping
	// isoform and this member has the full form.
	ExtraInMember
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == SkippedInMember {
		return "skipped-in-member"
	}
	return "extra-in-member"
}

// Event is one candidate splice event.
type Event struct {
	// Member is the EST index the event was observed on.
	Member int
	// Kind is the event direction.
	Kind Kind
	// ConsensusPos is the gap's start position on the consensus.
	ConsensusPos int32
	// GapLen is the length of the skipped/extra segment.
	GapLen int32
	// FlankMatches is the smaller of the matched-column counts on the
	// two sides of the gap — the evidence strength.
	FlankMatches int32
	// Flipped reports whether the member aligned in reverse complement.
	Flipped bool
}

// Options tunes detection.
type Options struct {
	// Scoring for the member-vs-consensus alignments.
	Scoring align.Scoring
	// JumpOpen is the flat penalty for opening a spliced-out segment in
	// the jump-state aligner (length-independent, unlike affine gaps).
	JumpOpen int32
	// MinGap is the minimum skipped-segment length to report (shorter
	// indel runs are ordinary sequencing artifacts; real exons are
	// longer).
	MinGap int32
	// MinFlank is the minimum number of matched columns required on each
	// side of the gap.
	MinFlank int32
	// MinIdentity is the minimum alignment identity measured outside
	// reported gaps.
	MinIdentity float64
}

// DefaultOptions matches the simulator's exon-length regime.
func DefaultOptions() Options {
	return Options{
		Scoring:     align.DefaultScoring(),
		JumpOpen:    -25,
		MinGap:      50,
		MinFlank:    30,
		MinIdentity: 0.85,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if err := o.Scoring.Validate(); err != nil {
		return err
	}
	if o.MinGap < 1 || o.MinFlank < 1 {
		return fmt.Errorf("altsplice: MinGap and MinFlank must be positive")
	}
	if o.JumpOpen >= 0 {
		return fmt.Errorf("altsplice: JumpOpen must be negative")
	}
	if o.MinIdentity < 0 || o.MinIdentity > 1 {
		return fmt.Errorf("altsplice: MinIdentity out of [0,1]")
	}
	return nil
}

// Detect scans the cluster members against the cluster consensus and returns
// candidate events, ordered by member.
func Detect(ests []seq.Sequence, members []int, cons seq.Sequence, opt Options) ([]Event, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(cons) == 0 {
		return nil, fmt.Errorf("altsplice: empty consensus")
	}
	var events []Event
	for _, m := range members {
		if m < 0 || m >= len(ests) {
			return nil, fmt.Errorf("altsplice: member %d out of range", m)
		}
		fwd := splicedOverlapAlign(cons, ests[m], opt.Scoring, opt.JumpOpen)
		rc := ests[m].ReverseComplement()
		rev := splicedOverlapAlign(cons, rc, opt.Scoring, opt.JumpOpen)
		tr, flipped := fwd, false
		if rev.Score > fwd.Score {
			tr, flipped = rev, true
		}
		events = append(events, scan(tr, m, flipped, opt)...)
	}
	return events, nil
}

// scan walks one alignment's edit script for qualifying internal gap runs.
func scan(tr align.OverlapTrace, member int, flipped bool, opt Options) []Event {
	// Identity outside large gaps: large gaps are the candidate events
	// themselves, so they must not disqualify the alignment.
	var gapCols, bigGaps int32
	for _, e := range tr.Cigar {
		if (e.Op == align.OpInsert || e.Op == align.OpDelete) && e.Len >= opt.MinGap {
			gapCols += e.Len
			bigGaps++
		}
	}
	effCols := tr.Cols - gapCols
	if effCols <= 0 || float64(tr.Matches)/float64(effCols) < opt.MinIdentity {
		return nil
	}

	var events []Event
	consPos := tr.AStart
	// matchedBefore tracks matched columns seen so far; for each gap we
	// later need matched columns after it, so collect candidates first.
	type candidate struct {
		ev           Event
		matchedAfter *int32
	}
	var pending []candidate
	var matchedSoFar int32
	for _, e := range tr.Cigar {
		switch e.Op {
		case align.OpMatch:
			matchedSoFar += e.Len
			for i := range pending {
				*pending[i].matchedAfter += e.Len
			}
			consPos += e.Len
		case align.OpMismatch:
			consPos += e.Len
		case align.OpDelete:
			if e.Len >= opt.MinGap && matchedSoFar >= opt.MinFlank {
				after := new(int32)
				pending = append(pending, candidate{
					ev: Event{
						Member:       member,
						Kind:         SkippedInMember,
						ConsensusPos: consPos,
						GapLen:       e.Len,
						FlankMatches: matchedSoFar,
						Flipped:      flipped,
					},
					matchedAfter: after,
				})
			}
			consPos += e.Len
		case align.OpInsert:
			if e.Len >= opt.MinGap && matchedSoFar >= opt.MinFlank {
				after := new(int32)
				pending = append(pending, candidate{
					ev: Event{
						Member:       member,
						Kind:         ExtraInMember,
						ConsensusPos: consPos,
						GapLen:       e.Len,
						FlankMatches: matchedSoFar,
						Flipped:      flipped,
					},
					matchedAfter: after,
				})
			}
		}
	}
	for _, c := range pending {
		if *c.matchedAfter < opt.MinFlank {
			continue
		}
		if *c.matchedAfter < c.ev.FlankMatches {
			c.ev.FlankMatches = *c.matchedAfter
		}
		events = append(events, c.ev)
	}
	return events
}
