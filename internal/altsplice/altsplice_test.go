package altsplice

import (
	"math/rand"
	"testing"

	"pace/internal/seq"
	"pace/internal/simulate"
)

func randSeq(rng *rand.Rand, n int) seq.Sequence {
	s := make(seq.Sequence, n)
	for i := range s {
		s[i] = seq.Code(rng.Intn(4))
	}
	return s
}

// isoWorld builds a full transcript and its exon-skipping isoform.
func isoWorld(rng *rand.Rand) (full, skipped seq.Sequence, exonStart, exonLen int) {
	e1 := randSeq(rng, 150)
	e2 := randSeq(rng, 100) // the skippable exon
	e3 := randSeq(rng, 150)
	full = append(append(e1.Clone(), e2...), e3...)
	skipped = append(e1.Clone(), e3...)
	return full, skipped, 150, 100
}

func TestValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.MinGap = 0
	if err := bad.Validate(); err == nil {
		t.Error("MinGap 0 accepted")
	}
	bad = DefaultOptions()
	bad.MinIdentity = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("identity 1.5 accepted")
	}
	bad = DefaultOptions()
	bad.Scoring.Match = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad scoring accepted")
	}
}

func TestDetectSkippedInMember(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	full, skipped, exonStart, exonLen := isoWorld(rng)
	events, err := Detect([]seq.Sequence{skipped}, []int{0}, full, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events: %+v", events)
	}
	ev := events[0]
	if ev.Kind != SkippedInMember {
		t.Errorf("kind %v", ev.Kind)
	}
	if ev.GapLen != int32(exonLen) {
		t.Errorf("gap len %d want %d", ev.GapLen, exonLen)
	}
	// The gap may shift by a few bases if exon boundaries share sequence.
	if d := int(ev.ConsensusPos) - exonStart; d < -5 || d > 5 {
		t.Errorf("gap position %d want ≈%d", ev.ConsensusPos, exonStart)
	}
	if ev.FlankMatches < 100 {
		t.Errorf("flank matches %d", ev.FlankMatches)
	}
}

func TestDetectExtraInMember(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	full, skipped, _, exonLen := isoWorld(rng)
	// Consensus is the skipping isoform; the member carries the exon.
	events, err := Detect([]seq.Sequence{full}, []int{0}, skipped, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != ExtraInMember {
		t.Fatalf("events: %+v", events)
	}
	if events[0].GapLen != int32(exonLen) {
		t.Errorf("gap len %d", events[0].GapLen)
	}
}

func TestDetectFlippedMember(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	full, skipped, _, _ := isoWorld(rng)
	events, err := Detect([]seq.Sequence{skipped.ReverseComplement()}, []int{0}, full, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Flipped {
		t.Fatalf("flipped detection: %+v", events)
	}
}

func TestNoEventOnOrdinaryMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	full, _, _, _ := isoWorld(rng)
	// Ordinary error-bearing reads of the full form: no events.
	reads := []seq.Sequence{
		simulate.Mutate(full[:250], 0.02, rng),
		simulate.Mutate(full[150:], 0.02, rng),
	}
	events, err := Detect(reads, []int{0, 1}, full, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("spurious events: %+v", events)
	}
}

func TestShortGapIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	full := randSeq(rng, 300)
	// Member with a 20-base deletion: below MinGap.
	member := append(full[:100].Clone(), full[120:]...)
	events, err := Detect([]seq.Sequence{member}, []int{0}, full, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("short gap reported: %+v", events)
	}
}

func TestGapAtEdgeNeedsFlanks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	full := randSeq(rng, 300)
	// Member missing a chunk right at the start: with free-end-gap
	// alignment this is a shifted start, not an internal gap; and even if
	// aligned as a gap it lacks the left flank. No event either way.
	member := full[80:].Clone()
	events, err := Detect([]seq.Sequence{member}, []int{0}, full, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("edge gap reported: %+v", events)
	}
}

func TestDetectNoisyIsoformReads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full, skipped, _, _ := isoWorld(rng)
	found := 0
	for i := 0; i < 10; i++ {
		read := simulate.Mutate(skipped, 0.02, rng)
		events, err := Detect([]seq.Sequence{read}, []int{0}, full, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 1 && events[0].Kind == SkippedInMember {
			found++
		}
	}
	if found < 8 {
		t.Errorf("detected only %d/10 noisy isoform reads", found)
	}
}

func TestDetectInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	full := randSeq(rng, 100)
	if _, err := Detect([]seq.Sequence{full}, []int{5}, full, DefaultOptions()); err == nil {
		t.Error("bad member index accepted")
	}
	if _, err := Detect([]seq.Sequence{full}, []int{0}, nil, DefaultOptions()); err == nil {
		t.Error("empty consensus accepted")
	}
}

func TestKindString(t *testing.T) {
	if SkippedInMember.String() != "skipped-in-member" || ExtraInMember.String() != "extra-in-member" {
		t.Error("kind strings")
	}
}

// End-to-end with the simulator: isoform reads within one gene's cluster are
// detected against the full transcript.
func TestSimulatedIsoforms(t *testing.T) {
	cfg := simulate.DefaultConfig(40)
	cfg.NumGenes = 1
	cfg.AltSpliceProb = 1
	cfg.ErrorRate = 0.01
	cfg.Seed = 9
	b, err := simulate.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Genes[0].SkippedIsoform == nil {
		t.Skip("gene drew no isoform (too few exons)")
	}
	members := make([]int, len(b.ESTs))
	isoCount := 0
	for i := range members {
		members[i] = i
		if b.FromIsoform[i] {
			isoCount++
		}
	}
	if isoCount == 0 {
		t.Fatal("no isoform reads sampled")
	}
	events, err := Detect(b.ESTs, members, b.Genes[0].MRNA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every event should be on an isoform read that spans the junction;
	// count how many isoform reads produced one.
	hits := map[int]bool{}
	for _, ev := range events {
		if !b.FromIsoform[ev.Member] {
			t.Errorf("event on non-isoform read %d: %+v", ev.Member, ev)
		}
		hits[ev.Member] = true
	}
	if len(hits) == 0 {
		t.Error("no isoform reads detected")
	}
}
