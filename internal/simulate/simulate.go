// Package simulate generates synthetic EST benchmarks with known ground
// truth. It stands in for the paper's 81,414 Arabidopsis thaliana ESTs and
// their "correct clustering" (which the authors derived from the finished
// genome): we instead derive correctness by construction, remembering which
// gene every EST was sampled from.
//
// The generative model follows the biology sketched in the paper's Figure 1:
// a gene is a genomic stretch of alternating exons and introns; its mRNA is
// the concatenation of the exons; cDNA fragments of varying lengths are
// 3'-anchored subsequences of the mRNA (oligo-dT priming); an EST is a
// single sequencing read of 400–700 bases taken from either end of a
// fragment, perturbed by substitution/insertion/deletion errors, and
// deposited in an arbitrary, unrecorded strand orientation.
package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"pace/internal/fasta"
	"pace/internal/seq"
)

// Config parameterizes benchmark generation. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// NumESTs is the total number of ESTs to emit (the paper's n).
	NumESTs int
	// NumGenes is the number of distinct genes. 0 derives it as
	// NumESTs/20 (≥1), giving a mean sampling depth of 20x.
	NumGenes int

	// MeanESTLen and SDESTLen shape the read-length distribution
	// (paper: average EST length 500-600).
	MeanESTLen int
	SDESTLen   int
	// MinESTLen floors read lengths; reads shorter than this are clamped.
	MinESTLen int

	// ExonLen and IntronLen are inclusive [min,max] ranges for gene
	// structure; ExonsPerGene likewise.
	ExonLen      [2]int
	IntronLen    [2]int
	ExonsPerGene [2]int

	// ErrorRate is the total per-base sequencing error probability,
	// split 80% substitutions, 10% insertions, 10% deletions.
	ErrorRate float64
	// RevCompProb is the probability an EST is deposited as its reverse
	// complement (strand unknown to the clusterer).
	RevCompProb float64
	// ExpressionSkew is the Zipf-like exponent governing how unevenly
	// ESTs are distributed over genes; 0 means uniform depth.
	ExpressionSkew float64

	// AltSpliceProb is the probability that a gene (with at least three
	// exons) carries an alternatively spliced isoform that skips one
	// internal exon; ESTs from such genes sample either isoform equally.
	// Detecting these events is the paper's named "additional
	// processing" extension.
	AltSpliceProb float64

	// PolyATail, when non-zero, appends a poly(A) tail of length drawn
	// uniformly from the inclusive range to every transcript's 3' end —
	// the real-world feature that makes tail trimming necessary before
	// suffix-tree clustering.
	PolyATail [2]int

	// ParalogFamilies gives that many genes a diverged duplicate
	// (a paralog) sampled like any other gene — a stress scenario for
	// telling near-identical gene family members apart. Capped at the
	// number of base genes.
	ParalogFamilies int
	// ParalogDivergence is the per-base mutation rate applied to a
	// paralog's transcript (e.g. 0.1 = 10% diverged).
	ParalogDivergence float64

	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig returns parameters modeled on the paper's data set.
func DefaultConfig(numESTs int) Config {
	return Config{
		NumESTs:        numESTs,
		MeanESTLen:     550,
		SDESTLen:       60,
		MinESTLen:      150,
		ExonLen:        [2]int{120, 400},
		IntronLen:      [2]int{60, 300},
		ExonsPerGene:   [2]int{3, 8},
		ErrorRate:      0.02,
		RevCompProb:    0.5,
		ExpressionSkew: 0.8,
	}
}

// Validate checks a Config for consistency.
func (c Config) Validate() error {
	if c.NumESTs <= 0 {
		return fmt.Errorf("simulate: NumESTs must be positive, got %d", c.NumESTs)
	}
	if c.NumGenes < 0 {
		return fmt.Errorf("simulate: NumGenes must be non-negative")
	}
	if c.MeanESTLen < c.MinESTLen || c.MinESTLen <= 0 {
		return fmt.Errorf("simulate: need 0 < MinESTLen <= MeanESTLen")
	}
	if c.SDESTLen < 0 {
		return fmt.Errorf("simulate: SDESTLen must be non-negative")
	}
	for _, r := range [][2]int{c.ExonLen, c.IntronLen, c.ExonsPerGene} {
		if r[0] <= 0 || r[1] < r[0] {
			return fmt.Errorf("simulate: invalid range %v", r)
		}
	}
	if c.ErrorRate < 0 || c.ErrorRate > 0.5 {
		return fmt.Errorf("simulate: ErrorRate %f out of [0, 0.5]", c.ErrorRate)
	}
	if c.RevCompProb < 0 || c.RevCompProb > 1 {
		return fmt.Errorf("simulate: RevCompProb %f out of [0,1]", c.RevCompProb)
	}
	if c.ExpressionSkew < 0 {
		return fmt.Errorf("simulate: ExpressionSkew must be non-negative")
	}
	if c.AltSpliceProb < 0 || c.AltSpliceProb > 1 {
		return fmt.Errorf("simulate: AltSpliceProb %f out of [0,1]", c.AltSpliceProb)
	}
	if c.PolyATail != [2]int{} && (c.PolyATail[0] < 1 || c.PolyATail[1] < c.PolyATail[0]) {
		return fmt.Errorf("simulate: invalid PolyATail range %v", c.PolyATail)
	}
	if c.ParalogFamilies < 0 {
		return fmt.Errorf("simulate: ParalogFamilies must be non-negative")
	}
	if c.ParalogDivergence < 0 || c.ParalogDivergence > 0.5 {
		return fmt.Errorf("simulate: ParalogDivergence %f out of [0, 0.5]", c.ParalogDivergence)
	}
	return nil
}

// Gene is one simulated gene.
type Gene struct {
	// Genomic is the gene's genomic sequence (exons and introns).
	Genomic seq.Sequence
	// MRNA is the spliced transcript (concatenated exons).
	MRNA seq.Sequence
	// ExonBounds are [start,end) intervals of the exons within Genomic.
	ExonBounds [][2]int
	// SkippedIsoform is an alternatively spliced transcript omitting
	// exon SkippedExon, or nil when the gene has a single isoform.
	SkippedIsoform seq.Sequence
	// SkippedExon is the index of the omitted exon (-1 if none).
	SkippedExon int
}

// Benchmark is a generated data set with ground truth.
type Benchmark struct {
	// ESTs are the reads, in emission order.
	ESTs []seq.Sequence
	// Truth[i] is the gene index EST i was sampled from — the correct
	// clustering.
	Truth []int32
	// Flipped[i] records whether EST i was deposited reverse-complemented
	// (hidden from the clusterer; useful for diagnostics).
	Flipped []bool
	// FromIsoform[i] records whether EST i was sampled from its gene's
	// exon-skipping isoform (always false without AltSpliceProb).
	FromIsoform []bool
	// Genes are the source genes.
	Genes []Gene
	// Config echoes the generating configuration.
	Config Config
}

// Generate builds a benchmark from cfg.
func Generate(cfg Config) (*Benchmark, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumGenes == 0 {
		cfg.NumGenes = cfg.NumESTs / 20
		if cfg.NumGenes == 0 {
			cfg.NumGenes = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	b := &Benchmark{
		ESTs:    make([]seq.Sequence, 0, cfg.NumESTs),
		Truth:   make([]int32, 0, cfg.NumESTs),
		Flipped: make([]bool, 0, cfg.NumESTs),
		Genes:   make([]Gene, cfg.NumGenes),
		Config:  cfg,
	}
	for g := range b.Genes {
		b.Genes[g] = synthesizeGene(cfg, rng)
		gene := &b.Genes[g]
		gene.SkippedExon = -1
		if cfg.AltSpliceProb > 0 && len(gene.ExonBounds) >= 3 && rng.Float64() < cfg.AltSpliceProb {
			k := 1 + rng.Intn(len(gene.ExonBounds)-2) // internal exon
			var iso seq.Sequence
			for e, bd := range gene.ExonBounds {
				if e == k {
					continue
				}
				iso = append(iso, gene.Genomic[bd[0]:bd[1]]...)
			}
			if len(iso) >= cfg.MinESTLen {
				gene.SkippedIsoform = iso
				gene.SkippedExon = k
			}
		}
		if cfg.PolyATail != [2]int{} {
			tail := make(seq.Sequence, randRange(rng, cfg.PolyATail))
			// make() zeroes the slice and seq.A == 0: an all-A tail.
			gene.MRNA = append(gene.MRNA, tail...)
			if gene.SkippedIsoform != nil {
				gene.SkippedIsoform = append(gene.SkippedIsoform, tail...)
			}
		}
	}
	// Paralogs: diverged duplicates of the first k genes, appended as
	// genes of their own (a paralog's ESTs form their own true cluster).
	k := cfg.ParalogFamilies
	if k > cfg.NumGenes {
		k = cfg.NumGenes
	}
	for g := 0; g < k; g++ {
		b.Genes = append(b.Genes, DivergedCopy(b.Genes[g], cfg.ParalogDivergence, rng))
	}
	cfg.NumGenes = len(b.Genes)
	b.Config = cfg

	counts := allocateDepth(cfg, rng)
	for g, k := range counts {
		for i := 0; i < k; i++ {
			transcript := b.Genes[g].MRNA
			fromIso := false
			if b.Genes[g].SkippedIsoform != nil && rng.Intn(2) == 1 {
				transcript = b.Genes[g].SkippedIsoform
				fromIso = true
			}
			est, flipped := sampleEST(cfg, transcript, rng)
			b.ESTs = append(b.ESTs, est)
			b.Truth = append(b.Truth, int32(g))
			b.Flipped = append(b.Flipped, flipped)
			b.FromIsoform = append(b.FromIsoform, fromIso)
		}
	}
	// Shuffle emission order so gene members are interleaved, as in a
	// real EST archive.
	rng.Shuffle(len(b.ESTs), func(i, j int) {
		b.ESTs[i], b.ESTs[j] = b.ESTs[j], b.ESTs[i]
		b.Truth[i], b.Truth[j] = b.Truth[j], b.Truth[i]
		b.Flipped[i], b.Flipped[j] = b.Flipped[j], b.Flipped[i]
		b.FromIsoform[i], b.FromIsoform[j] = b.FromIsoform[j], b.FromIsoform[i]
	})
	return b, nil
}

// allocateDepth splits NumESTs over genes with Zipf-like weights, giving
// every gene at least one EST (leftovers notwithstanding).
func allocateDepth(cfg Config, rng *rand.Rand) []int {
	g := cfg.NumGenes
	weights := make([]float64, g)
	total := 0.0
	for i := range weights {
		weights[i] = 1.0 / math.Pow(float64(i+1), cfg.ExpressionSkew)
		total += weights[i]
	}
	// Random gene order so high-expression genes aren't always the
	// low-numbered ones.
	perm := rng.Perm(g)
	counts := make([]int, g)
	remaining := cfg.NumESTs
	// First give each gene one EST while supply lasts.
	for i := 0; i < g && remaining > 0; i++ {
		counts[i]++
		remaining--
	}
	for i := 0; i < remaining; i++ {
		r := rng.Float64() * total
		acc := 0.0
		pick := g - 1
		for j, w := range weights {
			acc += w
			if r < acc {
				pick = j
				break
			}
		}
		counts[perm[pick]]++
	}
	return counts
}

func randRange(rng *rand.Rand, r [2]int) int {
	return r[0] + rng.Intn(r[1]-r[0]+1)
}

func randSeq(rng *rand.Rand, n int) seq.Sequence {
	s := make(seq.Sequence, n)
	for i := range s {
		s[i] = seq.Code(rng.Intn(seq.AlphabetSize))
	}
	return s
}

// synthesizeGene builds one gene: exons separated by introns, plus the
// spliced mRNA.
func synthesizeGene(cfg Config, rng *rand.Rand) Gene {
	nExons := randRange(rng, cfg.ExonsPerGene)
	var genomic, mrna seq.Sequence
	var bounds [][2]int
	for e := 0; e < nExons; e++ {
		if e > 0 {
			genomic = append(genomic, randSeq(rng, randRange(rng, cfg.IntronLen))...)
		}
		exon := randSeq(rng, randRange(rng, cfg.ExonLen))
		start := len(genomic)
		genomic = append(genomic, exon...)
		bounds = append(bounds, [2]int{start, len(genomic)})
		mrna = append(mrna, exon...)
	}
	// Guarantee the transcript can host a full-length read.
	for len(mrna) < cfg.MeanESTLen+2*cfg.SDESTLen {
		pad := randSeq(rng, cfg.ExonLen[0])
		mrna = append(mrna, pad...)
		start := len(genomic)
		genomic = append(genomic, pad...)
		bounds = append(bounds, [2]int{start, len(genomic)})
	}
	return Gene{Genomic: genomic, MRNA: mrna, ExonBounds: bounds}
}

// sampleEST draws one read from a transcript: a 3'-anchored cDNA fragment,
// read from its 5' or 3' end, error-perturbed, and possibly strand-flipped.
func sampleEST(cfg Config, mrna seq.Sequence, rng *rand.Rand) (est seq.Sequence, flipped bool) {
	// Fragment: oligo-dT priming anchors at the 3' end with a variable
	// 5' extent.
	minFrag := cfg.MinESTLen
	fragLen := minFrag + rng.Intn(len(mrna)-minFrag+1)
	frag := mrna[len(mrna)-fragLen:]

	readLen := int(float64(cfg.MeanESTLen) + rng.NormFloat64()*float64(cfg.SDESTLen))
	if readLen < cfg.MinESTLen {
		readLen = cfg.MinESTLen
	}
	if readLen > len(frag) {
		readLen = len(frag)
	}

	var raw seq.Sequence
	if rng.Intn(2) == 0 {
		// 5' read: prefix of the fragment.
		raw = frag[:readLen]
	} else {
		// 3' read: reverse complement of the fragment's tail.
		raw = frag[len(frag)-readLen:].ReverseComplement()
	}

	est = Mutate(raw, cfg.ErrorRate, rng)
	if rng.Float64() < cfg.RevCompProb {
		est = est.ReverseComplement()
		flipped = true
	}
	return est, flipped
}

// Mutate applies sequencing errors to s at the given total per-base rate
// (80% substitutions, 10% insertions, 10% deletions) and returns a new
// sequence. A rate of 0 returns an exact copy.
func Mutate(s seq.Sequence, rate float64, rng *rand.Rand) seq.Sequence {
	out := make(seq.Sequence, 0, len(s)+4)
	for _, c := range s {
		if rng.Float64() >= rate {
			out = append(out, c)
			continue
		}
		switch r := rng.Float64(); {
		case r < 0.8: // substitution to a different base
			out = append(out, seq.Code((int(c)+1+rng.Intn(3))%seq.AlphabetSize))
		case r < 0.9: // insertion before this base
			out = append(out, seq.Code(rng.Intn(seq.AlphabetSize)), c)
		default: // deletion
		}
	}
	if len(out) == 0 {
		// Pathological high-rate corner: keep at least one base so the
		// EST remains valid input.
		out = append(out, s[0])
	}
	return out
}

// DivergedCopy returns a copy of a gene whose transcript has been mutated at
// the given rate — a paralog for gene-family scenarios. Its genomic sequence
// is regenerated trivially as the transcript itself (intron structure is
// irrelevant to paralog clustering stress tests).
func DivergedCopy(g Gene, rate float64, rng *rand.Rand) Gene {
	m := Mutate(g.MRNA, rate, rng)
	return Gene{Genomic: m.Clone(), MRNA: m, ExonBounds: [][2]int{{0, len(m)}}, SkippedExon: -1}
}

// Records converts the benchmark to FASTA records. IDs encode the index and
// the true gene for readability; the clusterer must not rely on them.
func (b *Benchmark) Records() []*fasta.Record {
	recs := make([]*fasta.Record, len(b.ESTs))
	for i, e := range b.ESTs {
		recs[i] = &fasta.Record{
			ID:   fmt.Sprintf("est%06d", i),
			Desc: fmt.Sprintf("gene=%d flipped=%v", b.Truth[i], b.Flipped[i]),
			Seq:  e,
		}
	}
	return recs
}

// TotalChars returns the total character count over all ESTs.
func (b *Benchmark) TotalChars() int64 {
	var n int64
	for _, e := range b.ESTs {
		n += int64(len(e))
	}
	return n
}
