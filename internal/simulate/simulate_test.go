package simulate

import (
	"math/rand"
	"testing"

	"pace/internal/align"
	"pace/internal/seq"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig(100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumESTs = 0 },
		func(c *Config) { c.NumGenes = -1 },
		func(c *Config) { c.MinESTLen = 0 },
		func(c *Config) { c.MinESTLen = c.MeanESTLen + 1 },
		func(c *Config) { c.SDESTLen = -1 },
		func(c *Config) { c.ExonLen = [2]int{10, 5} },
		func(c *Config) { c.IntronLen = [2]int{0, 5} },
		func(c *Config) { c.ExonsPerGene = [2]int{0, 2} },
		func(c *Config) { c.ErrorRate = 0.7 },
		func(c *Config) { c.ErrorRate = -0.1 },
		func(c *Config) { c.RevCompProb = 1.5 },
		func(c *Config) { c.ExpressionSkew = -1 },
	}
	for i, mod := range bad {
		c := DefaultConfig(100)
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := DefaultConfig(200)
	cfg.NumGenes = 10
	cfg.Seed = 1
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ESTs) != 200 || len(b.Truth) != 200 || len(b.Flipped) != 200 {
		t.Fatalf("lengths: %d %d %d", len(b.ESTs), len(b.Truth), len(b.Flipped))
	}
	if len(b.Genes) != 10 {
		t.Fatalf("genes: %d", len(b.Genes))
	}
	seen := map[int32]int{}
	for _, g := range b.Truth {
		if g < 0 || int(g) >= 10 {
			t.Fatalf("truth out of range: %d", g)
		}
		seen[g]++
	}
	if len(seen) != 10 {
		t.Errorf("only %d genes sampled; every gene should receive an EST", len(seen))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Seed = 42
	b1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1.ESTs {
		if !b1.ESTs[i].Equal(b2.ESTs[i]) || b1.Truth[i] != b2.Truth[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	cfg.Seed = 43
	b3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range b1.ESTs {
		if b1.ESTs[i].Equal(b3.ESTs[i]) {
			same++
		}
	}
	if same == len(b1.ESTs) {
		t.Error("different seeds produced identical data")
	}
}

func TestESTLengths(t *testing.T) {
	cfg := DefaultConfig(300)
	cfg.Seed = 7
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum int
	for i, e := range b.ESTs {
		// Indels can shift length slightly beyond the raw clamp range.
		if len(e) < cfg.MinESTLen/2 {
			t.Fatalf("EST %d absurdly short: %d", i, len(e))
		}
		sum += len(e)
	}
	mean := float64(sum) / float64(len(b.ESTs))
	if mean < 350 || mean > 650 {
		t.Errorf("mean EST length %f outside plausible band", mean)
	}
}

func TestGeneStructure(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.Seed = 3
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range b.Genes {
		if len(g.MRNA) < cfg.MeanESTLen {
			t.Errorf("gene %d transcript too short: %d", gi, len(g.MRNA))
		}
		// mRNA must equal the concatenation of the exon intervals.
		var spliced seq.Sequence
		for _, bd := range g.ExonBounds {
			if bd[0] < 0 || bd[1] > len(g.Genomic) || bd[0] >= bd[1] {
				t.Fatalf("gene %d: bad exon bounds %v", gi, bd)
			}
			spliced = append(spliced, g.Genomic[bd[0]:bd[1]]...)
		}
		if !spliced.Equal(g.MRNA) {
			t.Fatalf("gene %d: mRNA is not the exon concatenation", gi)
		}
	}
}

// Each EST must align strongly to its source transcript (in one orientation),
// confirming the generative chain end to end.
func TestESTsAlignToSource(t *testing.T) {
	cfg := DefaultConfig(40)
	cfg.Seed = 11
	cfg.ErrorRate = 0.01
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := align.DefaultScoring()
	for i, e := range b.ESTs {
		mrna := b.Genes[b.Truth[i]].MRNA
		fwd := align.Local(e, mrna, sc)
		rev := align.Local(e.ReverseComplement(), mrna, sc)
		best := fwd
		if rev.Score > best.Score {
			best = rev
		}
		// A read of length L with ~1% error should locally align with
		// score close to L*match.
		if float64(best.Score) < 0.8*float64(len(e))*float64(sc.Match) {
			t.Fatalf("EST %d does not align to its source (score %d, len %d)", i, best.Score, len(e))
		}
	}
}

func TestFlippedFlagConsistent(t *testing.T) {
	cfg := DefaultConfig(200)
	cfg.Seed = 5
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, f := range b.Flipped {
		if f {
			flips++
		}
	}
	if flips < 50 || flips > 150 {
		t.Errorf("flip count %d implausible for p=0.5", flips)
	}
}

func TestZeroRevComp(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.RevCompProb = 0
	cfg.Seed = 2
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range b.Flipped {
		if f {
			t.Fatalf("EST %d flipped despite p=0", i)
		}
	}
}

func TestMutateZeroRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := seq.Sequence{seq.A, seq.C, seq.G, seq.T}
	m := Mutate(s, 0, rng)
	if !m.Equal(s) {
		t.Error("zero-rate mutate must be identity")
	}
	m[0] = seq.T
	if s[0] != seq.A {
		t.Error("mutate must copy")
	}
}

func TestMutateRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := make(seq.Sequence, 10000)
	for i := range s {
		s[i] = seq.Code(rng.Intn(4))
	}
	m := Mutate(s, 0.05, rng)
	diff := 0
	n := len(s)
	if len(m) < n {
		n = len(m)
	}
	for i := 0; i < n; i++ {
		if s[i] != m[i] {
			diff++
		}
	}
	// With 5% errors the Hamming-ish difference must be clearly nonzero
	// but bounded (indels cause downstream shifts, hence loose upper bound).
	if diff < 100 {
		t.Errorf("too few differences: %d", diff)
	}
}

func TestMutateExtremeRateKeepsNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := seq.Sequence{seq.A}
	for i := 0; i < 100; i++ {
		if len(Mutate(s, 0.5, rng)) == 0 {
			t.Fatal("mutate emptied a sequence")
		}
	}
}

func TestDivergedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := synthesizeGene(DefaultConfig(10), rng)
	p := DivergedCopy(g, 0.1, rng)
	if p.MRNA.Equal(g.MRNA) {
		t.Error("paralog should differ")
	}
	sc := align.DefaultScoring()
	st := align.Global(g.MRNA, p.MRNA, sc)
	if st.Identity() < 0.75 {
		t.Errorf("paralog diverged too far: %f", st.Identity())
	}
}

func TestRecords(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Seed = 4
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := b.Records()
	if len(recs) != 10 {
		t.Fatal("record count")
	}
	ids := map[string]bool{}
	for _, r := range recs {
		if ids[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
		if len(r.Seq) == 0 {
			t.Fatal("empty record seq")
		}
	}
}

func TestTotalChars(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.Seed = 10
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, e := range b.ESTs {
		want += int64(len(e))
	}
	if b.TotalChars() != want {
		t.Errorf("TotalChars %d want %d", b.TotalChars(), want)
	}
}

func TestExpressionSkewChangesDepth(t *testing.T) {
	flat := DefaultConfig(1000)
	flat.NumGenes = 20
	flat.ExpressionSkew = 0
	flat.Seed = 12
	skew := flat
	skew.ExpressionSkew = 2.0

	depthSpread := func(c Config) int {
		b, err := Generate(c)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, c.NumGenes)
		for _, g := range b.Truth {
			counts[g]++
		}
		min, max := counts[0], counts[0]
		for _, k := range counts {
			if k < min {
				min = k
			}
			if k > max {
				max = k
			}
		}
		return max - min
	}
	if depthSpread(skew) <= depthSpread(flat) {
		t.Error("higher skew should widen depth spread")
	}
}

func BenchmarkGenerate1000(b *testing.B) {
	cfg := DefaultConfig(1000)
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPolyATails(t *testing.T) {
	cfg := DefaultConfig(60)
	cfg.NumGenes = 4
	cfg.PolyATail = [2]int{20, 30}
	cfg.Seed = 13
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range b.Genes {
		// Poly(A) is added post-transcriptionally: present on the mRNA,
		// absent from the genomic sequence.
		tail := g.MRNA[len(g.MRNA)-20:]
		for _, c := range tail {
			if c != seq.A {
				t.Fatalf("gene %d transcript lacks poly(A) tail", gi)
			}
		}
	}
	// 3'-anchored fragments mean many reads carry (possibly flipped)
	// tails: count reads with a >=10 homopolymer A or T end run.
	tailed := 0
	for _, e := range b.ESTs {
		if hasEndRun(e, seq.A) || hasEndRun(e, seq.T) {
			tailed++
		}
	}
	if tailed < len(b.ESTs)/4 {
		t.Errorf("only %d/%d reads carry tails", tailed, len(b.ESTs))
	}
}

func hasEndRun(e seq.Sequence, c seq.Code) bool {
	n := 0
	for i := len(e) - 1; i >= 0 && e[i] == c; i-- {
		n++
	}
	if n >= 10 {
		return true
	}
	n = 0
	for i := 0; i < len(e) && e[i] == c; i++ {
		n++
	}
	return n >= 10
}

func TestPolyATailValidation(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.PolyATail = [2]int{5, 2}
	if err := cfg.Validate(); err == nil {
		t.Error("inverted tail range accepted")
	}
}
