package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pace"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	if cfg.Options.Window == 0 {
		cfg.Options = testOptions()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(ts.Close)
	return m, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestHTTPSessionLifecycle walks the whole API: create, list, ingest JSON
// and FASTA batches, poll state, fetch labels both ways, delete.
func TestHTTPSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	resp, body := doJSON(t, "POST", base+"/v1/sessions", map[string]string{"id": "lib1", "tenant": "lab"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}

	// Duplicate create conflicts.
	resp, _ = doJSON(t, "POST", base+"/v1/sessions", map[string]string{"id": "lib1"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", resp.StatusCode)
	}
	// Invalid id is a 400.
	resp, _ = doJSON(t, "POST", base+"/v1/sessions", map[string]string{"id": "../evil"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: %d, want 400", resp.StatusCode)
	}

	batches := testCorpus(t, 40, 11, 20)

	// Batch 1 as JSON.
	var jb struct {
		ESTs []map[string]string `json:"ests"`
	}
	for _, r := range batches[0] {
		jb.ESTs = append(jb.ESTs, map[string]string{"id": r.ID, "seq": r.Seq})
	}
	resp, body = doJSON(t, "POST", base+"/v1/sessions/lib1/batches", jb)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch 1: %d %s", resp.StatusCode, body)
	}
	var br BatchResult
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.BatchESTs != len(batches[0]) || br.Info.NumESTs != len(batches[0]) {
		t.Fatalf("batch 1 result: %+v", br)
	}

	// Batch 2 as FASTA.
	var fb strings.Builder
	for _, r := range batches[1] {
		fmt.Fprintf(&fb, ">%s\n%s\n", r.ID, r.Seq)
	}
	req, err := http.NewRequest("POST", base+"/v1/sessions/lib1/batches", strings.NewReader(fb.String()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/x-fasta")
	fresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	fbody, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("FASTA batch: %d %s", fresp.StatusCode, fbody)
	}

	// Info and list reflect both batches.
	resp, body = doJSON(t, "GET", base+"/v1/sessions/lib1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("info: %d", resp.StatusCode)
	}
	var info Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	total := len(batches[0]) + len(batches[1])
	if info.NumESTs != total || info.Batches != 2 || info.Tenant != "lab" {
		t.Fatalf("info: %+v, want %d ESTs / 2 batches / tenant lab", info, total)
	}
	resp, body = doJSON(t, "GET", base+"/v1/sessions", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"lib1"`) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}

	// Labels: TSV default, JSON on demand; both match a from-scratch run.
	resp, body = doJSON(t, "GET", base+"/v1/sessions/lib1/labels", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("labels: %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != total {
		t.Fatalf("TSV has %d lines, want %d", len(lines), total)
	}
	tsvLabels := make([]int, len(lines))
	for i, ln := range lines {
		parts := strings.Split(ln, "\t")
		if len(parts) != 2 || parts[0] != batchRecID(batches, i) {
			t.Fatalf("TSV line %d: %q", i, ln)
		}
		fmt.Sscanf(parts[1], "%d", &tsvLabels[i])
	}
	want := fromScratchLabels(t, batches[:2], testOptions())
	if !samePartition(tsvLabels, want) {
		t.Error("TSV labels differ from from-scratch run")
	}

	resp, body = doJSON(t, "GET", base+"/v1/sessions/lib1/labels?format=json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("labels json: %d", resp.StatusCode)
	}
	var jl struct {
		Labels []struct {
			ID    string `json:"id"`
			Label int    `json:"label"`
		} `json:"labels"`
	}
	if err := json.Unmarshal(body, &jl); err != nil {
		t.Fatal(err)
	}
	if len(jl.Labels) != total {
		t.Fatalf("JSON labels: %d rows, want %d", len(jl.Labels), total)
	}
	resp, _ = doJSON(t, "GET", base+"/v1/sessions/lib1/labels?format=xml", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: %d, want 400", resp.StatusCode)
	}

	// Health.
	resp, body = doJSON(t, "GET", base+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// Delete, then 404s.
	resp, _ = doJSON(t, "DELETE", base+"/v1/sessions/lib1", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, "GET", base+"/v1/sessions/lib1", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted info: %d, want 404", resp.StatusCode)
	}
	resp, _ = doJSON(t, "DELETE", base+"/v1/sessions/lib1", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", resp.StatusCode)
	}
}

func batchRecID(batches [][]pace.Record, i int) string {
	for _, b := range batches {
		if i < len(b) {
			return b[i].ID
		}
		i -= len(b)
	}
	return ""
}

// TestHTTPFailedAddRetry sends a bad batch (invalid DNA) over HTTP, gets a
// 400, and proves the session is untouched — a following identical-size
// valid batch clusters as a first attempt. The failure-atomic Session.Add
// satellite, observed end to end through the server.
func TestHTTPFailedAddRetry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	doJSON(t, "POST", base+"/v1/sessions", map[string]string{"id": "r"})

	batches := testCorpus(t, 40, 13, 20)
	resp, body := doJSON(t, "POST", base+"/v1/sessions/r/batches",
		map[string]any{"ests": []map[string]string{{"id": "x", "seq": batches[0][0].Seq}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed batch: %d %s", resp.StatusCode, body)
	}

	// A batch with an invalid sequence fails the run after the good
	// records were parsed alongside it.
	bad := map[string]any{"ests": []map[string]string{
		{"id": "ok", "seq": batches[0][1].Seq},
		{"id": "bad", "seq": "NOT!DNA@ALL"},
	}}
	resp, body = doJSON(t, "POST", base+"/v1/sessions/r/batches", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: %d %s, want 400", resp.StatusCode, body)
	}
	resp, body = doJSON(t, "GET", base+"/v1/sessions/r", nil)
	var info Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.NumESTs != 1 || info.Batches != 1 {
		t.Fatalf("session mutated by failed batch: %+v", info)
	}

	// The retry (valid this time) succeeds like a first attempt.
	good := map[string]any{"ests": []map[string]string{
		{"id": "ok", "seq": batches[0][1].Seq},
	}}
	resp, body = doJSON(t, "POST", base+"/v1/sessions/r/batches", good)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry: %d %s", resp.StatusCode, body)
	}
	var br BatchResult
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Info.NumESTs != 2 || br.Info.Batches != 2 {
		t.Fatalf("retry result: %+v", br.Info)
	}
}

// TestHTTPDrainRejects verifies mutating requests 503 while draining and
// healthz reports it.
func TestHTTPDrainRejects(t *testing.T) {
	m, ts := newTestServer(t, Config{})
	base := ts.URL
	doJSON(t, "POST", base+"/v1/sessions", map[string]string{"id": "d"})
	if err := m.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	resp, _ := doJSON(t, "POST", base+"/v1/sessions", map[string]string{"id": "late"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d, want 503", resp.StatusCode)
	}
	batch := testCorpus(t, 10, 2, 10)[0]
	var jb struct {
		ESTs []pace.Record `json:"ests"`
	}
	jb.ESTs = batch
	resp, _ = doJSON(t, "POST", base+"/v1/sessions/d/batches", jb)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch while draining: %d, want 503", resp.StatusCode)
	}
	resp, body := doJSON(t, "GET", base+"/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz while draining: %d %s", resp.StatusCode, body)
	}
	// Reads still work.
	resp, _ = doJSON(t, "GET", base+"/v1/sessions/d/labels", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("labels while draining: %d", resp.StatusCode)
	}
}
