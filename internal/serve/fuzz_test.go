package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// ingestSeed is one pinned fuzz input: a batch body plus its Content-Type.
type ingestSeed struct {
	body []byte
	ct   string
}

// ingestSeeds pins the corpus FuzzBatchIngest starts from: well-formed JSON
// and FASTA batches, every malformed shape the decoder must reject, and
// bodies over the configured byte cap.
func ingestSeeds() []ingestSeed {
	big := bytes.Repeat([]byte("ACGTACGTACGT"), 1024) // over the 4KiB test cap
	return []ingestSeed{
		{[]byte(`{"ests":[{"id":"a","seq":"ACGTACGTACGTACGTACGT"},{"id":"b","seq":"ACGTACGTACGTACGTTGCA"}]}`), "application/json"},
		{[]byte(">a\nACGTACGTACGTACGTACGT\n>b\nACGTACGTACGTACGTTGCA\n"), "text/x-fasta"},
		{[]byte(`{"ests":[]}`), "application/json"},
		{[]byte(`{"ests":`), "application/json"},                             // truncated JSON
		{[]byte(`{"ests":[{"id":1,"seq":true}]}`), "application/json"},       // wrong types
		{[]byte(`{"ests":[{"id":"a","seq":"ACGTXX"}]}`), "application/json"}, // bad alphabet
		{[]byte(">a\nACGT\x00GT\n"), "text/x-fasta"},                         // NUL in sequence
		{[]byte("no fasta header\nACGT\n"), ""},                              // sniffed, not FASTA
		{[]byte{}, "application/json"},
		{[]byte{0xFF, 0xFE, 0x00, 0x01}, "application/octet-stream"},
		{append([]byte(`{"ests":[{"id":"a","seq":"`), append(big, []byte(`"}]}`)...)...), "application/json"},
		{append([]byte(">a\n"), big...), "text/x-fasta"},
	}
}

// checkIngest is the fuzz property: POSTing an arbitrary body to the batch
// ingest route must answer 2xx or 4xx — never a 5xx, never a panic — and a
// rejected batch must leave the session exactly as it was (no ESTs, no
// batch counted). The manager is fresh per call so iterations cannot
// contaminate each other.
func checkIngest(t *testing.T, body []byte, ct string) {
	t.Helper()
	opt := testOptions()
	m, err := NewManager(Config{
		Options:           opt,
		MaxBatchBytes:     4 << 10,
		MaxESTsPerSession: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), "f", ""); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(m)
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/f/batches", bytes.NewReader(body))
	if ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	code := rec.Code
	if code >= 500 {
		t.Fatalf("ingest answered %d (body %q) for input %q", code, rec.Body.String(), truncate(body))
	}
	info, err := m.Info("f")
	if err != nil {
		t.Fatalf("session lost after ingest returned %d: %v", code, err)
	}
	if code >= 200 && code < 300 {
		if info.NumESTs == 0 || info.Batches != 1 {
			t.Fatalf("2xx ingest left no state: %+v for input %q", info, truncate(body))
		}
	} else {
		if info.NumESTs != 0 || info.Batches != 0 {
			t.Fatalf("rejected ingest (%d) mutated the session: %+v for input %q", code, info, truncate(body))
		}
	}
}

func truncate(b []byte) []byte {
	if len(b) > 128 {
		return b[:128]
	}
	return b
}

// FuzzBatchIngest drives the HTTP batch-ingest route (JSON and FASTA paths,
// body cap included) with arbitrary bodies and content types. Run with
// `go test -fuzz FuzzBatchIngest ./internal/serve`.
func FuzzBatchIngest(f *testing.F) {
	for _, s := range ingestSeeds() {
		f.Add(s.body, s.ct)
	}
	f.Fuzz(func(t *testing.T, body []byte, ct string) {
		checkIngest(t, body, ct)
	})
}

// TestFuzzSeedsIngest pins the seed corpus in plain `go test`: every seed
// upholds the fuzz property even when the fuzz engine is never invoked, and
// the seeds that must be rejected (oversize, malformed) really are.
func TestFuzzSeedsIngest(t *testing.T) {
	for i, s := range ingestSeeds() {
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			checkIngest(t, s.body, s.ct)
		})
	}
}
