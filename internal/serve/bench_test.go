package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"pace"
)

// benchBatch builds one deterministic 50-EST batch for the ingest path.
func benchBatch(b *testing.B) []pace.Record {
	b.Helper()
	sim, err := pace.Simulate(pace.SimOptions{NumESTs: 50, NumGenes: 5, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]pace.Record, len(sim.ESTs))
	for i, est := range sim.ESTs {
		recs[i] = pace.Record{ID: fmt.Sprintf("b_est%04d", i), Seq: est}
	}
	return recs
}

func benchOptions() pace.Options {
	opt := pace.DefaultOptions()
	opt.Window = 8
	opt.MinMatch = 14
	return opt
}

// BenchmarkHandlerBatchIngest measures the full HTTP ingest path — request
// routing, instrumentation, JSON decode, admission, clustering — for one
// session create + one 50-EST batch per iteration. This is the serving
// number the perf CI job tracks with benchstat.
func BenchmarkHandlerBatchIngest(b *testing.B) {
	m, err := NewManager(Config{Options: benchOptions()})
	if err != nil {
		b.Fatal(err)
	}
	h := NewHandler(m)
	ts := httptest.NewServer(h)
	defer ts.Close()
	batch := benchBatch(b)
	body, err := json.Marshal(map[string]any{"ests": batch})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench%06d", i)
		post := func(path string, payload []byte) *http.Response {
			req, _ := http.NewRequest("POST", ts.URL+path, bytes.NewReader(payload))
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}
		if resp := post("/v1/sessions", []byte(`{"id":"`+id+`"}`)); resp.StatusCode != http.StatusCreated {
			b.Fatalf("create: status %d", resp.StatusCode)
		}
		if resp := post("/v1/sessions/"+id+"/batches", body); resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest: status %d", resp.StatusCode)
		}
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkManagerAdd measures the manager's ingest path without HTTP:
// admission, session lock, incremental clustering of one batch.
func BenchmarkManagerAdd(b *testing.B) {
	m, err := NewManager(Config{Options: benchOptions()})
	if err != nil {
		b.Fatal(err)
	}
	batch := benchBatch(b)
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench%06d", i)
		if _, err := m.Create(ctx, id, ""); err != nil {
			b.Fatal(err)
		}
		recs := append([]pace.Record(nil), batch...)
		if _, err := m.Add(ctx, id, recs); err != nil {
			b.Fatal(err)
		}
		if err := m.Delete(id); err != nil {
			b.Fatal(err)
		}
	}
}
