package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"pace/internal/telemetry"
)

// syncBuffer makes a bytes.Buffer safe for the handler goroutines the
// httptest server runs per request.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines parses every JSON log line the server wrote.
func logLines(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(raw), "\n") {
		if ln == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("unparseable log line %q: %v", ln, err)
		}
		out = append(out, m)
	}
	return out
}

// TestHTTPRequestObservability drives the full request-scoped triad in one
// server: a client-supplied X-Request-ID is adopted and echoed, a minted id
// appears when the client sends none, every log line for a request carries
// its id, error bodies quote it, the route metrics land on the registry,
// and the trace holds the HTTP request span with the engine batch span
// nested inside it on the session's lane.
func TestHTTPRequestObservability(t *testing.T) {
	logBuf := &syncBuffer{}
	logger, err := telemetry.NewLogger(logBuf, telemetry.LogJSON, slog.LevelDebug, telemetry.NewWallClock())
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf syncBuffer
	tw := telemetry.NewTraceWriter(&traceBuf)
	reg := telemetry.NewRegistry()
	m, ts := newTestServer(t, Config{
		Metrics: reg,
		Logger:  logger,
		Trace:   tw,
	})
	_ = m

	// Create with a client-supplied request id: adopted and echoed.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions",
		strings.NewReader(`{"id":"obs","tenant":"t"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "client-id-42" {
		t.Errorf("client request id not echoed: got %q", got)
	}

	// Batch without a request id: the server mints one and echoes it.
	batch := testCorpus(t, 40, 7, 40)[0]
	body, _ := json.Marshal(map[string]any{"ests": batch})
	req, _ = http.NewRequest("POST", ts.URL+"/v1/sessions/obs/batches", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mintedID := resp.Header.Get(RequestIDHeader)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch ingest: status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(mintedID, "req-") {
		t.Errorf("minted request id %q does not look minted", mintedID)
	}

	// Error path: the JSON error body quotes the request id.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/sessions/ghost/batches", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "err-id-7")
	resp, errBody := do(t, req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost session: status %d", resp.StatusCode)
	}
	var errJSON map[string]string
	if err := json.Unmarshal(errBody, &errJSON); err != nil {
		t.Fatal(err)
	}
	if errJSON["request_id"] != "err-id-7" {
		t.Errorf("error body request_id = %q, want err-id-7", errJSON["request_id"])
	}

	// Logs: every access line carries a request id; the batch run's
	// lifecycle lines carry the minted one.
	lines := logLines(t, logBuf.String())
	var access, batchLines int
	for _, ln := range lines {
		switch ln["msg"] {
		case "http request":
			access++
			if ln["request_id"] == "" || ln["request_id"] == nil {
				t.Errorf("access log line missing request_id: %v", ln)
			}
		case "batch ingest starting", "batch ingest done":
			batchLines++
			if ln["request_id"] != mintedID {
				t.Errorf("batch log line has request_id %v, want %s", ln["request_id"], mintedID)
			}
		}
	}
	if access != 3 {
		t.Errorf("got %d access log lines, want 3", access)
	}
	if batchLines != 2 {
		t.Errorf("got %d batch lifecycle lines, want 2", batchLines)
	}

	// Metrics: the route families render with route labels, and the
	// queue-wait and batch histograms exist.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`pace_http_request_ns_count{route="POST /v1/sessions/{id}/batches"}`,
		`pace_http_responses_total{class="2xx",route="POST /v1/sessions"}`,
		`pace_http_responses_total{class="4xx",route="POST /v1/sessions/{id}/batches"}`,
		"pace_http_in_flight 0",
		"pace_server_admission_queue_wait_ns_count 1",
		`pace_server_batch_ns_count{session="obs"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}

	// Trace: the HTTP request span sits on the session's server lane with
	// its request id, and the batch span nests inside it in time.
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(traceBuf.String()), &events); err != nil {
		t.Fatal(err)
	}
	reqSpan := findSpan(events, "POST /v1/sessions/{id}/batches", mintedID)
	if reqSpan == nil {
		t.Fatal("no HTTP request span with the minted request id")
	}
	batchSpan := findSpan(events, "batch 1", mintedID)
	if batchSpan == nil {
		t.Fatal("no batch span with the minted request id")
	}
	if reqSpan["pid"] != batchSpan["pid"] || reqSpan["tid"] != batchSpan["tid"] {
		t.Errorf("request span %v and batch span %v on different lanes", reqSpan, batchSpan)
	}
	rs, rd := reqSpan["ts"].(float64), reqSpan["dur"].(float64)
	bs, bd := batchSpan["ts"].(float64), batchSpan["dur"].(float64)
	if bs < rs || bs+bd > rs+rd {
		t.Errorf("batch span [%v,%v] not nested in request span [%v,%v]", bs, bs+bd, rs, rs+rd)
	}
	// The engine's own spans run on the session's dedicated process lane.
	var enginePIDs []float64
	for _, ev := range events {
		if pid, ok := ev["pid"].(float64); ok && pid >= enginePIDBase {
			enginePIDs = append(enginePIDs, pid)
		}
	}
	if len(enginePIDs) == 0 {
		t.Error("no engine events on a per-session process lane")
	}
}

func do(t *testing.T, req *http.Request) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// findSpan locates a complete ("X") event by name carrying the request id.
func findSpan(events []map[string]any, name, reqID string) map[string]any {
	for _, ev := range events {
		if ev["ph"] == "X" && ev["name"] == name {
			if args, ok := ev["args"].(map[string]any); ok && args["request_id"] == reqID {
				return ev
			}
		}
	}
	return nil
}

// TestQuotaRejectionCounter pins the new quota counter: creations bounced
// off either quota increment pace_server_quota_rejected_total.
func TestQuotaRejectionCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{Options: testOptions(), MaxSessions: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	if _, err := m.Create(ctx, "one", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(ctx, "two", ""); err == nil {
		t.Fatal("second create exceeded MaxSessions but succeeded")
	}
	if got := reg.Counter(metricQuotaRejected).Value(); got != 1 {
		t.Errorf("quota rejection counter = %d, want 1", got)
	}
}

// TestRequestIDSanitized pins the header hygiene: hostile or oversized
// client ids are replaced rather than propagated into logs and labels.
func TestRequestIDSanitized(t *testing.T) {
	for _, bad := range []string{"", "has space", "ctl\x01char", strings.Repeat("x", 200)} {
		if got := sanitizeRequestID(bad); got == bad || !strings.HasPrefix(got, "req-") {
			t.Errorf("sanitizeRequestID(%q) = %q, want minted id", bad, got)
		}
	}
	if got := sanitizeRequestID("good-id_42"); got != "good-id_42" {
		t.Errorf("clean id rewritten to %q", got)
	}
}

// TestBuildInfoOnServerRegistry checks the serving registry carries the
// build-info gauge once the cmd layer registers it (the metric the ops
// runbook joins dashboards on).
func TestBuildInfoOnServerRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg)
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), telemetry.BuildInfoMetric+"{") {
		t.Errorf("scrape missing %s:\n%s", telemetry.BuildInfoMetric, prom.String())
	}
}
