package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"pace"
	"pace/internal/telemetry"
	"pace/internal/vfs"
)

// Manager lifecycle errors, mapped to HTTP statuses by the handler.
var (
	// ErrNotFound names a session id with no live session.
	ErrNotFound = errors.New("serve: session not found")
	// ErrExists rejects creating an id that is already live.
	ErrExists = errors.New("serve: session already exists")
	// ErrQuota rejects a create that would exceed the server-wide or
	// per-tenant session quota.
	ErrQuota = errors.New("serve: session quota exceeded")
	// ErrDraining rejects mutating requests while the server drains.
	ErrDraining = errors.New("serve: server is draining")
	// ErrTooLarge rejects a batch that would exceed MaxESTsPerSession.
	ErrTooLarge = errors.New("serve: batch exceeds session capacity")
	// ErrDegraded rejects ingest into a session whose state could not be
	// persisted: the session is read-only (labels and info still serve)
	// until a probe re-save succeeds. Mapped to 503 + Retry-After.
	ErrDegraded = errors.New("serve: session degraded read-only (persistence failing)")
)

// Server-level metric families. Per-session series carry a session label.
const (
	metricSessions       = "pace_server_sessions"
	metricAdmInService   = "pace_server_admission_in_service"
	metricAdmWaiting     = "pace_server_admission_waiting"
	metricAdmHighWater   = "pace_server_admission_high_water"
	metricAdmAdmitted    = "pace_server_admitted_total"
	metricAdmRejected    = "pace_server_rejected_total"
	metricAdmQueueWaitNs = "pace_server_admission_queue_wait_ns"
	metricQuotaRejected  = "pace_server_quota_rejected_total"
	metricSessionESTs    = "pace_server_session_ests"
	metricSessionBatches = "pace_server_session_batches_total"
	metricBatchNs        = "pace_server_batch_ns"
	metricDegraded       = "pace_server_degraded"
)

// Trace lanes. The server owns process lane 1 in the Chrome trace (pid 0 is
// the standalone CLI pipeline): each session gets a thread lane there, so an
// HTTP request span and the batch span it admitted nest on one timeline.
// Each session's engine additionally gets a whole process lane of its own
// (enginePIDBase+lane) for its per-rank detail timelines.
const (
	serverTracePID = 1
	enginePIDBase  = 100
)

// Config parameterizes a Manager.
type Config struct {
	// Options is the clustering configuration every session runs with.
	// Sessions created over HTTP all share it, so their checkpoints all
	// validate against the same fingerprint at resume.
	Options pace.Options
	// DataDir is the durability root: each session owns the state
	// directory DataDir/<id>. Empty runs fully in memory.
	DataDir string
	// MaxSessions bounds live sessions server-wide (default 64).
	MaxSessions int
	// MaxSessionsPerTenant bounds live sessions per tenant (default 16).
	MaxSessionsPerTenant int
	// MaxESTsPerSession bounds a session's total EST count; a batch that
	// would exceed it is rejected whole (0 = unlimited).
	MaxESTsPerSession int
	// MaxBatchBytes caps an ingest request body (http.MaxBytesReader);
	// overflow maps to 413. 0 derives a cap from MaxESTsPerSession (see
	// Manager.maxBatchBytes).
	MaxBatchBytes int64
	// Admission bounds concurrent batch ingestion.
	Admission AdmissionConfig
	// RequestTimeout bounds one batch ingest end to end (queue wait plus
	// the engine run): on expiry the run is canceled, the session rolls
	// back, and the request fails with 504. 0 disables the per-request
	// deadline (client disconnect and drain still cancel).
	RequestTimeout time.Duration
	// FS is the filesystem seam every durable write goes through (state
	// saves, metadata, checkpoints). nil uses the real filesystem; chaos
	// runs inject a vfs.Faulty here.
	FS vfs.FS
	// Metrics, when non-nil, receives server gauges/counters (with
	// per-session labels) alongside the engine's own families.
	Metrics *telemetry.Registry
	// Logger receives structured lifecycle and request events; nil
	// discards them. Handlers built by telemetry.NewLogger stamp records
	// from an injected clock, keeping deterministic runs reproducible.
	Logger *slog.Logger
	// Trace, when non-nil, receives the server's request and batch spans
	// on process lane serverTracePID plus each session's engine spans on
	// its own process lane. The caller owns Close.
	Trace *telemetry.TraceWriter
	// Clock is the server's time base for latency metrics, queue-wait
	// accounting and trace timestamps; nil uses the wall clock.
	Clock telemetry.Clock
}

func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return telemetry.NopLogger()
}

func (c Config) fs() vfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return vfs.OS{}
}

func (c Config) maxSessions() int {
	if c.MaxSessions > 0 {
		return c.MaxSessions
	}
	return 64
}

func (c Config) maxPerTenant() int {
	if c.MaxSessionsPerTenant > 0 {
		return c.MaxSessionsPerTenant
	}
	return 16
}

// session is one managed session. mu serializes every touch of sess/recs:
// pace.Session is documented single-goroutine, so the manager owns exactly
// one lock per session and all request handling runs under it.
type session struct {
	meta Meta
	dir  string // state directory; "" when the manager is memory-only
	lane int    // thread lane on the server's trace process

	mu   sync.Mutex
	sess *pace.Session
	recs []pace.Record
	gone bool // deleted while another request held the pointer
	// degraded marks the session read-only after a persistence failure:
	// memory is ahead of disk, so ingest is refused (503 + Retry-After)
	// until a probe re-save rewrites the full state and heals the gap.
	// Labels and info still serve — they come from memory.
	degraded bool
	// degradedCause is the save error that entered degraded mode.
	degradedCause error
}

// saveLocked persists the session's state pair through fsys. Caller holds
// s.mu.
func (s *session) saveLocked(fsys vfs.FS) error {
	if s.dir == "" || s.sess.NumESTs() == 0 {
		return nil
	}
	return SaveState(fsys, s.dir, s.sess, s.recs)
}

// Manager owns the live sessions behind the HTTP API: creation and quotas,
// per-session serialization, bounded admission of batch work, durability
// via SaveState/LoadState, and graceful drain.
type Manager struct {
	cfg   Config
	adm   *Admission
	clock telemetry.Clock
	log   *slog.Logger
	fs    vfs.FS

	mu       sync.Mutex
	sessions map[string]*session
	nextLane int
	draining bool
	// inflight registers a cancel func per running batch, so a drain that
	// hits its deadline can abort the engine runs instead of waiting them
	// out while they hold session locks and admission grants.
	inflight   map[int]context.CancelFunc
	nextCancel int
}

// NewManager validates the configuration and returns an empty manager.
func NewManager(cfg Config) (*Manager, error) {
	if _, err := pace.NewSession(cfg.Options); err != nil {
		return nil, fmt.Errorf("serve: session options: %w", err)
	}
	if cfg.DataDir != "" {
		if err := cfg.fs().MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, err
		}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = telemetry.NewWallClock()
	}
	m := &Manager{
		cfg:      cfg,
		adm:      NewAdmission(cfg.Admission),
		clock:    clk,
		log:      cfg.logger(),
		fs:       cfg.fs(),
		sessions: make(map[string]*session),
		nextLane: 1, // lane 0 is the control lane for non-session requests
		inflight: make(map[int]context.CancelFunc),
	}
	if r := cfg.Metrics; r != nil {
		r.Help(metricSessions, "Live sessions owned by the manager.")
		r.Help(metricAdmAdmitted, "Requests granted an admission slot.")
		r.Help(metricAdmRejected, "Requests rejected with a full admission queue (HTTP 429).")
		r.Help(metricAdmQueueWaitNs, "Time a batch request waited for an admission grant, nanoseconds.")
		r.Help(metricQuotaRejected, "Session creations rejected over quota.")
		r.Help(metricSessionESTs, "ESTs held per session.")
		r.Help(metricSessionBatches, "Batches ingested per session.")
		r.Help(metricBatchNs, "End-to-end latency of one ingested batch (admitted to clustered+saved), nanoseconds.")
		r.Help(metricDegraded, "Sessions in degraded read-only mode (persistence failing).")
	}
	if tw := cfg.Trace; tw != nil {
		tw.ProcessName(serverTracePID, "paced server")
		tw.ThreadName(serverTracePID, 0, "control")
	}
	return m, nil
}

// idPattern keeps session ids and tenants path- and label-safe: they name
// state directories and Prometheus label values.
var idPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

func validateID(kind, id string) error {
	if !idPattern.MatchString(id) || id == "." || id == ".." {
		return fmt.Errorf("serve: invalid %s %q: want 1-64 chars of [a-zA-Z0-9._-], starting alphanumeric", kind, id)
	}
	return nil
}

// Info is a session's externally visible state.
type Info struct {
	ID          string `json:"id"`
	Tenant      string `json:"tenant,omitempty"`
	NumESTs     int    `json:"num_ests"`
	Batches     int    `json:"batches"`
	NumClusters int    `json:"num_clusters"`
}

func (s *session) infoLocked() Info {
	in := Info{
		ID:      s.meta.ID,
		Tenant:  s.meta.Tenant,
		NumESTs: s.sess.NumESTs(),
		Batches: s.sess.Batches(),
	}
	if cl := s.sess.Clustering(); cl != nil {
		in.NumClusters = cl.NumClusters
	} else if labels := s.sess.Labels(); labels != nil {
		// Resumed sessions know their partition but not the last run.
		max := -1
		for _, l := range labels {
			if l > max {
				max = l
			}
		}
		in.NumClusters = max + 1
	}
	return in
}

// Create registers an empty session for a tenant, enforcing quotas, and
// persists its metadata when durability is on. ctx carries the request id
// for the lifecycle log line.
func (m *Manager) Create(ctx context.Context, id, tenant string) (Info, error) {
	if err := validateID("session id", id); err != nil {
		return Info{}, err
	}
	if tenant == "" {
		tenant = "default"
	}
	if err := validateID("tenant", tenant); err != nil {
		return Info{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return Info{}, ErrDraining
	}
	if _, ok := m.sessions[id]; ok {
		return Info{}, fmt.Errorf("%w: %s", ErrExists, id)
	}
	if len(m.sessions) >= m.cfg.maxSessions() {
		m.counter(metricQuotaRejected).Inc()
		return Info{}, fmt.Errorf("%w: server holds %d sessions", ErrQuota, len(m.sessions))
	}
	own := 0
	for _, s := range m.sessions {
		if s.meta.Tenant == tenant {
			own++
		}
	}
	if own >= m.cfg.maxPerTenant() {
		m.counter(metricQuotaRejected).Inc()
		return Info{}, fmt.Errorf("%w: tenant %s holds %d sessions", ErrQuota, tenant, own)
	}

	lane := m.allocLaneLocked(id)
	sess, err := pace.NewSession(m.sessionOptions(id, lane))
	if err != nil {
		return Info{}, err
	}
	s := &session{meta: Meta{ID: id, Tenant: tenant}, lane: lane, sess: sess}
	if m.cfg.DataDir != "" {
		s.dir = filepath.Join(m.cfg.DataDir, id)
		if err := m.fs.MkdirAll(s.dir, 0o755); err != nil {
			return Info{}, err
		}
		if err := WriteMeta(m.fs, s.dir, s.meta); err != nil {
			return Info{}, err
		}
	}
	m.sessions[id] = s
	m.gauge(metricSessions).Set(int64(len(m.sessions)))
	m.log.Info("session created", "session", id, "tenant", tenant,
		"request_id", RequestID(ctx), "sessions", len(m.sessions))
	return Info{ID: id, Tenant: tenant}, nil
}

// allocLaneLocked hands the session its server-trace thread lane and labels
// it in the viewer. Caller holds m.mu.
func (m *Manager) allocLaneLocked(id string) int {
	lane := m.nextLane
	m.nextLane++
	if tw := m.cfg.Trace; tw != nil {
		tw.ThreadName(serverTracePID, lane, "session "+id)
	}
	return lane
}

// sessionOptions derives a session's engine options: the shared clustering
// parameters plus its own observability identity — a logger carrying the
// session attribute and, when tracing, a dedicated engine process lane so
// its per-rank timelines don't interleave with other sessions'.
func (m *Manager) sessionOptions(id string, lane int) pace.Options {
	opts := m.cfg.Options
	if opts.FS == nil {
		// The engine's periodic checkpoints share the server's seam, so a
		// chaos plan covers every durable write a session performs.
		opts.FS = m.cfg.FS
	}
	if m.cfg.Logger != nil {
		opts.Logger = m.cfg.Logger.With("session", id)
	}
	if m.cfg.Trace != nil {
		opts.Trace = m.cfg.Trace
		opts.TracePID = enginePIDBase + lane
		opts.TraceProcess = "engine " + id
	}
	return opts
}

// lookup fetches a live session.
func (m *Manager) lookup(id string) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s, nil
}

// List returns every live session's info, sorted by id.
func (m *Manager) List() []Info {
	m.mu.Lock()
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(all))
	for _, s := range all {
		s.mu.Lock()
		if !s.gone {
			out = append(out, s.infoLocked())
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Info returns one session's info.
func (m *Manager) Info(id string) (Info, error) {
	s, err := m.lookup(id)
	if err != nil {
		return Info{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone {
		return Info{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s.infoLocked(), nil
}

// Delete removes a session and its state directory. An Add in flight on
// the session finishes first (it holds the session lock); later requests
// that still hold the pointer see gone and report not-found.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.gauge(metricSessions).Set(int64(len(m.sessions)))
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gone = true
	if s.degraded {
		// The session's state dies with it; don't leave the gauge stuck.
		s.degraded = false
		m.gauge(metricDegraded).Add(-1)
	}
	m.log.Info("session deleted", "session", id, "tenant", s.meta.Tenant,
		"ests", s.sess.NumESTs(), "batches", s.sess.Batches())
	if s.dir != "" {
		// Teardown of a dead session is not a durability path: there is no
		// state to keep consistent, so it stays outside the fault seam.
		//pacelint:allow vfsonly session teardown has no crash window to inject into
		return os.RemoveAll(s.dir)
	}
	return nil
}

// BatchResult reports one ingested batch.
type BatchResult struct {
	Info Info `json:"session"`
	// BatchESTs is the batch's size; the remaining fields describe the
	// incremental run it triggered.
	BatchESTs       int   `json:"batch_ests"`
	PairsGenerated  int64 `json:"pairs_generated"`
	FreshPairs      int64 `json:"fresh_pairs"`
	StaleSuppressed int64 `json:"stale_suppressed"`
	BucketsRebuilt  int64 `json:"buckets_rebuilt"`
	BucketsReused   int64 `json:"buckets_reused"`
}

// Add ingests a batch into a session: admission first (bounded queue,
// ErrBusy when full), then the session lock, then the incremental run and
// a durable state save. Records with empty IDs are assigned est<n> names.
//
// The run is bounded by ctx (the HTTP request context: client disconnect
// cancels it) tightened by Config.RequestTimeout and registered with the
// drain machinery, so a dead client, an expired deadline or a drain
// deadline aborts the engine mid-run instead of letting it finish while
// holding the session lock and an admission grant.
//
// Failure semantics ride on Session.Add's atomicity: a failed or canceled
// run leaves the session untouched, so the client can retry the identical
// request. A run that succeeds but fails to persist marks the session
// degraded read-only (ErrDegraded, 503): memory is ahead of disk, ingest
// is refused, and a later ProbeDegraded re-save heals the gap when the
// disk recovers.
func (m *Manager) Add(ctx context.Context, id string, recs []pace.Record) (*BatchResult, error) {
	if len(recs) == 0 {
		return nil, errors.New("serve: empty batch")
	}
	if m.isDraining() {
		return nil, ErrDraining
	}
	s, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if m.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.RequestTimeout)
		defer cancel()
	}
	ctx, unregister := m.registerInflight(ctx)
	defer unregister()
	reqID := RequestID(ctx)
	tAcq := m.clock.Elapsed()
	if err := m.adm.Acquire(ctx); err != nil {
		m.pushAdmissionMetrics()
		m.log.Warn("batch rejected at admission", "session", id,
			"request_id", reqID, "ests", len(recs), "err", err.Error())
		return nil, err
	}
	queueWait := m.clock.Elapsed() - tAcq
	m.histogram(metricAdmQueueWaitNs).Observe(int64(queueWait))
	defer func() {
		m.adm.Release()
		m.pushAdmissionMetrics()
	}()
	m.pushAdmissionMetrics()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if s.degraded {
		return nil, fmt.Errorf("%w: %s: %w", ErrDegraded, id, s.degradedCause)
	}
	if max := m.cfg.MaxESTsPerSession; max > 0 && s.sess.NumESTs()+len(recs) > max {
		return nil, fmt.Errorf("%w: %d + %d ESTs > limit %d", ErrTooLarge, s.sess.NumESTs(), len(recs), max)
	}
	batch := s.sess.Batches() + 1
	m.log.Info("batch ingest starting", "session", id, "request_id", reqID,
		"batch", batch, "ests", len(recs), "queue_wait", queueWait)
	tRun := m.clock.Elapsed()
	base := s.sess.NumESTs()
	seqs := make([]string, len(recs))
	for i := range recs {
		if recs[i].ID == "" {
			recs[i].ID = fmt.Sprintf("est%06d", base+i)
		}
		seqs[i] = recs[i].Seq
	}
	cl, err := s.sess.AddContext(ctx, seqs)
	if err != nil {
		m.log.Error("batch ingest failed; session rolled back", "session", id,
			"request_id", reqID, "batch", batch, "err", err.Error())
		return nil, err
	}
	s.recs = append(s.recs, recs...)
	if s.dir != "" {
		if err := SaveState(m.fs, s.dir, s.sess, s.recs); err != nil {
			s.degraded = true
			s.degradedCause = err
			m.gauge(metricDegraded).Add(1)
			m.log.Error("batch clustered but not persisted; session degraded read-only", "session", id,
				"request_id", reqID, "batch", batch, "err", err.Error())
			return nil, fmt.Errorf("%w: batch %d clustered in memory but not persisted; "+
				"ingest refused until a probe re-save succeeds: %w", ErrDegraded, batch, err)
		}
	}
	batchDur := m.clock.Elapsed() - tRun
	if r := m.cfg.Metrics; r != nil {
		lbl := telemetry.Label{Key: "session", Value: id}
		r.Gauge(metricSessionESTs, lbl).Set(int64(s.sess.NumESTs()))
		r.Counter(metricSessionBatches, lbl).Inc()
		r.Histogram(metricBatchNs, telemetry.ExpBounds(1000, 4, 12), lbl).Observe(int64(batchDur))
	}
	if tw := m.cfg.Trace; tw != nil {
		tw.SpanArgs(serverTracePID, s.lane, fmt.Sprintf("batch %d", batch), "serve",
			tRun, batchDur, map[string]any{
				"request_id": reqID, "ests": len(recs),
				"pairs_generated": cl.Stats.PairsGenerated,
			})
	}
	inc := cl.Stats.Incremental
	m.log.Info("batch ingest done", "session", id, "request_id", reqID,
		"batch", batch, "ests", len(recs),
		"pairs_generated", cl.Stats.PairsGenerated,
		"pairs_accepted", cl.Stats.PairsAccepted,
		"clusters", cl.NumClusters, "dur", batchDur)
	return &BatchResult{
		Info:            s.infoLocked(),
		BatchESTs:       len(recs),
		PairsGenerated:  cl.Stats.PairsGenerated,
		FreshPairs:      inc.FreshPairs,
		StaleSuppressed: inc.StaleSuppressed,
		BucketsRebuilt:  inc.BucketsRebuilt,
		BucketsReused:   inc.BucketsReused,
	}, nil
}

// Labels returns the session's records and current labels, aligned.
func (m *Manager) Labels(id string) ([]pace.Record, []int, error) {
	s, err := m.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	recs := append([]pace.Record(nil), s.recs...)
	return recs, s.sess.Labels(), nil
}

// Save persists a session's state now (no-op without a data dir). Add
// already saves after every batch; Save exists for drains and tests.
func (m *Manager) Save(id string) error {
	s, err := m.lookup(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s.saveLocked(m.fs)
}

// ResumeAll restores every session found under DataDir, cross-checking
// each state pair (ErrStateMismatch on a torn or edited directory). The
// resumed sessions are proven label-identical to their pre-restart selves
// by the state pair's construction: the store orders the ESTs and the
// checkpointed union-find fixes the partition over exactly those ESTs.
func (m *Manager) ResumeAll() (int, error) {
	if m.cfg.DataDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(m.cfg.DataDir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(m.cfg.DataDir, ent.Name())
		if _, err := os.Stat(filepath.Join(dir, FASTAFile)); errors.Is(err, os.ErrNotExist) {
			// A created-but-never-fed session: resume it empty if it has
			// metadata, otherwise it is not ours to manage.
			if err := m.resumeEmpty(dir, ent.Name()); err != nil {
				return n, err
			}
			n++
			continue
		}
		st, err := LoadState(dir, m.cfg.Options)
		if err != nil {
			return n, fmt.Errorf("serve: resume %s: %w", ent.Name(), err)
		}
		meta := st.Meta
		if meta.ID == "" {
			meta.ID = ent.Name()
		}
		if meta.Tenant == "" {
			meta.Tenant = "default"
		}
		m.mu.Lock()
		lane := m.allocLaneLocked(meta.ID)
		m.mu.Unlock()
		sess, err := st.Resume(m.sessionOptions(meta.ID, lane))
		if err != nil {
			return n, fmt.Errorf("serve: resume %s: %w", ent.Name(), err)
		}
		m.mu.Lock()
		m.sessions[meta.ID] = &session{meta: meta, dir: dir, lane: lane, sess: sess, recs: st.Recs}
		m.gauge(metricSessions).Set(int64(len(m.sessions)))
		m.mu.Unlock()
		if r := m.cfg.Metrics; r != nil {
			r.Gauge(metricSessionESTs, telemetry.Label{Key: "session", Value: meta.ID}).Set(int64(sess.NumESTs()))
		}
		m.log.Info("session resumed", "session", meta.ID, "tenant", meta.Tenant,
			"ests", sess.NumESTs(), "batches", sess.Batches())
		n++
	}
	return n, nil
}

func (m *Manager) resumeEmpty(dir, name string) error {
	meta := Meta{ID: name, Tenant: "default"}
	if data, err := os.ReadFile(filepath.Join(dir, MetaFile)); err == nil {
		if err := unmarshalMeta(data, &meta); err != nil {
			return fmt.Errorf("serve: resume %s: %w", name, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	m.mu.Lock()
	lane := m.allocLaneLocked(meta.ID)
	m.mu.Unlock()
	sess, err := pace.NewSession(m.sessionOptions(meta.ID, lane))
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.sessions[meta.ID] = &session{meta: meta, dir: dir, lane: lane, sess: sess}
	m.gauge(metricSessions).Set(int64(len(m.sessions)))
	m.mu.Unlock()
	m.log.Info("session resumed", "session", meta.ID, "tenant", meta.Tenant, "ests", 0, "batches", 0)
	return nil
}

// drainCancelGrace bounds how long a drain waits, after canceling every
// in-flight run at its deadline, for the engines' cancellation polls to
// fire and the admission queue to empty.
const drainCancelGrace = 2 * time.Second

// Drain performs the graceful-shutdown sequence: refuse new work, wait
// (bounded by ctx) for in-flight batches to finish — canceling the runs
// still going when the deadline passes and giving them a short grace to
// unwind — then save every session. It returns the first save error but
// keeps saving the rest.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	m.log.Info("drain started", "sessions", len(all))

	const tick = 5 * time.Millisecond
	for !m.adm.Idle() {
		select {
		case <-ctx.Done():
			// Deadline: abort the in-flight engine runs (each rolls its
			// session back and releases its grant) and wait a bounded
			// grace for the cancellation polls to fire.
			n := m.cancelInflight()
			m.log.Warn("drain deadline reached; canceling in-flight batches",
				"inflight", n, "err", ctx.Err().Error())
			for waited := time.Duration(0); !m.adm.Idle(); waited += tick {
				if waited >= drainCancelGrace {
					m.log.Error("drain: in-flight work survived cancellation")
					return fmt.Errorf("serve: drain: in-flight work outlived the deadline and cancellation: %w", ctx.Err())
				}
				<-time.After(tick)
			}
		case <-time.After(tick):
		}
	}

	var firstErr error
	saved := 0
	for _, s := range all {
		s.mu.Lock()
		if !s.gone {
			if err := s.saveLocked(m.fs); err != nil {
				m.log.Error("drain save failed", "session", s.meta.ID, "err", err.Error())
				if firstErr == nil {
					firstErr = err
				}
			} else {
				saved++
			}
		}
		s.mu.Unlock()
	}
	m.log.Info("drain complete", "sessions", len(all), "saved", saved)
	return firstErr
}

// registerInflight derives a cancelable context for one batch run and
// registers its cancel func so Drain can abort it at the drain deadline.
// The returned unregister releases the slot (and the context's resources).
func (m *Manager) registerInflight(ctx context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(ctx)
	m.mu.Lock()
	id := m.nextCancel
	m.nextCancel++
	m.inflight[id] = cancel
	m.mu.Unlock()
	return ctx, func() {
		m.mu.Lock()
		delete(m.inflight, id)
		m.mu.Unlock()
		cancel()
	}
}

// cancelInflight aborts every registered batch run and reports how many.
func (m *Manager) cancelInflight() int {
	m.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(m.inflight))
	for _, c := range m.inflight {
		cancels = append(cancels, c)
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return len(cancels)
}

// ProbeDegraded retries persistence for every degraded session and clears
// the flag on success (the full-state rewrite covers everything memory is
// ahead by). It returns how many sessions healed. cmd/paced calls it on a
// timer; tests call it directly after repairing the fault plan.
func (m *Manager) ProbeDegraded() int {
	m.mu.Lock()
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	healed := 0
	for _, s := range all {
		s.mu.Lock()
		if !s.gone && s.degraded {
			if err := s.saveLocked(m.fs); err != nil {
				m.log.Warn("degraded probe: save still failing",
					"session", s.meta.ID, "err", err.Error())
			} else {
				s.degraded = false
				s.degradedCause = nil
				healed++
				m.log.Info("degraded probe: session healed", "session", s.meta.ID,
					"ests", s.sess.NumESTs())
			}
		}
		s.mu.Unlock()
	}
	if healed > 0 {
		m.gauge(metricDegraded).Add(int64(-healed))
	}
	return healed
}

// DegradedCount reports how many sessions are in degraded read-only mode.
func (m *Manager) DegradedCount() int {
	m.mu.Lock()
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	n := 0
	for _, s := range all {
		s.mu.Lock()
		if !s.gone && s.degraded {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Admission exposes the admission controller (handler metrics, tests).
func (m *Manager) Admission() *Admission { return m.adm }

// gauge is a nil-safe registry accessor for unlabeled server gauges.
func (m *Manager) gauge(family string) *telemetry.Gauge {
	if m.cfg.Metrics == nil {
		return &telemetry.Gauge{}
	}
	return m.cfg.Metrics.Gauge(family)
}

// counter is a nil-safe registry accessor for unlabeled server counters.
func (m *Manager) counter(family string) *telemetry.Counter {
	if m.cfg.Metrics == nil {
		return &telemetry.Counter{}
	}
	return m.cfg.Metrics.Counter(family)
}

// histogram is a nil-safe accessor for unlabeled server latency histograms.
func (m *Manager) histogram(family string) *telemetry.Histogram {
	if m.cfg.Metrics == nil {
		return telemetry.NewHistogram(nil)
	}
	return m.cfg.Metrics.Histogram(family, telemetry.ExpBounds(1000, 4, 12))
}

// laneOf reports a live session's thread lane on the server trace process
// (-1 when unknown); the HTTP layer uses it to put a request's span on the
// same timeline as the batch span it admits.
func (m *Manager) laneOf(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.sessions[id]; ok {
		return s.lane
	}
	return -1
}

func (m *Manager) pushAdmissionMetrics() {
	r := m.cfg.Metrics
	if r == nil {
		return
	}
	st := m.adm.Stats()
	r.Gauge(metricAdmInService).Set(int64(st.InService))
	r.Gauge(metricAdmWaiting).Set(int64(st.Waiting))
	r.Gauge(metricAdmHighWater).Set(int64(st.HighWater))
	setCounter(r.Counter(metricAdmAdmitted), st.Admitted)
	setCounter(r.Counter(metricAdmRejected), st.Rejected)
}

// setCounter advances a monotonic counter to an absolute value.
func setCounter(c *telemetry.Counter, want int64) {
	if d := want - c.Value(); d > 0 {
		c.Add(d)
	}
}

func unmarshalMeta(data []byte, m *Meta) error {
	return json.Unmarshal(data, m)
}
