package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"pace"
)

// NewHandler exposes the manager's session lifecycle over HTTP:
//
//	POST   /v1/sessions                 {"id":"...","tenant":"..."} → 201
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            one session's info
//	DELETE /v1/sessions/{id}            drop a session and its state
//	POST   /v1/sessions/{id}/batches    ingest a batch (JSON or FASTA body)
//	GET    /v1/sessions/{id}/labels     current labels (?format=tsv|json)
//	GET    /healthz                     liveness + drain state
//
// A batch body is either JSON {"ests":[{"id":"...","seq":"ACGT..."},...]}
// or raw FASTA when Content-Type is text/x-fasta (or the body starts
// with '>'). Backpressure surfaces as 429 (admission queue full), drain
// as 503.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID     string `json:"id"`
			Tenant string `json:"tenant"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, fmt.Errorf("serve: invalid request body: %w", err))
			return
		}
		info, err := m.Create(req.ID, req.Tenant)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": m.List()})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := m.Info(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Delete(r.PathValue("id")); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/batches", func(w http.ResponseWriter, r *http.Request) {
		recs, err := decodeBatch(r)
		if err != nil {
			httpError(w, err)
			return
		}
		res, err := m.Add(r.Context(), r.PathValue("id"), recs)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/labels", func(w http.ResponseWriter, r *http.Request) {
		recs, labels, err := m.Labels(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		switch format := r.URL.Query().Get("format"); format {
		case "", "tsv":
			w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
			for i, rec := range recs {
				fmt.Fprintf(w, "%s\t%d\n", rec.ID, labels[i])
			}
		case "json":
			type row struct {
				ID    string `json:"id"`
				Label int    `json:"label"`
			}
			rows := make([]row, len(recs))
			for i, rec := range recs {
				rows[i] = row{ID: rec.ID, Label: labels[i]}
			}
			writeJSON(w, http.StatusOK, map[string]any{"labels": rows})
		default:
			httpError(w, fmt.Errorf("serve: unknown format %q (want tsv or json)", format))
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		code := http.StatusOK
		if m.isDraining() {
			status = "draining"
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]any{
			"status":    status,
			"sessions":  len(m.List()),
			"admission": m.Admission().Stats(),
		})
	})
	return mux
}

// decodeBatch parses a batch request body as JSON records or FASTA.
func decodeBatch(r *http.Request) ([]pace.Record, error) {
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "json") {
		var req struct {
			ESTs []pace.Record `json:"ests"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, fmt.Errorf("serve: invalid batch body: %w", err)
		}
		return req.ESTs, nil
	}
	recs, err := pace.ReadFASTA(r.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: invalid FASTA batch: %w", err)
	}
	return recs, nil
}

// httpError maps manager errors to HTTP statuses and a JSON error body.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrExists):
		code = http.StatusConflict
	case errors.Is(err, ErrBusy), errors.Is(err, ErrQuota):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrTooLarge):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrStateMismatch):
		code = http.StatusConflict
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
