package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"pace"
	"pace/internal/telemetry"
)

// HTTP metric families, labeled by route pattern (and response class).
const (
	metricHTTPRequestNs = "pace_http_request_ns"
	metricHTTPResponses = "pace_http_responses_total"
	metricHTTPInFlight  = "pace_http_in_flight"
)

// NewHandler exposes the manager's session lifecycle over HTTP:
//
//	POST   /v1/sessions                 {"id":"...","tenant":"..."} → 201
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            one session's info
//	DELETE /v1/sessions/{id}            drop a session and its state
//	POST   /v1/sessions/{id}/batches    ingest a batch (JSON or FASTA body)
//	GET    /v1/sessions/{id}/labels     current labels (?format=tsv|json)
//	GET    /healthz                     liveness + drain state
//
// A batch body is either JSON {"ests":[{"id":"...","seq":"ACGT..."},...]}
// or raw FASTA when Content-Type is text/x-fasta (or the body starts
// with '>'). Backpressure surfaces as 429 (admission queue full), drain
// as 503.
//
// Every route is instrumented: the request adopts (or is minted) an
// X-Request-ID echoed on the response, carried through the context into
// the manager's logs and trace spans, and returned in error bodies;
// per-route latency, in-flight and response-class series land on the
// manager's metrics registry.
func NewHandler(m *Manager) http.Handler {
	if r := m.cfg.Metrics; r != nil {
		r.Help(metricHTTPRequestNs, "HTTP request latency by route, nanoseconds.")
		r.Help(metricHTTPResponses, "HTTP responses by route and status class.")
		r.Help(metricHTTPInFlight, "HTTP requests currently being served.")
	}
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.HandleFunc(route, m.instrument(route, h))
	}
	handle("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID     string `json:"id"`
			Tenant string `json:"tenant"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, r, fmt.Errorf("serve: invalid request body: %w", err))
			return
		}
		info, err := m.Create(r.Context(), req.ID, req.Tenant)
		if err != nil {
			httpError(w, r, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	handle("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": m.List()})
	})
	handle("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := m.Info(r.PathValue("id"))
		if err != nil {
			httpError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	handle("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Delete(r.PathValue("id")); err != nil {
			httpError(w, r, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	handle("POST /v1/sessions/{id}/batches", func(w http.ResponseWriter, r *http.Request) {
		// Cap the body before reading a byte: an oversized or unbounded
		// upload fails with 413 instead of buffering without limit.
		r.Body = http.MaxBytesReader(w, r.Body, m.maxBatchBytes())
		recs, err := decodeBatch(r)
		if err != nil {
			httpError(w, r, err)
			return
		}
		res, err := m.Add(r.Context(), r.PathValue("id"), recs)
		if err != nil {
			httpError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	handle("GET /v1/sessions/{id}/labels", func(w http.ResponseWriter, r *http.Request) {
		recs, labels, err := m.Labels(r.PathValue("id"))
		if err != nil {
			httpError(w, r, err)
			return
		}
		switch format := r.URL.Query().Get("format"); format {
		case "", "tsv":
			w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
			for i, rec := range recs {
				fmt.Fprintf(w, "%s\t%d\n", rec.ID, labels[i])
			}
		case "json":
			type row struct {
				ID    string `json:"id"`
				Label int    `json:"label"`
			}
			rows := make([]row, len(recs))
			for i, rec := range recs {
				rows[i] = row{ID: rec.ID, Label: labels[i]}
			}
			writeJSON(w, http.StatusOK, map[string]any{"labels": rows})
		default:
			httpError(w, r, fmt.Errorf("serve: unknown format %q (want tsv or json)", format))
		}
	})
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		code := http.StatusOK
		degraded := m.DegradedCount()
		if degraded > 0 {
			// Still 200: the server serves reads and healthy sessions;
			// the status and count flag the persistence trouble.
			status = "degraded"
		}
		if m.isDraining() {
			status = "draining"
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]any{
			"status":    status,
			"sessions":  len(m.List()),
			"degraded":  degraded,
			"admission": m.Admission().Stats(),
		})
	})
	return mux
}

// statusWriter captures the response status for metrics, logs and spans.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// classOf buckets a status code into its Prometheus-friendly class label.
func classOf(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// instrument wraps one registered route with the request-scoped
// observability triad: an adopted-or-minted request id (context + echo
// header), route-labeled latency/in-flight/response-class metrics, a span
// on the server's trace process — on the owning session's lane when the
// route names one, so the batch span it admits nests inside — and one
// structured access-log line carrying all of it.
func (m *Manager) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		ctx := WithRequestID(r.Context(), reqID)
		w.Header().Set(RequestIDHeader, reqID)

		m.gauge(metricHTTPInFlight).Add(1)
		t0 := m.clock.Elapsed()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		dur := m.clock.Elapsed() - t0
		m.gauge(metricHTTPInFlight).Add(-1)

		if reg := m.cfg.Metrics; reg != nil {
			routeLbl := telemetry.Label{Key: "route", Value: route}
			reg.Histogram(metricHTTPRequestNs, telemetry.ExpBounds(1000, 4, 12), routeLbl).Observe(int64(dur))
			reg.Counter(metricHTTPResponses, routeLbl,
				telemetry.Label{Key: "class", Value: classOf(sw.code)}).Inc()
		}
		sessionID := r.PathValue("id")
		if tw := m.cfg.Trace; tw != nil {
			lane := 0 // control lane; session lanes start at 1
			if sessionID != "" {
				if l := m.laneOf(sessionID); l > 0 {
					lane = l
				}
			}
			tw.SpanArgs(serverTracePID, lane, route, "http", t0, dur,
				map[string]any{"request_id": reqID, "status": sw.code})
		}
		attrs := []any{
			"request_id", reqID, "route", route, "method", r.Method,
			"path", r.URL.Path, "status", sw.code, "dur", dur,
		}
		if sessionID != "" {
			attrs = append(attrs, "session", sessionID)
		}
		m.log.Info("http request", attrs...)
	}
}

// maxBatchBytes resolves the ingest body cap: the configured value, or a
// default derived from the per-session EST quota (a generous ~4KiB per
// allowed EST, clamped to [1MiB, 64MiB]; 64MiB when the quota is
// unlimited).
func (m *Manager) maxBatchBytes() int64 {
	if m.cfg.MaxBatchBytes > 0 {
		return m.cfg.MaxBatchBytes
	}
	const (
		perEST = 4 << 10
		floor  = 1 << 20
		cap64  = 64 << 20
	)
	if q := m.cfg.MaxESTsPerSession; q > 0 {
		b := int64(q) * perEST
		if b < floor {
			return floor
		}
		if b > cap64 {
			return cap64
		}
		return b
	}
	return cap64
}

// decodeBatch parses a batch request body as JSON records or FASTA. A body
// that overruns the MaxBytesReader cap surfaces as ErrTooLarge (413).
func decodeBatch(r *http.Request) ([]pace.Record, error) {
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "json") {
		var req struct {
			ESTs []pace.Record `json:"ests"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, wrapTooLarge(fmt.Errorf("serve: invalid batch body: %w", err))
		}
		return req.ESTs, nil
	}
	recs, err := pace.ReadFASTA(r.Body)
	if err != nil {
		return nil, wrapTooLarge(fmt.Errorf("serve: invalid FASTA batch: %w", err))
	}
	return recs, nil
}

// wrapTooLarge folds a MaxBytesReader overflow into ErrTooLarge so the
// error mapper returns 413 with the request id, like any other size
// rejection.
func wrapTooLarge(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return fmt.Errorf("%w: request body exceeds %d bytes", ErrTooLarge, mbe.Limit)
	}
	return err
}

// httpError maps manager errors to HTTP statuses and a JSON error body
// carrying the request id, so a client can quote the exact id when
// reporting a failure the server logged.
func httpError(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrExists):
		code = http.StatusConflict
	case errors.Is(err, ErrBusy), errors.Is(err, ErrQuota):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDegraded):
		// Read-only until the degraded probe heals the disk; tell the
		// client when to come back.
		w.Header().Set("Retry-After", "5")
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrTooLarge):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrStateMismatch):
		code = http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		// The per-request deadline expired mid-run; the session rolled
		// back, so a retry against a less loaded server is safe.
		code = http.StatusGatewayTimeout
	}
	body := map[string]string{"error": err.Error()}
	if id := RequestID(r.Context()); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
