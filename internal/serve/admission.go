package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrBusy is returned when the admission queue is full: every grant is in
// service and every queue slot is taken. HTTP maps it to 429 so clients
// back off — the server never buffers unbounded work.
var ErrBusy = errors.New("serve: admission queue full")

// AdmissionConfig bounds concurrent batch work, generalizing the engine's
// WORKBUF grant accounting (PR 1) from pair buffers to HTTP requests: a
// request may run only while holding one of Grants grant slots, at most
// Queue requests may wait for a slot, and anything beyond that is rejected
// immediately with ErrBusy.
type AdmissionConfig struct {
	// Grants is the number of requests serviced concurrently (default 8).
	Grants int
	// Queue is the number of requests allowed to wait for a grant
	// (default 2×Grants).
	Queue int
}

func (c AdmissionConfig) grants() int {
	if c.Grants > 0 {
		return c.Grants
	}
	return 8
}

func (c AdmissionConfig) queue() int {
	if c.Queue > 0 {
		return c.Queue
	}
	return 2 * c.grants()
}

// Admission is the bounded admission queue. The invariant mirrors the
// WORKBUF bound: inService <= Grants and len(waiters) <= Queue at all
// times; Release hands its grant to the oldest waiter instead of freeing
// it, so grants never leak and FIFO order is preserved.
type Admission struct {
	mu        sync.Mutex
	grants    int
	queueCap  int
	inService int
	waiters   []chan struct{}

	highWater int
	admitted  int64
	rejected  int64
}

// NewAdmission returns an admission controller for the given bounds.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{grants: cfg.grants(), queueCap: cfg.queue()}
}

// Acquire obtains a grant, waiting in the bounded queue if none is free.
// It returns ErrBusy without waiting when the queue is full, or ctx.Err()
// if the context ends first. Every successful Acquire must be paired with
// exactly one Release.
func (a *Admission) Acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.inService < a.grants {
		a.inService++
		if a.inService > a.highWater {
			a.highWater = a.inService
		}
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.queueCap {
		a.rejected++
		a.mu.Unlock()
		return ErrBusy
	}
	ch := make(chan struct{})
	a.waiters = append(a.waiters, ch)
	a.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, c := range a.waiters {
			if c == ch {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// Release transferred the grant to us concurrently with
		// cancellation; give it back so it is not leaked.
		a.Release()
		return ctx.Err()
	}
}

// Release returns a grant. If a request is waiting, the grant transfers to
// the oldest waiter (inService unchanged); otherwise the slot frees up.
func (a *Admission) Release() {
	a.mu.Lock()
	if len(a.waiters) > 0 {
		ch := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.admitted++
		a.mu.Unlock()
		close(ch)
		return
	}
	if a.inService > 0 {
		a.inService--
	}
	a.mu.Unlock()
}

// Idle reports whether no request holds or awaits a grant — the drain
// condition.
func (a *Admission) Idle() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inService == 0 && len(a.waiters) == 0
}

// AdmissionStats is a snapshot of the controller's accounting.
type AdmissionStats struct {
	// InService and Waiting are the instantaneous occupancy.
	InService, Waiting int
	// HighWater is the peak InService, provably <= Grants.
	HighWater int
	// Admitted and Rejected count Acquire outcomes.
	Admitted, Rejected int64
}

// Stats snapshots the accounting counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		InService: a.inService,
		Waiting:   len(a.waiters),
		HighWater: a.highWater,
		Admitted:  a.admitted,
		Rejected:  a.rejected,
	}
}
