package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// RequestIDHeader is the trace-propagation contract: a client may send its
// own id under this header and the server adopts it; otherwise the server
// mints one. Either way the response echoes the header, every log line for
// the request carries it, and the request's trace span records it — so one
// id follows a batch from the client, through admission, into the engine
// span, and back out in the error body if anything fails.
const RequestIDHeader = "X-Request-ID"

type requestIDKey struct{}

// WithRequestID stamps ctx with the request id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the request id stamped by WithRequestID ("" if none).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// reqSeq makes ids collision-free within a process even if the random
// source degrades; the random half keeps them unguessable across processes.
var reqSeq atomic.Uint64

// newRequestID mints a compact unique id: a process-unique sequence number
// plus 4 random bytes.
func newRequestID() string {
	var b [4]byte
	_, _ = rand.Read(b[:])
	return fmt.Sprintf("req-%06d-%s", reqSeq.Add(1), hex.EncodeToString(b[:]))
}

// sanitizeRequestID keeps externally supplied ids log- and label-safe:
// anything overlong or containing control/whitespace characters is
// discarded and a fresh id minted instead.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return newRequestID()
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] == 0x7f {
			return newRequestID()
		}
	}
	return id
}
