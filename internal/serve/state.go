// Package serve turns the pace.Session API into a system that serves
// traffic: a session manager owning many concurrent sessions behind
// per-session serialization, tenant quotas and a bounded admission queue
// (generalizing the engine's WORKBUF grant accounting to HTTP requests),
// an HTTP handler exposing the session lifecycle, and a crash-consistent
// per-session state directory shared with the pace CLI's -session mode.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"pace"
	"pace/internal/vfs"
)

// A session state directory holds the pair of files that together encode a
// session: the EST store and the partition checkpoint over exactly those
// ESTs. They cannot be replaced in one atomic step, so the write order is
// chosen to keep every crash window recoverable (see SaveState) and
// LoadState verifies the pair's consistency before resuming.
const (
	// FASTAFile is the EST store: every sequence the session has ingested,
	// in ingest order (the order the checkpoint's labels index).
	FASTAFile = "session.fasta"
	// CheckpointFile is the engine checkpoint of the current partition.
	CheckpointFile = "pace.ckpt"
	// MetaFile is optional server-side session metadata (tenant, name);
	// the CLI's -session mode does not write it.
	MetaFile = "session.json"
)

// ErrStateMismatch reports a session directory whose EST store and
// checkpoint disagree — they describe different EST counts or parameters,
// so resuming would produce labels that do not cover the stored sequences.
// Errors wrapping it explain which side is ahead and how to recover.
var ErrStateMismatch = errors.New("session state mismatch between EST store and checkpoint")

// Meta is the server-side session metadata persisted next to the state
// pair. The zero value is valid for CLI-created directories.
type Meta struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
}

// State is a loaded, consistency-checked session directory.
type State struct {
	// Recs are the stored ESTs in ingest order.
	Recs []pace.Record
	// Labels is the checkpointed partition, one label per record.
	Labels []int
	// Meta is the server metadata; zero when MetaFile is absent.
	Meta Meta
}

// SaveState persists a session's state pair into dir through the given
// filesystem seam (vfs.OS{} for the real disk, a vfs.Faulty for chaos and
// crash-window tests): the EST store (atomic temp+fsync+rename) first, then
// the partition checkpoint (the engine's own atomic replace). recs must be
// the sequences the session actually clustered — post-trim if trimming was
// applied — in ingest order.
//
// The order is the crash-safe one. A crash between the two writes leaves
// the store ahead of the checkpoint: the checkpointed labels still cover a
// prefix of the stored ESTs, so the failed batch can simply be re-added.
// The opposite order would leave labels referencing sequences that were
// never persisted — unrecoverable. LoadState tells the two cases apart.
func SaveState(fsys vfs.FS, dir string, sess *pace.Session, recs []pace.Record) error {
	if n := sess.NumESTs(); n != len(recs) {
		return fmt.Errorf("serve: saving %d records for a session holding %d ESTs", len(recs), n)
	}
	tmp, err := fsys.CreateTemp(dir, FASTAFile+".tmp*")
	if err != nil {
		return err
	}
	if err := pace.WriteFASTA(tmp, recs); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.Rename(tmp.Name(), filepath.Join(dir, FASTAFile)); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return err
	}
	if err := sess.SaveCheckpointFS(fsys, dir); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// WriteMeta persists server-side session metadata (atomic replace).
func WriteMeta(fsys vfs.FS, dir string, m Meta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, MetaFile+".tmp")
	if err := fsys.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, MetaFile)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// LoadState reads and cross-checks a session directory against the run
// parameters in opt. It fails with an error wrapping ErrStateMismatch when
// the EST store and checkpoint disagree on the EST count, naming which
// side is ahead:
//
//   - store ahead of checkpoint: the crash window of SaveState — the last
//     batch was stored but never clustered durably; re-add it (or restore
//     the previous store) and resume.
//   - checkpoint ahead of store: the directory was hand-edited or the
//     store truncated; the labels reference sequences that no longer
//     exist, so the state is not trustworthy.
func LoadState(dir string, opt pace.Options) (*State, error) {
	f, err := os.Open(filepath.Join(dir, FASTAFile))
	if err != nil {
		return nil, fmt.Errorf("serve: open session store: %w", err)
	}
	recs, err := pace.ReadFASTA(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("serve: read session store: %w", err)
	}
	ck, err := pace.LoadCheckpoint(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: load session checkpoint: %w", err)
	}
	if ck.NumESTs != len(recs) {
		if ck.NumESTs < len(recs) {
			return nil, fmt.Errorf(
				"serve: %w in %s: store holds %d ESTs but checkpoint covers %d — "+
					"likely a crash between state writes; re-add the last %d sequence(s) after resuming",
				ErrStateMismatch, dir, len(recs), ck.NumESTs, len(recs)-ck.NumESTs)
		}
		return nil, fmt.Errorf(
			"serve: %w in %s: checkpoint covers %d ESTs but store holds only %d — "+
				"the store was truncated or edited; restore it before resuming",
			ErrStateMismatch, dir, ck.NumESTs, len(recs))
	}
	if err := ck.Validate(len(recs), opt.Window, opt.MinMatch); err != nil {
		return nil, fmt.Errorf("serve: %w in %s: %w", ErrStateMismatch, dir, err)
	}
	st := &State{Recs: recs, Labels: pace.ResumeLabels(ck)}
	if data, err := os.ReadFile(filepath.Join(dir, MetaFile)); err == nil {
		if err := json.Unmarshal(data, &st.Meta); err != nil {
			return nil, fmt.Errorf("serve: session metadata in %s: %w", dir, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	return st, nil
}

// Resume rebuilds a live Session from a loaded state.
func (st *State) Resume(opt pace.Options) (*pace.Session, error) {
	return pace.ResumeSession(opt, pace.Sequences(st.Recs), st.Labels)
}
