package serve

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pace"
	"pace/internal/vfs"
)

// copyDir clones the regular files of src into a fresh directory, giving
// each sweep iteration its own pristine pre-crash state dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			t.Fatalf("unexpected non-regular entry %s in state dir", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashWindowSweep is the crash-window consistency gate: for EVERY
// filesystem-operation index k in a session save's write sequence, abort
// the save at op k (torn writes included) and require the state directory
// to be one of exactly three things:
//
//  1. the untouched pre-save state — resume it, re-add the lost batch,
//     labels match the never-crashed control;
//  2. the complete post-save state — its labels already match the control;
//  3. a detected inconsistency — LoadState fails wrapping ErrStateMismatch
//     with the re-add recovery hint, and following that hint (resume from
//     the checkpointed prefix, re-add the remainder) reaches the control.
//
// Anything else — a silent wrong resume, an unexplained error — fails the
// sweep. Op indices are learned from a zero-plan counting pass, so the
// sweep stays exhaustive as the write sequence evolves.
func TestCrashWindowSweep(t *testing.T) {
	opt := testOptions()
	batches := testCorpus(t, 60, 3, 30) // two batches of 30
	if len(batches) != 2 {
		t.Fatalf("corpus split into %d batches, want 2", len(batches))
	}
	control := fromScratchLabels(t, batches, opt)
	allRecs := append(append([]pace.Record{}, batches[0]...), batches[1]...)

	// Base state: batch 1 ingested and saved healthily.
	base := t.TempDir()
	sess1, err := pace.NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess1.Add(pace.Sequences(batches[0])); err != nil {
		t.Fatal(err)
	}
	if err := SaveState(vfs.OS{}, base, sess1, batches[0]); err != nil {
		t.Fatal(err)
	}

	// The session whose save the sweep crashes: batch 2 already clustered
	// in memory. SaveState only reads the session, so one instance serves
	// every iteration.
	st, err := LoadState(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := st.Resume(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AddContext(t.Context(), pace.Sequences(batches[1])); err != nil {
		t.Fatal(err)
	}

	// Counting pass: how many mutating fs ops does the save issue?
	countDir := copyDir(t, base)
	counter := vfs.NewFaulty(vfs.OS{}, vfs.Plan{})
	if err := SaveState(counter, countDir, sess, allRecs); err != nil {
		t.Fatalf("counting pass: %v", err)
	}
	nops := counter.Ops()
	if nops < 5 {
		t.Fatalf("save issued only %d fs ops; the vfs seam lost coverage", nops)
	}
	t.Logf("session save issues %d mutating fs ops", nops)

	for k := 1; k <= nops; k++ {
		dir := copyDir(t, base)
		faulty := vfs.NewFaulty(vfs.OS{}, vfs.Plan{CrashOp: k})
		err := SaveState(faulty, dir, sess, allRecs)
		if !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("crash at op %d: SaveState returned %v, want ErrCrashed", k, err)
		}

		st, lerr := LoadState(dir, opt)
		switch {
		case lerr == nil:
			switch len(st.Recs) {
			case len(batches[0]):
				// Pre-save state survived intact: re-add the lost batch.
				re, err := st.Resume(opt)
				if err != nil {
					t.Fatalf("crash at op %d: resume pre-state: %v", k, err)
				}
				if _, err := re.Add(pace.Sequences(batches[1])); err != nil {
					t.Fatalf("crash at op %d: re-add lost batch: %v", k, err)
				}
				if !samePartition(re.Labels(), control) {
					t.Fatalf("crash at op %d: pre-state + re-add diverges from control", k)
				}
			case len(allRecs):
				// Post-save state made it down before the crash.
				if !samePartition(st.Labels, control) {
					t.Fatalf("crash at op %d: post-state labels diverge from control", k)
				}
			default:
				t.Fatalf("crash at op %d: consistent state with %d records, want %d or %d",
					k, len(st.Recs), len(batches[0]), len(allRecs))
			}

		case errors.Is(lerr, ErrStateMismatch):
			// Only the recoverable window (store ahead of checkpoint) is
			// acceptable — the save order exists to rule the other out.
			if !strings.Contains(lerr.Error(), "re-add") {
				t.Fatalf("crash at op %d: mismatch lacks the re-add recovery hint: %v", k, lerr)
			}
			// Follow the hint: resume from the checkpointed prefix of the
			// store and re-add the remainder.
			ck, err := pace.LoadCheckpoint(dir)
			if err != nil {
				t.Fatalf("crash at op %d: load checkpoint for recovery: %v", k, err)
			}
			f, err := os.Open(filepath.Join(dir, FASTAFile))
			if err != nil {
				t.Fatalf("crash at op %d: open store for recovery: %v", k, err)
			}
			recs, err := pace.ReadFASTA(f)
			f.Close()
			if err != nil {
				t.Fatalf("crash at op %d: read store for recovery: %v", k, err)
			}
			if ck.NumESTs > len(recs) {
				t.Fatalf("crash at op %d: checkpoint ahead of store (%d > %d) — the unrecoverable window the write order must prevent",
					k, ck.NumESTs, len(recs))
			}
			re, err := pace.ResumeSession(opt, pace.Sequences(recs[:ck.NumESTs]), pace.ResumeLabels(ck))
			if err != nil {
				t.Fatalf("crash at op %d: resume checkpointed prefix: %v", k, err)
			}
			if _, err := re.Add(pace.Sequences(recs[ck.NumESTs:])); err != nil {
				t.Fatalf("crash at op %d: re-add remainder: %v", k, err)
			}
			if !samePartition(re.Labels(), control) {
				t.Fatalf("crash at op %d: hint recovery diverges from control", k)
			}

		default:
			// A crash can tear session.fasta's replacement only between
			// rename and dir sync on filesystems that reorder those; with
			// temp+rename the store file itself is always whole, so any
			// other load error is a sweep failure.
			t.Fatalf("crash at op %d: LoadState failed without ErrStateMismatch: %v", k, lerr)
		}
	}
}

// TestCrashWindowSweepTornFasta covers the window copyDir-based sweeps
// cannot reach on a POSIX filesystem: the EST store itself torn mid-write.
// The temp+rename protocol means a torn store never becomes session.fasta,
// so a hand-torn store models external corruption — it must fail loudly
// (parse error or mismatch), never resume silently wrong.
func TestCrashWindowSweepTornFasta(t *testing.T) {
	opt := testOptions()
	batches := testCorpus(t, 40, 9, 40)
	dir := t.TempDir()
	sess, err := pace.NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Add(pace.Sequences(batches[0])); err != nil {
		t.Fatal(err)
	}
	if err := SaveState(vfs.OS{}, dir, sess, batches[0]); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, FASTAFile)
	data, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		n := int(float64(len(data)) * frac)
		if err := os.WriteFile(store, data[:n], fs.FileMode(0o644)); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadState(dir, opt); err == nil {
			t.Fatalf("torn store at %.0f%% resumed without error", frac*100)
		}
	}
}
