package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pace"

	"pace/internal/testutil"
)

func testOptions() pace.Options {
	opt := pace.DefaultOptions()
	opt.Window = 8
	opt.MinMatch = 14
	return opt
}

// testCorpus generates a deterministic synthetic EST corpus split into
// batches of records.
func testCorpus(t *testing.T, numESTs int, seed int64, batch int) [][]pace.Record {
	t.Helper()
	b, err := pace.Simulate(pace.SimOptions{NumESTs: numESTs, NumGenes: numESTs / 10, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]pace.Record, len(b.ESTs))
	for i, est := range b.ESTs {
		recs[i] = pace.Record{ID: fmt.Sprintf("s%d_est%04d", seed, i), Seq: est}
	}
	var out [][]pace.Record
	for len(recs) > 0 {
		n := batch
		if n > len(recs) {
			n = len(recs)
		}
		out = append(out, recs[:n])
		recs = recs[n:]
	}
	return out
}

// normalize renumbers a partition by first occurrence so two labelings can
// be compared modulo label permutation.
func normalize(labels []int) []int {
	next := 0
	seen := map[int]int{}
	out := make([]int, len(labels))
	for i, l := range labels {
		n, ok := seen[l]
		if !ok {
			n = next
			seen[l] = n
			next++
		}
		out[i] = n
	}
	return out
}

func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	na, nb := normalize(a), normalize(b)
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

// fromScratchLabels clusters every batch's sequences in one shot.
func fromScratchLabels(t *testing.T, batches [][]pace.Record, opt pace.Options) []int {
	t.Helper()
	var seqs []string
	for _, b := range batches {
		for _, r := range b {
			seqs = append(seqs, r.Seq)
		}
	}
	cl, err := pace.Cluster(seqs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return cl.Labels
}

// TestManagerConcurrentSessions drives ≥8 sessions through the manager
// concurrently — interleaved Add, Labels, Info, List and Save — and then
// checks every session's final labels against a from-scratch run of the
// same sequences. Run under -race this is the ISSUE's stress criterion:
// per-session serialization plus admission bounds make the whole thing
// race-clean even though sessions share the manager, metrics and data dir.
func TestManagerConcurrentSessions(t *testing.T) {
	testutil.CheckGoroutines(t)
	const numSessions = 10
	m, err := NewManager(Config{
		Options:              testOptions(),
		DataDir:              t.TempDir(),
		MaxSessionsPerTenant: numSessions,
		Admission:            AdmissionConfig{Grants: 4, Queue: 2 * numSessions},
		Metrics:              pace.NewMetricsRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	corpora := make([][][]pace.Record, numSessions)
	for i := range corpora {
		corpora[i] = testCorpus(t, 60, int64(100+i), 20)
	}

	var wg sync.WaitGroup
	errc := make(chan error, numSessions)
	for i := 0; i < numSessions; i++ {
		id := fmt.Sprintf("sess-%02d", i)
		if _, err := m.Create(context.Background(), id, "stress"); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id string, batches [][]pace.Record) {
			defer wg.Done()
			for bi, batch := range batches {
				if _, err := m.Add(context.Background(), id, batch); err != nil {
					errc <- fmt.Errorf("%s batch %d: %w", id, bi, err)
					return
				}
				// Interleave reads with other goroutines' writes.
				if _, _, err := m.Labels(id); err != nil {
					errc <- fmt.Errorf("%s labels: %w", id, err)
					return
				}
				if _, err := m.Info(id); err != nil {
					errc <- fmt.Errorf("%s info: %w", id, err)
					return
				}
				m.List()
				if err := m.Save(id); err != nil {
					errc <- fmt.Errorf("%s save: %w", id, err)
					return
				}
			}
		}(id, corpora[i])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	for i := 0; i < numSessions; i++ {
		id := fmt.Sprintf("sess-%02d", i)
		recs, labels, err := m.Labels(id)
		if err != nil {
			t.Fatal(err)
		}
		want := fromScratchLabels(t, corpora[i], testOptions())
		if len(recs) != len(want) {
			t.Fatalf("%s: %d records, want %d", id, len(recs), len(want))
		}
		if !samePartition(labels, want) {
			t.Errorf("%s: incremental labels differ from from-scratch run", id)
		}
	}

	st := m.Admission().Stats()
	if st.HighWater > 4 {
		t.Errorf("admission high water %d exceeds 4 grants", st.HighWater)
	}
	if st.InService != 0 || st.Waiting != 0 {
		t.Errorf("admission not idle after drain: %+v", st)
	}
}

// TestManagerAdmissionBackpressure fills every grant and queue slot with
// blocked acquirers and asserts the next request is rejected with ErrBusy
// (the handler's 429), then that releasing grants unblocks the queue FIFO.
func TestManagerAdmissionBackpressure(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{Grants: 2, Queue: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := adm.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
	}
	waiterErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { waiterErr <- adm.Acquire(ctx) }()
	}
	// Wait until both waiters are queued.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if adm.Stats().Waiting == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := adm.Acquire(ctx); !errors.Is(err, ErrBusy) {
		t.Fatalf("full queue: got %v, want ErrBusy", err)
	}
	if got := adm.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	adm.Release() // hands the grant to the first waiter; one queue slot frees
	// A canceled context abandons its queue slot cleanly.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := adm.Acquire(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: got %v", err)
	}
	adm.Release() // hands the grant to the second waiter
	for i := 0; i < 2; i++ {
		select {
		case err := <-waiterErr:
			if err != nil {
				t.Fatalf("waiter: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never granted")
		}
	}
	adm.Release()
	adm.Release()
	if !adm.Idle() {
		t.Fatalf("not idle: %+v", adm.Stats())
	}
	if hw := adm.Stats().HighWater; hw != 2 {
		t.Fatalf("high water = %d, want 2", hw)
	}
}

// TestManagerBusyMapsToErrBusy exercises backpressure through Manager.Add:
// with one grant and no queue, a second concurrent batch gets ErrBusy.
func TestManagerBusyMapsToErrBusy(t *testing.T) {
	m, err := NewManager(Config{
		Options:   testOptions(),
		Admission: AdmissionConfig{Grants: 1, Queue: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), "s", ""); err != nil {
		t.Fatal(err)
	}
	// Occupy the single grant and the single queue slot directly, then
	// prove a real Add bounces.
	if err := m.Admission().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- m.Admission().Acquire(context.Background()) }()
	for deadline := time.Now().Add(5 * time.Second); m.Admission().Stats().Waiting != 1; {
		if time.Now().After(deadline) {
			t.Fatal("queue slot never occupied")
		}
		time.Sleep(time.Millisecond)
	}
	batch := testCorpus(t, 10, 1, 10)[0]
	if _, err := m.Add(context.Background(), "s", batch); !errors.Is(err, ErrBusy) {
		t.Fatalf("Add with full queue: got %v, want ErrBusy", err)
	}
	m.Admission().Release()
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	m.Admission().Release()
}

// TestManagerRestartResume kills a manager (by abandoning it — the state
// dirs are the only survivors, as after SIGKILL) and proves a fresh
// manager over the same data dir resumes every session with labels
// identical to both the pre-restart state and a from-scratch run,
// including after further incremental batches.
func TestManagerRestartResume(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Options: testOptions(), DataDir: dir}
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpora := map[string][][]pace.Record{
		"alpha": testCorpus(t, 60, 7, 20),
		"beta":  testCorpus(t, 50, 8, 25),
	}
	before := map[string][]int{}
	for id, batches := range corpora {
		if _, err := m1.Create(context.Background(), id, "t1"); err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:len(batches)-1] { // hold back the last batch
			if _, err := m1.Add(context.Background(), id, b); err != nil {
				t.Fatal(err)
			}
		}
		_, labels, err := m1.Labels(id)
		if err != nil {
			t.Fatal(err)
		}
		before[id] = labels
	}
	// Also a created-but-empty session: it must survive restart too.
	if _, err := m1.Create(context.Background(), "empty", "t1"); err != nil {
		t.Fatal(err)
	}
	// m1 is abandoned here without any drain — like a SIGKILL, the state
	// dirs written after each Add are all that remains.

	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m2.ResumeAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("resumed %d sessions, want 3", n)
	}
	info, err := m2.Info("empty")
	if err != nil || info.NumESTs != 0 {
		t.Fatalf("empty session after resume: %+v, %v", info, err)
	}
	for id, batches := range corpora {
		_, labels, err := m2.Labels(id)
		if err != nil {
			t.Fatal(err)
		}
		if !samePartition(labels, before[id]) {
			t.Errorf("%s: resumed labels differ from pre-restart labels", id)
		}
		// The resumed session keeps clustering incrementally.
		if _, err := m2.Add(context.Background(), id, batches[len(batches)-1]); err != nil {
			t.Fatal(err)
		}
		_, labels, err = m2.Labels(id)
		if err != nil {
			t.Fatal(err)
		}
		want := fromScratchLabels(t, batches, testOptions())
		if !samePartition(labels, want) {
			t.Errorf("%s: post-resume incremental labels differ from from-scratch run", id)
		}
	}
	// Tenant metadata survived.
	in, err := m2.Info("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if in.Tenant != "t1" {
		t.Errorf("resumed tenant = %q, want t1", in.Tenant)
	}
}

// TestManagerResumeDetectsMismatch desyncs a state directory both ways and
// asserts ResumeAll fails with ErrStateMismatch naming the bad session —
// the satellite bugfix for silently-torn -session directories.
func TestManagerResumeDetectsMismatch(t *testing.T) {
	seed := func(t *testing.T) (Config, string) {
		dir := t.TempDir()
		cfg := Config{Options: testOptions(), DataDir: dir}
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Create(context.Background(), "torn", ""); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Add(context.Background(), "torn", testCorpus(t, 20, 3, 20)[0]); err != nil {
			t.Fatal(err)
		}
		return cfg, filepath.Join(dir, "torn")
	}

	t.Run("store ahead of checkpoint", func(t *testing.T) {
		cfg, sdir := seed(t)
		// Simulate the SaveState crash window: the store gained a batch
		// the checkpoint never saw.
		f, err := os.OpenFile(filepath.Join(sdir, FASTAFile), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(">crashed_tail\nACGTACGTACGTACGTACGT\n"); err != nil {
			t.Fatal(err)
		}
		f.Close()
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.ResumeAll()
		if !errors.Is(err, ErrStateMismatch) {
			t.Fatalf("got %v, want ErrStateMismatch", err)
		}
		for _, want := range []string{"torn", "re-add"} {
			if !contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	})

	t.Run("checkpoint ahead of store", func(t *testing.T) {
		cfg, sdir := seed(t)
		// Truncate the store to fewer records than the checkpoint covers.
		recs, err := readFASTAFile(filepath.Join(sdir, FASTAFile))
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFASTAFile(filepath.Join(sdir, FASTAFile), recs[:len(recs)-1]); err != nil {
			t.Fatal(err)
		}
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.ResumeAll()
		if !errors.Is(err, ErrStateMismatch) {
			t.Fatalf("got %v, want ErrStateMismatch", err)
		}
		if !contains(err.Error(), "truncated or edited") {
			t.Errorf("error %q does not explain the truncated store", err)
		}
	})

	t.Run("parameter drift keeps the validation error in the chain", func(t *testing.T) {
		cfg, _ := seed(t)
		// Resume with different clustering parameters: the checkpoint's
		// Validate rejects the drift. Regression: that validation error
		// must be wrapped with %w — a distinct node in the unwrap chain —
		// not flattened into text with %v.
		cfg.Options.Window = cfg.Options.Window + 2
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.ResumeAll()
		if !errors.Is(err, ErrStateMismatch) {
			t.Fatalf("got %v, want ErrStateMismatch", err)
		}
		if !chainHasNodeWithPrefix(err, "cluster: checkpoint parameters") {
			t.Fatalf("validation error is not a node in the chain (flattened?): %v", err)
		}
	})
}

// chainHasNodeWithPrefix reports whether some error in err's unwrap tree has
// a message starting with prefix — i.e. the error survives as its own node
// rather than as flattened text inside a parent's message.
func chainHasNodeWithPrefix(err error, prefix string) bool {
	if err == nil {
		return false
	}
	if strings.HasPrefix(err.Error(), prefix) {
		return true
	}
	switch x := err.(type) {
	case interface{ Unwrap() error }:
		return chainHasNodeWithPrefix(x.Unwrap(), prefix)
	case interface{ Unwrap() []error }:
		for _, e := range x.Unwrap() {
			if chainHasNodeWithPrefix(e, prefix) {
				return true
			}
		}
	}
	return false
}

// TestManagerQuotas covers the session quotas: server-wide, per-tenant and
// per-session EST capacity.
func TestManagerQuotas(t *testing.T) {
	m, err := NewManager(Config{
		Options:              testOptions(),
		MaxSessions:          3,
		MaxSessionsPerTenant: 2,
		MaxESTsPerSession:    25,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ id, tenant string }{{"a1", "ta"}, {"a2", "ta"}} {
		if _, err := m.Create(context.Background(), c.id, c.tenant); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create(context.Background(), "a3", "ta"); !errors.Is(err, ErrQuota) {
		t.Fatalf("per-tenant quota: got %v, want ErrQuota", err)
	}
	if _, err := m.Create(context.Background(), "b1", "tb"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), "b2", "tb"); !errors.Is(err, ErrQuota) {
		t.Fatalf("server quota: got %v, want ErrQuota", err)
	}
	if _, err := m.Create(context.Background(), "dup", "ta"); !errors.Is(err, ErrQuota) {
		// still at server quota
		t.Fatalf("got %v, want ErrQuota", err)
	}
	if err := m.Delete("a2"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), "a1", "ta"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate id: got %v, want ErrExists", err)
	}
	if _, err := m.Create(context.Background(), "bad/../id", "ta"); err == nil {
		t.Fatal("path-traversal id accepted")
	}

	batches := testCorpus(t, 30, 5, 20)
	if _, err := m.Add(context.Background(), "a1", batches[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(context.Background(), "a1", batches[1]); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("EST capacity: got %v, want ErrTooLarge", err)
	}
	if _, err := m.Add(context.Background(), "ghost", batches[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown session: got %v, want ErrNotFound", err)
	}
}

// TestManagerDrain proves Drain refuses new work, waits for in-flight
// admissions, and persists every session.
func TestManagerDrain(t *testing.T) {
	testutil.CheckGoroutines(t)
	dir := t.TempDir()
	cfg := Config{Options: testOptions(), DataDir: dir}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(context.Background(), "d", ""); err != nil {
		t.Fatal(err)
	}
	batch := testCorpus(t, 20, 9, 20)[0]
	if _, err := m.Add(context.Background(), "d", batch); err != nil {
		t.Fatal(err)
	}
	// Remove the state files so only Drain's save can restore them.
	if err := os.Remove(filepath.Join(dir, "d", FASTAFile)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "d", CheckpointFile)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(context.Background(), "d", batch); !errors.Is(err, ErrDraining) {
		t.Fatalf("Add while draining: got %v, want ErrDraining", err)
	}
	if _, err := m.Create(context.Background(), "late", ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("Create while draining: got %v, want ErrDraining", err)
	}
	// The drained state resumes.
	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.ResumeAll(); err != nil {
		t.Fatal(err)
	}
	info, err := m2.Info("d")
	if err != nil {
		t.Fatal(err)
	}
	if info.NumESTs != len(batch) {
		t.Fatalf("resumed %d ESTs, want %d", info.NumESTs, len(batch))
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func readFASTAFile(path string) ([]pace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pace.ReadFASTA(f)
}

func writeFASTAFile(path string, recs []pace.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pace.WriteFASTA(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
