package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/vfs"
)

// flakyFS is a vfs.FS whose directory fsyncs fail while `down` is set —
// the shape of a disk that stops accepting durable writes and later heals.
type flakyFS struct {
	vfs.FS
	down atomic.Bool
}

var errDiskDown = errors.New("flakyFS: disk down")

func (f *flakyFS) SyncDir(dir string) error {
	if f.down.Load() {
		return errDiskDown
	}
	return f.FS.SyncDir(dir)
}

// TestManagerDegradedModeHeals walks a session through the degraded
// read-only lifecycle: a persistence failure after a clustered batch enters
// degraded mode (ingest refused with ErrDegraded, reads still served), the
// probe is a no-op while the disk is down, re-arms ingest once it heals,
// and the post-heal state — in memory and on disk — matches a from-scratch
// clustering of everything ingested, including the batch whose save failed.
func TestManagerDegradedModeHeals(t *testing.T) {
	opt := testOptions()
	batches := testCorpus(t, 90, 5, 30) // three batches of 30
	control := fromScratchLabels(t, batches, opt)
	fsys := &flakyFS{FS: vfs.OS{}}
	dataDir := t.TempDir()
	mgr, err := NewManager(Config{Options: opt, DataDir: dataDir, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := mgr.Create(ctx, "s", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Add(ctx, "s", batches[0]); err != nil {
		t.Fatal(err)
	}

	fsys.down.Store(true)
	_, err = mgr.Add(ctx, "s", batches[1])
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("Add with failing persistence: got %v, want ErrDegraded", err)
	}
	if !errors.Is(err, errDiskDown) {
		t.Fatalf("degraded error lost the underlying cause: %v", err)
	}
	// The failed batch IS clustered in memory — only its persistence
	// failed. Reads must say so; further ingest must be refused.
	info, err := mgr.Info("s")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(batches[0]) + len(batches[1]); info.NumESTs != want {
		t.Fatalf("degraded session holds %d ESTs, want %d (batch 2 clustered in memory)", info.NumESTs, want)
	}
	if _, err := mgr.Add(ctx, "s", batches[2]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingest into degraded session: got %v, want ErrDegraded", err)
	} else if !errors.Is(err, errDiskDown) {
		// Regression: the refusal on an already-degraded session must wrap
		// the stored cause with %w, not flatten it with %v, so callers can
		// still match the original disk error.
		t.Fatalf("degraded refusal lost the stored cause: %v", err)
	}
	if n := mgr.DegradedCount(); n != 1 {
		t.Fatalf("DegradedCount = %d, want 1", n)
	}
	if healed := mgr.ProbeDegraded(); healed != 0 {
		t.Fatalf("probe healed %d sessions while the disk is still down", healed)
	}
	if n := mgr.DegradedCount(); n != 1 {
		t.Fatalf("DegradedCount after failed probe = %d, want 1", n)
	}

	fsys.down.Store(false)
	if healed := mgr.ProbeDegraded(); healed != 1 {
		t.Fatalf("probe after heal healed %d sessions, want 1", healed)
	}
	if n := mgr.DegradedCount(); n != 0 {
		t.Fatalf("DegradedCount after heal = %d, want 0", n)
	}
	// Ingest re-armed; do NOT re-send batch 2 — it was clustered in memory
	// and the heal persisted it.
	if _, err := mgr.Add(ctx, "s", batches[2]); err != nil {
		t.Fatalf("ingest after heal: %v", err)
	}
	_, labels, err := mgr.Labels("s")
	if err != nil {
		t.Fatal(err)
	}
	if !samePartition(labels, control) {
		t.Fatal("post-heal labels diverge from from-scratch control")
	}

	// The healed state must also be the durable one: a cold restart over
	// the same data dir resumes to the same partition.
	mgr2, err := NewManager(Config{Options: opt, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr2.ResumeAll(); err != nil {
		t.Fatalf("resume after heal: %v", err)
	}
	_, labels2, err := mgr2.Labels("s")
	if err != nil {
		t.Fatal(err)
	}
	if !samePartition(labels2, control) {
		t.Fatal("resumed labels diverge from from-scratch control")
	}
}

// TestManagerRequestTimeout proves the per-request deadline cancels the
// engine run and the session rolls back: an Add under an immediately
// expiring timeout fails wrapping context.DeadlineExceeded and leaves the
// session exactly as it was.
func TestManagerRequestTimeout(t *testing.T) {
	opt := testOptions()
	batches := testCorpus(t, 30, 11, 30)
	mgr, err := NewManager(Config{Options: opt, RequestTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := mgr.Create(ctx, "s", ""); err != nil {
		t.Fatal(err)
	}
	_, err = mgr.Add(ctx, "s", batches[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Add under 1ns deadline: got %v, want context.DeadlineExceeded", err)
	}
	info, err := mgr.Info("s")
	if err != nil {
		t.Fatal(err)
	}
	if info.NumESTs != 0 || info.Batches != 0 {
		t.Fatalf("timed-out Add left state behind: %+v", info)
	}
}

// TestManagerClientDisconnectCancels proves a canceled request context —
// the server-side shape of a client hanging up — aborts the run with the
// failure-atomic rollback, and a retried Add then succeeds with the same
// labels a never-canceled ingest produces.
func TestManagerClientDisconnectCancels(t *testing.T) {
	opt := testOptions()
	batches := testCorpus(t, 30, 12, 30)
	control := fromScratchLabels(t, batches, opt)
	mgr, err := NewManager(Config{Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create(context.Background(), "s", ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mgr.Add(ctx, "s", batches[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Add with canceled context: got %v, want context.Canceled", err)
	}
	if info, _ := mgr.Info("s"); info.NumESTs != 0 {
		t.Fatalf("canceled Add left %d ESTs behind", info.NumESTs)
	}
	if _, err := mgr.Add(context.Background(), "s", batches[0]); err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	_, labels, err := mgr.Labels("s")
	if err != nil {
		t.Fatal(err)
	}
	if !samePartition(labels, control) {
		t.Fatal("retried labels diverge from control")
	}
}
